// mercury_ctl — command-line front end over the reproduction.
//
//   mercury_ctl trial --tree IV --component ses [--oracle perfect]
//                     [--trials 100] [--joint] [--seed N]
//   mercury_ctl trees                     # show the five published trees
//   mercury_ctl tree --save V > v.xml     # export a tree as XML
//   mercury_ctl tree --load v.xml         # validate + show an XML tree
//   mercury_ctl optimize [--p-low 0.3]    # search for the best tree
//   mercury_ctl passes [--hours 24]       # predict today's passes
//
// Demonstrates how the pieces compose for tooling: the experiment harness,
// the tree algebra and persistence, the optimizer, and the orbit stack.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/availability.h"
#include "core/mercury_trees.h"
#include "core/optimizer.h"
#include "core/tree_io.h"
#include "orbit/pass_predictor.h"
#include "station/experiment.h"

namespace {

using namespace mercury;

/// Tiny flag parser: --key value pairs plus bare switches.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) {
        key = key.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      }
    }
  }
  bool has(const std::string& key) const { return values_.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() && !it->second.empty() ? it->second : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() && !it->second.empty() ? std::stod(it->second)
                                                      : fallback;
  }
  long get_long(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() && !it->second.empty() ? std::stol(it->second)
                                                      : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

int usage() {
  std::fprintf(stderr,
               "usage: mercury_ctl <trial|trees|tree|optimize|passes> [flags]\n"
               "  trial    --tree I..V --component NAME [--oracle perfect|faulty|"
               "heuristic] [--trials N] [--joint] [--soft] [--seed N]\n"
               "  trees\n"
               "  tree     --save I..V | --load FILE\n"
               "  optimize [--p-low P] [--joint-fraction F]\n"
               "  passes   [--hours H] [--altitude KM] [--inclination DEG]\n");
  return 2;
}

core::MercuryTree parse_tree(const std::string& name) {
  if (name == "I") return core::MercuryTree::kTreeI;
  if (name == "II") return core::MercuryTree::kTreeII;
  if (name == "II'") return core::MercuryTree::kTreeIIPrime;
  if (name == "III") return core::MercuryTree::kTreeIII;
  if (name == "IV") return core::MercuryTree::kTreeIV;
  if (name == "V") return core::MercuryTree::kTreeV;
  throw std::invalid_argument("unknown tree '" + name + "' (use I..V)");
}

int cmd_trial(const Args& args) {
  station::TrialSpec spec;
  spec.tree = parse_tree(args.get("tree", "IV"));
  spec.fail_component = args.get("component", "ses");
  const std::string oracle = args.get("oracle", "perfect");
  if (oracle == "perfect") spec.oracle = station::OracleKind::kPerfect;
  else if (oracle == "faulty") spec.oracle = station::OracleKind::kFaultyPerfect;
  else if (oracle == "heuristic") spec.oracle = station::OracleKind::kHeuristic;
  else if (oracle == "learning") spec.oracle = station::OracleKind::kLearning;
  else throw std::invalid_argument("unknown oracle '" + oracle + "'");
  if (args.has("joint")) {
    spec.mode = station::FailureMode::kJointFedrPbcom;
    spec.fail_component = core::component_names::kPbcom;
  }
  spec.enable_soft_recovery = args.has("soft");
  spec.faulty_p_low = args.get_double("p-low", 0.3);
  spec.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const int trials = static_cast<int>(args.get_long("trials", 100));

  const auto stats = station::run_trials(spec, trials);
  std::printf("tree %s, oracle %s, %s failure at %s, %d trials:\n",
              core::to_string(spec.tree).c_str(), oracle.c_str(),
              spec.mode == station::FailureMode::kJointFedrPbcom ? "joint"
                                                                 : "crash",
              spec.fail_component.c_str(), trials);
  std::printf("  recovery: mean %.2f s  (min %.2f, p50 %.2f, p95 %.2f, max "
              "%.2f, cv %.3f)\n",
              stats.mean(), stats.min(), stats.median(), stats.percentile(95.0),
              stats.max(), stats.cv());
  return 0;
}

int cmd_trees() {
  for (core::MercuryTree kind : core::published_trees()) {
    const auto tree = core::make_mercury_tree(kind);
    const auto model =
        core::mercury_system_model(core::uses_split_fedrcom(kind));
    std::printf("--- tree %s (predicted system MTTR %.2f s) ---\n%s\n",
                core::to_string(kind).c_str(),
                core::predicted_system_mttr(tree, model), tree.render().c_str());
  }
  return 0;
}

int cmd_tree(const Args& args) {
  if (args.has("save")) {
    const auto tree = core::make_mercury_tree(parse_tree(args.get("save", "V")));
    std::printf("%s\n", core::tree_to_xml(tree).c_str());
    return 0;
  }
  if (args.has("load")) {
    std::ifstream in(args.get("load", ""));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.get("load", "").c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto tree = core::tree_from_xml(buffer.str());
    if (!tree.ok()) {
      std::fprintf(stderr, "invalid tree: %s\n", tree.error().message().c_str());
      return 1;
    }
    std::printf("%s", tree.value().render().c_str());
    std::printf("valid: %zu cells, %zu components\n", tree.value().size(),
                tree.value().all_components().size());
    return 0;
  }
  return usage();
}

int cmd_optimize(const Args& args) {
  const double p_low = args.get_double("p-low", 0.3);
  const double joint_fraction = args.get_double("joint-fraction", 0.25);
  const auto model = core::mercury_system_model(true, p_low, joint_fraction);
  namespace names = core::component_names;
  const auto result = core::optimize_tree(
      {names::kMbus, names::kSes, names::kStr, names::kRtu, names::kFedr,
       names::kPbcom},
      model, 3);
  std::printf("searched %llu candidate trees (oracle p_low %.2f)\n",
              static_cast<unsigned long long>(result.candidates_evaluated), p_low);
  for (std::size_t i = 0; i < result.ranking.size(); ++i) {
    std::printf("#%zu predicted MTTR %.3f s\n%s\n", i + 1,
                result.ranking[i].predicted_mttr_s,
                result.ranking[i].tree.render().c_str());
  }
  return 0;
}

int cmd_passes(const Args& args) {
  const double hours = args.get_double("hours", 24.0);
  const double altitude = args.get_double("altitude", 800.0);
  const double inclination = args.get_double("inclination", 60.0);
  const auto site = orbit::GroundStation::stanford();
  const orbit::Propagator satellite(
      orbit::KeplerianElements::circular_leo(altitude, inclination),
      orbit::PerturbationModel::kJ2Secular);
  const auto passes = orbit::predict_passes(
      site, satellite, util::TimePoint::origin(),
      util::TimePoint::origin() + util::Duration::hours(hours));
  std::printf("%zu passes over %s in the next %.0f h (orbit %g km / %g deg):\n",
              passes.size(), site.name().c_str(), hours, altitude, inclination);
  for (const auto& pass : passes) {
    std::printf("  AOS %8.0fs  LOS %8.0fs  %5.1f min  max el %5.1f deg\n",
                pass.aos.to_seconds(), pass.los.to_seconds(),
                pass.duration().to_seconds() / 60.0,
                orbit::rad_to_deg(pass.max_elevation_rad));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "trial") return cmd_trial(args);
    if (command == "trees") return cmd_trees();
    if (command == "tree") return cmd_tree(args);
    if (command == "optimize") return cmd_optimize(args);
    if (command == "passes") return cmd_passes(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
