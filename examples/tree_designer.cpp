// Designing a restart tree for your own system.
//
//   $ ./build/examples/tree_designer
//
// The RR core is not Mercury-specific: describe your components (restart
// durations), your failure classes (manifest component, cure set, rate),
// and your couplings, and the library (a) evolves a tree by hand with the
// §4 transformations, scoring each step with the analytic model, and (b)
// searches the whole transformation-expressible space for the minimum-MTTR
// tree. Here: a small e-commerce stack — the §7 "complex e-business
// infrastructure" the authors point at.
#include <cstdio>

#include "core/availability.h"
#include "core/optimizer.h"
#include "core/restart_tree.h"
#include "core/transformations.h"

int main() {
  using namespace mercury::core;

  // --- Describe the system -------------------------------------------------
  SystemModel model;
  model.detection_latency_s = 0.5;
  model.contention_slope = 0.05;
  model.restart_duration_s = {
      {"lb", 2.0},       // load balancer: fast restart
      {"web", 4.0},      // stateless web tier
      {"app", 8.0},      // app server: slow JVM warmup
      {"cache", 3.0},    // cache: fast but cold after restart
      {"db", 25.0},      // database: slow recovery, very stable
  };
  const double per_hour = 1.0 / 3600.0;
  model.failure_classes = {
      {"web", {"web"}, 2.0 * per_hour},            // buggy templates
      {"app", {"app"}, 1.0 * per_hour},            // memory leaks
      {"app", {"app", "cache"}, 0.5 * per_hour},   // stale-cache corruption:
                                                   // manifests in app, needs
                                                   // joint cure
      {"cache", {"cache"}, 0.5 * per_hour},
      {"lb", {"lb"}, 0.1 * per_hour},
      {"db", {"db"}, 0.02 * per_hour},
  };
  // web and cache resynchronize sessions at startup (a Mercury ses/str-like
  // coupling): restarting one wedges the other.
  model.coupled_pairs.push_back(CoupledPairModel{"cache", "web", 1.0, 0.1});
  model.oracle_p_low = 0.2;  // our hypothetical oracle errs 20% of the time

  // --- Evolve a tree by hand with the paper's transformations -------------
  RestartTree monolith("R_stack");
  for (const auto& [name, cost] : model.restart_duration_s) {
    monolith.attach_component(monolith.root(), name);
  }
  std::printf("Monolith (restart everything on any failure):\n%s",
              monolith.render().c_str());
  std::printf("predicted MTTR: %.2f s\n\n", predicted_system_mttr(monolith, model));

  auto augmented = depth_augment(monolith, monolith.root());
  std::printf("After depth augmentation:\n%s", augmented.value().render().c_str());
  std::printf("predicted MTTR: %.2f s\n\n",
              predicted_system_mttr(augmented.value(), model));

  auto consolidated = consolidate_group(augmented.value(), "web", "cache");
  std::printf("After consolidating the coupled web+cache pair:\n%s",
              consolidated.value().render().c_str());
  std::printf("predicted MTTR: %.2f s\n\n",
              predicted_system_mttr(consolidated.value(), model));

  // --- Or just search ------------------------------------------------------
  const auto result =
      optimize_tree({"lb", "web", "app", "cache", "db"}, model, 2);
  std::printf("Optimizer best (of %llu candidates):\n%s",
              static_cast<unsigned long long>(result.candidates_evaluated),
              result.ranking.front().tree.render().c_str());
  std::printf("predicted MTTR: %.2f s\n", result.ranking.front().predicted_mttr_s);
  std::printf("\nNote how the search (a) keeps db on its own cell so nothing\n"
              "drags a 25 s restart in, and (b) shields the app-manifesting\n"
              "{app,cache} joint failures from the 20%% faulty oracle the way\n"
              "the paper's tree V shields pbcom (promotion: cache under app+).\n"
              "It judged that trade worth more than consolidating the\n"
              "web+cache coupling — with different rates the balance flips;\n"
              "rerun with your own numbers.\n");
  return 0;
}
