// Recursive restartability over real OS processes.
//
//   $ ./build/examples/posix_supervisor
//
// Three real child processes — a fast "estimator", a fast "tracker"
// (sharing a consolidated cell, like ses/str), and a slow "proxy" (like
// pbcom) — supervised with liveness pings over pipes. We SIGKILL the
// tracker out-of-band and then WEDGE the proxy (fail-silent without a
// process death), and watch the same restart-tree machinery that ran the
// simulation recover real PIDs. Timings are wall-clock milliseconds.
#include <cstdio>
#include <cstdlib>

#include "core/restart_tree.h"
#include "posix/supervisor.h"
#include "util/log.h"

#ifndef MERCURY_WORKER_BIN
#error "MERCURY_WORKER_BIN must point at the mercury_worker binary"
#endif

int main() {
  using namespace mercury;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kInfo);

  const std::string worker = MERCURY_WORKER_BIN;

  core::RestartTree tree("R_demo");
  const auto pair = tree.add_cell(tree.root(), "R_[estimator,tracker]");
  tree.attach_component(pair, "estimator");
  tree.attach_component(pair, "tracker");
  const auto proxy = tree.add_cell(tree.root(), "R_proxy");
  tree.attach_component(proxy, "proxy");

  std::printf("Restart tree over real processes:\n%s\n", tree.render().c_str());

  std::vector<posix::WorkerSpec> workers = {
      {"estimator", {worker, "--name", "estimator", "--startup-ms", "120"}},
      {"tracker", {worker, "--name", "tracker", "--startup-ms", "150"}},
      {"proxy", {worker, "--name", "proxy", "--startup-ms", "600"}},
  };

  posix::PosixSupervisor supervisor(tree, workers, posix::SupervisorConfig{});
  if (auto status = supervisor.start_all(); !status.ok()) {
    std::fprintf(stderr, "startup failed: %s\n", status.error().message().c_str());
    return 1;
  }
  std::printf(">>> all workers READY; supervising\n");

  std::printf("\n>>> SIGKILLing the tracker (external fault)\n");
  supervisor.kill_worker("tracker");
  supervisor.run_until([&] { return supervisor.all_up(); }, posix::Millis{5000});

  std::printf("\n>>> WEDGEing the proxy (fail-silent, process still alive)\n");
  supervisor.wedge_worker("proxy");
  supervisor.run_until(
      [&] { return supervisor.history().size() >= 2 && supervisor.all_up(); },
      posix::Millis{5000});

  std::printf("\nRecovery history:\n");
  for (const auto& record : supervisor.history()) {
    std::printf("  %-9s -> restarted cell %-24s (%lld ms downtime%s)\n",
                record.reported_worker.c_str(),
                supervisor.tree().cell(record.node).label.c_str(),
                static_cast<long long>(record.downtime.count()),
                record.escalation_level > 0 ? ", escalated" : "");
  }
  std::printf("\npings sent: %llu, pongs received: %llu\n",
              static_cast<unsigned long long>(supervisor.pings_sent()),
              static_cast<unsigned long long>(supervisor.pongs_received()));
  std::printf("Note the consolidated cell: killing the tracker restarted the\n"
              "estimator too — the same §4.3 trade the simulation measured.\n");
  return 0;
}
