// Quickstart: assemble the recursively restartable Mercury station, kill a
// component, and watch the failure detector and recoverer bring it back.
//
//   $ ./build/examples/quickstart
//
// What you see: FD's liveness pings detect the fail-silent ses crash; REC
// consults the restart tree (tree IV: ses and str share a consolidated
// cell, §4.3) and restarts both in parallel; the pair resynchronizes and
// the station reports functional ~6 seconds after the kill — versus ~25 s
// for the monolithic tree I.
#include <cstdio>

#include "core/mercury_trees.h"
#include "core/timeline.h"
#include "sim/simulator.h"
#include "station/experiment.h"
#include "util/log.h"

int main() {
  using namespace mercury;
  namespace names = core::component_names;

  // Logs go to stderr; unbuffer stdout so the narration interleaves.
  std::setvbuf(stdout, nullptr, _IONBF, 0);

  // Verbose logging so the recovery sequence is visible.
  util::Logger::instance().set_level(util::LogLevel::kInfo);

  sim::Simulator sim(/*seed=*/2024);

  station::TrialSpec spec;
  spec.tree = core::MercuryTree::kTreeIV;
  spec.oracle = station::OracleKind::kPerfect;
  station::MercuryRig rig(sim, spec);

  std::printf("Restart tree (tree IV of the paper):\n%s\n",
              rig.rec().tree().render().c_str());

  core::RecoveryTimeline timeline;
  timeline.observe(rig.station().board());

  rig.start();
  sim.run_for(util::Duration::seconds(5.0));

  std::printf("\n>>> t=%.2fs: injecting fail-silent crash of ses (SIGKILL)\n\n",
              sim.now().to_seconds());
  const util::TimePoint injected = sim.now();
  rig.station().inject_crash(names::kSes);

  while (!rig.station().all_functional()) {
    if (!sim.step()) break;
  }

  std::printf("\n>>> recovered in %.2f s (detection + parallel ses+str restart "
              "+ resync)\n",
              (sim.now() - injected).to_seconds());
  std::printf(">>> recovery actions taken: %llu, escalations: %llu\n",
              static_cast<unsigned long long>(rig.rec().restarts_executed()),
              static_cast<unsigned long long>(rig.rec().escalations()));
  for (const auto& record : rig.rec().history()) {
    std::printf("    restarted cell %s for reported failure of %s\n",
                rig.rec().tree().cell(record.node).label.c_str(),
                record.reported_component.c_str());
  }

  timeline.ingest(rig.rec(), rig.rec().tree());
  std::printf("\nIncident timeline:\n%s", timeline.render_listing().c_str());
  std::printf("\nAvailability strip (%.0fs window around the incident):\n%s",
              (sim.now() - injected).to_seconds() + 4.0,
              timeline
                  .render_gantt(injected - util::Duration::seconds(2.0),
                                sim.now() + util::Duration::seconds(2.0), 64)
                  .c_str());
  return 0;
}
