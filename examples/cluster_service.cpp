// Recursive restartability beyond Mercury: a cluster-based Internet service.
//
//   $ ./build/examples/cluster_service
//
// §5: "many cluster-based Internet services as well as distributed systems
// in general are particularly well suited to RR; in fact, many of the RR
// ideas originated in the Internet world."
//
// The RR core (tree, oracles, recoverer, failure board) is substrate-
// independent: this example supervises a made-up three-tier service —
// load balancer, two app servers sharing a session store, a database —
// with a ProcessControl implemented right here against the event kernel,
// no station code involved. A failure storm then shows per-tier recovery,
// escalation on a session-corruption failure that needs app+session cured
// together, and the §4 transformations applied live to fix the tree.
#include <cstdio>
#include <map>

#include "bus/dedicated_link.h"
#include "core/failure_board.h"
#include "core/oracle.h"
#include "core/process_control.h"
#include "core/recoverer.h"
#include "core/timeline.h"
#include "core/transformations.h"
#include "sim/simulator.h"
#include "util/log.h"

namespace {

using namespace mercury;
using util::Duration;

/// Minimal ProcessControl over the event kernel: components are just
/// (name, restart duration) pairs plus the failure board's cure rule.
class ClusterProcessControl : public core::ProcessControl {
 public:
  ClusterProcessControl(sim::Simulator& sim, core::FailureBoard& board)
      : sim_(sim), board_(board) {
    durations_ = {{"lb", 1.5}, {"app1", 6.0}, {"app2", 6.0},
                  {"sessions", 3.0}, {"db", 20.0}};
  }

  std::vector<std::string> component_names() const override {
    std::vector<std::string> names;
    for (const auto& [name, duration] : durations_) names.push_back(name);
    return names;
  }

  void restart_group(const std::vector<std::string>& names,
                     std::function<void()> on_complete) override {
    auto remaining = std::make_shared<std::size_t>(names.size());
    for (const auto& name : names) {
      ++in_flight_;
      sim_.schedule_after(
          Duration::seconds(durations_.at(name)), "restart:" + name,
          [this, name, remaining, on_complete] {
            --in_flight_;
            board_.on_restart_complete(name, sim_.now());
            if (--*remaining == 0 && on_complete) on_complete();
          });
    }
  }

  bool restart_in_progress() const override { return in_flight_ > 0; }
  std::vector<std::string> restarting_now() const override { return {}; }

 private:
  sim::Simulator& sim_;
  core::FailureBoard& board_;
  std::map<std::string, double> durations_;
  int in_flight_ = 0;
};

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kOff);

  sim::Simulator sim(/*seed=*/99);
  core::FailureBoard board;
  ClusterProcessControl cluster(sim, board);

  // --- Design the tree with the §4 transformations ------------------------
  core::RestartTree monolith("R_service");
  for (const auto& name : cluster.component_names()) {
    monolith.attach_component(monolith.root(), name);
  }
  auto tree = core::depth_augment(monolith, monolith.root()).value();
  // app1/app2 share the session store: corruption failures need an app and
  // the store cured together, so give each pair a joint cell.
  tree = core::group_under_joint(tree, "app1", "sessions", "R_[app1,sessions]")
             .value();
  std::printf("Service restart tree (depth-augmented, app1+sessions jointed):\n%s\n",
              tree.render().c_str());

  // --- Wire the generic recovery machinery --------------------------------
  bus::DedicatedLink link(sim, "fd", "rec");
  core::PerfectOracle oracle(board);
  core::Recoverer rec(sim, link, tree, oracle, cluster, core::RecConfig{});
  rec.start();
  core::RecoveryTimeline timeline;
  timeline.observe(board);

  // Failure reports come straight from the board here (the example skips a
  // ping-based FD: any detector that names the failed component works).
  const double detection_latency = 0.5;
  board.add_inject_listener([&](const core::ActiveFailure& failure) {
    const std::string component = failure.spec.manifest;
    sim.schedule_after(Duration::seconds(detection_latency), "detect", [&, component] {
      msg::Message report = msg::make_command("fd", "rec", 1, "report-failure");
      report.body.set_attr("component", component);
      link.send(report);
    });
  });

  const auto recover_and_report = [&](const char* what) {
    const auto start = sim.now();
    while (board.any_active() || rec.restart_in_progress()) sim.step();
    std::printf("  %-46s recovered in %6.2f s\n", what,
                (sim.now() - start).to_seconds());
  };

  std::printf("Failure storm:\n");
  board.inject(core::make_crash("lb"), sim.now());
  recover_and_report("lb crash (1.5 s tier)");

  sim.run_for(Duration::seconds(5.0));
  board.inject(core::make_crash("app2"), sim.now());
  recover_and_report("app2 crash (6 s tier)");

  sim.run_for(Duration::seconds(5.0));
  board.inject(core::make_joint("app1", {"app1", "sessions"}), sim.now());
  recover_and_report("session corruption (joint {app1,sessions})");

  sim.run_for(Duration::seconds(5.0));
  board.inject(core::make_crash("db"), sim.now());
  recover_and_report("db crash (20 s tier, nothing else dragged in)");

  timeline.ingest(rec, rec.tree());
  std::printf("\nIncident log:\n%s", timeline.render_listing().c_str());
  std::printf("\nThe point: none of this code touched the Mercury station —\n"
              "the tree algebra, oracle, and recoverer are substrate-free.\n"
              "Your system only supplies a ProcessControl and a failure\n"
              "detector that names components.\n");
  return 0;
}
