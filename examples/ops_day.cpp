// A day of ground-station operations, end to end.
//
//   $ ./build/examples/ops_day
//
// Everything in one run: the pass schedule for a Sapphire-like satellite
// (loaded from a TLE), background failures at the Table-1 rates, the
// FD/REC recovery machinery on tree V, §7 health beacons driving proactive
// rejuvenation — gated so planned restarts only happen in the maintenance
// windows *between* passes (§5.2) — and the downlink accounting that says
// what it all cost in science data.
#include <cstdio>

#include "core/health_monitor.h"
#include "core/mercury_trees.h"
#include "orbit/tle.h"
#include "sim/simulator.h"
#include "station/downlink.h"
#include "station/experiment.h"
#include "station/fault_injector.h"
#include "station/health_reporter.h"
#include "station/pass_schedule.h"

int main() {
  using namespace mercury;
  namespace names = core::component_names;
  using util::Duration;
  std::setvbuf(stdout, nullptr, _IONBF, 0);

  sim::Simulator sim(/*seed=*/404);

  // --- The satellite, from a TLE --------------------------------------------
  // A Sapphire-like amateur LEO bird (valid checksums; epoch mapped to t=0).
  const char* kTle =
      "SAPPHIRE-LIKE\n"
      "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927\n"
      "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537\n";
  auto tle = orbit::parse_tle(kTle);
  if (!tle.ok()) {
    std::fprintf(stderr, "TLE: %s\n", tle.error().message().c_str());
    return 1;
  }
  std::printf("Tracking %s (catalog %d), a = %.0f km, i = %.1f deg\n",
              tle.value().name.c_str(), tle.value().catalog_number,
              tle.value().semi_major_axis_km(), tle.value().inclination_deg);

  station::TrialSpec spec;
  spec.tree = core::MercuryTree::kTreeV;
  spec.oracle = station::OracleKind::kHeuristic;
  spec.enable_soft_recovery = true;
  station::MercuryRig rig(sim, spec);
  rig.start();

  // --- The day's pass schedule ------------------------------------------------
  const orbit::Propagator satellite(tle.value().to_elements(sim.now()),
                                    orbit::PerturbationModel::kJ2Secular);
  const auto schedule = station::PassSchedule::for_satellite(
      tle.value().name, rig.station().site(), satellite, sim.now(),
      sim.now() + Duration::days(1.0));
  std::printf("\n%zu passes over %s today:\n", schedule.pass_count(),
              rig.station().site().name().c_str());
  for (const auto& scheduled : schedule.passes()) {
    std::printf("  AOS %7.0fs  LOS %7.0fs  (%.1f min, max el %.1f deg)\n",
                scheduled.pass.aos.to_seconds(), scheduled.pass.los.to_seconds(),
                scheduled.pass.duration().to_seconds() / 60.0,
                orbit::rad_to_deg(scheduled.pass.max_elevation_rad));
  }

  // --- Background failures + health-driven rejuvenation -----------------------
  station::InjectorConfig injector_config;
  station::FaultInjector injector(rig.station(), injector_config);
  injector.start();

  station::StationHealthReporter reporter(rig.station(), "hm");
  core::HealthPolicy policy;
  policy.memory_limit_mb = 90.0;  // fedr leaks into this after ~5 min
  core::HealthMonitor monitor(sim, rig.station().bus(), "hm", policy);
  monitor.set_rejuvenator([&rig](const std::string& component) {
    return rig.rec().planned_restart(component);
  });
  // §5.2 gate: planned restarts need a 60 s clearance before the next AOS.
  monitor.set_maintenance_window([&] {
    return schedule.window_open(sim.now(), Duration::seconds(60.0));
  });
  rig.station().add_bus_restart_listener([&] { monitor.reattach(); });
  reporter.start();
  monitor.start();

  // --- Downlink accounting per pass --------------------------------------------
  std::vector<std::unique_ptr<station::DownlinkSession>> sessions;
  for (const auto& scheduled : schedule.passes()) {
    sessions.push_back(
        std::make_unique<station::DownlinkSession>(rig.station(), scheduled.pass));
    sessions.back()->start();
  }

  sim.run_for(Duration::days(1.0));

  // --- The day in numbers -------------------------------------------------------
  std::printf("\n--- end of day ---\n");
  std::printf("failures injected: %llu (fedr %llu, ses %llu, str %llu, rtu %llu)\n",
              static_cast<unsigned long long>(injector.total_injected()),
              static_cast<unsigned long long>(injector.injected(names::kFedr)),
              static_cast<unsigned long long>(injector.injected(names::kSes)),
              static_cast<unsigned long long>(injector.injected(names::kStr)),
              static_cast<unsigned long long>(injector.injected(names::kRtu)));
  std::printf("recovery actions: %llu (%llu escalations, %llu soft, %llu planned "
              "rejuvenations, %llu deferred to maintenance windows)\n",
              static_cast<unsigned long long>(rig.rec().restarts_executed()),
              static_cast<unsigned long long>(rig.rec().escalations()),
              static_cast<unsigned long long>(rig.rec().soft_recoveries()),
              static_cast<unsigned long long>(rig.rec().planned_restarts()),
              static_cast<unsigned long long>(monitor.rejuvenations_deferred()));
  std::printf("hard failures parked: %zu\n", rig.rec().hard_failures().size());

  double captured = 0.0;
  double offered = 0.0;
  int lost = 0;
  for (const auto& session : sessions) {
    captured += session->report().captured_bits;
    offered += session->report().offered_bits;
    lost += session->report().link_broken ? 1 : 0;
  }
  std::printf("science data: %.1f of %.1f Mbit captured (%.1f%%), %d/%zu "
              "sessions lost to link breaks\n",
              captured / 1e6, offered / 1e6,
              offered > 0 ? 100.0 * captured / offered : 100.0, lost,
              sessions.size());
  std::printf("\nThe §5.2 economics in action: reactive recovery keeps passes\n"
              "alive (~6 s MTTR on tree V), and the health monitor parks its\n"
              "planned fedr restarts in the gaps between passes.\n");
  return 0;
}
