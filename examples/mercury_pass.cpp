// A satellite pass, end to end — with a failure in the middle.
//
//   $ ./build/examples/mercury_pass
//
// The station tracks a Sapphire-like LEO satellite: ses propagates the
// orbit and publishes ephemerides over mbus, str slews the antenna, rtu
// Doppler-corrects the downlink and commands the radio through fedr ->
// pbcom -> serial port. Mid-pass we kill fedr; §5.2's point is made by the
// numbers: recovery is fast enough (~6 s) that the pass survives, where a
// full reboot (~25 s) would have risked the whole session.
#include <cstdio>

#include "core/mercury_trees.h"
#include "orbit/pass_predictor.h"
#include "sim/simulator.h"
#include "station/experiment.h"
#include "util/log.h"

int main() {
  using namespace mercury;
  namespace names = core::component_names;

  sim::Simulator sim(/*seed=*/7);

  station::TrialSpec spec;
  spec.tree = core::MercuryTree::kTreeV;
  spec.oracle = station::OracleKind::kHeuristic;  // no ground-truth oracle
  spec.enable_domain_behavior = true;             // ephemerides, tuning, ...
  station::MercuryRig rig(sim, spec);
  station::Station& station = rig.station();

  // Predict the next pass over Stanford.
  const auto passes = orbit::predict_passes(
      station.site(), station.satellite(), sim.now(),
      sim.now() + util::Duration::hours(24.0));
  if (passes.empty()) {
    std::printf("no pass in the next 24 h (unexpected for this orbit)\n");
    return 1;
  }
  const orbit::Pass& pass = passes.front();
  std::printf("Next pass over %s: AOS t=%.0fs, LOS t=%.0fs (%.1f min, max "
              "elevation %.1f deg)\n",
              station.site().name().c_str(), pass.aos.to_seconds(),
              pass.los.to_seconds(), pass.duration().to_seconds() / 60.0,
              orbit::rad_to_deg(pass.max_elevation_rad));

  rig.start();

  // Run up to mid-pass, then kill the radio front-end driver.
  const util::TimePoint mid = pass.aos + pass.duration() / 2.0;
  sim.run_until(mid);
  const auto look = station.site().look_at(station.satellite(), sim.now());
  std::printf("\nt=%.0fs mid-pass: el=%.1f deg, range=%.0f km, antenna "
              "error=%.2f deg, radio tuned to %.3f MHz (Doppler offset "
              "%+.1f kHz)\n",
              sim.now().to_seconds(), orbit::rad_to_deg(look.elevation_rad),
              look.range_km, station.antenna().pointing_error_deg(sim.now()),
              station.radio().frequency_hz() / 1e6,
              (station.radio().frequency_hz() - 437.1e6) / 1e3);

  std::printf("\n>>> killing fedr mid-pass\n");
  const util::TimePoint injected = sim.now();
  station.inject_crash(names::kFedr);
  while (!station.all_functional() && sim.now() < pass.los) sim.step();
  const double outage = (sim.now() - injected).to_seconds();
  std::printf(">>> link recovered in %.2f s — %s\n", outage,
              outage < 30.0 ? "pass survives (paper §5.2: a short MTTR gives "
                              "high assurance we will not lose the whole pass)"
                            : "pass lost");

  // Ride out the rest of the pass.
  sim.run_until(pass.los + util::Duration::seconds(5.0));
  const auto* ses =
      dynamic_cast<const station::SesComponent*>(station.component(names::kSes));
  const auto* str =
      dynamic_cast<const station::StrComponent*>(station.component(names::kStr));
  const auto* rtu =
      dynamic_cast<const station::RtuComponent*>(station.component(names::kRtu));
  std::printf("\nPass complete: %llu ephemerides published, %llu antenna "
              "pointings, %llu radio tunings, %llu radio commands applied\n",
              static_cast<unsigned long long>(ses ? ses->ephemerides_published() : 0),
              static_cast<unsigned long long>(str ? str->pointings_commanded() : 0),
              static_cast<unsigned long long>(rtu ? rtu->tunes_commanded() : 0),
              static_cast<unsigned long long>(station.radio().commands_applied()));
  std::printf("mbus traffic: %llu sent, %llu delivered, %llu dropped while "
              "bus/endpoints down\n",
              static_cast<unsigned long long>(station.bus().stats().sent),
              static_cast<unsigned long long>(station.bus().stats().delivered),
              static_cast<unsigned long long>(
                  station.bus().stats().dropped_bus_down +
                  station.bus().stats().dropped_no_endpoint));
  return 0;
}
