// Unit tests: the §7 tree optimizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/mercury_trees.h"
#include "core/optimizer.h"

namespace mercury::core {
namespace {

namespace names = component_names;

TEST(Enumerate, SingleComponent) {
  const auto trees = enumerate_candidate_trees({"a"});
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].all_components(), std::vector<std::string>{"a"});
}

TEST(Enumerate, TwoComponents) {
  // Partitions: {a}{b} -> 1 shape combo; {a,b} -> consolidated, joint,
  // promote-a, promote-b = 4. Total 5.
  const auto trees = enumerate_candidate_trees({"a", "b"});
  EXPECT_EQ(trees.size(), 5u);
}

TEST(Enumerate, CountsGrowAsExpected) {
  EXPECT_EQ(enumerate_candidate_trees({"a", "b", "c"}).size(), 18u);
  EXPECT_EQ(enumerate_candidate_trees({"a", "b", "c", "d"}).size(), 99u);
}

TEST(Enumerate, AllCandidatesValidAndComplete) {
  const std::vector<std::string> components = {"a", "b", "c", "d"};
  for (const auto& tree : enumerate_candidate_trees(components)) {
    EXPECT_TRUE(tree.validate().ok());
    EXPECT_EQ(tree.all_components(), components);
  }
}

TEST(Enumerate, NoDuplicateSignaturesWithinReason) {
  // Promote-a over block {a,b} equals... nothing else in the grammar; the
  // enumeration should not produce exact duplicates for 3 components.
  const auto trees = enumerate_candidate_trees({"a", "b", "c"});
  std::set<std::vector<std::vector<std::string>>> signatures;
  for (const auto& tree : trees) signatures.insert(group_signature(tree));
  // Some shapes coincide on purpose (promotion over a 2-block has the same
  // groups as... none), so expect full uniqueness here.
  EXPECT_EQ(signatures.size(), trees.size());
}

TEST(Optimize, RankingSortedAndBounded) {
  const SystemModel model = mercury_system_model(true, 0.3);
  const std::vector<std::string> components = {
      names::kMbus, names::kSes, names::kStr,
      names::kRtu,  names::kFedr, names::kPbcom};
  const auto result = optimize_tree(components, model, 5);
  ASSERT_EQ(result.ranking.size(), 5u);
  EXPECT_GT(result.candidates_evaluated, 1000u);
  for (std::size_t i = 1; i < result.ranking.size(); ++i) {
    EXPECT_LE(result.ranking[i - 1].predicted_mttr_s,
              result.ranking[i].predicted_mttr_s);
  }
}

TEST(Optimize, BeatsOrMatchesPublishedTrees) {
  for (double p_low : {0.0, 0.3}) {
    const SystemModel model = mercury_system_model(true, p_low);
    const auto result = optimize_tree({names::kMbus, names::kSes, names::kStr,
                                       names::kRtu, names::kFedr, names::kPbcom},
                                      model, 1);
    ASSERT_FALSE(result.ranking.empty());
    const double best = result.ranking.front().predicted_mttr_s;
    EXPECT_LE(best, predicted_system_mttr(make_tree_iv(), model) + 1e-9);
    EXPECT_LE(best, predicted_system_mttr(make_tree_v(), model) + 1e-9);
  }
}

TEST(Optimize, FaultyOracleWinnerShieldsPbcom) {
  // The §4.4 lesson, rediscovered: under a faulty oracle the best tree has
  // no pbcom-only restart group.
  const SystemModel model = mercury_system_model(true, 0.3);
  const auto result = optimize_tree({names::kMbus, names::kSes, names::kStr,
                                     names::kRtu, names::kFedr, names::kPbcom},
                                    model, 1);
  ASSERT_FALSE(result.ranking.empty());
  const RestartTree& best = result.ranking.front().tree;
  const auto pbcom_cell = best.lowest_cell_covering(names::kPbcom);
  ASSERT_TRUE(pbcom_cell.has_value());
  const auto group = best.group_components(*pbcom_cell);
  EXPECT_NE(std::find(group.begin(), group.end(), names::kFedr), group.end())
      << best.render();
}

TEST(Optimize, WinnerConsolidatesCoupledPair) {
  // With only ses/str failures and their coupling in play, the optimizer
  // must put them in one cell.
  SystemModel model;
  model.detection_latency_s = 0.66;
  model.restart_duration_s = {{"ses", 4.1}, {"str", 4.2}};
  model.coupled_pairs.push_back(CoupledPairModel{"ses", "str", 1.4, 0.05});
  const double per_hour = 1.0 / 3600.0;
  model.failure_classes = {{"ses", {"ses"}, per_hour}, {"str", {"str"}, per_hour}};

  const auto result = optimize_tree({"ses", "str"}, model, 1);
  ASSERT_FALSE(result.ranking.empty());
  const RestartTree& best = result.ranking.front().tree;
  EXPECT_EQ(best.find_component("ses"), best.find_component("str"))
      << best.render();
}

TEST(Optimize, IndependentCheapComponentsStaySeparate) {
  // No couplings, no joint failures: every component should keep its own
  // restart cell (tree-II shape) so failures cure at the leaf.
  SystemModel model;
  model.detection_latency_s = 0.5;
  model.contention_slope = 0.1;
  model.restart_duration_s = {{"a", 2.0}, {"b", 10.0}, {"c", 4.0}};
  const double per_hour = 1.0 / 3600.0;
  model.failure_classes = {
      {"a", {"a"}, per_hour}, {"b", {"b"}, per_hour}, {"c", {"c"}, per_hour}};

  const auto result = optimize_tree({"a", "b", "c"}, model, 1);
  const RestartTree& best = result.ranking.front().tree;
  std::set<std::optional<NodeId>> cells = {best.find_component("a"),
                                           best.find_component("b"),
                                           best.find_component("c")};
  EXPECT_EQ(cells.size(), 3u) << best.render();
}

}  // namespace
}  // namespace mercury::core
