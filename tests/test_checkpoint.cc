// Checkpointed warm restarts (ISSUE 3): CheckpointStore validity semantics,
// and end-to-end trials showing warm restarts cut recovery time while every
// damaged checkpoint still ends in a successful (cold) recovery.
#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"

namespace mercury::core {
namespace {

using util::Duration;
using util::TimePoint;

Checkpoint make_checkpoint(const std::string& component, int version,
                           TimePoint saved_at) {
  Checkpoint checkpoint;
  checkpoint.component = component;
  checkpoint.version = version;
  checkpoint.saved_at = saved_at;
  checkpoint.payload = {{"k", "v"}};
  checkpoint.checksum = checkpoint_checksum(checkpoint);
  return checkpoint;
}

TEST(CheckpointStore, SaveFindValidate) {
  CheckpointStore store;
  const TimePoint t0 = TimePoint::from_seconds(10.0);
  store.save("ses", {{"peer", "str"}, {"session", "3"}}, t0);

  const Checkpoint* checkpoint = store.find("ses");
  ASSERT_NE(checkpoint, nullptr);
  EXPECT_EQ(checkpoint->component, "ses");
  EXPECT_EQ(checkpoint->version, kCheckpointSchemaVersion);
  EXPECT_EQ(checkpoint->checksum, checkpoint_checksum(*checkpoint));
  EXPECT_FALSE(checkpoint->poisoned);
  EXPECT_EQ(store.validate("ses", TimePoint::from_seconds(11.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kValid);
  EXPECT_EQ(store.saves(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(CheckpointStore, MissingComponentIsMissing) {
  CheckpointStore store;
  EXPECT_EQ(store.find("rtu"), nullptr);
  EXPECT_EQ(store.validate("rtu", TimePoint::from_seconds(0.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kMissing);
  EXPECT_FALSE(store.discard("rtu"));
}

TEST(CheckpointStore, SnapshotOlderThanTtlIsStale) {
  CheckpointStore store;
  store.save("rtu", {{"hz", "437"}}, TimePoint::from_seconds(0.0));
  const Duration ttl = Duration::seconds(60.0);
  EXPECT_EQ(store.validate("rtu", TimePoint::from_seconds(59.0), ttl),
            CheckpointVerdict::kValid);
  EXPECT_EQ(store.validate("rtu", TimePoint::from_seconds(61.0), ttl),
            CheckpointVerdict::kStale);
  // stale_date backdates in place (the injector's lever).
  store.save("rtu", {{"hz", "437"}}, TimePoint::from_seconds(100.0));
  EXPECT_TRUE(store.stale_date("rtu", TimePoint::from_seconds(0.0)));
  EXPECT_EQ(store.validate("rtu", TimePoint::from_seconds(100.0), ttl),
            CheckpointVerdict::kStale);
}

TEST(CheckpointStore, CorruptionIsDetectedByChecksum) {
  CheckpointStore store;
  store.save("pbcom", {{"serial", "negotiated"}}, TimePoint::from_seconds(1.0));
  EXPECT_TRUE(store.corrupt("pbcom"));
  EXPECT_EQ(store.validate("pbcom", TimePoint::from_seconds(2.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kCorrupt);
  EXPECT_FALSE(store.find("pbcom")->poisoned);
  EXPECT_FALSE(store.corrupt("no-such"));
}

TEST(CheckpointStore, PoisonPassesValidationButIsMarked) {
  // Undetectable corruption: payload flipped AND checksum recomputed. The
  // store validates it kValid — only the poisoned ground-truth flag (which
  // drives the injected warm-start crash) records the truth.
  CheckpointStore store;
  store.save("fedr", {{"pbcom_session", "cached"}}, TimePoint::from_seconds(1.0));
  EXPECT_TRUE(store.poison("fedr"));
  EXPECT_EQ(store.validate("fedr", TimePoint::from_seconds(2.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kValid);
  EXPECT_TRUE(store.find("fedr")->poisoned);
}

TEST(CheckpointStore, WrongSchemaVersionNeverWarmStarts) {
  CheckpointStore store;
  store.put(make_checkpoint("ses", kCheckpointSchemaVersion + 1,
                            TimePoint::from_seconds(1.0)));
  EXPECT_EQ(store.validate("ses", TimePoint::from_seconds(2.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kVersionMismatch);
  // Checksum is judged before version: a snapshot that is both corrupt and
  // mis-versioned reports kCorrupt.
  Checkpoint bad = make_checkpoint("str", kCheckpointSchemaVersion + 1,
                                   TimePoint::from_seconds(1.0));
  bad.checksum ^= 1;
  store.put(std::move(bad));
  EXPECT_EQ(store.validate("str", TimePoint::from_seconds(2.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kCorrupt);
}

TEST(CheckpointStore, DiscardAndOverwrite) {
  CheckpointStore store;
  store.save("ses", {{"session", "1"}}, TimePoint::from_seconds(1.0));
  store.save("ses", {{"session", "2"}}, TimePoint::from_seconds(2.0));
  ASSERT_NE(store.find("ses"), nullptr);
  EXPECT_EQ(store.find("ses")->payload.front().second, "2");
  EXPECT_EQ(store.saves(), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.discard("ses"));
  EXPECT_EQ(store.find("ses"), nullptr);
  EXPECT_EQ(store.discards(), 1u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace mercury::core

namespace mercury::station {
namespace {

namespace names = core::component_names;
using core::MercuryTree;
using util::Duration;

TrialSpec warm_spec(const std::string& victim) {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kHeuristic;
  spec.fail_component = victim;
  spec.seed = 9001;
  spec.enable_checkpoints = true;
  return spec;
}

TEST(WarmRestartTrial, SesWarmRestartBeatsColdAndSkipsPeerWedge) {
  // Tree II keeps ses in its own cell, so a cold ses restart resynchronizes
  // against str and wedges it — the induced second restart that drove the
  // paper's group consolidation. A warm ses resumes its saved session
  // instead, so the peer never wedges.
  TrialSpec spec = warm_spec(names::kSes);
  spec.tree = MercuryTree::kTreeII;
  TrialSpec cold = spec;
  cold.enable_checkpoints = false;

  const TrialResult warm_result = run_trial(spec);
  const TrialResult cold_result = run_trial(cold);

  ASSERT_FALSE(warm_result.timed_out);
  ASSERT_FALSE(cold_result.timed_out);
  EXPECT_GE(warm_result.warm_restarts, 1);
  EXPECT_EQ(cold_result.warm_restarts, 0);
  // Warm skips the resynchronization: the restarted ses resumes its session
  // against the still-synced str instead of wedging it into a second
  // failure, so recovery collapses and the induced restart disappears.
  EXPECT_LT(warm_result.recovery.to_seconds(),
            cold_result.recovery.to_seconds());
  EXPECT_LT(warm_result.restarts, cold_result.restarts);
}

TEST(WarmRestartTrial, PbcomWarmRestartSkipsSerialNegotiation) {
  // pbcom's cold start is the paper's worst offender ("takes over 21
  // seconds" of serial negotiation); its checkpoint preserves the
  // negotiated parameters, so the warm figure must be far smaller.
  TrialSpec spec = warm_spec(names::kPbcom);
  TrialSpec cold = spec;
  cold.enable_checkpoints = false;

  const TrialResult warm_result = run_trial(spec);
  const TrialResult cold_result = run_trial(cold);

  ASSERT_FALSE(warm_result.timed_out);
  ASSERT_FALSE(cold_result.timed_out);
  EXPECT_GE(warm_result.warm_restarts, 1);
  EXPECT_LT(warm_result.recovery.to_seconds(),
            cold_result.recovery.to_seconds());
  // The saving is the negotiation itself, not loop noise: expect several
  // seconds back, not milliseconds.
  EXPECT_GT(cold_result.recovery.to_seconds() -
                warm_result.recovery.to_seconds(),
            5.0);
}

TEST(WarmRestartTrial, CorruptCheckpointFallsBackCold) {
  TrialSpec spec = warm_spec(names::kRtu);
  spec.checkpoint_damage = TrialSpec::CheckpointDamage::kCorrupt;
  const TrialResult result = run_trial(spec);
  ASSERT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_EQ(result.warm_restarts, 0);
  EXPECT_GE(result.cold_fallbacks, 1);
  EXPECT_EQ(result.checkpoint_crashes, 0);
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(WarmRestartTrial, StaleCheckpointFallsBackCold) {
  TrialSpec spec = warm_spec(names::kRtu);
  spec.checkpoint_ttl = Duration::seconds(30.0);
  spec.checkpoint_damage = TrialSpec::CheckpointDamage::kStale;
  const TrialResult result = run_trial(spec);
  ASSERT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_EQ(result.warm_restarts, 0);
  EXPECT_GE(result.cold_fallbacks, 1);
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(WarmRestartTrial, PoisonedCheckpointCrashesWarmStartThenRecoversCold) {
  // Undetectable corruption: validation passes, the warm attempt crashes
  // mid-startup. That is a restart-path fault by construction, so the trial
  // needs ISSUE 2's hardening — the deadline notices the dead startup, the
  // checkpoint is shed as fault-suspected, and the retry runs cold.
  TrialSpec spec = warm_spec(names::kRtu);
  spec.harden_restart_path = true;
  spec.checkpoint_damage = TrialSpec::CheckpointDamage::kPoison;
  const TrialResult result = run_trial(spec);
  ASSERT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_GE(result.warm_restarts, 1);       // the doomed warm attempt
  EXPECT_GE(result.checkpoint_crashes, 1);  // ...died on the poisoned state
  EXPECT_GE(result.restart_timeouts, 1);    // ...and the deadline caught it
  EXPECT_GE(result.cold_fallbacks, 1);      // the retry ran cold
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(WarmRestartTrial, PoisonWithoutHardeningStallsLegacyPath) {
  // The contrapositive of the test above, mirroring ISSUE 2's regression
  // pair: without the restart deadline nothing notices the startup that
  // died on poisoned state, and the trial stalls to its timeout.
  TrialSpec spec = warm_spec(names::kRtu);
  spec.harden_restart_path = false;
  spec.checkpoint_damage = TrialSpec::CheckpointDamage::kPoison;
  spec.timeout = Duration::seconds(60.0);
  const TrialResult result = run_trial(spec);
  EXPECT_TRUE(result.timed_out);
  EXPECT_GE(result.checkpoint_crashes, 1);
}

TEST(WarmRestartTrial, SameSeedTrialsAreDeterministic) {
  for (const auto damage : {TrialSpec::CheckpointDamage::kNone,
                            TrialSpec::CheckpointDamage::kCorrupt,
                            TrialSpec::CheckpointDamage::kPoison}) {
    TrialSpec spec = warm_spec(names::kSes);
    spec.harden_restart_path = true;
    spec.checkpoint_damage = damage;
    const TrialResult a = run_trial(spec);
    const TrialResult b = run_trial(spec);
    EXPECT_EQ(a.recovery.to_seconds(), b.recovery.to_seconds());
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.warm_restarts, b.warm_restarts);
    EXPECT_EQ(a.cold_fallbacks, b.cold_fallbacks);
    EXPECT_EQ(a.checkpoint_crashes, b.checkpoint_crashes);
  }
}

TEST(WarmRestartTrial, CheckpointsOffDrawsNoExtraRandomness) {
  // The policy gate: with checkpoints off, a trial must reproduce the
  // legacy numbers bit-for-bit (no extra rng draws, saves, or trace args).
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.fail_component = names::kSes;
  spec.seed = 777;
  const TrialResult legacy = run_trial(spec);
  spec.enable_checkpoints = false;  // explicit, same as default
  spec.checkpoint_ttl = Duration::minutes(3.0);
  const TrialResult off = run_trial(spec);
  EXPECT_EQ(legacy.recovery.to_seconds(), off.recovery.to_seconds());
  EXPECT_EQ(legacy.restarts, off.restarts);
  EXPECT_EQ(off.warm_restarts, 0);
  EXPECT_EQ(off.cold_fallbacks, 0);
}

}  // namespace
}  // namespace mercury::station
