// Checkpointed warm restarts (ISSUE 3): CheckpointStore validity semantics,
// and end-to-end trials showing warm restarts cut recovery time while every
// damaged checkpoint still ends in a successful (cold) recovery.
//
// Tiered storage (ISSUE 7): TieredCheckpointStore write-through / tier-walk
// / rebuild semantics, deterministic partner choice, and trials proving the
// partner replica keeps restarts warm when the local tier dies — including
// the rebuild path (a second same-cell failure warm-hits again).
#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/mercury_trees.h"
#include "core/restart_tree.h"
#include "sim/simulator.h"
#include "station/experiment.h"

namespace mercury::core {
namespace {

using util::Duration;
using util::TimePoint;

Checkpoint make_checkpoint(const std::string& component, int version,
                           TimePoint saved_at) {
  Checkpoint checkpoint;
  checkpoint.component = component;
  checkpoint.version = version;
  checkpoint.saved_at = saved_at;
  checkpoint.payload = {{"k", "v"}};
  checkpoint.checksum = checkpoint_checksum(checkpoint);
  return checkpoint;
}

TEST(CheckpointStore, SaveFindValidate) {
  CheckpointStore store;
  const TimePoint t0 = TimePoint::from_seconds(10.0);
  store.save("ses", {{"peer", "str"}, {"session", "3"}}, t0);

  const Checkpoint* checkpoint = store.find("ses");
  ASSERT_NE(checkpoint, nullptr);
  EXPECT_EQ(checkpoint->component, "ses");
  EXPECT_EQ(checkpoint->version, kCheckpointSchemaVersion);
  EXPECT_EQ(checkpoint->checksum, checkpoint_checksum(*checkpoint));
  EXPECT_FALSE(checkpoint->poisoned);
  EXPECT_EQ(store.validate("ses", TimePoint::from_seconds(11.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kValid);
  EXPECT_EQ(store.saves(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(CheckpointStore, MissingComponentIsMissing) {
  CheckpointStore store;
  EXPECT_EQ(store.find("rtu"), nullptr);
  EXPECT_EQ(store.validate("rtu", TimePoint::from_seconds(0.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kMissing);
  EXPECT_FALSE(store.discard("rtu"));
}

TEST(CheckpointStore, SnapshotOlderThanTtlIsStale) {
  CheckpointStore store;
  store.save("rtu", {{"hz", "437"}}, TimePoint::from_seconds(0.0));
  const Duration ttl = Duration::seconds(60.0);
  EXPECT_EQ(store.validate("rtu", TimePoint::from_seconds(59.0), ttl),
            CheckpointVerdict::kValid);
  EXPECT_EQ(store.validate("rtu", TimePoint::from_seconds(61.0), ttl),
            CheckpointVerdict::kStale);
  // stale_date backdates in place (the injector's lever).
  store.save("rtu", {{"hz", "437"}}, TimePoint::from_seconds(100.0));
  EXPECT_TRUE(store.stale_date("rtu", TimePoint::from_seconds(0.0)));
  EXPECT_EQ(store.validate("rtu", TimePoint::from_seconds(100.0), ttl),
            CheckpointVerdict::kStale);
}

TEST(CheckpointStore, CorruptionIsDetectedByChecksum) {
  CheckpointStore store;
  store.save("pbcom", {{"serial", "negotiated"}}, TimePoint::from_seconds(1.0));
  EXPECT_TRUE(store.corrupt("pbcom"));
  EXPECT_EQ(store.validate("pbcom", TimePoint::from_seconds(2.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kCorrupt);
  EXPECT_FALSE(store.find("pbcom")->poisoned);
  EXPECT_FALSE(store.corrupt("no-such"));
}

TEST(CheckpointStore, PoisonPassesValidationButIsMarked) {
  // Undetectable corruption: payload flipped AND checksum recomputed. The
  // store validates it kValid — only the poisoned ground-truth flag (which
  // drives the injected warm-start crash) records the truth.
  CheckpointStore store;
  store.save("fedr", {{"pbcom_session", "cached"}}, TimePoint::from_seconds(1.0));
  EXPECT_TRUE(store.poison("fedr"));
  EXPECT_EQ(store.validate("fedr", TimePoint::from_seconds(2.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kValid);
  EXPECT_TRUE(store.find("fedr")->poisoned);
}

TEST(CheckpointStore, WrongSchemaVersionNeverWarmStarts) {
  CheckpointStore store;
  store.put(make_checkpoint("ses", kCheckpointSchemaVersion + 1,
                            TimePoint::from_seconds(1.0)));
  EXPECT_EQ(store.validate("ses", TimePoint::from_seconds(2.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kVersionMismatch);
  // Checksum is judged before version: a snapshot that is both corrupt and
  // mis-versioned reports kCorrupt.
  Checkpoint bad = make_checkpoint("str", kCheckpointSchemaVersion + 1,
                                   TimePoint::from_seconds(1.0));
  bad.checksum ^= 1;
  store.put(std::move(bad));
  EXPECT_EQ(store.validate("str", TimePoint::from_seconds(2.0),
                           Duration::minutes(10.0)),
            CheckpointVerdict::kCorrupt);
}

TEST(CheckpointStore, DiscardAndOverwrite) {
  CheckpointStore store;
  store.save("ses", {{"session", "1"}}, TimePoint::from_seconds(1.0));
  store.save("ses", {{"session", "2"}}, TimePoint::from_seconds(2.0));
  ASSERT_NE(store.find("ses"), nullptr);
  EXPECT_EQ(store.find("ses")->payload.front().second, "2");
  EXPECT_EQ(store.saves(), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.discard("ses"));
  EXPECT_EQ(store.find("ses"), nullptr);
  EXPECT_EQ(store.discards(), 1u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

// --- Tiered storage (ISSUE 7) ------------------------------------------------

CheckpointPolicy tiered_policy(bool l1 = true, bool l2 = true) {
  CheckpointPolicy policy;
  policy.enabled = true;
  policy.l1_partner = l1;
  policy.l2_stable = l2;
  return policy;
}

TEST(TieredCheckpointStore, WriteThroughPopulatesEnabledTiers) {
  TieredCheckpointStore store;
  store.configure(tiered_policy());
  store.set_partners({{"ses", "str"}, {"str", "ses"}});
  const TimePoint t0 = TimePoint::from_seconds(5.0);
  store.save("ses", {{"session", "3"}}, t0);
  EXPECT_TRUE(store.has("ses", CheckpointTier::kL0Local));
  EXPECT_TRUE(store.has("ses", CheckpointTier::kL1Partner));
  EXPECT_TRUE(store.has("ses", CheckpointTier::kL2Stable));
  EXPECT_EQ(store.saves(), 1u);

  // A component without an assigned partner gets no replica, but the other
  // enabled tiers still fill.
  store.save("rtu", {{"hz", "437"}}, t0);
  EXPECT_TRUE(store.has("rtu", CheckpointTier::kL0Local));
  EXPECT_FALSE(store.has("rtu", CheckpointTier::kL1Partner));
  EXPECT_TRUE(store.has("rtu", CheckpointTier::kL2Stable));
}

TEST(TieredCheckpointStore, DisabledPolicySavesNothing) {
  TieredCheckpointStore store;  // default policy: disabled
  store.save("ses", {{"session", "3"}}, TimePoint::from_seconds(1.0));
  EXPECT_EQ(store.saves(), 0u);
  EXPECT_FALSE(store.has("ses", CheckpointTier::kL0Local));
  const TierLookup lookup = store.lookup("ses", TimePoint::from_seconds(2.0));
  EXPECT_FALSE(lookup.hit);
  EXPECT_TRUE(lookup.probes.empty());
}

TEST(TieredCheckpointStore, LookupWalksNewestFirstAndServesFirstValidTier) {
  TieredCheckpointStore store;
  store.configure(tiered_policy());
  store.set_partners({{"pbcom", "fedr"}});
  const TimePoint t0 = TimePoint::from_seconds(1.0);
  const TimePoint now = TimePoint::from_seconds(2.0);
  store.save("pbcom", {{"serial", "negotiated"}}, t0);

  TierLookup lookup = store.lookup("pbcom", now);
  ASSERT_TRUE(lookup.hit);
  EXPECT_EQ(lookup.tier, CheckpointTier::kL0Local);

  ASSERT_TRUE(store.discard_tier("pbcom", CheckpointTier::kL0Local));
  lookup = store.lookup("pbcom", now);
  ASSERT_TRUE(lookup.hit);
  EXPECT_EQ(lookup.tier, CheckpointTier::kL1Partner);
  EXPECT_EQ(lookup.probes.front().verdict, CheckpointVerdict::kMissing);

  ASSERT_TRUE(store.discard_tier("pbcom", CheckpointTier::kL1Partner));
  lookup = store.lookup("pbcom", now);
  ASSERT_TRUE(lookup.hit);
  EXPECT_EQ(lookup.tier, CheckpointTier::kL2Stable);

  EXPECT_EQ(store.kill_tier(CheckpointTier::kL2Stable), 1u);
  lookup = store.lookup("pbcom", now);
  EXPECT_FALSE(lookup.hit);
  EXPECT_EQ(lookup.miss_reason(), "missing");
  EXPECT_EQ(store.tier_hits(CheckpointTier::kL0Local), 1u);
  EXPECT_EQ(store.tier_hits(CheckpointTier::kL1Partner), 1u);
  EXPECT_EQ(store.tier_hits(CheckpointTier::kL2Stable), 1u);
}

TEST(TieredCheckpointStore, CorruptTierCopyIsDeletedAndWalkContinues) {
  TieredCheckpointStore store;
  store.configure(tiered_policy());
  store.set_partners({{"ses", "str"}});
  const TimePoint now = TimePoint::from_seconds(2.0);
  store.save("ses", {{"session", "3"}}, TimePoint::from_seconds(1.0));
  ASSERT_TRUE(store.corrupt("ses", CheckpointTier::kL0Local));

  const TierLookup lookup = store.lookup("ses", now);
  ASSERT_TRUE(lookup.hit);
  EXPECT_EQ(lookup.tier, CheckpointTier::kL1Partner);
  ASSERT_GE(lookup.probes.size(), 2u);
  EXPECT_EQ(lookup.probes.front().verdict, CheckpointVerdict::kCorrupt);
  EXPECT_TRUE(lookup.probes.front().discarded);
  // The corrupt local copy is gone for good; the replica still serves.
  EXPECT_FALSE(store.has("ses", CheckpointTier::kL0Local));
}

TEST(TieredCheckpointStore, StaleTierCopyIsKeptNotDeleted) {
  TieredCheckpointStore store;
  store.configure(tiered_policy(false, false));  // L0 only
  store.save("rtu", {{"hz", "437"}}, TimePoint::from_seconds(0.0));
  ASSERT_TRUE(store.stale_date("rtu", CheckpointTier::kL0Local,
                               TimePoint::from_seconds(0.0) -
                                   Duration::minutes(20.0)));
  const TierLookup lookup = store.lookup("rtu", TimePoint::from_seconds(1.0));
  EXPECT_FALSE(lookup.hit);
  EXPECT_EQ(lookup.miss_reason(), "stale");
  // Stale copies stay: staleness depends on `now`, and a rebuild from a
  // fresher tier overwrites them.
  EXPECT_TRUE(store.has("rtu", CheckpointTier::kL0Local));
}

TEST(TieredCheckpointStore, SuspectDiscardShedsOnlyTheLocalTier) {
  TieredCheckpointStore store;
  store.configure(tiered_policy());
  store.set_partners({{"pbcom", "fedr"}});
  store.save("pbcom", {{"serial", "negotiated"}}, TimePoint::from_seconds(1.0));

  EXPECT_TRUE(store.suspect_discard("pbcom"));
  EXPECT_FALSE(store.has("pbcom", CheckpointTier::kL0Local));
  EXPECT_TRUE(store.has("pbcom", CheckpointTier::kL1Partner));
  EXPECT_TRUE(store.has("pbcom", CheckpointTier::kL2Stable));
  EXPECT_EQ(store.suspect_discards(), 1u);
  // The retry's walk still warm-hits on the replica.
  EXPECT_TRUE(store.lookup("pbcom", TimePoint::from_seconds(2.0)).hit);
  // A second shed finds nothing local.
  EXPECT_FALSE(store.suspect_discard("pbcom"));
}

TEST(TieredCheckpointStore, RebuildRepopulatesLostTiersKeepingSavedAt) {
  TieredCheckpointStore store;
  store.configure(tiered_policy());
  store.set_partners({{"ses", "str"}});
  const TimePoint t0 = TimePoint::from_seconds(3.0);
  const TimePoint now = TimePoint::from_seconds(4.0);
  store.save("ses", {{"session", "3"}}, t0);
  ASSERT_TRUE(store.discard_tier("ses", CheckpointTier::kL0Local));
  ASSERT_TRUE(store.discard_tier("ses", CheckpointTier::kL2Stable));

  EXPECT_EQ(store.rebuild("ses", now), 2u);
  EXPECT_TRUE(store.has("ses", CheckpointTier::kL0Local));
  EXPECT_TRUE(store.has("ses", CheckpointTier::kL2Stable));
  // Replication does not refresh state: the copy keeps the source's age.
  EXPECT_EQ(store.find("ses", CheckpointTier::kL0Local)->saved_at, t0);
  EXPECT_EQ(store.rebuilds(), 2u);
  // Nothing left to do on a fully-populated component.
  EXPECT_EQ(store.rebuild("ses", now), 0u);
  // No valid copy anywhere -> nothing to rebuild from.
  store.discard("ses");
  EXPECT_EQ(store.rebuild("ses", now), 0u);
}

TEST(TieredCheckpointStore, HostDownDropsExactlyTheReplicasItHeld) {
  TieredCheckpointStore store;
  store.configure(tiered_policy());
  store.set_partners({{"ses", "str"}, {"str", "ses"}, {"rtu", "ses"}});
  const TimePoint t0 = TimePoint::from_seconds(1.0);
  store.save("ses", {{"a", "1"}}, t0);
  store.save("str", {{"b", "2"}}, t0);
  store.save("rtu", {{"c", "3"}}, t0);

  // ses hosts the replicas of str and rtu; its own replica lives in str.
  EXPECT_EQ(store.on_host_down("ses"), 2u);
  EXPECT_FALSE(store.has("str", CheckpointTier::kL1Partner));
  EXPECT_FALSE(store.has("rtu", CheckpointTier::kL1Partner));
  EXPECT_TRUE(store.has("ses", CheckpointTier::kL1Partner));
  EXPECT_EQ(store.host_loss_drops(), 2u);
  // Unknown host: nothing hosted, nothing dropped.
  EXPECT_EQ(store.on_host_down("mbus"), 0u);
}

// ISSUE 8 satellite regression: a parked (hard-failed) component never comes
// back, so the L1 replicas it hosted stayed orphaned forever — on_host_down
// drops them but the ring was never rewired, and every later failure of the
// orphaned components fell through to L2/cold. on_host_parked must walk the
// partner ring past parked hosts, re-partner the orphans, and rebuild their
// replicas at the new hosts from surviving tiers.
TEST(TieredCheckpointStore, ParkedHostReassignsAndRebuildsOrphanedReplicas) {
  TieredCheckpointStore store;
  store.configure(tiered_policy());
  store.set_partners({{"ses", "str"}, {"str", "ses"}, {"rtu", "ses"}});
  const TimePoint t0 = TimePoint::from_seconds(1.0);
  store.save("ses", {{"a", "1"}}, t0);
  store.save("str", {{"b", "2"}}, t0);
  store.save("rtu", {{"c", "3"}}, t0);

  // ses parks: str and rtu (both hosted by ses) are re-partnered along the
  // sorted ring {rtu, ses, str}, skipping the parked host and themselves —
  // str -> rtu, rtu -> str — and their replicas are rebuilt there.
  const TimePoint now = TimePoint::from_seconds(2.0);
  EXPECT_EQ(store.on_host_parked("ses", now), 2u);
  EXPECT_TRUE(store.parked_hosts().contains("ses"));
  EXPECT_EQ(store.partner_of("str"), "rtu");
  EXPECT_EQ(store.partner_of("rtu"), "str");
  EXPECT_TRUE(store.has("str", CheckpointTier::kL1Partner));
  EXPECT_TRUE(store.has("rtu", CheckpointTier::kL1Partner));
  // The rebuilt copy keeps the source's age: replication, not a new save.
  EXPECT_EQ(store.find("str", CheckpointTier::kL1Partner)->saved_at, t0);
  EXPECT_EQ(store.parked_reassigns(), 2u);
  // Idempotent: parking an already-parked host reassigns nothing more.
  EXPECT_EQ(store.on_host_parked("ses", now), 0u);
  EXPECT_EQ(store.parked_reassigns(), 2u);

  // Park str too: rtu's new partner is gone again. The only live candidate
  // left on the ring is rtu itself, which the walk must skip — no reassign,
  // and rtu's L1 stays lost rather than self-hosted.
  EXPECT_EQ(store.on_host_parked("str", now), 0u);
  EXPECT_EQ(store.partner_of("rtu"), "str");
  EXPECT_FALSE(store.has("rtu", CheckpointTier::kL1Partner));
}

TEST(TieredCheckpointStore, PlainHostDownNeverReassignsPartners) {
  // The transient-crash path is unchanged: the host is expected back, so its
  // replicas are dropped but the ring keeps pointing at it for the rebuild
  // that follows recovery.
  TieredCheckpointStore store;
  store.configure(tiered_policy());
  store.set_partners({{"ses", "str"}, {"str", "ses"}, {"rtu", "ses"}});
  const TimePoint t0 = TimePoint::from_seconds(1.0);
  store.save("str", {{"b", "2"}}, t0);
  store.save("rtu", {{"c", "3"}}, t0);

  EXPECT_EQ(store.on_host_down("ses"), 2u);
  EXPECT_EQ(store.partner_of("str"), "ses");
  EXPECT_EQ(store.partner_of("rtu"), "ses");
  EXPECT_TRUE(store.parked_hosts().empty());
  EXPECT_EQ(store.parked_reassigns(), 0u);
}

TEST(TieredCheckpointStore, PerTierDamageHooksTargetOneTierOnly) {
  TieredCheckpointStore store;
  store.configure(tiered_policy());
  store.set_partners({{"fedr", "pbcom"}});
  store.save("fedr", {{"pbcom_session", "cached"}}, TimePoint::from_seconds(1.0));

  ASSERT_TRUE(store.poison("fedr", CheckpointTier::kL1Partner));
  EXPECT_FALSE(store.find("fedr", CheckpointTier::kL0Local)->poisoned);
  EXPECT_TRUE(store.find("fedr", CheckpointTier::kL1Partner)->poisoned);
  EXPECT_FALSE(store.find("fedr", CheckpointTier::kL2Stable)->poisoned);

  ASSERT_TRUE(store.corrupt("fedr", CheckpointTier::kL2Stable));
  // L0 untouched: the walk still serves it.
  const TierLookup lookup = store.lookup("fedr", TimePoint::from_seconds(2.0));
  ASSERT_TRUE(lookup.hit);
  EXPECT_EQ(lookup.tier, CheckpointTier::kL0Local);
}

TEST(CheckpointPolicy, ReloadFactorsKeepL0AndColdAtUnity) {
  CheckpointPolicy policy = tiered_policy();
  EXPECT_EQ(policy.reload_factor(CheckpointTier::kL0Local), 1.0);
  EXPECT_GT(policy.reload_factor(CheckpointTier::kL1Partner), 1.0);
  EXPECT_GT(policy.reload_factor(CheckpointTier::kL2Stable),
            policy.reload_factor(CheckpointTier::kL1Partner));
  EXPECT_TRUE(policy.tier_enabled(CheckpointTier::kL1Partner));
  policy.enabled = false;
  EXPECT_FALSE(policy.tier_enabled(CheckpointTier::kL0Local));
  EXPECT_FALSE(policy.tier_enabled(CheckpointTier::kL1Partner));
}

TEST(ChoosePartners, DeterministicCrossCellRing) {
  const RestartTree tree = make_mercury_tree(MercuryTree::kTreeIV);
  const auto partners = choose_partners(tree);
  const auto components = tree.all_components();
  ASSERT_EQ(partners.size(), components.size());
  for (const auto& component : components) {
    const auto it = partners.find(component);
    ASSERT_NE(it, partners.end());
    EXPECT_NE(it->second, component);
    // The partner must sit in a different cell whenever any candidate does
    // (otherwise the victim's own minimal restart would kill the replica).
    const auto own_cell = tree.find_component(component);
    bool any_other_cell = false;
    for (const auto& candidate : components) {
      if (candidate != component && tree.find_component(candidate) != own_cell) {
        any_other_cell = true;
        break;
      }
    }
    if (any_other_cell) {
      EXPECT_NE(tree.find_component(it->second), own_cell)
          << component << " -> " << it->second;
    }
  }
  // Pure topology: a second call agrees exactly.
  EXPECT_EQ(partners, choose_partners(tree));
}

}  // namespace
}  // namespace mercury::core

namespace mercury::station {
namespace {

namespace names = core::component_names;
using core::MercuryTree;
using util::Duration;

TrialSpec warm_spec(const std::string& victim) {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kHeuristic;
  spec.fail_component = victim;
  spec.seed = 9001;
  spec.enable_checkpoints = true;
  return spec;
}

TEST(WarmRestartTrial, SesWarmRestartBeatsColdAndSkipsPeerWedge) {
  // Tree II keeps ses in its own cell, so a cold ses restart resynchronizes
  // against str and wedges it — the induced second restart that drove the
  // paper's group consolidation. A warm ses resumes its saved session
  // instead, so the peer never wedges.
  TrialSpec spec = warm_spec(names::kSes);
  spec.tree = MercuryTree::kTreeII;
  TrialSpec cold = spec;
  cold.enable_checkpoints = false;

  const TrialResult warm_result = run_trial(spec);
  const TrialResult cold_result = run_trial(cold);

  ASSERT_FALSE(warm_result.timed_out);
  ASSERT_FALSE(cold_result.timed_out);
  EXPECT_GE(warm_result.warm_restarts, 1);
  EXPECT_EQ(cold_result.warm_restarts, 0);
  // Warm skips the resynchronization: the restarted ses resumes its session
  // against the still-synced str instead of wedging it into a second
  // failure, so recovery collapses and the induced restart disappears.
  EXPECT_LT(warm_result.recovery.to_seconds(),
            cold_result.recovery.to_seconds());
  EXPECT_LT(warm_result.restarts, cold_result.restarts);
}

TEST(WarmRestartTrial, PbcomWarmRestartSkipsSerialNegotiation) {
  // pbcom's cold start is the paper's worst offender ("takes over 21
  // seconds" of serial negotiation); its checkpoint preserves the
  // negotiated parameters, so the warm figure must be far smaller.
  TrialSpec spec = warm_spec(names::kPbcom);
  TrialSpec cold = spec;
  cold.enable_checkpoints = false;

  const TrialResult warm_result = run_trial(spec);
  const TrialResult cold_result = run_trial(cold);

  ASSERT_FALSE(warm_result.timed_out);
  ASSERT_FALSE(cold_result.timed_out);
  EXPECT_GE(warm_result.warm_restarts, 1);
  EXPECT_LT(warm_result.recovery.to_seconds(),
            cold_result.recovery.to_seconds());
  // The saving is the negotiation itself, not loop noise: expect several
  // seconds back, not milliseconds.
  EXPECT_GT(cold_result.recovery.to_seconds() -
                warm_result.recovery.to_seconds(),
            5.0);
}

TEST(WarmRestartTrial, CorruptCheckpointFallsBackCold) {
  TrialSpec spec = warm_spec(names::kRtu);
  spec.checkpoint_damage = TrialSpec::CheckpointDamage::kCorrupt;
  const TrialResult result = run_trial(spec);
  ASSERT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_EQ(result.warm_restarts, 0);
  EXPECT_GE(result.cold_fallbacks, 1);
  EXPECT_EQ(result.checkpoint_crashes, 0);
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(WarmRestartTrial, StaleCheckpointFallsBackCold) {
  TrialSpec spec = warm_spec(names::kRtu);
  spec.checkpoint_ttl = Duration::seconds(30.0);
  spec.checkpoint_damage = TrialSpec::CheckpointDamage::kStale;
  const TrialResult result = run_trial(spec);
  ASSERT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_EQ(result.warm_restarts, 0);
  EXPECT_GE(result.cold_fallbacks, 1);
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(WarmRestartTrial, PoisonedCheckpointCrashesWarmStartThenRecoversCold) {
  // Undetectable corruption: validation passes, the warm attempt crashes
  // mid-startup. That is a restart-path fault by construction, so the trial
  // needs ISSUE 2's hardening — the deadline notices the dead startup, the
  // checkpoint is shed as fault-suspected, and the retry runs cold.
  TrialSpec spec = warm_spec(names::kRtu);
  spec.harden_restart_path = true;
  spec.checkpoint_damage = TrialSpec::CheckpointDamage::kPoison;
  const TrialResult result = run_trial(spec);
  ASSERT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_GE(result.warm_restarts, 1);       // the doomed warm attempt
  EXPECT_GE(result.checkpoint_crashes, 1);  // ...died on the poisoned state
  EXPECT_GE(result.restart_timeouts, 1);    // ...and the deadline caught it
  EXPECT_GE(result.cold_fallbacks, 1);      // the retry ran cold
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(WarmRestartTrial, PoisonWithoutHardeningStallsLegacyPath) {
  // The contrapositive of the test above, mirroring ISSUE 2's regression
  // pair: without the restart deadline nothing notices the startup that
  // died on poisoned state, and the trial stalls to its timeout.
  TrialSpec spec = warm_spec(names::kRtu);
  spec.harden_restart_path = false;
  spec.checkpoint_damage = TrialSpec::CheckpointDamage::kPoison;
  spec.timeout = Duration::seconds(60.0);
  const TrialResult result = run_trial(spec);
  EXPECT_TRUE(result.timed_out);
  EXPECT_GE(result.checkpoint_crashes, 1);
}

TEST(WarmRestartTrial, SameSeedTrialsAreDeterministic) {
  for (const auto damage : {TrialSpec::CheckpointDamage::kNone,
                            TrialSpec::CheckpointDamage::kCorrupt,
                            TrialSpec::CheckpointDamage::kPoison}) {
    TrialSpec spec = warm_spec(names::kSes);
    spec.harden_restart_path = true;
    spec.checkpoint_damage = damage;
    const TrialResult a = run_trial(spec);
    const TrialResult b = run_trial(spec);
    EXPECT_EQ(a.recovery.to_seconds(), b.recovery.to_seconds());
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.warm_restarts, b.warm_restarts);
    EXPECT_EQ(a.cold_fallbacks, b.cold_fallbacks);
    EXPECT_EQ(a.checkpoint_crashes, b.checkpoint_crashes);
  }
}

TEST(WarmRestartTrial, CheckpointsOffDrawsNoExtraRandomness) {
  // The policy gate: with checkpoints off, a trial must reproduce the
  // legacy numbers bit-for-bit (no extra rng draws, saves, or trace args).
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.fail_component = names::kSes;
  spec.seed = 777;
  const TrialResult legacy = run_trial(spec);
  spec.enable_checkpoints = false;  // explicit, same as default
  spec.checkpoint_ttl = Duration::minutes(3.0);
  const TrialResult off = run_trial(spec);
  EXPECT_EQ(legacy.recovery.to_seconds(), off.recovery.to_seconds());
  EXPECT_EQ(legacy.restarts, off.restarts);
  EXPECT_EQ(off.warm_restarts, 0);
  EXPECT_EQ(off.cold_fallbacks, 0);
}

// --- Tiered trials (ISSUE 7) -------------------------------------------------

TrialSpec tiered_spec(const std::string& victim) {
  TrialSpec spec = warm_spec(victim);
  spec.checkpoint_l1 = true;
  spec.checkpoint_l2 = true;
  return spec;
}

TEST(TieredRestartTrial, LocalTierLossStillWarmsViaPartnerReplica) {
  // The redundancy cliff ISSUE 7 removes: the fault that killed pbcom also
  // killed its local snapshot. L0-only falls all the way to cold; with the
  // partner tier the walk serves the replica and recovery stays warm.
  TrialSpec replicated = tiered_spec(names::kPbcom);
  replicated.checkpoint_l2 = false;
  replicated.checkpoint_damage = TrialSpec::CheckpointDamage::kKill;
  TrialSpec l0_only = replicated;
  l0_only.checkpoint_l1 = false;

  const TrialResult warm_result = run_trial(replicated);
  const TrialResult cold_result = run_trial(l0_only);

  ASSERT_FALSE(warm_result.timed_out);
  ASSERT_FALSE(cold_result.timed_out);
  EXPECT_GE(warm_result.warm_restarts, 1);
  EXPECT_GE(warm_result.warm_hits_l1, 1);
  EXPECT_EQ(cold_result.warm_restarts, 0);
  EXPECT_GE(cold_result.cold_fallbacks, 1);
  EXPECT_LT(warm_result.recovery.to_seconds(),
            cold_result.recovery.to_seconds());
}

TEST(TieredRestartTrial, CorrelatedPartnerLossFallsThroughToStable) {
  // Correlated failure: the fault fells the victim AND its replica host.
  // With only L0+L1 the walk misses (the replica died with its host); with
  // L2 the stable copy still warms the restart.
  TrialSpec with_stable = tiered_spec(names::kPbcom);
  with_stable.checkpoint_damage = TrialSpec::CheckpointDamage::kKill;
  with_stable.fail_partner_too = true;
  TrialSpec no_stable = with_stable;
  no_stable.checkpoint_l2 = false;

  const TrialResult stable_result = run_trial(with_stable);
  const TrialResult lost_result = run_trial(no_stable);

  ASSERT_FALSE(stable_result.timed_out);
  ASSERT_FALSE(lost_result.timed_out);
  EXPECT_GE(stable_result.warm_hits_l2, 1);
  // Without stable storage the victim has no tier left: its restart is cold
  // (the partner's own restart may still warm-hit from its local copy).
  EXPECT_EQ(lost_result.warm_hits_l1, 0);
  EXPECT_EQ(lost_result.warm_hits_l2, 0);
  EXPECT_GE(lost_result.cold_fallbacks, 1);
}

TEST(TieredRestartTrial, RebuildRepopulatesLostTierAndSecondFailureWarmsAgain) {
  // Satellite: after a tier loss + warm recovery the lost tier must be
  // repopulated, and a second failure of the same cell must still warm-hit.
  // Driven on a manual rig so both failures land in one system lifetime.
  TrialSpec spec = tiered_spec(names::kPbcom);
  spec.checkpoint_l2 = false;
  sim::Simulator sim(spec.seed);
  MercuryRig rig(sim, spec);
  rig.start();
  sim.run_for(spec.warmup);

  const auto recover = [&] {
    const util::TimePoint deadline = sim.now() + spec.timeout;
    while (sim.now() < deadline) {
      if (rig.station().all_functional() && !rig.rec().restart_in_progress()) {
        return true;
      }
      if (!sim.step()) return false;
    }
    return false;
  };

  // First failure takes pbcom and its local snapshot with it.
  rig.station().checkpoints().discard_tier("pbcom",
                                           core::CheckpointTier::kL0Local);
  rig.station().inject_crash(names::kPbcom);
  ASSERT_TRUE(recover());
  const auto& tiers = rig.station().checkpoints();
  EXPECT_EQ(tiers.tier_hits(core::CheckpointTier::kL1Partner), 1u);
  // The lost local tier is back (rebuilt from the serving replica, then
  // refreshed by the component's own post-start save).
  EXPECT_TRUE(tiers.has("pbcom", core::CheckpointTier::kL0Local));
  EXPECT_GE(tiers.rebuilds(), 1u);

  // Second failure of the same cell: the walk warm-hits locally again.
  sim.run_for(util::Duration::seconds(5.0));
  rig.station().inject_crash(names::kPbcom);
  ASSERT_TRUE(recover());
  EXPECT_EQ(tiers.tier_hits(core::CheckpointTier::kL0Local), 1u);
  EXPECT_EQ(rig.station().process_manager().warm_restarts(), 2u);
  EXPECT_EQ(rig.station().process_manager().checkpoint_crashes(), 0u);
}

TEST(TieredRestartTrial, SuspectShedStillWarmsFromReplicaOnRetry) {
  // ISSUE 7's tier-aware shed: a poisoned local snapshot crashes the warm
  // attempt; the deadline sheds L0 as fault-suspected — but the partner
  // replica (clean: only L0 was poisoned) still warms the retry instead of
  // the legacy forced-cold rebuild. pbcom's escalation group ({fedr,pbcom})
  // does not include its replica host (rtu), so the replica survives the
  // escalated kill.
  TrialSpec spec = tiered_spec(names::kPbcom);
  spec.checkpoint_l2 = false;
  spec.harden_restart_path = true;
  spec.checkpoint_damage = TrialSpec::CheckpointDamage::kPoison;
  const TrialResult result = run_trial(spec);
  ASSERT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_GE(result.checkpoint_crashes, 1);  // the doomed warm attempt
  EXPECT_GE(result.restart_timeouts, 1);    // ...caught by the deadline
  EXPECT_GE(result.warm_hits_l1, 1);        // ...and the retry warmed via L1
  EXPECT_GE(result.warm_restarts, 2);       // doomed + replica-served
}

TEST(TieredRestartTrial, SameSeedTieredTrialsAreDeterministic) {
  for (const bool partner_down : {false, true}) {
    TrialSpec spec = tiered_spec(names::kPbcom);
    spec.harden_restart_path = true;
    spec.checkpoint_damage = TrialSpec::CheckpointDamage::kKill;
    spec.fail_partner_too = partner_down;
    const TrialResult a = run_trial(spec);
    const TrialResult b = run_trial(spec);
    EXPECT_EQ(a.recovery.to_seconds(), b.recovery.to_seconds());
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.warm_hits_l0, b.warm_hits_l0);
    EXPECT_EQ(a.warm_hits_l1, b.warm_hits_l1);
    EXPECT_EQ(a.warm_hits_l2, b.warm_hits_l2);
    EXPECT_EQ(a.tier_rebuilds, b.tier_rebuilds);
  }
}

TEST(TieredRestartTrial, SingleTierRunsMatchLegacyCheckpointNumbers) {
  // The tiers are strictly additive: an L0-only tiered run must reproduce
  // ISSUE 3's warm numbers (same draws, same timing — reload factor 1.0).
  TrialSpec l0_only = warm_spec(names::kPbcom);
  const TrialResult a = run_trial(l0_only);
  EXPECT_GE(a.warm_restarts, 1);
  EXPECT_EQ(a.warm_hits_l0, a.warm_restarts);
  EXPECT_EQ(a.warm_hits_l1, 0);
  EXPECT_EQ(a.warm_hits_l2, 0);
}

}  // namespace
}  // namespace mercury::station
