// Unit tests: mbus and the dedicated FD<->REC link.
#include <gtest/gtest.h>

#include <vector>

#include "bus/dedicated_link.h"
#include "bus/message_bus.h"
#include "sim/simulator.h"

namespace mercury::bus {
namespace {

using util::Duration;

class BusTest : public ::testing::Test {
 protected:
  BusTest() : sim_(1), bus_(sim_, BusConfig{}) {}

  /// Attach an endpoint that records received messages.
  std::vector<msg::Message>* record(const std::string& name) {
    auto* inbox = &inboxes_[name];
    bus_.attach(name, [inbox](const msg::Message& m) { inbox->push_back(m); });
    return inbox;
  }

  sim::Simulator sim_;
  MessageBus bus_;
  std::map<std::string, std::vector<msg::Message>> inboxes_;
};

TEST_F(BusTest, DeliversPointToPoint) {
  auto* inbox = record("ses");
  record("str");
  bus_.send(msg::make_ping("fd", "ses", 1));
  sim_.run_for(Duration::seconds(1.0));
  ASSERT_EQ(inbox->size(), 1u);
  EXPECT_EQ((*inbox)[0].kind, msg::Kind::kPing);
  EXPECT_EQ((*inbox)[0].seq, 1u);
  EXPECT_TRUE(inboxes_["str"].empty());
  EXPECT_EQ(bus_.stats().delivered, 1u);
}

TEST_F(BusTest, DeliveryHasLatency) {
  auto* inbox = record("ses");
  bus_.send(msg::make_ping("fd", "ses", 1));
  EXPECT_TRUE(inbox->empty());  // not synchronous
  sim_.run_for(Duration::millis(1.0));
  EXPECT_TRUE(inbox->empty());  // below minimum latency
  sim_.run_for(Duration::millis(10.0));
  EXPECT_EQ(inbox->size(), 1u);
}

TEST_F(BusTest, BroadcastSkipsSender) {
  auto* a = record("a");
  auto* b = record("b");
  auto* c = record("c");
  bus_.send(msg::make_event("a", 1, "ephemeris"));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(a->empty());
  EXPECT_EQ(b->size(), 1u);
  EXPECT_EQ(c->size(), 1u);
}

TEST_F(BusTest, UnknownDestinationCountsAsDrop) {
  bus_.send(msg::make_ping("fd", "ghost", 1));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_EQ(bus_.stats().dropped_no_endpoint, 1u);
  EXPECT_EQ(bus_.stats().delivered, 0u);
}

TEST_F(BusTest, CrashDropsInFlightAndSubsequent) {
  auto* inbox = record("ses");
  bus_.send(msg::make_ping("fd", "ses", 1));  // in flight
  bus_.crash();
  bus_.send(msg::make_ping("fd", "ses", 2));  // while down
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox->empty());
  EXPECT_EQ(bus_.stats().dropped_bus_down, 2u);
}

TEST_F(BusTest, RestartRequiresReattach) {
  auto* inbox = record("ses");
  bus_.crash();
  bus_.restart();
  // Endpoint was lost in the crash; message drops until re-attach.
  bus_.send(msg::make_ping("fd", "ses", 1));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox->empty());

  record("ses");
  bus_.send(msg::make_ping("fd", "ses", 2));
  sim_.run_for(Duration::seconds(1.0));
  ASSERT_EQ(inbox->size(), 1u);
  EXPECT_EQ((*inbox)[0].seq, 2u);
}

TEST_F(BusTest, InFlightFromOldEpochVoidedEvenAfterRestart) {
  auto* inbox = record("ses");
  bus_.send(msg::make_ping("fd", "ses", 1));
  bus_.crash();
  bus_.restart();
  record("ses");
  sim_.run_for(Duration::seconds(1.0));
  // The pre-crash message must not be resurrected by the fast restart.
  EXPECT_TRUE(inbox->empty());
}

TEST_F(BusTest, ReattachReplacesReceiver) {
  std::vector<int> first;
  std::vector<int> second;
  bus_.attach("x", [&](const msg::Message&) { first.push_back(1); });
  bus_.attach("x", [&](const msg::Message&) { second.push_back(1); });
  bus_.send(msg::make_ping("fd", "x", 1));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(first.empty());
  EXPECT_EQ(second.size(), 1u);
}

TEST_F(BusTest, DetachStopsDelivery) {
  auto* inbox = record("ses");
  bus_.detach("ses");
  EXPECT_FALSE(bus_.attached("ses"));
  bus_.send(msg::make_ping("fd", "ses", 1));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox->empty());
  EXPECT_EQ(bus_.stats().dropped_no_endpoint, 1u);
}

TEST_F(BusTest, OversizeMessagesDrop) {
  auto* inbox = record("ses");
  msg::Message big = msg::make_command("fd", "ses", 1, "blob");
  big.body.set_text(std::string(200 * 1024, 'x'));
  bus_.send(big);
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox->empty());
  EXPECT_EQ(bus_.stats().dropped_oversize, 1u);
}

TEST_F(BusTest, EndpointNamesSorted) {
  record("zeta");
  record("alpha");
  const auto names = bus_.endpoint_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST_F(BusTest, WireFormatRoundTripsThroughBus) {
  // The bus serializes and re-parses: structured payloads survive.
  auto* inbox = record("str");
  msg::Message m = msg::make_event("ses", 9, "ephemeris");
  m.body.set_attr("el_deg", 45.5);
  bus_.send(m);
  sim_.run_for(Duration::seconds(1.0));
  ASSERT_EQ(inbox->size(), 1u);
  EXPECT_DOUBLE_EQ(*(*inbox)[0].body.attr_double("el_deg"), 45.5);
}

// --- Typed mid-restart errors (ISSUE 9) --------------------------------------

TEST(BusRestarting, TypedNackCarriesComponentAndEpoch) {
  sim::Simulator sim(3);
  BusConfig config;
  config.typed_restart_errors = true;
  MessageBus bus(sim, config);
  std::vector<msg::Message> inbox;
  bus.attach("cli.0", [&](const msg::Message& m) { inbox.push_back(m); });
  // ses was killed at epoch 5 and has not re-attached: mid-restart.
  bus.note_restarting("ses", 5);
  EXPECT_TRUE(bus.restarting("ses"));

  bus.send(msg::make_ping("cli.0", "ses", 42));
  sim.run_for(Duration::seconds(1.0));
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].kind, msg::Kind::kNack);
  EXPECT_EQ(inbox[0].seq, 42u);  // matches the request for client correlation
  EXPECT_EQ(inbox[0].body.attr("reason").value_or(""), "restarting");
  EXPECT_EQ(inbox[0].body.attr("component").value_or(""), "ses");
  EXPECT_EQ(inbox[0].body.attr("epoch").value_or(""), "5");
  EXPECT_EQ(bus.stats().rejected_restarting, 1u);
}

TEST(BusRestarting, ReattachClearsRestartingAndResumesDelivery) {
  sim::Simulator sim(3);
  BusConfig config;
  config.typed_restart_errors = true;
  MessageBus bus(sim, config);
  std::vector<msg::Message> ses_inbox;
  bus.note_restarting("ses", 2);
  bus.attach("ses", [&](const msg::Message& m) { ses_inbox.push_back(m); });
  EXPECT_FALSE(bus.restarting("ses"));
  bus.send(msg::make_ping("fd", "ses", 1));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_EQ(ses_inbox.size(), 1u);
  EXPECT_EQ(bus.stats().rejected_restarting, 0u);
}

TEST(BusRestarting, GateOffPreservesLegacySilentDropButStillTouches) {
  // Default config: no typed errors. A send into a mid-restart endpoint
  // drops exactly as before ISSUE 9 — but the touch listener still fires,
  // so traffic-driven recovery works on legacy configs too.
  sim::Simulator sim(3);
  MessageBus bus(sim, BusConfig{});
  std::vector<std::pair<std::string, std::string>> touches;
  bus.set_touch_listener([&](const std::string& to, const std::string& from) {
    touches.emplace_back(to, from);
  });
  std::vector<msg::Message> inbox;
  bus.attach("cli.0", [&](const msg::Message& m) { inbox.push_back(m); });
  bus.note_restarting("rtu", 1);

  bus.send(msg::make_ping("cli.0", "rtu", 7));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 1u);
  EXPECT_EQ(bus.stats().rejected_restarting, 0u);
  ASSERT_EQ(touches.size(), 1u);
  EXPECT_EQ(touches[0].first, "rtu");
  EXPECT_EQ(touches[0].second, "cli.0");
}

TEST(BusRestarting, NeverNacksANackOrAnonymousSender) {
  // No error-on-error loops: a nack into a restarting endpoint, or a
  // message with no return address, drops without generating a reply.
  sim::Simulator sim(3);
  BusConfig config;
  config.typed_restart_errors = true;
  MessageBus bus(sim, config);
  bus.note_restarting("ses", 1);

  msg::Message command = msg::make_command("cli.0", "ses", 9, "track");
  msg::Message nack = msg::make_nack(command, "other", "busy");
  nack.to = "ses";
  bus.send(nack);
  msg::Message anonymous = msg::make_ping("", "ses", 10);
  bus.send(anonymous);
  sim.run_for(Duration::seconds(1.0));
  EXPECT_EQ(bus.stats().rejected_restarting, 0u);
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 2u);
}

TEST(BusRestarting, UnmarkedMissingEndpointStaysSilentDrop) {
  // typed errors apply only to endpoints the process backend marked as
  // mid-restart; a plain unknown destination still just drops.
  sim::Simulator sim(3);
  BusConfig config;
  config.typed_restart_errors = true;
  MessageBus bus(sim, config);
  std::vector<msg::Message> inbox;
  bus.attach("cli.0", [&](const msg::Message& m) { inbox.push_back(m); });
  bus.send(msg::make_ping("cli.0", "ghost", 1));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 1u);
}

TEST(BusLoss, LossyBusDropsApproximatelyTheConfiguredFraction) {
  sim::Simulator sim(5);
  BusConfig config;
  config.loss_probability = 0.1;
  MessageBus bus(sim, config);
  int received = 0;
  bus.attach("sink", [&](const msg::Message&) { ++received; });
  const int sent = 5'000;
  for (int i = 0; i < sent; ++i) {
    bus.send(msg::make_ping("src", "sink", static_cast<std::uint64_t>(i)));
  }
  sim.run_for(Duration::seconds(1.0));
  EXPECT_NEAR(received / static_cast<double>(sent), 0.9, 0.02);
  EXPECT_EQ(bus.stats().dropped_lossy + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(sent));
}

TEST(BusLoss, DefaultBusIsLossless) {
  sim::Simulator sim(6);
  MessageBus bus(sim, BusConfig{});
  int received = 0;
  bus.attach("sink", [&](const msg::Message&) { ++received; });
  for (int i = 0; i < 1'000; ++i) {
    bus.send(msg::make_ping("src", "sink", static_cast<std::uint64_t>(i)));
  }
  sim.run_for(Duration::seconds(1.0));
  EXPECT_EQ(received, 1'000);
  EXPECT_EQ(bus.stats().dropped_lossy, 0u);
}

// --- DedicatedLink ---------------------------------------------------------

TEST(DedicatedLink, DeliversBothDirections) {
  sim::Simulator sim(1);
  DedicatedLink link(sim, "fd", "rec");
  std::vector<msg::Message> fd_inbox;
  std::vector<msg::Message> rec_inbox;
  link.bind("fd", [&](const msg::Message& m) { fd_inbox.push_back(m); });
  link.bind("rec", [&](const msg::Message& m) { rec_inbox.push_back(m); });

  link.send(msg::make_ping("fd", "rec", 1));
  link.send(msg::make_ping("rec", "fd", 2));
  sim.run_for(Duration::seconds(1.0));
  ASSERT_EQ(rec_inbox.size(), 1u);
  EXPECT_EQ(rec_inbox[0].seq, 1u);
  ASSERT_EQ(fd_inbox.size(), 1u);
  EXPECT_EQ(fd_inbox[0].seq, 2u);
}

TEST(DedicatedLink, UnboundEndDropsSilently) {
  sim::Simulator sim(1);
  DedicatedLink link(sim, "fd", "rec");
  link.send(msg::make_ping("fd", "rec", 1));
  sim.run_for(Duration::seconds(1.0));  // no crash, no delivery
}

TEST(DedicatedLink, UnbindStopsDelivery) {
  sim::Simulator sim(1);
  DedicatedLink link(sim, "fd", "rec");
  std::vector<msg::Message> inbox;
  link.bind("rec", [&](const msg::Message& m) { inbox.push_back(m); });
  link.unbind("rec");
  link.send(msg::make_ping("fd", "rec", 1));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox.empty());
}

TEST(DedicatedLink, IndependentOfBusState) {
  sim::Simulator sim(1);
  MessageBus bus(sim, BusConfig{});
  DedicatedLink link(sim, "fd", "rec");
  std::vector<msg::Message> inbox;
  link.bind("rec", [&](const msg::Message& m) { inbox.push_back(m); });
  bus.crash();  // the dedicated link does not care (§2.2 isolation)
  link.send(msg::make_ping("fd", "rec", 1));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_EQ(inbox.size(), 1u);
}

}  // namespace
}  // namespace mercury::bus
