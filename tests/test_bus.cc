// Unit tests: mbus and the dedicated FD<->REC link.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bus/dedicated_link.h"
#include "bus/message_bus.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mercury::bus {
namespace {

using util::Duration;

class BusTest : public ::testing::Test {
 protected:
  BusTest() : sim_(1), bus_(sim_, BusConfig{}) {}

  /// Attach an endpoint that records received messages.
  std::vector<msg::Message>* record(const std::string& name) {
    auto* inbox = &inboxes_[name];
    bus_.attach(name, [inbox](const msg::Message& m) { inbox->push_back(m); });
    return inbox;
  }

  sim::Simulator sim_;
  MessageBus bus_;
  std::map<std::string, std::vector<msg::Message>> inboxes_;
};

TEST_F(BusTest, DeliversPointToPoint) {
  auto* inbox = record("ses");
  record("str");
  bus_.send(msg::make_ping("fd", "ses", 1));
  sim_.run_for(Duration::seconds(1.0));
  ASSERT_EQ(inbox->size(), 1u);
  EXPECT_EQ((*inbox)[0].kind, msg::Kind::kPing);
  EXPECT_EQ((*inbox)[0].seq, 1u);
  EXPECT_TRUE(inboxes_["str"].empty());
  EXPECT_EQ(bus_.stats().delivered, 1u);
}

TEST_F(BusTest, DeliveryHasLatency) {
  auto* inbox = record("ses");
  bus_.send(msg::make_ping("fd", "ses", 1));
  EXPECT_TRUE(inbox->empty());  // not synchronous
  sim_.run_for(Duration::millis(1.0));
  EXPECT_TRUE(inbox->empty());  // below minimum latency
  sim_.run_for(Duration::millis(10.0));
  EXPECT_EQ(inbox->size(), 1u);
}

TEST_F(BusTest, BroadcastSkipsSender) {
  auto* a = record("a");
  auto* b = record("b");
  auto* c = record("c");
  bus_.send(msg::make_event("a", 1, "ephemeris"));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(a->empty());
  EXPECT_EQ(b->size(), 1u);
  EXPECT_EQ(c->size(), 1u);
}

TEST_F(BusTest, UnknownDestinationCountsAsDrop) {
  bus_.send(msg::make_ping("fd", "ghost", 1));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_EQ(bus_.stats().dropped_no_endpoint, 1u);
  EXPECT_EQ(bus_.stats().delivered, 0u);
}

TEST_F(BusTest, CrashDropsInFlightAndSubsequent) {
  auto* inbox = record("ses");
  bus_.send(msg::make_ping("fd", "ses", 1));  // in flight
  bus_.crash();
  bus_.send(msg::make_ping("fd", "ses", 2));  // while down
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox->empty());
  EXPECT_EQ(bus_.stats().dropped_bus_down, 2u);
}

TEST_F(BusTest, RestartRequiresReattach) {
  auto* inbox = record("ses");
  bus_.crash();
  bus_.restart();
  // Endpoint was lost in the crash; message drops until re-attach.
  bus_.send(msg::make_ping("fd", "ses", 1));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox->empty());

  record("ses");
  bus_.send(msg::make_ping("fd", "ses", 2));
  sim_.run_for(Duration::seconds(1.0));
  ASSERT_EQ(inbox->size(), 1u);
  EXPECT_EQ((*inbox)[0].seq, 2u);
}

TEST_F(BusTest, InFlightFromOldEpochVoidedEvenAfterRestart) {
  auto* inbox = record("ses");
  bus_.send(msg::make_ping("fd", "ses", 1));
  bus_.crash();
  bus_.restart();
  record("ses");
  sim_.run_for(Duration::seconds(1.0));
  // The pre-crash message must not be resurrected by the fast restart.
  EXPECT_TRUE(inbox->empty());
}

TEST_F(BusTest, ReattachReplacesReceiver) {
  std::vector<int> first;
  std::vector<int> second;
  bus_.attach("x", [&](const msg::Message&) { first.push_back(1); });
  bus_.attach("x", [&](const msg::Message&) { second.push_back(1); });
  bus_.send(msg::make_ping("fd", "x", 1));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(first.empty());
  EXPECT_EQ(second.size(), 1u);
}

TEST_F(BusTest, DetachStopsDelivery) {
  auto* inbox = record("ses");
  bus_.detach("ses");
  EXPECT_FALSE(bus_.attached("ses"));
  bus_.send(msg::make_ping("fd", "ses", 1));
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox->empty());
  EXPECT_EQ(bus_.stats().dropped_no_endpoint, 1u);
}

TEST_F(BusTest, OversizeMessagesDrop) {
  auto* inbox = record("ses");
  msg::Message big = msg::make_command("fd", "ses", 1, "blob");
  big.body.set_text(std::string(200 * 1024, 'x'));
  bus_.send(big);
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox->empty());
  EXPECT_EQ(bus_.stats().dropped_oversize, 1u);
}

TEST_F(BusTest, EndpointNamesSorted) {
  record("zeta");
  record("alpha");
  const auto names = bus_.endpoint_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST_F(BusTest, WireFormatRoundTripsThroughBus) {
  // The bus serializes and re-parses: structured payloads survive.
  auto* inbox = record("str");
  msg::Message m = msg::make_event("ses", 9, "ephemeris");
  m.body.set_attr("el_deg", 45.5);
  bus_.send(m);
  sim_.run_for(Duration::seconds(1.0));
  ASSERT_EQ(inbox->size(), 1u);
  EXPECT_DOUBLE_EQ(*(*inbox)[0].body.attr_double("el_deg"), 45.5);
}

// --- Typed mid-restart errors (ISSUE 9) --------------------------------------

TEST(BusRestarting, TypedNackCarriesComponentAndEpoch) {
  sim::Simulator sim(3);
  BusConfig config;
  config.typed_restart_errors = true;
  MessageBus bus(sim, config);
  std::vector<msg::Message> inbox;
  bus.attach("cli.0", [&](const msg::Message& m) { inbox.push_back(m); });
  // ses was killed at epoch 5 and has not re-attached: mid-restart.
  bus.note_restarting("ses", 5);
  EXPECT_TRUE(bus.restarting("ses"));

  bus.send(msg::make_ping("cli.0", "ses", 42));
  sim.run_for(Duration::seconds(1.0));
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].kind, msg::Kind::kNack);
  EXPECT_EQ(inbox[0].seq, 42u);  // matches the request for client correlation
  EXPECT_EQ(inbox[0].body.attr("reason").value_or(""), "restarting");
  EXPECT_EQ(inbox[0].body.attr("component").value_or(""), "ses");
  EXPECT_EQ(inbox[0].body.attr("epoch").value_or(""), "5");
  EXPECT_EQ(bus.stats().rejected_restarting, 1u);
}

TEST(BusRestarting, ReattachClearsRestartingAndResumesDelivery) {
  sim::Simulator sim(3);
  BusConfig config;
  config.typed_restart_errors = true;
  MessageBus bus(sim, config);
  std::vector<msg::Message> ses_inbox;
  bus.note_restarting("ses", 2);
  bus.attach("ses", [&](const msg::Message& m) { ses_inbox.push_back(m); });
  EXPECT_FALSE(bus.restarting("ses"));
  bus.send(msg::make_ping("fd", "ses", 1));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_EQ(ses_inbox.size(), 1u);
  EXPECT_EQ(bus.stats().rejected_restarting, 0u);
}

TEST(BusRestarting, GateOffPreservesLegacySilentDropButStillTouches) {
  // Default config: no typed errors. A send into a mid-restart endpoint
  // drops exactly as before ISSUE 9 — but the touch listener still fires,
  // so traffic-driven recovery works on legacy configs too.
  sim::Simulator sim(3);
  MessageBus bus(sim, BusConfig{});
  std::vector<std::pair<std::string, std::string>> touches;
  bus.set_touch_listener([&](const std::string& to, const std::string& from) {
    touches.emplace_back(to, from);
  });
  std::vector<msg::Message> inbox;
  bus.attach("cli.0", [&](const msg::Message& m) { inbox.push_back(m); });
  bus.note_restarting("rtu", 1);

  bus.send(msg::make_ping("cli.0", "rtu", 7));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 1u);
  EXPECT_EQ(bus.stats().rejected_restarting, 0u);
  ASSERT_EQ(touches.size(), 1u);
  EXPECT_EQ(touches[0].first, "rtu");
  EXPECT_EQ(touches[0].second, "cli.0");
}

TEST(BusRestarting, NeverNacksANackOrAnonymousSender) {
  // No error-on-error loops: a nack into a restarting endpoint, or a
  // message with no return address, drops without generating a reply.
  sim::Simulator sim(3);
  BusConfig config;
  config.typed_restart_errors = true;
  MessageBus bus(sim, config);
  bus.note_restarting("ses", 1);

  msg::Message command = msg::make_command("cli.0", "ses", 9, "track");
  msg::Message nack = msg::make_nack(command, "other", "busy");
  nack.to = "ses";
  bus.send(nack);
  msg::Message anonymous = msg::make_ping("", "ses", 10);
  bus.send(anonymous);
  sim.run_for(Duration::seconds(1.0));
  EXPECT_EQ(bus.stats().rejected_restarting, 0u);
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 2u);
}

TEST(BusRestarting, UnmarkedMissingEndpointStaysSilentDrop) {
  // typed errors apply only to endpoints the process backend marked as
  // mid-restart; a plain unknown destination still just drops.
  sim::Simulator sim(3);
  BusConfig config;
  config.typed_restart_errors = true;
  MessageBus bus(sim, config);
  std::vector<msg::Message> inbox;
  bus.attach("cli.0", [&](const msg::Message& m) { inbox.push_back(m); });
  bus.send(msg::make_ping("cli.0", "ghost", 1));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 1u);
}

TEST(BusLoss, LossyBusDropsApproximatelyTheConfiguredFraction) {
  sim::Simulator sim(5);
  BusConfig config;
  config.loss_probability = 0.1;
  MessageBus bus(sim, config);
  int received = 0;
  bus.attach("sink", [&](const msg::Message&) { ++received; });
  const int sent = 5'000;
  for (int i = 0; i < sent; ++i) {
    bus.send(msg::make_ping("src", "sink", static_cast<std::uint64_t>(i)));
  }
  sim.run_for(Duration::seconds(1.0));
  EXPECT_NEAR(received / static_cast<double>(sent), 0.9, 0.02);
  EXPECT_EQ(bus.stats().dropped_lossy + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(sent));
}

TEST(BusLoss, DefaultBusIsLossless) {
  sim::Simulator sim(6);
  MessageBus bus(sim, BusConfig{});
  int received = 0;
  bus.attach("sink", [&](const msg::Message&) { ++received; });
  for (int i = 0; i < 1'000; ++i) {
    bus.send(msg::make_ping("src", "sink", static_cast<std::uint64_t>(i)));
  }
  sim.run_for(Duration::seconds(1.0));
  EXPECT_EQ(received, 1'000);
  EXPECT_EQ(bus.stats().dropped_lossy, 0u);
}

// --- Flat-map routing + route cache (ISSUE 10) -----------------------------
// The endpoint table is a sorted flat map with a small direct-mapped route
// cache in front of the lookup. These tests pin the invalidation contract:
// a cached route must never deliver to a detached endpoint, a replaced
// receiver, or a slot whose index shifted under an insert.

namespace routing {

BusConfig instant_config() {
  BusConfig config;
  config.latency = Duration::millis(0.0);
  config.latency_jitter = Duration::millis(0.0);
  return config;
}

TEST(BusRouting, StaleRouteCacheNeverDeliversToDetachedEndpoint) {
  sim::Simulator sim(1);
  MessageBus bus(sim, instant_config());
  int received = 0;
  bus.attach("a", [](const msg::Message&) {});
  bus.attach("b", [&received](const msg::Message&) { ++received; });
  bus.send(msg::make_ping("a", "b", 1));  // warms the a->b route
  sim.run_all();
  ASSERT_EQ(received, 1);

  bus.detach("b");
  bus.send(msg::make_ping("a", "b", 2));
  sim.run_all();
  EXPECT_EQ(received, 1);  // cached route invalidated, not re-used
  EXPECT_EQ(bus.stats().dropped_no_endpoint, 1u);
}

TEST(BusRouting, ReattachReplacesReceiverDespiteWarmCache) {
  sim::Simulator sim(1);
  MessageBus bus(sim, instant_config());
  int old_received = 0;
  int new_received = 0;
  bus.attach("b", [&old_received](const msg::Message&) { ++old_received; });
  bus.send(msg::make_ping("a", "b", 1));
  sim.run_all();
  ASSERT_EQ(old_received, 1);

  // A restarted component takes over its name: the warm route must resolve
  // to the replacement receiver, never the dead one.
  bus.attach("b", [&new_received](const msg::Message&) { ++new_received; });
  bus.send(msg::make_ping("a", "b", 2));
  sim.run_all();
  EXPECT_EQ(old_received, 1);
  EXPECT_EQ(new_received, 1);
}

TEST(BusRouting, WarmRouteSurvivesFlatMapSlotShifts) {
  sim::Simulator sim(1);
  MessageBus bus(sim, instant_config());
  int received = 0;
  bus.attach("mmm", [&received](const msg::Message&) { ++received; });
  bus.send(msg::make_ping("zzz", "mmm", 1));  // cache holds mmm's slot index
  sim.run_all();
  ASSERT_EQ(received, 1);

  // Inserting names that sort before "mmm" shifts its slot in the sorted
  // vector; a cached index from before the insert must not be trusted.
  bus.attach("aaa", [](const msg::Message&) {});
  bus.attach("bbb", [](const msg::Message&) {});
  bus.send(msg::make_ping("zzz", "mmm", 2));
  sim.run_all();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(bus.stats().delivered, 2u);
}

TEST(BusRouting, RandomizedDifferentialAgainstMapModel) {
  // Property fuzz: drive the bus with random attach/detach/send/crash/
  // restart ops and mirror every op in a trivial std::map model. Delivery
  // counts per endpoint and the drop counters must match the model exactly.
  sim::Simulator sim(7);
  MessageBus bus(sim, instant_config());
  util::Rng rng(99);

  const std::vector<std::string> pool = {"mbus", "ses",  "str", "rtu",
                                         "fedr", "pbcom", "fd",  "rec"};
  std::map<std::string, std::uint64_t> got;       // live deliveries observed
  std::map<std::string, std::uint64_t> expected;  // model's prediction
  std::set<std::string> model_attached;
  bool model_online = true;
  std::uint64_t exp_sent = 0, exp_delivered = 0;
  std::uint64_t exp_bus_down = 0, exp_no_endpoint = 0;

  const auto pick = [&]() -> const std::string& {
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  for (int op = 0; op < 5'000; ++op) {
    const auto kind = rng.uniform_int(0, 19);
    if (kind < 3) {  // attach (or re-attach)
      const std::string& name = pick();
      auto* count = &got[name];
      bus.attach(name, [count](const msg::Message&) { ++*count; });
      model_attached.insert(name);
    } else if (kind < 5) {  // detach
      const std::string& name = pick();
      bus.detach(name);
      model_attached.erase(name);
    } else if (kind == 5) {
      bus.crash();  // clears the endpoint table while down
      if (model_online) {
        model_online = false;
        model_attached.clear();
      }
    } else if (kind == 6) {
      bus.restart();
      model_online = true;
    } else if (kind < 16) {  // point-to-point send
      const std::string& from = pick();
      const std::string& to = pick();
      bus.send(msg::make_ping(from, to, static_cast<std::uint64_t>(op)));
      sim.run_all();
      ++exp_sent;
      if (!model_online) {
        ++exp_bus_down;
      } else if (model_attached.count(to) > 0) {
        ++exp_delivered;
        ++expected[to];
      } else {
        ++exp_no_endpoint;
      }
    } else {  // broadcast
      const std::string& from = pick();
      bus.send(msg::make_event(from, static_cast<std::uint64_t>(op), "beacon"));
      sim.run_all();
      ++exp_sent;
      if (!model_online) {
        ++exp_bus_down;
      } else {
        for (const std::string& name : model_attached) {
          if (name == from) continue;
          ++exp_delivered;
          ++expected[name];
        }
      }
    }
  }

  EXPECT_EQ(bus.stats().sent, exp_sent);
  EXPECT_EQ(bus.stats().delivered, exp_delivered);
  EXPECT_EQ(bus.stats().dropped_bus_down, exp_bus_down);
  EXPECT_EQ(bus.stats().dropped_no_endpoint, exp_no_endpoint);
  EXPECT_EQ(bus.stats().dropped_lossy, 0u);
  EXPECT_EQ(bus.stats().dropped_oversize, 0u);
  for (const std::string& name : pool) {
    EXPECT_EQ(got[name], expected[name]) << "endpoint " << name;
  }
}

}  // namespace routing

// --- DedicatedLink ---------------------------------------------------------

TEST(DedicatedLink, DeliversBothDirections) {
  sim::Simulator sim(1);
  DedicatedLink link(sim, "fd", "rec");
  std::vector<msg::Message> fd_inbox;
  std::vector<msg::Message> rec_inbox;
  link.bind("fd", [&](const msg::Message& m) { fd_inbox.push_back(m); });
  link.bind("rec", [&](const msg::Message& m) { rec_inbox.push_back(m); });

  link.send(msg::make_ping("fd", "rec", 1));
  link.send(msg::make_ping("rec", "fd", 2));
  sim.run_for(Duration::seconds(1.0));
  ASSERT_EQ(rec_inbox.size(), 1u);
  EXPECT_EQ(rec_inbox[0].seq, 1u);
  ASSERT_EQ(fd_inbox.size(), 1u);
  EXPECT_EQ(fd_inbox[0].seq, 2u);
}

TEST(DedicatedLink, UnboundEndDropsSilently) {
  sim::Simulator sim(1);
  DedicatedLink link(sim, "fd", "rec");
  link.send(msg::make_ping("fd", "rec", 1));
  sim.run_for(Duration::seconds(1.0));  // no crash, no delivery
}

TEST(DedicatedLink, UnbindStopsDelivery) {
  sim::Simulator sim(1);
  DedicatedLink link(sim, "fd", "rec");
  std::vector<msg::Message> inbox;
  link.bind("rec", [&](const msg::Message& m) { inbox.push_back(m); });
  link.unbind("rec");
  link.send(msg::make_ping("fd", "rec", 1));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(inbox.empty());
}

TEST(DedicatedLink, IndependentOfBusState) {
  sim::Simulator sim(1);
  MessageBus bus(sim, BusConfig{});
  DedicatedLink link(sim, "fd", "rec");
  std::vector<msg::Message> inbox;
  link.bind("rec", [&](const msg::Message& m) { inbox.push_back(m); });
  bus.crash();  // the dedicated link does not care (§2.2 isolation)
  link.send(msg::make_ping("fd", "rec", 1));
  sim.run_for(Duration::seconds(1.0));
  EXPECT_EQ(inbox.size(), 1u);
}

}  // namespace
}  // namespace mercury::bus
