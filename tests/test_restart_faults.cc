// Integration tests: restart-time faults vs the hardened recovery path
// (ISSUE 2). The restart path is itself a fault domain — startups hang,
// crash, or are flaky — and the recoverer's hardening (per-restart deadline,
// same-cell backoff, attempt budgets, hard-failure parking with permanent FD
// masks) must turn every such fault into either a full recovery or an
// explicit degraded-operation outcome, never a stall.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/failure.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"

namespace mercury::station {
namespace {

namespace names = core::component_names;
using core::MercuryTree;
using core::RestartFaultSpec;
using util::Duration;

TrialSpec hang_once_spec() {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kHeuristic;
  spec.fail_component = names::kRtu;
  spec.seed = 4242;
  spec.timeout = Duration::seconds(150.0);
  RestartFaultSpec fault;
  fault.hang_first_attempts = 1;
  spec.restart_faults[names::kRtu] = fault;
  return spec;
}

// The ISSUE 2 regression pair: the same hung first restart stalls the legacy
// recoverer (it trusts on_complete unconditionally, and a hung startup never
// completes) but is aborted, escalated and recovered from by the hardened one.

TEST(RestartFaults, HungRestartStallsLegacyRecoverer) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = false;
  const TrialResult result = run_trial(spec);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.restart_timeouts, 0);
  EXPECT_FALSE(result.hard_failure);
}

TEST(RestartFaults, HungRestartRecoversWithDeadline) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = true;
  const TrialResult result = run_trial(spec);
  EXPECT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_GE(result.restart_timeouts, 1);
  EXPECT_GE(result.escalations, 1);
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(RestartFaults, CrashLoopingStartupRecoversViaEscalation) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = true;
  RestartFaultSpec fault;
  fault.fail_first_attempts = 2;  // first two startups run, then die
  spec.restart_faults[names::kRtu] = fault;
  const TrialResult result = run_trial(spec);
  EXPECT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  // A member that dies mid-startup never reports ready, so the group stays
  // in flight until the deadline aborts it — each crashed attempt surfaces
  // as a restart timeout, and only the final clean restart completes.
  EXPECT_GE(result.restart_timeouts, 2);
  EXPECT_GE(result.escalations, 1);
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(RestartFaults, UnrestartableComponentParksAndStationRunsDegraded) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = true;
  spec.max_attempts_per_chain = 5;
  spec.timeout = Duration::seconds(500.0);
  RestartFaultSpec fault;
  fault.hang_prob = 1.0;  // every startup of rtu hangs, forever
  spec.restart_faults[names::kRtu] = fault;
  const TrialResult result = run_trial(spec);
  EXPECT_FALSE(result.timed_out);
  EXPECT_TRUE(result.hard_failure);
  ASSERT_EQ(result.parked, std::vector<std::string>{names::kRtu});
  // Everything outside the parked chain came back: degraded operation, not
  // a wedged station.
  EXPECT_TRUE(result.degraded_functional);
  // The attempt budget held (one failure chain; timed-out attempts count).
  EXPECT_LE(result.restarts, 2 * spec.max_attempts_per_chain);
}

TEST(RestartFaults, HardeningIsNoOpOnCleanTrials) {
  // With no restart faults the deadline never trips and no cell streaks, so
  // a hardened trial must reproduce the legacy numbers bit-for-bit.
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.fail_component = names::kSes;
  spec.seed = 777;
  const TrialResult legacy = run_trial(spec);
  spec.harden_restart_path = true;
  const TrialResult hardened = run_trial(spec);
  EXPECT_EQ(legacy.recovery.to_seconds(), hardened.recovery.to_seconds());
  EXPECT_EQ(legacy.restarts, hardened.restarts);
  EXPECT_EQ(hardened.restart_timeouts, 0);
  EXPECT_EQ(hardened.backoffs, 0);
}

TEST(RestartFaults, ProbabilisticFaultsAreDeterministicInSeed) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = true;
  RestartFaultSpec fault;
  fault.hang_prob = 0.3;
  fault.crash_prob = 0.3;
  spec.restart_faults[names::kRtu] = fault;
  const TrialResult a = run_trial(spec);
  const TrialResult b = run_trial(spec);
  EXPECT_EQ(a.recovery.to_seconds(), b.recovery.to_seconds());
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.restart_timeouts, b.restart_timeouts);
  EXPECT_EQ(a.hard_failure, b.hard_failure);
}

TEST(RestartFaults, HardenedDeadlineClearsWorstCaseStartup) {
  // The deadline must sit above the worst contended startup (a clean restart
  // never trips it) but well under the trial timeout (a hung one is caught
  // with time left to escalate and recover).
  const Calibration cal = default_calibration();
  const auto components =
      core::make_mercury_tree(MercuryTree::kTreeIV).all_components();
  const Duration deadline = hardened_restart_deadline(cal, components);
  double worst = 0.0;
  for (const auto& name : components) {
    const ComponentTiming timing = cal.timing_for(name);
    worst = std::max(worst, timing.startup_mean.to_seconds() +
                                3.0 * timing.startup_stddev.to_seconds());
  }
  EXPECT_GT(deadline.to_seconds(), worst);
  EXPECT_LT(deadline.to_seconds(), 120.0);
}

}  // namespace
}  // namespace mercury::station
