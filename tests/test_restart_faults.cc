// Integration tests: restart-time faults vs the hardened recovery path
// (ISSUE 2). The restart path is itself a fault domain — startups hang,
// crash, or are flaky — and the recoverer's hardening (per-restart deadline,
// same-cell backoff, attempt budgets, hard-failure parking with permanent FD
// masks) must turn every such fault into either a full recovery or an
// explicit degraded-operation outcome, never a stall.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "bus/dedicated_link.h"
#include "core/failure.h"
#include "core/mercury_trees.h"
#include "core/process_control.h"
#include "core/recoverer.h"
#include "sim/simulator.h"
#include "station/experiment.h"

namespace mercury::station {
namespace {

namespace names = core::component_names;
using core::MercuryTree;
using core::RestartFaultSpec;
using util::Duration;

TrialSpec hang_once_spec() {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kHeuristic;
  spec.fail_component = names::kRtu;
  spec.seed = 4242;
  spec.timeout = Duration::seconds(150.0);
  RestartFaultSpec fault;
  fault.hang_first_attempts = 1;
  spec.restart_faults[names::kRtu] = fault;
  return spec;
}

// The ISSUE 2 regression pair: the same hung first restart stalls the legacy
// recoverer (it trusts on_complete unconditionally, and a hung startup never
// completes) but is aborted, escalated and recovered from by the hardened one.

TEST(RestartFaults, HungRestartStallsLegacyRecoverer) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = false;
  const TrialResult result = run_trial(spec);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.restart_timeouts, 0);
  EXPECT_FALSE(result.hard_failure);
}

TEST(RestartFaults, HungRestartRecoversWithDeadline) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = true;
  const TrialResult result = run_trial(spec);
  EXPECT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_GE(result.restart_timeouts, 1);
  EXPECT_GE(result.escalations, 1);
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(RestartFaults, CrashLoopingStartupRecoversViaEscalation) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = true;
  RestartFaultSpec fault;
  fault.fail_first_attempts = 2;  // first two startups run, then die
  spec.restart_faults[names::kRtu] = fault;
  const TrialResult result = run_trial(spec);
  EXPECT_FALSE(result.timed_out);
  EXPECT_FALSE(result.hard_failure);
  // A member that dies mid-startup never reports ready, so the group stays
  // in flight until the deadline aborts it — each crashed attempt surfaces
  // as a restart timeout, and only the final clean restart completes.
  EXPECT_GE(result.restart_timeouts, 2);
  EXPECT_GE(result.escalations, 1);
  EXPECT_GT(result.recovery.to_seconds(), 0.0);
}

TEST(RestartFaults, UnrestartableComponentParksAndStationRunsDegraded) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = true;
  spec.max_attempts_per_chain = 5;
  spec.timeout = Duration::seconds(500.0);
  RestartFaultSpec fault;
  fault.hang_prob = 1.0;  // every startup of rtu hangs, forever
  spec.restart_faults[names::kRtu] = fault;
  const TrialResult result = run_trial(spec);
  EXPECT_FALSE(result.timed_out);
  EXPECT_TRUE(result.hard_failure);
  ASSERT_EQ(result.parked, std::vector<std::string>{names::kRtu});
  // Everything outside the parked chain came back: degraded operation, not
  // a wedged station.
  EXPECT_TRUE(result.degraded_functional);
  // The attempt budget held (one failure chain; timed-out attempts count).
  EXPECT_LE(result.restarts, 2 * spec.max_attempts_per_chain);
}

TEST(RestartFaults, HardeningIsNoOpOnCleanTrials) {
  // With no restart faults the deadline never trips and no cell streaks, so
  // a hardened trial must reproduce the legacy numbers bit-for-bit.
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.fail_component = names::kSes;
  spec.seed = 777;
  const TrialResult legacy = run_trial(spec);
  spec.harden_restart_path = true;
  const TrialResult hardened = run_trial(spec);
  EXPECT_EQ(legacy.recovery.to_seconds(), hardened.recovery.to_seconds());
  EXPECT_EQ(legacy.restarts, hardened.restarts);
  EXPECT_EQ(hardened.restart_timeouts, 0);
  EXPECT_EQ(hardened.backoffs, 0);
}

TEST(RestartFaults, ProbabilisticFaultsAreDeterministicInSeed) {
  TrialSpec spec = hang_once_spec();
  spec.harden_restart_path = true;
  RestartFaultSpec fault;
  fault.hang_prob = 0.3;
  fault.crash_prob = 0.3;
  spec.restart_faults[names::kRtu] = fault;
  const TrialResult a = run_trial(spec);
  const TrialResult b = run_trial(spec);
  EXPECT_EQ(a.recovery.to_seconds(), b.recovery.to_seconds());
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.restart_timeouts, b.restart_timeouts);
  EXPECT_EQ(a.hard_failure, b.hard_failure);
}

TEST(RestartFaults, HardenedDeadlineClearsWorstCaseStartup) {
  // The deadline must sit above the worst contended startup (a clean restart
  // never trips it) but well under the trial timeout (a hung one is caught
  // with time left to escalate and recover).
  const Calibration cal = default_calibration();
  const auto components =
      core::make_mercury_tree(MercuryTree::kTreeIV).all_components();
  const Duration deadline = hardened_restart_deadline(cal, components);
  double worst = 0.0;
  for (const auto& name : components) {
    const ComponentTiming timing = cal.timing_for(name);
    worst = std::max(worst, timing.startup_mean.to_seconds() +
                                3.0 * timing.startup_stddev.to_seconds());
  }
  EXPECT_GT(deadline.to_seconds(), worst);
  EXPECT_LT(deadline.to_seconds(), 120.0);
}

// --- Backoff interval clamp (ISSUE 8 satellite) ------------------------------
// Unit-level: the recoverer against a one-second fake ProcessControl, pinning
// the [base, cap] clamp on every backoff path. A sub-unity factor or a streak
// decay step must never pace restarts tighter than base, and growth must
// saturate at cap.

class OneSecondProcessControl : public core::ProcessControl {
 public:
  explicit OneSecondProcessControl(sim::Simulator& sim) : sim_(sim) {}

  std::vector<std::string> component_names() const override {
    return {"mbus", "ses", "str", "rtu", "fedr", "pbcom"};
  }
  void restart_group(const std::vector<std::string>& names,
                     std::function<void()> on_complete) override {
    groups.push_back(names);
    sim_.schedule_after(Duration::seconds(1.0), "fake-restart",
                        [on_complete = std::move(on_complete)] {
                          if (on_complete) on_complete();
                        });
  }
  bool restart_in_progress() const override { return false; }
  std::vector<std::string> restarting_now() const override { return {}; }

  std::vector<std::vector<std::string>> groups;

 private:
  sim::Simulator& sim_;
};

class BackoffClampTest : public ::testing::Test {
 protected:
  BackoffClampTest() : sim_(3), link_(sim_, "fd", "rec"), process_(sim_) {}

  void build(core::RecConfig config) {
    // A short window keeps every re-report a fresh chain at the same cell —
    // backoff pacing, not escalation, is under test.
    config.escalation_window = Duration::millis(500.0);
    rec_ = std::make_unique<core::Recoverer>(sim_, link_, core::make_tree_iv(),
                                             oracle_, process_, config);
    rec_->start();
  }

  void report(const std::string& component) {
    msg::Message m = msg::make_command("fd", "rec", ++seq_, "report-failure");
    m.body.set_attr("component", component);
    link_.send(m);
    sim_.run_for(Duration::millis(5.0));
  }

  sim::Simulator sim_;
  bus::DedicatedLink link_;
  OneSecondProcessControl process_;
  core::HeuristicOracle oracle_;
  std::unique_ptr<core::Recoverer> rec_;
  std::uint64_t seq_ = 0;
};

TEST_F(BackoffClampTest, SubUnityFactorClampsToBase) {
  core::RecConfig config;
  config.backoff_base = Duration::seconds(4.0);
  config.backoff_factor = 0.25;
  build(config);

  report(names::kRtu);  // dispatches at ~0, completes at ~1
  sim_.run_for(Duration::seconds(2.0));
  report(names::kRtu);  // streak 1: waits until t = 4
  EXPECT_EQ(process_.groups.size(), 1u);
  EXPECT_EQ(rec_->backoffs_applied(), 1u);
  sim_.run_for(Duration::seconds(2.5));  // dispatched at ~4, completes at ~5
  EXPECT_EQ(process_.groups.size(), 2u);
  sim_.run_for(Duration::seconds(1.6));  // t ~= 6.1
  report(names::kRtu);
  // Streak 2 with factor 0.25 computes base/4 raw; the clamp must hold the
  // spacing at base, so nothing dispatches before t = 8.
  EXPECT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(rec_->backoffs_applied(), 2u);
  sim_.run_for(Duration::seconds(1.0));  // t ~= 7.1: still waiting
  EXPECT_EQ(process_.groups.size(), 2u);
  sim_.run_for(Duration::seconds(1.5));  // t ~= 8.6: base spacing elapsed
  EXPECT_EQ(process_.groups.size(), 3u);
}

TEST_F(BackoffClampTest, GrowthSaturatesAtCap) {
  core::RecConfig config;
  config.backoff_base = Duration::seconds(2.0);
  config.backoff_factor = 10.0;
  config.backoff_cap = Duration::seconds(5.0);
  build(config);

  report(names::kRtu);  // dispatches at ~0, completes at ~1
  sim_.run_for(Duration::seconds(2.5));
  report(names::kRtu);  // streak 1: base interval already elapsed
  EXPECT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(rec_->backoffs_applied(), 0u);
  sim_.run_for(Duration::seconds(1.7));  // completes ~3.5; t ~= 4.2
  report(names::kRtu);
  // Streak 2 with factor 10 computes 20 s raw — capped at 5, so the third
  // attempt dispatches at ~7.5, not ~22.5.
  EXPECT_EQ(rec_->backoffs_applied(), 1u);
  EXPECT_EQ(process_.groups.size(), 2u);
  sim_.run_for(Duration::seconds(4.0));  // t ~= 8.2: past last + cap
  EXPECT_EQ(process_.groups.size(), 3u);
}

TEST_F(BackoffClampTest, DecayedStreakPacesAtBase) {
  core::RecConfig config;
  config.backoff_base = Duration::seconds(4.0);
  config.backoff_factor = 2.0;
  config.backoff_decay = Duration::seconds(3.0);
  build(config);

  report(names::kRtu);  // streak 1
  sim_.run_for(Duration::seconds(2.0));
  report(names::kRtu);  // waits until t = 4; streak 2
  EXPECT_EQ(rec_->backoffs_applied(), 1u);
  sim_.run_for(Duration::seconds(6.5));  // dispatched ~4, done ~5; t ~= 8.5
  report(names::kRtu);
  // One full decay interval has passed since the last attempt began (t=4):
  // the streak steps 2 -> 1 and the wait is exactly base — already elapsed,
  // so the restart dispatches immediately instead of waiting out the
  // streak-2 interval (8 s), and never anything below base.
  EXPECT_EQ(process_.groups.size(), 3u);
  EXPECT_EQ(rec_->backoffs_applied(), 1u);
}

}  // namespace
}  // namespace mercury::station
