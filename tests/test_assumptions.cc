// Unit tests: the §4 assumption predicates, regenerating Table 3's
// annotations.
#include <gtest/gtest.h>

#include "core/assumptions.h"
#include "core/mercury_trees.h"

namespace mercury::core {
namespace {

namespace names = component_names;

TEST(ACure, HoldsForAllPublishedTrees) {
  for (MercuryTree kind : published_trees()) {
    const SystemModel model = mercury_system_model(uses_split_fedrcom(kind));
    EXPECT_TRUE(check_a_cure(make_mercury_tree(kind), model).holds)
        << to_string(kind);
  }
}

TEST(ACure, FailsWhenCureSetNotRestartable) {
  SystemModel model = mercury_system_model(true);
  model.failure_classes.push_back({"ses", {"ses", "heater"}, 1.0});
  const auto report = check_a_cure(make_tree_iv(), model);
  EXPECT_FALSE(report.holds);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("heater"), std::string::npos);
}

TEST(AIndependent, TreeIHolds) {
  // ses and str share tree I's single cell: any restart takes both.
  const SystemModel model = mercury_system_model(false);
  EXPECT_TRUE(check_a_independent(make_tree_i(), model).holds);
}

TEST(AIndependent, TreesIIAndIIIViolate) {
  // §4.3: restarting ses alone wedges str — the trees with separate ses/str
  // cells violate A_independent.
  const SystemModel fused = mercury_system_model(false);
  const SystemModel split = mercury_system_model(true);
  EXPECT_FALSE(check_a_independent(make_tree_ii(), fused).holds);
  const auto report = check_a_independent(make_tree_iii(), split);
  EXPECT_FALSE(report.holds);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations[0].find("ses"), std::string::npos);
}

TEST(AIndependent, ConsolidationRestoresIt) {
  const SystemModel model = mercury_system_model(true);
  EXPECT_TRUE(check_a_independent(make_tree_iv(), model).holds);
  EXPECT_TRUE(check_a_independent(make_tree_v(), model).holds);
}

TEST(AOracle, PerfectHoldsFaultyViolates) {
  EXPECT_TRUE(check_a_oracle(0.0, 0.0).holds);
  EXPECT_FALSE(check_a_oracle(0.3, 0.0).holds);
  EXPECT_FALSE(check_a_oracle(0.0, 0.1).holds);
}

TEST(AEntire, RedundancyBreaksIt) {
  EXPECT_TRUE(check_a_entire(false).holds);
  EXPECT_FALSE(check_a_entire(true).holds);
}

}  // namespace
}  // namespace mercury::core
