// Integration tests: §7 recursive recovery — soft procedures below the
// restart ladder.
#include <gtest/gtest.h>

#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/experiment.h"

namespace mercury::station {
namespace {

namespace names = core::component_names;
using core::MercuryTree;
using util::Duration;

TrialSpec soft_spec(FailureMode mode, const std::string& component,
                    std::uint64_t seed, bool soft = true) {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kHeuristic;  // realistic: no cure-set knowledge
  spec.enable_soft_recovery = soft;
  spec.mode = mode;
  spec.fail_component = component;
  spec.seed = seed;
  return spec;
}

TEST(RecursiveRecovery, StaleAttachmentCuredBySoftProcedure) {
  const TrialResult result =
      run_trial(soft_spec(FailureMode::kStaleAttachment, names::kPbcom, 1));
  // Detection (~0.66 s) + soft procedure (0.25 s) — versus a 21 s restart.
  EXPECT_LT(result.recovery.to_seconds(), 1.8);
  EXPECT_EQ(result.restarts, 1);  // one action in the history: the soft one
  EXPECT_EQ(result.escalations, 0);
}

TEST(RecursiveRecovery, WithoutSoftRecoveryStaleAttachmentCostsARestart) {
  const TrialResult result = run_trial(
      soft_spec(FailureMode::kStaleAttachment, names::kPbcom, 2, /*soft=*/false));
  // The restart cures it too (restart is the stronger rung) but costs 20+s.
  EXPECT_GT(result.recovery.to_seconds(), 20.0);
  EXPECT_EQ(result.escalations, 0);
}

TEST(RecursiveRecovery, CrashEscalatesPastTheSoftRung) {
  const TrialResult result =
      run_trial(soft_spec(FailureMode::kCrash, names::kRtu, 3));
  // Soft rung (0.25 s) fails, FD re-detects, restart rung cures: the crash
  // costs roughly one extra second over the restart-only policy.
  EXPECT_GT(result.recovery.to_seconds(), 5.5);
  EXPECT_LT(result.recovery.to_seconds(), 8.5);
  EXPECT_EQ(result.restarts, 2);  // soft attempt + real restart
  EXPECT_EQ(result.escalations, 1);
}

TEST(RecursiveRecovery, SoftRungPenaltyIsBounded) {
  TrialSpec with = soft_spec(FailureMode::kCrash, names::kRtu, 100);
  TrialSpec without =
      soft_spec(FailureMode::kCrash, names::kRtu, 100, /*soft=*/false);
  const double mean_with = run_trials(with, 20).mean();
  const double mean_without = run_trials(without, 20).mean();
  EXPECT_GT(mean_with, mean_without);
  EXPECT_LT(mean_with - mean_without, 2.0);
}

TEST(RecursiveRecovery, JointFailureClimbsAllThreeRungs) {
  const TrialResult result =
      run_trial(soft_spec(FailureMode::kJointFedrPbcom, names::kPbcom, 4));
  // Rung 0: soft pbcom (no cure). Rung 1: restart pbcom leaf (no cure).
  // Rung 2: escalate to the joint cell (cure).
  EXPECT_EQ(result.restarts, 3);
  EXPECT_EQ(result.escalations, 2);
  EXPECT_FALSE(result.hard_failure);
  EXPECT_GT(result.recovery.to_seconds(), 40.0);
}

TEST(RecursiveRecovery, SoftCureLeavesNoEscalationResidue) {
  // A crash right after a successful soft cure must start a fresh chain,
  // not an escalation of the cured one.
  sim::Simulator sim(5);
  TrialSpec spec = soft_spec(FailureMode::kStaleAttachment, names::kRtu, 5);
  MercuryRig rig(sim, spec);
  rig.start();
  sim.run_for(Duration::seconds(3.0));

  rig.station().inject_stale_attachment(names::kRtu);
  while (!rig.station().all_functional()) sim.step();
  ASSERT_EQ(rig.rec().soft_recoveries(), 1u);

  sim.run_for(Duration::seconds(5.0));  // past the escalation window
  rig.station().inject_crash(names::kRtu);
  while (!rig.station().all_functional()) sim.step();
  // Fresh chain: soft rung first again (not a tree escalation).
  EXPECT_EQ(rig.rec().soft_recoveries(), 2u);
  EXPECT_TRUE(rig.rec().hard_failures().empty());
}

// Soft-cure sweep: every component's stale-attachment transient heals in
// under two seconds with the soft rung, on every tree that carries it.
class StaleSweep
    : public ::testing::TestWithParam<std::tuple<MercuryTree, const char*>> {};

TEST_P(StaleSweep, SoftCureIsFast) {
  const auto [tree, component] = GetParam();
  TrialSpec spec = soft_spec(FailureMode::kStaleAttachment, component, 77);
  spec.tree = tree;
  const TrialResult result = run_trial(spec);
  EXPECT_LT(result.recovery.to_seconds(), 2.0)
      << core::to_string(tree) << " " << component;
  EXPECT_EQ(result.escalations, 0);
  EXPECT_FALSE(result.hard_failure);
}

INSTANTIATE_TEST_SUITE_P(
    TreesAndComponents, StaleSweep,
    ::testing::Combine(::testing::Values(MercuryTree::kTreeIII,
                                         MercuryTree::kTreeIV,
                                         MercuryTree::kTreeV),
                       ::testing::Values("mbus", "ses", "str", "rtu", "fedr",
                                         "pbcom")),
    [](const ::testing::TestParamInfo<std::tuple<MercuryTree, const char*>>&
           info) {
      return "tree" +
             std::string{core::to_string(std::get<0>(info.param)) ==
                                 std::string("II'")
                             ? "IIp"
                             : core::to_string(std::get<0>(info.param))} +
             "_" + std::get<1>(info.param);
    });

TEST(RecursiveRecovery, PaperBaselineHasNoSoftRung) {
  // Default configuration = the paper's system: restart is the only
  // procedure, so soft counters stay zero.
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.fail_component = names::kSes;
  spec.seed = 6;
  sim::Simulator sim(6);
  MercuryRig rig(sim, spec);
  rig.start();
  sim.run_for(Duration::seconds(3.0));
  rig.station().inject_crash(names::kSes);
  while (!rig.station().all_functional()) sim.step();
  EXPECT_EQ(rig.rec().soft_recoveries(), 0u);
}

}  // namespace
}  // namespace mercury::station
