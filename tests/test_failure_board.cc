// Unit tests: the failure board's cure rule (§4's f_ci machinery).
#include <gtest/gtest.h>

#include "core/failure_board.h"

namespace mercury::core {
namespace {

using util::TimePoint;

TimePoint at(double seconds) { return TimePoint::from_seconds(seconds); }

TEST(FailureSpecs, CrashAndJointConstructors) {
  const FailureSpec crash = make_crash("ses");
  EXPECT_EQ(crash.manifest, "ses");
  EXPECT_EQ(crash.cure_set, std::vector<std::string>{"ses"});
  EXPECT_EQ(crash.kind, "crash");

  const FailureSpec joint = make_joint("pbcom", {"fedr", "pbcom", "fedr"});
  EXPECT_EQ(joint.manifest, "pbcom");
  EXPECT_EQ(joint.cure_set, (std::vector<std::string>{"fedr", "pbcom"}));
  EXPECT_EQ(joint.kind, "joint");
}

TEST(FailureBoard, InjectManifestsAtComponent) {
  FailureBoard board;
  EXPECT_FALSE(board.any_active());
  board.inject(make_crash("ses"), at(1.0));
  EXPECT_TRUE(board.any_active());
  EXPECT_TRUE(board.manifests_at("ses"));
  EXPECT_FALSE(board.manifests_at("str"));
  ASSERT_EQ(board.active_at("ses").size(), 1u);
  EXPECT_EQ(board.active_at("ses")[0].onset, at(1.0));
}

TEST(FailureBoard, RestartOfCureSetCures) {
  FailureBoard board;
  board.inject(make_crash("ses"), at(1.0));
  board.on_restart_complete("ses", at(5.0));
  EXPECT_FALSE(board.any_active());
  EXPECT_EQ(board.total_cured(), 1u);
}

TEST(FailureBoard, UnrelatedRestartDoesNotCure) {
  FailureBoard board;
  board.inject(make_crash("ses"), at(1.0));
  board.on_restart_complete("str", at(5.0));
  EXPECT_TRUE(board.manifests_at("ses"));
}

TEST(FailureBoard, JointFailureNeedsWholeCureSet) {
  FailureBoard board;
  board.inject(make_joint("pbcom", {"fedr", "pbcom"}), at(0.0));
  // Guess-too-low: pbcom alone does not cure (§4.4).
  board.on_restart_complete("pbcom", at(21.0));
  EXPECT_TRUE(board.manifests_at("pbcom"));
  // Completing the cure set does.
  board.on_restart_complete("fedr", at(43.0));
  EXPECT_FALSE(board.any_active());
}

TEST(FailureBoard, CureSetMembersMayRestartInAnyOrder) {
  FailureBoard board;
  board.inject(make_joint("pbcom", {"fedr", "pbcom"}), at(0.0));
  board.on_restart_complete("fedr", at(5.0));
  EXPECT_TRUE(board.manifests_at("pbcom"));
  board.on_restart_complete("pbcom", at(25.0));
  EXPECT_FALSE(board.any_active());
}

TEST(FailureBoard, DuplicateRestartCountsOnce) {
  FailureBoard board;
  board.inject(make_joint("pbcom", {"fedr", "pbcom"}), at(0.0));
  board.on_restart_complete("pbcom", at(5.0));
  board.on_restart_complete("pbcom", at(10.0));
  EXPECT_TRUE(board.manifests_at("pbcom"));  // fedr still pending
}

TEST(FailureBoard, IndependentFailuresCureIndependently) {
  FailureBoard board;
  const FailureId ses_failure = board.inject(make_crash("ses"), at(0.0));
  board.inject(make_crash("rtu"), at(1.0));
  (void)ses_failure;
  board.on_restart_complete("rtu", at(6.0));
  EXPECT_TRUE(board.manifests_at("ses"));
  EXPECT_FALSE(board.manifests_at("rtu"));
  EXPECT_EQ(board.active().size(), 1u);
}

TEST(FailureBoard, TwoFailuresSameComponentCureTogether) {
  FailureBoard board;
  board.inject(make_crash("ses"), at(0.0));
  board.inject(make_crash("ses"), at(1.0));
  EXPECT_EQ(board.active_at("ses").size(), 2u);
  board.on_restart_complete("ses", at(5.0));
  EXPECT_FALSE(board.any_active());
  EXPECT_EQ(board.total_cured(), 2u);
}

TEST(FailureBoard, ListenersFire) {
  FailureBoard board;
  int injected = 0;
  int cured = 0;
  TimePoint cure_time;
  board.add_inject_listener([&](const ActiveFailure&) { ++injected; });
  board.add_cure_listener([&](const ActiveFailure& failure, TimePoint now) {
    ++cured;
    cure_time = now;
    EXPECT_EQ(failure.spec.manifest, "ses");
  });
  board.inject(make_crash("ses"), at(0.0));
  EXPECT_EQ(injected, 1);
  board.on_restart_complete("ses", at(7.0));
  EXPECT_EQ(cured, 1);
  EXPECT_EQ(cure_time, at(7.0));
}

TEST(FailureBoard, ClearRemovesById) {
  FailureBoard board;
  const FailureId id = board.inject(make_crash("ses"), at(0.0));
  EXPECT_TRUE(board.clear(id));
  EXPECT_FALSE(board.clear(id));
  EXPECT_FALSE(board.any_active());
}

TEST(FailureBoard, ClearDoesNotFireListenersOrCountAsCured) {
  // clear() forcibly removes a failure (operator/test intervention); it was
  // removed, not cured, so cure listeners must stay silent — a listener
  // treating it as a cure would credit recovery machinery that never ran.
  FailureBoard board;
  int cures = 0;
  int injects = 0;
  board.add_cure_listener([&](const ActiveFailure&, util::TimePoint) { ++cures; });
  board.add_inject_listener([&](const ActiveFailure&) { ++injects; });

  const FailureId id = board.inject(make_crash("ses"), at(0.0));
  EXPECT_EQ(injects, 1);
  EXPECT_TRUE(board.clear(id));
  EXPECT_EQ(cures, 0);
  EXPECT_EQ(board.total_cured(), 0u);
  EXPECT_FALSE(board.any_active());

  // A real cure afterwards still fires: clear() removed one failure, not
  // the listener wiring.
  board.inject(make_crash("ses"), at(1.0));
  board.on_restart_complete("ses", at(2.0));
  EXPECT_EQ(cures, 1);
  EXPECT_EQ(injects, 2);
}

TEST(FailureBoard, CountersTrack) {
  FailureBoard board;
  board.inject(make_crash("a"), at(0.0));
  board.inject(make_crash("b"), at(0.0));
  EXPECT_EQ(board.total_injected(), 2u);
  board.on_restart_complete("a", at(1.0));
  EXPECT_EQ(board.total_cured(), 1u);
}

}  // namespace
}  // namespace mercury::core
