// Unit tests: the four oracles (§3.3, §4.4, §7).
#include <gtest/gtest.h>

#include "core/failure_board.h"
#include "core/mercury_trees.h"
#include "core/oracle.h"

namespace mercury::core {
namespace {

namespace names = component_names;
using util::TimePoint;

OracleQuery fresh(const RestartTree& tree, std::string component) {
  OracleQuery query;
  query.tree = &tree;
  query.failed_component = std::move(component);
  return query;
}

OracleQuery escalated(const RestartTree& tree, std::string component,
                      NodeId previous, int level = 1) {
  OracleQuery query = fresh(tree, std::move(component));
  query.escalation_level = level;
  query.previous_node = previous;
  return query;
}

// --- HeuristicOracle -----------------------------------------------------------

TEST(HeuristicOracle, PicksAttachmentCell) {
  const RestartTree tree = make_tree_iii();
  HeuristicOracle oracle;
  const NodeId chosen = oracle.choose(fresh(tree, names::kSes));
  EXPECT_EQ(chosen, *tree.find_component(names::kSes));
}

TEST(HeuristicOracle, ConsolidatedCellRestartsBoth) {
  const RestartTree tree = make_tree_iv();
  HeuristicOracle oracle;
  const NodeId chosen = oracle.choose(fresh(tree, names::kSes));
  EXPECT_EQ(tree.group_components(chosen),
            (std::vector<std::string>{names::kSes, names::kStr}));
}

TEST(HeuristicOracle, EscalatesToParent) {
  const RestartTree tree = make_tree_iii();
  HeuristicOracle oracle;
  const NodeId leaf = *tree.find_component(names::kPbcom);
  const NodeId chosen = oracle.choose(escalated(tree, names::kPbcom, leaf));
  EXPECT_EQ(chosen, tree.parent(leaf));
}

TEST(HeuristicOracle, EscalationSaturatesAtRoot) {
  const RestartTree tree = make_tree_ii();
  HeuristicOracle oracle;
  const NodeId chosen =
      oracle.choose(escalated(tree, names::kSes, tree.root(), 3));
  EXPECT_EQ(chosen, tree.root());
}

// --- PerfectOracle --------------------------------------------------------------

TEST(PerfectOracle, ReadsCureSetFromBoard) {
  const RestartTree tree = make_tree_iv();
  FailureBoard board;
  board.inject(make_joint(names::kPbcom, {names::kFedr, names::kPbcom}),
               TimePoint::origin());
  PerfectOracle oracle(board);
  const NodeId chosen = oracle.choose(fresh(tree, names::kPbcom));
  EXPECT_EQ(tree.group_components(chosen),
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
}

TEST(PerfectOracle, MinimalForSimpleCrash) {
  const RestartTree tree = make_tree_iii();
  FailureBoard board;
  board.inject(make_crash(names::kPbcom), TimePoint::origin());
  PerfectOracle oracle(board);
  const NodeId chosen = oracle.choose(fresh(tree, names::kPbcom));
  EXPECT_EQ(chosen, *tree.find_component(names::kPbcom));
}

TEST(PerfectOracle, FallsBackToAttachmentWithoutGroundTruth) {
  const RestartTree tree = make_tree_iii();
  FailureBoard board;  // empty: detection blip
  PerfectOracle oracle(board);
  EXPECT_EQ(oracle.choose(fresh(tree, names::kSes)),
            *tree.find_component(names::kSes));
}

TEST(PerfectOracle, UnionsMultipleFailures) {
  const RestartTree tree = make_tree_iv();
  FailureBoard board;
  board.inject(make_crash(names::kPbcom), TimePoint::origin());
  board.inject(make_joint(names::kPbcom, {names::kFedr, names::kPbcom}),
               TimePoint::origin());
  PerfectOracle oracle(board);
  const NodeId chosen = oracle.choose(fresh(tree, names::kPbcom));
  EXPECT_EQ(tree.group_components(chosen),
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
}

// --- FaultyOracle ----------------------------------------------------------------

TEST(FaultyOracle, ZeroErrorMatchesInner) {
  const RestartTree tree = make_tree_iv();
  FailureBoard board;
  board.inject(make_joint(names::kPbcom, {names::kFedr, names::kPbcom}),
               TimePoint::origin());
  PerfectOracle perfect(board);
  FaultyOracle faulty(perfect, util::Rng(1), 0.0, 0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(faulty.choose(fresh(tree, names::kPbcom)),
              perfect.choose(fresh(tree, names::kPbcom)));
  }
  EXPECT_EQ(faulty.mistakes_made(), 0u);
}

TEST(FaultyOracle, GuessTooLowRateMatchesP) {
  const RestartTree tree = make_tree_iv();
  FailureBoard board;
  board.inject(make_joint(names::kPbcom, {names::kFedr, names::kPbcom}),
               TimePoint::origin());
  PerfectOracle perfect(board);
  FaultyOracle faulty(perfect, util::Rng(2), 0.3, 0.0);

  const NodeId minimal = perfect.choose(fresh(tree, names::kPbcom));
  const NodeId leaf = *tree.find_component(names::kPbcom);
  int low = 0;
  const int trials = 2'000;
  for (int i = 0; i < trials; ++i) {
    const NodeId chosen = faulty.choose(fresh(tree, names::kPbcom));
    if (chosen == leaf) {
      ++low;
    } else {
      EXPECT_EQ(chosen, minimal);
    }
  }
  EXPECT_NEAR(low / static_cast<double>(trials), 0.3, 0.03);
  EXPECT_EQ(faulty.mistakes_made(), static_cast<std::uint64_t>(low));
}

TEST(FaultyOracle, TreeVMakesGuessTooLowImpossible) {
  // §4.4's whole point: promotion removes the too-low option for pbcom.
  const RestartTree tree = make_tree_v();
  FailureBoard board;
  board.inject(make_joint(names::kPbcom, {names::kFedr, names::kPbcom}),
               TimePoint::origin());
  PerfectOracle perfect(board);
  FaultyOracle faulty(perfect, util::Rng(3), 0.5, 0.0);
  const NodeId minimal = perfect.choose(fresh(tree, names::kPbcom));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(faulty.choose(fresh(tree, names::kPbcom)), minimal);
  }
  EXPECT_EQ(faulty.mistakes_made(), 0u);
}

TEST(FaultyOracle, GuessTooHighPicksParent) {
  const RestartTree tree = make_tree_iii();
  FailureBoard board;
  board.inject(make_crash(names::kFedr), TimePoint::origin());
  PerfectOracle perfect(board);
  FaultyOracle faulty(perfect, util::Rng(4), 0.0, 1.0);  // always too high
  const NodeId leaf = *tree.find_component(names::kFedr);
  EXPECT_EQ(faulty.choose(fresh(tree, names::kFedr)), tree.parent(leaf));
}

TEST(FaultyOracle, AnswersEscalationsHonestly) {
  const RestartTree tree = make_tree_iv();
  FailureBoard board;
  PerfectOracle perfect(board);
  FaultyOracle faulty(perfect, util::Rng(5), 1.0, 0.0);  // always wrong fresh
  const NodeId leaf = *tree.find_component(names::kPbcom);
  // "The faulty oracle restarts pbcom, then realizes the failure is
  // persisting, and moves up the tree."
  EXPECT_EQ(faulty.choose(escalated(tree, names::kPbcom, leaf)),
            tree.parent(leaf));
}

// --- LearningOracle ----------------------------------------------------------------

LearningOracle make_learner(double explore = 0.0) {
  std::map<std::string, double> costs = {
      {names::kMbus, 5.35}, {names::kSes, 4.10},  {names::kStr, 4.16},
      {names::kRtu, 4.94},  {names::kFedr, 5.11}, {names::kPbcom, 20.49},
  };
  return LearningOracle(util::Rng(6), costs, explore);
}

TEST(LearningOracle, PriorIsLaplace) {
  const LearningOracle learner = make_learner();
  EXPECT_DOUBLE_EQ(learner.cure_estimate(names::kPbcom, 0), 0.5);
}

TEST(LearningOracle, FeedbackMovesEstimates) {
  LearningOracle learner = make_learner();
  const RestartTree tree = make_tree_iv();
  const NodeId leaf = *tree.find_component(names::kPbcom);
  for (int i = 0; i < 20; ++i) learner.feedback(names::kPbcom, leaf, false);
  EXPECT_LT(learner.cure_estimate(names::kPbcom, leaf), 0.1);
  for (int i = 0; i < 20; ++i) learner.feedback(names::kPbcom, leaf, true);
  EXPECT_NEAR(learner.cure_estimate(names::kPbcom, leaf), 0.5, 0.03);
}

TEST(LearningOracle, LearnsToJumpToJointCell) {
  LearningOracle learner = make_learner();
  const RestartTree tree = make_tree_iv();
  const NodeId leaf = *tree.find_component(names::kPbcom);
  const NodeId joint = tree.parent(leaf);
  // Experience: leaf restarts never cure pbcom-manifesting failures, the
  // joint cell always does.
  for (int i = 0; i < 10; ++i) {
    learner.feedback(names::kPbcom, leaf, false);
    learner.feedback(names::kPbcom, joint, true);
  }
  EXPECT_EQ(learner.choose(fresh(tree, names::kPbcom)), joint);
}

TEST(LearningOracle, AvoidsRootWhenJointSuffices) {
  LearningOracle learner = make_learner();
  const RestartTree tree = make_tree_iv();
  const NodeId leaf = *tree.find_component(names::kPbcom);
  const NodeId joint = tree.parent(leaf);
  for (int i = 0; i < 10; ++i) learner.feedback(names::kPbcom, joint, true);
  const NodeId chosen = learner.choose(fresh(tree, names::kPbcom));
  EXPECT_NE(chosen, tree.root());
  EXPECT_EQ(chosen, joint);
}

TEST(LearningOracle, DefaultsToCheapCellWithoutData) {
  LearningOracle learner = make_learner();
  const RestartTree tree = make_tree_iv();
  // No data: expected-cost math under uniform priors must not pick the
  // root (contention-inflated) for a cheap component.
  const NodeId chosen = learner.choose(fresh(tree, names::kRtu));
  EXPECT_EQ(chosen, *tree.find_component(names::kRtu));
}

TEST(LearningOracle, EscalatesWhenAsked) {
  LearningOracle learner = make_learner();
  const RestartTree tree = make_tree_iv();
  const NodeId leaf = *tree.find_component(names::kPbcom);
  EXPECT_EQ(learner.choose(escalated(tree, names::kPbcom, leaf)),
            tree.parent(leaf));
}

}  // namespace
}  // namespace mercury::core
