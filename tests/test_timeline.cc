// Unit tests: the recovery timeline.
#include <gtest/gtest.h>

#include "core/mercury_trees.h"
#include "core/timeline.h"
#include "sim/simulator.h"
#include "station/experiment.h"

namespace mercury::core {
namespace {

namespace names = component_names;
using util::Duration;
using util::TimePoint;

TEST(Timeline, ObservesBoardEvents) {
  FailureBoard board;
  RecoveryTimeline timeline;
  timeline.observe(board);

  board.inject(make_crash("ses"), TimePoint::from_seconds(10.0));
  board.on_restart_complete("ses", TimePoint::from_seconds(16.0));

  const auto events = timeline.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TimelineEventKind::kFailureInjected);
  EXPECT_EQ(events[0].subject, "ses");
  EXPECT_EQ(events[1].kind, TimelineEventKind::kFailureCured);
  EXPECT_DOUBLE_EQ(events[1].at.to_seconds(), 16.0);
}

TEST(Timeline, EventsSortedByTime) {
  RecoveryTimeline timeline;
  timeline.record({TimePoint::from_seconds(5.0),
                   TimelineEventKind::kRestartCompleted, "b", ""});
  timeline.record({TimePoint::from_seconds(1.0),
                   TimelineEventKind::kFailureInjected, "a", ""});
  const auto events = timeline.events();
  EXPECT_EQ(events[0].subject, "a");
  EXPECT_EQ(events[1].subject, "b");
}

TEST(Timeline, IngestIsIdempotent) {
  sim::Simulator sim(31);
  station::TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  station::MercuryRig rig(sim, spec);
  rig.start();
  sim.run_for(Duration::seconds(3.0));

  RecoveryTimeline timeline;
  timeline.observe(rig.station().board());
  rig.station().inject_crash(names::kRtu);
  while (!rig.station().all_functional()) sim.step();

  timeline.ingest(rig.rec(), rig.rec().tree());
  const auto once = timeline.size();
  timeline.ingest(rig.rec(), rig.rec().tree());
  EXPECT_EQ(timeline.size(), once);
  // FAIL + CURE + RESTART begun/completed.
  EXPECT_EQ(once, 4u);
}

TEST(Timeline, ListingShowsTheCausalChain) {
  sim::Simulator sim(32);
  station::TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  station::MercuryRig rig(sim, spec);
  rig.start();
  sim.run_for(Duration::seconds(3.0));

  RecoveryTimeline timeline;
  timeline.observe(rig.station().board());
  rig.station().inject_crash(names::kSes);
  while (!rig.station().all_functional()) sim.step();
  timeline.ingest(rig.rec(), rig.rec().tree());

  const std::string listing = timeline.render_listing();
  EXPECT_NE(listing.find("FAIL"), std::string::npos);
  EXPECT_NE(listing.find("RESTART"), std::string::npos);
  EXPECT_NE(listing.find("DONE"), std::string::npos);
  EXPECT_NE(listing.find("CURE"), std::string::npos);
  EXPECT_NE(listing.find("R_[ses,str]"), std::string::npos);
}

TEST(Timeline, GanttMarksDownInterval) {
  RecoveryTimeline timeline;
  timeline.record({TimePoint::from_seconds(25.0),
                   TimelineEventKind::kFailureInjected, "ses", ""});
  timeline.record({TimePoint::from_seconds(75.0),
                   TimelineEventKind::kFailureCured, "ses", ""});
  const std::string gantt = timeline.render_gantt(
      TimePoint::from_seconds(0.0), TimePoint::from_seconds(100.0), 40);
  // Down for the middle half: ~20 '#' out of 40 columns, roughly centered.
  const std::size_t hashes =
      static_cast<std::size_t>(std::count(gantt.begin(), gantt.end(), '#'));
  EXPECT_GE(hashes, 18u);
  EXPECT_LE(hashes, 22u);
  EXPECT_NE(gantt.find("ses"), std::string::npos);
}

TEST(Timeline, GanttOpenFailureRunsToHorizon) {
  RecoveryTimeline timeline;
  timeline.record({TimePoint::from_seconds(50.0),
                   TimelineEventKind::kFailureInjected, "rtu", ""});
  const std::string gantt = timeline.render_gantt(
      TimePoint::from_seconds(0.0), TimePoint::from_seconds(100.0), 40);
  const std::size_t hashes =
      static_cast<std::size_t>(std::count(gantt.begin(), gantt.end(), '#'));
  EXPECT_GE(hashes, 18u);  // second half all down
}

TEST(Timeline, ClearResets) {
  RecoveryTimeline timeline;
  timeline.record({TimePoint::origin(), TimelineEventKind::kFailureInjected,
                   "x", ""});
  timeline.clear();
  EXPECT_EQ(timeline.size(), 0u);
}

}  // namespace
}  // namespace mercury::core
