// Property fuzzing: random restart trees and failure models against the
// invariants the recovery machinery depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/failure_board.h"
#include "core/oracle.h"
#include "core/restart_tree.h"
#include "core/transformations.h"
#include "core/tree_io.h"
#include "util/rng.h"

namespace mercury::core {
namespace {

using util::Rng;
using util::TimePoint;

/// A random valid restart tree: up to 3 levels, every cell's subtree
/// non-empty, components attached at random cells (internal cells allowed —
/// that is what node promotion produces).
RestartTree random_tree(Rng& rng, int components) {
  while (true) {
    RestartTree tree("root");
    // Random skeleton.
    std::vector<NodeId> cells = {tree.root()};
    const int extra_cells = static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < extra_cells; ++i) {
      const NodeId parent = cells[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cells.size()) - 1))];
      if (tree.depth(parent) >= 2) continue;  // cap depth
      cells.push_back(tree.add_cell(parent, "cell" + std::to_string(i)));
    }
    // Random attachment.
    for (int i = 0; i < components; ++i) {
      const NodeId cell = cells[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cells.size()) - 1))];
      tree.attach_component(cell, "c" + std::to_string(i));
    }
    if (tree.validate().ok()) return tree;
    // Some skeletons leave empty subtrees; retry with fresh randomness.
  }
}

std::vector<std::string> random_cure_set(Rng& rng, const RestartTree& tree) {
  const auto all = tree.all_components();
  std::vector<std::string> cure;
  const auto size = rng.uniform_int(1, std::min<std::int64_t>(
                                           3, static_cast<std::int64_t>(all.size())));
  while (static_cast<std::int64_t>(cure.size()) < size) {
    const auto& pick = all[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(all.size()) - 1))];
    if (std::find(cure.begin(), cure.end(), pick) == cure.end()) {
      cure.push_back(pick);
    }
  }
  return cure;
}

class TreeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeFuzz, GroupAlgebraInvariants) {
  Rng rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    const RestartTree tree = random_tree(rng, 6);

    // Root group is everything; every child group is a subset of its
    // parent's; group count equals cell count.
    const auto all = tree.all_components();
    EXPECT_EQ(tree.group_components(tree.root()), all);
    EXPECT_EQ(tree.group_count(), tree.size());
    for (NodeId id : tree.preorder()) {
      const auto group = tree.group_components(id);
      EXPECT_FALSE(group.empty());
      if (id != tree.root()) {
        const auto parent_group = tree.group_components(tree.parent(id));
        EXPECT_TRUE(std::includes(parent_group.begin(), parent_group.end(),
                                  group.begin(), group.end()));
      }
    }
  }
}

TEST_P(TreeFuzz, LowestCoveringCellIsMinimal) {
  Rng rng(GetParam() + 1);
  for (int round = 0; round < 25; ++round) {
    const RestartTree tree = random_tree(rng, 6);
    const auto cure = random_cure_set(rng, tree);
    const auto node = tree.lowest_cell_covering_all(cure);
    ASSERT_TRUE(node.has_value());

    const auto covers = [&](NodeId id) {
      const auto group = tree.group_components(id);
      return std::all_of(cure.begin(), cure.end(), [&](const std::string& c) {
        return std::binary_search(group.begin(), group.end(), c);
      });
    };
    EXPECT_TRUE(covers(*node));
    // Minimality: no child of the chosen cell covers the cure set.
    for (NodeId child : tree.cell(*node).children) {
      EXPECT_FALSE(covers(child)) << tree.render();
    }
  }
}

TEST_P(TreeFuzz, PerfectOracleAlwaysCoversTheCureSet) {
  Rng rng(GetParam() + 2);
  for (int round = 0; round < 25; ++round) {
    const RestartTree tree = random_tree(rng, 6);
    auto cure = random_cure_set(rng, tree);
    FailureBoard board;
    FailureSpec spec;
    spec.manifest = cure.front();
    spec.cure_set = cure;
    board.inject(std::move(spec), TimePoint::origin());

    PerfectOracle oracle(board);
    OracleQuery query;
    query.tree = &tree;
    query.failed_component = cure.front();
    const NodeId chosen = oracle.choose(query);
    const auto group = tree.group_components(chosen);
    for (const auto& member : cure) {
      EXPECT_TRUE(std::binary_search(group.begin(), group.end(), member))
          << tree.render();
    }
  }
}

TEST_P(TreeFuzz, FaultyOracleOnlyStepsTowardTheManifest) {
  Rng rng(GetParam() + 3);
  for (int round = 0; round < 25; ++round) {
    const RestartTree tree = random_tree(rng, 6);
    const auto cure = random_cure_set(rng, tree);
    FailureBoard board;
    FailureSpec spec;
    spec.manifest = cure.front();
    spec.cure_set = cure;
    board.inject(std::move(spec), TimePoint::origin());

    PerfectOracle perfect(board);
    FaultyOracle faulty(perfect, rng.fork("faulty"), /*p_low=*/1.0);
    OracleQuery query;
    query.tree = &tree;
    query.failed_component = cure.front();
    const NodeId honest = perfect.choose(query);
    const NodeId guessed = faulty.choose(query);
    // Either no lower option existed, or the guess is a strict descendant
    // of the honest choice that still contains the manifest component.
    if (guessed != honest) {
      EXPECT_TRUE(tree.is_ancestor(honest, guessed));
      const auto group = tree.group_components(guessed);
      EXPECT_TRUE(std::binary_search(group.begin(), group.end(), cure.front()));
    }
  }
}

TEST_P(TreeFuzz, XmlRoundTripPreservesEverything) {
  Rng rng(GetParam() + 4);
  for (int round = 0; round < 15; ++round) {
    const RestartTree tree = random_tree(rng, 5);
    auto loaded = tree_from_xml(tree_to_xml(tree));
    ASSERT_TRUE(loaded.ok()) << loaded.error().message();
    // Cell *indices* may renumber (the loader materializes in document
    // order), so compare the deterministic DFS rendering (labels, child
    // order, attachments) and the restart-group semantics.
    EXPECT_EQ(tree.render(), loaded.value().render());
    EXPECT_TRUE(equivalent(tree, loaded.value()));
  }
}

TEST_P(TreeFuzz, ConsolidationOfRandomSiblingLeavesShrinksChoices) {
  Rng rng(GetParam() + 5);
  int applied = 0;
  for (int round = 0; round < 40 && applied < 8; ++round) {
    const RestartTree tree = random_tree(rng, 6);
    // Find a random pair of sibling single-leaf components.
    const auto all = tree.all_components();
    for (const auto& a : all) {
      for (const auto& b : all) {
        if (a >= b) continue;
        const auto cell_a = *tree.find_component(a);
        const auto cell_b = *tree.find_component(b);
        if (cell_a == cell_b || !tree.is_leaf(cell_a) || !tree.is_leaf(cell_b) ||
            tree.parent(cell_a) != tree.parent(cell_b)) {
          continue;
        }
        auto merged = consolidate_group(tree, a, b);
        ASSERT_TRUE(merged.ok()) << merged.error().message();
        EXPECT_EQ(merged.value().group_count(), tree.group_count() - 1);
        EXPECT_EQ(merged.value().all_components(), all);
        EXPECT_TRUE(merged.value().validate().ok());
        ++applied;
        goto next_round;
      }
    }
  next_round:;
  }
  EXPECT_GE(applied, 3);  // the generator produces eligible pairs regularly
}

TEST_P(TreeFuzz, PromotionNeverLosesComponentsOrValidity) {
  Rng rng(GetParam() + 6);
  int applied = 0;
  for (int round = 0; round < 40 && applied < 8; ++round) {
    const RestartTree tree = random_tree(rng, 6);
    for (const auto& component : tree.all_components()) {
      auto promoted = promote_component(tree, component);
      if (!promoted.ok()) continue;  // ineligible placement
      EXPECT_EQ(promoted.value().all_components(), tree.all_components());
      EXPECT_TRUE(promoted.value().validate().ok());
      // The promoted component's minimal restart group strictly grew.
      const auto before =
          tree.group_components(*tree.lowest_cell_covering(component));
      const auto after = promoted.value().group_components(
          *promoted.value().lowest_cell_covering(component));
      EXPECT_GT(after.size(), before.size());
      ++applied;
      break;
    }
  }
  EXPECT_GE(applied, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeFuzz,
                         ::testing::Values(11, 29, 47, 83, 131, 197));

}  // namespace
}  // namespace mercury::core
