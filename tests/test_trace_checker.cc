// TraceChecker (src/obs/trace_check.h): hand-built illegal traces must be
// flagged, and golden traces from real recovered trials must pass clean —
// including after a JSONL round trip.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/mercury_trees.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "station/experiment.h"

namespace mercury::obs {
namespace {

TraceEvent event(double t, EventKind kind, std::string category,
                 std::string name, std::string track, std::uint64_t run,
                 std::uint64_t span = 0, std::vector<TraceArg> args = {}) {
  TraceEvent e;
  e.t = t;
  e.kind = kind;
  e.category = std::move(category);
  e.name = std::move(name);
  e.track = std::move(track);
  e.run = run;
  e.span = span;
  e.args = std::move(args);
  return e;
}

/// Count issues of one invariant kind.
int count(const std::vector<TraceIssue>& issues, const std::string& invariant) {
  int n = 0;
  for (const TraceIssue& issue : issues) {
    if (issue.invariant == invariant) ++n;
  }
  return n;
}

// --- Hand-built bad traces -------------------------------------------------

TEST(TraceChecker, FlagsOverlappingRestartsOfOneComponent) {
  const std::vector<TraceEvent> events = {
      event(1.0, EventKind::kBegin, "restart", "restart:ses", "pm", 1, 1,
            {{"component", "ses"}, {"epoch", "1"}}),
      // Second owner starts while span 1 is still in flight: two concurrent
      // restarts of the same component.
      event(1.5, EventKind::kBegin, "restart", "restart:ses", "pm", 1, 2,
            {{"component", "ses"}, {"epoch", "2"}}),
      event(3.0, EventKind::kEnd, "restart", "restart:ses", "pm", 1, 2),
  };
  const auto issues = check_trace(events);
  EXPECT_EQ(count(issues, "overlapping-restart"), 1) << describe(issues);
  // The same schedule on different components is legal (group restarts).
  const std::vector<TraceEvent> group = {
      event(1.0, EventKind::kBegin, "restart", "restart:ses", "pm", 1, 1,
            {{"component", "ses"}}),
      event(1.1, EventKind::kBegin, "restart", "restart:str", "pm", 1, 2,
            {{"component", "str"}}),
      event(3.0, EventKind::kEnd, "restart", "restart:ses", "pm", 1, 1),
      event(3.1, EventKind::kEnd, "restart", "restart:str", "pm", 1, 2),
  };
  EXPECT_TRUE(check_trace(group).empty()) << describe(check_trace(group));
}

TEST(TraceChecker, FlagsEpochRegression) {
  const std::vector<TraceEvent> events = {
      event(1.0, EventKind::kBegin, "restart", "restart:rtu", "pm", 1, 1,
            {{"component", "rtu"}, {"epoch", "2"}}),
      event(2.0, EventKind::kEnd, "restart", "restart:rtu", "pm", 1, 1),
      // A stale attempt runs after its successor: epoch does not advance.
      event(3.0, EventKind::kBegin, "restart", "restart:rtu", "pm", 1, 2,
            {{"component", "rtu"}, {"epoch", "2"}}),
      event(4.0, EventKind::kEnd, "restart", "restart:rtu", "pm", 1, 2),
  };
  const auto issues = check_trace(events);
  EXPECT_EQ(count(issues, "epoch-regression"), 1) << describe(issues);
}

// --- Conflicting concurrent actions (ISSUE 8) --------------------------------

TEST(TraceChecker, FlagsConcurrentAncestorDescendantActions) {
  const std::vector<TraceEvent> events = {
      event(1.0, EventKind::kBegin, "recover", "rec.restart", "rec", 1, 1,
            {{"component", "fedr"}, {"cell", "R_fedr"}, {"group", "fedr"}}),
      // The root action begins while the leaf action is still in flight and
      // its group contains fedr: an ancestor/descendant pair restarting
      // concurrently, which the DAG scheduler must never allow.
      event(1.5, EventKind::kBegin, "recover", "rec.restart", "rec", 1, 2,
            {{"component", "pbcom"},
             {"cell", "R_mercury"},
             {"group", "fedr,mbus,pbcom,rtu,ses,str"}}),
      event(3.0, EventKind::kEnd, "recover", "rec.restart", "rec", 1, 1),
      event(4.0, EventKind::kEnd, "recover", "rec.restart", "rec", 1, 2),
  };
  const auto issues = check_trace(events);
  EXPECT_EQ(count(issues, "conflicting-restart"), 1) << describe(issues);
}

TEST(TraceChecker, DisjointSiblingActionOverlapIsLegal) {
  // Two sibling cells in flight at once — exactly what DAG dispatch
  // produces — must pass clean regardless of interleaving.
  const std::vector<TraceEvent> events = {
      event(1.0, EventKind::kBegin, "recover", "rec.restart", "rec", 1, 1,
            {{"component", "rtu"}, {"cell", "R_rtu"}, {"group", "rtu"}}),
      event(1.2, EventKind::kBegin, "recover", "rec.restart", "rec", 1, 2,
            {{"component", "pbcom"},
             {"cell", "R_[fedr,pbcom]"},
             {"group", "fedr,pbcom"}}),
      event(3.0, EventKind::kEnd, "recover", "rec.restart", "rec", 1, 2),
      event(3.5, EventKind::kEnd, "recover", "rec.restart", "rec", 1, 1),
  };
  EXPECT_TRUE(check_trace(events).empty()) << describe(check_trace(events));
}

TEST(TraceChecker, ClosedActionSpanRetiresItsGroup) {
  // Sequential ancestor/descendant actions are the normal escalation shape:
  // the first span's end retires its group before the second begins. And
  // spans in different runs never conflict — trials are independent.
  const std::vector<TraceEvent> events = {
      event(1.0, EventKind::kBegin, "recover", "rec.restart", "rec", 1, 1,
            {{"component", "fedr"}, {"cell", "R_fedr"}, {"group", "fedr"}}),
      event(2.0, EventKind::kEnd, "recover", "rec.restart", "rec", 1, 1),
      event(2.5, EventKind::kBegin, "recover", "rec.restart", "rec", 1, 2,
            {{"component", "fedr"},
             {"cell", "R_[fedr,pbcom]"},
             {"group", "fedr,pbcom"}}),
      // Run 2 opens an overlapping group while run 1's span 2 is in flight:
      // legal, conflicts are per-run.
      event(3.0, EventKind::kBegin, "recover", "rec.restart", "rec", 2, 3,
            {{"component", "fedr"}, {"cell", "R_fedr"}, {"group", "fedr"}}),
      event(4.0, EventKind::kEnd, "recover", "rec.restart", "rec", 1, 2),
      event(4.5, EventKind::kEnd, "recover", "rec.restart", "rec", 2, 3),
  };
  EXPECT_TRUE(check_trace(events).empty()) << describe(check_trace(events));
}

// --- Phantom goodput (ISSUE 9) ----------------------------------------------

/// A request span against `target` over [begin, end] with the given outcome
/// and mode, as the workload driver emits it.
std::vector<TraceEvent> request_span(double begin, double end,
                                     const std::string& target,
                                     const std::string& outcome,
                                     const std::string& mode,
                                     std::uint64_t span) {
  return {
      event(begin, EventKind::kBegin, "traffic", "traffic.request", "cli.0", 1,
            span, {{"target", target}, {"session", "cli.0"}, {"mode", mode}}),
      event(end, EventKind::kEnd, "traffic", "traffic.request", "cli.0", 1,
            span, {{"outcome", outcome}, {"attempts", "1"}}),
  };
}

TEST(TraceChecker, FlagsRequestServedDuringTargetRestart) {
  // The ses restart opens at 1.0 and is still in flight when a request that
  // began at 2.0 claims to have been served at 2.2: the endpoint was down
  // for the request's whole lifetime, so the goodput is phantom.
  std::vector<TraceEvent> events = {
      event(1.0, EventKind::kBegin, "restart", "restart:ses", "pm", 1, 1,
            {{"component", "ses"}, {"epoch", "1"}}),
  };
  for (auto& e : request_span(2.0, 2.2, "ses", "served", "serial", 2)) {
    events.push_back(e);
  }
  events.push_back(
      event(5.0, EventKind::kEnd, "restart", "restart:ses", "pm", 1, 1));
  const auto issues = check_trace(events);
  EXPECT_EQ(count(issues, "phantom-goodput"), 1) << describe(issues);

  // The same shape with a lost outcome is the expected behaviour.
  std::vector<TraceEvent> lost = {
      event(1.0, EventKind::kBegin, "restart", "restart:ses", "pm", 1, 1,
            {{"component", "ses"}, {"epoch", "1"}}),
  };
  for (auto& e : request_span(2.0, 2.2, "ses", "lost", "serial", 2)) {
    lost.push_back(e);
  }
  lost.push_back(
      event(5.0, EventKind::kEnd, "restart", "restart:ses", "pm", 1, 1));
  EXPECT_TRUE(check_trace(lost).empty()) << describe(check_trace(lost));
}

TEST(TraceChecker, OnDemandServesDuringRestartLegally) {
  // In on-demand mode a request legally touches a lazy cell, promotes its
  // restart, and is answered by the revived endpoint inside the same span.
  std::vector<TraceEvent> events = {
      event(1.0, EventKind::kBegin, "restart", "restart:ses", "pm", 1, 1,
            {{"component", "ses"}, {"epoch", "1"}}),
  };
  for (auto& e : request_span(2.0, 6.5, "ses", "served", "ondemand", 2)) {
    events.push_back(e);
  }
  events.push_back(
      event(6.0, EventKind::kEnd, "restart", "restart:ses", "pm", 1, 1));
  EXPECT_TRUE(check_trace(events).empty()) << describe(check_trace(events));
}

TEST(TraceChecker, RequestStraddlingRestartStartIsLegal) {
  // A restart that opens after the request began does not retroactively
  // condemn it: a pong may already have been in flight, and a served retry
  // after the restart closed is real goodput.
  std::vector<TraceEvent> events;
  for (auto& e : request_span(1.0, 6.5, "rtu", "served", "serial", 10)) {
    events.push_back(e);
  }
  events.insert(events.begin() + 1,
                event(1.5, EventKind::kBegin, "restart", "restart:rtu", "pm", 1,
                      11, {{"component", "rtu"}, {"epoch", "1"}}));
  events.insert(events.begin() + 2,
                event(6.0, EventKind::kEnd, "restart", "restart:rtu", "pm", 1,
                      11));
  EXPECT_TRUE(check_trace(events).empty()) << describe(check_trace(events));

  // And a request served against a component whose restart already closed
  // before the request ended is likewise clean.
  std::vector<TraceEvent> after = {
      event(1.0, EventKind::kBegin, "restart", "restart:rtu", "pm", 1, 1,
            {{"component", "rtu"}, {"epoch", "1"}}),
      event(2.0, EventKind::kEnd, "restart", "restart:rtu", "pm", 1, 1),
  };
  for (auto& e : request_span(3.0, 3.2, "rtu", "served", "serial", 2)) {
    after.push_back(e);
  }
  EXPECT_TRUE(check_trace(after).empty()) << describe(check_trace(after));
}

/// A minimal complete recovered harness trial; `reported` is the recovery
/// the harness claims. With the chain spanning [10, 15] the truthful value
/// is 5 seconds.
std::vector<TraceEvent> recovered_trial(const std::string& reported) {
  return {
      event(0.0, EventKind::kInstant, "sim", "trial.start", "trial", 1),
      event(10.0, EventKind::kInstant, "fault", "fault.manifest", "board", 1, 0,
            {{"manifest", "ses"}, {"id", "1"}}),
      event(11.0, EventKind::kInstant, "detect", "fd.report", "fd", 1, 0,
            {{"component", "ses"}}),
      event(11.5, EventKind::kBegin, "recover", "rec.restart", "rec", 1, 1,
            {{"component", "ses"}, {"cell", "R_ses"}}),
      event(12.0, EventKind::kBegin, "restart", "restart:ses", "pm", 1, 2,
            {{"component", "ses"}, {"epoch", "1"}}),
      event(14.5, EventKind::kEnd, "restart", "restart:ses", "pm", 1, 2),
      event(14.5, EventKind::kInstant, "fault", "fault.cured", "board", 1, 0,
            {{"manifest", "ses"}, {"id", "1"}}),
      event(15.0, EventKind::kEnd, "recover", "rec.restart", "rec", 1, 1),
      event(15.0, EventKind::kInstant, "sim", "trial.recovered", "trial", 1, 0,
            {{"recovery", reported}}),
  };
}

TEST(TraceChecker, FlagsPhaseSumMismatch) {
  // Harness claims 3 s but the traced chain spans 5 s: the decomposition
  // no longer accounts for the measured recovery.
  const auto issues = check_trace(recovered_trial("3.000000"));
  EXPECT_GE(count(issues, "phase-sum"), 1) << describe(issues);

  const auto clean = check_trace(recovered_trial("5.000000"));
  EXPECT_TRUE(clean.empty()) << describe(clean);
}

TEST(TraceChecker, FlagsLostKill) {
  // A kill that simply evaporates: trial starts, fault manifests, nothing
  // ever resolves it.
  const std::vector<TraceEvent> lost = {
      event(0.0, EventKind::kInstant, "sim", "trial.start", "trial", 1),
      event(10.0, EventKind::kInstant, "fault", "fault.manifest", "board", 1, 0,
            {{"manifest", "rtu"}, {"id", "7"}}),
  };
  auto issues = check_trace(lost);
  EXPECT_EQ(count(issues, "lost-kill"), 1) << describe(issues);

  // Benches that deliberately drive trials into timeouts may opt out.
  CheckOptions tolerant;
  tolerant.require_resolution = false;
  EXPECT_TRUE(check_trace(lost, tolerant).empty());

  // A recovered trial whose injected fault was never individually cured is
  // also a lost kill: the harness saw readiness but the board still holds
  // the fault.
  std::vector<TraceEvent> uncured = recovered_trial("5.000000");
  uncured.erase(uncured.begin() + 6);  // drop fault.cured
  issues = check_trace(uncured);
  EXPECT_EQ(count(issues, "lost-kill"), 1) << describe(issues);
}

TEST(TraceChecker, FlagsRestartSpanOpenAfterRecovery) {
  std::vector<TraceEvent> events = recovered_trial("5.000000");
  events.erase(events.begin() + 5);  // drop the restart span's end
  const auto issues = check_trace(events);
  EXPECT_EQ(count(issues, "open-restart"), 1) << describe(issues);
}

TEST(TraceChecker, RunsWithoutTrialStartAreExemptFromHarnessInvariants) {
  // A background injector campaign (bench_table1's 2-year run): faults
  // manifest with no recovery machinery attached. Legal.
  const std::vector<TraceEvent> campaign = {
      event(100.0, EventKind::kInstant, "fault", "fault.manifest", "board", 0,
            0, {{"manifest", "fedrcom"}, {"id", "3"}}),
      event(900.0, EventKind::kInstant, "fault", "fault.manifest", "board", 0,
            0, {{"manifest", "rtu"}, {"id", "4"}}),
  };
  EXPECT_TRUE(check_trace(campaign).empty());
}

// --- Golden traces from real trials ----------------------------------------

station::TrialSpec quick_spec(const std::string& component) {
  station::TrialSpec spec;
  spec.tree = core::MercuryTree::kTreeIV;
  spec.oracle = station::OracleKind::kPerfect;
  spec.fail_component = component;
  spec.seed = 11;
  return spec;
}

TEST(TraceChecker, GoldenTracesFromRecoveredTrialsPassClean) {
  for (const std::string component : {"ses", "rtu", "fedr"}) {
    const station::TracedTrial traced = station::run_trial_traced(
        quick_spec(component));
    ASSERT_FALSE(traced.result.timed_out);
    ASSERT_FALSE(traced.events.empty());
    const auto issues = check_trace(traced.events);
    EXPECT_TRUE(issues.empty()) << component << ":\n" << describe(issues);
  }
}

TEST(TraceChecker, GoldenEscalationAndSoftTracesPassClean) {
  // Heuristic oracle: leaf-first with escalation chains (multi-action runs).
  station::TrialSpec heuristic = quick_spec("fedr");
  heuristic.oracle = station::OracleKind::kHeuristic;
  const auto chain = station::run_trial_traced(heuristic);
  auto issues = check_trace(chain.events);
  EXPECT_TRUE(issues.empty()) << describe(issues);

  // Soft recovery (§7): rec.soft actions instead of restarts.
  station::TrialSpec soft = quick_spec("ses");
  soft.enable_soft_recovery = true;
  soft.mode = station::FailureMode::kStaleAttachment;
  const auto cured = station::run_trial_traced(soft);
  issues = check_trace(cured.events);
  EXPECT_TRUE(issues.empty()) << describe(issues);
}

TEST(TraceChecker, GoldenDagParallelTracePassesClean) {
  // A real multi-fault DAG-parallel trial: disjoint cells restart
  // concurrently, and the trace — including its overlapping rec.restart
  // spans — satisfies every invariant.
  station::TrialSpec spec = quick_spec("pbcom");
  spec.dispatch = core::DispatchMode::kDag;
  spec.extra_faults.push_back({"rtu", util::Duration::millis(50.0)});
  const station::TracedTrial traced = station::run_trial_traced(spec);
  ASSERT_FALSE(traced.result.timed_out);
  EXPECT_GE(traced.result.max_concurrent_restarts, 2);
  const auto issues = check_trace(traced.events);
  EXPECT_TRUE(issues.empty()) << describe(issues);
}

TEST(TraceChecker, GoldenTraceSurvivesJsonlRoundTrip) {
  const station::TracedTrial traced =
      station::run_trial_traced(quick_spec("str"));
  std::stringstream buffer;
  write_jsonl(traced.events, buffer);
  const std::vector<TraceEvent> reread = read_jsonl(buffer);
  ASSERT_EQ(reread.size(), traced.events.size());
  const auto issues = check_trace(reread);
  EXPECT_TRUE(issues.empty()) << describe(issues);
}

TEST(TraceChecker, DescribeNamesInvariantRunAndComponent) {
  const auto issues = check_trace(recovered_trial("3.000000"));
  ASSERT_FALSE(issues.empty());
  const std::string text = describe(issues);
  EXPECT_NE(text.find("phase-sum"), std::string::npos);
  EXPECT_NE(text.find("run 1"), std::string::npos);
  EXPECT_NE(text.find("ses"), std::string::npos);
}

}  // namespace
}  // namespace mercury::obs
