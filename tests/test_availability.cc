// Unit tests: the §3.2 availability algebra and the analytic recovery model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/availability.h"
#include "core/mercury_trees.h"

namespace mercury::core {
namespace {

namespace names = component_names;

// --- §3.2 bounds -----------------------------------------------------------------

TEST(Bounds, GroupMttfIsMinOfMembers) {
  EXPECT_DOUBLE_EQ(group_mttf_upper_bound({100.0, 5.0, 50.0}), 5.0);
  EXPECT_TRUE(std::isinf(group_mttf_upper_bound({})));
}

TEST(Bounds, GroupMttrIsMaxOfMembers) {
  EXPECT_DOUBLE_EQ(group_mttr_lower_bound({3.0, 21.0, 5.0}), 21.0);
  EXPECT_DOUBLE_EQ(group_mttr_lower_bound({}), 0.0);
}

TEST(Bounds, ExpectedGroupMttrWeightsByF) {
  // §4.1: MTTR_G^II <= sum f_ci MTTR_ci. With f concentrated on the cheap
  // component the expectation collapses toward its MTTR.
  EXPECT_DOUBLE_EQ(expected_group_mttr({0.5, 0.5}, {4.0, 20.0}), 12.0);
  EXPECT_DOUBLE_EQ(expected_group_mttr({1.0, 0.0}, {4.0, 20.0}), 4.0);
  // The §4.1 inequality: expected <= max whenever f sums to 1.
  EXPECT_LE(expected_group_mttr({0.9, 0.1}, {4.0, 20.0}),
            group_mttr_lower_bound({4.0, 20.0}) + 1e-12);
}

TEST(Availability, RatioAndDowntime) {
  EXPECT_DOUBLE_EQ(availability(99.0, 1.0), 0.99);
  EXPECT_DOUBLE_EQ(availability(0.0, 0.0), 1.0);
  EXPECT_NEAR(downtime_fraction(3600.0, 36.0), 36.0 / 3636.0, 1e-12);
}

// --- Analytic model vs the paper's Table 4 ------------------------------------------

/// A paper cell reproduced analytically: (tree, failure, p_low) -> seconds.
struct Case {
  MercuryTree tree;
  const char* component;
  bool joint;
  double p_low;
  double paper_value;
};

class AnalyticVsPaper : public ::testing::TestWithParam<Case> {};

TEST_P(AnalyticVsPaper, PredictionNearPaperValue) {
  const Case c = GetParam();
  const SystemModel model =
      mercury_system_model(uses_split_fedrcom(c.tree), c.p_low);
  FailureClassModel failure;
  failure.manifest = c.component;
  failure.cure_set = c.joint ? std::vector<std::string>{names::kFedr, c.component}
                             : std::vector<std::string>{c.component};
  const double predicted =
      predicted_recovery_time(make_mercury_tree(c.tree), model, failure);
  // The analytic model must land within 10% of the paper's measurement.
  EXPECT_NEAR(predicted, c.paper_value, 0.10 * c.paper_value)
      << to_string(c.tree) << " " << c.component;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, AnalyticVsPaper,
    ::testing::Values(
        Case{MercuryTree::kTreeI, "rtu", false, 0.0, 24.75},
        Case{MercuryTree::kTreeI, "ses", false, 0.0, 24.75},
        Case{MercuryTree::kTreeI, "fedrcom", false, 0.0, 24.75},
        Case{MercuryTree::kTreeII, "mbus", false, 0.0, 5.73},
        Case{MercuryTree::kTreeII, "ses", false, 0.0, 9.50},
        Case{MercuryTree::kTreeII, "str", false, 0.0, 9.76},
        Case{MercuryTree::kTreeII, "rtu", false, 0.0, 5.59},
        Case{MercuryTree::kTreeII, "fedrcom", false, 0.0, 20.93},
        Case{MercuryTree::kTreeIII, "fedr", false, 0.0, 5.76},
        Case{MercuryTree::kTreeIII, "pbcom", false, 0.0, 21.24},
        Case{MercuryTree::kTreeIII, "ses", false, 0.0, 9.50},
        Case{MercuryTree::kTreeIV, "ses", false, 0.0, 6.25},
        Case{MercuryTree::kTreeIV, "str", false, 0.0, 6.11},
        Case{MercuryTree::kTreeIV, "pbcom", true, 0.0, 21.24},
        Case{MercuryTree::kTreeIV, "pbcom", true, 0.3, 29.19},
        Case{MercuryTree::kTreeV, "pbcom", true, 0.3, 21.63}));

TEST(AnalyticModel, TreeOrderingMatchesPaper) {
  // System-level MTTR must strictly improve down the published sequence
  // (with the faulty oracle where the paper uses one).
  const SystemModel fused = mercury_system_model(false);
  const SystemModel split = mercury_system_model(true);
  const SystemModel split_faulty = mercury_system_model(true, 0.3);

  const double tree_i = predicted_system_mttr(make_tree_i(), fused);
  const double tree_ii = predicted_system_mttr(make_tree_ii(), fused);
  const double tree_iii = predicted_system_mttr(make_tree_iii(), split);
  const double tree_iv = predicted_system_mttr(make_tree_iv(), split);
  const double tree_iv_faulty =
      predicted_system_mttr(make_tree_iv(), split_faulty);
  const double tree_v_faulty =
      predicted_system_mttr(make_tree_v(), split_faulty);

  EXPECT_GT(tree_i, tree_ii);
  EXPECT_GT(tree_ii, tree_iii);  // the split pays off (fedr fails often)
  EXPECT_GT(tree_iii, tree_iv);  // consolidation pays off
  EXPECT_GT(tree_iv_faulty, tree_v_faulty);  // promotion pays off (faulty)
  // Perfect oracle: V cannot beat IV (§4.4).
  EXPECT_NEAR(predicted_system_mttr(make_tree_v(), split), tree_iv, 1e-9);
}

TEST(AnalyticModel, GroupRestartDurationAppliesContention) {
  const SystemModel model = mercury_system_model(false);
  const double solo = group_restart_duration(model, {names::kFedrcom});
  const double full = group_restart_duration(
      model, {names::kMbus, names::kFedrcom, names::kSes, names::kStr,
              names::kRtu});
  EXPECT_NEAR(solo, 20.28, 1e-9);
  EXPECT_NEAR(full, 20.28 * (1.0 + 0.0628 * 3), 1e-6);
}

TEST(AnalyticModel, FourFoldImprovementClaim) {
  // "By employing recursive restartability we were able to improve recovery
  // time of our ground station by a factor of four." Compare tree I against
  // the final system (tree V, split components) for the non-fedrcom failure
  // classes; the cheap-restart paths are ~4x faster.
  const SystemModel fused = mercury_system_model(false);
  const SystemModel split = mercury_system_model(true);
  FailureClassModel rtu_failure{names::kRtu, {names::kRtu}, 1.0};
  const double before =
      predicted_recovery_time(make_tree_i(), fused, rtu_failure);
  const double after =
      predicted_recovery_time(make_tree_v(), split, rtu_failure);
  EXPECT_NEAR(before / after, 4.4, 0.5);
}

TEST(AnalyticModel, MercuryAvailabilityOrdering) {
  const double fused_tree_i =
      predicted_availability(make_tree_i(), mercury_system_model(false));
  const double split_tree_v =
      predicted_availability(make_tree_v(), mercury_system_model(true));
  EXPECT_GT(split_tree_v, fused_tree_i);
  EXPECT_GT(fused_tree_i, 0.9);   // sane range
  EXPECT_LT(split_tree_v, 1.0);
}

TEST(AnalyticModel, UncoveredCureSetFallsBackToRoot) {
  const SystemModel model = mercury_system_model(true);
  FailureClassModel impossible{names::kSes, {names::kSes, "ghost"}, 1.0};
  const double predicted =
      predicted_recovery_time(make_tree_iv(), model, impossible);
  // Falls back to a full-system restart cost.
  EXPECT_GT(predicted, 20.0);
}

// --- Traffic-summary bin edges (ISSUE 10) ----------------------------------
// The goodput timeline is binned with integer truncation; these pin the
// boundary cases: a request resolving exactly on a bin edge, a dip running
// to the end of the evaluation window, and degenerate (zero-traffic /
// disabled-injection) trials.

/// Served request resolving at `done_t` against route "ses".
RequestRecord served_at(double done_t) {
  RequestRecord record;
  record.sent_t = done_t - 0.01;
  record.done_t = done_t;
  record.served = true;
  record.target = "ses";
  return record;
}

/// Steady pre-injection traffic: 8 served in [0, 2) -> baseline 4 rps with
/// inject_t = 2.0 (one resolves exactly on the 0.5 s edge at t=0.5).
TrafficAccount baseline_account() {
  TrafficAccount account;
  for (double t : {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 1.875}) {
    account.record(served_at(t));
  }
  return account;
}

TEST(TrafficBinEdges, RequestOnBinBoundaryCountsTowardTheLaterBin) {
  // Full bins with inject=2.0, end=5.0, bin=0.5 are [2.5,3.0) .. [4.5,5.0).
  // Leave [2.5,3.0) empty and serve two requests per later bin, the first
  // of them at exactly t=3.0 — the edge. Truncation must put it in
  // [3.0,3.5): the dip is then exactly one empty bin deep and wide. If the
  // edge request leaked into [2.5,3.0), the dip would flatten to depth 0.5
  // and widen to two bins.
  TrafficAccount account = baseline_account();
  for (double t : {3.0, 3.25, 3.5, 3.75, 4.0, 4.25, 4.5, 4.75}) {
    account.record(served_at(t));
  }
  const TrafficSummary summary = account.summarize(2.0, 5.0);
  EXPECT_DOUBLE_EQ(summary.baseline_rps, 4.0);
  EXPECT_DOUBLE_EQ(summary.dip_depth, 1.0);      // one bin at rate 0
  EXPECT_DOUBLE_EQ(summary.dip_width_s, 0.5);    // exactly that bin
  EXPECT_DOUBLE_EQ(summary.dip_end_s, 1.0);      // [2.5,3.0) closes at 3.0
}

TEST(TrafficBinEdges, DipRunningToTraceEndClosesAtTheWindow) {
  // Healthy bins up to [4.0,4.5), then nothing: the last full bin is below
  // threshold, so the dip end lands exactly at end_t - inject_t.
  TrafficAccount account = baseline_account();
  for (double t : {2.5, 2.75, 3.0, 3.25, 3.5, 3.75, 4.0, 4.25}) {
    account.record(served_at(t));
  }
  const TrafficSummary summary = account.summarize(2.0, 5.0);
  EXPECT_DOUBLE_EQ(summary.dip_depth, 1.0);
  EXPECT_DOUBLE_EQ(summary.dip_width_s, 0.5);
  EXPECT_DOUBLE_EQ(summary.dip_end_s, 3.0);  // == end_t - inject_t
}

TEST(TrafficBinEdges, PartialBinsAtTheWindowEdgesAreIgnored) {
  // Requests in the injection-straddling bin [2.0,2.5) and the quiesce
  // bin [5.0,5.5) must not count as goodput — nor read as dips.
  TrafficAccount account = baseline_account();
  account.record(served_at(2.1));   // partial first bin
  account.record(served_at(5.25));  // past the window
  for (double t : {2.5, 2.75, 3.0, 3.25, 3.5, 3.75, 4.0, 4.25, 4.5, 4.75}) {
    account.record(served_at(t));
  }
  const TrafficSummary summary = account.summarize(2.0, 5.0);
  EXPECT_DOUBLE_EQ(summary.dip_depth, 0.0);
  EXPECT_DOUBLE_EQ(summary.dip_width_s, 0.0);
  EXPECT_DOUBLE_EQ(summary.dip_end_s, 0.0);
}

TEST(TrafficBinEdges, ZeroTrafficTrialSummarizesToZeros) {
  const TrafficAccount account;
  const TrafficSummary summary = account.summarize(2.0, 5.0);
  EXPECT_EQ(summary.issued, 0u);
  EXPECT_EQ(summary.served, 0u);
  EXPECT_EQ(summary.lost, 0u);
  EXPECT_DOUBLE_EQ(summary.baseline_rps, 0.0);
  EXPECT_DOUBLE_EQ(summary.dip_depth, 0.0);
  EXPECT_DOUBLE_EQ(summary.dip_width_s, 0.0);
  EXPECT_DOUBLE_EQ(summary.p50_ms, 0.0);
}

TEST(TrafficBinEdges, NonPositiveInjectionDisablesDipAccounting) {
  TrafficAccount account = baseline_account();
  const TrafficSummary summary = account.summarize(0.0, 5.0);
  EXPECT_EQ(summary.served, 8u);  // counts and percentiles still fill in
  EXPECT_GT(summary.p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(summary.baseline_rps, 0.0);
  EXPECT_DOUBLE_EQ(summary.dip_depth, 0.0);
  EXPECT_DOUBLE_EQ(summary.dip_width_s, 0.0);
}

}  // namespace
}  // namespace mercury::core
