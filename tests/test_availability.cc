// Unit tests: the §3.2 availability algebra and the analytic recovery model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/availability.h"
#include "core/mercury_trees.h"

namespace mercury::core {
namespace {

namespace names = component_names;

// --- §3.2 bounds -----------------------------------------------------------------

TEST(Bounds, GroupMttfIsMinOfMembers) {
  EXPECT_DOUBLE_EQ(group_mttf_upper_bound({100.0, 5.0, 50.0}), 5.0);
  EXPECT_TRUE(std::isinf(group_mttf_upper_bound({})));
}

TEST(Bounds, GroupMttrIsMaxOfMembers) {
  EXPECT_DOUBLE_EQ(group_mttr_lower_bound({3.0, 21.0, 5.0}), 21.0);
  EXPECT_DOUBLE_EQ(group_mttr_lower_bound({}), 0.0);
}

TEST(Bounds, ExpectedGroupMttrWeightsByF) {
  // §4.1: MTTR_G^II <= sum f_ci MTTR_ci. With f concentrated on the cheap
  // component the expectation collapses toward its MTTR.
  EXPECT_DOUBLE_EQ(expected_group_mttr({0.5, 0.5}, {4.0, 20.0}), 12.0);
  EXPECT_DOUBLE_EQ(expected_group_mttr({1.0, 0.0}, {4.0, 20.0}), 4.0);
  // The §4.1 inequality: expected <= max whenever f sums to 1.
  EXPECT_LE(expected_group_mttr({0.9, 0.1}, {4.0, 20.0}),
            group_mttr_lower_bound({4.0, 20.0}) + 1e-12);
}

TEST(Availability, RatioAndDowntime) {
  EXPECT_DOUBLE_EQ(availability(99.0, 1.0), 0.99);
  EXPECT_DOUBLE_EQ(availability(0.0, 0.0), 1.0);
  EXPECT_NEAR(downtime_fraction(3600.0, 36.0), 36.0 / 3636.0, 1e-12);
}

// --- Analytic model vs the paper's Table 4 ------------------------------------------

/// A paper cell reproduced analytically: (tree, failure, p_low) -> seconds.
struct Case {
  MercuryTree tree;
  const char* component;
  bool joint;
  double p_low;
  double paper_value;
};

class AnalyticVsPaper : public ::testing::TestWithParam<Case> {};

TEST_P(AnalyticVsPaper, PredictionNearPaperValue) {
  const Case c = GetParam();
  const SystemModel model =
      mercury_system_model(uses_split_fedrcom(c.tree), c.p_low);
  FailureClassModel failure;
  failure.manifest = c.component;
  failure.cure_set = c.joint ? std::vector<std::string>{names::kFedr, c.component}
                             : std::vector<std::string>{c.component};
  const double predicted =
      predicted_recovery_time(make_mercury_tree(c.tree), model, failure);
  // The analytic model must land within 10% of the paper's measurement.
  EXPECT_NEAR(predicted, c.paper_value, 0.10 * c.paper_value)
      << to_string(c.tree) << " " << c.component;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, AnalyticVsPaper,
    ::testing::Values(
        Case{MercuryTree::kTreeI, "rtu", false, 0.0, 24.75},
        Case{MercuryTree::kTreeI, "ses", false, 0.0, 24.75},
        Case{MercuryTree::kTreeI, "fedrcom", false, 0.0, 24.75},
        Case{MercuryTree::kTreeII, "mbus", false, 0.0, 5.73},
        Case{MercuryTree::kTreeII, "ses", false, 0.0, 9.50},
        Case{MercuryTree::kTreeII, "str", false, 0.0, 9.76},
        Case{MercuryTree::kTreeII, "rtu", false, 0.0, 5.59},
        Case{MercuryTree::kTreeII, "fedrcom", false, 0.0, 20.93},
        Case{MercuryTree::kTreeIII, "fedr", false, 0.0, 5.76},
        Case{MercuryTree::kTreeIII, "pbcom", false, 0.0, 21.24},
        Case{MercuryTree::kTreeIII, "ses", false, 0.0, 9.50},
        Case{MercuryTree::kTreeIV, "ses", false, 0.0, 6.25},
        Case{MercuryTree::kTreeIV, "str", false, 0.0, 6.11},
        Case{MercuryTree::kTreeIV, "pbcom", true, 0.0, 21.24},
        Case{MercuryTree::kTreeIV, "pbcom", true, 0.3, 29.19},
        Case{MercuryTree::kTreeV, "pbcom", true, 0.3, 21.63}));

TEST(AnalyticModel, TreeOrderingMatchesPaper) {
  // System-level MTTR must strictly improve down the published sequence
  // (with the faulty oracle where the paper uses one).
  const SystemModel fused = mercury_system_model(false);
  const SystemModel split = mercury_system_model(true);
  const SystemModel split_faulty = mercury_system_model(true, 0.3);

  const double tree_i = predicted_system_mttr(make_tree_i(), fused);
  const double tree_ii = predicted_system_mttr(make_tree_ii(), fused);
  const double tree_iii = predicted_system_mttr(make_tree_iii(), split);
  const double tree_iv = predicted_system_mttr(make_tree_iv(), split);
  const double tree_iv_faulty =
      predicted_system_mttr(make_tree_iv(), split_faulty);
  const double tree_v_faulty =
      predicted_system_mttr(make_tree_v(), split_faulty);

  EXPECT_GT(tree_i, tree_ii);
  EXPECT_GT(tree_ii, tree_iii);  // the split pays off (fedr fails often)
  EXPECT_GT(tree_iii, tree_iv);  // consolidation pays off
  EXPECT_GT(tree_iv_faulty, tree_v_faulty);  // promotion pays off (faulty)
  // Perfect oracle: V cannot beat IV (§4.4).
  EXPECT_NEAR(predicted_system_mttr(make_tree_v(), split), tree_iv, 1e-9);
}

TEST(AnalyticModel, GroupRestartDurationAppliesContention) {
  const SystemModel model = mercury_system_model(false);
  const double solo = group_restart_duration(model, {names::kFedrcom});
  const double full = group_restart_duration(
      model, {names::kMbus, names::kFedrcom, names::kSes, names::kStr,
              names::kRtu});
  EXPECT_NEAR(solo, 20.28, 1e-9);
  EXPECT_NEAR(full, 20.28 * (1.0 + 0.0628 * 3), 1e-6);
}

TEST(AnalyticModel, FourFoldImprovementClaim) {
  // "By employing recursive restartability we were able to improve recovery
  // time of our ground station by a factor of four." Compare tree I against
  // the final system (tree V, split components) for the non-fedrcom failure
  // classes; the cheap-restart paths are ~4x faster.
  const SystemModel fused = mercury_system_model(false);
  const SystemModel split = mercury_system_model(true);
  FailureClassModel rtu_failure{names::kRtu, {names::kRtu}, 1.0};
  const double before =
      predicted_recovery_time(make_tree_i(), fused, rtu_failure);
  const double after =
      predicted_recovery_time(make_tree_v(), split, rtu_failure);
  EXPECT_NEAR(before / after, 4.4, 0.5);
}

TEST(AnalyticModel, MercuryAvailabilityOrdering) {
  const double fused_tree_i =
      predicted_availability(make_tree_i(), mercury_system_model(false));
  const double split_tree_v =
      predicted_availability(make_tree_v(), mercury_system_model(true));
  EXPECT_GT(split_tree_v, fused_tree_i);
  EXPECT_GT(fused_tree_i, 0.9);   // sane range
  EXPECT_LT(split_tree_v, 1.0);
}

TEST(AnalyticModel, UncoveredCureSetFallsBackToRoot) {
  const SystemModel model = mercury_system_model(true);
  FailureClassModel impossible{names::kSes, {names::kSes, "ghost"}, 1.0};
  const double predicted =
      predicted_recovery_time(make_tree_iv(), model, impossible);
  // Falls back to a full-system restart cost.
  EXPECT_GT(predicted, 20.0);
}

}  // namespace
}  // namespace mercury::core
