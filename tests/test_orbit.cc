// Unit + property tests: orbital mechanics substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "orbit/doppler.h"
#include "orbit/elements.h"
#include "orbit/frames.h"
#include "orbit/ground_station.h"
#include "orbit/pass_predictor.h"
#include "orbit/propagator.h"

namespace mercury::orbit {
namespace {

using util::Duration;
using util::TimePoint;

constexpr double kPi = std::numbers::pi;

// --- Angles / elements ----------------------------------------------------------

TEST(Angles, WrapTwoPi) {
  EXPECT_NEAR(wrap_two_pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_two_pi(2.5 * kPi), 0.5 * kPi, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-0.5 * kPi), 1.5 * kPi, 1e-12);
}

TEST(Angles, WrapPi) {
  EXPECT_NEAR(wrap_pi(1.5 * kPi), -0.5 * kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(-1.5 * kPi), 0.5 * kPi, 1e-12);
}

TEST(Elements, CircularLeoProperties) {
  const auto elements = KeplerianElements::circular_leo(800.0, 60.0);
  EXPECT_DOUBLE_EQ(elements.eccentricity, 0.0);
  EXPECT_NEAR(elements.perigee_altitude_km(), 800.0, 1e-9);
  EXPECT_NEAR(elements.apogee_altitude_km(), 800.0, 1e-9);
  // An 800 km LEO period is ~101 minutes.
  EXPECT_NEAR(elements.period().to_seconds() / 60.0, 100.9, 0.5);
}

TEST(Elements, IssLikeOrbitPeriod) {
  const auto elements = KeplerianElements::circular_leo(420.0, 51.6);
  EXPECT_NEAR(elements.period().to_seconds() / 60.0, 92.8, 0.5);
}

// --- Kepler solver (property sweep) ----------------------------------------------

class KeplerSolver : public ::testing::TestWithParam<double> {};

TEST_P(KeplerSolver, SatisfiesKeplersEquation) {
  const double e = GetParam();
  for (double mean = 0.0; mean < 2.0 * kPi; mean += 0.1) {
    const double ecc_anomaly = solve_kepler(mean, e);
    const double recovered = ecc_anomaly - e * std::sin(ecc_anomaly);
    EXPECT_NEAR(wrap_two_pi(recovered), wrap_two_pi(mean), 1e-9)
        << "e=" << e << " M=" << mean;
  }
}

INSTANTIATE_TEST_SUITE_P(Eccentricities, KeplerSolver,
                         ::testing::Values(0.0, 0.001, 0.1, 0.3, 0.5, 0.7, 0.9,
                                           0.97));

TEST(KeplerSolver, TrueAnomalyMatchesEccentricAtApsides) {
  EXPECT_NEAR(true_anomaly_from_eccentric(0.0, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(true_anomaly_from_eccentric(kPi, 0.5)), kPi, 1e-9);
}

// --- Propagator -------------------------------------------------------------------

TEST(Propagator, CircularOrbitKeepsRadius) {
  const Propagator propagator(KeplerianElements::circular_leo(800.0, 45.0));
  const double expected = constants::kEarthRadiusKm + 800.0;
  for (double t = 0.0; t < 7000.0; t += 500.0) {
    EXPECT_NEAR(propagator.radius_at(TimePoint::from_seconds(t)), expected, 0.01);
  }
}

TEST(Propagator, CircularSpeedMatchesVisViva) {
  const Propagator propagator(KeplerianElements::circular_leo(800.0, 45.0));
  const double r = constants::kEarthRadiusKm + 800.0;
  const double expected = std::sqrt(constants::kMuEarth / r);
  const auto state = propagator.state_at(TimePoint::from_seconds(1234.0));
  EXPECT_NEAR(state.velocity_km_s.norm(), expected, 1e-6);
}

TEST(Propagator, PeriodReturnsToStart) {
  const auto elements = KeplerianElements::circular_leo(800.0, 60.0, 30.0, 10.0);
  const Propagator propagator(elements);
  const auto start = propagator.state_at(TimePoint::origin());
  const auto after =
      propagator.state_at(TimePoint::origin() + elements.period());
  EXPECT_NEAR((after.position_km - start.position_km).norm(), 0.0, 0.1);
}

TEST(Propagator, EccentricOrbitConservesEnergy) {
  KeplerianElements elements;
  elements.semi_major_axis_km = 8000.0;
  elements.eccentricity = 0.2;
  elements.inclination_rad = deg_to_rad(30.0);
  const Propagator propagator(elements);
  const double expected_energy =
      -constants::kMuEarth / (2.0 * elements.semi_major_axis_km);
  for (double t = 0.0; t < 8000.0; t += 400.0) {
    const auto state = propagator.state_at(TimePoint::from_seconds(t));
    const double v2 = state.velocity_km_s.dot(state.velocity_km_s);
    const double energy = v2 / 2.0 - constants::kMuEarth / state.position_km.norm();
    EXPECT_NEAR(energy, expected_energy, 1e-6) << "t=" << t;
  }
}

TEST(Propagator, EccentricOrbitConservesAngularMomentum) {
  KeplerianElements elements;
  elements.semi_major_axis_km = 9000.0;
  elements.eccentricity = 0.3;
  const Propagator propagator(elements);
  const auto h0 = propagator.state_at(TimePoint::origin());
  const double expected = h0.position_km.cross(h0.velocity_km_s).norm();
  for (double t = 500.0; t < 9000.0; t += 500.0) {
    const auto state = propagator.state_at(TimePoint::from_seconds(t));
    const double h = state.position_km.cross(state.velocity_km_s).norm();
    EXPECT_NEAR(h, expected, 1e-6);
  }
}

TEST(Propagator, ApsisRadiiMatchElements) {
  KeplerianElements elements;
  elements.semi_major_axis_km = 10000.0;
  elements.eccentricity = 0.4;
  const Propagator propagator(elements);
  // Mean anomaly 0 = perigee; pi = apogee (epoch at perigee).
  EXPECT_NEAR(propagator.radius_at(TimePoint::origin()), 6000.0, 1e-6);
  const auto half = TimePoint::origin() + elements.period() / 2.0;
  EXPECT_NEAR(propagator.radius_at(half), 14000.0, 1e-3);
}

TEST(Propagator, InclinationBoundsLatitudeExcursion) {
  const Propagator propagator(KeplerianElements::circular_leo(800.0, 30.0));
  double max_z_over_r = 0.0;
  for (double t = 0.0; t < 7000.0; t += 50.0) {
    const auto state = propagator.state_at(TimePoint::from_seconds(t));
    max_z_over_r = std::max(max_z_over_r,
                            std::abs(state.position_km.z) / state.position_km.norm());
  }
  EXPECT_NEAR(std::asin(max_z_over_r), deg_to_rad(30.0), 0.01);
}

// --- Frames -----------------------------------------------------------------------

TEST(Frames, EciEcefRoundTrip) {
  const Vec3 eci{4000.0, 3000.0, 2000.0};
  const TimePoint t = TimePoint::from_seconds(12345.0);
  const Vec3 back = ecef_to_eci(eci_to_ecef(eci, t), t);
  EXPECT_NEAR(back.x, eci.x, 1e-9);
  EXPECT_NEAR(back.y, eci.y, 1e-9);
  EXPECT_NEAR(back.z, eci.z, 1e-9);
}

TEST(Frames, RotationPreservesNormAndZ) {
  const Vec3 eci{4000.0, 3000.0, 2000.0};
  const Vec3 ecef = eci_to_ecef(eci, TimePoint::from_seconds(5000.0));
  EXPECT_NEAR(ecef.norm(), eci.norm(), 1e-9);
  EXPECT_DOUBLE_EQ(ecef.z, eci.z);
}

TEST(Frames, GeodeticEquatorAndPole) {
  const Vec3 equator = geodetic_to_ecef(Geodetic::from_degrees(0.0, 0.0, 0.0));
  EXPECT_NEAR(equator.x, constants::kEarthRadiusKm, 1e-6);
  EXPECT_NEAR(equator.y, 0.0, 1e-9);
  EXPECT_NEAR(equator.z, 0.0, 1e-9);

  const Vec3 pole = geodetic_to_ecef(Geodetic::from_degrees(90.0, 0.0, 0.0));
  EXPECT_NEAR(pole.x, 0.0, 1e-6);
  // Polar radius b = a(1-f) ~ 6356.75 km.
  EXPECT_NEAR(pole.z, 6356.7523, 1e-3);
}

TEST(Frames, AltitudeExtendsRadially) {
  const Vec3 ground = geodetic_to_ecef(Geodetic::from_degrees(45.0, 10.0, 0.0));
  const Vec3 high = geodetic_to_ecef(Geodetic::from_degrees(45.0, 10.0, 100.0));
  EXPECT_GT(high.norm(), ground.norm() + 99.0);
}

TEST(Frames, SatelliteDirectlyOverheadHasHighElevation) {
  // Observer on the equator at longitude 0 at t=0 (GMST 0 => ECI x-axis).
  const Geodetic observer = Geodetic::from_degrees(0.0, 0.0, 0.0);
  const Vec3 satellite{constants::kEarthRadiusKm + 800.0, 0.0, 0.0};
  const auto look = look_angles(observer, satellite, Vec3{}, TimePoint::origin());
  EXPECT_GT(rad_to_deg(look.elevation_rad), 89.0);
  EXPECT_NEAR(look.range_km, 800.0, 5.0);
}

TEST(Frames, SatelliteBelowHorizonHasNegativeElevation) {
  const Geodetic observer = Geodetic::from_degrees(0.0, 0.0, 0.0);
  const Vec3 antipode{-(constants::kEarthRadiusKm + 800.0), 0.0, 0.0};
  const auto look = look_angles(observer, antipode, Vec3{}, TimePoint::origin());
  EXPECT_LT(look.elevation_rad, 0.0);
}

TEST(Frames, AzimuthPointsNorthToNorthernTarget) {
  const Geodetic observer = Geodetic::from_degrees(0.0, 0.0, 0.0);
  // Target north of the observer at similar radius.
  const double r = constants::kEarthRadiusKm + 500.0;
  const Vec3 north{r * std::cos(deg_to_rad(20.0)), 0.0, r * std::sin(deg_to_rad(20.0))};
  const auto look = look_angles(observer, north, Vec3{}, TimePoint::origin());
  EXPECT_NEAR(rad_to_deg(look.azimuth_rad), 0.0, 1.0);
}

TEST(Frames, RangeRateSignConvention) {
  const Geodetic observer = Geodetic::from_degrees(0.0, 0.0, 0.0);
  const double r = constants::kEarthRadiusKm + 800.0;
  const Vec3 overhead{r, 0.0, 0.0};
  // Receding radially at 1 km/s (plus Earth-rotation correction, small).
  const auto receding =
      look_angles(observer, overhead, Vec3{1.0, 0.0, 0.0}, TimePoint::origin());
  EXPECT_GT(receding.range_rate_km_s, 0.5);
  const auto approaching =
      look_angles(observer, overhead, Vec3{-1.0, 0.0, 0.0}, TimePoint::origin());
  EXPECT_LT(approaching.range_rate_km_s, -0.5);
}

// --- Pass prediction ---------------------------------------------------------------

TEST(PassPrediction, FindsPassesOverADay) {
  const GroundStation station = GroundStation::stanford();
  const Propagator satellite(KeplerianElements::circular_leo(800.0, 60.0));
  const auto passes = predict_passes(station, satellite, TimePoint::origin(),
                                     TimePoint::from_seconds(86400.0));
  // An 800 km 60-degree orbit yields a handful of Stanford passes per day.
  EXPECT_GE(passes.size(), 2u);
  EXPECT_LE(passes.size(), 8u);
}

TEST(PassPrediction, PassesAreOrderedAndSane) {
  const GroundStation station = GroundStation::stanford();
  const Propagator satellite(KeplerianElements::circular_leo(800.0, 60.0));
  const auto passes = predict_passes(station, satellite, TimePoint::origin(),
                                     TimePoint::from_seconds(86400.0));
  TimePoint prev = TimePoint::origin();
  for (const auto& pass : passes) {
    EXPECT_LT(pass.aos, pass.los);
    EXPECT_GE(pass.aos, prev);
    prev = pass.los;
    // LEO passes last minutes, not hours.
    EXPECT_GT(pass.duration().to_seconds(), 30.0);
    EXPECT_LT(pass.duration().to_seconds(), 1200.0);
    // Peak elevation lies within the pass and above the mask.
    EXPECT_GE(pass.max_elevation_time, pass.aos);
    EXPECT_LE(pass.max_elevation_time, pass.los);
    EXPECT_GE(pass.max_elevation_rad, station.min_elevation_rad());
  }
}

TEST(PassPrediction, BoundaryElevationsSitOnTheMask) {
  const GroundStation station = GroundStation::stanford();
  const Propagator satellite(KeplerianElements::circular_leo(800.0, 60.0));
  const auto passes = predict_passes(station, satellite, TimePoint::origin(),
                                     TimePoint::from_seconds(86400.0));
  ASSERT_FALSE(passes.empty());
  for (const auto& pass : passes) {
    const double aos_el = station.look_at(satellite, pass.aos).elevation_rad;
    const double los_el = station.look_at(satellite, pass.los).elevation_rad;
    EXPECT_NEAR(rad_to_deg(aos_el), 10.0, 0.1);
    EXPECT_NEAR(rad_to_deg(los_el), 10.0, 0.1);
  }
}

TEST(PassPrediction, EquatorialOrbitNeverSeenFromHighLatitude) {
  const GroundStation station("north", Geodetic::from_degrees(70.0, 0.0, 0.0));
  const Propagator satellite(KeplerianElements::circular_leo(500.0, 0.0));
  const auto passes = predict_passes(station, satellite, TimePoint::origin(),
                                     TimePoint::from_seconds(86400.0));
  EXPECT_TRUE(passes.empty());
}

TEST(PassPrediction, VisibleExactlyInsidePasses) {
  const GroundStation station = GroundStation::stanford();
  const Propagator satellite(KeplerianElements::circular_leo(800.0, 60.0));
  const auto passes = predict_passes(station, satellite, TimePoint::origin(),
                                     TimePoint::from_seconds(43200.0));
  ASSERT_FALSE(passes.empty());
  const auto& pass = passes.front();
  EXPECT_TRUE(station.visible(satellite, pass.max_elevation_time));
  EXPECT_FALSE(station.visible(satellite, pass.aos - Duration::seconds(60.0)));
  EXPECT_FALSE(station.visible(satellite, pass.los + Duration::seconds(60.0)));
}

// --- Doppler ---------------------------------------------------------------------

TEST(Doppler, ApproachRaisesFrequency) {
  const double nominal = 437.1e6;
  EXPECT_GT(doppler_shifted_hz(nominal, -7.0), nominal);
  EXPECT_LT(doppler_shifted_hz(nominal, 7.0), nominal);
  EXPECT_DOUBLE_EQ(doppler_shifted_hz(nominal, 0.0), nominal);
}

TEST(Doppler, LeoMagnitudeIsKilohertz) {
  // 7 km/s at 437 MHz: ~10 kHz shift.
  const double offset = doppler_offset_hz(437.1e6, -7.0);
  EXPECT_NEAR(offset, 10.2e3, 0.3e3);
}

TEST(Doppler, UplinkPrecompensationInverts) {
  const double nominal = 437.1e6;
  for (double rate : {-7.0, -1.0, 0.0, 3.5, 7.0}) {
    const double tx = uplink_precompensated_hz(nominal, rate);
    EXPECT_NEAR(doppler_shifted_hz(tx, rate), nominal, 1e-3) << rate;
  }
}

}  // namespace
}  // namespace mercury::orbit
