// Integration tests: the experiment harness, including a parameterized
// sweep asserting the paper's Table 2 / Table 4 numbers within tolerance.
#include <gtest/gtest.h>

#include "core/mercury_trees.h"
#include "core/oracle.h"
#include "station/experiment.h"

namespace mercury::station {
namespace {

namespace names = core::component_names;
using core::MercuryTree;

TEST(Experiment, TrialIsDeterministicInSeed) {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.fail_component = names::kSes;
  spec.seed = 12345;
  const TrialResult a = run_trial(spec);
  const TrialResult b = run_trial(spec);
  EXPECT_EQ(a.recovery.to_seconds(), b.recovery.to_seconds());
  EXPECT_EQ(a.restarts, b.restarts);

  spec.seed = 54321;
  const TrialResult c = run_trial(spec);
  EXPECT_NE(a.recovery.to_seconds(), c.recovery.to_seconds());
}

TEST(Experiment, TrialsNeverTimeOutOrGoHard) {
  for (MercuryTree tree : core::published_trees()) {
    TrialSpec spec;
    spec.tree = tree;
    spec.fail_component = names::kSes;
    spec.seed = 77;
    const TrialResult result = run_trial(spec);
    EXPECT_FALSE(result.timed_out) << core::to_string(tree);
    EXPECT_FALSE(result.hard_failure) << core::to_string(tree);
  }
}

TEST(Experiment, RunTrialsVariesSeeds) {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeII;
  spec.fail_component = names::kRtu;
  spec.seed = 1;
  const auto stats = run_trials(spec, 20);
  EXPECT_EQ(stats.count(), 20u);
  // Detection phase is uniform: spread of ~1 s across trials.
  EXPECT_GT(stats.max() - stats.min(), 0.3);
  // Small coefficient of variation, as §3.2 assumes.
  EXPECT_LT(stats.cv(), 0.1);
}

TEST(Experiment, OracleOverridePersistsAcrossTrials) {
  std::map<std::string, double> costs = {
      {names::kMbus, 5.35}, {names::kSes, 4.10},  {names::kStr, 4.16},
      {names::kRtu, 4.94},  {names::kFedr, 5.11}, {names::kPbcom, 20.49}};
  // Explore while training (the epsilon-greedy visits the joint cell so its
  // cure rate gets data), then anneal to pure exploitation for the check.
  core::LearningOracle learner(util::Rng(5), costs, /*explore=*/0.4);

  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.mode = FailureMode::kJointFedrPbcom;
  spec.fail_component = names::kPbcom;
  spec.oracle_override = &learner;
  for (int i = 0; i < 40; ++i) {
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    run_trial(spec);
  }

  // The arms table persisted across trials: the joint cell's cure estimate
  // has real data behind it by now.
  const core::RestartTree tree = core::make_mercury_tree(MercuryTree::kTreeIV);
  const core::NodeId joint = tree.parent(*tree.find_component(names::kPbcom));
  EXPECT_GT(learner.cure_estimate(names::kPbcom, joint), 0.7);

  // A converged, non-exploring learner recovers like the perfect oracle:
  // one action, straight at the joint cell, ~21 s.
  learner.set_explore_probability(0.0);
  spec.seed = 500;
  const TrialResult late = run_trial(spec);
  EXPECT_EQ(late.escalations, 0);
  EXPECT_EQ(late.restarts, 1);
  EXPECT_LT(late.recovery.to_seconds(), 23.0);
}

// --- Parameterized Table 2 / Table 4 sweep ---------------------------------------
//
// Every cell of the paper's tables as a separate test, asserting the
// measured mean over 30 trials lies within a band around the published
// value. Bands are +-12% — generous enough for sampling noise at n=30,
// tight enough to catch any regression in the recovery path.

struct Cell {
  MercuryTree tree;
  OracleKind oracle;
  const char* component;
  FailureMode mode;
  double paper;

  friend std::ostream& operator<<(std::ostream& os, const Cell& cell) {
    return os << "tree" << core::to_string(cell.tree) << "_"
              << to_string(cell.oracle) << "_" << cell.component;
  }
};

class Table4Sweep : public ::testing::TestWithParam<Cell> {};

TEST_P(Table4Sweep, MeanRecoveryNearPaper) {
  const Cell cell = GetParam();
  TrialSpec spec;
  spec.tree = cell.tree;
  spec.oracle = cell.oracle;
  spec.faulty_p_low = 0.3;
  spec.fail_component = cell.component;
  spec.mode = cell.mode;
  spec.seed = 9000;
  const double mean = run_trials(spec, 30).mean();
  EXPECT_NEAR(mean, cell.paper, 0.12 * cell.paper);
}

constexpr auto kCrash = FailureMode::kCrash;
constexpr auto kJoint = FailureMode::kJointFedrPbcom;

INSTANTIATE_TEST_SUITE_P(
    PaperCells, Table4Sweep,
    ::testing::Values(
        // Table 2 / Table 4 row I.
        Cell{MercuryTree::kTreeI, OracleKind::kPerfect, "mbus", kCrash, 24.75},
        Cell{MercuryTree::kTreeI, OracleKind::kPerfect, "ses", kCrash, 24.75},
        Cell{MercuryTree::kTreeI, OracleKind::kPerfect, "rtu", kCrash, 24.75},
        Cell{MercuryTree::kTreeI, OracleKind::kPerfect, "fedrcom", kCrash, 24.75},
        // Row II.
        Cell{MercuryTree::kTreeII, OracleKind::kPerfect, "mbus", kCrash, 5.73},
        Cell{MercuryTree::kTreeII, OracleKind::kPerfect, "ses", kCrash, 9.50},
        Cell{MercuryTree::kTreeII, OracleKind::kPerfect, "str", kCrash, 9.76},
        Cell{MercuryTree::kTreeII, OracleKind::kPerfect, "rtu", kCrash, 5.59},
        Cell{MercuryTree::kTreeII, OracleKind::kPerfect, "fedrcom", kCrash, 20.93},
        // Row III.
        Cell{MercuryTree::kTreeIII, OracleKind::kPerfect, "fedr", kCrash, 5.76},
        Cell{MercuryTree::kTreeIII, OracleKind::kPerfect, "pbcom", kCrash, 21.24},
        Cell{MercuryTree::kTreeIII, OracleKind::kPerfect, "ses", kCrash, 9.50},
        // Row IV perfect.
        Cell{MercuryTree::kTreeIV, OracleKind::kPerfect, "ses", kCrash, 6.25},
        Cell{MercuryTree::kTreeIV, OracleKind::kPerfect, "str", kCrash, 6.11},
        Cell{MercuryTree::kTreeIV, OracleKind::kPerfect, "pbcom", kJoint, 21.24},
        // Row IV faulty / row V faulty (§4.4).
        Cell{MercuryTree::kTreeIV, OracleKind::kFaultyPerfect, "pbcom", kJoint,
             29.19},
        Cell{MercuryTree::kTreeV, OracleKind::kFaultyPerfect, "pbcom", kJoint,
             21.63}));

TEST(Experiment, TreeVNeverWorseThanTreeIVUnderPerfectOracle) {
  // §4.4: "there is nothing that a perfect oracle could do in tree V but
  // not in tree IV" — and vice versa for the failure classes we model, so
  // their perfect-oracle MTTRs must agree.
  for (const char* component : {"ses", "rtu", "fedr"}) {
    TrialSpec spec;
    spec.oracle = OracleKind::kPerfect;
    spec.fail_component = component;
    spec.seed = 31;
    spec.tree = MercuryTree::kTreeIV;
    const double iv = run_trials(spec, 20).mean();
    spec.tree = MercuryTree::kTreeV;
    const double v = run_trials(spec, 20).mean();
    EXPECT_NEAR(iv, v, 0.6) << component;
  }
}

TEST(Experiment, FaultyOracleNeverBeatsPerfect) {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.mode = FailureMode::kJointFedrPbcom;
  spec.fail_component = names::kPbcom;
  spec.seed = 41;
  spec.oracle = OracleKind::kPerfect;
  const double perfect = run_trials(spec, 30).mean();
  spec.oracle = OracleKind::kFaultyPerfect;
  const double faulty = run_trials(spec, 30).mean();
  EXPECT_GT(faulty, perfect);
}

TEST(Experiment, DetectionTimeIsPartOfMttr) {
  // §3.2: "downtime starts when the failure occurs, not when it is
  // detected." Recovery must exceed the bare restart duration.
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeII;
  spec.fail_component = names::kRtu;
  spec.seed = 51;
  const auto stats = run_trials(spec, 30);
  EXPECT_GT(stats.mean(), spec.cal.rtu.startup_mean.to_seconds() + 0.2);
}

}  // namespace
}  // namespace mercury::station
