// SeedStream (src/exp/seed_stream.h): the parallel runner's per-trial seed
// derivation. Distinctness is exact by construction (odd gamma => injective
// pre-mix, SplitMix64 finalizer bijective); independence of the derived Rng
// streams is checked empirically via cross-correlation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "exp/seed_stream.h"
#include "util/rng.h"

namespace mercury::exp {
namespace {

TEST(SeedStream, DependsOnlyOnMasterAndIndex) {
  const SeedStream a(12345);
  const SeedStream b(12345);
  for (std::uint64_t i : {0ull, 1ull, 77ull, 1'000'000ull}) {
    EXPECT_EQ(a.trial_seed(i), b.trial_seed(i));
  }
  EXPECT_NE(SeedStream(1).trial_seed(0), SeedStream(2).trial_seed(0));
  // Master 0 is a legitimate master seed, not a degenerate stream.
  EXPECT_NE(SeedStream(0).trial_seed(0), 0u);
  EXPECT_NE(SeedStream(0).trial_seed(0), SeedStream(0).trial_seed(1));
}

TEST(SeedStream, TenThousandTrialSeedsPairwiseDistinct) {
  for (const std::uint64_t master : {0ull, 42ull, 0xdeadbeefull}) {
    const SeedStream stream(master);
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10'000; ++i) {
      seen.insert(stream.trial_seed(i));
    }
    EXPECT_EQ(seen.size(), 10'000u) << "master " << master;
  }
}

TEST(SeedStream, MixerAvalanchesSingleBitFlips) {
  // Neighbouring inputs must not produce neighbouring outputs: over a batch
  // of single-increment input pairs, outputs differ in roughly half their
  // bits on average.
  double total_flips = 0.0;
  constexpr int kPairs = 1000;
  for (int i = 0; i < kPairs; ++i) {
    const std::uint64_t a = splitmix64_mix(static_cast<std::uint64_t>(i));
    const std::uint64_t b = splitmix64_mix(static_cast<std::uint64_t>(i) + 1);
    total_flips += static_cast<double>(__builtin_popcountll(a ^ b));
  }
  const double mean_flips = total_flips / kPairs;
  EXPECT_GT(mean_flips, 28.0);
  EXPECT_LT(mean_flips, 36.0);
}

/// Pearson correlation of paired uniform draws from two seeded streams.
double stream_correlation(std::uint64_t seed_a, std::uint64_t seed_b, int n) {
  util::Rng a(seed_a);
  util::Rng b(seed_b);
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_yy = 0.0, sum_xy = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform(0.0, 1.0);
    const double y = b.uniform(0.0, 1.0);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_yy += y * y;
    sum_xy += x * y;
  }
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double var_x = sum_xx / n - (sum_x / n) * (sum_x / n);
  const double var_y = sum_yy / n - (sum_y / n) * (sum_y / n);
  return cov / std::sqrt(var_x * var_y);
}

TEST(SeedStream, DerivedStreamsStatisticallyIndependent) {
  // The trials most likely to share machine state run under adjacent and
  // far-apart indices; none of those pairings may produce correlated draws.
  // |r| over 10k iid pairs is ~N(0, 1/sqrt(10000)); 0.05 is a 5-sigma gate.
  const SeedStream stream(2026);
  const std::pair<std::uint64_t, std::uint64_t> pairs[] = {
      {0, 1}, {1, 2}, {0, 9'999}, {4'999, 5'000}, {9'998, 9'999}};
  for (const auto& [i, j] : pairs) {
    const double r = stream_correlation(stream.trial_seed(i),
                                        stream.trial_seed(j), 10'000);
    EXPECT_LT(std::abs(r), 0.05) << "indices " << i << "," << j;
  }
  // Same index under neighbouring masters (two sweeps side by side).
  const double r = stream_correlation(SeedStream(7).trial_seed(3),
                                      SeedStream(8).trial_seed(3), 10'000);
  EXPECT_LT(std::abs(r), 0.05);
}

}  // namespace
}  // namespace mercury::exp
