// Unit tests: the command-language message schema.
#include <gtest/gtest.h>

#include <string>

#include "msg/message.h"
#include "xml/element.h"
#include "xml/writer.h"

namespace mercury::msg {
namespace {

TEST(Message, KindStringsRoundTrip) {
  for (Kind kind : {Kind::kPing, Kind::kPong, Kind::kCommand, Kind::kAck,
                    Kind::kNack, Kind::kTelemetry, Kind::kEvent}) {
    auto parsed = kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(kind_from_string("bogus").ok());
}

TEST(Message, EncodeDecodeRoundTrip) {
  Message m = make_command("rtu", "fedr", 42, "tune");
  m.body.set_attr("freq_hz", 437.1e6);
  m.body.add_child(xml::Element("note")).set_text("doppler corrected");

  auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_EQ(decoded.value(), m);
}

TEST(Message, RoundTripAllKinds) {
  for (Kind kind : {Kind::kPing, Kind::kPong, Kind::kCommand, Kind::kAck,
                    Kind::kNack, Kind::kTelemetry, Kind::kEvent}) {
    Message m;
    m.kind = kind;
    m.from = "a";
    m.to = "b";
    m.seq = 7;
    m.verb = kind == Kind::kCommand ? "track" : "";
    if (kind == Kind::kAck) m.in_reply_to = 6;
    auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message();
    EXPECT_EQ(decoded.value(), m) << to_string(kind);
  }
}

TEST(Message, PingPongPairing) {
  const Message ping = make_ping("fd", "ses", 99);
  EXPECT_EQ(ping.kind, Kind::kPing);
  EXPECT_EQ(ping.to, "ses");

  const Message pong = make_pong(ping, "ses");
  EXPECT_EQ(pong.kind, Kind::kPong);
  EXPECT_EQ(pong.to, "fd");
  EXPECT_EQ(pong.seq, ping.seq);
  ASSERT_TRUE(pong.in_reply_to.has_value());
  EXPECT_EQ(*pong.in_reply_to, ping.seq);
}

TEST(Message, AckNackCarryContext) {
  const Message command = make_command("str", "ses", 5, "sync");
  const Message ack = make_ack(command, "ses");
  EXPECT_EQ(ack.kind, Kind::kAck);
  EXPECT_EQ(ack.to, "str");
  EXPECT_EQ(ack.verb, "sync");
  EXPECT_EQ(*ack.in_reply_to, 5u);

  const Message nack = make_nack(command, "ses", "busy");
  EXPECT_EQ(nack.kind, Kind::kNack);
  EXPECT_EQ(nack.body.attr_or("reason", ""), "busy");
}

TEST(Message, EventBroadcastsByDefault) {
  const Message event = make_event("ses", 3, "ephemeris");
  EXPECT_EQ(event.to, "*");
  EXPECT_EQ(event.verb, "ephemeris");
}

TEST(Message, DecodeRejectsMissingFields) {
  EXPECT_FALSE(decode("<msg/>").ok());
  EXPECT_FALSE(decode(R"(<msg type="ping" to="b" seq="1"/>)").ok());   // no from
  EXPECT_FALSE(decode(R"(<msg type="ping" from="a" seq="1"/>)").ok()); // no to
  EXPECT_FALSE(decode(R"(<msg type="ping" from="a" to="b"/>)").ok());  // no seq
  EXPECT_FALSE(decode(R"(<msg type="nope" from="a" to="b" seq="1"/>)").ok());
  EXPECT_FALSE(
      decode(R"(<msg type="ping" from="a" to="b" seq="-3"/>)").ok());
  EXPECT_FALSE(decode(R"(<notmsg type="ping" from="a" to="b" seq="1"/>)").ok());
  EXPECT_FALSE(decode("not xml at all").ok());
}

TEST(Message, EncodeMatchesTheEquivalentElementTreeByteForByte) {
  // encode() serializes straight into the wire string (ISSUE 10); its bytes
  // must stay identical to building the <msg> element tree and writing it —
  // attributes in sorted map order (from, reply-to, seq, to, type, verb),
  // same escaping, body as the only child. Covers the optional fields both
  // present and absent, and values that need attribute escaping.
  Message m = make_command("r&tu", "fe\"dr", 42, "tu<ne");
  m.in_reply_to = 41;
  m.body.set_attr("freq_hz", 437.1e6);
  m.body.add_child(xml::Element("note")).set_text("doppler <&> corrected");

  const auto tree_bytes = [](const Message& message) {
    xml::Element root("msg");
    root.set_attr("from", message.from);
    if (message.in_reply_to) {
      root.set_attr("reply-to", static_cast<long long>(*message.in_reply_to));
    }
    root.set_attr("seq", static_cast<long long>(message.seq));
    root.set_attr("to", message.to);
    root.set_attr("type", std::string{to_string(message.kind)});
    if (!message.verb.empty()) root.set_attr("verb", message.verb);
    root.add_child(message.body);
    return xml::write(root);
  };
  EXPECT_EQ(encode(m), tree_bytes(m));

  Message bare = make_ping("fd", "ses", 7);  // no verb, no reply-to
  EXPECT_EQ(encode(bare), tree_bytes(bare));
}

TEST(Message, DecodeToleratesMissingBody) {
  auto decoded = decode(R"(<msg type="ping" from="a" to="b" seq="1"/>)");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().body.name(), "body");
}

}  // namespace
}  // namespace mercury::msg
