// Unit tests: the failure detector in isolation, against scripted endpoints
// (no station) — ping scheduling, timeout handling, mbus verification,
// masking, cooldowns, and FD's own lifecycle.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bus/dedicated_link.h"
#include "bus/message_bus.h"
#include "core/failure_detector.h"
#include "sim/simulator.h"

namespace mercury::core {
namespace {

using util::Duration;

/// A scripted component on the bus: answers pings while `alive`.
class FakeEndpoint {
 public:
  FakeEndpoint(bus::MessageBus& bus, std::string name) : bus_(bus), name_(std::move(name)) {
    attach();
  }
  void attach() {
    bus_.attach(name_, [this](const msg::Message& m) {
      ++received_;
      if (alive && m.kind == msg::Kind::kPing) {
        bus_.send(msg::make_pong(m, name_));
      }
    });
  }
  bool alive = true;
  int received_ = 0;

 private:
  bus::MessageBus& bus_;
  std::string name_;
};

class FdTest : public ::testing::Test {
 protected:
  FdTest() : sim_(9), bus_(sim_, bus::BusConfig{}), link_(sim_, "fd", "rec") {
    // The REC side of the link records failure reports.
    link_.bind("rec", [this](const msg::Message& m) {
      if (m.kind == msg::Kind::kCommand && m.verb == "report-failure") {
        reports_.push_back(m.body.attr_or("component", "?"));
      }
    });
  }

  void build_fd(std::vector<std::string> targets) {
    for (const auto& target : targets) {
      endpoints_.emplace(target, std::make_unique<FakeEndpoint>(bus_, target));
    }
    fd_ = std::make_unique<FailureDetector>(sim_, bus_, link_, targets,
                                            FdConfig{});
    fd_->start();
  }

  void mask(const std::string& component) { send_mask_command("mask", component); }
  void unmask(const std::string& component) {
    send_mask_command("unmask", component);
  }
  void send_mask_command(const std::string& verb, const std::string& component) {
    msg::Message command = msg::make_command("rec", "fd", 1, verb);
    command.body.set_attr("components", component);
    link_.send(command);
    sim_.run_for(Duration::millis(5.0));
  }

  sim::Simulator sim_;
  bus::MessageBus bus_;
  bus::DedicatedLink link_;
  std::map<std::string, std::unique_ptr<FakeEndpoint>> endpoints_;
  std::unique_ptr<FailureDetector> fd_;
  std::vector<std::string> reports_;
};

TEST_F(FdTest, HealthyTargetsNeverReported) {
  build_fd({"mbus", "a", "b"});
  sim_.run_for(Duration::minutes(2.0));
  EXPECT_TRUE(reports_.empty());
  EXPECT_GT(fd_->pings_sent(), 300u);
  // The very last ping's pong may still be in flight at the horizon.
  EXPECT_GE(fd_->pongs_received() + 1, fd_->pings_sent());
}

TEST_F(FdTest, PingLoopsAreStaggered) {
  build_fd({"mbus", "a", "b", "c"});
  // After one period every target has been pinged exactly once, and the
  // pings were not simultaneous: receive counters fill in gradually.
  sim_.run_for(Duration::millis(600.0));
  int pinged = 0;
  for (auto& [name, endpoint] : endpoints_) pinged += endpoint->received_ > 0;
  EXPECT_GT(pinged, 0);
  EXPECT_LT(pinged, 4);  // not all yet: staggered phases
  sim_.run_for(Duration::millis(500.0));
  for (auto& [name, endpoint] : endpoints_) {
    EXPECT_EQ(endpoint->received_, 1) << name;
  }
}

TEST_F(FdTest, DeadTargetReportedWithinPeriodPlusTimeout) {
  build_fd({"mbus", "a"});
  sim_.run_for(Duration::seconds(2.0));
  endpoints_["a"]->alive = false;
  sim_.run_for(Duration::seconds(2.0));
  // Detection within period (1 s) + timeout (0.15 s); the cooldown allows
  // one re-report of the still-dead target inside the 2 s horizon.
  ASSERT_GE(reports_.size(), 1u);
  ASSERT_LE(reports_.size(), 2u);
  for (const auto& component : reports_) EXPECT_EQ(component, "a");
}

TEST_F(FdTest, DeadMbusReportedNotTheInnocents) {
  build_fd({"mbus", "a", "b"});
  sim_.run_for(Duration::seconds(2.0));
  bus_.crash();  // total silence for everyone
  sim_.run_for(Duration::seconds(3.0));
  ASSERT_FALSE(reports_.empty());
  for (const auto& report : reports_) EXPECT_EQ(report, "mbus");
}

TEST_F(FdTest, ReportCooldownLimitsRepeatRate) {
  build_fd({"mbus", "a"});
  endpoints_["a"]->alive = false;
  sim_.run_for(Duration::seconds(5.0));
  // Unmasked and persistently dead: ~1 report per ping period, not more.
  EXPECT_GE(reports_.size(), 3u);
  EXPECT_LE(reports_.size(), 6u);
}

TEST_F(FdTest, MaskSuppressesReportsUntilUnmask) {
  build_fd({"mbus", "a"});
  mask("a");
  EXPECT_TRUE(fd_->is_masked("a"));
  endpoints_["a"]->alive = false;
  sim_.run_for(Duration::seconds(3.0));
  EXPECT_TRUE(reports_.empty());

  unmask("a");
  sim_.run_for(Duration::seconds(2.0));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_[0], "a");
}

TEST_F(FdTest, MaskingMbusPausesAllProbing) {
  build_fd({"mbus", "a"});
  mask("mbus");
  const auto pings_before = fd_->pings_sent();
  endpoints_["a"]->alive = false;
  sim_.run_for(Duration::seconds(3.0));
  EXPECT_EQ(fd_->pings_sent(), pings_before);  // nothing to probe while bus down
  EXPECT_TRUE(reports_.empty());
}

TEST_F(FdTest, CrashedFdDetectsNothing) {
  build_fd({"mbus", "a"});
  fd_->crash();
  endpoints_["a"]->alive = false;
  sim_.run_for(Duration::seconds(3.0));
  EXPECT_TRUE(reports_.empty());

  fd_->restart_complete();
  sim_.run_for(Duration::seconds(2.0));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_[0], "a");
}

TEST_F(FdTest, AnswersRecLivenessPings) {
  build_fd({"mbus"});
  bool pong = false;
  link_.bind("rec", [&](const msg::Message& m) {
    if (m.kind == msg::Kind::kPong && m.from == "fd") pong = true;
  });
  link_.send(msg::make_ping("rec", "fd", 7));
  sim_.run_for(Duration::millis(10.0));
  EXPECT_TRUE(pong);

  fd_->crash();
  pong = false;
  link_.send(msg::make_ping("rec", "fd", 8));
  sim_.run_for(Duration::millis(10.0));
  EXPECT_FALSE(pong);  // fail-silent
}

TEST_F(FdTest, MonitorsRecAndTriggersRestart) {
  build_fd({"mbus"});
  int rec_restarts = 0;
  fd_->set_rec_restarter([&] { ++rec_restarts; });
  fd_->monitor_rec();
  // The REC binding above never answers pings (it only records reports), so
  // FD must decide REC is dead.
  sim_.run_for(Duration::seconds(3.0));
  EXPECT_EQ(rec_restarts, 1);  // grace period prevents a storm
  sim_.run_for(Duration::seconds(10.0));
  EXPECT_LE(rec_restarts, 3);
}

class LossyEndpoint {
 public:
  LossyEndpoint(bus::MessageBus& bus, std::string name) : bus_(bus), name_(std::move(name)) {
    bus_.attach(name_, [this](const msg::Message& m) {
      if (m.kind != msg::Kind::kPing) return;
      ++pings_;
      // Drop exactly one reply (the drop_seq-th ping seen).
      if (pings_ == drop_nth) return;
      bus_.send(msg::make_pong(m, name_));
    });
  }
  int drop_nth = -1;
  int pings_ = 0;

 private:
  bus::MessageBus& bus_;
  std::string name_;
};

TEST_F(FdTest, SingleMissThresholdReportsOnOneLostReply) {
  FdConfig config;
  config.misses_before_report = 1;
  LossyEndpoint mbus_endpoint(bus_, "mbus");
  LossyEndpoint flaky(bus_, "a");
  flaky.drop_nth = 3;
  fd_ = std::make_unique<FailureDetector>(
      sim_, bus_, link_, std::vector<std::string>{"mbus", "a"}, config);
  fd_->start();
  sim_.run_for(Duration::seconds(6.0));
  // One dropped pong => one (spurious) report under the paper's k=1.
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_EQ(reports_[0], "a");
}

TEST_F(FdTest, TwoMissThresholdToleratesOneLostReply) {
  FdConfig config;
  config.misses_before_report = 2;
  LossyEndpoint mbus_endpoint(bus_, "mbus");
  LossyEndpoint flaky(bus_, "a");
  flaky.drop_nth = 3;
  fd_ = std::make_unique<FailureDetector>(
      sim_, bus_, link_, std::vector<std::string>{"mbus", "a"}, config);
  fd_->start();
  sim_.run_for(Duration::seconds(6.0));
  EXPECT_TRUE(reports_.empty());
}

TEST_F(FdTest, TwoMissThresholdStillDetectsRealDeathOnePeriodLater) {
  FdConfig config;
  config.misses_before_report = 2;
  endpoints_.emplace("mbus", std::make_unique<FakeEndpoint>(bus_, "mbus"));
  endpoints_.emplace("a", std::make_unique<FakeEndpoint>(bus_, "a"));
  fd_ = std::make_unique<FailureDetector>(
      sim_, bus_, link_, std::vector<std::string>{"mbus", "a"}, config);
  fd_->start();
  sim_.run_for(Duration::seconds(2.0));
  endpoints_["a"]->alive = false;
  const auto killed = sim_.now();
  sim_.run_for(Duration::seconds(4.0));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_[0], "a");
  (void)killed;
}

TEST_F(FdTest, ReattachSurvivesBusRestart) {
  build_fd({"mbus", "a"});
  // Pause at a moment with no ping in flight (pings go out on the half and
  // full second; pongs return within ~10 ms) so the instantaneous bus
  // bounce below loses no messages.
  sim_.run_for(Duration::seconds(1.2));
  bus_.crash();
  bus_.restart();
  for (auto& [name, endpoint] : endpoints_) endpoint->attach();
  fd_->reattach();
  const auto pongs_before = fd_->pongs_received();
  sim_.run_for(Duration::seconds(2.0));
  EXPECT_GT(fd_->pongs_received(), pongs_before);
  EXPECT_TRUE(reports_.empty());
}

}  // namespace
}  // namespace mercury::core
