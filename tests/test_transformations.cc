// Unit + property tests: the §4 tree transformations.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/mercury_trees.h"
#include "core/transformations.h"
#include "util/rng.h"

namespace mercury::core {
namespace {

namespace names = component_names;

// --- Depth augmentation (§4.1) -----------------------------------------------

TEST(DepthAugment, TreeIBecomesTreeII) {
  const RestartTree tree_i = make_tree_i();
  auto result = depth_augment(tree_i, tree_i.root());
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_TRUE(equivalent(result.value(), make_tree_ii()));
}

TEST(DepthAugment, AddsOneLeafPerComponent) {
  const RestartTree tree_i = make_tree_i();
  auto result = depth_augment(tree_i, tree_i.root());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), tree_i.size() + 5);
  EXPECT_EQ(result.value().all_components(), tree_i.all_components());
}

TEST(DepthAugment, RejectsCellWithFewerThanTwoComponents) {
  RestartTree tree("r");
  tree.attach_component(tree.root(), "only");
  EXPECT_FALSE(depth_augment(tree, tree.root()).ok());
  EXPECT_FALSE(depth_augment(make_tree_ii(), 99).ok());
}

TEST(DepthAugment, InputIsUntouched) {
  const RestartTree tree_i = make_tree_i();
  const RestartTree copy = tree_i;
  auto result = depth_augment(tree_i, tree_i.root());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(tree_i == copy);
}

// --- Component split (§4.2) ----------------------------------------------------

TEST(SplitComponent, TreeIIBecomesTreeIIPrime) {
  auto result = split_component(make_tree_ii(), names::kFedrcom,
                                {names::kFedr, names::kPbcom});
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_TRUE(equivalent(result.value(), make_tree_ii_prime()));
  EXPECT_FALSE(result.value().find_component(names::kFedrcom).has_value());
}

TEST(SplitComponent, SharedCellKeepsPartsTogether) {
  // Splitting inside tree I's monolithic cell keeps the parts on that cell.
  auto result = split_component(make_tree_i(), names::kFedrcom,
                                {names::kFedr, names::kPbcom});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
  EXPECT_TRUE(result.value().find_component(names::kFedr).has_value());
}

TEST(SplitComponent, Preconditions) {
  EXPECT_FALSE(split_component(make_tree_ii(), "ghost", {"a", "b"}).ok());
  EXPECT_FALSE(split_component(make_tree_ii(), names::kFedrcom, {"only"}).ok());
  // Part name already taken:
  EXPECT_FALSE(
      split_component(make_tree_ii(), names::kFedrcom, {"x", names::kSes}).ok());
}

// --- Grouping under a joint cell ------------------------------------------------

TEST(GroupUnderJoint, TreeIIPrimeBecomesTreeIII) {
  auto result = group_under_joint(make_tree_ii_prime(), names::kFedr,
                                  names::kPbcom, "R_[fedr,pbcom]");
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_TRUE(equivalent(result.value(), make_tree_iii()));
}

TEST(GroupUnderJoint, Preconditions) {
  EXPECT_FALSE(group_under_joint(make_tree_ii_prime(), "ghost", names::kPbcom,
                                 "j").ok());
  // Already share a cell:
  EXPECT_FALSE(
      group_under_joint(make_tree_iv(), names::kSes, names::kStr, "j").ok());
  // Not siblings (fedr is a level below mbus in tree III):
  EXPECT_FALSE(
      group_under_joint(make_tree_iii(), names::kMbus, names::kFedr, "j").ok());
}

// --- Group consolidation (§4.3) -------------------------------------------------

TEST(Consolidate, TreeIIIBecomesTreeIV) {
  auto result = consolidate_group(make_tree_iii(), names::kSes, names::kStr);
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_TRUE(equivalent(result.value(), make_tree_iv()));
}

TEST(Consolidate, MergedCellHoldsBoth) {
  auto result = consolidate_group(make_tree_iii(), names::kSes, names::kStr);
  ASSERT_TRUE(result.ok());
  const auto ses_cell = result.value().find_component(names::kSes);
  const auto str_cell = result.value().find_component(names::kStr);
  ASSERT_TRUE(ses_cell.has_value());
  EXPECT_EQ(ses_cell, str_cell);
  EXPECT_TRUE(result.value().is_leaf(*ses_cell));
}

TEST(Consolidate, ReducesGroupCountByOne) {
  const RestartTree before = make_tree_iii();
  auto result = consolidate_group(before, names::kSes, names::kStr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().group_count(), before.group_count() - 1);
}

TEST(Consolidate, Preconditions) {
  EXPECT_FALSE(consolidate_group(make_tree_iii(), "ghost", names::kStr).ok());
  EXPECT_FALSE(
      consolidate_group(make_tree_iv(), names::kSes, names::kStr).ok());
  // fedr/mbus are not siblings in tree III.
  EXPECT_FALSE(
      consolidate_group(make_tree_iii(), names::kMbus, names::kFedr).ok());
}

// --- Node promotion (§4.4) -------------------------------------------------------

TEST(Promote, TreeIVBecomesTreeV) {
  auto result = promote_component(make_tree_iv(), names::kPbcom);
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_TRUE(equivalent(result.value(), make_tree_v()));
}

TEST(Promote, RemovesTheGuessTooLowOption) {
  auto result = promote_component(make_tree_iv(), names::kPbcom);
  ASSERT_TRUE(result.ok());
  const RestartTree& tree_v = result.value();
  // pbcom's lowest cell now also restarts fedr: no pbcom-only restart.
  const auto cell = tree_v.lowest_cell_covering(names::kPbcom);
  ASSERT_TRUE(cell.has_value());
  const auto group = tree_v.group_components(*cell);
  EXPECT_NE(std::find(group.begin(), group.end(), names::kFedr), group.end());
}

TEST(Promote, Preconditions) {
  EXPECT_FALSE(promote_component(make_tree_iv(), "ghost").ok());
  // ses shares its leaf with str: not a single-component leaf.
  EXPECT_FALSE(promote_component(make_tree_iv(), names::kSes).ok());
  // mbus's parent is the root with other children — promotion to the root
  // cell would make every failure restart mbus; allowed structurally?
  // The transformation permits it (parent has other descendants); verify it
  // validates.
  auto mbus = promote_component(make_tree_iv(), names::kMbus);
  ASSERT_TRUE(mbus.ok());
  EXPECT_TRUE(mbus.value().validate().ok());
}

TEST(Promote, RejectsChainParent) {
  RestartTree tree("r");
  const NodeId mid = tree.add_cell(tree.root(), "mid");
  const NodeId leaf = tree.add_cell(mid, "leaf");
  tree.attach_component(leaf, "x");
  // mid has a single child; promotion would be a no-op group-wise.
  EXPECT_FALSE(promote_component(tree, "x").ok());
}

// --- Full evolution (§4 pipeline) -----------------------------------------------

TEST(Evolution, ReachesAllPublishedTrees) {
  auto stages = evolve_mercury_trees();
  ASSERT_TRUE(stages.ok()) << stages.error().message();
  ASSERT_EQ(stages.value().size(), 6u);
  EXPECT_TRUE(equivalent(stages.value()[0], make_tree_i()));
  EXPECT_TRUE(equivalent(stages.value()[1], make_tree_ii()));
  EXPECT_TRUE(equivalent(stages.value()[2], make_tree_ii_prime()));
  EXPECT_TRUE(equivalent(stages.value()[3], make_tree_iii()));
  EXPECT_TRUE(equivalent(stages.value()[4], make_tree_iv()));
  EXPECT_TRUE(equivalent(stages.value()[5], make_tree_v()));
}

TEST(Evolution, EveryStageValidates) {
  auto stages = evolve_mercury_trees();
  ASSERT_TRUE(stages.ok());
  for (const auto& tree : stages.value()) {
    EXPECT_TRUE(tree.validate().ok());
  }
}

// --- Properties over random trees ------------------------------------------------

class TransformationProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// A random 2-level tree over `n` components: components are dealt into
  /// random cells (some shared, some alone).
  RestartTree random_tree(util::Rng& rng, int n) {
    RestartTree tree("root");
    std::vector<NodeId> cells;
    for (int i = 0; i < n; ++i) {
      const std::string component = "c" + std::to_string(i);
      if (cells.empty() || rng.chance(0.5)) {
        cells.push_back(tree.add_cell(tree.root(), "cell" + std::to_string(i)));
      }
      const auto cell =
          cells[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(cells.size()) - 1))];
      tree.attach_component(cell, component);
    }
    return tree;
  }
};

TEST_P(TransformationProperties, TransformationsPreserveComponentSet) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    RestartTree tree = random_tree(rng, 6);
    if (!tree.validate().ok()) continue;
    const auto components = tree.all_components();

    // Depth-augment every multi-component cell.
    for (NodeId id : tree.preorder()) {
      if (tree.cell(id).components.size() >= 2) {
        auto augmented = depth_augment(tree, id);
        ASSERT_TRUE(augmented.ok());
        EXPECT_EQ(augmented.value().all_components(), components);
        EXPECT_TRUE(augmented.value().validate().ok());
        tree = std::move(augmented).value();
        break;
      }
    }
  }
}

TEST_P(TransformationProperties, ConsolidateThenAugmentRestoresSignature) {
  util::Rng rng(GetParam());
  // Start from tree III; consolidate ses/str; depth-augmenting the merged
  // cell yields a joint cell with per-component leaves (tree-III-like plus
  // the joint node) — group signature must again contain {ses} and {str}.
  auto tree_iv = consolidate_group(make_tree_iii(), names::kSes, names::kStr);
  ASSERT_TRUE(tree_iv.ok());
  const auto merged = tree_iv.value().find_component(names::kSes);
  ASSERT_TRUE(merged.has_value());
  auto reaugmented = depth_augment(tree_iv.value(), *merged);
  ASSERT_TRUE(reaugmented.ok());
  const auto signature = group_signature(reaugmented.value());
  EXPECT_NE(std::find(signature.begin(), signature.end(),
                      std::vector<std::string>{names::kSes}),
            signature.end());
  EXPECT_NE(std::find(signature.begin(), signature.end(),
                      std::vector<std::string>{names::kStr}),
            signature.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformationProperties,
                         ::testing::Values(1, 7, 42, 99, 1234));

// --- The published trees themselves -----------------------------------------------

TEST(MercuryTrees, AllValidate) {
  for (MercuryTree kind : published_trees()) {
    const RestartTree tree = make_mercury_tree(kind);
    EXPECT_TRUE(tree.validate().ok()) << to_string(kind);
  }
  EXPECT_TRUE(make_tree_ii_prime().validate().ok());
}

TEST(MercuryTrees, SplitConfigurationFlags) {
  EXPECT_FALSE(uses_split_fedrcom(MercuryTree::kTreeI));
  EXPECT_FALSE(uses_split_fedrcom(MercuryTree::kTreeII));
  EXPECT_TRUE(uses_split_fedrcom(MercuryTree::kTreeIIPrime));
  EXPECT_TRUE(uses_split_fedrcom(MercuryTree::kTreeIII));
  EXPECT_TRUE(uses_split_fedrcom(MercuryTree::kTreeIV));
  EXPECT_TRUE(uses_split_fedrcom(MercuryTree::kTreeV));
}

TEST(MercuryTrees, TreeIHasOnlyFullReboot) {
  const RestartTree tree = make_tree_i();
  EXPECT_EQ(tree.group_count(), 1u);
  EXPECT_EQ(tree.group_components(tree.root()).size(), 5u);
}

TEST(MercuryTrees, TreeIIGivesEachComponentItsOwnCell) {
  const RestartTree tree = make_tree_ii();
  for (const auto& component : tree.all_components()) {
    const auto cell = tree.find_component(component);
    ASSERT_TRUE(cell.has_value());
    EXPECT_EQ(tree.group_components(*cell),
              std::vector<std::string>{component});
  }
}

TEST(MercuryTrees, TreeIVJointCellCoversExactlyFedrPbcom) {
  const RestartTree tree = make_tree_iv();
  const auto joint = tree.lowest_cell_covering_all({names::kFedr, names::kPbcom});
  ASSERT_TRUE(joint.has_value());
  EXPECT_EQ(tree.group_components(*joint),
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
  EXPECT_NE(*joint, tree.root());
}

TEST(MercuryTrees, TreeVHasNoPbcomOnlyGroup) {
  const auto signature = group_signature(make_tree_v());
  EXPECT_EQ(std::find(signature.begin(), signature.end(),
                      std::vector<std::string>{names::kPbcom}),
            signature.end());
  // But fedr alone is still restartable.
  EXPECT_NE(std::find(signature.begin(), signature.end(),
                      std::vector<std::string>{names::kFedr}),
            signature.end());
}

}  // namespace
}  // namespace mercury::core
