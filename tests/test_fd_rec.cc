// Integration tests: failure detector + recoverer over the full station
// (the §2.2 machinery end to end).
#include <gtest/gtest.h>

#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/experiment.h"

namespace mercury::station {
namespace {

namespace names = core::component_names;
using core::MercuryTree;
using util::Duration;

class FdRecTest : public ::testing::Test {
 protected:
  void build(MercuryTree tree, OracleKind oracle = OracleKind::kPerfect) {
    sim_ = std::make_unique<sim::Simulator>(7);
    TrialSpec spec;
    spec.tree = tree;
    spec.oracle = oracle;
    rig_ = std::make_unique<MercuryRig>(*sim_, spec);
    rig_->start();
    sim_->run_for(Duration::seconds(3.0));
  }

  /// Run until the station is functional again; returns elapsed seconds.
  double recover() {
    const auto injected = sim_->now();
    const auto deadline = injected + Duration::seconds(120.0);
    while (sim_->now() < deadline) {
      if (rig_->station().all_functional() && !rig_->rec().restart_in_progress()) {
        break;
      }
      if (!sim_->step()) break;
    }
    return (sim_->now() - injected).to_seconds();
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<MercuryRig> rig_;
};

TEST_F(FdRecTest, SteadyStateHasNoSpuriousRestarts) {
  build(MercuryTree::kTreeIV);
  sim_->run_for(Duration::minutes(10.0));
  EXPECT_EQ(rig_->rec().restarts_executed(), 0u);
  EXPECT_EQ(rig_->fd().failures_reported(), 0u);
  EXPECT_GT(rig_->fd().pongs_received(), 3000u);  // pings flowing
}

TEST_F(FdRecTest, DetectsAndRecoversSimpleCrash) {
  build(MercuryTree::kTreeII);
  rig_->station().inject_crash(names::kRtu);
  const double elapsed = recover();
  EXPECT_GT(elapsed, 4.5);
  EXPECT_LT(elapsed, 7.5);
  ASSERT_EQ(rig_->rec().restarts_executed(), 1u);
  EXPECT_EQ(rig_->rec().history()[0].restarted,
            std::vector<std::string>{names::kRtu});
}

TEST_F(FdRecTest, OnlyTheFailedComponentRestartsUnderTreeII) {
  build(MercuryTree::kTreeII);
  rig_->station().inject_crash(names::kRtu);
  recover();
  for (const auto& record : rig_->rec().history()) {
    EXPECT_EQ(record.restarted.size(), 1u);
  }
}

TEST_F(FdRecTest, TreeIRestartsEverything) {
  build(MercuryTree::kTreeI);
  rig_->station().inject_crash(names::kRtu);
  const double elapsed = recover();
  EXPECT_GT(elapsed, 22.0);
  EXPECT_LT(elapsed, 28.0);
  ASSERT_GE(rig_->rec().restarts_executed(), 1u);
  EXPECT_EQ(rig_->rec().history()[0].restarted.size(), 5u);
}

TEST_F(FdRecTest, MbusOutageAttributedToMbusOnly) {
  build(MercuryTree::kTreeII);
  rig_->station().inject_crash(names::kMbus);
  const double elapsed = recover();
  EXPECT_LT(elapsed, 8.0);
  // The universal silence was not blamed on innocent components.
  ASSERT_EQ(rig_->rec().restarts_executed(), 1u);
  EXPECT_EQ(rig_->rec().history()[0].restarted,
            std::vector<std::string>{names::kMbus});
  // And detection keeps working afterwards.
  rig_->station().inject_crash(names::kRtu);
  EXPECT_LT(recover(), 8.0);
}

TEST_F(FdRecTest, SesCrashCausesInducedStrRecoveryUnderTreeIII) {
  build(MercuryTree::kTreeIII);
  rig_->station().inject_crash(names::kSes);
  const double elapsed = recover();
  EXPECT_GT(elapsed, 8.0);
  EXPECT_LT(elapsed, 12.0);
  // Two recovery actions: ses, then the induced str wedge (§4.3).
  ASSERT_EQ(rig_->rec().restarts_executed(), 2u);
  EXPECT_EQ(rig_->rec().history()[0].restarted,
            std::vector<std::string>{names::kSes});
  EXPECT_EQ(rig_->rec().history()[1].restarted,
            std::vector<std::string>{names::kStr});
  // The induced failure is a *new* chain, not an escalation (§4.3: "note
  // that this does not violate A_oracle").
  EXPECT_EQ(rig_->rec().escalations(), 0u);
}

TEST_F(FdRecTest, ConsolidatedTreeIVRecoversInOneAction) {
  build(MercuryTree::kTreeIV);
  rig_->station().inject_crash(names::kSes);
  const double elapsed = recover();
  EXPECT_GT(elapsed, 5.0);
  EXPECT_LT(elapsed, 7.5);
  ASSERT_EQ(rig_->rec().restarts_executed(), 1u);
  EXPECT_EQ(rig_->rec().history()[0].restarted,
            (std::vector<std::string>{names::kSes, names::kStr}));
}

TEST_F(FdRecTest, JointFailureEscalatesUnderHeuristicOracle) {
  // The heuristic oracle has no cure-set knowledge: it tries the pbcom leaf
  // first, the failure persists, and escalation reaches the joint cell.
  build(MercuryTree::kTreeIV, OracleKind::kHeuristic);
  rig_->station().inject_joint_fedr_pbcom();
  const double elapsed = recover();
  EXPECT_GT(elapsed, 40.0);  // two pbcom-length restarts
  EXPECT_LT(elapsed, 50.0);
  ASSERT_EQ(rig_->rec().restarts_executed(), 2u);
  EXPECT_EQ(rig_->rec().history()[0].restarted,
            std::vector<std::string>{names::kPbcom});
  EXPECT_EQ(rig_->rec().history()[1].restarted,
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
  EXPECT_EQ(rig_->rec().escalations(), 1u);
  EXPECT_EQ(rig_->rec().history()[1].escalation_level, 1);
}

TEST_F(FdRecTest, TreeVNeedsNoEscalationEvenHeuristic) {
  build(MercuryTree::kTreeV, OracleKind::kHeuristic);
  rig_->station().inject_joint_fedr_pbcom();
  const double elapsed = recover();
  EXPECT_LT(elapsed, 23.0);
  ASSERT_EQ(rig_->rec().restarts_executed(), 1u);
  EXPECT_EQ(rig_->rec().escalations(), 0u);
}

TEST_F(FdRecTest, HardFailureIsParkedAfterRootRestarts) {
  build(MercuryTree::kTreeII, OracleKind::kHeuristic);
  // A failure whose cure set includes a component outside the tree can
  // never be cured by restarts: the paper's "hard failure" (§2.2: the
  // policy "keeps track of past restarts to prevent infinite restarts").
  rig_->station().board().inject(
      core::make_joint(names::kRtu, {names::kRtu, "radio-hardware"}),
      sim_->now());
  sim_->run_for(Duration::minutes(5.0));
  ASSERT_EQ(rig_->rec().hard_failures().size(), 1u);
  EXPECT_EQ(rig_->rec().hard_failures()[0], names::kRtu);
  // Escalated through the root the configured number of times, then parked.
  int root_restarts = 0;
  for (const auto& record : rig_->rec().history()) {
    if (record.restarted.size() == 5u) ++root_restarts;
  }
  EXPECT_EQ(root_restarts, core::RecConfig{}.max_root_restarts);
  // Parked means parked: no restarts pile up afterwards.
  const auto restarts_at_park = rig_->rec().restarts_executed();
  sim_->run_for(Duration::minutes(5.0));
  EXPECT_EQ(rig_->rec().restarts_executed(), restarts_at_park);
}

TEST_F(FdRecTest, RecRestartsFdWhenItDies) {
  build(MercuryTree::kTreeIV);
  rig_->fd().crash();
  sim_->run_for(Duration::seconds(10.0));
  EXPECT_TRUE(rig_->fd().alive());  // REC noticed and restarted it
  // Detection works again end to end.
  rig_->station().inject_crash(names::kRtu);
  EXPECT_LT(recover(), 8.0);
}

TEST_F(FdRecTest, FdRestartsRecWhenItDies) {
  build(MercuryTree::kTreeIV);
  rig_->rec().crash();
  sim_->run_for(Duration::seconds(10.0));
  EXPECT_TRUE(rig_->rec().alive());
  rig_->station().inject_crash(names::kRtu);
  EXPECT_LT(recover(), 8.0);
}

TEST_F(FdRecTest, FailureDuringFdOutageRecoversAfterFdReturns) {
  build(MercuryTree::kTreeIV);
  rig_->fd().crash();
  rig_->station().inject_crash(names::kRtu);
  sim_->run_for(Duration::seconds(1.0));
  EXPECT_EQ(rig_->rec().restarts_executed(), 0u);  // nobody watching yet
  const double elapsed = recover();
  // FD revival (~2 s detection + 2 s restart) plus normal recovery.
  EXPECT_LT(elapsed, 15.0);
  EXPECT_TRUE(rig_->station().all_functional());
}

TEST_F(FdRecTest, SimultaneousFdAndRecLossIsFatal) {
  // §2.2: "our enhanced ground station can tolerate any single and most
  // multiple software failures, with the exception of FD and REC failing
  // together."
  build(MercuryTree::kTreeIV);
  rig_->fd().crash();
  rig_->rec().crash();
  rig_->station().inject_crash(names::kRtu);
  sim_->run_for(Duration::minutes(2.0));
  EXPECT_FALSE(rig_->station().all_functional());
  EXPECT_EQ(rig_->rec().restarts_executed(), 0u);
}

TEST_F(FdRecTest, MaskingPreventsRestartStorms) {
  build(MercuryTree::kTreeIII);
  rig_->station().inject_crash(names::kPbcom);
  recover();
  // pbcom takes >20 s to restart; without masking FD would re-report it
  // ~20 times. Exactly one restart must have happened.
  EXPECT_EQ(rig_->rec().restarts_executed(), 1u);
}

TEST_F(FdRecTest, BackToBackIndependentFailures) {
  build(MercuryTree::kTreeIV);
  rig_->station().inject_crash(names::kRtu);
  EXPECT_LT(recover(), 8.0);
  rig_->station().inject_crash(names::kSes);
  EXPECT_LT(recover(), 8.0);
  rig_->station().inject_crash(names::kMbus);
  EXPECT_LT(recover(), 8.0);
  EXPECT_EQ(rig_->rec().restarts_executed(), 3u);
  EXPECT_TRUE(rig_->rec().hard_failures().empty());
}

TEST_F(FdRecTest, ConcurrentFailuresBothRecover) {
  build(MercuryTree::kTreeIV);
  rig_->station().inject_crash(names::kRtu);
  rig_->station().inject_crash(names::kSes);
  const double elapsed = recover();
  EXPECT_LT(elapsed, 15.0);  // serialized recovery actions
  EXPECT_TRUE(rig_->station().all_functional());
  EXPECT_GE(rig_->rec().restarts_executed(), 2u);
}

}  // namespace
}  // namespace mercury::station
