// Unit + property tests: the XML command-language codec.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "util/rng.h"
#include "xml/element.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace mercury::xml {
namespace {

Element parse_ok(std::string_view text) {
  auto result = parse(text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message());
  return result.ok() ? std::move(result).value() : Element{};
}

void expect_parse_error(std::string_view text) {
  auto result = parse(text);
  EXPECT_FALSE(result.ok()) << "expected parse failure for: " << text;
}

// --- Element model -------------------------------------------------------------

TEST(Element, AttributesTypedAccess) {
  Element e("cmd");
  e.set_attr("freq", 437.1);
  e.set_attr("count", static_cast<long long>(12));
  e.set_attr("name", "tune");
  EXPECT_TRUE(e.has_attr("freq"));
  EXPECT_DOUBLE_EQ(*e.attr_double("freq"), 437.1);
  EXPECT_EQ(*e.attr_int("count"), 12);
  EXPECT_EQ(*e.attr("name"), "tune");
  EXPECT_EQ(e.attr_or("missing", "x"), "x");
  EXPECT_FALSE(e.attr("missing").has_value());
  EXPECT_FALSE(e.attr_double("name").has_value());
  EXPECT_FALSE(e.attr_int("name").has_value());
}

TEST(Element, DeepCopyIsIndependent) {
  Element original("root");
  original.add_child(Element("child")).set_attr("k", "v");
  Element copy = original;
  copy.child("child")->set_attr("k", "changed");
  EXPECT_EQ(*original.child("child")->attr("k"), "v");
  EXPECT_EQ(*copy.child("child")->attr("k"), "changed");
}

TEST(Element, ChildQueries) {
  Element root("r");
  root.add_child(Element("a"));
  root.add_child(Element("b"));
  root.add_child(Element("a"));
  EXPECT_EQ(root.child_count(), 3u);
  EXPECT_NE(root.child("a"), nullptr);
  EXPECT_EQ(root.child("missing"), nullptr);
  EXPECT_EQ(root.children_named("a").size(), 2u);
}

TEST(Element, EqualityIsDeepAndOrderSensitive) {
  Element a("r");
  a.add_child(Element("x"));
  a.add_child(Element("y"));
  Element b("r");
  b.add_child(Element("y"));
  b.add_child(Element("x"));
  EXPECT_FALSE(a == b);
  Element c = a;
  EXPECT_TRUE(a == c);
}

// --- Parser ----------------------------------------------------------------------

TEST(Parser, MinimalElement) {
  const Element e = parse_ok("<msg/>");
  EXPECT_EQ(e.name(), "msg");
  EXPECT_TRUE(e.children().empty());
}

TEST(Parser, AttributesBothQuoteStyles) {
  const Element e = parse_ok(R"(<m a="1" b='two'/>)");
  EXPECT_EQ(*e.attr("a"), "1");
  EXPECT_EQ(*e.attr("b"), "two");
}

TEST(Parser, NestedChildrenAndText) {
  const Element e = parse_ok("<a><b>hello</b><c/></a>");
  ASSERT_NE(e.child("b"), nullptr);
  EXPECT_EQ(e.child("b")->text(), "hello");
  ASSERT_NE(e.child("c"), nullptr);
}

TEST(Parser, DeclarationAndComments) {
  const Element e = parse_ok(
      "<?xml version=\"1.0\"?><!-- top --><root><!-- inner --><x/></root>");
  EXPECT_EQ(e.name(), "root");
  EXPECT_EQ(e.child_count(), 1u);
}

TEST(Parser, PredefinedEntities) {
  const Element e = parse_ok("<t a=\"&lt;&amp;&gt;&quot;&apos;\">x &lt; y</t>");
  EXPECT_EQ(*e.attr("a"), "<&>\"'");
  EXPECT_EQ(e.text(), "x < y");
}

TEST(Parser, NumericCharacterReferences) {
  const Element e = parse_ok("<t>&#65;&#x42;</t>");
  EXPECT_EQ(e.text(), "AB");
}

TEST(Parser, NumericReferenceMultibyteUtf8) {
  const Element e = parse_ok("<t>&#x3B1;</t>");  // Greek alpha
  EXPECT_EQ(e.text(), "\xCE\xB1");
}

TEST(Parser, CdataPassesThroughMarkup) {
  const Element e = parse_ok("<t><![CDATA[a <raw> & b]]></t>");
  EXPECT_EQ(e.text(), "a <raw> & b");
}

TEST(Parser, TextIsTrimmed) {
  const Element e = parse_ok("<t>  padded  </t>");
  EXPECT_EQ(e.text(), "padded");
}

TEST(Parser, RejectsMalformedDocuments) {
  expect_parse_error("");
  expect_parse_error("just text");
  expect_parse_error("<unclosed>");
  expect_parse_error("<a></b>");
  expect_parse_error("<a attr></a>");
  expect_parse_error("<a x=\"1\" x=\"2\"/>");  // duplicate attribute
  expect_parse_error("<a>&bogus;</a>");
  expect_parse_error("<a>&#xZZ;</a>");
  expect_parse_error("<a><b></a></b>");
  expect_parse_error("<a/><b/>");  // two roots
  expect_parse_error("<a x=\"<\"/>");
  expect_parse_error("<1abc/>");
  expect_parse_error("<a x=\"unterminated/>");
}

TEST(Parser, ErrorsCarryPosition) {
  auto result = parse("<a>\n  <b></c>\n</a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("2:"), std::string::npos)
      << result.error().message();
}

// --- Writer ---------------------------------------------------------------------

TEST(Writer, EscapesSpecials) {
  Element e("t");
  e.set_attr("a", "x<y\"&");
  e.set_text("a<b&c");
  const std::string out = write(e);
  EXPECT_EQ(out, "<t a=\"x&lt;y&quot;&amp;\">a&lt;b&amp;c</t>");
}

TEST(Writer, SelfClosesEmpty) {
  EXPECT_EQ(write(Element("empty")), "<empty/>");
}

TEST(Writer, DeterministicAttributeOrder) {
  Element e("t");
  e.set_attr("zebra", "1");
  e.set_attr("alpha", "2");
  EXPECT_EQ(write(e), "<t alpha=\"2\" zebra=\"1\"/>");
}

TEST(Writer, PrettyPrintIndents) {
  Element root("a");
  root.add_child(Element("b"));
  WriteOptions options;
  options.pretty = true;
  EXPECT_EQ(write(root, options), "<a>\n  <b/>\n</a>");
}

TEST(Writer, DeclarationOption) {
  WriteOptions options;
  options.declaration = true;
  const std::string out = write(Element("d"), options);
  EXPECT_EQ(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?><d/>");
}

// --- Round-trip property tests ------------------------------------------------

/// Generates a random document and checks parse(write(doc)) == doc.
class XmlRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Element random_element(util::Rng& rng, int depth) {
    static const char* names[] = {"msg", "body", "cmd", "telemetry", "x1", "a_b"};
    Element e(names[rng.uniform_int(0, 5)]);
    const int attrs = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < attrs; ++i) {
      e.set_attr("k" + std::to_string(i), random_text(rng));
    }
    if (depth < 3 && rng.chance(0.6)) {
      const int kids = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < kids; ++i) e.add_child(random_element(rng, depth + 1));
      // Note: mixed content order is not modeled, so only leaf elements get
      // text (the command language never mixes).
    } else if (rng.chance(0.5)) {
      e.set_text(random_text(rng));
    }
    return e;
  }

  std::string random_text(util::Rng& rng) {
    static const char* snippets[] = {"hello", "a<b", "x&y", "\"quoted\"",
                                     "it's", "42.5", "multi word text", "<>&"};
    std::string text = snippets[rng.uniform_int(0, 7)];
    if (rng.chance(0.3)) text += snippets[rng.uniform_int(0, 7)];
    return text;
  }
};

TEST_P(XmlRoundTrip, ParseWriteIdentity) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const Element original = random_element(rng, 0);
    for (bool pretty : {false, true}) {
      WriteOptions options;
      options.pretty = pretty;
      const std::string wire = write(original, options);
      auto reparsed = parse(wire);
      ASSERT_TRUE(reparsed.ok())
          << reparsed.error().message() << "\nwire: " << wire;
      EXPECT_TRUE(original == reparsed.value()) << "wire: " << wire;
    }
  }
}

TEST_P(XmlRoundTrip, FastAndFallbackParsersAgree) {
  // parse() tries a compact fast-path parser first and falls back to the
  // full line/col-tracking parser on any non-trivial construct (ISSUE 10).
  // Prepending a prolog and a comment forces the fallback for the *same*
  // document, so comparing the two results differentially pins the paths
  // against each other across random documents. Entity-rich values (&, <,
  // ") already route some undecorated documents down the fallback too, so
  // both directions of the bail-out get exercised.
  util::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 20; ++i) {
    const Element original = random_element(rng, 0);
    const std::string wire = write(original);
    auto fast = parse(wire);
    auto full = parse("<?xml version=\"1.0\"?><!-- force fallback -->" + wire);
    ASSERT_TRUE(fast.ok()) << "wire: " << wire;
    ASSERT_TRUE(full.ok()) << "wire: " << wire;
    EXPECT_TRUE(fast.value() == full.value()) << "wire: " << wire;
    EXPECT_TRUE(fast.value() == original) << "wire: " << wire;
  }
}

TEST_P(XmlRoundTrip, BothParserPathsRejectEveryTruncation) {
  // No proper prefix of a single-root document is well-formed: the root
  // element is still open at the cut. Both the fast path and the fallback
  // (forced via decoration) must reject every truncation — and never crash
  // or read out of bounds (the fast path scans with raw spans).
  util::Rng rng(GetParam() + 2000);
  const Element original = random_element(rng, 0);
  const std::string wire = write(original);
  const std::string decorated = "<?xml version=\"1.0\"?>" + wire;
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(parse(std::string_view(wire).substr(0, cut)).ok())
        << "prefix length " << cut << " of: " << wire;
  }
  for (std::size_t cut = 0; cut < decorated.size(); ++cut) {
    EXPECT_FALSE(parse(std::string_view(decorated).substr(0, cut)).ok())
        << "decorated prefix length " << cut << " of: " << decorated;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace mercury::xml
