// Unit tests: util (rng, stats, strings, time, result).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/time.h"

namespace mercury::util {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 6'000; ++i) ++counts[rng.uniform_int(1, 6)];
  ASSERT_EQ(counts.size(), 6u);
  EXPECT_EQ(counts.begin()->first, 1);
  EXPECT_EQ(counts.rbegin()->first, 6);
  for (const auto& [value, count] : counts) EXPECT_GT(count, 800);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(11);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20'000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, NormalAtLeastClampsBelow) {
  Rng rng(15);
  for (int i = 0; i < 5'000; ++i) {
    EXPECT_GE(rng.normal_at_least(1.0, 0.5, 0.8), 0.8);
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(16);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20'000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 20'000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20'000.0, 0.6, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng child_a = parent.fork("a");
  Rng child_b = parent.fork("b");
  // Streams should differ from each other and from the parent.
  EXPECT_NE(child_a.next_u64(), child_b.next_u64());

  // Forking is deterministic in (seed, order, tag).
  Rng parent2(99);
  Rng child_a2 = parent2.fork("a");
  EXPECT_EQ(Rng(99).fork("a").next_u64(), child_a2.next_u64());
}

TEST(Rng, ExponentialDurationOverload) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20'000; ++i) {
    stats.add(rng.exponential(Duration::seconds(2.0)).to_seconds());
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.06);
}

// --- Stats -------------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(20);
  RunningStats combined;
  RunningStats part_a;
  RunningStats part_b;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    combined.add(x);
    (i % 2 == 0 ? part_a : part_b).add(x);
  }
  part_a.merge(part_b);
  EXPECT_EQ(part_a.count(), combined.count());
  EXPECT_NEAR(part_a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(part_a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(part_a.min(), combined.min());
  EXPECT_DOUBLE_EQ(part_a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats stats;
  stats.add(1.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 1u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleStats, PercentilesInterpolate) {
  SampleStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(100.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.median(), 3.0);
  EXPECT_DOUBLE_EQ(stats.percentile(25.0), 2.0);
  EXPECT_DOUBLE_EQ(stats.percentile(12.5), 1.5);
}

TEST(SampleStats, PercentileClampsOutOfRange) {
  SampleStats stats;
  stats.add(1.0);
  stats.add(2.0);
  EXPECT_DOUBLE_EQ(stats.percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(200.0), 2.0);
}

TEST(SampleStats, AddAfterSortedQueryStaysCorrect) {
  SampleStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
  stats.add(7.0);  // invalidates the cached sort
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.0);
}

TEST(SampleStats, Ci95ShrinksWithSamples) {
  Rng rng(21);
  SampleStats small;
  SampleStats large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 1'000; ++i) large.add(rng.normal(0.0, 1.0));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SampleStats, CvZeroWhenMeanZero) {
  SampleStats stats;
  stats.add(-1.0);
  stats.add(1.0);
  EXPECT_DOUBLE_EQ(stats.cv(), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.add(0.5);
  histogram.add(9.5);
  histogram.add(-100.0);  // clamps to first bin
  histogram.add(100.0);   // clamps to last bin
  EXPECT_EQ(histogram.bin_count(0), 2u);
  EXPECT_EQ(histogram.bin_count(9), 2u);
  EXPECT_EQ(histogram.total(), 4u);
  EXPECT_DOUBLE_EQ(histogram.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.bin_high(9), 10.0);
  EXPECT_FALSE(histogram.render().empty());
}

// --- Strings -----------------------------------------------------------------

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("mercury", "mer"));
  EXPECT_FALSE(starts_with("mer", "mercury"));
  EXPECT_TRUE(ends_with("mercury", "ury"));
  EXPECT_FALSE(ends_with("ury", "mercury"));
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_left("1234", 3), "1234");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Strings, IsAllDigits) {
  EXPECT_TRUE(is_all_digits("0123"));
  EXPECT_FALSE(is_all_digits(""));
  EXPECT_FALSE(is_all_digits("12a"));
  EXPECT_FALSE(is_all_digits("-1"));
}

// --- Time --------------------------------------------------------------------

TEST(Time, DurationArithmetic) {
  const Duration d = Duration::seconds(90.0);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 90.0);
  EXPECT_DOUBLE_EQ(Duration::minutes(1.5).to_seconds(), 90.0);
  EXPECT_DOUBLE_EQ(Duration::hours(2.0).to_seconds(), 7200.0);
  EXPECT_DOUBLE_EQ(Duration::days(1.0).to_hours(), 24.0);
  EXPECT_DOUBLE_EQ((d + Duration::seconds(10.0)).to_seconds(), 100.0);
  EXPECT_DOUBLE_EQ((d - Duration::seconds(100.0)).to_seconds(), -10.0);
  EXPECT_DOUBLE_EQ((d * 2.0).to_seconds(), 180.0);
  EXPECT_DOUBLE_EQ((2.0 * d).to_seconds(), 180.0);
  EXPECT_DOUBLE_EQ((d / 3.0).to_seconds(), 30.0);
  EXPECT_DOUBLE_EQ(d / Duration::seconds(45.0), 2.0);
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t = TimePoint::from_seconds(100.0);
  EXPECT_DOUBLE_EQ((t + Duration::seconds(5.0)).to_seconds(), 105.0);
  EXPECT_DOUBLE_EQ((t - Duration::seconds(5.0)).to_seconds(), 95.0);
  EXPECT_DOUBLE_EQ((t - TimePoint::from_seconds(40.0)).to_seconds(), 60.0);
  EXPECT_LT(TimePoint::origin(), t);
  EXPECT_TRUE(TimePoint::infinity() > t);
  EXPECT_FALSE(TimePoint::infinity().is_finite());
}

TEST(Time, DurationOrderingAndPredicates) {
  EXPECT_LT(Duration::seconds(1.0), Duration::seconds(2.0));
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE(Duration::seconds(-1.0).is_negative());
  EXPECT_FALSE(Duration::infinity().is_finite());
}

TEST(Time, HumanReadableStrings) {
  EXPECT_EQ(Duration::seconds(5.0).str(), "5.000s");
  EXPECT_EQ(Duration::minutes(2.0).str(), "2.000m");
  EXPECT_EQ(Duration::hours(3.0).str(), "3.000h");
  EXPECT_EQ(Duration::days(4.0).str(), "4.000d");
}

// --- Result ------------------------------------------------------------------

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> bad = Error("boom");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message(), "boom");
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_EQ(ok.value_or(7), 42);
}

TEST(Result, ErrorWrapPrependsContext) {
  const Error inner("bad attribute");
  EXPECT_EQ(inner.wrap("parsing <msg>").message(), "parsing <msg>: bad attribute");
}

TEST(Status, OkAndError) {
  Status ok = Status::ok_status();
  EXPECT_TRUE(ok.ok());
  Status bad = Error("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message(), "nope");
}

}  // namespace
}  // namespace mercury::util
