// Integration tests: the §5.2 economics end to end — pass survival under
// different trees, and maintenance-window-gated rejuvenation.
#include <gtest/gtest.h>

#include "core/health_monitor.h"
#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/downlink.h"
#include "station/experiment.h"
#include "station/health_reporter.h"
#include "station/pass_schedule.h"

namespace mercury::station {
namespace {

namespace names = core::component_names;
using core::MercuryTree;
using util::Duration;
using util::TimePoint;

/// One pass with a tracking-subsystem failure in the middle; returns the
/// session report.
SessionReport pass_with_midpass_failure(MercuryTree tree, std::uint64_t seed) {
  sim::Simulator sim(seed);
  TrialSpec spec;
  spec.tree = tree;
  spec.oracle = OracleKind::kPerfect;
  MercuryRig rig(sim, spec);
  rig.start();

  orbit::Pass pass;
  pass.aos = sim.now() + Duration::seconds(20.0);
  pass.los = pass.aos + Duration::minutes(10.0);
  DownlinkSession session(rig.station(), pass);
  session.start();

  sim.run_until(pass.aos + Duration::minutes(4.0));
  rig.station().inject_crash(names::kStr);  // the §5.2 tracking failure
  sim.run_until(pass.los + Duration::seconds(1.0));
  return session.report();
}

TEST(PassEconomics, TreeVKeepsThePass) {
  const SessionReport report = pass_with_midpass_failure(MercuryTree::kTreeV, 1);
  EXPECT_FALSE(report.link_broken);
  EXPECT_GT(report.capture_fraction(), 0.97);
  EXPECT_LT(report.longest_outage.to_seconds(), 8.0);
}

TEST(PassEconomics, TreeILosesThePass) {
  const SessionReport report = pass_with_midpass_failure(MercuryTree::kTreeI, 2);
  EXPECT_TRUE(report.link_broken);
  // Everything after minute 4 of 10 is gone.
  EXPECT_LT(report.capture_fraction(), 0.45);
}

TEST(PassEconomics, RecoveryFasterThanBreakThresholdAlwaysKeepsData) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const SessionReport report =
        pass_with_midpass_failure(MercuryTree::kTreeIV, seed);
    EXPECT_FALSE(report.link_broken) << "seed " << seed;
    EXPECT_NEAR(report.outage.to_seconds(), 6.2, 1.5) << "seed " << seed;
  }
}

TEST(PassEconomics, RejuvenationWaitsForTheMaintenanceWindow) {
  sim::Simulator sim(33);
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kHeuristic;
  MercuryRig rig(sim, spec);
  rig.start();

  // One pass 60-360 s from now; fedr's leak trips the limit mid-pass.
  PassSchedule schedule;
  orbit::Pass pass;
  pass.aos = sim.now() + Duration::seconds(60.0);
  pass.los = pass.aos + Duration::minutes(5.0);
  schedule.add_passes("sat", {pass});

  StationHealthReporter reporter(rig.station(), "hm");
  core::HealthPolicy policy;
  // Base 48 MB + 8 MB/min crosses 58 MB at ~75 s of uptime — inside the pass.
  policy.memory_limit_mb = 58.0;
  core::HealthMonitor monitor(sim, rig.station().bus(), "hm", policy);
  monitor.set_rejuvenator([&rig](const std::string& component) {
    return rig.rec().planned_restart(component);
  });
  monitor.set_maintenance_window([&] {
    return schedule.window_open(sim.now(), Duration::seconds(30.0));
  });
  rig.station().add_bus_restart_listener([&] { monitor.reattach(); });
  reporter.start();
  monitor.start();

  // Mid-pass: the limit has tripped but the window is closed — deferred.
  sim.run_until(pass.aos + Duration::minutes(3.0));
  EXPECT_GE(monitor.rejuvenations_deferred(), 1u);
  EXPECT_EQ(rig.rec().planned_restarts(), 0u);
  EXPECT_TRUE(rig.station().all_functional());  // no downtime during the pass

  // After LOS the window opens and the deferred restart runs.
  sim.run_until(pass.los + Duration::seconds(60.0));
  EXPECT_GE(rig.rec().planned_restarts(), 1u);
  ASSERT_FALSE(rig.rec().history().empty());
  const auto& record = rig.rec().history().front();
  EXPECT_TRUE(record.planned);
  EXPECT_GE(record.report_time, pass.los);  // §5.2: planned work waited
}

}  // namespace
}  // namespace mercury::station
