// Unit tests: restart tree structure and queries (paper §3.1-3.2).
#include <gtest/gtest.h>

#include "core/mercury_trees.h"
#include "core/restart_tree.h"

namespace mercury::core {
namespace {

/// The paper's Fig. 2 example: R_ABC with child R_A and R_BC; R_BC has
/// children R_B and R_C.
RestartTree figure2_tree() {
  RestartTree tree("R_ABC");
  const NodeId a = tree.add_cell(tree.root(), "R_A");
  tree.attach_component(a, "A");
  const NodeId bc = tree.add_cell(tree.root(), "R_BC");
  const NodeId b = tree.add_cell(bc, "R_B");
  tree.attach_component(b, "B");
  const NodeId c = tree.add_cell(bc, "R_C");
  tree.attach_component(c, "C");
  return tree;
}

TEST(RestartTree, Figure2HasFiveCellsAndFiveGroups) {
  const RestartTree tree = figure2_tree();
  EXPECT_EQ(tree.size(), 5u);
  // "The tree in Figure 2 contains 5 restart groups."
  EXPECT_EQ(tree.group_count(), 5u);
  EXPECT_TRUE(tree.validate().ok());
}

TEST(RestartTree, PushingBcRestartsBAndC) {
  const RestartTree tree = figure2_tree();
  const auto bc = tree.lowest_cell_covering_all({"B", "C"});
  ASSERT_TRUE(bc.has_value());
  EXPECT_EQ(tree.group_components(*bc), (std::vector<std::string>{"B", "C"}));
  EXPECT_EQ(tree.cell(*bc).label, "R_BC");
}

TEST(RestartTree, RootGroupIsEverything) {
  const RestartTree tree = figure2_tree();
  EXPECT_EQ(tree.group_components(tree.root()),
            (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_EQ(tree.all_components(), (std::vector<std::string>{"A", "B", "C"}));
}

TEST(RestartTree, FindComponentAndCoverage) {
  const RestartTree tree = figure2_tree();
  const auto b_cell = tree.find_component("B");
  ASSERT_TRUE(b_cell.has_value());
  EXPECT_EQ(tree.cell(*b_cell).label, "R_B");
  EXPECT_FALSE(tree.find_component("Z").has_value());
  EXPECT_EQ(tree.lowest_cell_covering("B"), b_cell);
}

TEST(RestartTree, LowestCoveringAllCrossSubtreeIsRoot) {
  const RestartTree tree = figure2_tree();
  const auto node = tree.lowest_cell_covering_all({"A", "C"});
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(*node, tree.root());
}

TEST(RestartTree, LowestCoveringAllMissingComponentFails) {
  const RestartTree tree = figure2_tree();
  EXPECT_FALSE(tree.lowest_cell_covering_all({"A", "ghost"}).has_value());
}

TEST(RestartTree, LowestCoveringAllEmptySetIsRoot) {
  const RestartTree tree = figure2_tree();
  EXPECT_EQ(*tree.lowest_cell_covering_all({}), tree.root());
}

TEST(RestartTree, AncestryAndDepth) {
  const RestartTree tree = figure2_tree();
  const NodeId b = *tree.find_component("B");
  const NodeId bc = tree.parent(b);
  EXPECT_TRUE(tree.is_ancestor(tree.root(), b));
  EXPECT_TRUE(tree.is_ancestor(bc, b));
  EXPECT_FALSE(tree.is_ancestor(b, bc));
  EXPECT_TRUE(tree.is_ancestor(b, b));
  EXPECT_EQ(tree.depth(tree.root()), 0u);
  EXPECT_EQ(tree.depth(bc), 1u);
  EXPECT_EQ(tree.depth(b), 2u);
  EXPECT_EQ(tree.path_to_root(b),
            (std::vector<NodeId>{b, bc, tree.root()}));
}

TEST(RestartTree, LeafDetection) {
  const RestartTree tree = figure2_tree();
  EXPECT_TRUE(tree.is_leaf(*tree.find_component("A")));
  EXPECT_FALSE(tree.is_leaf(tree.root()));
  EXPECT_FALSE(tree.is_leaf(tree.parent(*tree.find_component("B"))));
}

TEST(RestartTree, PreorderVisitsAllOnce) {
  const RestartTree tree = figure2_tree();
  const auto order = tree.preorder();
  EXPECT_EQ(order.size(), tree.size());
  EXPECT_EQ(order.front(), tree.root());
}

TEST(RestartTree, AttachIsIdempotentAndSorted) {
  RestartTree tree("r");
  tree.attach_component(tree.root(), "z");
  tree.attach_component(tree.root(), "a");
  tree.attach_component(tree.root(), "z");
  EXPECT_EQ(tree.cell(tree.root()).components,
            (std::vector<std::string>{"a", "z"}));
}

TEST(RestartTree, DetachComponent) {
  RestartTree tree = figure2_tree();
  tree.detach_component("B");
  EXPECT_FALSE(tree.find_component("B").has_value());
  tree.detach_component("not-there");  // no-op
}

TEST(RestartTree, ValidateCatchesDoubleAttachment) {
  RestartTree tree("r");
  const NodeId a = tree.add_cell(tree.root(), "a");
  const NodeId b = tree.add_cell(tree.root(), "b");
  tree.attach_component(a, "x");
  tree.attach_component(b, "x");
  EXPECT_FALSE(tree.validate().ok());
}

TEST(RestartTree, ValidateCatchesEmptyGroup) {
  RestartTree tree("r");
  tree.add_cell(tree.root(), "hollow");
  tree.attach_component(tree.root(), "x");
  const auto status = tree.validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("hollow"), std::string::npos);
}

TEST(RestartTree, ValidateEmptyTreeFails) {
  RestartTree tree("r");
  EXPECT_FALSE(tree.validate().ok());  // root restarts nothing
}

TEST(RestartTree, RemoveEmptyCellCompactsIds) {
  RestartTree tree("r");
  const NodeId a = tree.add_cell(tree.root(), "a");
  const NodeId b = tree.add_cell(tree.root(), "b");
  tree.attach_component(b, "x");
  ASSERT_TRUE(tree.remove_empty_cell(a).ok());
  EXPECT_EQ(tree.size(), 2u);
  // b shifted down to a's slot; x still findable and tree valid.
  const auto x_cell = tree.find_component("x");
  ASSERT_TRUE(x_cell.has_value());
  EXPECT_EQ(tree.cell(*x_cell).label, "b");
  EXPECT_TRUE(tree.validate().ok());
}

TEST(RestartTree, RemoveEmptyCellRejectsRootAndNonEmpty) {
  RestartTree tree = figure2_tree();
  EXPECT_FALSE(tree.remove_empty_cell(tree.root()).ok());
  EXPECT_FALSE(tree.remove_empty_cell(*tree.find_component("A")).ok());
  const NodeId bc = tree.parent(*tree.find_component("B"));
  EXPECT_FALSE(tree.remove_empty_cell(bc).ok());  // has children
}

TEST(RestartTree, RenderShowsStructure) {
  const std::string rendered = figure2_tree().render();
  EXPECT_NE(rendered.find("R_ABC"), std::string::npos);
  EXPECT_NE(rendered.find("R_BC"), std::string::npos);
  EXPECT_NE(rendered.find("{B}"), std::string::npos);
}

TEST(RestartTree, EqualityAndSignature) {
  EXPECT_TRUE(figure2_tree() == figure2_tree());
  RestartTree other = figure2_tree();
  other.attach_component(other.root(), "D");
  EXPECT_FALSE(figure2_tree() == other);

  // Signature ignores labels but captures group structure.
  RestartTree relabeled = figure2_tree();
  relabeled.set_label(relabeled.root(), "different-label");
  EXPECT_FALSE(figure2_tree() == relabeled);
  EXPECT_TRUE(equivalent(figure2_tree(), relabeled));
}

TEST(RestartTree, SignatureDistinguishesShapes) {
  // Consolidated {B,C} on one leaf vs joint cell with two leaves: different
  // restart choices -> different signatures.
  RestartTree consolidated("r");
  const NodeId leaf = consolidated.add_cell(consolidated.root(), "bc");
  consolidated.attach_component(leaf, "B");
  consolidated.attach_component(leaf, "C");

  RestartTree joint("r");
  const NodeId cell = joint.add_cell(joint.root(), "bc");
  const NodeId b = joint.add_cell(cell, "b");
  joint.attach_component(b, "B");
  const NodeId c = joint.add_cell(cell, "c");
  joint.attach_component(c, "C");

  EXPECT_FALSE(equivalent(consolidated, joint));
}

}  // namespace
}  // namespace mercury::core
