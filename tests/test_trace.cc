// Recovery-path tracing (src/obs): recorder semantics, export round-trips,
// and the phase decomposition on a real simulated crash -> recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/mercury_trees.h"
#include "core/transformations.h"
#include "obs/phases.h"
#include "obs/trace.h"
#include "station/experiment.h"
#include "util/rng.h"

namespace mercury::obs {
namespace {

using util::TimePoint;

TEST(TraceRecorder, RecordsEventsInEmissionOrder) {
  TraceRecorder rec;
  rec.instant(1.0, "fault", "fault.manifest", "board", {{"manifest", "ses"}});
  rec.instant(2.0, "detect", "fd.report", "fd", {{"component", "ses"}});
  rec.counter(2.5, "active", 3.0, "board");

  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0].name, "fault.manifest");
  EXPECT_EQ(rec.events()[0].kind, EventKind::kInstant);
  EXPECT_EQ(rec.events()[0].arg_or("manifest"), "ses");
  EXPECT_EQ(rec.events()[1].name, "fd.report");
  EXPECT_EQ(rec.events()[2].kind, EventKind::kCounter);
  EXPECT_EQ(rec.events()[2].arg_or("value"), "3");
}

TEST(TraceRecorder, SpansNestAndReplayMetadataOnEnd) {
  TraceRecorder rec;
  const auto outer = rec.begin(1.0, "recover", "rec.restart", "rec",
                               {{"component", "ses"}});
  const auto inner = rec.begin(1.5, "restart", "restart:ses", "pm");
  EXPECT_NE(outer, 0u);
  EXPECT_NE(inner, 0u);
  EXPECT_NE(outer, inner);

  rec.end(3.0, inner, {{"outcome", "ready"}});
  rec.end(3.5, outer);

  ASSERT_EQ(rec.events().size(), 4u);
  const TraceEvent& inner_end = rec.events()[2];
  EXPECT_EQ(inner_end.kind, EventKind::kEnd);
  // category/name/track replayed from the matching begin.
  EXPECT_EQ(inner_end.category, "restart");
  EXPECT_EQ(inner_end.name, "restart:ses");
  EXPECT_EQ(inner_end.track, "pm");
  EXPECT_EQ(inner_end.span, inner);
  EXPECT_EQ(inner_end.arg_or("outcome"), "ready");

  const TraceEvent& outer_end = rec.events()[3];
  EXPECT_EQ(outer_end.name, "rec.restart");
  EXPECT_EQ(outer_end.span, outer);
}

TEST(TraceRecorder, EndOfUnknownSpanIsDropped) {
  TraceRecorder rec;
  rec.end(1.0, 999);
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, EventCapCountsDropped) {
  TraceRecorder rec(/*max_events=*/2);
  rec.instant(1.0, "fault", "a", "t");
  rec.instant(2.0, "fault", "b", "t");
  rec.instant(3.0, "fault", "c", "t");
  EXPECT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
}

TEST(TraceRecorder, MetricsAggregate) {
  TraceRecorder rec;
  rec.incr("fd.reports");
  rec.incr("fd.reports", 2);
  rec.observe("trial.recovery_seconds", 5.0);
  rec.observe("trial.recovery_seconds", 7.0);

  EXPECT_EQ(rec.count("fd.reports"), 3u);
  EXPECT_EQ(rec.count("missing"), 0u);
  ASSERT_EQ(rec.samples().count("trial.recovery_seconds"), 1u);
  EXPECT_DOUBLE_EQ(rec.samples().at("trial.recovery_seconds").mean(), 6.0);
  const std::string summary = rec.metrics_summary();
  EXPECT_NE(summary.find("fd.reports"), std::string::npos);
  EXPECT_NE(summary.find("trial.recovery_seconds"), std::string::npos);
}

TEST(TraceRecorder, RunIndexStampsSubsequentEvents) {
  TraceRecorder rec;
  rec.instant(1.0, "fault", "a", "t");
  rec.next_run();
  rec.instant(1.0, "fault", "b", "t");
  EXPECT_EQ(rec.events()[0].run, 0u);
  EXPECT_EQ(rec.events()[1].run, 1u);
}

// --- Chunked EventBuffer (ISSUE 10) ---------------------------------------
// Events are stored in fixed-capacity chunks (no re-moves on growth, merge
// by chunk splice). These pin the behavior right at the chunk seams.

TEST(EventBuffer, IndexingAndIterationCrossChunkBoundaries) {
  EventBuffer buffer;
  const std::size_t total = EventBuffer::kChunkCapacity * 2 + 7;
  for (std::size_t i = 0; i < total; ++i) {
    TraceEvent event;
    event.t = static_cast<double>(i);
    event.name = "e" + std::to_string(i);
    buffer.push_back(std::move(event));
  }
  ASSERT_EQ(buffer.size(), total);
  // Random access at the seams.
  for (std::size_t i : {std::size_t{0}, EventBuffer::kChunkCapacity - 1,
                        EventBuffer::kChunkCapacity,
                        2 * EventBuffer::kChunkCapacity, total - 1}) {
    EXPECT_EQ(buffer[i].name, "e" + std::to_string(i)) << i;
  }
  // Full iteration visits every event in emission order.
  std::size_t index = 0;
  for (const TraceEvent& event : buffer) {
    ASSERT_EQ(event.t, static_cast<double>(index));
    ++index;
  }
  EXPECT_EQ(index, total);
  EXPECT_EQ(buffer.to_vector().size(), total);
}

TEST(EventBuffer, SpliceMovesEverythingAndEmptiesTheSource) {
  EventBuffer a;
  EventBuffer b;
  const std::size_t per_side = EventBuffer::kChunkCapacity + 3;
  for (std::size_t i = 0; i < per_side; ++i) {
    TraceEvent ea;
    ea.t = static_cast<double>(i);
    a.push_back(std::move(ea));
    TraceEvent eb;
    eb.t = 1000.0 + static_cast<double>(i);
    b.push_back(std::move(eb));
  }
  a.splice_from(std::move(b));
  EXPECT_EQ(a.size(), 2 * per_side);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): documented
  EXPECT_EQ(a[per_side].t, 1000.0);          // first spliced event
  EXPECT_EQ(a[2 * per_side - 1].t, 1000.0 + per_side - 1);
}

TEST(TraceRecorder, DestructiveMergeMatchesCopyingMergeByteForByte) {
  const auto fill = [](TraceRecorder& rec) {
    rec.next_run();
    const std::uint64_t span = rec.begin(1.0, "recover", "rec.restart", "rec",
                                         {{"component", "ses"}});
    rec.instant(1.5, "detect", "fd.report", "fd");
    rec.end(2.0, span);
    rec.incr("restarts");
    rec.observe("recovery_s", 1.0);
  };
  TraceRecorder copied;
  TraceRecorder spliced;
  for (int trial = 0; trial < 3; ++trial) {
    TraceRecorder a;
    fill(a);
    copied.merge_from(a);  // per-event copying merge
    TraceRecorder b;
    fill(b);
    spliced.merge_from(std::move(b));  // chunk-splice merge
  }
  std::ostringstream copied_out;
  copied.write_jsonl(copied_out);
  std::ostringstream spliced_out;
  spliced.write_jsonl(spliced_out);
  EXPECT_EQ(copied_out.str(), spliced_out.str());
  EXPECT_EQ(copied.run(), spliced.run());
  EXPECT_EQ(copied.count("restarts"), spliced.count("restarts"));
}

TEST(TraceExport, JsonlRoundTripReproducesEvents) {
  TraceRecorder rec;
  rec.instant(0.25, "fault", "fault.manifest", "board",
              {{"manifest", "ses"}, {"kind", "crash"}});
  const auto span = rec.begin(1.0, "recover", "rec.restart", "rec",
                              {{"cell", "R_[ses,str]"}, {"escalation", "0"}});
  rec.next_run();
  rec.counter(1.5, "active", 2.0, "board");
  rec.end(2.0, span, {{"outcome", "cured"}});
  // Values that stress the escaping and number formatting.
  rec.instant(3.0000001, "sim", "weird \"quotes\"\n\ttabs \\ backslash", "sim",
              {{"k", "vé"}});

  std::ostringstream out;
  rec.write_jsonl(out);
  std::istringstream in(out.str());
  const std::vector<TraceEvent> back = read_jsonl(in);

  ASSERT_EQ(back.size(), rec.events().size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    const TraceEvent& a = rec.events()[i];
    const TraceEvent& b = back[i];
    EXPECT_DOUBLE_EQ(a.t, b.t) << i;
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.category, b.category) << i;
    EXPECT_EQ(a.name, b.name) << i;
    EXPECT_EQ(a.track, b.track) << i;
    EXPECT_EQ(a.span, b.span) << i;
    EXPECT_EQ(a.run, b.run) << i;
    ASSERT_EQ(a.args.size(), b.args.size()) << i;
    for (std::size_t j = 0; j < a.args.size(); ++j) {
      EXPECT_EQ(a.args[j].key, b.args[j].key);
      EXPECT_EQ(a.args[j].value, b.args[j].value);
    }
  }
}

TEST(TraceExport, ReadJsonlSkipsMalformedLines) {
  std::istringstream in(
      "{\"t\":1,\"ph\":\"i\",\"cat\":\"fault\",\"name\":\"a\",\"track\":\"t\","
      "\"span\":0,\"run\":0,\"args\":{}}\n"
      "not json at all\n"
      "{\"t\":2,\"ph\":\"i\",\"cat\":\"fault\",\"name\":\"b\",\"track\":\"t\","
      "\"span\":0,\"run\":0,\"args\":{}}\n");
  const auto events = read_jsonl(in);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
}

TEST(TraceExport, ReadJsonlSurvivesMalformedNumbersAndEscapes) {
  // Regression (ISSUE 3 satellite): these lines used to reach std::stod /
  // std::stoull and throw out of read_jsonl. Each must now simply be
  // skipped, with the surrounding good lines kept.
  const std::string good_a =
      "{\"t\":1,\"ph\":\"i\",\"cat\":\"fault\",\"name\":\"a\",\"track\":\"t\","
      "\"span\":0,\"run\":0,\"args\":{}}\n";
  const std::string good_b =
      "{\"t\":2,\"ph\":\"i\",\"cat\":\"fault\",\"name\":\"b\",\"track\":\"t\","
      "\"span\":0,\"run\":0,\"args\":{}}\n";
  std::istringstream in(
      good_a +
      // Timestamps that are sign/point/exponent tokens but not numbers.
      "{\"t\":-,\"ph\":\"i\",\"cat\":\"c\",\"name\":\"x\",\"track\":\"t\","
      "\"span\":0,\"run\":0,\"args\":{}}\n"
      "{\"t\":.,\"ph\":\"i\",\"cat\":\"c\",\"name\":\"x\",\"track\":\"t\","
      "\"span\":0,\"run\":0,\"args\":{}}\n"
      "{\"t\":1e,\"ph\":\"i\",\"cat\":\"c\",\"name\":\"x\",\"track\":\"t\","
      "\"span\":0,\"run\":0,\"args\":{}}\n"
      // Overflowing double exponent (stod would throw out_of_range).
      "{\"t\":1e999,\"ph\":\"i\",\"cat\":\"c\",\"name\":\"x\",\"track\":\"t\","
      "\"span\":0,\"run\":0,\"args\":{}}\n"
      // 24-digit span / run overflow 64 bits (stoull would throw).
      "{\"t\":1,\"ph\":\"b\",\"cat\":\"c\",\"name\":\"x\",\"track\":\"t\","
      "\"span\":999999999999999999999999,\"run\":0,\"args\":{}}\n"
      "{\"t\":1,\"ph\":\"i\",\"cat\":\"c\",\"name\":\"x\",\"track\":\"t\","
      "\"span\":0,\"run\":999999999999999999999999,\"args\":{}}\n"
      // Negative span: not a digit sequence for an unsigned field.
      "{\"t\":1,\"ph\":\"b\",\"cat\":\"c\",\"name\":\"x\",\"track\":\"t\","
      "\"span\":-1,\"run\":0,\"args\":{}}\n"
      // Broken \u escapes: non-hex digits, and a truncated one at
      // end-of-string (used to read past the escape).
      "{\"t\":1,\"ph\":\"i\",\"cat\":\"c\",\"name\":\"bad\\uZZZZesc\","
      "\"track\":\"t\",\"span\":0,\"run\":0,\"args\":{}}\n"
      "{\"t\":1,\"ph\":\"i\",\"cat\":\"c\",\"name\":\"trunc\\u00\","
      "\"track\":\"t\",\"span\":0,\"run\":0,\"args\":{}}\n" +
      good_b);
  const auto events = read_jsonl(in);  // must not throw
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
}

TEST(TraceExport, ReadJsonlSurvivesSeededFuzz) {
  // Deterministic fuzz: random byte mutations of a valid line, plus raw
  // printable garbage. read_jsonl must never throw (the checked number /
  // escape parsing) or over-read (the sanitizer CI job watches that);
  // mutated lines are either parsed or skipped.
  util::Rng rng(20260806);
  const std::string valid =
      "{\"t\":1.5,\"ph\":\"b\",\"cat\":\"recover\",\"name\":\"rec.restart\","
      "\"track\":\"rec\",\"span\":42,\"run\":3,\"args\":{\"cell\":\"R_x\","
      "\"esc\\u0061lation\":\"0\"}}";
  for (int round = 0; round < 400; ++round) {
    std::string line = valid;
    const int mutations = static_cast<int>(rng.uniform_int(1, 6));
    for (int m = 0; m < mutations && !line.empty(); ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:  // flip a byte to random printable
          line[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:  // delete a byte (truncation mid-token, mid-escape, ...)
          line.erase(pos, 1);
          break;
        default:  // duplicate a byte
          line.insert(pos, 1, line[pos]);
          break;
      }
    }
    std::istringstream in(line + "\n");
    const auto events = read_jsonl(in);  // must not throw
    EXPECT_LE(events.size(), 1u);
  }
  // Pure garbage lines too.
  for (int round = 0; round < 100; ++round) {
    std::string line;
    const auto length = rng.uniform_int(0, 120);
    for (std::int64_t i = 0; i < length; ++i) {
      line.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    }
    std::istringstream in(line + "\n");
    EXPECT_LE(read_jsonl(in).size(), 1u);  // must not throw
  }
}

TEST(TraceExport, ReadJsonlDecodesValidUnicodeEscapes) {
  // The checked \u parser still has to accept real escapes, including
  // multi-byte code points, and encode them as UTF-8.
  std::istringstream in(
      "{\"t\":1,\"ph\":\"i\",\"cat\":\"c\",\"name\":\"caf\\u00e9 \\u2713\","
      "\"track\":\"t\",\"span\":0,\"run\":0,\"args\":{}}\n");
  const auto events = read_jsonl(in);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "café \u2713");
}

TEST(TraceExport, ChromeTraceIsWellFormed) {
  TraceRecorder rec;
  const auto span = rec.begin(1.0, "recover", "rec.restart", "rec");
  rec.end(2.0, span);
  rec.instant(2.5, "fault", "fault.cured", "board");
  rec.counter(3.0, "active", 1.0, "board");

  std::ostringstream out;
  rec.write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  // Track naming metadata for the viewers.
  EXPECT_NE(text.find("thread_name"), std::string::npos);
  // Timestamps are microseconds: t=1.0 s -> 1000000.
  EXPECT_NE(text.find("\"ts\":1000000"), std::string::npos);
  // Balanced braces/brackets is a cheap proxy for "parses".
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
}

TEST(TraceGlobals, FreeFunctionsNoOpWithoutRecorder) {
  ASSERT_EQ(recorder(), nullptr);
  // Must not crash or leak state.
  instant(TimePoint::from_seconds(1.0), "fault", "x", "t");
  const auto span = begin_span(TimePoint::from_seconds(1.0), "recover", "x", "t");
  EXPECT_EQ(span, 0u);
  end_span(TimePoint::from_seconds(2.0), span);
  incr("nothing");
  observe("nothing", 1.0);
  next_run();
}

TEST(TraceGlobals, ScopedRecorderInstallsAndRestores) {
  ASSERT_EQ(recorder(), nullptr);
  TraceRecorder rec;
  {
    ScopedRecorder scoped(rec);
    EXPECT_EQ(recorder(), &rec);
    instant(TimePoint::from_seconds(1.0), "fault", "x", "t");
  }
  EXPECT_EQ(recorder(), nullptr);
  EXPECT_EQ(rec.events().size(), 1u);
}

TEST(TraceGlobals, TransformationsEmitTreeEvents) {
  TraceRecorder rec;
  ScopedRecorder scoped(rec);
  auto tree = core::make_tree_i();
  const auto augmented = core::depth_augment(tree, tree.root());
  ASSERT_TRUE(augmented.ok());
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].name, "tree.transform");
  EXPECT_EQ(rec.events()[0].arg_or("op"), "depth_augment");
  EXPECT_EQ(rec.count("tree.transforms"), 1u);
}

// --- Phase decomposition on a real crash -> recovery ----------------------

class TracedTrial : public ::testing::Test {
 protected:
  station::TrialResult run(const std::string& component,
                           core::MercuryTree tree) {
    station::TrialSpec spec;
    spec.tree = tree;
    spec.oracle = station::OracleKind::kHeuristic;
    spec.fail_component = component;
    spec.seed = 11;
    ScopedRecorder scoped(rec_);
    return station::run_trial(spec);
  }

  TraceRecorder rec_;
};

TEST_F(TracedTrial, CrashProducesThePipelineEventSequence) {
  run(core::component_names::kSes, core::MercuryTree::kTreeIV);

  // Index of the first event with this name; the pipeline stages must appear
  // in causal order.
  const auto index_of = [&](const std::string& name, EventKind kind) {
    const auto& events = rec_.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].name == name && events[i].kind == kind) return i;
    }
    ADD_FAILURE() << "missing event " << name;
    return events.size();
  };

  const auto fault = index_of("fault.manifest", EventKind::kInstant);
  const auto suspect = index_of("fd.suspect", EventKind::kInstant);
  const auto report = index_of("fd.report", EventKind::kInstant);
  const auto choice = index_of("oracle.choice", EventKind::kInstant);
  const auto action_begin = index_of("rec.restart", EventKind::kBegin);
  const auto restart_begin = index_of("restart:ses", EventKind::kBegin);
  const auto restart_end = index_of("restart:ses", EventKind::kEnd);
  const auto action_end = index_of("rec.restart", EventKind::kEnd);
  const auto cured = index_of("fault.cured", EventKind::kInstant);

  EXPECT_LT(fault, suspect);
  EXPECT_LT(suspect, report);
  EXPECT_LT(report, choice);
  EXPECT_LT(choice, action_begin);
  EXPECT_LT(action_begin, restart_begin);
  EXPECT_LT(restart_begin, restart_end);
  EXPECT_LT(restart_end, action_end);
  EXPECT_LT(restart_end, cured);

  EXPECT_GE(rec_.count("faults.injected"), 1u);
  EXPECT_GE(rec_.count("faults.cured"), 1u);
  EXPECT_GE(rec_.count("fd.reports"), 1u);
  EXPECT_GE(rec_.count("oracle.choices"), 1u);
  EXPECT_GE(rec_.count("rec.restarts"), 1u);
}

TEST_F(TracedTrial, PhasesTileTheMeasuredRecoveryTime) {
  const auto result = run(core::component_names::kSes, core::MercuryTree::kTreeIV);
  ASSERT_FALSE(result.timed_out);
  ASSERT_FALSE(result.hard_failure);

  const auto rows = recovery_phases(rec_.events());
  ASSERT_EQ(rows.size(), 1u);
  const RecoveryPhases& row = rows[0];
  EXPECT_EQ(row.component, "ses");
  EXPECT_TRUE(row.has_fault);
  EXPECT_FALSE(row.soft);
  EXPECT_EQ(row.escalation_level, 0);
  EXPECT_GT(row.detection(), 0.0);
  EXPECT_GT(row.decision(), 0.0);
  EXPECT_GT(row.execution(), 0.0);

  // The three phases tile fault -> cure, so they sum to end_to_end exactly.
  EXPECT_NEAR(row.detection() + row.decision() + row.execution(),
              row.end_to_end(), 1e-12);

  // And the trace-derived end-to-end matches the harness's measurement
  // (well inside the 1% acceptance tolerance).
  const double measured = result.recovery.to_seconds();
  EXPECT_NEAR(row.end_to_end(), measured, 0.01 * measured);
}

TEST_F(TracedTrial, PhaseTableSummarizesComponents) {
  run(core::component_names::kSes, core::MercuryTree::kTreeIV);
  const std::string table = phase_table(recovery_phases(rec_.events()));
  EXPECT_NE(table.find("ses"), std::string::npos);
  EXPECT_NE(table.find("(all)"), std::string::npos);
}

TEST_F(TracedTrial, JsonlRoundTripPreservesPhases) {
  const auto result = run(core::component_names::kSes, core::MercuryTree::kTreeIV);
  std::ostringstream out;
  rec_.write_jsonl(out);
  std::istringstream in(out.str());
  const auto rows = recovery_phases(read_jsonl(in));
  ASSERT_EQ(rows.size(), 1u);
  const double measured = result.recovery.to_seconds();
  EXPECT_NEAR(rows[0].end_to_end(), measured, 0.01 * measured);
}

}  // namespace
}  // namespace mercury::obs
