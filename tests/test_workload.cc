// Client-workload determinism and availability accounting (ISSUE 9).
//
// The workload driver rides exp::SeedStream per session, so a trial's
// per-request outcome log must be byte-identical for a given seed — across
// repeat runs, across MERCURY_JOBS values, and (for single-fault trials,
// where dispatch policy cannot change any timing) across dispatch modes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/mercury_trees.h"
#include "obs/trace_check.h"
#include "station/experiment.h"

namespace mercury::station {
namespace {

using util::Duration;

/// RAII override of $MERCURY_JOBS (nullptr = unset), restoring on exit.
class JobsEnv {
 public:
  explicit JobsEnv(const char* value) {
    const char* old = std::getenv("MERCURY_JOBS");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv("MERCURY_JOBS", value, 1);
    } else {
      ::unsetenv("MERCURY_JOBS");
    }
  }
  ~JobsEnv() {
    if (had_) {
      ::setenv("MERCURY_JOBS", saved_.c_str(), 1);
    } else {
      ::unsetenv("MERCURY_JOBS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TrialSpec traffic_spec(const std::string& component, std::uint64_t seed) {
  TrialSpec spec;
  spec.tree = core::MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kPerfect;
  spec.fail_component = component;
  spec.seed = seed;
  spec.traffic.enabled = true;
  spec.traffic.keep_outcome_log = true;
  return spec;
}

int count_lines(const std::string& text) {
  int n = 0;
  for (const char c : text) n += c == '\n';
  return n;
}

TEST(Workload, EveryIssuedRequestResolvesExactlyOnce) {
  const TrialResult result = run_trial(traffic_spec("ses", 11));
  ASSERT_FALSE(result.timed_out);
  const core::TrafficSummary& traffic = result.traffic;
  EXPECT_GT(traffic.issued, 0u);
  // The conservation law the whole availability story rests on: no request
  // vanishes and none is double-counted.
  EXPECT_EQ(traffic.issued, traffic.served + traffic.lost);
  EXPECT_LE(traffic.retried, traffic.issued);
  EXPECT_GT(traffic.served, 0u);
  EXPECT_GT(traffic.baseline_rps, 0.0);
  EXPECT_GT(traffic.p50_ms, 0.0);
  EXPECT_LE(traffic.p50_ms, traffic.p99_ms);
  EXPECT_LE(traffic.p99_ms, traffic.p999_ms);
  // One log line per resolved request.
  EXPECT_EQ(count_lines(result.traffic_outcome_log),
            static_cast<int>(traffic.issued));
}

TEST(Workload, SameSeedReproducesTheOutcomeLogByteForByte) {
  const TrialSpec spec = traffic_spec("rtu", 29);
  const TrialResult first = run_trial(spec);
  const TrialResult second = run_trial(spec);
  ASSERT_FALSE(first.traffic_outcome_log.empty());
  EXPECT_EQ(first.traffic_outcome_log, second.traffic_outcome_log);
  EXPECT_EQ(first.traffic, second.traffic);
}

TEST(Workload, OutcomeLogsByteIdenticalAtAnyJobCount) {
  std::vector<TrialSpec> specs;
  for (const std::string component : {"ses", "rtu", "fedr"}) {
    specs.push_back(traffic_spec(component, 41));
    specs.push_back(traffic_spec(component, 42));
  }

  std::vector<TrialResult> reference;
  {
    JobsEnv env("1");
    reference = run_trial_batch(specs);
  }
  ASSERT_EQ(reference.size(), specs.size());
  for (const char* jobs : {"2", "8"}) {
    JobsEnv env(jobs);
    const std::vector<TrialResult> results = run_trial_batch(specs);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].traffic_outcome_log,
                reference[i].traffic_outcome_log)
          << "jobs=" << jobs << " spec " << i;
      EXPECT_EQ(results[i].traffic, reference[i].traffic)
          << "jobs=" << jobs << " spec " << i;
    }
  }
}

TEST(Workload, SingleFaultGoodputIdenticalAcrossDispatchModes) {
  // With one failure there is never a second concurrent action, so serial
  // and DAG dispatch take the identical recovery path — the client-visible
  // goodput (and the whole outcome log) must not depend on the mode.
  TrialSpec serial = traffic_spec("ses", 53);
  TrialSpec dag = serial;
  dag.dispatch = core::DispatchMode::kDag;
  const TrialResult serial_result = run_trial(serial);
  const TrialResult dag_result = run_trial(dag);
  ASSERT_FALSE(serial_result.traffic_outcome_log.empty());
  EXPECT_EQ(serial_result.traffic_outcome_log, dag_result.traffic_outcome_log);
  EXPECT_EQ(serial_result.traffic, dag_result.traffic);
}

TEST(Workload, TracedTrafficTrialSatisfiesAllInvariants) {
  // Per-request spans on: the golden trace of a real traffic trial must be
  // clean under all seven invariants, including phantom-goodput.
  TrialSpec spec = traffic_spec("rtu", 61);
  spec.traffic.trace_requests = true;
  const TracedTrial traced = run_trial_traced(spec);
  ASSERT_FALSE(traced.result.timed_out);
  bool saw_request_span = false;
  for (const auto& event : traced.events) {
    saw_request_span |= event.category == "traffic";
  }
  EXPECT_TRUE(saw_request_span);
  const auto issues = obs::check_trace(traced.events);
  EXPECT_TRUE(issues.empty()) << obs::describe(issues);
}

TEST(Workload, TrafficDrivenOnDemandReopensServiceEarlier) {
  // The tentpole's end-to-end claim in miniature: a long pbcom restart with
  // two small extra faults. Serial recovery holds the rtu and ses routes
  // closed behind the ~20 s pbcom action; traffic-driven on-demand reopens
  // them via request touches while pbcom still restarts.
  TrialSpec serial = traffic_spec("pbcom", 67);
  serial.extra_faults.push_back({"ses", Duration::millis(30.0)});
  serial.extra_faults.push_back({"rtu", Duration::millis(60.0)});

  TrialSpec ondemand = serial;
  ondemand.dispatch = core::DispatchMode::kOnDemand;
  ondemand.traffic_driven = true;

  const TrialResult serial_result = run_trial(serial);
  const TrialResult ondemand_result = run_trial(ondemand);
  ASSERT_FALSE(serial_result.timed_out);
  ASSERT_FALSE(ondemand_result.timed_out);
  EXPECT_GT(ondemand_result.touch_promotions, 0);
  // Conservation holds in both modes; the on-demand mode loses strictly
  // fewer requests and closes its goodput dip strictly earlier.
  EXPECT_EQ(serial_result.traffic.issued,
            serial_result.traffic.served + serial_result.traffic.lost);
  EXPECT_EQ(ondemand_result.traffic.issued,
            ondemand_result.traffic.served + ondemand_result.traffic.lost);
  EXPECT_LT(ondemand_result.traffic.lost, serial_result.traffic.lost);
  EXPECT_LT(ondemand_result.traffic.dip_end_s, serial_result.traffic.dip_end_s);
}

}  // namespace
}  // namespace mercury::station
