// Unit + integration tests: §7 health beacons, the monitor's proactive
// rejuvenation, and the §5.2 downlink session accounting.
#include <gtest/gtest.h>

#include "core/health.h"
#include "core/health_monitor.h"
#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/downlink.h"
#include "station/experiment.h"
#include "station/health_reporter.h"

namespace mercury {
namespace {

namespace names = core::component_names;
using util::Duration;
using util::TimePoint;

// --- Beacon codec ---------------------------------------------------------------

TEST(HealthBeacon, EncodeDecodeRoundTrip) {
  core::HealthBeacon beacon;
  beacon.component = "fedr";
  beacon.seq = 12;
  beacon.uptime_s = 345.5;
  beacon.memory_mb = 210.25;
  beacon.queue_depth = 7.0;
  beacon.internal_latency_ms = 3.5;
  beacon.connectivity_ok = false;
  beacon.consistency_ok = true;
  beacon.warnings = {"memory above warn level", "slow replies"};
  beacon.hard_failure_suspected = true;

  const msg::Message wire = core::encode_beacon(beacon, "hm");
  EXPECT_EQ(wire.kind, msg::Kind::kTelemetry);
  EXPECT_EQ(wire.to, "hm");
  auto decoded = core::decode_beacon(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_EQ(decoded.value(), beacon);
}

TEST(HealthBeacon, DecodeRejectsNonBeacons) {
  EXPECT_FALSE(core::decode_beacon(msg::make_ping("fd", "ses", 1)).ok());
  msg::Message telemetry;
  telemetry.kind = msg::Kind::kTelemetry;
  telemetry.from = "x";
  telemetry.to = "hm";
  telemetry.verb = "health";
  EXPECT_FALSE(core::decode_beacon(telemetry).ok());  // missing fields
}

// --- HealthMonitor ----------------------------------------------------------------

class HealthMonitorTest : public ::testing::Test {
 protected:
  HealthMonitorTest()
      : sim_(3), bus_(sim_, bus::BusConfig{}) {}

  core::HealthMonitor& make_monitor(core::HealthPolicy policy = {}) {
    monitor_ = std::make_unique<core::HealthMonitor>(sim_, bus_, "hm", policy);
    monitor_->set_rejuvenator([this](const std::string& component) {
      rejuvenated_.push_back(component);
      return accept_rejuvenation_;
    });
    monitor_->start();
    return *monitor_;
  }

  void send_beacon(const core::HealthBeacon& beacon) {
    bus_.send(core::encode_beacon(beacon, "hm"));
    sim_.run_for(Duration::millis(20.0));
  }

  core::HealthBeacon healthy(const std::string& component) {
    core::HealthBeacon beacon;
    beacon.component = component;
    beacon.seq = ++seq_;
    beacon.memory_mb = 60.0;
    beacon.uptime_s = 10.0;
    return beacon;
  }

  sim::Simulator sim_;
  bus::MessageBus bus_;
  std::unique_ptr<core::HealthMonitor> monitor_;
  std::vector<std::string> rejuvenated_;
  bool accept_rejuvenation_ = true;
  std::uint64_t seq_ = 0;
};

TEST_F(HealthMonitorTest, HealthyBeaconsCauseNoAction) {
  auto& monitor = make_monitor();
  for (int i = 0; i < 10; ++i) send_beacon(healthy("fedr"));
  EXPECT_EQ(monitor.beacons_received(), 10u);
  EXPECT_TRUE(rejuvenated_.empty());
  ASSERT_TRUE(monitor.latest("fedr").has_value());
  EXPECT_EQ(monitor.latest("fedr")->seq, 10u);
}

TEST_F(HealthMonitorTest, MemoryOverLimitTriggersRejuvenation) {
  auto& monitor = make_monitor();
  core::HealthBeacon beacon = healthy("fedr");
  beacon.memory_mb = 300.0;
  send_beacon(beacon);
  ASSERT_EQ(rejuvenated_, std::vector<std::string>{"fedr"});
  EXPECT_EQ(monitor.rejuvenations_requested(), 1u);
}

TEST_F(HealthMonitorTest, MinSpacingSuppressesRepeats) {
  make_monitor();
  core::HealthBeacon beacon = healthy("fedr");
  beacon.memory_mb = 300.0;
  send_beacon(beacon);
  beacon.seq = ++seq_;
  send_beacon(beacon);  // still over limit, but within min spacing
  EXPECT_EQ(rejuvenated_.size(), 1u);
  sim_.run_for(Duration::minutes(6.0));
  beacon.seq = ++seq_;
  send_beacon(beacon);
  EXPECT_EQ(rejuvenated_.size(), 2u);
}

TEST_F(HealthMonitorTest, ConsecutiveWarningsTrigger) {
  core::HealthPolicy policy;
  policy.warning_beacons_before_action = 3;
  make_monitor(policy);
  core::HealthBeacon beacon = healthy("rtu");
  beacon.warnings = {"suspect behavior"};
  send_beacon(beacon);
  beacon.seq = ++seq_;
  send_beacon(beacon);
  EXPECT_TRUE(rejuvenated_.empty());  // two warnings: not yet
  beacon.seq = ++seq_;
  send_beacon(beacon);
  EXPECT_EQ(rejuvenated_, std::vector<std::string>{"rtu"});
}

TEST_F(HealthMonitorTest, WarningStreakResetsOnCleanBeacon) {
  core::HealthPolicy policy;
  policy.warning_beacons_before_action = 2;
  make_monitor(policy);
  core::HealthBeacon warning = healthy("rtu");
  warning.warnings = {"w"};
  send_beacon(warning);
  send_beacon(healthy("rtu"));  // resets the streak
  warning.seq = ++seq_;
  send_beacon(warning);
  EXPECT_TRUE(rejuvenated_.empty());
}

TEST_F(HealthMonitorTest, FailedSelfCheckActsImmediately) {
  make_monitor();
  core::HealthBeacon beacon = healthy("ses");
  beacon.consistency_ok = false;
  send_beacon(beacon);
  EXPECT_EQ(rejuvenated_, std::vector<std::string>{"ses"});
}

TEST_F(HealthMonitorTest, MaintenanceWindowDefersUntilOpen) {
  auto& monitor = make_monitor();
  bool window_open = false;
  monitor.set_maintenance_window([&] { return window_open; });

  core::HealthBeacon beacon = healthy("fedr");
  beacon.memory_mb = 300.0;
  send_beacon(beacon);
  EXPECT_TRUE(rejuvenated_.empty());
  EXPECT_EQ(monitor.rejuvenations_deferred(), 1u);

  window_open = true;
  sim_.run_for(Duration::seconds(15.0));  // retry tick drains the deferral
  EXPECT_EQ(rejuvenated_, std::vector<std::string>{"fedr"});
}

TEST_F(HealthMonitorTest, DeclinedRejuvenationIsRetried) {
  make_monitor();
  accept_rejuvenation_ = false;  // recoverer busy
  core::HealthBeacon beacon = healthy("fedr");
  beacon.memory_mb = 300.0;
  send_beacon(beacon);
  EXPECT_EQ(rejuvenated_.size(), 1u);  // asked once, declined
  accept_rejuvenation_ = true;
  sim_.run_for(Duration::seconds(15.0));
  EXPECT_EQ(rejuvenated_.size(), 2u);  // retried and accepted
}

TEST_F(HealthMonitorTest, HardFailureGoesToOperatorNotRejuvenation) {
  auto& monitor = make_monitor();
  std::vector<std::string> operator_alerts;
  monitor.set_hard_failure_handler(
      [&](const std::string& component) { operator_alerts.push_back(component); });
  core::HealthBeacon beacon = healthy("pbcom");
  beacon.hard_failure_suspected = true;
  beacon.memory_mb = 999.0;  // degradation must NOT shadow the hard report
  send_beacon(beacon);
  EXPECT_EQ(operator_alerts, std::vector<std::string>{"pbcom"});
  EXPECT_TRUE(rejuvenated_.empty());
  EXPECT_EQ(monitor.hard_failure_reports().size(), 1u);
  // Reported once, not per beacon.
  beacon.seq = ++seq_;
  send_beacon(beacon);
  EXPECT_EQ(operator_alerts.size(), 1u);
}

// --- Reporter + monitor + recoverer, end to end ------------------------------------

TEST(HealthIntegration, LeakyComponentGetsRejuvenatedBeforeFailing) {
  sim::Simulator sim(11);
  station::TrialSpec spec;
  spec.tree = core::MercuryTree::kTreeIV;
  spec.oracle = station::OracleKind::kHeuristic;
  station::MercuryRig rig(sim, spec);
  rig.start();

  station::StationHealthReporter reporter(rig.station(), "hm");
  // fedr leaks 8 MB/min; with a 40 MB headroom over the ~48 MB base it
  // crosses the 88 MB limit after ~5 minutes of uptime.
  core::HealthPolicy policy;
  policy.memory_limit_mb = 88.0;
  core::HealthMonitor monitor(sim, rig.station().bus(), "hm", policy);
  monitor.set_rejuvenator([&](const std::string& component) {
    return rig.rec().planned_restart(component);
  });
  rig.station().add_bus_restart_listener([&] { monitor.reattach(); });
  reporter.start();
  monitor.start();

  sim.run_for(Duration::minutes(30.0));

  // fedr got rejuvenated repeatedly (~every 5 minutes + restart time).
  EXPECT_GE(rig.rec().planned_restarts(), 4u);
  EXPECT_LE(rig.rec().planned_restarts(), 8u);
  int planned_fedr = 0;
  for (const auto& record : rig.rec().history()) {
    if (record.planned) {
      EXPECT_EQ(record.reported_component, names::kFedr);
      ++planned_fedr;
    }
  }
  EXPECT_GE(planned_fedr, 4);
  // The memory model actually resets on restart.
  EXPECT_LT(reporter.current_memory_mb(names::kFedr), 88.0 + 10.0);
  // And the station is healthy throughout.
  EXPECT_TRUE(rig.station().all_functional());
  EXPECT_TRUE(rig.rec().hard_failures().empty());
}

TEST(HealthIntegration, CrashedComponentStopsBeaconing) {
  sim::Simulator sim(12);
  station::TrialSpec spec;
  spec.tree = core::MercuryTree::kTreeIV;
  station::MercuryRig rig(sim, spec);
  rig.station().boot_instant();  // no FD/REC: nothing repairs the crash

  station::StationHealthReporter reporter(rig.station(), "hm");
  core::HealthMonitor monitor(sim, rig.station().bus(), "hm",
                              core::HealthPolicy{});
  reporter.start();
  monitor.start();

  sim.run_for(Duration::seconds(12.0));
  const auto before = monitor.latest(names::kRtu);
  ASSERT_TRUE(before.has_value());

  rig.station().inject_crash(names::kRtu);
  sim.run_for(Duration::seconds(20.0));
  // No beacons since the crash: seq frozen within one period of the crash.
  EXPECT_LE(monitor.latest(names::kRtu)->seq, before->seq + 1);
}

// --- Downlink session (§5.2 unit-level) -----------------------------------------

TEST(Downlink, CleanPassCapturesEverything) {
  sim::Simulator sim(13);
  station::StationConfig config;
  config.enable_domain_behavior = false;
  station::Station station(sim, config);
  station.boot_instant();

  orbit::Pass pass;
  pass.aos = sim.now() + Duration::seconds(10.0);
  pass.los = pass.aos + Duration::minutes(8.0);
  station::DownlinkSession session(station, pass);
  session.start();
  sim.run_until(pass.los + Duration::seconds(1.0));

  EXPECT_TRUE(session.finished());
  EXPECT_FALSE(session.report().link_broken);
  EXPECT_NEAR(session.report().capture_fraction(), 1.0, 1e-9);
  EXPECT_NEAR(session.report().offered_bits, 38'400.0 * 480.0,
              38'400.0 * 2.0);
}

TEST(Downlink, ShortOutagePausesStream) {
  sim::Simulator sim(14);
  station::StationConfig config;
  station::Station station(sim, config);
  station.boot_instant();

  orbit::Pass pass;
  pass.aos = sim.now();
  pass.los = pass.aos + Duration::minutes(8.0);
  station::DownlinkSession session(station, pass);
  session.start();

  sim.run_for(Duration::minutes(2.0));
  const auto failure = station.inject_crash(names::kRtu);
  sim.run_for(Duration::seconds(6.0));
  station.board().clear(failure);  // manual cure after 6 s
  sim.run_until(pass.los + Duration::seconds(1.0));

  const auto& report = session.report();
  EXPECT_FALSE(report.link_broken);
  EXPECT_NEAR(report.outage.to_seconds(), 6.0, 0.5);
  EXPECT_NEAR(report.capture_fraction(), 1.0 - 6.0 / 480.0, 0.01);
}

TEST(Downlink, LongOutageBreaksLink) {
  sim::Simulator sim(15);
  station::StationConfig config;
  station::Station station(sim, config);
  station.boot_instant();

  orbit::Pass pass;
  pass.aos = sim.now();
  pass.los = pass.aos + Duration::minutes(8.0);
  station::DownlinkSession session(station, pass);
  session.start();

  sim.run_for(Duration::minutes(2.0));
  const auto failure = station.inject_crash(names::kStr);
  sim.run_for(Duration::seconds(20.0));  // > 15 s threshold
  station.board().clear(failure);
  sim.run_until(pass.los + Duration::seconds(1.0));

  const auto& report = session.report();
  EXPECT_TRUE(report.link_broken);
  // Everything after the break is lost: capture ~= 2 min / 8 min.
  EXPECT_NEAR(report.capture_fraction(), 0.25, 0.02);
}

}  // namespace
}  // namespace mercury
