// Unit tests: the §7 analytic rejuvenation model (CTMC steady state), the
// restart-tree XML persistence, and the §5.2 pass schedule.
#include <gtest/gtest.h>

#include "core/mercury_trees.h"
#include "core/rejuvenation_model.h"
#include "core/tree_io.h"
#include "orbit/pass_predictor.h"
#include "station/pass_schedule.h"

namespace mercury {
namespace {

using core::RejuvenationModel;
using core::solve_rejuvenation;
using util::Duration;
using util::TimePoint;

// --- Rejuvenation CTMC -----------------------------------------------------------

TEST(RejuvenationModel, ProbabilitiesFormADistribution) {
  RejuvenationModel model;
  model.rejuvenation_rate = 1.0 / 120.0;
  const auto steady = solve_rejuvenation(model);
  EXPECT_NEAR(steady.p_fresh + steady.p_aged + steady.p_rejuvenating +
                  steady.p_repairing,
              1.0, 1e-12);
  EXPECT_GE(steady.p_fresh, 0.0);
  EXPECT_GE(steady.p_aged, 0.0);
  EXPECT_GE(steady.p_rejuvenating, 0.0);
  EXPECT_GE(steady.p_repairing, 0.0);
}

TEST(RejuvenationModel, NoPolicyMeansNoPlannedDowntime) {
  RejuvenationModel model;
  model.rejuvenation_rate = 0.0;
  const auto steady = solve_rejuvenation(model);
  EXPECT_DOUBLE_EQ(steady.planned_downtime(), 0.0);
  EXPECT_GT(steady.unplanned_downtime(), 0.0);
}

TEST(RejuvenationModel, RejuvenationTradesRepairForPlannedTime) {
  RejuvenationModel reactive;
  RejuvenationModel proactive = reactive;
  proactive.rejuvenation_rate = 1.0 / 60.0;
  const auto without = solve_rejuvenation(reactive);
  const auto with = solve_rejuvenation(proactive);
  EXPECT_LT(with.unplanned_downtime(), without.unplanned_downtime());
  EXPECT_GT(with.planned_downtime(), 0.0);
  EXPECT_LT(with.unplanned_failure_rate(proactive),
            without.unplanned_failure_rate(reactive));
}

TEST(RejuvenationModel, SteadyStateMatchesHandComputation) {
  // With no aging and no rejuvenation the chain is the classic two-state
  // availability model: A = MTTF / (MTTF + MTTR).
  RejuvenationModel model;
  model.aging_rate = 0.0;
  model.fresh_failure_rate = 1.0 / 600.0;
  model.aged_failure_rate = 1.0 / 600.0;  // unused (never aged)
  model.rejuvenation_rate = 0.0;
  model.repair_duration_s = 6.0;
  const auto steady = solve_rejuvenation(model);
  EXPECT_NEAR(steady.availability(), 600.0 / 606.0, 1e-9);
}

TEST(RejuvenationModel, OptimalRateIsZeroWithoutHazardIncrease) {
  // Memoryless component: aging does not raise the failure rate, so
  // proactive restarts only add downtime.
  RejuvenationModel model;
  model.fresh_failure_rate = 1.0 / 600.0;
  model.aged_failure_rate = 1.0 / 600.0;
  EXPECT_DOUBLE_EQ(core::optimal_rejuvenation_rate(model, 4.0), 0.0);
}

TEST(RejuvenationModel, OptimalRatePositiveForAgingComponent) {
  // Strong hazard increase, expensive unplanned downtime: rejuvenate.
  RejuvenationModel model;
  model.aging_rate = 1.0 / 300.0;
  model.fresh_failure_rate = 1.0 / 7200.0;
  model.aged_failure_rate = 1.0 / 240.0;
  const double rate = core::optimal_rejuvenation_rate(model, 4.0);
  EXPECT_GT(rate, 0.0);

  // And the optimum actually beats both extremes.
  const auto objective = [&](double r) {
    RejuvenationModel m = model;
    m.rejuvenation_rate = r;
    return solve_rejuvenation(m).weighted_downtime(4.0);
  };
  EXPECT_LT(objective(rate), objective(0.0));
  EXPECT_LE(objective(rate), objective(1.0) + 1e-12);
}

TEST(RejuvenationModel, HigherUnplannedWeightWantsMoreRejuvenation) {
  RejuvenationModel model;
  model.aging_rate = 1.0 / 300.0;
  model.fresh_failure_rate = 1.0 / 7200.0;
  model.aged_failure_rate = 1.0 / 480.0;
  const double mild = core::optimal_rejuvenation_rate(model, 1.5);
  const double harsh = core::optimal_rejuvenation_rate(model, 10.0);
  EXPECT_GE(harsh, mild);
  EXPECT_GT(harsh, 0.0);
}

// --- Restart-tree XML persistence ---------------------------------------------------

TEST(TreeIo, RoundTripsAllPublishedTrees) {
  for (core::MercuryTree kind : core::published_trees()) {
    const core::RestartTree original = core::make_mercury_tree(kind);
    const std::string xml_text = core::tree_to_xml(original);
    auto loaded = core::tree_from_xml(xml_text);
    ASSERT_TRUE(loaded.ok()) << core::to_string(kind) << ": "
                             << loaded.error().message();
    EXPECT_TRUE(original == loaded.value()) << core::to_string(kind);
  }
}

TEST(TreeIo, SerializedFormIsReadable) {
  const std::string xml_text = core::tree_to_xml(core::make_tree_v());
  EXPECT_NE(xml_text.find("<restart-tree>"), std::string::npos);
  EXPECT_NE(xml_text.find("label=\"R_pbcom+\""), std::string::npos);
  EXPECT_NE(xml_text.find("<component name=\"pbcom\"/>"), std::string::npos);
}

TEST(TreeIo, RejectsStructurallyInvalidDocuments) {
  EXPECT_FALSE(core::tree_from_xml("not xml").ok());
  EXPECT_FALSE(core::tree_from_xml("<wrong-root/>").ok());
  EXPECT_FALSE(core::tree_from_xml("<restart-tree/>").ok());
  // Duplicate component attachment.
  EXPECT_FALSE(core::tree_from_xml(R"(<restart-tree><cell label="r">
      <component name="x"/><cell label="c"><component name="x"/></cell>
      </cell></restart-tree>)")
                   .ok());
  // Empty restart group.
  EXPECT_FALSE(core::tree_from_xml(R"(<restart-tree><cell label="r">
      <component name="x"/><cell label="hollow"/></cell></restart-tree>)")
                   .ok());
  // Missing attributes.
  EXPECT_FALSE(core::tree_from_xml(
                   R"(<restart-tree><cell><component name="x"/></cell></restart-tree>)")
                   .ok());
  EXPECT_FALSE(core::tree_from_xml(
                   R"(<restart-tree><cell label="r"><component/></cell></restart-tree>)")
                   .ok());
}

TEST(TreeIo, HandEditedTreeLoadsAndDrives) {
  // An operator consolidates mbus+rtu by editing the XML; the loaded tree
  // validates and answers coverage queries.
  auto loaded = core::tree_from_xml(R"(<restart-tree>
    <cell label="R_system">
      <cell label="R_[mbus,rtu]"><component name="mbus"/><component name="rtu"/></cell>
      <cell label="R_ses"><component name="ses"/></cell>
    </cell></restart-tree>)");
  ASSERT_TRUE(loaded.ok()) << loaded.error().message();
  const auto cell = loaded.value().lowest_cell_covering("mbus");
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(loaded.value().group_components(*cell),
            (std::vector<std::string>{"mbus", "rtu"}));
}

// --- Pass schedule --------------------------------------------------------------

class PassScheduleTest : public ::testing::Test {
 protected:
  PassScheduleTest() {
    station::PassSchedule schedule;
    orbit::Pass a;
    a.aos = TimePoint::from_seconds(1000.0);
    a.los = TimePoint::from_seconds(1600.0);
    orbit::Pass b;
    b.aos = TimePoint::from_seconds(5000.0);
    b.los = TimePoint::from_seconds(5500.0);
    schedule.add_passes("sapphire", {b, a});  // out of order on purpose
    schedule_ = schedule;
  }
  station::PassSchedule schedule_;
};

TEST_F(PassScheduleTest, PassesSortedByAos) {
  ASSERT_EQ(schedule_.pass_count(), 2u);
  EXPECT_LT(schedule_.passes()[0].pass.aos, schedule_.passes()[1].pass.aos);
}

TEST_F(PassScheduleTest, InPassAndCurrent) {
  EXPECT_FALSE(schedule_.in_pass(TimePoint::from_seconds(500.0)));
  EXPECT_TRUE(schedule_.in_pass(TimePoint::from_seconds(1200.0)));
  EXPECT_FALSE(schedule_.in_pass(TimePoint::from_seconds(1600.0)));  // LOS exclusive
  const auto current = schedule_.current_pass(TimePoint::from_seconds(5100.0));
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->satellite, "sapphire");
}

TEST_F(PassScheduleTest, NextPass) {
  const auto next = schedule_.next_pass(TimePoint::from_seconds(2000.0));
  ASSERT_TRUE(next.has_value());
  EXPECT_DOUBLE_EQ(next->pass.aos.to_seconds(), 5000.0);
  // Mid-pass, "next" is the one in progress.
  EXPECT_DOUBLE_EQ(
      schedule_.next_pass(TimePoint::from_seconds(1200.0))->pass.aos.to_seconds(),
      1000.0);
  EXPECT_FALSE(schedule_.next_pass(TimePoint::from_seconds(9000.0)).has_value());
}

TEST_F(PassScheduleTest, MaintenanceWindow) {
  const Duration work = Duration::seconds(120.0);
  // During a pass: closed.
  EXPECT_FALSE(schedule_.window_open(TimePoint::from_seconds(1100.0), work));
  // 100 s before the next AOS, needing 120 s: closed.
  EXPECT_FALSE(schedule_.window_open(TimePoint::from_seconds(4900.0), work));
  // 1000 s before: open.
  EXPECT_TRUE(schedule_.window_open(TimePoint::from_seconds(4000.0), work));
  // After all passes: open.
  EXPECT_TRUE(schedule_.window_open(TimePoint::from_seconds(8000.0), work));
}

TEST_F(PassScheduleTest, PassTimeAccounting) {
  const Duration total = schedule_.pass_time_in(TimePoint::from_seconds(0.0),
                                                TimePoint::from_seconds(10'000.0));
  EXPECT_DOUBLE_EQ(total.to_seconds(), 600.0 + 500.0);
  const Duration partial = schedule_.pass_time_in(TimePoint::from_seconds(1300.0),
                                                  TimePoint::from_seconds(5200.0));
  EXPECT_DOUBLE_EQ(partial.to_seconds(), 300.0 + 200.0);
}

TEST(PassScheduleFromOrbit, BuildsFromPredictor) {
  const auto site = orbit::GroundStation::stanford();
  const orbit::Propagator satellite(
      orbit::KeplerianElements::circular_leo(800.0, 60.0));
  const auto schedule = station::PassSchedule::for_satellite(
      "sapphire", site, satellite, TimePoint::origin(),
      TimePoint::from_seconds(86400.0));
  EXPECT_GE(schedule.pass_count(), 2u);
  // §5.2: "typically about 4 per day per satellite, lasting about 15
  // minutes each" — our 800 km orbit gives the same order of magnitude.
  EXPECT_LE(schedule.pass_count(), 8u);
}

}  // namespace
}  // namespace mercury
