// ExperimentRunner (src/exp/runner.h): parallel trial execution must be
// byte-identical to the serial loop — aggregated results, merged traces,
// and the files written from them — for any MERCURY_JOBS value.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mercury_trees.h"
#include "exp/runner.h"
#include "exp/seed_stream.h"
#include "obs/trace.h"
#include "station/experiment.h"

namespace mercury::exp {
namespace {

/// RAII override of $MERCURY_JOBS (nullptr = unset), restoring on exit.
class JobsEnv {
 public:
  explicit JobsEnv(const char* value) {
    const char* old = std::getenv("MERCURY_JOBS");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv("MERCURY_JOBS", value, 1);
    } else {
      ::unsetenv("MERCURY_JOBS");
    }
  }
  ~JobsEnv() {
    if (had_) {
      ::setenv("MERCURY_JOBS", saved_.c_str(), 1);
    } else {
      ::unsetenv("MERCURY_JOBS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

// --- Runner mechanics ------------------------------------------------------

TEST(EnvJobs, ParsesPositiveIntegersOnly) {
  {
    JobsEnv env("4");
    EXPECT_EQ(env_jobs(), 4);
  }
  {
    JobsEnv env(nullptr);
    EXPECT_EQ(env_jobs(), 0);
  }
  for (const char* bad : {"0", "-2", "abc", "4x", ""}) {
    JobsEnv env(bad);
    EXPECT_EQ(env_jobs(), 0) << "MERCURY_JOBS=" << bad;
  }
}

TEST(ExperimentRunner, JobsResolutionPrefersConfigThenEnv) {
  JobsEnv env("3");
  EXPECT_EQ(ExperimentRunner(RunnerConfig{.jobs = 5}).jobs(), 5);
  EXPECT_EQ(ExperimentRunner().jobs(), 3);
  JobsEnv cleared(nullptr);
  EXPECT_EQ(ExperimentRunner().jobs(), hardware_jobs());
}

TEST(ExperimentRunner, MapReturnsResultsInIndexOrder) {
  ExperimentRunner runner(RunnerConfig{.jobs = 7});
  const std::vector<std::size_t> doubled =
      runner.map(100, [](TrialContext& ctx) { return ctx.index * 2; });
  ASSERT_EQ(doubled.size(), 100u);
  for (std::size_t i = 0; i < doubled.size(); ++i) {
    EXPECT_EQ(doubled[i], i * 2);
  }
}

TEST(ExperimentRunner, SeedsFollowTheConfiguredStream) {
  ExperimentRunner derived(RunnerConfig{.jobs = 4, .master_seed = 42});
  const SeedStream stream(42);
  const auto seeds =
      derived.map(32, [](TrialContext& ctx) { return ctx.seed; });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], stream.trial_seed(i));
  }

  ExperimentRunner plain(RunnerConfig{.jobs = 4});
  const auto indices =
      plain.map(8, [](TrialContext& ctx) { return ctx.seed; });
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i);
  }
}

TEST(ExperimentRunner, FirstExceptionByIndexIsRethrownAfterAllTrialsRun) {
  ExperimentRunner runner(RunnerConfig{.jobs = 4});
  std::atomic<int> completed{0};
  try {
    runner.run(16, [&completed](TrialContext& ctx) {
      if (ctx.index == 11) throw std::runtime_error("trial 11");
      if (ctx.index == 5) throw std::runtime_error("trial 5");
      ++completed;
    });
    FAIL() << "expected the trial exception to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "trial 5");
  }
  EXPECT_EQ(completed.load(), 14);
}

TEST(ExperimentRunner, TrialsGetPrivateRecordersOnlyUnderAnAmbientOne) {
  ExperimentRunner runner(RunnerConfig{.jobs = 4});
  // No ambient recorder on this thread: capture off.
  const auto without =
      runner.map(8, [](TrialContext& ctx) { return ctx.recorder != nullptr; });
  for (const bool captured : without) EXPECT_FALSE(captured);

  obs::TraceRecorder ambient;
  obs::ScopedRecorder scope(ambient);
  std::set<const obs::TraceRecorder*> distinct;
  std::mutex mutex;
  runner.run(8, [&](TrialContext& ctx) {
    ASSERT_NE(ctx.recorder, nullptr);
    EXPECT_EQ(obs::recorder(), ctx.recorder);  // installed on this thread
    obs::instant(util::TimePoint::origin() + util::Duration::seconds(1.0),
                 "sim", "probe", "test",
                 {{"index", std::to_string(ctx.index)}});
    const std::lock_guard<std::mutex> lock(mutex);
    distinct.insert(ctx.recorder);
  });
  EXPECT_EQ(distinct.size(), 8u);          // one private recorder per trial
  EXPECT_EQ(ambient.events().size(), 8u);  // all merged back, index order
  for (std::size_t i = 0; i < ambient.events().size(); ++i) {
    EXPECT_EQ(ambient.events()[i].arg_or("index"), std::to_string(i));
  }
}

// --- End-to-end determinism over real trials -------------------------------

std::vector<station::TrialSpec> sample_specs() {
  std::vector<station::TrialSpec> specs;
  for (const std::string component : {"ses", "str", "rtu"}) {
    for (std::uint64_t seed : {21ull, 22ull}) {
      station::TrialSpec spec;
      spec.tree = core::MercuryTree::kTreeIV;
      spec.oracle = station::OracleKind::kPerfect;
      spec.fail_component = component;
      spec.seed = seed;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

/// Results + merged trace of the sample batch under a given job count,
/// serialized to one comparable string.
std::string batch_fingerprint(const char* jobs) {
  JobsEnv env(jobs);
  obs::TraceRecorder recorder;
  std::ostringstream out;
  {
    obs::ScopedRecorder scope(recorder);
    for (const station::TrialResult& result :
         station::run_trial_batch(sample_specs())) {
      out << result.recovery.to_seconds() << "," << result.restarts << ","
          << result.escalations << ";";
    }
  }
  out << "\n";
  recorder.write_jsonl(out);
  return out.str();
}

TEST(ExperimentRunner, BatchByteIdenticalAcrossJobCounts) {
  const std::string serial = batch_fingerprint("1");
  ASSERT_NE(serial.find("rec.restart"), std::string::npos);
  EXPECT_EQ(serial, batch_fingerprint("2"));
  EXPECT_EQ(serial, batch_fingerprint("8"));
}

/// Whole file as a string; empty on error.
std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : std::string{};
}

TEST(ExperimentRunner, GoldenBatchByteIdenticalToCommittedFixture) {
  // Determinism lock-down (ISSUE 10): the sample batch's merged trace and
  // result line must reproduce the committed fixtures byte for byte, at any
  // job count. The fixtures were captured from the pre-optimization seed
  // build, so this pins the full observable contract — event timestamps,
  // (at, seq) pop order, routing, span/run rebasing in the merge — across
  // every hot-path rewrite, present and future. If a change legitimately
  // alters the trace (new events, schema change), regenerate the fixtures
  // with a serial run and say so in the PR.
  const std::string data_dir = MERCURY_TEST_DATA_DIR;
  const std::string golden_trace =
      read_file(data_dir + "/golden_batch.trace.jsonl");
  const std::string golden_results =
      read_file(data_dir + "/golden_batch.results.txt");
  ASSERT_FALSE(golden_trace.empty());
  ASSERT_FALSE(golden_results.empty());

  for (const char* jobs : {"1", "2", "8"}) {
    JobsEnv env(jobs);
    obs::TraceRecorder recorder;
    std::ostringstream results;
    {
      obs::ScopedRecorder scope(recorder);
      for (const station::TrialResult& result :
           station::run_trial_batch(sample_specs())) {
        results << result.recovery.to_seconds() << "," << result.restarts
                << "," << result.escalations << ";";
      }
    }
    results << "\n";
    std::ostringstream trace;
    recorder.write_jsonl(trace);
    EXPECT_EQ(trace.str(), golden_trace) << "MERCURY_JOBS=" << jobs;
    EXPECT_EQ(results.str(), golden_results) << "MERCURY_JOBS=" << jobs;
  }
}

TEST(ExperimentRunner, MergedTraceMatchesTheLegacySerialRecorder) {
  // The pre-runner behaviour: every trial recorded directly into one
  // ambient recorder on the calling thread. The runner's per-trial
  // capture + index-ordered merge must reproduce it byte for byte,
  // including run indices and span ids.
  obs::TraceRecorder legacy;
  {
    obs::ScopedRecorder scope(legacy);
    for (const station::TrialSpec& spec : sample_specs()) {
      station::run_trial(spec);
    }
  }
  std::ostringstream legacy_out;
  legacy.write_jsonl(legacy_out);

  JobsEnv env("8");
  obs::TraceRecorder merged;
  {
    obs::ScopedRecorder scope(merged);
    station::run_trial_batch(sample_specs());
  }
  std::ostringstream merged_out;
  merged.write_jsonl(merged_out);

  EXPECT_EQ(legacy_out.str(), merged_out.str());
  EXPECT_EQ(legacy.run(), merged.run());
}

TEST(ExperimentRunner, RunTrialsStatsIdenticalAcrossJobCounts) {
  station::TrialSpec spec;
  spec.tree = core::MercuryTree::kTreeII;
  spec.oracle = station::OracleKind::kPerfect;
  spec.fail_component = "ses";
  spec.seed = 500;

  const auto stats_at = [&spec](const char* jobs) {
    JobsEnv env(jobs);
    return station::run_trials(spec, 20);
  };
  const util::SampleStats serial = stats_at("1");
  const util::SampleStats parallel = stats_at("8");
  ASSERT_EQ(serial.count(), parallel.count());
  EXPECT_EQ(serial.samples(), parallel.samples());  // exact, order included
}

TEST(ExperimentRunner, ConcurrentTrialsNeverInterleaveTraceFileWrites) {
  // Regression for the MERCURY_TRACE_DIR race: workers must never write the
  // trace file themselves — per-trial buffers are merged on the launching
  // thread and serialized once. The written JSONL must parse back line for
  // line with exactly the events of all trials.
  JobsEnv env("8");
  obs::TraceRecorder recorder;
  {
    obs::ScopedRecorder scope(recorder);
    station::run_trial_batch(sample_specs());
  }

  std::size_t expected_events = 0;
  for (const station::TrialSpec& spec : sample_specs()) {
    expected_events += station::run_trial_traced(spec).events.size();
  }
  ASSERT_GT(expected_events, 0u);
  EXPECT_EQ(recorder.events().size(), expected_events);

  const std::string path =
      ::testing::TempDir() + "/runner_merge.trace.jsonl";
  {
    std::ofstream out(path);
    recorder.write_jsonl(out);
    ASSERT_TRUE(out.good());
  }
  std::ifstream in(path);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, expected_events);  // one object per line, none torn

  std::ifstream reparse(path);
  const std::vector<obs::TraceEvent> reread = obs::read_jsonl(reparse);
  EXPECT_EQ(reread.size(), expected_events);  // every line parses
}

}  // namespace
}  // namespace mercury::exp
