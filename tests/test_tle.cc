// Unit tests: TLE parsing and J2 secular propagation.
#include <gtest/gtest.h>

#include <cmath>

#include "orbit/pass_predictor.h"
#include "orbit/propagator.h"
#include "orbit/tle.h"

namespace mercury::orbit {
namespace {

using util::TimePoint;

// A classic ISS (ZARYA) element set (checksums valid).
constexpr const char* kIssTle =
    "ISS (ZARYA)\n"
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927\n"
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537\n";

TEST(TleChecksum, KnownLines) {
  EXPECT_EQ(tle_checksum("1 25544U 98067A   08264.51782528 -.00002182  "
                         "00000-0 -11606-4 0  292"),
            7);
  EXPECT_EQ(tle_checksum("2 25544  51.6416 247.4627 0006703 130.5360 "
                         "325.0288 15.7212539156353"),
            7);
}

TEST(TleParse, IssFields) {
  auto parsed = parse_tle(kIssTle);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  const Tle& tle = parsed.value();
  EXPECT_EQ(tle.name, "ISS (ZARYA)");
  EXPECT_EQ(tle.catalog_number, 25544);
  EXPECT_EQ(tle.epoch_year, 2008);
  EXPECT_NEAR(tle.epoch_day, 264.51782528, 1e-8);
  EXPECT_NEAR(tle.inclination_deg, 51.6416, 1e-4);
  EXPECT_NEAR(tle.raan_deg, 247.4627, 1e-4);
  EXPECT_NEAR(tle.eccentricity, 0.0006703, 1e-9);
  EXPECT_NEAR(tle.arg_perigee_deg, 130.5360, 1e-4);
  EXPECT_NEAR(tle.mean_anomaly_deg, 325.0288, 1e-4);
  EXPECT_NEAR(tle.mean_motion_rev_day, 15.72125391, 1e-8);
  EXPECT_NEAR(tle.mean_motion_dot, -0.00002182, 1e-9);
  EXPECT_NEAR(tle.bstar, -0.11606e-4, 1e-10);
  EXPECT_EQ(tle.revolution_number, 56353u);
}

TEST(TleParse, TwoLineFormWithoutName) {
  const std::string two_lines = std::string{kIssTle}.substr(12);  // drop name
  auto parsed = parse_tle(two_lines);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_TRUE(parsed.value().name.empty());
  EXPECT_EQ(parsed.value().catalog_number, 25544);
}

TEST(TleParse, SemiMajorAxisMatchesIssAltitude) {
  auto parsed = parse_tle(kIssTle);
  ASSERT_TRUE(parsed.ok());
  // 15.72 rev/day => a ~ 6720 km (~350 km altitude in 2008).
  EXPECT_NEAR(parsed.value().semi_major_axis_km(), 6720.0, 15.0);
}

TEST(TleParse, ToElementsRoundTrip) {
  auto parsed = parse_tle(kIssTle);
  ASSERT_TRUE(parsed.ok());
  const auto elements = parsed.value().to_elements(TimePoint::from_seconds(100.0));
  EXPECT_NEAR(rad_to_deg(elements.inclination_rad), 51.6416, 1e-4);
  EXPECT_NEAR(elements.epoch.to_seconds(), 100.0, 1e-12);
  // Orbital period from mean motion: 86400 / 15.72 ~ 5496 s.
  EXPECT_NEAR(elements.period().to_seconds(), 86400.0 / 15.72125391, 1.0);
}

TEST(TleParse, RejectsCorruptedInput) {
  // Flipped checksum digit.
  std::string bad = kIssTle;
  bad[bad.find("2927")] = '3';
  EXPECT_FALSE(parse_tle(bad).ok());

  EXPECT_FALSE(parse_tle("just one line").ok());
  EXPECT_FALSE(parse_tle("1 short\n2 short").ok());

  // Swapped line numbers.
  std::string swapped = kIssTle;
  const auto line1_at = swapped.find("\n1 ") + 1;
  const auto line2_at = swapped.find("\n2 ") + 1;
  std::swap(swapped[line1_at], swapped[line2_at]);
  EXPECT_FALSE(parse_tle(swapped).ok());
}

TEST(TleParse, RejectsTrailingGarbageInImpliedExponentField) {
  // The bstar field's exponent is exactly one digit; a corrupted field like
  // "1160-4x" used to parse as if the trailing byte were not there. Craft a
  // line whose bstar field carries garbage after the exponent digit, with
  // the checksum fixed up so the field parser (not the checksum) judges it.
  std::string corrupted = kIssTle;
  const auto bstar_at = corrupted.find("-11606-4");
  ASSERT_NE(bstar_at, std::string::npos);
  corrupted.replace(bstar_at, 8, " 1160-4x");
  const auto line1_at = corrupted.find("\n1 ") + 1;
  const std::string line1 = corrupted.substr(line1_at, 69);
  corrupted[line1_at + 68] = static_cast<char>('0' + tle_checksum(line1));
  const auto parsed = parse_tle(corrupted);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message().find("trailing characters"),
            std::string::npos)
      << parsed.error().message();
}

TEST(TleParse, RejectsMismatchedCatalogNumbers) {
  std::string mismatched =
      "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927\n"
      "2 25545  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563530\n";
  // Fix line 2's checksum for the altered digit before asserting the
  // catalog check (checksum is validated first).
  mismatched[mismatched.size() - 2] =
      static_cast<char>('0' + tle_checksum(mismatched.substr(
                                  mismatched.find("\n2 ") + 1)));
  EXPECT_FALSE(parse_tle(mismatched).ok());
}

// --- J2 secular propagation ----------------------------------------------------

TEST(J2Secular, RatesMatchTextbookIss) {
  // ISS-like orbit: i = 51.6 deg, ~400 km circular: nodal regression is
  // about -5 deg/day, apsidal rotation about +4 deg/day.
  const Propagator propagator(KeplerianElements::circular_leo(420.0, 51.6),
                              PerturbationModel::kJ2Secular);
  const double raan_deg_day = rad_to_deg(propagator.raan_rate_rad_s()) * 86400.0;
  const double argp_deg_day =
      rad_to_deg(propagator.arg_perigee_rate_rad_s()) * 86400.0;
  EXPECT_NEAR(raan_deg_day, -5.0, 0.3);
  EXPECT_NEAR(argp_deg_day, 3.9, 0.4);
}

TEST(J2Secular, PolarOrbitHasNoNodalRegression) {
  const Propagator propagator(KeplerianElements::circular_leo(800.0, 90.0),
                              PerturbationModel::kJ2Secular);
  EXPECT_NEAR(propagator.raan_rate_rad_s(), 0.0, 1e-12);
}

TEST(J2Secular, SunSynchronousInclinationRegressesEastward) {
  // ~98 deg retrograde LEO: RAAN rate should be positive (~+1 deg/day).
  const Propagator propagator(KeplerianElements::circular_leo(700.0, 98.0),
                              PerturbationModel::kJ2Secular);
  const double raan_deg_day = rad_to_deg(propagator.raan_rate_rad_s()) * 86400.0;
  EXPECT_GT(raan_deg_day, 0.5);
  EXPECT_LT(raan_deg_day, 1.5);
}

TEST(J2Secular, TwoBodyModelHasZeroRates) {
  const Propagator propagator(KeplerianElements::circular_leo(800.0, 60.0));
  EXPECT_EQ(propagator.raan_rate_rad_s(), 0.0);
  EXPECT_EQ(propagator.arg_perigee_rate_rad_s(), 0.0);
}

TEST(J2Secular, PassPredictionsDivergeAfterDays) {
  // The reason ses would carry J2: after a few days the regressed orbital
  // plane puts passes at visibly different times than two-body motion
  // predicts. Compare the pass sets for day 3.
  const auto elements = KeplerianElements::circular_leo(800.0, 60.0);
  const Propagator two_body(elements);
  const Propagator j2(elements, PerturbationModel::kJ2Secular);
  const GroundStation station = GroundStation::stanford();
  const TimePoint day3 = TimePoint::from_seconds(3.0 * 86400.0);
  const TimePoint day4 = TimePoint::from_seconds(4.0 * 86400.0);
  const auto passes_two_body = predict_passes(station, two_body, day3, day4);
  const auto passes_j2 = predict_passes(station, j2, day3, day4);
  ASSERT_FALSE(passes_two_body.empty());
  ASSERT_FALSE(passes_j2.empty());
  // The first pass of the day moves by minutes (plane regressed ~13 deg).
  const double shift_s = std::abs(
      (passes_j2.front().aos - passes_two_body.front().aos).to_seconds());
  EXPECT_GT(shift_s, 120.0);
}

TEST(J2Secular, PlaneDriftsOverADay) {
  const auto elements = KeplerianElements::circular_leo(420.0, 51.6);
  const Propagator two_body(elements);
  const Propagator j2(elements, PerturbationModel::kJ2Secular);
  const TimePoint later = TimePoint::from_seconds(86400.0);
  const auto delta =
      (two_body.state_at(later).position_km - j2.state_at(later).position_km)
          .norm();
  // ~5 degrees of nodal regression displaces the orbit plane by hundreds of
  // kilometres after a day.
  EXPECT_GT(delta, 100.0);
  // But the orbit energy (radius) is unchanged — J2 secular drifts angles
  // only.
  EXPECT_NEAR(j2.radius_at(later), two_body.radius_at(later), 1.0);
}

}  // namespace
}  // namespace mercury::orbit
