// Unit tests: the recoverer in isolation, against a fake ProcessControl —
// oracle dispatch, masking protocol, serialization/queueing, escalation
// bookkeeping, hard-failure parking, planned restarts, soft recovery.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bus/dedicated_link.h"
#include "core/mercury_trees.h"
#include "core/oracle.h"
#include "core/process_control.h"
#include "core/recoverer.h"
#include "sim/simulator.h"

namespace mercury::core {
namespace {

namespace names = component_names;
using util::Duration;

/// Fake process control: restarts take a configurable per-component time.
class FakeProcessControl : public ProcessControl {
 public:
  explicit FakeProcessControl(sim::Simulator& sim) : sim_(sim) {}

  std::vector<std::string> component_names() const override {
    return {"mbus", "ses", "str", "rtu", "fedr", "pbcom"};
  }

  void restart_group(const std::vector<std::string>& names,
                     std::function<void()> on_complete) override {
    groups.push_back(names);
    ++in_flight_;
    double slowest = 1.0;
    for (const auto& name : names) {
      const auto it = durations.find(name);
      slowest = std::max(slowest, it != durations.end() ? it->second : 1.0);
    }
    sim_.schedule_after(Duration::seconds(slowest), "fake-restart",
                        [this, on_complete = std::move(on_complete)] {
                          --in_flight_;
                          if (on_complete) on_complete();
                        });
  }

  bool restart_in_progress() const override { return in_flight_ > 0; }
  std::vector<std::string> restarting_now() const override { return {}; }

  bool supports_soft_recovery() const override { return soft_supported; }
  void soft_recover(const std::string& component,
                    std::function<void()> on_complete) override {
    soft_recoveries.push_back(component);
    ++in_flight_;
    sim_.schedule_after(Duration::millis(250.0), "fake-soft",
                        [this, on_complete = std::move(on_complete)] {
                          --in_flight_;
                          if (on_complete) on_complete();
                        });
  }

  std::map<std::string, double> durations;
  std::vector<std::vector<std::string>> groups;
  std::vector<std::string> soft_recoveries;
  bool soft_supported = false;

 private:
  sim::Simulator& sim_;
  int in_flight_ = 0;
};

class RecTest : public ::testing::Test {
 protected:
  RecTest() : sim_(21), link_(sim_, "fd", "rec"), process_(sim_) {
    link_.bind("fd", [this](const msg::Message& m) {
      if (m.kind != msg::Kind::kCommand) return;
      const auto components = m.body.attr_or("components", "");
      if (m.verb == "mask") masks_.push_back(components);
      if (m.verb == "unmask") unmasks_.push_back(components);
    });
  }

  void build(RecConfig config = {}) {
    rec_ = std::make_unique<Recoverer>(sim_, link_, make_tree_iv(), oracle_,
                                       process_, config);
    rec_->start();
  }

  void report(const std::string& component) {
    msg::Message m = msg::make_command("fd", "rec", ++seq_, "report-failure");
    m.body.set_attr("component", component);
    link_.send(m);
    sim_.run_for(Duration::millis(5.0));
  }

  sim::Simulator sim_;
  bus::DedicatedLink link_;
  FakeProcessControl process_;
  HeuristicOracle oracle_;
  std::unique_ptr<Recoverer> rec_;
  std::vector<std::string> masks_;
  std::vector<std::string> unmasks_;
  std::uint64_t seq_ = 0;
};

TEST_F(RecTest, RestartsTheReportedComponentsCell) {
  build();
  report(names::kRtu);
  ASSERT_EQ(process_.groups.size(), 1u);
  EXPECT_EQ(process_.groups[0], std::vector<std::string>{names::kRtu});
  EXPECT_TRUE(rec_->restart_in_progress());
  sim_.run_for(Duration::seconds(2.0));
  EXPECT_FALSE(rec_->restart_in_progress());
  ASSERT_EQ(rec_->history().size(), 1u);
  EXPECT_EQ(rec_->history()[0].escalation_level, 0);
}

TEST_F(RecTest, ConsolidatedCellRestartsPair) {
  build();
  report(names::kSes);
  ASSERT_EQ(process_.groups.size(), 1u);
  EXPECT_EQ(process_.groups[0],
            (std::vector<std::string>{names::kSes, names::kStr}));
}

TEST_F(RecTest, MaskBeforeRestartUnmaskAfter) {
  build();
  report(names::kRtu);
  ASSERT_EQ(masks_.size(), 1u);
  EXPECT_EQ(masks_[0], "rtu");
  EXPECT_TRUE(unmasks_.empty());
  sim_.run_for(Duration::seconds(2.0));
  ASSERT_EQ(unmasks_.size(), 1u);
  EXPECT_EQ(unmasks_[0], "rtu");
}

TEST_F(RecTest, DuplicateReportsIgnoredWhileInFlight) {
  build();
  report(names::kRtu);
  report(names::kRtu);
  report(names::kRtu);
  sim_.run_for(Duration::seconds(2.0));
  EXPECT_EQ(process_.groups.size(), 1u);
}

TEST_F(RecTest, ConcurrentReportsQueueAndDedupe) {
  build();
  report(names::kRtu);   // in flight (1 s)
  report(names::kMbus);  // queued
  report(names::kMbus);  // deduped
  EXPECT_EQ(process_.groups.size(), 1u);
  sim_.run_for(Duration::seconds(3.0));
  ASSERT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1], std::vector<std::string>{names::kMbus});
}

TEST_F(RecTest, QueuedReportCoveredByFinishedRestartIsDropped) {
  build();
  report(names::kSes);  // restarts {ses, str}
  report(names::kStr);  // queued, but covered by the in-flight group
  sim_.run_for(Duration::seconds(3.0));
  EXPECT_EQ(process_.groups.size(), 1u);
}

TEST_F(RecTest, PromptReFailureEscalatesToParent) {
  build();
  report(names::kPbcom);
  sim_.run_for(Duration::seconds(2.0));  // leaf restart (1 s) completes
  report(names::kPbcom);                 // within the escalation window
  ASSERT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1],
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
  EXPECT_EQ(rec_->escalations(), 1u);
}

TEST_F(RecTest, LateReFailureStartsAFreshChain) {
  RecConfig config;
  config.escalation_window = Duration::seconds(2.5);
  build(config);
  report(names::kPbcom);
  sim_.run_for(Duration::seconds(2.0));  // completes at ~1 s
  sim_.run_for(Duration::seconds(3.0));  // well past the window
  report(names::kPbcom);
  ASSERT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1], std::vector<std::string>{names::kPbcom});
  EXPECT_EQ(rec_->escalations(), 0u);
}

TEST_F(RecTest, PersistentFailureClimbsToRootThenParks) {
  RecConfig config;
  config.max_root_restarts = 2;
  build(config);
  // pbcom keeps failing promptly after every restart.
  for (int i = 0; i < 8; ++i) {
    report(names::kPbcom);
    sim_.run_for(Duration::seconds(1.5));
  }
  // Chain: leaf -> joint -> root -> root -> parked.
  int roots = 0;
  for (const auto& group : process_.groups) roots += group.size() == 6u;
  EXPECT_EQ(roots, 2);
  ASSERT_EQ(rec_->hard_failures().size(), 1u);
  EXPECT_EQ(rec_->hard_failures()[0], names::kPbcom);
  const auto actions = process_.groups.size();
  report(names::kPbcom);  // parked: ignored
  EXPECT_EQ(process_.groups.size(), actions);
}

TEST_F(RecTest, UnrelatedFailureAfterRootRestartDoesNotPark) {
  build();  // default max_root_restarts = 2
  // Drive rtu's chain to a root restart.
  report(names::kRtu);
  sim_.run_for(Duration::seconds(1.5));
  report(names::kRtu);  // escalate -> root
  sim_.run_for(Duration::seconds(1.5));
  // A *different* component fails right after the root restart. Within the
  // escalation window it is indistinguishable from persistence (the paper
  // escalates on "another failure" too), so it rides the chain to a root
  // restart — but the per-component history must not let rtu's chain get
  // ses parked.
  report(names::kSes);
  sim_.run_for(Duration::seconds(1.5));
  EXPECT_TRUE(rec_->hard_failures().empty());
  // And rtu's own history is per-component too: a fresh rtu failure later
  // starts at its leaf, not in jail.
  sim_.run_for(Duration::seconds(5.0));
  report(names::kRtu);
  sim_.run_for(Duration::millis(10.0));
  EXPECT_EQ(process_.groups.back(), std::vector<std::string>{names::kRtu});
  EXPECT_TRUE(rec_->hard_failures().empty());
}

TEST_F(RecTest, CrashedRecIgnoresReports) {
  build();
  rec_->crash();
  report(names::kRtu);
  sim_.run_for(Duration::seconds(2.0));
  EXPECT_TRUE(process_.groups.empty());
  rec_->restart_complete();
  report(names::kRtu);
  sim_.run_for(Duration::seconds(2.0));
  EXPECT_EQ(process_.groups.size(), 1u);
}

TEST_F(RecTest, PlannedRestartUsesMinimalCellAndYieldsToReactive) {
  build();
  EXPECT_TRUE(rec_->planned_restart(names::kFedr));
  ASSERT_EQ(process_.groups.size(), 1u);
  EXPECT_EQ(process_.groups[0], std::vector<std::string>{names::kFedr});
  // Busy: a second planned request is declined, not queued.
  EXPECT_FALSE(rec_->planned_restart(names::kRtu));
  sim_.run_for(Duration::seconds(2.0));
  ASSERT_EQ(rec_->history().size(), 1u);
  EXPECT_TRUE(rec_->history()[0].planned);
  EXPECT_EQ(rec_->planned_restarts(), 1u);
}

TEST_F(RecTest, PlannedRestartRejectsUnknownComponent) {
  build();
  EXPECT_FALSE(rec_->planned_restart("no-such-component"));
}

TEST_F(RecTest, SoftRecoveryRungRunsFirstThenRestart) {
  RecConfig config;
  config.enable_soft_recovery = true;
  process_.soft_supported = true;
  build(config);

  report(names::kRtu);
  ASSERT_EQ(process_.soft_recoveries.size(), 1u);
  EXPECT_TRUE(process_.groups.empty());
  sim_.run_for(Duration::seconds(1.0));
  ASSERT_EQ(rec_->history().size(), 1u);
  EXPECT_TRUE(rec_->history()[0].soft);

  // The failure persists: next report climbs to the restart rung.
  report(names::kRtu);
  ASSERT_EQ(process_.groups.size(), 1u);
  EXPECT_EQ(process_.groups[0], std::vector<std::string>{names::kRtu});
  EXPECT_EQ(rec_->soft_recoveries(), 1u);
}

TEST_F(RecTest, SoftRungSkippedWithoutProcessSupport) {
  RecConfig config;
  config.enable_soft_recovery = true;
  process_.soft_supported = false;
  build(config);
  report(names::kRtu);
  EXPECT_TRUE(process_.soft_recoveries.empty());
  EXPECT_EQ(process_.groups.size(), 1u);
}

// --- Restart-path hardening (ISSUE 2) ---------------------------------------

TEST_F(RecTest, RestartDeadlineAbortsHungRestartAndEscalates) {
  RecConfig config;
  config.restart_deadline = Duration::seconds(2.0);
  build(config);
  process_.durations[names::kRtu] = 100.0;  // rtu's startup hangs

  report(names::kRtu);
  ASSERT_EQ(process_.groups.size(), 1u);
  sim_.run_for(Duration::seconds(3.0));
  // The deadline fired and escalated to the parent (root) cell; the hung
  // leaf action never produced a history record.
  EXPECT_EQ(rec_->restart_timeouts(), 1u);
  EXPECT_EQ(rec_->escalations(), 1u);
  ASSERT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1].size(), 6u);
}

TEST_F(RecTest, RepeatedRestartTimeoutsParkTheChain) {
  RecConfig config;
  config.restart_deadline = Duration::seconds(2.0);
  config.max_root_restarts = 2;
  build(config);
  process_.durations[names::kRtu] = 100.0;  // every restart of rtu hangs

  report(names::kRtu);
  sim_.run_for(Duration::seconds(10.0));
  // leaf timeout -> root timeout -> root timeout -> parked.
  EXPECT_EQ(rec_->restart_timeouts(), 3u);
  ASSERT_EQ(rec_->hard_failures().size(), 1u);
  EXPECT_EQ(rec_->hard_failures()[0], names::kRtu);
  EXPECT_EQ(rec_->parked(), std::set<std::string>{names::kRtu});
  // Parked means permanently masked: no unmask for rtu was ever sent after
  // the parking, and further reports are ignored.
  const auto actions = process_.groups.size();
  report(names::kRtu);
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_EQ(process_.groups.size(), actions);
}

TEST_F(RecTest, AttemptBudgetParksWithoutRootClimb) {
  RecConfig config;
  config.restart_deadline = Duration::seconds(2.0);
  config.max_attempts_per_chain = 2;
  config.max_root_restarts = 100;  // budget must park first
  build(config);
  process_.durations[names::kRtu] = 100.0;

  report(names::kRtu);
  sim_.run_for(Duration::seconds(10.0));
  EXPECT_EQ(rec_->parked(), std::set<std::string>{names::kRtu});
  // Two attempts consumed (leaf, then the escalated retry), then parked.
  EXPECT_EQ(process_.groups.size(), 2u);
}

TEST_F(RecTest, BackoffPacesSameCellRestarts) {
  RecConfig config;
  config.escalation_window = Duration::millis(500.0);  // re-reports are fresh
  config.backoff_base = Duration::seconds(4.0);
  build(config);

  report(names::kRtu);
  sim_.run_for(Duration::seconds(2.0));  // first restart completes at ~1 s
  report(names::kRtu);                   // fresh chain, same cell, streak = 1
  // Attempt 2 may start no earlier than 4 s after attempt 1 began: the
  // action is current (serialization holds) but the kill/start waits.
  EXPECT_EQ(process_.groups.size(), 1u);
  EXPECT_TRUE(rec_->restart_in_progress());
  EXPECT_EQ(rec_->backoffs_applied(), 1u);
  sim_.run_for(Duration::seconds(2.5));  // past t = 4.001
  EXPECT_EQ(process_.groups.size(), 2u);
}

TEST_F(RecTest, BackoffStreakDecays) {
  RecConfig config;
  config.escalation_window = Duration::millis(500.0);
  config.backoff_base = Duration::seconds(4.0);
  config.backoff_decay = Duration::seconds(5.0);
  build(config);

  report(names::kRtu);
  sim_.run_for(Duration::seconds(7.0));  // idle past the decay window
  report(names::kRtu);
  // The streak was forgotten: no delay, restart dispatched immediately.
  EXPECT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(rec_->backoffs_applied(), 0u);
}

// The escalation window edge, pinned exactly. These use a zero-latency link
// and exactly representable times (restart completes at t = 1.0, window
// 2.5 s) so the boundary comparison is exact in double arithmetic.
class RecWindowEdgeTest : public ::testing::Test {
 protected:
  RecWindowEdgeTest()
      : sim_(7), link_(sim_, "fd", "rec", Duration::zero()), process_(sim_) {
    RecConfig config;
    config.escalation_window = Duration::seconds(2.5);
    rec_ = std::make_unique<Recoverer>(sim_, link_, make_tree_iv(), oracle_,
                                       process_, config);
    rec_->start();
  }

  void report(const std::string& component) {
    msg::Message m = msg::make_command("fd", "rec", ++seq_, "report-failure");
    m.body.set_attr("component", component);
    link_.send(m);
  }

  sim::Simulator sim_;
  bus::DedicatedLink link_;
  FakeProcessControl process_;
  HeuristicOracle oracle_;
  std::unique_ptr<Recoverer> rec_;
  std::uint64_t seq_ = 0;
};

TEST_F(RecWindowEdgeTest, ReportAtExactWindowEdgeStartsFreshChain) {
  report(names::kPbcom);                 // delivered at t = 0
  sim_.run_for(Duration::seconds(3.5));  // restart completed at exactly 1.0
  report(names::kPbcom);  // delivered at 3.5 = complete + window, exactly
  sim_.run_for(Duration::millis(5.0));
  // The window is exclusive (elapsed < window escalates): an elapsed time of
  // exactly the window is a fresh chain at the leaf, not an escalation.
  ASSERT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1], std::vector<std::string>{names::kPbcom});
  EXPECT_EQ(rec_->escalations(), 0u);
}

TEST_F(RecWindowEdgeTest, ReportJustInsideWindowEscalates) {
  report(names::kPbcom);
  sim_.run_for(Duration::seconds(3.375));  // complete at 1.0; 2.375 < 2.5
  report(names::kPbcom);
  sim_.run_for(Duration::millis(5.0));
  ASSERT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1],
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
  EXPECT_EQ(rec_->escalations(), 1u);
}

// --- Parallel recovery: DAG dispatch (ISSUE 8) ------------------------------

TEST_F(RecTest, DagDispatchesDisjointCellsConcurrently) {
  RecConfig config;
  config.dispatch = DispatchMode::kDag;
  build(config);
  report(names::kRtu);    // leaf cell {rtu}
  report(names::kPbcom);  // leaf cell {pbcom}: disjoint, dispatches now
  EXPECT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(rec_->restarts_in_flight(), 2u);
  sim_.run_for(Duration::seconds(2.0));
  EXPECT_FALSE(rec_->restart_in_progress());
  EXPECT_EQ(rec_->history().size(), 2u);
  EXPECT_EQ(rec_->max_concurrent_restarts(), 2u);
  EXPECT_EQ(rec_->absorbed_restarts(), 0u);
}

TEST_F(RecTest, SerialDispatchStillQueuesDisjointCells) {
  build();  // default kSerial
  report(names::kRtu);
  report(names::kPbcom);
  EXPECT_EQ(process_.groups.size(), 1u);
  EXPECT_EQ(rec_->max_concurrent_restarts(), 1u);
  sim_.run_for(Duration::seconds(3.0));
  EXPECT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(rec_->max_concurrent_restarts(), 1u);
}

TEST_F(RecTest, DagEscalationAbsorbsConflictingDescendantAction) {
  RecConfig config;
  config.dispatch = DispatchMode::kDag;
  build(config);
  process_.durations[names::kRtu] = 20.0;  // rtu's restart stays in flight

  report(names::kRtu);    // in flight until ~20 s
  report(names::kPbcom);  // concurrent leaf restart, done at ~1 s
  sim_.run_for(Duration::seconds(2.0));
  report(names::kPbcom);  // escalates to {fedr,pbcom}: still disjoint from rtu
  ASSERT_EQ(process_.groups.size(), 3u);
  EXPECT_EQ(process_.groups[2],
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
  sim_.run_for(Duration::seconds(2.0));
  report(names::kPbcom);  // escalates to root: absorbs the in-flight rtu action
  EXPECT_EQ(rec_->absorbed_restarts(), 1u);
  ASSERT_EQ(process_.groups.size(), 4u);
  EXPECT_EQ(process_.groups[3].size(), 6u);
  // Exactly one action remains (the root restart); the absorbed rtu action's
  // eventual completion callback must be discarded as stale.
  EXPECT_EQ(rec_->restarts_in_flight(), 1u);
  sim_.run_for(Duration::seconds(25.0));
  EXPECT_FALSE(rec_->restart_in_progress());
}

TEST_F(RecTest, DagQueuedConflictDispatchesAfterBlockerCompletes) {
  // Tree V: pbcom's lowest cell R_pbcom+ covers {fedr,pbcom} and contains
  // R_fedr — a pbcom report while fedr restarts is the ancestor/descendant
  // overlap the DAG must serialize.
  RecConfig config;
  config.dispatch = DispatchMode::kDag;
  rec_ = std::make_unique<Recoverer>(sim_, link_, make_tree_v(), oracle_,
                                     process_, config);
  rec_->start();
  process_.durations[names::kFedr] = 3.0;

  report(names::kFedr);   // R_fedr in flight until ~3 s
  report(names::kPbcom);  // cell R_pbcom+ conflicts: queued, not dispatched
  EXPECT_EQ(process_.groups.size(), 1u);
  EXPECT_EQ(rec_->restarts_in_flight(), 1u);
  sim_.run_for(Duration::seconds(4.0));  // fedr completes; queue drains
  ASSERT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1],
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
  EXPECT_EQ(rec_->max_concurrent_restarts(), 1u);
}

TEST_F(RecTest, OnDemandQueueAlsoSerializesConflicts) {
  RecConfig config;
  config.dispatch = DispatchMode::kOnDemand;
  rec_ = std::make_unique<Recoverer>(sim_, link_, make_tree_v(), oracle_,
                                     process_, config);
  rec_->start();
  process_.durations[names::kFedr] = 3.0;

  report(names::kFedr);
  report(names::kPbcom);  // conflicts with the in-flight R_fedr: queued
  report(names::kRtu);    // disjoint: dispatches immediately past the queue
  EXPECT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(rec_->restarts_in_flight(), 2u);
  sim_.run_for(Duration::seconds(5.0));
  ASSERT_EQ(process_.groups.size(), 3u);
  EXPECT_EQ(process_.groups[2],
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
}

// --- Traffic-driven on-demand recovery (ISSUE 9) -----------------------------

TEST_F(RecTest, TrafficDrivenQueuesEvenDisjointCellsLazily) {
  RecConfig config;
  config.dispatch = DispatchMode::kOnDemand;
  config.traffic_driven = true;
  config.lazy_drain_interval = Duration::seconds(60.0);  // keep lazy out
  build(config);

  report(names::kRtu);    // first action dispatches: the minimal phase
  report(names::kPbcom);  // disjoint — but under traffic mode it parks
  report(names::kSes);
  EXPECT_EQ(process_.groups.size(), 1u);
  EXPECT_EQ(rec_->restarts_in_flight(), 1u);

  // A client request touches pbcom: exactly that action is promoted and,
  // with no conflicting in-flight cell, dispatches immediately.
  EXPECT_EQ(rec_->touch(names::kPbcom), TouchResult::kPromoted);
  ASSERT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1], std::vector<std::string>{names::kPbcom});
  EXPECT_EQ(rec_->touch_promotions(), 1u);
  // ses was not touched: it stays parked in the queue.
  sim_.run_for(Duration::seconds(3.0));
  EXPECT_EQ(process_.groups.size(), 2u);
}

TEST_F(RecTest, TouchReportsInFlightParkedAndIdleStates) {
  RecConfig config;
  config.dispatch = DispatchMode::kOnDemand;
  config.traffic_driven = true;
  build(config);

  EXPECT_EQ(rec_->touch(names::kRtu), TouchResult::kIdle);  // nothing queued
  report(names::kRtu);
  EXPECT_EQ(rec_->touch(names::kRtu), TouchResult::kRestarting);
  sim_.run_for(Duration::seconds(2.0));
  EXPECT_EQ(rec_->touch(names::kRtu), TouchResult::kIdle);
  EXPECT_EQ(rec_->touch_promotions(), 0u);
}

TEST_F(RecTest, TouchOfParkedComponentSignalsRejection) {
  RecConfig config;
  config.dispatch = DispatchMode::kOnDemand;
  config.traffic_driven = true;
  config.restart_deadline = Duration::seconds(2.0);
  config.max_attempts_per_chain = 2;
  config.max_root_restarts = 100;
  build(config);
  process_.durations[names::kRtu] = 100.0;  // every rtu restart hangs

  report(names::kRtu);
  sim_.run_for(Duration::seconds(10.0));
  ASSERT_EQ(rec_->parked(), std::set<std::string>{names::kRtu});
  // A request touching the parked cell gets a clean rejection signal; no
  // restart is spawned for it.
  const auto actions = process_.groups.size();
  EXPECT_EQ(rec_->touch(names::kRtu), TouchResult::kParked);
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_EQ(process_.groups.size(), actions);
}

TEST_F(RecTest, PromotedConflictHoldsUntilAncestorOrderClears) {
  // Tree V: pbcom's lowest cell covers fedr. A touch while R_fedr is in
  // flight promotes pbcom to the queue front but must NOT dispatch until
  // the descendant action completes — promotion never breaks DAG order.
  RecConfig config;
  config.dispatch = DispatchMode::kOnDemand;
  config.traffic_driven = true;
  config.lazy_drain_interval = Duration::seconds(60.0);
  rec_ = std::make_unique<Recoverer>(sim_, link_, make_tree_v(), oracle_,
                                     process_, config);
  rec_->start();
  process_.durations[names::kFedr] = 3.0;

  report(names::kFedr);
  report(names::kPbcom);  // parks behind the traffic gate
  EXPECT_EQ(rec_->touch(names::kPbcom), TouchResult::kPromoted);
  EXPECT_EQ(process_.groups.size(), 1u);  // conflict: held at the front
  sim_.run_for(Duration::seconds(4.0));   // fedr completes; drain fires
  ASSERT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1],
            (std::vector<std::string>{names::kFedr, names::kPbcom}));
  EXPECT_EQ(rec_->max_concurrent_restarts(), 1u);
}

TEST_F(RecTest, LazyDrainTricklesUntouchedCellsOnePerInterval) {
  RecConfig config;
  config.dispatch = DispatchMode::kOnDemand;
  config.traffic_driven = true;
  config.lazy_drain_interval = Duration::millis(500.0);
  build(config);

  report(names::kRtu);    // in flight for 1 s
  report(names::kPbcom);  // parked
  report(names::kMbus);   // parked behind pbcom
  EXPECT_EQ(process_.groups.size(), 1u);
  sim_.run_for(Duration::millis(600.0));  // first lazy tick
  EXPECT_EQ(process_.groups.size(), 2u);
  EXPECT_EQ(process_.groups[1], std::vector<std::string>{names::kPbcom});
  sim_.run_for(Duration::millis(500.0));  // second tick drains mbus
  EXPECT_EQ(process_.groups.size(), 3u);
  EXPECT_EQ(rec_->lazy_drains(), 2u);
  EXPECT_EQ(rec_->touch_promotions(), 0u);
}

TEST_F(RecTest, TrafficGateRequiresOnDemandDispatch) {
  // traffic_driven without on-demand dispatch is inert: serial default
  // behaviour is preserved and touch is a no-op.
  RecConfig config;
  config.traffic_driven = true;  // dispatch stays kSerial
  build(config);
  report(names::kRtu);
  report(names::kPbcom);
  EXPECT_EQ(rec_->touch(names::kPbcom), TouchResult::kIdle);
  EXPECT_EQ(process_.groups.size(), 1u);
  sim_.run_for(Duration::seconds(3.0));
  EXPECT_EQ(process_.groups.size(), 2u);  // plain serial queue drain
  EXPECT_EQ(rec_->touch_promotions(), 0u);
  EXPECT_EQ(rec_->lazy_drains(), 0u);
}

// Satellite regression (ISSUE 8): queued-report dedup/drop must key on the
// failure epoch, not the component name alone — a report queued *after* a
// covering restart completed is new evidence and must dispatch even though
// a stale completion for the same component exists.
TEST_F(RecTest, QueuedReportSurvivesStaleCompletionOfSameComponent) {
  RecConfig config;
  config.escalation_window = Duration::millis(500.0);
  config.restart_deadline = Duration::seconds(2.0);
  config.max_attempts_per_chain = 1;
  build(config);
  process_.durations[names::kRtu] = 100.0;  // rtu's restart hangs

  report(names::kSes);                   // restarts {ses,str}, done at ~1 s
  sim_.run_for(Duration::seconds(1.5));  // completion recorded for ses
  report(names::kRtu);                   // hangs; serializes everything after
  report(names::kSes);                   // queued: fresh failure, current epoch
  EXPECT_EQ(process_.groups.size(), 2u);
  // rtu's deadline fires, its chain's budget is exhausted, rtu parks. The
  // park's queue drain must dispatch the queued ses report — dropping it
  // against the pre-queue {ses,str} completion loses a live failure.
  sim_.run_for(Duration::seconds(3.0));
  EXPECT_EQ(rec_->parked(), std::set<std::string>{names::kRtu});
  ASSERT_EQ(process_.groups.size(), 3u);
  EXPECT_EQ(process_.groups[2],
            (std::vector<std::string>{names::kSes, names::kStr}));
}

TEST_F(RecTest, HistoryRecordsAreComplete) {
  build();
  report(names::kSes);
  sim_.run_for(Duration::seconds(2.0));
  ASSERT_EQ(rec_->history().size(), 1u);
  const RecoveryRecord& record = rec_->history()[0];
  EXPECT_EQ(record.reported_component, names::kSes);
  EXPECT_EQ(record.restarted, (std::vector<std::string>{names::kSes, names::kStr}));
  EXPECT_FALSE(record.planned);
  EXPECT_FALSE(record.soft);
  EXPECT_GT(record.complete_time, record.report_time);
}

}  // namespace
}  // namespace mercury::core
