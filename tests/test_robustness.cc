// Robustness sweeps: randomized failure storms against the full stack.
//
// Property under test: with A_cure holding (every injected failure is
// restart-curable and covered by the tree), the FD/REC machinery always
// returns the station to full function — no deadlocks, no restart storms,
// no spurious hard failures — regardless of which components fail, when,
// or how failures overlap.
#include <gtest/gtest.h>

#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/experiment.h"
#include "station/fault_injector.h"

namespace mercury::station {
namespace {

namespace names = core::component_names;
using core::MercuryTree;
using util::Duration;

struct StormCase {
  std::uint64_t seed;
  MercuryTree tree;
  OracleKind oracle;

  friend std::ostream& operator<<(std::ostream& os, const StormCase& c) {
    return os << "seed" << c.seed << "_tree" << core::to_string(c.tree) << "_"
              << to_string(c.oracle);
  }
};

class FailureStorm : public ::testing::TestWithParam<StormCase> {};

TEST_P(FailureStorm, SystemAlwaysRecovers) {
  const StormCase c = GetParam();
  sim::Simulator sim(c.seed);
  TrialSpec spec;
  spec.tree = c.tree;
  spec.oracle = c.oracle;
  MercuryRig rig(sim, spec);
  rig.start();
  sim.run_for(Duration::seconds(3.0));

  util::Rng storm = sim.rng().fork("storm");
  const auto components = rig.station().component_names();
  int recoveries_verified = 0;

  for (int round = 0; round < 12; ++round) {
    // Distinct incidents: leave more than the escalation window between a
    // completed recovery and the next burst (the paper's regime is
    // MTTF >> MTTR; back-to-back independent crashes of the same component
    // within a couple of seconds are indistinguishable from persistence,
    // by design).
    sim.run_for(Duration::seconds(6.0));
    // 1-3 overlapping failures at random components and offsets.
    const int burst = static_cast<int>(storm.uniform_int(1, 3));
    for (int i = 0; i < burst; ++i) {
      sim.run_for(Duration::seconds(storm.uniform(0.0, 3.0)));
      const auto& victim = components[static_cast<std::size_t>(
          storm.uniform_int(0, static_cast<std::int64_t>(components.size()) - 1))];
      if (storm.chance(0.2) &&
          rig.station().config().split_fedrcom) {
        rig.station().inject_joint_fedr_pbcom();
      } else {
        rig.station().inject_crash(victim);
      }
    }
    // Everything must settle within two minutes of virtual time.
    const auto deadline = sim.now() + Duration::seconds(120.0);
    while (sim.now() < deadline) {
      if (rig.station().all_functional() && !rig.rec().restart_in_progress()) {
        break;
      }
      ASSERT_TRUE(sim.step());
    }
    ASSERT_TRUE(rig.station().all_functional())
        << "round " << round << " did not settle";
    ASSERT_TRUE(rig.rec().hard_failures().empty());
    ++recoveries_verified;
  }
  EXPECT_EQ(recoveries_verified, 12);

  // No restart storm: the action count is commensurate with the failure
  // count (every action is traceable to an injected or induced failure).
  EXPECT_LE(rig.rec().restarts_executed(),
            rig.station().board().total_injected() * 2 + 5);
}

std::vector<StormCase> storm_cases() {
  std::vector<StormCase> cases;
  std::uint64_t seed = 1000;
  for (MercuryTree tree :
       {MercuryTree::kTreeII, MercuryTree::kTreeIII, MercuryTree::kTreeIV,
        MercuryTree::kTreeV}) {
    for (OracleKind oracle : {OracleKind::kPerfect, OracleKind::kHeuristic,
                              OracleKind::kFaultyPerfect}) {
      cases.push_back(StormCase{seed += 17, tree, oracle});
    }
  }
  // Tree I only with perfect/heuristic (all oracles degenerate to the root).
  cases.push_back(StormCase{2'000, MercuryTree::kTreeI, OracleKind::kHeuristic});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Storms, FailureStorm, ::testing::ValuesIn(storm_cases()));

TEST(LongHaul, DayUnderBackgroundFailuresStaysAvailable) {
  sim::Simulator sim(99);
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeV;
  spec.oracle = OracleKind::kHeuristic;
  MercuryRig rig(sim, spec);
  rig.start();

  InjectorConfig injector_config;
  FaultInjector injector(rig.station(), injector_config);
  injector.start();

  double downtime = 0.0;
  sim::PeriodicTask sampler(sim, "sampler", Duration::millis(500.0), [&] {
    if (!rig.station().all_functional()) downtime += 0.5;
  });
  sampler.start();

  sim.run_for(Duration::days(1.0));

  // fedr fails ~every 11 minutes; expect ~130 failures and high uptime.
  EXPECT_GT(injector.total_injected(), 80u);
  EXPECT_TRUE(rig.rec().hard_failures().empty());
  const double availability = 1.0 - downtime / 86400.0;
  EXPECT_GT(availability, 0.98);
  // And the station is healthy at the end.
  const auto deadline = sim.now() + Duration::seconds(120.0);
  while (sim.now() < deadline && !rig.station().all_functional()) sim.step();
  EXPECT_TRUE(rig.station().all_functional());
}

TEST(LongHaul, LearningOracleSurvivesADay) {
  sim::Simulator sim(101);
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kLearning;
  MercuryRig rig(sim, spec);
  rig.start();

  InjectorConfig injector_config;
  injector_config.pbcom_joint_fraction = 0.5;
  FaultInjector injector(rig.station(), injector_config);
  injector.start();

  sim.run_for(Duration::days(1.0));
  EXPECT_TRUE(rig.rec().hard_failures().empty());
  EXPECT_GT(rig.rec().restarts_executed(), 50u);
}

}  // namespace
}  // namespace mercury::station
