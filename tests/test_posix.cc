// Integration tests: real-process supervision (the POSIX backend).
//
// These spawn actual child processes (the mercury_worker binary) and use
// wall-clock time, so timings are kept small: worker startups 50-200 ms,
// ping period 60 ms.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/restart_tree.h"
#include "posix/checkpoint_file.h"
#include "posix/child_process.h"
#include "posix/supervisor.h"
#include "util/rng.h"

#ifndef MERCURY_WORKER_BIN
#error "MERCURY_WORKER_BIN must point at the mercury_worker binary"
#endif

namespace mercury::posix {
namespace {

const std::string kWorker = MERCURY_WORKER_BIN;

// --- ChildProcess ------------------------------------------------------------

TEST(ChildProcess, SpawnReadyPingPong) {
  auto spawned =
      ChildProcess::spawn({kWorker, "--name", "w", "--startup-ms", "30"});
  ASSERT_TRUE(spawned.ok()) << spawned.error().message();
  ChildProcess child = std::move(spawned).value();
  EXPECT_GT(child.pid(), 0);
  EXPECT_TRUE(child.running());

  // Wait for READY.
  std::string ready;
  for (int i = 0; i < 100 && ready.empty(); ++i) {
    usleep(10'000);
    for (const auto& line : child.read_lines()) {
      if (line == "READY w") ready = line;
    }
  }
  EXPECT_EQ(ready, "READY w");

  ASSERT_TRUE(child.write_line("PING 7"));
  std::string pong;
  for (int i = 0; i < 100 && pong.empty(); ++i) {
    usleep(5'000);
    for (const auto& line : child.read_lines()) {
      if (line == "PONG 7") pong = line;
    }
  }
  EXPECT_EQ(pong, "PONG 7");
}

TEST(ChildProcess, KillHardReaps) {
  auto spawned =
      ChildProcess::spawn({kWorker, "--name", "w", "--startup-ms", "10"});
  ASSERT_TRUE(spawned.ok());
  ChildProcess child = std::move(spawned).value();
  child.kill_hard();
  EXPECT_FALSE(child.running());
  child.kill_hard();  // idempotent
}

TEST(ChildProcess, SpawnFailureReportsError) {
  auto spawned = ChildProcess::spawn({"/no/such/binary/anywhere"});
  if (spawned.ok()) {
    // exec fails after fork: the child exits 127 almost immediately.
    ChildProcess child = std::move(spawned).value();
    usleep(50'000);
    EXPECT_FALSE(child.running());
  }
}

TEST(ChildProcess, WedgedWorkerStopsAnswering) {
  auto spawned =
      ChildProcess::spawn({kWorker, "--name", "w", "--startup-ms", "10"});
  ASSERT_TRUE(spawned.ok());
  ChildProcess child = std::move(spawned).value();
  usleep(100'000);
  child.read_lines();  // drain READY
  ASSERT_TRUE(child.write_line("WEDGE"));
  usleep(20'000);
  ASSERT_TRUE(child.write_line("PING 1"));
  usleep(100'000);
  EXPECT_TRUE(child.read_lines().empty());
  EXPECT_TRUE(child.running());  // fail-silent, not dead
}

// --- PosixSupervisor -----------------------------------------------------------

WorkerSpec quick_worker(const std::string& name, int startup_ms,
                        int wedge_after = -1) {
  WorkerSpec spec;
  spec.name = name;
  spec.argv = {kWorker, "--name", name, "--startup-ms",
               std::to_string(startup_ms)};
  if (wedge_after >= 0) {
    spec.argv.push_back("--wedge-after");
    spec.argv.push_back(std::to_string(wedge_after));
  }
  spec.startup_timeout = Millis{2000};
  return spec;
}

SupervisorConfig quick_config() {
  SupervisorConfig config;
  config.ping_period = Millis{60};
  config.ping_timeout = Millis{50};
  config.escalation_window = Millis{1000};
  return config;
}

core::RestartTree pair_and_leaf_tree() {
  core::RestartTree tree("R_demo");
  const auto pair = tree.add_cell(tree.root(), "R_[a,b]");
  tree.attach_component(pair, "a");
  tree.attach_component(pair, "b");
  const auto c = tree.add_cell(tree.root(), "R_c");
  tree.attach_component(c, "c");
  return tree;
}

TEST(PosixSupervisor, StartAllBecomesReady) {
  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 50), quick_worker("b", 60), quick_worker("c", 70)},
      quick_config());
  ASSERT_TRUE(supervisor.start_all().ok());
  EXPECT_TRUE(supervisor.all_up());
  supervisor.run_for(Millis{300});
  EXPECT_GT(supervisor.pongs_received(), 6u);
  EXPECT_TRUE(supervisor.history().empty());  // no failures yet
}

TEST(PosixSupervisor, RecoversFromExternalSigkill) {
  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 50), quick_worker("b", 60), quick_worker("c", 70)},
      quick_config());
  ASSERT_TRUE(supervisor.start_all().ok());

  supervisor.kill_worker("c");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.all_up() && !supervisor.history().empty(); },
      Millis{3000}));
  ASSERT_EQ(supervisor.history().size(), 1u);
  EXPECT_EQ(supervisor.history()[0].reported_worker, "c");
  EXPECT_EQ(supervisor.history()[0].restarted, std::vector<std::string>{"c"});
  EXPECT_EQ(supervisor.history()[0].escalation_level, 0);
  // Downtime ~ detection (<=110 ms) + startup (70 ms) + loop slack.
  EXPECT_LT(supervisor.history()[0].downtime.count(), 1000);
}

TEST(PosixSupervisor, ConsolidatedCellRestartsBothWorkers) {
  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 50), quick_worker("b", 60), quick_worker("c", 70)},
      quick_config());
  ASSERT_TRUE(supervisor.start_all().ok());

  supervisor.kill_worker("a");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.all_up() && !supervisor.history().empty(); },
      Millis{3000}));
  ASSERT_EQ(supervisor.history().size(), 1u);
  EXPECT_EQ(supervisor.history()[0].restarted,
            (std::vector<std::string>{"a", "b"}));
}

TEST(PosixSupervisor, RecoversFromWedgeWithoutProcessDeath) {
  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 50), quick_worker("b", 60), quick_worker("c", 70)},
      quick_config());
  ASSERT_TRUE(supervisor.start_all().ok());

  supervisor.wedge_worker("c");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return !supervisor.history().empty() && supervisor.all_up(); },
      Millis{3000}));
  EXPECT_EQ(supervisor.history()[0].reported_worker, "c");
}

TEST(PosixSupervisor, SelfWedgingWorkerEscalatesToHardFailure) {
  // Worker "c" answers one pong per incarnation, then wedges. Every restart
  // (leaf, then root, then root again) produces another wedge within the
  // escalation window, so the chain must end parked as a hard failure.
  core::RestartTree tree("R_demo");
  const auto a_cell = tree.add_cell(tree.root(), "R_a");
  tree.attach_component(a_cell, "a");
  const auto c_cell = tree.add_cell(tree.root(), "R_c");
  tree.attach_component(c_cell, "c");

  SupervisorConfig config = quick_config();
  config.max_root_restarts = 1;
  PosixSupervisor supervisor(
      tree, {quick_worker("a", 30), quick_worker("c", 30, /*wedge_after=*/1)},
      config);
  ASSERT_TRUE(supervisor.start_all().ok());

  ASSERT_TRUE(supervisor.run_until(
      [&] { return !supervisor.hard_failures().empty(); }, Millis{8000}));
  EXPECT_EQ(supervisor.hard_failures()[0], "c");
  // The chain escalated: some restart touched more than worker c alone.
  bool saw_escalation = false;
  for (const auto& record : supervisor.history()) {
    if (record.escalation_level > 0) saw_escalation = true;
  }
  EXPECT_TRUE(saw_escalation);
  // Healthy worker a keeps being supervised after the parking.
  supervisor.run_for(Millis{200});
  EXPECT_TRUE(supervisor.worker_up("a"));
}

TEST(PosixSupervisor, KillOrWedgeUnknownWorkerFailsCleanly) {
  PosixSupervisor supervisor(pair_and_leaf_tree(),
                             {quick_worker("a", 50), quick_worker("b", 60),
                              quick_worker("c", 70)},
                             quick_config());
  ASSERT_TRUE(supervisor.start_all().ok());
  EXPECT_FALSE(supervisor.kill_worker("no-such-worker"));
  EXPECT_FALSE(supervisor.wedge_worker(""));
  EXPECT_TRUE(supervisor.kill_worker("c"));
  // The bogus names had no side effects: only c's failure chain runs.
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.all_up() && !supervisor.history().empty(); },
      Millis{3000}));
  EXPECT_EQ(supervisor.history()[0].reported_worker, "c");
}

TEST(PosixSupervisor, HungStartupTimesOutEscalatesAndRecovers) {
  // Worker c's first-ever startup hangs (pause() before READY, gated on a
  // sentinel file); the startup deadline must abort it, report the failure,
  // and the respawn — which finds the sentinel and proceeds — recovers.
  const std::string sentinel =
      "/tmp/mercury_hang_once_" + std::to_string(getpid());
  std::remove(sentinel.c_str());

  WorkerSpec hang = quick_worker("c", 30);
  hang.argv.push_back("--hang-start-once");
  hang.argv.push_back(sentinel);
  hang.startup_timeout = Millis{300};

  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 30), quick_worker("b", 30), hang}, quick_config());
  // start_all itself rides the hardened path: the hung spawn times out at
  // 300 ms, escalates through the oracle, and the second spawn succeeds.
  ASSERT_TRUE(supervisor.start_all().ok());
  EXPECT_TRUE(supervisor.all_up());
  EXPECT_GE(supervisor.restart_timeouts(), 1u);
  // The timeout produced a real recovery action for c.
  ASSERT_FALSE(supervisor.history().empty());
  EXPECT_EQ(supervisor.history()[0].reported_worker, "c");
  EXPECT_TRUE(supervisor.worker_up("c"));
  std::remove(sentinel.c_str());
}

TEST(PosixSupervisor, HealthBeaconsDriveProactiveRejuvenation) {
  // The worker leaks 600 MB/min (10 MB/s) from a 48 MB base; the 70 MB
  // limit trips after ~2 s of uptime, so the supervisor should rejuvenate
  // it proactively — a real-process rendition of the §7 health loop.
  core::RestartTree tree("R_demo");
  const auto a_cell = tree.add_cell(tree.root(), "R_a");
  tree.attach_component(a_cell, "a");
  const auto b_cell = tree.add_cell(tree.root(), "R_leaky");
  tree.attach_component(b_cell, "leaky");

  WorkerSpec leaky;
  leaky.name = "leaky";
  leaky.argv = {kWorker, "--name", "leaky", "--startup-ms", "30",
                "--leak-mb-per-min", "600"};
  SupervisorConfig config = quick_config();
  config.memory_limit_mb = 70.0;
  PosixSupervisor supervisor(tree, {quick_worker("a", 30), leaky}, config);
  ASSERT_TRUE(supervisor.start_all().ok());

  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.rejuvenations() >= 1 && supervisor.all_up(); },
      Millis{8000}));
  // Beacons flowed and the restart reset the figure.
  supervisor.run_for(Millis{300});
  const auto memory = supervisor.latest_memory_mb("leaky");
  ASSERT_TRUE(memory.has_value());
  EXPECT_LT(*memory, 70.0);
  // The healthy worker was left alone.
  for (const auto& record : supervisor.history()) {
    EXPECT_EQ(record.reported_worker, "leaky");
  }
  EXPECT_TRUE(supervisor.hard_failures().empty());
}

TEST(PosixSupervisor, NoHealthPolicyMeansNoRejuvenation) {
  core::RestartTree tree("R_demo");
  const auto cell = tree.add_cell(tree.root(), "R_leaky");
  tree.attach_component(cell, "leaky");
  WorkerSpec leaky;
  leaky.name = "leaky";
  leaky.argv = {kWorker, "--name", "leaky", "--startup-ms", "30",
                "--leak-mb-per-min", "600"};
  PosixSupervisor supervisor(tree, {leaky}, quick_config());
  ASSERT_TRUE(supervisor.start_all().ok());
  supervisor.run_for(Millis{800});
  EXPECT_EQ(supervisor.rejuvenations(), 0u);
  // But the beacons are still visible for observability.
  EXPECT_TRUE(supervisor.latest_memory_mb("leaky").has_value());
}

// --- Checkpointed warm restarts & malformed protocol lines (ISSUE 3) --------

core::RestartTree two_leaf_tree() {
  core::RestartTree tree("R_demo");
  const auto a_cell = tree.add_cell(tree.root(), "R_a");
  tree.attach_component(a_cell, "a");
  const auto c_cell = tree.add_cell(tree.root(), "R_c");
  tree.attach_component(c_cell, "c");
  return tree;
}

TEST(PosixSupervisor, WarmRestartUsesCheckpointAndShortensDowntime) {
  const std::string file = "/tmp/mercury_ckpt_warm_" + std::to_string(getpid());
  std::remove(file.c_str());

  WorkerSpec slow;
  slow.name = "c";
  slow.argv = {kWorker,  "--name", "c", "--startup-ms", "600",
               "--checkpoint-file", file, "--warm-startup-ms", "50"};
  slow.startup_timeout = Millis{3000};
  slow.checkpoint_file = file;

  PosixSupervisor supervisor(two_leaf_tree(), {quick_worker("a", 30), slow},
                             quick_config());
  // First-ever start is cold (no file yet); the worker writes the
  // checkpoint once READY.
  ASSERT_TRUE(supervisor.start_all().ok());
  EXPECT_EQ(supervisor.checkpoints_validated(), 0u);
  // The worker writes the file just *after* READY; wait for it so the kill
  // cannot race the write (flaky under parallel test load otherwise).
  ASSERT_TRUE(supervisor.run_until(
      [&] {
        return ckpt::read_checkpoint_file(file, "c", nullptr) ==
               ckpt::FileState::kValid;
      },
      Millis{2000}));

  supervisor.kill_worker("c");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.all_up() && !supervisor.history().empty(); },
      Millis{5000}));
  ASSERT_EQ(supervisor.history().size(), 1u);
  EXPECT_GE(supervisor.checkpoints_validated(), 1u);
  EXPECT_EQ(supervisor.checkpoints_deleted(), 0u);
  // Warm restart: detection (<=110 ms) + 50 ms warm startup + loop slack —
  // well under even the bare 600 ms cold startup delay.
  EXPECT_LT(supervisor.history()[0].downtime.count(), 600);
  std::remove(file.c_str());
}

TEST(PosixSupervisor, InvalidCheckpointFileIsDeletedBeforeSpawn) {
  const std::string file = "/tmp/mercury_ckpt_bad_" + std::to_string(getpid());
  {
    // Well-formed line, wrong checksum: the supervisor must delete it so
    // the worker cold-starts instead of warm-starting from garbage.
    std::FILE* f = std::fopen(file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("MERCURY-CKPT 1 c tampered-state deadbeef\n", f);
    std::fclose(f);
  }

  WorkerSpec spec;
  spec.name = "c";
  spec.argv = {kWorker, "--name", "c", "--startup-ms", "50",
               "--checkpoint-file", file};
  spec.checkpoint_file = file;
  core::RestartTree tree("R_demo");
  const auto cell = tree.add_cell(tree.root(), "R_c");
  tree.attach_component(cell, "c");

  PosixSupervisor supervisor(tree, {spec}, quick_config());
  ASSERT_TRUE(supervisor.start_all().ok());
  EXPECT_GE(supervisor.checkpoints_deleted(), 1u);
  EXPECT_EQ(supervisor.checkpoints_validated(), 0u);
  // The cold start rebuilt the state and rewrote a valid file.
  supervisor.run_for(Millis{200});
  ckpt::CheckpointFile checkpoint;
  EXPECT_EQ(ckpt::read_checkpoint_file(file, "c", &checkpoint),
            ckpt::FileState::kValid);
  EXPECT_EQ(checkpoint.payload, "rebuilt-state");
  std::remove(file.c_str());
}

TEST(CheckpointFile, RoundTripAndSeededFuzz) {
  const std::string file = "/tmp/mercury_ckpt_fuzz_" + std::to_string(getpid());

  // Round trip.
  ASSERT_TRUE(ckpt::write_checkpoint_file(file, "ses", "session=3,peer=str"));
  ckpt::CheckpointFile checkpoint;
  ASSERT_EQ(ckpt::read_checkpoint_file(file, "ses", &checkpoint),
            ckpt::FileState::kValid);
  EXPECT_EQ(checkpoint.name, "ses");
  EXPECT_EQ(checkpoint.payload, "session=3,peer=str");
  // The name is part of the contract: another worker's file never validates.
  EXPECT_EQ(ckpt::read_checkpoint_file(file, "str", nullptr),
            ckpt::FileState::kInvalid);
  EXPECT_EQ(ckpt::read_checkpoint_file("/no/such/file", "ses", nullptr),
            ckpt::FileState::kMissing);

  // Deterministic fuzz: byte mutations of the valid line. The parser must
  // never crash or over-read (the sanitizer CI job watches), and anything
  // that no longer checksums is kInvalid — the supervisor then deletes it.
  std::string valid_line;
  {
    std::FILE* f = std::fopen(file.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buffer[512];
    ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
    std::fclose(f);
    valid_line = buffer;
  }
  mercury::util::Rng rng(20260806);
  for (int round = 0; round < 300; ++round) {
    std::string line = valid_line;
    const int mutations = static_cast<int>(rng.uniform_int(1, 5));
    for (int m = 0; m < mutations && !line.empty(); ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0: line[pos] = static_cast<char>(rng.uniform_int(32, 126)); break;
        case 1: line.erase(pos, 1); break;
        default: line.insert(pos, 1, line[pos]); break;
      }
    }
    std::FILE* f = std::fopen(file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(line.c_str(), f);
    std::fclose(f);
    const ckpt::FileState state =
        ckpt::read_checkpoint_file(file, "ses", &checkpoint);
    EXPECT_TRUE(state == ckpt::FileState::kValid ||
                state == ckpt::FileState::kInvalid);
  }
  std::remove(file.c_str());
}

TEST(CheckpointFile, TruncatedFilesAreRejectedBeforeChecksum) {
  // Satellite regression (ISSUE 7): a snapshot file cut off mid-write
  // (power loss, full disk) must never validate. The v2 format records the
  // payload length and checks it BEFORE the checksum, so truncation is
  // caught by the cheap structural check, not by checksum luck.
  const std::string file = "/tmp/mercury_ckpt_trunc_" + std::to_string(getpid());
  ASSERT_TRUE(ckpt::write_checkpoint_file(file, "ses", "session=3,peer=str"));
  std::string valid_line;
  {
    std::FILE* f = std::fopen(file.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buffer[512];
    ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
    std::fclose(f);
    valid_line = buffer;
  }
  while (!valid_line.empty() && valid_line.back() == '\n') valid_line.pop_back();

  // Every strict prefix is a truncation; none may validate.
  for (std::size_t cut = 0; cut < valid_line.size(); ++cut) {
    std::FILE* f = std::fopen(file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(valid_line.data(), 1, cut, f);
    std::fclose(f);
    EXPECT_EQ(ckpt::read_checkpoint_file(file, "ses", nullptr),
              ckpt::FileState::kInvalid)
        << "truncated at byte " << cut;
  }

  // A recorded length that disagrees with the payload bytes actually
  // present is rejected even when the checksum token is intact.
  {
    std::string lied = valid_line;
    const std::size_t len_pos = lied.find(" 18 ");  // payload length token
    ASSERT_NE(len_pos, std::string::npos);
    lied.replace(len_pos, 4, " 99 ");
    std::FILE* f = std::fopen(file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs((lied + "\n").c_str(), f);
    std::fclose(f);
    EXPECT_EQ(ckpt::read_checkpoint_file(file, "ses", nullptr),
              ckpt::FileState::kInvalid);
  }

  // Seeded fuzz over tail truncations combined with byte noise: never
  // kValid unless the line survived byte-identical.
  mercury::util::Rng rng(20260809);
  for (int round = 0; round < 200; ++round) {
    std::string line = valid_line;
    const auto keep = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(line.size())));
    line.resize(keep);
    if (!line.empty() && rng.chance(0.5)) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
      line[pos] = static_cast<char>(rng.uniform_int(32, 126));
    }
    std::FILE* f = std::fopen(file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(line.c_str(), f);
    std::fclose(f);
    const ckpt::FileState state =
        ckpt::read_checkpoint_file(file, "ses", nullptr);
    if (line == valid_line) {
      EXPECT_EQ(state, ckpt::FileState::kValid);
    } else {
      EXPECT_EQ(state, ckpt::FileState::kInvalid) << "round " << round;
    }
  }
  std::remove(file.c_str());
}

TEST(CheckpointFile, V1FilesNeverValidateUnderV2) {
  // Format migration safety: a v1 line (no length token) with a correct v1
  // checksum is kInvalid under v2 — one cold start, never a wrong warm one.
  const std::string file = "/tmp/mercury_ckpt_v1_" + std::to_string(getpid());
  const std::string body = "1 ses session=3";  // v1 checksum body
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%llx",
                static_cast<unsigned long long>(ckpt::fnv1a(body)));
  {
    std::FILE* f = std::fopen(file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "MERCURY-CKPT %s %s\n", body.c_str(), checksum);
    std::fclose(f);
  }
  EXPECT_EQ(ckpt::read_checkpoint_file(file, "ses", nullptr),
            ckpt::FileState::kInvalid);
  std::remove(file.c_str());
}

TEST(PosixSupervisor, PartnerCopyRestoresLostCheckpointFile) {
  // ISSUE 7's L1 mirror on real processes: the supervisor keeps a replica
  // of the last validated payload; when the on-disk file vanishes, the
  // spawn gate rewrites it from the replica and the worker still
  // warm-starts.
  const std::string file =
      "/tmp/mercury_ckpt_partner_" + std::to_string(getpid());
  std::remove(file.c_str());

  WorkerSpec slow;
  slow.name = "c";
  slow.argv = {kWorker,  "--name", "c", "--startup-ms", "600",
               "--checkpoint-file", file, "--warm-startup-ms", "50"};
  slow.startup_timeout = Millis{3000};
  slow.checkpoint_file = file;
  SupervisorConfig config = quick_config();
  config.keep_partner_copies = true;

  PosixSupervisor supervisor(two_leaf_tree(), {quick_worker("a", 30), slow},
                             config);
  ASSERT_TRUE(supervisor.start_all().ok());  // cold; worker writes the file
  // The worker writes the file just after READY; wait for it so the kill
  // cannot race the write.
  const auto file_valid = [&] {
    return ckpt::read_checkpoint_file(file, "c", nullptr) ==
           ckpt::FileState::kValid;
  };
  ASSERT_TRUE(supervisor.run_until(file_valid, Millis{2000}));

  // First kill: the gate validates the file and captures the replica.
  supervisor.kill_worker("c");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.all_up() && supervisor.history().size() >= 1; },
      Millis{5000}));
  ASSERT_GE(supervisor.checkpoints_validated(), 1u);
  EXPECT_EQ(supervisor.partner_restores(), 0u);

  // Lose the on-disk tier entirely, then fail the worker again: the replica
  // must restore the file and keep the restart warm. Wait for the warm
  // incarnation's own rewrite first, so the remove cannot be undone by it.
  ASSERT_TRUE(supervisor.run_until(file_valid, Millis{2000}));
  std::remove(file.c_str());
  supervisor.kill_worker("c");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.all_up() && supervisor.history().size() >= 2; },
      Millis{5000}));
  EXPECT_GE(supervisor.partner_restores(), 1u);
  // Warm despite the lost file: well under the 600 ms cold startup.
  EXPECT_LT(supervisor.history()[1].downtime.count(), 600);
  // The restored file is valid on disk again (and refreshed by the worker).
  ckpt::CheckpointFile checkpoint;
  EXPECT_EQ(ckpt::read_checkpoint_file(file, "c", &checkpoint),
            ckpt::FileState::kValid);
  std::remove(file.c_str());
}

TEST(PosixSupervisor, GarbledProtocolLinesNeverKillTheSupervisor) {
  // Each incarnation of c answers its first two pings with corrupted lines
  // (an overflowing 23-digit PONG, a non-numeric PONG, a garbage HEALTH
  // figure), so c keeps failing, escalates, and parks. The regression under
  // test: a 20+ digit PONG used to throw std::out_of_range out of
  // drain_worker and take the whole supervisor down with it.
  WorkerSpec garbler;
  garbler.name = "c";
  garbler.argv = {kWorker, "--name", "c", "--startup-ms", "30",
                  "--garble-pongs", "2"};
  SupervisorConfig config = quick_config();
  config.max_root_restarts = 1;
  PosixSupervisor supervisor(two_leaf_tree(),
                             {quick_worker("a", 30), garbler}, config);
  ASSERT_TRUE(supervisor.start_all().ok());
  ASSERT_TRUE(supervisor.run_until(
      [&] { return !supervisor.hard_failures().empty(); }, Millis{10000}));
  EXPECT_EQ(supervisor.hard_failures()[0], "c");
  // The garbage HEALTH figure was ignored, not recorded.
  EXPECT_FALSE(supervisor.latest_memory_mb("c").has_value());
  // And the healthy worker is still being supervised.
  supervisor.run_for(Millis{200});
  EXPECT_TRUE(supervisor.worker_up("a"));
  EXPECT_GT(supervisor.pongs_received(), 0u);
}

// --- Concurrent restart dispatch (ISSUE 8) -----------------------------------

TEST(PosixSupervisor, ParallelRecoveryRunsDisjointCellsConcurrently) {
  SupervisorConfig config = quick_config();
  config.parallel_recovery = true;
  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 400), quick_worker("b", 400), quick_worker("c", 400)},
      config);
  ASSERT_TRUE(supervisor.start_all().ok());

  supervisor.kill_worker("a");
  supervisor.kill_worker("c");
  std::size_t peak = 0;
  ASSERT_TRUE(supervisor.run_until(
      [&] {
        peak = std::max(peak, supervisor.restarts_in_flight());
        return supervisor.all_up() && supervisor.history().size() >= 2;
      },
      Millis{6000}));
  // R_[a,b] and R_c are disjoint siblings: both restart actions were in
  // flight at once instead of queueing behind each other.
  EXPECT_EQ(peak, 2u);
  EXPECT_EQ(supervisor.absorbed_restarts(), 0u);
  std::vector<std::string> reported;
  for (const auto& record : supervisor.history()) {
    reported.push_back(record.reported_worker);
  }
  EXPECT_NE(std::find(reported.begin(), reported.end(), "a"), reported.end());
  EXPECT_NE(std::find(reported.begin(), reported.end(), "c"), reported.end());
  EXPECT_TRUE(supervisor.hard_failures().empty());
}

TEST(PosixSupervisor, SerialDefaultNeverOverlapsRestartActions) {
  // parallel_recovery stays off: the same double failure recovers one action
  // at a time — the legacy busy-gate drops c's report while {a,b} runs and
  // the next ping round re-detects it afterwards.
  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 400), quick_worker("b", 400), quick_worker("c", 400)},
      quick_config());
  ASSERT_TRUE(supervisor.start_all().ok());

  supervisor.kill_worker("a");
  supervisor.kill_worker("c");
  std::size_t peak = 0;
  ASSERT_TRUE(supervisor.run_until(
      [&] {
        peak = std::max(peak, supervisor.restarts_in_flight());
        return supervisor.all_up() && supervisor.history().size() >= 2;
      },
      Millis{6000}));
  EXPECT_EQ(peak, 1u);
  EXPECT_EQ(supervisor.absorbed_restarts(), 0u);
}

TEST(PosixSupervisor, EscalationSupersedesOverlappingConcurrentRestart) {
  // The ISSUE 8 supersede scenario on real processes: two disjoint actions
  // go in flight — {a,b} with slow 600 ms startups and {c} whose respawn
  // hangs and is aborted by its 300 ms startup deadline. c's chain escalates
  // to the root, whose group strictly covers the still-running {a,b} action:
  // the escalated restart must absorb it and re-kill its members, not queue
  // behind it or deadlock.
  const std::string sentinel =
      "/tmp/mercury_hang_restart_" + std::to_string(getpid());
  {
    // Pre-create the sentinel so start_all is clean; removing it later arms
    // the one-shot hang for c's *next* startup.
    std::FILE* f = std::fopen(sentinel.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }

  WorkerSpec slow_a = quick_worker("a", 600);
  slow_a.startup_timeout = Millis{3000};
  WorkerSpec slow_b = quick_worker("b", 600);
  slow_b.startup_timeout = Millis{3000};
  WorkerSpec hang = quick_worker("c", 30);
  hang.argv.push_back("--hang-start-once");
  hang.argv.push_back(sentinel);
  hang.startup_timeout = Millis{300};

  SupervisorConfig config = quick_config();
  config.parallel_recovery = true;
  PosixSupervisor supervisor(pair_and_leaf_tree(), {slow_a, slow_b, hang},
                             config);
  ASSERT_TRUE(supervisor.start_all().ok());

  std::remove(sentinel.c_str());
  supervisor.kill_worker("a");
  supervisor.kill_worker("c");

  std::size_t peak = 0;
  ASSERT_TRUE(supervisor.run_until(
      [&] {
        peak = std::max(peak, supervisor.restarts_in_flight());
        return supervisor.absorbed_restarts() >= 1;
      },
      Millis{4000}));
  // Both actions really overlapped before the absorb.
  EXPECT_EQ(peak, 2u);
  ASSERT_TRUE(
      supervisor.run_until([&] { return supervisor.all_up(); }, Millis{6000}));
  EXPECT_GE(supervisor.restart_timeouts(), 1u);
  // The cure is the escalated root restart covering all three workers; the
  // absorbed sibling action never produced its own history record.
  bool saw_root_cure = false;
  for (const auto& record : supervisor.history()) {
    if (record.escalation_level >= 1) {
      saw_root_cure = true;
      EXPECT_EQ(record.restarted, (std::vector<std::string>{"a", "b", "c"}));
    }
  }
  EXPECT_TRUE(saw_root_cure);
  EXPECT_TRUE(supervisor.hard_failures().empty());
  std::remove(sentinel.c_str());
}

// --- Traffic-driven on-demand recovery (ISSUE 9) -----------------------------

TEST(PosixSupervisor, TrafficDrivenDefersUntilTouched) {
  SupervisorConfig config = quick_config();
  config.parallel_recovery = true;
  config.traffic_driven = true;
  config.lazy_drain = Millis{60000};  // keep the background drain out
  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 400), quick_worker("b", 400), quick_worker("c", 400)},
      config);
  ASSERT_TRUE(supervisor.start_all().ok());
  EXPECT_EQ(supervisor.touch_worker("a"), PosixSupervisor::TouchResult::kIdle);

  // c fails first and its restart goes in flight; a's failure lands while
  // that action runs and must defer instead of dispatching eagerly.
  supervisor.kill_worker("c");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.restarts_in_flight() >= 1; }, Millis{2000}));
  EXPECT_EQ(supervisor.touch_worker("c"),
            PosixSupervisor::TouchResult::kRestarting);
  supervisor.kill_worker("a");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.deferred_count() >= 1; }, Millis{2000}));
  EXPECT_EQ(supervisor.restarts_in_flight(), 1u);

  // A client request touches a: exactly that deferred failure is promoted,
  // and with R_[a,b] disjoint from the in-flight R_c it dispatches now.
  EXPECT_EQ(supervisor.touch_worker("a"),
            PosixSupervisor::TouchResult::kPromoted);
  EXPECT_EQ(supervisor.touch_promotions(), 1u);
  EXPECT_EQ(supervisor.deferred_count(), 0u);
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.all_up() && supervisor.history().size() >= 2; },
      Millis{6000}));
  EXPECT_EQ(supervisor.lazy_drains(), 0u);
  EXPECT_TRUE(supervisor.hard_failures().empty());
}

TEST(PosixSupervisor, UntouchedDeferredFailureDrainsLazily) {
  SupervisorConfig config = quick_config();
  config.parallel_recovery = true;
  config.traffic_driven = true;
  config.lazy_drain = Millis{200};
  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 400), quick_worker("b", 400), quick_worker("c", 400)},
      config);
  ASSERT_TRUE(supervisor.start_all().ok());

  supervisor.kill_worker("c");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.restarts_in_flight() >= 1; }, Millis{2000}));
  supervisor.kill_worker("a");
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.deferred_count() >= 1; }, Millis{2000}));
  // No request ever touches a: the background drain must still restart it.
  ASSERT_TRUE(supervisor.run_until(
      [&] { return supervisor.all_up() && supervisor.history().size() >= 2; },
      Millis{6000}));
  EXPECT_GE(supervisor.lazy_drains(), 1u);
  EXPECT_EQ(supervisor.touch_promotions(), 0u);
  EXPECT_TRUE(supervisor.hard_failures().empty());
}

TEST(PosixSupervisor, TouchOfParkedWorkerSignalsRejection) {
  // Worker c wedges after one pong per incarnation and parks after the root
  // budget; a request touching it must get the clean rejection signal, not
  // spawn another restart.
  core::RestartTree tree("R_demo");
  const auto a_cell = tree.add_cell(tree.root(), "R_a");
  tree.attach_component(a_cell, "a");
  const auto c_cell = tree.add_cell(tree.root(), "R_c");
  tree.attach_component(c_cell, "c");

  SupervisorConfig config = quick_config();
  config.parallel_recovery = true;
  config.traffic_driven = true;
  config.max_root_restarts = 1;
  PosixSupervisor supervisor(
      tree, {quick_worker("a", 30), quick_worker("c", 30, /*wedge_after=*/1)},
      config);
  ASSERT_TRUE(supervisor.start_all().ok());
  ASSERT_TRUE(supervisor.run_until(
      [&] { return !supervisor.hard_failures().empty(); }, Millis{8000}));
  ASSERT_EQ(supervisor.hard_failures()[0], "c");

  const auto actions = supervisor.history().size();
  EXPECT_EQ(supervisor.touch_worker("c"),
            PosixSupervisor::TouchResult::kParked);
  supervisor.run_for(Millis{300});
  EXPECT_EQ(supervisor.history().size(), actions);
  EXPECT_TRUE(supervisor.worker_up("a"));
}

TEST(PosixSupervisor, BackToBackFailures) {
  PosixSupervisor supervisor(
      pair_and_leaf_tree(),
      {quick_worker("a", 40), quick_worker("b", 40), quick_worker("c", 40)},
      quick_config());
  ASSERT_TRUE(supervisor.start_all().ok());
  for (int round = 1; round <= 3; ++round) {
    supervisor.kill_worker("c");
    ASSERT_TRUE(supervisor.run_until(
        [&] {
          return supervisor.history().size() >= static_cast<std::size_t>(round) &&
                 supervisor.all_up();
        },
        Millis{3000}))
        << "round " << round;
  }
  EXPECT_EQ(supervisor.history().size(), 3u);
  EXPECT_TRUE(supervisor.hard_failures().empty());
}

}  // namespace
}  // namespace mercury::posix
