// Unit tests: the discrete-event kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace mercury::sim {
namespace {

using util::Duration;
using util::TimePoint;

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule_after(Duration::seconds(3.0), "c", [&] { order.push_back(3); });
  sim.schedule_after(Duration::seconds(1.0), "a", [&] { order.push_back(1); });
  sim.schedule_after(Duration::seconds(2.0), "b", [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 3.0);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::seconds(1.0), "e",
                       [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesOnlyToEventTimes) {
  Simulator sim(1);
  TimePoint seen;
  sim.schedule_after(Duration::seconds(5.0), "e", [&] { seen = sim.now(); });
  EXPECT_TRUE(sim.step());
  EXPECT_DOUBLE_EQ(seen.to_seconds(), 5.0);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtBoundaryAndSetsNow) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule_after(Duration::seconds(1.0), "a", [&] { ++fired; });
  sim.schedule_after(Duration::seconds(10.0), "b", [&] { ++fired; });
  sim.run_until(TimePoint::from_seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 5.0);
  sim.run_for(Duration::seconds(5.0));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim(1);
  int fired = 0;
  const EventId id = sim.schedule_after(Duration::seconds(1.0), "e", [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim(1);
  const EventId id = sim.schedule_after(Duration::zero(), "e", [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdIsSafe) {
  Simulator sim(1);
  EXPECT_FALSE(sim.cancel(EventId{}));
}

TEST(Simulator, EventsScheduledDuringExecutionRun) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule_after(Duration::seconds(1.0), "outer", [&] {
    sim.schedule_after(Duration::seconds(1.0), "inner", [&] { ++fired; });
  });
  sim.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim(1);
  sim.run_until(TimePoint::from_seconds(10.0));
  TimePoint fired_at;
  sim.schedule_at(TimePoint::from_seconds(1.0), "late",
                  [&] { fired_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at.to_seconds(), 10.0);
}

TEST(Simulator, HasPendingAndNextEventTime) {
  Simulator sim(1);
  EXPECT_FALSE(sim.has_pending());
  EXPECT_FALSE(sim.next_event_time().is_finite());
  const EventId id = sim.schedule_after(Duration::seconds(2.0), "e", [] {});
  EXPECT_TRUE(sim.has_pending());
  EXPECT_DOUBLE_EQ(sim.next_event_time().to_seconds(), 2.0);
  sim.cancel(id);
  EXPECT_FALSE(sim.has_pending());
}

TEST(Simulator, RunAllGuardStopsRunaway) {
  Simulator sim(1);
  std::function<void()> loop = [&] {
    sim.schedule_after(Duration::millis(1.0), "loop", loop);
  };
  loop();
  sim.run_all(/*max_events=*/100);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, CountersTrackActivity) {
  Simulator sim(1);
  sim.schedule_after(Duration::zero(), "a", [] {});
  sim.schedule_after(Duration::zero(), "b", [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_scheduled(), 2u);
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator sim(1);
  std::vector<double> times;
  PeriodicTask task(sim, "tick", Duration::seconds(1.0),
                    [&] { times.push_back(sim.now().to_seconds()); });
  task.start();
  sim.run_until(TimePoint::from_seconds(3.5));
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(PeriodicTask, PhaseOffsetsFirstFiring) {
  Simulator sim(1);
  std::vector<double> times;
  PeriodicTask task(sim, "tick", Duration::seconds(1.0),
                    [&] { times.push_back(sim.now().to_seconds()); });
  task.start_with_phase(Duration::seconds(0.25));
  sim.run_until(TimePoint::from_seconds(2.5));
  EXPECT_EQ(times, (std::vector<double>{0.25, 1.25, 2.25}));
}

TEST(PeriodicTask, StopHalts) {
  Simulator sim(1);
  int fired = 0;
  PeriodicTask task(sim, "tick", Duration::seconds(1.0), [&] { ++fired; });
  task.start();
  sim.run_until(TimePoint::from_seconds(2.5));
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(TimePoint::from_seconds(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTask, SetPeriodReArms) {
  Simulator sim(1);
  int fired = 0;
  PeriodicTask task(sim, "tick", Duration::seconds(10.0), [&] { ++fired; });
  task.start();
  task.set_period(Duration::seconds(1.0));
  sim.run_until(TimePoint::from_seconds(3.5));
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTask, DestructionCancelsPendingCallback) {
  Simulator sim(1);
  int fired = 0;
  {
    PeriodicTask task(sim, "tick", Duration::seconds(1.0), [&] { ++fired; });
    task.start();
  }
  sim.run_until(TimePoint::from_seconds(5.0));
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTask, SelfStopFromCallback) {
  Simulator sim(1);
  int fired = 0;
  PeriodicTask task(sim, "tick", Duration::seconds(1.0), [&] {
    ++fired;
    if (fired == 2) task.stop();
  });
  task.start();
  sim.run_until(TimePoint::from_seconds(10.0));
  EXPECT_EQ(fired, 2);
}

// --- Slab/heap kernel lock-down (ISSUE 10) --------------------------------
// The event store is an arena of reusable slots with generation-checked
// handles and a 4-ary heap; these tests pin the observable contract the
// rewrite must preserve: (at, seq) fire order, O(1) cancel, and stale
// handles that can never touch a slot's next occupant.

TEST(Simulator, StaleHandleFromReusedSlotCannotCancelNewOccupant) {
  Simulator sim(1);
  int fired = 0;
  const EventId stale = sim.schedule_after(Duration::millis(1.0), "a", [] {});
  ASSERT_TRUE(sim.cancel(stale));  // frees the slot
  // The freed slot is reused immediately; the old handle's generation no
  // longer matches, so it must not cancel the new occupant.
  sim.schedule_after(Duration::millis(2.0), "b", [&fired] { ++fired; });
  EXPECT_FALSE(sim.cancel(stale));
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelAfterFireIsSafeNoop) {
  Simulator sim(1);
  int fired = 0;
  const EventId id =
      sim.schedule_after(Duration::millis(1.0), "e", [&fired] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(EventId{}));  // default handle is never valid
}

TEST(Simulator, CancelledEventsNeverBlockTheQueue) {
  // Lazy cancellation leaves stale entries in the heap; has_pending and
  // next_event_time must see through them.
  Simulator sim(1);
  const EventId a = sim.schedule_after(Duration::millis(1.0), "a", [] {});
  const EventId b = sim.schedule_after(Duration::millis(2.0), "b", [] {});
  int fired = 0;
  sim.schedule_after(Duration::millis(3.0), "c", [&fired] { ++fired; });
  sim.cancel(a);
  sim.cancel(b);
  EXPECT_TRUE(sim.has_pending());
  EXPECT_EQ(sim.next_event_time().to_seconds(), 0.003);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.has_pending());
}

TEST(Simulator, RandomizedDifferentialAgainstNaiveReference) {
  // 10k random schedule/cancel/step ops against a brute-force reference
  // implementing the documented contract directly: events fire in (at, seq)
  // ascending order; cancel kills exactly the named occupancy. Small
  // discrete delays force heavy timestamp ties, so fire order rests on the
  // seq tie-break — the part a queue rewrite is most likely to get wrong.
  struct RefEvent {
    TimePoint at;
    std::uint64_t seq = 0;
    int tag = 0;
    bool alive = true;
  };
  Simulator sim(31);
  util::Rng rng(2026);
  std::vector<RefEvent> ref;      // index-aligned with `handles`
  std::vector<EventId> handles;
  std::vector<int> fired;         // tags in simulator fire order
  std::vector<int> expected;      // tags in reference fire order
  std::uint64_t next_seq = 1;     // shadow of the simulator's seq counter
  int next_tag = 0;
  const double delays_ms[] = {0.0, 0.0, 1.0, 2.0, 5.0};

  const auto ref_pop = [&ref]() -> int {
    std::size_t best = ref.size();
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (!ref[i].alive) continue;
      if (best == ref.size() || ref[i].at < ref[best].at ||
          (ref[i].at == ref[best].at && ref[i].seq < ref[best].seq)) {
        best = i;
      }
    }
    if (best == ref.size()) return -1;
    ref[best].alive = false;
    return ref[best].tag;
  };

  for (int op = 0; op < 10'000; ++op) {
    const auto kind = rng.uniform_int(0, 9);
    if (kind < 6) {  // schedule
      const Duration delay =
          Duration::millis(delays_ms[rng.uniform_int(0, 4)]);
      const int tag = next_tag++;
      handles.push_back(sim.schedule_after(
          delay, "d", [&fired, tag] { fired.push_back(tag); }));
      ref.push_back({sim.now() + delay, next_seq++, tag, true});
    } else if (kind < 8 && !ref.empty()) {  // cancel a random handle
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ref.size()) - 1));
      // cancel() reports true iff the occupancy is still pending — stale
      // handles (already fired or cancelled) must be recognized.
      ASSERT_EQ(sim.cancel(handles[i]), ref[i].alive) << "op " << op;
      ref[i].alive = false;
    } else {  // drain a little
      const auto steps = rng.uniform_int(1, 4);
      for (std::int64_t s = 0; s < steps; ++s) {
        const bool stepped = sim.step();
        const int tag = ref_pop();
        ASSERT_EQ(stepped, tag != -1) << "op " << op;
        if (tag != -1) expected.push_back(tag);
      }
    }
  }
  sim.run_all();
  for (int tag = ref_pop(); tag != -1; tag = ref_pop()) expected.push_back(tag);
  ASSERT_EQ(fired, expected);
  EXPECT_EQ(sim.events_executed(), fired.size());
}

TEST(Simulator, DeterministicTraceForSameSeed) {
  auto trace = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<double> values;
    std::function<void(int)> chain = [&](int remaining) {
      if (remaining == 0) return;
      const double delay = sim.rng().uniform(0.1, 1.0);
      sim.schedule_after(Duration::seconds(delay), "c", [&, remaining] {
        values.push_back(sim.now().to_seconds());
        chain(remaining - 1);
      });
    };
    chain(20);
    sim.run_all();
    return values;
  };
  EXPECT_EQ(trace(42), trace(42));
  EXPECT_NE(trace(42), trace(43));
}

}  // namespace
}  // namespace mercury::sim
