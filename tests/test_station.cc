// Unit tests: station components, coordination protocols, hardware models,
// and the process manager.
#include <gtest/gtest.h>

#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/fault_injector.h"
#include "orbit/pass_predictor.h"
#include "station/station.h"

namespace mercury::station {
namespace {

namespace names = core::component_names;
using util::Duration;
using util::TimePoint;

class StationTest : public ::testing::Test {
 protected:
  StationTest() : sim_(1) {}

  Station& make_station(bool split = true, bool domain = false) {
    StationConfig config;
    config.split_fedrcom = split;
    config.enable_domain_behavior = domain;
    station_ = std::make_unique<Station>(sim_, config);
    station_->boot_instant();
    return *station_;
  }

  /// Ping `component` over the bus and report whether a pong arrives.
  bool answers_ping(Station& station, const std::string& component) {
    bool answered = false;
    station.bus().attach("probe", [&](const msg::Message& m) {
      if (m.kind == msg::Kind::kPong && m.from == component) answered = true;
    });
    station.bus().send(msg::make_ping("probe", component, ++probe_seq_));
    sim_.run_for(Duration::millis(50.0));
    station.bus().detach("probe");
    return answered;
  }

  sim::Simulator sim_;
  std::unique_ptr<Station> station_;
  std::uint64_t probe_seq_ = 0;
};

// --- Basic lifecycle ---------------------------------------------------------

TEST_F(StationTest, InstantBootIsFullyFunctional) {
  Station& station = make_station();
  EXPECT_TRUE(station.all_functional());
  for (const auto& name : station.component_names()) {
    EXPECT_TRUE(station.component(name)->functional()) << name;
  }
}

TEST_F(StationTest, SplitConfigurationComponentSet) {
  Station& split = make_station(true);
  const auto split_names = split.component_names();
  EXPECT_EQ(split_names.size(), 6u);
  EXPECT_NE(split.component(names::kFedr), nullptr);
  EXPECT_NE(split.component(names::kPbcom), nullptr);
  EXPECT_EQ(split.component(names::kFedrcom), nullptr);
  EXPECT_EQ(split.radio_frontend_name(), names::kFedr);
}

TEST_F(StationTest, FusedConfigurationComponentSet) {
  Station& fused = make_station(false);
  EXPECT_EQ(fused.component_names().size(), 5u);
  EXPECT_NE(fused.component(names::kFedrcom), nullptr);
  EXPECT_EQ(fused.component(names::kFedr), nullptr);
  EXPECT_EQ(fused.radio_frontend_name(), names::kFedrcom);
}

TEST_F(StationTest, ComponentsAnswerPingsWhenHealthy) {
  Station& station = make_station();
  for (const auto& name : station.component_names()) {
    EXPECT_TRUE(answers_ping(station, name)) << name;
  }
}

TEST_F(StationTest, CrashedComponentIsFailSilent) {
  Station& station = make_station();
  station.inject_crash(names::kRtu);
  EXPECT_FALSE(answers_ping(station, names::kRtu));
  EXPECT_FALSE(station.component(names::kRtu)->responsive());
  EXPECT_TRUE(station.component(names::kRtu)->up());  // zombie process
  EXPECT_FALSE(station.all_functional());
  // Others unaffected.
  EXPECT_TRUE(answers_ping(station, names::kSes));
}

TEST_F(StationTest, RestartCuresCrash) {
  Station& station = make_station();
  station.inject_crash(names::kRtu);
  bool completed = false;
  station.process_manager().restart_group({names::kRtu},
                                          [&] { completed = true; });
  EXPECT_TRUE(station.component(names::kRtu)->restarting());
  sim_.run_for(Duration::seconds(6.0));
  EXPECT_TRUE(completed);
  EXPECT_FALSE(station.board().any_active());
  EXPECT_TRUE(answers_ping(station, names::kRtu));
}

TEST_F(StationTest, RestartDurationMatchesCalibration) {
  Station& station = make_station();
  TimePoint done;
  station.process_manager().restart_group({names::kRtu},
                                          [&] { done = sim_.now(); });
  sim_.run_all();
  EXPECT_NEAR((done - TimePoint::origin()).to_seconds(),
              station.cal().rtu.startup_mean.to_seconds(), 0.5);
}

TEST_F(StationTest, KilledComponentDetachesFromBus) {
  Station& station = make_station();
  station.component(names::kRtu)->kill();
  EXPECT_FALSE(station.bus().attached(names::kRtu));
  EXPECT_FALSE(answers_ping(station, names::kRtu));
}

// --- Contention (§4.1) --------------------------------------------------------

TEST_F(StationTest, WholeSystemRestartContends) {
  Station& station = make_station(false);
  TimePoint done;
  station.process_manager().restart_group(station.component_names(),
                                          [&] { done = sim_.now(); });
  sim_.run_all();
  const double base = station.cal().fedrcom.startup_mean.to_seconds();
  const double contended = (done - TimePoint::origin()).to_seconds();
  // 5 concurrent restarts: factor 1 + 0.0628*3 ~ 1.19.
  EXPECT_GT(contended, base * 1.15);
  EXPECT_LT(contended, base * 1.25);
}

TEST_F(StationTest, PairRestartDoesNotContend) {
  Station& station = make_station();
  TimePoint done;
  station.process_manager().restart_group({names::kFedr, names::kPbcom},
                                          [&] { done = sim_.now(); });
  sim_.run_all();
  EXPECT_NEAR((done - TimePoint::origin()).to_seconds(),
              station.cal().pbcom.startup_mean.to_seconds(), 0.8);
}

TEST_F(StationTest, OverlappingGroupsSupersedeInFlightMembers) {
  Station& station = make_station();
  int completions = 0;
  station.process_manager().restart_group({names::kRtu}, [&] { ++completions; });
  // Overlapping second group: rtu already in flight, ses fresh. The second
  // group supersedes rtu's stale attempt (re-kill, fresh start) instead of
  // folding into it — a hung first attempt must not absorb the retry.
  station.process_manager().restart_group({names::kRtu, names::kSes},
                                          [&] { ++completions; });
  sim_.run_all();
  // Both groups complete: the abandoned one drains via supersession (its
  // initiator guards with action ids), the new one finishes for real.
  EXPECT_EQ(completions, 2);
  // rtu attempted twice (original + superseding), ses once.
  EXPECT_EQ(station.process_manager().restarts_performed(), 3u);
  EXPECT_FALSE(station.process_manager().restart_in_progress());
}

// --- mbus semantics -------------------------------------------------------------

TEST_F(StationTest, MbusCrashTakesBusDown) {
  Station& station = make_station();
  station.inject_crash(names::kMbus);
  EXPECT_FALSE(station.bus().online());
  EXPECT_FALSE(station.all_functional());
  EXPECT_FALSE(answers_ping(station, names::kSes));  // everyone silent
}

TEST_F(StationTest, MbusRestartReattachesEveryone) {
  Station& station = make_station();
  station.inject_crash(names::kMbus);
  station.process_manager().restart_group({names::kMbus}, nullptr);
  sim_.run_for(Duration::seconds(7.0));
  EXPECT_TRUE(station.bus().online());
  EXPECT_TRUE(station.all_functional());
  for (const auto& name : station.component_names()) {
    EXPECT_TRUE(answers_ping(station, name)) << name;
  }
}

TEST_F(StationTest, BusRestartListenerFires) {
  Station& station = make_station();
  int fired = 0;
  station.add_bus_restart_listener([&] { ++fired; });
  station.process_manager().restart_group({names::kMbus}, nullptr);
  sim_.run_for(Duration::seconds(7.0));
  EXPECT_EQ(fired, 1);
}

// --- ses/str sync (§4.3) ----------------------------------------------------------

TEST_F(StationTest, SesRestartWedgesStr) {
  Station& station = make_station();
  station.inject_crash(names::kSes);
  station.process_manager().restart_group({names::kSes}, nullptr);
  sim_.run_for(Duration::seconds(5.0));
  // ses came back and initiated a resync against str's stale session: str
  // wedges (the §4.3 induced failure).
  EXPECT_TRUE(station.board().manifests_at(names::kStr));
  EXPECT_FALSE(station.component(names::kStr)->functional());
  EXPECT_EQ(station.ses_str_sync().state(names::kSes),
            SyncCoordinator::State::kListenWait);
}

TEST_F(StationTest, StrRestartAfterWedgeCompletesQuickly) {
  Station& station = make_station();
  station.inject_crash(names::kSes);
  station.process_manager().restart_group({names::kSes}, nullptr);
  sim_.run_for(Duration::seconds(5.0));
  station.process_manager().restart_group({names::kStr}, nullptr);
  sim_.run_for(Duration::seconds(4.5));
  // Listen-mode handshake (~50 ms) right after str's startup.
  EXPECT_TRUE(station.ses_str_sync().synced(names::kSes));
  EXPECT_TRUE(station.ses_str_sync().synced(names::kStr));
  EXPECT_TRUE(station.all_functional());
}

TEST_F(StationTest, ParallelSesStrRestartCollidesOnce) {
  Station& station = make_station();
  station.inject_crash(names::kSes);
  TimePoint started;
  station.process_manager().restart_group({names::kSes, names::kStr},
                                          [&] { started = sim_.now(); });
  sim_.run_for(Duration::seconds(10.0));
  EXPECT_TRUE(station.all_functional());
  // Functional after the collide negotiation (~1.39 s past group restart).
  const double sync_done =
      station.cal().sync_collide.to_seconds();
  EXPECT_TRUE(station.ses_str_sync().synced(names::kSes));
  EXPECT_GT(sync_done, 1.0);
  // No induced failure this time: consolidation avoids the second round.
  EXPECT_FALSE(station.board().any_active());
}

// --- fedr/pbcom link (§4.2) --------------------------------------------------------

TEST_F(StationTest, FedrFunctionalNeedsConnection) {
  Station& station = make_station();
  EXPECT_TRUE(station.fedr_pbcom_link().connected());
  station.process_manager().restart_group({names::kPbcom}, nullptr);
  // pbcom down: fedr alive (answers pings) but not functional.
  sim_.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(station.component(names::kFedr)->responsive());
  EXPECT_FALSE(station.component(names::kFedr)->functional());
  sim_.run_for(Duration::seconds(25.0));
  EXPECT_TRUE(station.fedr_pbcom_link().connected());
  EXPECT_TRUE(station.component(names::kFedr)->functional());
}

TEST_F(StationTest, FedrKillsAgePbcomUntilItFails) {
  Station& station = make_station();
  const int threshold = station.cal().pbcom_aging_threshold;
  for (int i = 0; i < threshold; ++i) {
    EXPECT_FALSE(station.board().manifests_at(names::kPbcom)) << "at age " << i;
    station.process_manager().restart_group({names::kFedr}, nullptr);
    sim_.run_for(Duration::seconds(7.0));
  }
  // "at some point, the aging leads to its total failure" (§4.2).
  EXPECT_TRUE(station.board().manifests_at(names::kPbcom));
}

TEST_F(StationTest, PbcomRestartResetsAge) {
  Station& station = make_station();
  station.process_manager().restart_group({names::kFedr}, nullptr);
  sim_.run_for(Duration::seconds(7.0));
  EXPECT_GT(station.fedr_pbcom_link().pbcom_age(), 0);
  station.process_manager().restart_group({names::kPbcom}, nullptr);
  sim_.run_for(Duration::seconds(25.0));
  EXPECT_EQ(station.fedr_pbcom_link().pbcom_age(), 0);
}

TEST_F(StationTest, FedrCrashSeversConnection) {
  Station& station = make_station();
  station.inject_crash(names::kFedr);
  EXPECT_FALSE(station.fedr_pbcom_link().connected());
  EXPECT_EQ(station.fedr_pbcom_link().pbcom_age(), 1);
}

// --- Domain behaviour: telemetry -> antenna -> radio --------------------------------

TEST_F(StationTest, EphemerisDrivesAntennaAndRadio) {
  // Place the satellite in a pass: pick a time inside the first predicted
  // pass and fast-forward there with domain behaviour on.
  Station& station = make_station(true, /*domain=*/true);
  const auto passes = orbit::predict_passes(
      station.site(), station.satellite(), sim_.now(),
      sim_.now() + Duration::hours(24.0));
  ASSERT_FALSE(passes.empty());
  sim_.run_until(passes.front().max_elevation_time);

  const auto* ses =
      dynamic_cast<const SesComponent*>(station.component(names::kSes));
  const auto* str =
      dynamic_cast<const StrComponent*>(station.component(names::kStr));
  const auto* rtu =
      dynamic_cast<const RtuComponent*>(station.component(names::kRtu));
  ASSERT_NE(ses, nullptr);
  EXPECT_GT(ses->ephemerides_published(), 100u);
  EXPECT_GT(str->pointings_commanded(), 10u);
  EXPECT_GT(rtu->tunes_commanded(), 10u);
  // The tune commands made it through fedr -> pbcom -> serial -> radio.
  EXPECT_GT(station.radio().commands_applied(), 10u);
  // Radio is near the Doppler-shifted downlink.
  EXPECT_NEAR(station.radio().frequency_hz(), 437.1e6, 15e3);
  // Antenna tracks the satellite (small pointing error at 1 Hz updates).
  EXPECT_LT(station.antenna().pointing_error_deg(sim_.now()), 5.0);
}

TEST_F(StationTest, FusedFedrcomAlsoDrivesRadio) {
  Station& station = make_station(false, /*domain=*/true);
  const auto passes = orbit::predict_passes(
      station.site(), station.satellite(), sim_.now(),
      sim_.now() + Duration::hours(24.0));
  ASSERT_FALSE(passes.empty());
  sim_.run_until(passes.front().max_elevation_time);
  EXPECT_GT(station.radio().commands_applied(), 10u);
}

TEST_F(StationTest, SerialPortClosedDropsCommands) {
  Station& station = make_station();
  station.serial_port().close();
  EXPECT_FALSE(station.serial_port().write("FREQ 437100000", sim_.now()));
  EXPECT_EQ(station.serial_port().writes_dropped(), 1u);
}

// --- Hardware models ------------------------------------------------------------

TEST(Antenna, SlewsAtBoundedRate) {
  Antenna antenna;  // parks at az 0, el 90
  antenna.point(30.0, 60.0, TimePoint::origin());
  // After 1 s at 6 deg/s the pedestal has moved 6 degrees along each axis.
  const TimePoint later = TimePoint::from_seconds(1.0);
  EXPECT_NEAR(antenna.azimuth_deg(later), 6.0, 1e-9);
  EXPECT_NEAR(antenna.elevation_deg(later), 84.0, 1e-9);
  // Eventually it arrives and stops.
  const TimePoint arrived = TimePoint::from_seconds(30.0);
  EXPECT_NEAR(antenna.azimuth_deg(arrived), 30.0, 1e-9);
  EXPECT_NEAR(antenna.elevation_deg(arrived), 60.0, 1e-9);
  EXPECT_NEAR(antenna.pointing_error_deg(arrived), 0.0, 1e-9);
}

TEST(Antenna, TakesShortWayAroundAzimuth) {
  Antenna antenna;
  antenna.point(350.0, 90.0, TimePoint::origin());  // 10 deg the short way
  EXPECT_NEAR(antenna.azimuth_deg(TimePoint::from_seconds(1.0)), 354.0, 1e-9);
  EXPECT_NEAR(antenna.azimuth_deg(TimePoint::from_seconds(5.0)), 350.0, 1e-9);
}

TEST(Antenna, ElevationClamped) {
  Antenna antenna;
  antenna.point(0.0, 120.0, TimePoint::origin());
  EXPECT_DOUBLE_EQ(antenna.target_elevation_deg(), 90.0);
}

TEST(Radio, AppliesFreqAndModeCommands) {
  Radio radio;
  radio.apply_command("FREQ 437090000", TimePoint::origin());
  EXPECT_DOUBLE_EQ(radio.frequency_hz(), 437090000.0);
  radio.apply_command("MODE SSB", TimePoint::origin());
  EXPECT_EQ(radio.mode(), "SSB");
  EXPECT_EQ(radio.commands_applied(), 2u);
}

TEST(Radio, RejectsGarbage) {
  Radio radio;
  const double before = radio.frequency_hz();
  radio.apply_command("FREQ banana", TimePoint::origin());
  radio.apply_command("WAT", TimePoint::origin());
  radio.apply_command("FREQ -5", TimePoint::origin());
  EXPECT_DOUBLE_EQ(radio.frequency_hz(), before);
  EXPECT_EQ(radio.commands_rejected(), 3u);
}

// --- Background fault injector ----------------------------------------------------

TEST_F(StationTest, InjectorRealizesConfiguredRates) {
  StationConfig config;
  config.split_fedrcom = false;
  config.enable_domain_behavior = false;
  config.cal.mttf_fedrcom = Duration::minutes(10.0);
  station_ = std::make_unique<Station>(sim_, config);
  station_->boot_instant();

  InjectorConfig injector_config;
  injector_config.suppress_double_faults = false;
  injector_config.fedr_weibull_shape = 1.0;
  FaultInjector injector(*station_, injector_config);
  injector.start();
  sim_.run_for(Duration::days(10.0));

  const double measured =
      injector.inter_failure_times(names::kFedrcom).mean() / 60.0;
  EXPECT_NEAR(measured, 10.0, 1.0);
  EXPECT_GT(injector.injected(names::kFedrcom), 1000u);
  EXPECT_EQ(injector.total_injected(),
            injector.injected(names::kMbus) + injector.injected(names::kFedrcom) +
                injector.injected(names::kSes) + injector.injected(names::kStr) +
                injector.injected(names::kRtu));
}

TEST_F(StationTest, InjectorSuppressesDoubleFaults) {
  StationConfig config;
  config.split_fedrcom = false;
  config.cal.mttf_fedrcom = Duration::seconds(30.0);  // very hot
  station_ = std::make_unique<Station>(sim_, config);
  station_->boot_instant();

  InjectorConfig injector_config;  // suppress_double_faults = true
  FaultInjector injector(*station_, injector_config);
  injector.start();
  sim_.run_for(Duration::hours(1.0));
  // Nothing repairs failures here, so after the first crash every further
  // draw is suppressed: exactly one active failure per component at most.
  EXPECT_LE(station_->board().active_at(names::kFedrcom).size(), 1u);
}

}  // namespace
}  // namespace mercury::station
