// Ablation: MTTR vs oracle wrong-guess probability, trees IV vs V.
//
// §4.4 measures one point (p = 0.30). This sweep shows the full picture:
// tree IV's joint-failure MTTR grows linearly with p (each mistake costs a
// wasted pbcom restart plus a re-detect), while tree V is flat — promotion
// removes the guess-too-low option, so the oracle's error rate stops
// mattering for pbcom-class failures.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"

int main() {
  namespace names = mercury::core::component_names;
  using mercury::core::MercuryTree;
  using mercury::station::FailureMode;
  using mercury::station::OracleKind;
  using mercury::station::TrialSpec;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;

  print_header(
      "Ablation — joint {fedr,pbcom} failure MTTR vs oracle error rate p_low");

  const std::vector<int> widths = {8, 14, 14, 12};
  print_row({"p_low", "tree IV (s)", "tree V (s)", "IV/V"}, widths);
  print_rule(widths);

  std::uint64_t seed = 5'000;
  for (double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    auto measure = [&](MercuryTree tree) {
      TrialSpec spec;
      spec.tree = tree;
      spec.oracle = p == 0.0 ? OracleKind::kPerfect : OracleKind::kFaultyPerfect;
      spec.faulty_p_low = p;
      spec.mode = FailureMode::kJointFedrPbcom;
      spec.fail_component = names::kPbcom;
      spec.seed = seed += 31;
      return mercury::station::run_trials(spec, 150).mean();
    };
    const double iv = measure(MercuryTree::kTreeIV);
    const double v = measure(MercuryTree::kTreeV);
    print_row({mercury::util::format_fixed(p, 2),
               mercury::util::format_fixed(iv, 2),
               mercury::util::format_fixed(v, 2),
               mercury::util::format_fixed(iv / v, 2) + "x"},
              widths);
  }

  std::printf(
      "\nExpected: IV ~ 21.2 + p * (pbcom restart + redetect) ~ 21.2 + 21p s;\n"
      "V flat at ~21.2 s. The gap at p=0.3 is the paper's 29.19 vs 21.63.\n");
  return 0;
}
