// Ablation: end-to-end availability per restart tree.
//
// Availability = MTTF/(MTTF+MTTR) (§3). We run each published tree for ten
// simulated days under the Table-1 background failure processes (including
// pbcom aging and a 25% joint share of pbcom failures) with the appropriate
// oracle, sample functional state twice a second, and report uptime, the
// number of incidents, and downtime seconds per day. The analytic model's
// prediction is printed alongside.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/availability.h"
#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/experiment.h"
#include "station/fault_injector.h"

namespace {

using mercury::core::MercuryTree;
using mercury::station::OracleKind;
using mercury::util::Duration;

struct LongRunResult {
  double availability = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t restarts = 0;
  double downtime_s_per_day = 0.0;
};

LongRunResult long_run(MercuryTree tree, OracleKind oracle, double days,
                       std::uint64_t seed) {
  mercury::sim::Simulator sim(seed);
  mercury::station::TrialSpec spec;
  spec.tree = tree;
  spec.oracle = oracle;
  spec.faulty_p_low = 0.3;
  mercury::station::MercuryRig rig(sim, spec);
  rig.start();

  mercury::station::InjectorConfig injector_config;
  mercury::station::FaultInjector injector(rig.station(), injector_config);
  injector.start();

  // Sample functional state at 2 Hz; each miss charges half a second.
  double downtime = 0.0;
  mercury::sim::PeriodicTask sampler(sim, "availability-sampler",
                                     Duration::millis(500.0), [&] {
                                       if (!rig.station().all_functional()) {
                                         downtime += 0.5;
                                       }
                                     });
  sampler.start();

  const double horizon = days * 86400.0;
  sim.run_for(Duration::seconds(horizon));

  LongRunResult result;
  result.availability = 1.0 - downtime / horizon;
  result.failures = rig.station().board().total_injected();
  result.restarts = rig.rec().restarts_executed();
  result.downtime_s_per_day = downtime / days;
  return result;
}

}  // namespace

int main() {
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::util::format_fixed;

  print_header(
      "Ablation — availability per tree, 10 simulated days of Table-1\n"
      "failures (joint pbcom share 25%, pbcom aging on)");

  constexpr double kDays = 10.0;
  const std::vector<int> widths = {6, 9, 14, 10, 10, 16, 14};
  print_row({"Tree", "oracle", "availability", "failures", "restarts",
             "downtime s/day", "model avail."},
            widths);
  print_rule(widths);

  struct RowSpec {
    MercuryTree tree;
    OracleKind oracle;
    const char* oracle_label;
    double model_p_low;
  };
  const RowSpec rows[] = {
      {MercuryTree::kTreeI, OracleKind::kPerfect, "perfect", 0.0},
      {MercuryTree::kTreeII, OracleKind::kPerfect, "perfect", 0.0},
      {MercuryTree::kTreeIII, OracleKind::kPerfect, "perfect", 0.0},
      {MercuryTree::kTreeIV, OracleKind::kPerfect, "perfect", 0.0},
      {MercuryTree::kTreeIV, OracleKind::kFaultyPerfect, "faulty", 0.3},
      {MercuryTree::kTreeV, OracleKind::kFaultyPerfect, "faulty", 0.3},
  };

  std::uint64_t seed = 90'000;
  for (const RowSpec& row : rows) {
    const auto result = long_run(row.tree, row.oracle, kDays, seed += 7);
    const auto model = mercury::core::mercury_system_model(
        mercury::core::uses_split_fedrcom(row.tree), row.model_p_low);
    const double predicted = mercury::core::predicted_availability(
        mercury::core::make_mercury_tree(row.tree), model);
    print_row({mercury::core::to_string(row.tree), row.oracle_label,
               format_fixed(result.availability * 100.0, 4) + "%",
               std::to_string(result.failures), std::to_string(result.restarts),
               format_fixed(result.downtime_s_per_day, 1),
               format_fixed(predicted * 100.0, 4) + "%"},
              widths);
  }

  std::printf(
      "\nExpected ordering: I << II < III < IV (perfect); V(faulty) beats\n"
      "IV(faulty). fedr's ~11-minute MTTF dominates incident count, so the\n"
      "availability gap tracks the cheap-restart path for fedr-class\n"
      "failures. (Tree I and II failure counts differ from the split trees:\n"
      "the fused fedrcom is modeled with the 10-minute Table-1 MTTF.)\n");
  return 0;
}
