// Figure 5 reproduction: group consolidation of ses and str (tree III ->
// tree IV).
//
// §4.3: "with tree III it took on average 9.50 and 9.76 seconds to recover
// from a ses and str failure, respectively; with tree IV the system
// recovers in 6.25 and 6.11 seconds" — sequential detect/restart/detect/
// restart (MTTR_ses + MTTR_str flavored) collapses to a parallel restart
// (max(MTTR_ses, MTTR_str) flavored).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "core/transformations.h"
#include "station/experiment.h"

int main() {
  mercury::bench::TraceSession trace_session("bench_fig5_consolidation");
  namespace names = mercury::core::component_names;
  using namespace mercury::core;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::bench::vs_paper;
  using mercury::station::OracleKind;
  using mercury::station::TrialSpec;

  print_header("Figure 5 — group consolidation: ses + str (tree III -> IV)");

  auto tree_iv = consolidate_group(make_tree_iii(), names::kSes, names::kStr);
  std::printf("\nTree III:\n%s", make_tree_iii().render().c_str());
  std::printf("\nTree IV (= consolidate_group(tree III, ses, str)):\n%s",
              tree_iv.value().render().c_str());

  const std::vector<int> widths = {10, 18, 18, 14};
  print_row({"Failed", "tree III (paper)", "tree IV (paper)", "restarts III->IV"},
            widths);
  print_rule(widths);

  const double paper_iii[] = {9.50, 9.76};
  const double paper_iv[] = {6.25, 6.11};
  const std::string components[] = {names::kSes, names::kStr};

  // Flatten the old serial sequence — per component, a restart-count probe
  // trial plus the 100-trial mean for each tree — into one batch for the
  // experiment runner, preserving trial order (hence seeds and traces).
  constexpr int kTrials = 100;
  std::vector<TrialSpec> batch;
  const auto push_block = [&batch](TrialSpec spec) {
    batch.push_back(spec);  // the probe trial (restart count)
    for (int t = 0; t < kTrials; ++t) {
      TrialSpec trial = spec;
      trial.seed = spec.seed + static_cast<std::uint64_t>(t);
      batch.push_back(std::move(trial));
    }
  };
  std::uint64_t seed = 900;
  for (int i = 0; i < 2; ++i) {
    TrialSpec spec;
    spec.oracle = OracleKind::kPerfect;
    spec.fail_component = components[i];
    spec.tree = MercuryTree::kTreeIII;
    spec.seed = seed += 13;
    push_block(spec);
    spec.tree = MercuryTree::kTreeIV;
    spec.seed = seed += 13;
    push_block(spec);
  }
  const std::vector<mercury::station::TrialResult> results =
      mercury::station::run_trial_batch(batch);

  const auto block_mean = [&results](std::size_t first) {
    mercury::util::SampleStats stats;
    for (int t = 0; t < kTrials; ++t) stats.add(results[first + 1 + t].recovery);
    return stats.mean();
  };
  constexpr std::size_t kBlock = 1 + kTrials;
  for (int i = 0; i < 2; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * 2 * kBlock;
    const auto& r3 = results[base];
    const auto& r4 = results[base + kBlock];
    print_row({components[i], vs_paper(block_mean(base), paper_iii[i]),
               vs_paper(block_mean(base + kBlock), paper_iv[i]),
               std::to_string(r3.restarts) + " -> " + std::to_string(r4.restarts)},
              widths);
  }

  std::printf(
      "\nTree III needs two recovery actions per incident (the cure wedges\n"
      "the peer: an induced failure, §4.3); tree IV encodes the correlation\n"
      "into one consolidated cell and restarts both in parallel.\n");
  return trace_session.finish();
}
