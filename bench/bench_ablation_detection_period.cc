// Ablation: FD ping period vs recovery time and bus load.
//
// The paper chose a 1-second period "determined from operational experience
// to minimize detection time without overloading mbus" (§2.2). The sweep
// quantifies that trade: detection latency (and hence MTTR) scales with
// ~period/2, while ping traffic scales with 1/period.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"

int main() {
  namespace names = mercury::core::component_names;
  using mercury::core::MercuryTree;
  using mercury::station::OracleKind;
  using mercury::station::TrialSpec;
  using mercury::util::Duration;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;

  print_header(
      "Ablation — FD ping period vs MTTR (tree IV, perfect oracle) and bus load");

  const std::vector<int> widths = {12, 14, 14, 16};
  print_row({"period (s)", "rtu MTTR (s)", "ses MTTR (s)", "pings/sec (bus)"},
            widths);
  print_rule(widths);

  std::uint64_t seed = 7'000;
  for (double period : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    TrialSpec spec;
    spec.tree = MercuryTree::kTreeIV;
    spec.oracle = OracleKind::kPerfect;
    spec.cal.ping_period = Duration::seconds(period);

    spec.fail_component = names::kRtu;
    spec.seed = seed += 17;
    const double rtu = mercury::station::run_trials(spec, 100).mean();
    spec.fail_component = names::kSes;
    spec.seed = seed += 17;
    const double ses = mercury::station::run_trials(spec, 100).mean();

    const double pings_per_sec = 6.0 / period;  // six monitored components
    print_row({mercury::util::format_fixed(period, 2),
               mercury::util::format_fixed(rtu, 2),
               mercury::util::format_fixed(ses, 2),
               mercury::util::format_fixed(pings_per_sec, 1)},
              widths);
  }

  std::printf(
      "\nMTTR falls by ~period/2 as the period shrinks (ses pays twice: its\n"
      "induced str wedge is detected by pings too) while bus load grows as\n"
      "1/period — the operational trade behind the paper's 1 s choice.\n");
  return 0;
}
