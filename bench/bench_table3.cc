// Table 3 reproduction: "Summary of restart tree transformations".
//
// Table 3 is qualitative: the five trees, the transformation that produces
// each, and the assumptions each embodies. We regenerate it mechanically:
// the trees come from the transformation algebra (tree I evolved by
// depth-augment / split / group / consolidate / promote), and the
// assumption annotations come from the §4 predicates evaluated against the
// Mercury system model — not from hand-written strings.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/assumptions.h"
#include "core/availability.h"
#include "core/mercury_trees.h"
#include "core/transformations.h"

int main() {
  mercury::bench::TraceSession trace_session("bench_table3");
  using mercury::bench::print_header;
  using namespace mercury::core;

  print_header("Table 3 — restart tree transformations, regenerated");

  auto evolution = evolve_mercury_trees();
  if (!evolution.ok()) {
    std::fprintf(stderr, "evolution failed: %s\n",
                 evolution.error().message().c_str());
    return 1;
  }
  const auto& stages = evolution.value();

  const char* transformation_names[] = {
      "original tree (single cell)",
      "simple depth augmentation (Fig. 3)",
      "component split: fedrcom -> fedr + pbcom (Fig. 4, intermediate II')",
      "subtree depth augmentation: joint [fedr,pbcom] cell (Fig. 4)",
      "group consolidation: ses + str (Fig. 5)",
      "node promotion: pbcom onto the joint cell (Fig. 6)",
  };
  const char* usefulness[] = {
      "useful only if all component MTTRs are roughly equal",
      "useful when f_A + f_B > 0 (independent partial restarts help)",
      "separates high-MTTR/low-MTTF pbcom from low-MTTR/high-MTTF fedr",
      "useful when f_{A,B} > 0 (correlated failures curable in parallel)",
      "useful when f_A + f_B << f_{A,B} (ses/str always fail together)",
      "useful when the oracle is faulty (kills guess-too-low on pbcom)",
  };

  for (std::size_t i = 0; i < stages.size(); ++i) {
    const RestartTree& tree = stages[i];
    const bool split = tree.find_component(component_names::kFedr).has_value();
    const SystemModel model = mercury_system_model(split);

    std::printf("\n--- Stage %zu: %s ---\n", i, transformation_names[i]);
    std::printf("%s", tree.render().c_str());
    std::printf("restart groups: %zu   predicted system MTTR: %.2f s\n",
                tree.group_count(), predicted_system_mttr(tree, model));

    const auto a_cure = check_a_cure(tree, model);
    const auto a_independent = check_a_independent(tree, model);
    std::printf("embodies: A_cure=%s A_entire=yes A_independent=%s\n",
                a_cure.holds ? "yes" : "NO", a_independent.holds ? "yes" : "no");
    for (const auto& violation : a_independent.violations) {
      std::printf("  A_independent violation: %s\n", violation.c_str());
    }
    std::printf("use: %s\n", usefulness[i]);
  }

  std::printf(
      "\nNote (§4.3): tree III violates A_independent for ses/str — the cure\n"
      "itself induces the peer's failure; consolidation (IV) encodes that\n"
      "correlated-failure knowledge into the tree structure.\n");
  return 0;
}
