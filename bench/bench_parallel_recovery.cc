// Bench: DAG-parallel recovery dispatch vs the legacy serial Recoverer
// (ISSUE 8).
//
// The paper's recoverer runs one restart action at a time; when several
// independent faults land close together (correlated weather on the dish RF
// chain, a power brown-out clipping two boards), every queued cell pays the
// full latency of the cells ahead of it. The restart tree already encodes
// which cells are independent — disjoint (sibling) subtrees cannot
// interfere — so the DAG scheduler dispatches them concurrently and only
// serializes true ancestor/descendant conflicts.
//
// Grid: trees {II, IV} x 4 fault scenarios (three multi-fault, one
//       single-fault degeneracy) x 3 dispatch modes (serial / dag /
//       on-demand), >= 25 seeds per cell, perfect oracle, no restart faults.
//
// Asserted invariants (ISSUE 8 acceptance criteria):
//   * zero stalls / timeouts / hard failures on every row;
//   * on every multi-fault cell, DAG mean recovery is strictly below
//     serial mean recovery (the whole point of the scheduler);
//   * DAG multi-fault trials really overlap restarts (peak concurrency
//     >= 2 somewhere in every cell) while serial trials never exceed 1;
//   * the single-fault degeneracy produces byte-identical traces under
//     serial and DAG dispatch — with nothing to parallelize, the scheduler
//     is a bit-for-bit no-op;
//   * same-seed same-mode trials are byte-identical (determinism), and the
//     whole grid runs through run_trial_batch, whose output is
//     byte-identical for any MERCURY_JOBS;
//   * every trace passes the checker, including the new
//     conflicting-restart overlap invariant (TraceSession gates the exit
//     code).
//
// Writes BENCH_parallel.json (mean/p95 recovery, peak concurrency, absorbs
// per cell) into $MERCURY_BENCH_DIR (default: the working directory) so CI
// can diff the numbers PR over PR. MERCURY_PARALLEL_QUICK=1 shrinks the
// grid for CI.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "core/recoverer.h"
#include "station/experiment.h"
#include "util/stats.h"

namespace {

using mercury::core::DispatchMode;
using mercury::core::MercuryTree;
using mercury::station::OracleKind;
using mercury::station::TrialResult;
using mercury::station::TrialSpec;
using mercury::util::Duration;

struct Scenario {
  std::string name;
  std::string primary;
  std::vector<TrialSpec::ExtraFault> extras;
  bool multi_fault() const { return !extras.empty(); }
};

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"pbcom+rtu", "pbcom", {{"rtu", Duration::millis(50.0)}}},
      {"pbcom+ses+rtu",
       "pbcom",
       {{"ses", Duration::millis(30.0)}, {"rtu", Duration::millis(60.0)}}},
      {"ses+rtu", "ses", {{"rtu", Duration::millis(40.0)}}},
      {"pbcom-single", "pbcom", {}},
  };
  return kScenarios;
}

struct Mode {
  std::string name;
  DispatchMode dispatch;
};

const std::vector<Mode>& modes() {
  static const std::vector<Mode> kModes = {
      {"serial", DispatchMode::kSerial},
      {"dag", DispatchMode::kDag},
      {"ondemand", DispatchMode::kOnDemand},
  };
  return kModes;
}

/// Tree II predates the fedr/pbcom split: the paper's monolithic fedrcom
/// stands in for pbcom there (same dish-RF failure domain).
std::string resolve(MercuryTree tree, const std::string& name) {
  if (tree == MercuryTree::kTreeII && name == "pbcom") return "fedrcom";
  return name;
}

TrialSpec make_spec(MercuryTree tree, const Scenario& scenario,
                    const Mode& mode, std::uint64_t seed) {
  TrialSpec spec;
  spec.tree = tree;
  spec.oracle = OracleKind::kPerfect;
  spec.fail_component = resolve(tree, scenario.primary);
  spec.extra_faults = scenario.extras;
  for (auto& extra : spec.extra_faults) {
    extra.component = resolve(tree, extra.component);
  }
  spec.dispatch = mode.dispatch;
  spec.seed = seed;
  spec.timeout = Duration::seconds(300.0);
  return spec;
}

struct CellStats {
  mercury::util::SampleStats recovery;
  int trials = 0;
  int peak_concurrency = 0;       // max over trials of max_concurrent_restarts
  int trials_with_overlap = 0;    // trials whose peak reached >= 2
  int absorbed = 0;
  int stalls = 0;
};

std::string tree_name(MercuryTree tree) {
  return tree == MercuryTree::kTreeII ? "II" : "IV";
}

}  // namespace

int main() {
  mercury::bench::TraceSession session("bench_parallel_recovery");
  const bool quick = [] {
    const char* flag = std::getenv("MERCURY_PARALLEL_QUICK");
    return flag != nullptr && std::string(flag) == "1";
  }();
  const int seeds = quick ? 5 : 25;
  const std::vector<MercuryTree> trees = {MercuryTree::kTreeII,
                                          MercuryTree::kTreeIV};

  mercury::bench::print_header(
      "DAG-parallel recovery vs serial dispatch (ISSUE 8)\n"
      "grid: " + std::to_string(seeds) +
      " seeds x {tree II, tree IV} x 4 fault scenarios x "
      "{serial, dag, ondemand}, perfect oracle" + (quick ? "  [quick]" : ""));

  const std::vector<int> widths = {5, 14, 9, 10, 10, 5, 8, 7, 7};
  mercury::bench::print_row({"tree", "scenario", "mode", "mean(s)", "p95(s)",
                             "peak", "overlap", "absorb", "stalls"},
                            widths);
  mercury::bench::print_rule(widths);

  // One batch over the whole grid in serial order: byte-identical results
  // and traces for any MERCURY_JOBS.
  std::vector<TrialSpec> batch;
  for (const MercuryTree tree : trees) {
    for (const Scenario& scenario : scenarios()) {
      for (const Mode& mode : modes()) {
        for (int i = 0; i < seeds; ++i) {
          batch.push_back(make_spec(tree, scenario, mode, 8000 + i));
        }
      }
    }
  }
  const std::vector<TrialResult> batch_results =
      mercury::station::run_trial_batch(batch);

  int failures = 0;
  std::size_t next_result = 0;
  // (tree, scenario, mode) -> stats, insertion-ordered for the JSON dump.
  std::vector<std::pair<std::string, CellStats>> cells;
  std::map<std::string, const CellStats*> by_key;

  for (const MercuryTree tree : trees) {
    for (const Scenario& scenario : scenarios()) {
      for (const Mode& mode : modes()) {
        CellStats stats;
        stats.trials = seeds;
        for (int i = 0; i < seeds; ++i) {
          const TrialResult& result = batch_results[next_result++];
          stats.peak_concurrency =
              std::max(stats.peak_concurrency, result.max_concurrent_restarts);
          if (result.max_concurrent_restarts >= 2) ++stats.trials_with_overlap;
          stats.absorbed += result.absorbed_restarts;
          if (result.timed_out || result.hard_failure) {
            ++stats.stalls;
            std::fprintf(stderr, "STALL: tree %s %s %s seed %d (%s)\n",
                         tree_name(tree).c_str(), scenario.name.c_str(),
                         mode.name.c_str(), 8000 + i,
                         result.timed_out ? "timed out" : "hard failure");
          } else {
            stats.recovery.add(result.recovery);
          }
        }
        failures += stats.stalls;

        // Serial dispatch must never overlap actions, in any scenario.
        if (mode.dispatch == DispatchMode::kSerial &&
            stats.peak_concurrency > 1) {
          ++failures;
          std::fprintf(stderr, "SERIAL-OVERLAP: tree %s %s peak %d\n",
                       tree_name(tree).c_str(), scenario.name.c_str(),
                       stats.peak_concurrency);
        }
        // DAG dispatch on a multi-fault scenario must actually overlap.
        if (mode.dispatch == DispatchMode::kDag && scenario.multi_fault() &&
            stats.trials_with_overlap == 0) {
          ++failures;
          std::fprintf(stderr, "NO-OVERLAP: tree %s %s dag never reached 2 "
                               "concurrent restarts\n",
                       tree_name(tree).c_str(), scenario.name.c_str());
        }

        mercury::bench::print_row(
            {tree_name(tree), scenario.name, mode.name,
             mercury::util::format_fixed(stats.recovery.mean(), 2),
             stats.recovery.count() > 0
                 ? mercury::util::format_fixed(stats.recovery.percentile(95.0),
                                               2)
                 : "-",
             std::to_string(stats.peak_concurrency),
             std::to_string(stats.trials_with_overlap),
             std::to_string(stats.absorbed), std::to_string(stats.stalls)},
            widths);

        // Determinism: same seed + same mode => byte-identical trace.
        const TrialSpec spec = make_spec(tree, scenario, mode, 8000);
        TrialResult first, second;
        const std::string trace_a =
            mercury::bench::traced_trial_jsonl(spec, &first);
        const std::string trace_b =
            mercury::bench::traced_trial_jsonl(spec, &second);
        if (trace_a != trace_b || trace_a.empty()) {
          ++failures;
          std::fprintf(stderr, "NONDETERMINISM: tree %s %s %s\n",
                       tree_name(tree).c_str(), scenario.name.c_str(),
                       mode.name.c_str());
        }

        const std::string key =
            tree_name(tree) + "/" + scenario.name + "/" + mode.name;
        cells.emplace_back(key, stats);
      }
    }
    mercury::bench::print_rule(widths);
  }
  for (const auto& [key, stats] : cells) by_key[key] = &stats;

  // The tentpole claim: DAG strictly beats serial mean recovery on every
  // multi-fault cell (and the single-fault degeneracy costs nothing — the
  // byte-identical check below is stronger than a mean comparison).
  for (const MercuryTree tree : trees) {
    for (const Scenario& scenario : scenarios()) {
      if (!scenario.multi_fault()) continue;
      const double serial =
          by_key.at(tree_name(tree) + "/" + scenario.name + "/serial")
              ->recovery.mean();
      const double dag =
          by_key.at(tree_name(tree) + "/" + scenario.name + "/dag")
              ->recovery.mean();
      if (!(dag < serial)) {
        ++failures;
        std::fprintf(stderr, "NO-SPEEDUP: tree %s %s dag %.2f >= serial %.2f\n",
                     tree_name(tree).c_str(), scenario.name.c_str(), dag,
                     serial);
      } else {
        std::printf("  -> tree %s %s: dag saves %.2f s mean recovery "
                    "(%.2f -> %.2f)\n",
                    tree_name(tree).c_str(), scenario.name.c_str(),
                    serial - dag, serial, dag);
      }
    }
  }

  // Single-fault degeneracy: with one fault there is nothing to overlap, so
  // serial and DAG dispatch must produce byte-identical traces seed by seed.
  for (const MercuryTree tree : trees) {
    TrialSpec serial_spec =
        make_spec(tree, scenarios().back(), modes()[0], 8000);
    TrialSpec dag_spec = serial_spec;
    dag_spec.dispatch = DispatchMode::kDag;
    TrialResult serial_result, dag_result;
    const std::string serial_trace =
        mercury::bench::traced_trial_jsonl(serial_spec, &serial_result);
    const std::string dag_trace =
        mercury::bench::traced_trial_jsonl(dag_spec, &dag_result);
    if (serial_trace != dag_trace || serial_trace.empty()) {
      ++failures;
      std::fprintf(stderr,
                   "DEGENERACY-DIVERGED: tree %s single-fault serial and dag "
                   "traces differ\n",
                   tree_name(tree).c_str());
    }
    if (serial_result.recovery.to_seconds() !=
        dag_result.recovery.to_seconds()) {
      ++failures;
      std::fprintf(stderr,
                   "DEGENERACY-DIVERGED: tree %s single-fault recovery "
                   "%.6f != %.6f\n",
                   tree_name(tree).c_str(),
                   serial_result.recovery.to_seconds(),
                   dag_result.recovery.to_seconds());
    }
  }

  // BENCH_parallel.json: flat schema so CI can diff with jq.
  {
    const char* dir = std::getenv("MERCURY_BENCH_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
        "BENCH_parallel.json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"bench_parallel_recovery\",\n"
        << "  \"seeds\": " << seeds << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellStats& s = cells[i].second;
      out << "    {\"cell\": \"" << cells[i].first << "\", "
          << "\"mean_recovery_s\": "
          << mercury::util::format_fixed(s.recovery.mean(), 4) << ", "
          << "\"p95_recovery_s\": "
          << mercury::util::format_fixed(
                 s.recovery.count() > 0 ? s.recovery.percentile(95.0) : 0.0, 4)
          << ", \"peak_concurrency\": " << s.peak_concurrency
          << ", \"trials_with_overlap\": " << s.trials_with_overlap
          << ", \"absorbed\": " << s.absorbed << ", \"stalls\": " << s.stalls
          << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.good()) {
      ++failures;
      std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    } else {
      std::printf("json: %s (%zu cells)\n", path.c_str(), cells.size());
    }
  }

  std::printf("\n");
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d violations\n", failures);
    return 1;
  }
  std::printf(
      "OK: zero stalls; dag strictly beats serial on every multi-fault "
      "cell; serial never overlaps; single-fault dag is byte-identical to "
      "serial; same-seed traces identical\n");
  return session.finish();
}
