// Ablation: detection robustness — missed-ping threshold vs message loss.
//
// The paper's FD reports a component on its first missed ping, which is
// sound because mbus is TCP (lossless in steady state). This sweep shows
// what that choice costs on a lossy transport: every dropped ping or pong
// becomes a spurious restart. Raising the suspicion threshold to k
// consecutive misses suppresses the false positives at the price of
// (k-1) extra ping periods of detection latency on real failures.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/experiment.h"

namespace {

namespace names = mercury::core::component_names;
using mercury::core::MercuryTree;
using mercury::station::MercuryRig;
using mercury::station::OracleKind;
using mercury::station::TrialSpec;
using mercury::util::Duration;

/// Spurious restarts during a failure-free hour on a lossy bus.
std::uint64_t spurious_restarts(double loss, int misses, std::uint64_t seed) {
  mercury::sim::Simulator sim(seed);
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kHeuristic;
  spec.bus_loss_probability = loss;
  spec.fd_misses_before_report = misses;
  MercuryRig rig(sim, spec);
  rig.start();
  sim.run_for(Duration::hours(1.0));
  return rig.rec().restarts_executed();
}

/// MTTR for a genuine rtu crash under the same configuration.
double crash_mttr(double loss, int misses, std::uint64_t seed) {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kPerfect;
  spec.fail_component = names::kRtu;
  spec.bus_loss_probability = loss;
  spec.fd_misses_before_report = misses;
  spec.seed = seed;
  return mercury::station::run_trials(spec, 60).mean();
}

}  // namespace

int main() {
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::util::format_fixed;

  print_header(
      "Ablation — detection robustness: consecutive-miss threshold k vs\n"
      "bus loss rate. Left: spurious restarts per failure-free hour.\n"
      "Right: MTTR of a real rtu crash (60 trials).");

  const std::vector<int> widths = {10, 12, 12, 12, 14, 14};
  print_row({"loss", "k=1 spur.", "k=2 spur.", "k=3 spur.", "k=1 MTTR",
             "k=3 MTTR"},
            widths);
  print_rule(widths);

  std::uint64_t seed = 88'000;
  for (double loss : {0.0, 0.001, 0.005, 0.02}) {
    seed += 101;
    print_row({format_fixed(loss * 100.0, 1) + "%",
               std::to_string(spurious_restarts(loss, 1, seed)),
               std::to_string(spurious_restarts(loss, 2, seed + 1)),
               std::to_string(spurious_restarts(loss, 3, seed + 2)),
               format_fixed(crash_mttr(loss, 1, seed + 3), 2),
               format_fixed(crash_mttr(loss, 3, seed + 4), 2)},
              widths);
  }

  std::printf(
      "\nExpected: at 0%% loss (Mercury's TCP bus) k=1 is free — the paper's\n"
      "choice is right for its transport. At 0.5-2%% loss, k=1 restarts\n"
      "healthy components dozens of times an hour; k=3 eliminates nearly\n"
      "all of it for ~2 ping periods of added detection latency.\n");
  return 0;
}
