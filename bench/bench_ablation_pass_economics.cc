// Ablation: pass economics (§5.2) — what recovery time buys you.
//
// "A large MTTF does not guarantee a failure-free pass, but a short MTTR
// can provide high assurance that we will not lose the whole pass as a
// result of a failure."
//
// For each tree we run many independent passes with one failure injected at
// a random moment mid-pass (random victim, weighted by Table-1 rates) and
// account for the downlink: science data captured, and whether the outage
// broke the link (>15 s => session lost). Tree I's ~25 s recoveries lose
// the session nearly every time; tree IV/V's ~6 s recoveries keep it.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "orbit/pass_predictor.h"
#include "sim/simulator.h"
#include "station/downlink.h"
#include "station/experiment.h"

namespace {

using mercury::core::MercuryTree;
using mercury::station::DownlinkSession;
using mercury::station::OracleKind;
using mercury::station::SessionReport;
using mercury::util::Duration;

struct PassOutcome {
  int passes = 0;
  int lost = 0;
  double captured = 0.0;
  double offered = 0.0;
};

/// One pass with a mid-pass failure; returns the session report.
SessionReport run_pass(MercuryTree tree, std::uint64_t seed) {
  mercury::sim::Simulator sim(seed);
  mercury::station::TrialSpec spec;
  spec.tree = tree;
  spec.oracle = OracleKind::kPerfect;
  mercury::station::MercuryRig rig(sim, spec);
  rig.start();

  // Take a real predicted pass for its realistic duration/shape, but shift
  // its window to start right away: the downlink accounting samples station
  // function over the window, so idling through hours of virtual time
  // before AOS would only burn ping events.
  static const Duration kPassDuration = [] {
    mercury::sim::Simulator probe_sim(1);
    mercury::station::TrialSpec probe_spec;
    mercury::station::MercuryRig probe(probe_sim, probe_spec);
    const auto passes = mercury::orbit::predict_passes(
        probe.station().site(), probe.station().satellite(), probe_sim.now(),
        probe_sim.now() + Duration::hours(24.0));
    return passes.front().duration();
  }();
  mercury::orbit::Pass pass;
  pass.aos = sim.now() + Duration::seconds(30.0);
  pass.los = pass.aos + kPassDuration;
  pass.max_elevation_time = pass.aos + kPassDuration / 2.0;

  DownlinkSession session(rig.station(), pass);
  session.start();

  // Inject one failure at a uniformly random moment of the pass; weight the
  // victim by Table-1 failure shares (fedr-class failures dominate).
  auto& rng = sim.rng();
  const double at = rng.uniform(0.0, pass.duration().to_seconds() * 0.8);
  sim.run_until(pass.aos + Duration::seconds(at));

  const bool split = mercury::core::uses_split_fedrcom(tree);
  const double roll = rng.next_double();
  std::string victim;
  if (roll < 0.70) {
    victim = split ? "fedr" : "fedrcom";  // the 10-minute-MTTF class
  } else if (roll < 0.80) {
    victim = "ses";
  } else if (roll < 0.90) {
    victim = "str";
  } else {
    victim = "rtu";
  }
  rig.station().inject_crash(victim);

  sim.run_until(pass.los + Duration::seconds(1.0));
  return session.report();
}

}  // namespace

int main() {
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::util::format_fixed;

  print_header(
      "Ablation — pass economics (§5.2): one mid-pass failure per pass,\n"
      "link breaks after a 15 s outage; 60 passes per tree, perfect oracle");

  const std::vector<int> widths = {6, 14, 12, 16, 18};
  print_row({"Tree", "passes lost", "data kept", "mean outage (s)",
             "worst outage (s)"},
            widths);
  print_rule(widths);

  std::uint64_t seed = 77'000;
  for (MercuryTree tree :
       {MercuryTree::kTreeI, MercuryTree::kTreeII, MercuryTree::kTreeIV,
        MercuryTree::kTreeV}) {
    PassOutcome outcome;
    double outage_sum = 0.0;
    double worst = 0.0;
    for (int i = 0; i < 60; ++i) {
      const SessionReport report = run_pass(tree, ++seed);
      ++outcome.passes;
      outcome.lost += report.link_broken ? 1 : 0;
      outcome.captured += report.captured_bits;
      outcome.offered += report.offered_bits;
      outage_sum += report.outage.to_seconds();
      worst = std::max(worst, report.longest_outage.to_seconds());
    }
    print_row({mercury::core::to_string(tree),
               std::to_string(outcome.lost) + "/" + std::to_string(outcome.passes),
               format_fixed(100.0 * outcome.captured / outcome.offered, 1) + "%",
               format_fixed(outage_sum / outcome.passes, 2),
               format_fixed(worst, 2)},
              widths);
  }

  std::printf(
      "\nTree I's full reboots (~25 s) exceed the 15 s link-break budget on\n"
      "every failure: the session is lost. Trees IV/V recover in ~6 s even\n"
      "for tracking-subsystem failures, so the pass survives with most of\n"
      "its data — §5.2's argument for optimizing MTTR, quantified.\n");
  return 0;
}
