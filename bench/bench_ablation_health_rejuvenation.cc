// Ablation: proactive rejuvenation from health beacons (§7) vs reactive
// recovery only.
//
// fedr leaks memory (8 MB/min) and wears out (Weibull k=3 lifetime whose
// mean we set to ~8 minutes of uptime). Without the health monitor, every
// wear-out is an *unplanned* failure: detection latency plus restart,
// possibly mid-pass. With the monitor, the memory trend triggers a planned
// restart before the crash — no detection latency, schedulable into
// maintenance windows — so unplanned fedr failures mostly disappear.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/health_monitor.h"
#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/experiment.h"
#include "station/fault_injector.h"
#include "station/health_reporter.h"

namespace {

namespace names = mercury::core::component_names;
using mercury::util::Duration;

struct Outcome {
  std::uint64_t unplanned_failures = 0;
  std::uint64_t planned_restarts = 0;
  double downtime_s = 0.0;
  double planned_downtime_s = 0.0;

  double unplanned_downtime_s() const { return downtime_s - planned_downtime_s; }
};

Outcome long_run(bool with_health_monitor, std::uint64_t seed) {
  mercury::sim::Simulator sim(seed);
  mercury::station::TrialSpec spec;
  spec.tree = mercury::core::MercuryTree::kTreeIV;
  spec.oracle = mercury::station::OracleKind::kHeuristic;
  // fedr wears out after ~8 minutes of uptime; other rates at defaults.
  spec.cal.mttf_fedr = Duration::minutes(8.0);
  mercury::station::MercuryRig rig(sim, spec);
  rig.start();

  mercury::station::InjectorConfig injector_config;
  injector_config.fedr_weibull_shape = 3.0;
  mercury::station::FaultInjector injector(rig.station(), injector_config);
  injector.start();

  std::unique_ptr<mercury::station::StationHealthReporter> reporter;
  std::unique_ptr<mercury::core::HealthMonitor> monitor;
  if (with_health_monitor) {
    reporter =
        std::make_unique<mercury::station::StationHealthReporter>(rig.station(), "hm");
    // fedr's leak hits this limit after ~5 minutes of uptime — comfortably
    // before the ~8-minute wear-out knee.
    mercury::core::HealthPolicy policy;
    policy.memory_limit_mb = 88.0;
    policy.min_spacing = Duration::minutes(3.0);
    monitor = std::make_unique<mercury::core::HealthMonitor>(
        sim, rig.station().bus(), "hm", policy);
    monitor->set_rejuvenator([&rig](const std::string& component) {
      return rig.rec().planned_restart(component);
    });
    rig.station().add_bus_restart_listener([&] { monitor->reattach(); });
    reporter->start();
    monitor->start();
  }

  double downtime = 0.0;
  mercury::sim::PeriodicTask sampler(sim, "sampler", Duration::millis(500.0), [&] {
    if (!rig.station().all_functional()) downtime += 0.5;
  });
  sampler.start();

  sim.run_for(Duration::days(2.0));

  Outcome outcome;
  outcome.unplanned_failures = injector.injected(names::kFedr);
  outcome.planned_restarts = rig.rec().planned_restarts();
  outcome.downtime_s = downtime;
  for (const auto& record : rig.rec().history()) {
    if (record.planned) {
      outcome.planned_downtime_s +=
          (record.complete_time - record.report_time).to_seconds();
    }
  }
  return outcome;
}

}  // namespace

int main() {
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::util::format_fixed;

  print_header(
      "Ablation — §7 health beacons: proactive rejuvenation vs reactive only\n"
      "fedr leaks 8 MB/min and wears out ~8 min (Weibull k=3); 2 simulated\n"
      "days, tree IV, heuristic oracle");

  const std::vector<int> widths = {22, 20, 18, 16, 14, 14};
  print_row({"Mode", "unplanned failures", "planned restarts", "unplanned dt s",
             "planned dt s", "total dt s"},
            widths);
  print_rule(widths);

  const Outcome reactive = long_run(false, 4242);
  const Outcome proactive = long_run(true, 4242);
  for (const auto& [label, o] :
       {std::pair<const char*, const Outcome&>{"reactive only", reactive},
        std::pair<const char*, const Outcome&>{"with health monitor",
                                               proactive}}) {
    print_row({label, std::to_string(o.unplanned_failures),
               std::to_string(o.planned_restarts),
               format_fixed(o.unplanned_downtime_s(), 1),
               format_fixed(o.planned_downtime_s, 1),
               format_fixed(o.downtime_s, 1)},
              widths);
  }

  std::printf(
      "\nThe §5.2 trade, quantified: the monitor converts most *unplanned*\n"
      "downtime (crashes at arbitrary — possibly mid-pass — moments, paid\n"
      "with detection latency) into *planned* downtime, which skips\n"
      "detection and can be scheduled into maintenance windows between\n"
      "passes. Total seconds of downtime may rise; seconds of expensive\n"
      "downtime fall sharply, which is the quantity §5.2 says to optimize.\n");
  return 0;
}
