#!/usr/bin/env python3
"""Perf-trajectory gate for bench_micro (ISSUE 10).

Compares a fresh BENCH_micro.json against the committed baseline
(bench/baselines/BENCH_micro.baseline.json) and fails when any metric drops
below baseline * (1 - tolerance).

The tolerance is deliberately generous (default 0.40): CI runners are
shared, throttled and noisy, and the gate exists to catch *structural*
regressions — an accidental O(n^2), a lost cache, a reintroduced per-event
allocation — which show up as 2x-10x drops, not 20% wobble. Improvements
never fail the gate; they print a hint to refresh the baseline
(docs/EXPERIMENTS.md describes how).

Usage:
    check_bench_micro.py <fresh BENCH_micro.json> [baseline.json]
                         [--tolerance 0.40]

Exit codes: 0 pass, 1 regression or schema mismatch, 2 usage/IO error.
"""

import argparse
import json
import sys


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if doc.get("bench") != "bench_micro":
        print(f"error: {path} is not a bench_micro result", file=sys.stderr)
        sys.exit(1)
    return doc, {m["metric"]: float(m["value"]) for m in doc.get("metrics", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="BENCH_micro.json from the current build")
    parser.add_argument(
        "baseline",
        nargs="?",
        default="bench/baselines/BENCH_micro.baseline.json",
        help="committed baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.40,
        help="allowed fractional drop below baseline (default: %(default)s)",
    )
    args = parser.parse_args()

    fresh_doc, fresh = load_metrics(args.fresh)
    base_doc, base = load_metrics(args.baseline)

    if fresh_doc.get("quick") and not base_doc.get("quick"):
        print(
            "error: quick-mode result compared against a full-run baseline; "
            "quick workloads are ~10x smaller and not comparable",
            file=sys.stderr,
        )
        sys.exit(1)

    failures = 0
    improvements = 0
    width = max((len(name) for name in base), default=10)
    for name, expected in sorted(base.items()):
        measured = fresh.get(name)
        if measured is None:
            print(f"FAIL {name:<{width}}  missing from fresh result")
            failures += 1
            continue
        floor = expected * (1.0 - args.tolerance)
        ratio = measured / expected if expected > 0 else float("inf")
        verdict = "ok  " if measured >= floor else "FAIL"
        if measured < floor:
            failures += 1
        elif ratio > 1.0 + args.tolerance:
            improvements += 1
        print(
            f"{verdict} {name:<{width}}  measured {measured:>14.0f}  "
            f"baseline {expected:>14.0f}  ratio {ratio:5.2f}  "
            f"floor {floor:>14.0f}"
        )

    extra = sorted(set(fresh) - set(base))
    for name in extra:
        print(f"note {name:<{width}}  not in baseline (new metric?)")

    if failures:
        print(
            f"\nFAIL: {failures} metric(s) below baseline*(1-{args.tolerance}); "
            "if the drop is intended, refresh the baseline "
            "(see docs/EXPERIMENTS.md)"
        )
        return 1
    if improvements:
        print(
            f"\nok: all metrics within tolerance; {improvements} improved "
            f">{args.tolerance:.0%} — consider refreshing the baseline"
        )
    else:
        print("\nok: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
