// Ablation: multi-tier replicated checkpoint storage (ISSUE 7).
//
// ISSUE 3's single in-memory checkpoint is a redundancy cliff: any fault
// that reaches the one copy (a tmpfs wipe, a fault-suspect shed, corruption)
// forces the full cold-start reconstruction the checkpoint existed to avoid.
// ISSUE 7 layers the store — L0 local, L1 partner replica in a cross-cell
// buddy component, L2 stable file-backed — and this bench measures what each
// tier buys under fault mixes that target the tiers themselves.
//
// Grid: tree IV x {pbcom, ses} x 4 schemes (none / L0 / L0+L1 / L0+L1+L2)
//       x 5 fault mixes (clean / l0-kill / l0-corrupt / l0-poison /
//       l0-kill+partner-down), >= 25 seeds per cell, hardened restart path.
//
// Asserted invariants (ISSUE 7 acceptance criteria):
//   * zero stalls / hard failures on every row — losing tiers degrades a
//     warm start into a cold one, never into an outage;
//   * under the l0-kill mixes, L0+L1's warm-hit rate is strictly above
//     L0-only's (the partner replica absorbs local-tier loss);
//   * under l0-kill+partner-down, L0+L1+L2's warm-hit rate is strictly
//     above L0+L1's (stable storage absorbs correlated tier loss);
//   * same-seed trials produce byte-identical traces in every scheme/mix
//     (tier faults ride the seeded rng streams, never wall clock).
//
// Writes BENCH_checkpoint.json (warm-hit rate + mean recovery per cell)
// into $MERCURY_BENCH_DIR (default: the working directory) so CI can diff
// the numbers PR over PR. MERCURY_TIERS_QUICK=1 shrinks the grid for CI.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"
#include "util/stats.h"

namespace {

using mercury::core::MercuryTree;
using mercury::station::OracleKind;
using mercury::station::TrialResult;
using mercury::station::TrialSpec;
using CheckpointDamage = mercury::station::TrialSpec::CheckpointDamage;

struct Scheme {
  std::string name;
  bool checkpoints = false;
  bool l1 = false;
  bool l2 = false;
};

const std::vector<Scheme>& schemes() {
  static const std::vector<Scheme> kSchemes = {
      {"none", false, false, false},
      {"l0", true, false, false},
      {"l0l1", true, true, false},
      {"l0l1l2", true, true, true},
  };
  return kSchemes;
}

struct Mix {
  std::string name;
  CheckpointDamage l0_damage = CheckpointDamage::kNone;
  bool partner_down = false;  // correlated: crash the L1 host too
};

const std::vector<Mix>& mixes() {
  static const std::vector<Mix> kMixes = {
      {"clean", CheckpointDamage::kNone, false},
      {"l0-kill", CheckpointDamage::kKill, false},
      {"l0-corrupt", CheckpointDamage::kCorrupt, false},
      {"l0-poison", CheckpointDamage::kPoison, false},
      {"l0-kill+partner", CheckpointDamage::kKill, true},
  };
  return kMixes;
}

TrialSpec make_spec(const std::string& victim, const Scheme& scheme,
                    const Mix& mix, std::uint64_t seed) {
  TrialSpec spec;
  spec.tree = MercuryTree::kTreeIV;
  spec.oracle = OracleKind::kHeuristic;
  spec.fail_component = victim;
  spec.seed = seed;
  // Hardened everywhere: a poisoned warm start is a restart-path fault and
  // only the restart deadline notices it (ISSUE 2 / ISSUE 3 precedent).
  spec.harden_restart_path = true;
  spec.enable_checkpoints = scheme.checkpoints;
  spec.checkpoint_l1 = scheme.l1;
  spec.checkpoint_l2 = scheme.l2;
  spec.checkpoint_damage = mix.l0_damage;
  spec.fail_partner_too = mix.partner_down;
  spec.timeout = mercury::util::Duration::seconds(300.0);
  return spec;
}

struct CellStats {
  mercury::util::SampleStats recovery;
  int trials = 0;
  int warm_l0 = 0, warm_l1 = 0, warm_l2 = 0;
  int cold = 0, crashes = 0, rebuilds = 0, stalls = 0;
  int warm_total() const { return warm_l0 + warm_l1 + warm_l2; }
  double warm_rate() const {
    return trials > 0 ? static_cast<double>(warm_total()) / trials : 0.0;
  }
};

}  // namespace

int main() {
  mercury::bench::TraceSession session("bench_ablation_checkpoint_tiers");
  const bool quick = [] {
    const char* flag = std::getenv("MERCURY_TIERS_QUICK");
    return flag != nullptr && std::string(flag) == "1";
  }();
  const int seeds = quick ? 5 : 25;
  const std::vector<std::string> victims = {"pbcom", "ses"};

  mercury::bench::print_header(
      "Ablation: multi-tier checkpoint storage under tier faults (ISSUE 7)\n"
      "grid: " + std::to_string(seeds) +
      " seeds x 4 schemes x 5 fault mixes x {pbcom, ses}, tree IV, "
      "hardened" + (quick ? "  [quick]" : ""));

  const std::vector<int> widths = {7, 8, 16, 10, 10, 8, 5, 5, 5, 6, 8, 7};
  mercury::bench::print_row({"victim", "scheme", "mix", "mean(s)", "p95(s)",
                             "warm", "l0", "l1", "l2", "cold", "rebuild",
                             "stalls"},
                            widths);
  mercury::bench::print_rule(widths);

  // One batch over the whole grid in serial order: byte-identical results
  // and traces for any MERCURY_JOBS.
  std::vector<TrialSpec> batch;
  for (const std::string& victim : victims) {
    for (const Scheme& scheme : schemes()) {
      for (const Mix& mix : mixes()) {
        for (int i = 0; i < seeds; ++i) {
          batch.push_back(make_spec(victim, scheme, mix, 7000 + i));
        }
      }
    }
  }
  const std::vector<TrialResult> batch_results =
      mercury::station::run_trial_batch(batch);

  int failures = 0;
  std::size_t next_result = 0;
  // (victim, scheme, mix) -> stats, insertion-ordered for the JSON dump.
  std::vector<std::pair<std::string, CellStats>> cells;
  std::map<std::string, const CellStats*> by_key;

  for (const std::string& victim : victims) {
    for (const Scheme& scheme : schemes()) {
      for (const Mix& mix : mixes()) {
        CellStats stats;
        stats.trials = seeds;
        for (int i = 0; i < seeds; ++i) {
          const TrialResult& result = batch_results[next_result++];
          stats.warm_l0 += result.warm_hits_l0;
          stats.warm_l1 += result.warm_hits_l1;
          stats.warm_l2 += result.warm_hits_l2;
          stats.cold += result.cold_fallbacks;
          stats.crashes += result.checkpoint_crashes;
          stats.rebuilds += result.tier_rebuilds;
          if (result.timed_out || result.hard_failure) {
            ++stats.stalls;
            std::fprintf(stderr, "STALL: %s scheme %s mix %s seed %d (%s)\n",
                         victim.c_str(), scheme.name.c_str(),
                         mix.name.c_str(), 7000 + i,
                         result.timed_out ? "timed out" : "hard failure");
          } else {
            stats.recovery.add(result.recovery);
          }
        }
        failures += stats.stalls;

        mercury::bench::print_row(
            {victim, scheme.name, mix.name,
             mercury::util::format_fixed(stats.recovery.mean(), 2),
             stats.recovery.count() > 0
                 ? mercury::util::format_fixed(stats.recovery.percentile(95.0), 2)
                 : "-",
             mercury::util::format_fixed(stats.warm_rate(), 2),
             std::to_string(stats.warm_l0), std::to_string(stats.warm_l1),
             std::to_string(stats.warm_l2), std::to_string(stats.cold),
             std::to_string(stats.rebuilds), std::to_string(stats.stalls)},
            widths);

        // Determinism: same seed => byte-identical trace, every cell.
        const TrialSpec spec = make_spec(victim, scheme, mix, 7000);
        TrialResult first, second;
        const std::string trace_a =
            mercury::bench::traced_trial_jsonl(spec, &first);
        const std::string trace_b =
            mercury::bench::traced_trial_jsonl(spec, &second);
        if (trace_a != trace_b || trace_a.empty()) {
          ++failures;
          std::fprintf(stderr, "NONDETERMINISM: %s scheme %s mix %s\n",
                       victim.c_str(), scheme.name.c_str(), mix.name.c_str());
        }

        const std::string key = victim + "/" + scheme.name + "/" + mix.name;
        cells.emplace_back(key, stats);
      }
    }
    mercury::bench::print_rule(widths);
  }
  for (const auto& [key, stats] : cells) by_key[key] = &stats;

  // The tentpole claims, per victim.
  for (const std::string& victim : victims) {
    const auto rate = [&](const std::string& scheme, const std::string& mix) {
      return by_key.at(victim + "/" + scheme + "/" + mix)->warm_rate();
    };
    // L1 absorbs local-tier loss: strictly more warm starts than L0-only
    // when the local copy is killed. (Under l0-kill+partner the replica
    // host is down too, so only the L2 comparison below is meaningful.)
    if (!(rate("l0l1", "l0-kill") > rate("l0", "l0-kill"))) {
      ++failures;
      std::fprintf(stderr, "NO-L1-GAIN: %s l0l1 %.2f <= l0 %.2f (l0-kill)\n",
                   victim.c_str(), rate("l0l1", "l0-kill"),
                   rate("l0", "l0-kill"));
    }
    // L2 absorbs correlated loss of local copy AND partner host.
    if (!(rate("l0l1l2", "l0-kill+partner") > rate("l0l1", "l0-kill+partner"))) {
      ++failures;
      std::fprintf(stderr,
                   "NO-L2-GAIN: %s l0l1l2 %.2f <= l0l1 %.2f (partner down)\n",
                   victim.c_str(), rate("l0l1l2", "l0-kill+partner"),
                   rate("l0l1", "l0-kill+partner"));
    }
    const double saved =
        by_key.at(victim + "/l0/l0-kill")->recovery.mean() -
        by_key.at(victim + "/l0l1/l0-kill")->recovery.mean();
    std::printf("  -> %s: partner replica saves %.2f s mean recovery when "
                "the local tier is lost\n", victim.c_str(), saved);
  }

  // BENCH_checkpoint.json: the perf-trajectory seed (ROADMAP "establish
  // BENCH_*.json"). One object per grid cell; schema kept flat so CI can
  // diff with jq.
  {
    const char* dir = std::getenv("MERCURY_BENCH_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
        "BENCH_checkpoint.json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"bench_ablation_checkpoint_tiers\",\n"
        << "  \"seeds\": " << seeds << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellStats& s = cells[i].second;
      out << "    {\"cell\": \"" << cells[i].first << "\", "
          << "\"mean_recovery_s\": "
          << mercury::util::format_fixed(s.recovery.mean(), 4) << ", "
          << "\"p95_recovery_s\": "
          << mercury::util::format_fixed(
                 s.recovery.count() > 0 ? s.recovery.percentile(95.0) : 0.0, 4)
          << ", \"warm_hit_rate\": "
          << mercury::util::format_fixed(s.warm_rate(), 4)
          << ", \"warm_l0\": " << s.warm_l0 << ", \"warm_l1\": " << s.warm_l1
          << ", \"warm_l2\": " << s.warm_l2 << ", \"cold\": " << s.cold
          << ", \"rebuilds\": " << s.rebuilds
          << ", \"crashes\": " << s.crashes << ", \"stalls\": " << s.stalls
          << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.good()) {
      ++failures;
      std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    } else {
      std::printf("json: %s (%zu cells)\n", path.c_str(), cells.size());
    }
  }

  std::printf("\n");
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d violations\n", failures);
    return 1;
  }
  std::printf(
      "OK: zero stalls; L1 beats L0-only under local-tier loss; L2 beats "
      "L0+L1 under correlated partner loss; same-seed traces identical\n");
  return session.finish();
}
