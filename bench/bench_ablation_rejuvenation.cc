// Ablation: rejuvenation through "free" restarts (§4.4).
//
// "A 'free' fedr restart ... also constitutes a prophylactic restart that
// rejuvenates the fedr component, hence improving its MTTF. ... Therefore
// MTTF^V >= MTTF^IV."
//
// fedr's lifetime is Weibull(k=2) from its last restart (increasing
// hazard), so every extra restart resets its age. Under tree V every joint
// pbcom incident restarts fedr "for free"; under tree IV, pbcom-only cures
// leave fedr aging. We amplify pbcom-class incidents (higher rate, all
// requiring the joint cure in tree V's subtree) and compare fedr's
// effective MTTF and crash count.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/experiment.h"
#include "station/fault_injector.h"

namespace {

using mercury::core::MercuryTree;
using mercury::util::Duration;

struct Outcome {
  double fedr_mttf_min = 0.0;
  std::uint64_t fedr_failures = 0;
  std::uint64_t fedr_restarts = 0;
};

Outcome long_run(MercuryTree tree, std::uint64_t seed) {
  namespace names = mercury::core::component_names;
  mercury::sim::Simulator sim(seed);
  mercury::station::TrialSpec spec;
  spec.tree = tree;
  spec.oracle = mercury::station::OracleKind::kPerfect;
  // Amplify the interplay so the rejuvenation signal clears the sampling
  // noise: fedr wears out over ~30 minutes (sharp Weibull k=3 hazard), and
  // pbcom suffers independent background failures every ~45 minutes whose
  // cure under tree V drags fedr along "for free" at a *random* point in
  // its lifetime. (Aging-driven pbcom failures would not do: they trigger
  // at the moment of a fedr restart, when fedr is already fresh, so the
  // free restart rejuvenates nothing — we disable aging here to isolate
  // the effect.)
  spec.cal.mttf_fedr = Duration::minutes(30.0);
  spec.cal.mttf_pbcom = Duration::minutes(45.0);
  spec.cal.pbcom_aging_threshold = 1'000'000;
  mercury::station::MercuryRig rig(sim, spec);
  rig.start();

  mercury::station::InjectorConfig injector_config;
  injector_config.fedr_weibull_shape = 3.0;  // strongly increasing hazard
  // All pbcom-manifesting failures are pbcom-only-curable here: tree IV's
  // perfect oracle then restarts pbcom alone (fedr keeps aging), while
  // tree V's structure forces the joint restart that rejuvenates fedr.
  injector_config.pbcom_joint_fraction = 0.0;
  mercury::station::FaultInjector injector(rig.station(), injector_config);
  injector.start();

  sim.run_for(Duration::days(10.0));

  Outcome outcome;
  outcome.fedr_failures = injector.injected(names::kFedr);
  outcome.fedr_mttf_min = injector.inter_failure_times(names::kFedr).mean() / 60.0;
  for (const auto& record : rig.rec().history()) {
    for (const auto& component : record.restarted) {
      if (component == names::kFedr) ++outcome.fedr_restarts;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::util::format_fixed;

  print_header(
      "Ablation — rejuvenation (§4.4): fedr effective MTTF, tree IV vs V\n"
      "fedr lifetime ~ Weibull(k=3, mean 30 min) from last restart; pbcom\n"
      "fails independently every ~45 min; 10 simulated days");

  const std::vector<int> widths = {6, 16, 16, 18};
  print_row({"Tree", "fedr failures", "fedr restarts", "fedr MTTF (min)"},
            widths);
  print_rule(widths);

  const auto iv = long_run(MercuryTree::kTreeIV, 123);
  const auto v = long_run(MercuryTree::kTreeV, 123);
  print_row({"IV", std::to_string(iv.fedr_failures),
             std::to_string(iv.fedr_restarts), format_fixed(iv.fedr_mttf_min, 2)},
            widths);
  print_row({"V", std::to_string(v.fedr_failures), std::to_string(v.fedr_restarts),
             format_fixed(v.fedr_mttf_min, 2)},
            widths);

  std::printf(
      "\nExpected: tree V performs extra (free) fedr restarts whenever pbcom\n"
      "fails, resetting fedr's Weibull age, so MTTF^V_fedr >= MTTF^IV_fedr\n"
      "and tree V logs fewer fedr crashes over the same horizon.\n");
  return 0;
}
