// Ablation: checkpointed warm restarts vs the paper's cold-start recovery
// (ISSUE 3).
//
// The recovery times in Tables 1/2 are dominated by state reconstruction —
// pbcom renegotiates its serial link ("takes over 21 seconds"), ses and str
// resynchronize, rtu retunes. A checkpoint preserves exactly that soft
// state across the restart, so a warm start skips the slow part. This bench
// measures the saving per chain and then stress-tests the validity
// machinery: corrupted, undetectably poisoned, and stale checkpoints must
// all end in a successful *cold* recovery — never a stall, never a worse
// outcome than having no checkpoint at all.
//
// Grid: {tree II, tree IV} x {fedrcom|pbcom, ses} x
//       {cold, warm, corrupt, poison, stale}, >= 25 seeds per cell, all
// rows hardened (ISSUE 2): the poisoned warm attempt crashes mid-startup
// and only the restart deadline notices.
//
// Asserted invariants:
//   * warm mean recovery strictly below cold mean for every (tree, victim);
//   * zero stalls / hard failures across every damage row (each corrupted
//     trial falls back cold and completes);
//   * same-seed trials produce byte-identical traces (warm policy and
//     damage injection ride the seeded rng streams, never wall clock).
//
// MERCURY_WARM_QUICK=1 shrinks the grid for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"
#include "util/stats.h"

namespace {

using mercury::core::MercuryTree;
using mercury::station::OracleKind;
using mercury::station::TrialResult;
using mercury::station::TrialSpec;
using CheckpointDamage = mercury::station::TrialSpec::CheckpointDamage;

struct Mode {
  std::string name;
  bool checkpoints = false;
  CheckpointDamage damage = CheckpointDamage::kNone;
};

const std::vector<Mode>& modes() {
  static const std::vector<Mode> kModes = {
      {"cold", false, CheckpointDamage::kNone},
      {"warm", true, CheckpointDamage::kNone},
      {"corrupt", true, CheckpointDamage::kCorrupt},
      {"poison", true, CheckpointDamage::kPoison},
      {"stale", true, CheckpointDamage::kStale},
  };
  return kModes;
}

TrialSpec make_spec(MercuryTree tree, const std::string& victim,
                    const Mode& mode, std::uint64_t seed) {
  TrialSpec spec;
  spec.tree = tree;
  spec.oracle = OracleKind::kHeuristic;
  spec.fail_component = victim;
  spec.seed = seed;
  // All rows hardened: the damage rows need the restart deadline (a
  // poisoned warm start is a restart-path fault), and ISSUE 2 showed
  // hardening is a no-op on clean trials.
  spec.harden_restart_path = true;
  spec.enable_checkpoints = mode.checkpoints;
  spec.checkpoint_damage = mode.damage;
  spec.timeout = mercury::util::Duration::seconds(300.0);
  return spec;
}

}  // namespace

int main() {
  mercury::bench::TraceSession session("bench_ablation_warm_restart");
  const bool quick = [] {
    const char* flag = std::getenv("MERCURY_WARM_QUICK");
    return flag != nullptr && std::string(flag) == "1";
  }();
  const int seeds = quick ? 5 : 25;

  // The chains whose cold start the paper calls out: the serial negotiator
  // (fedrcom fused in tree II, pbcom split in tree IV) and the ses/str
  // session pair.
  struct Cell {
    MercuryTree tree;
    std::string tree_name;
    std::string victim;
  };
  const std::vector<Cell> cells = {
      {MercuryTree::kTreeII, "II", "fedrcom"},
      {MercuryTree::kTreeII, "II", "ses"},
      {MercuryTree::kTreeIV, "IV", "pbcom"},
      {MercuryTree::kTreeIV, "IV", "ses"},
  };

  mercury::bench::print_header(
      "Ablation: checkpointed warm restarts vs cold state reconstruction "
      "(ISSUE 3)\ngrid: " + std::to_string(seeds) +
      " seeds x 5 modes x 4 (tree, victim) chains, hardened restart path" +
      (quick ? "  [quick]" : ""));

  const std::vector<int> widths = {6, 9, 9, 10, 10, 6, 6, 8, 7};
  mercury::bench::print_row({"tree", "victim", "mode", "mean(s)", "p95(s)",
                             "warm", "cold", "crashes", "stalls"},
                            widths);
  mercury::bench::print_rule(widths);

  // One batch over the whole (cell x mode x seed) grid, in the old serial
  // order: the runner keeps results and the session trace byte-identical to
  // the serial loop while spreading trials over MERCURY_JOBS workers.
  std::vector<TrialSpec> batch;
  for (const Cell& cell : cells) {
    for (const Mode& mode : modes()) {
      for (int i = 0; i < seeds; ++i) {
        batch.push_back(make_spec(cell.tree, cell.victim, mode, 2000 + i));
      }
    }
  }
  const std::vector<TrialResult> batch_results =
      mercury::station::run_trial_batch(batch);

  int failures = 0;
  std::size_t next_result = 0;
  for (const Cell& cell : cells) {
    double cold_mean = 0.0;
    double warm_mean = 0.0;
    for (const Mode& mode : modes()) {
      mercury::util::SampleStats recovery;
      int warm_starts = 0, cold_fallbacks = 0, crashes = 0, stalls = 0;
      for (int i = 0; i < seeds; ++i) {
        const TrialResult& result = batch_results[next_result++];
        warm_starts += result.warm_restarts;
        cold_fallbacks += result.cold_fallbacks;
        crashes += result.checkpoint_crashes;
        if (result.timed_out || result.hard_failure) {
          ++stalls;
          std::fprintf(stderr,
                       "STALL: tree %s victim %s mode %s seed %d (%s)\n",
                       cell.tree_name.c_str(), cell.victim.c_str(),
                       mode.name.c_str(), 2000 + i,
                       result.timed_out ? "timed out" : "hard failure");
        } else {
          recovery.add(result.recovery);
        }
      }
      failures += stalls;
      if (mode.name == "cold") cold_mean = recovery.mean();
      if (mode.name == "warm") warm_mean = recovery.mean();

      mercury::bench::print_row(
          {cell.tree_name, cell.victim, mode.name,
           mercury::util::format_fixed(recovery.mean(), 2),
           recovery.count() > 0
               ? mercury::util::format_fixed(recovery.percentile(95.0), 2)
               : "-",
           std::to_string(warm_starts), std::to_string(cold_fallbacks),
           std::to_string(crashes), std::to_string(stalls)},
          widths);

      // Determinism: same seed => byte-identical trace, in every mode.
      const TrialSpec spec = make_spec(cell.tree, cell.victim, mode, 2000);
      TrialResult first, second;
      const std::string trace_a = mercury::bench::traced_trial_jsonl(spec, &first);
      const std::string trace_b = mercury::bench::traced_trial_jsonl(spec, &second);
      if (trace_a != trace_b || trace_a.empty()) {
        ++failures;
        std::fprintf(stderr, "NONDETERMINISM: tree %s victim %s mode %s\n",
                     cell.tree_name.c_str(), cell.victim.c_str(),
                     mode.name.c_str());
      }
    }

    // The headline claim: warm restarts strictly cut mean recovery.
    if (!(warm_mean < cold_mean)) {
      ++failures;
      std::fprintf(stderr,
                   "NO-SAVING: tree %s victim %s warm %.2f s >= cold %.2f s\n",
                   cell.tree_name.c_str(), cell.victim.c_str(), warm_mean,
                   cold_mean);
    } else {
      std::printf("  -> %s/%s: warm saves %.2f s (%.0f%% of cold)\n",
                  cell.tree_name.c_str(), cell.victim.c_str(),
                  cold_mean - warm_mean,
                  100.0 * (cold_mean - warm_mean) / cold_mean);
    }
    mercury::bench::print_rule(widths);
  }

  std::printf("\n");
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d violations\n", failures);
    return 1;
  }
  std::printf(
      "OK: warm < cold on every chain; every damaged-checkpoint trial fell "
      "back cold and recovered; same-seed traces identical\n");
  return session.finish();
}
