// Figure 3 reproduction: simple depth augmentation (tree I -> tree II).
//
// The figure shows the structural transformation; its effect is §4.1's
// claim MTTR^II_G <= sum f_ci MTTR_ci < MTTR^I_G = max(MTTR_ci) whenever
// some restartable component is cheaper than the slowest one. We print the
// two trees, the measured per-component recovery times, and the f-weighted
// expected MTTRs (weights = Table-1 failure rates) for both trees.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/availability.h"
#include "core/mercury_trees.h"
#include "core/transformations.h"
#include "station/experiment.h"

int main() {
  mercury::bench::TraceSession trace_session("bench_fig3_depth_augmentation");
  namespace names = mercury::core::component_names;
  using namespace mercury::core;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::station::OracleKind;
  using mercury::station::TrialSpec;

  print_header("Figure 3 — simple depth augmentation: tree I -> tree II");

  const RestartTree tree_i = make_tree_i();
  auto tree_ii = depth_augment(tree_i, tree_i.root());
  std::printf("\nTree I:\n%s", tree_i.render().c_str());
  std::printf("\nTree II (= depth_augment(tree I, root)):\n%s",
              tree_ii.value().render().c_str());

  const std::vector<std::string> components = {names::kMbus, names::kFedrcom,
                                               names::kSes, names::kStr,
                                               names::kRtu};
  // Failure shares from Table 1 rates (fedrcom dominates: MTTF 10 min).
  const SystemModel model = mercury_system_model(/*split_fedrcom=*/false);

  const std::vector<int> widths = {10, 14, 14, 12};
  print_row({"Failed", "tree I (s)", "tree II (s)", "speedup"}, widths);
  print_rule(widths);

  // One grid over all (component, tree) cells: the runner spreads the whole
  // figure across MERCURY_JOBS workers. Cell order and seeds match the old
  // serial per-component loop, so the output is unchanged.
  std::vector<TrialSpec> grid;
  std::uint64_t seed = 400;
  for (const auto& component : components) {
    TrialSpec spec;
    spec.oracle = OracleKind::kPerfect;
    spec.fail_component = component;
    spec.tree = MercuryTree::kTreeI;
    spec.seed = seed += 97;
    grid.push_back(spec);
    spec.tree = MercuryTree::kTreeII;
    spec.seed = seed += 97;
    grid.push_back(spec);
  }
  const std::vector<mercury::util::SampleStats> stats =
      mercury::station::run_trials_grid(grid, 50);

  double expected_i = 0.0;
  double expected_ii = 0.0;
  double total_rate = 0.0;
  for (std::size_t i = 0; i < components.size(); ++i) {
    const std::string& component = components[i];
    const double mttr_i = stats[2 * i].mean();
    const double mttr_ii = stats[2 * i + 1].mean();
    print_row({component, mercury::util::format_fixed(mttr_i, 2),
               mercury::util::format_fixed(mttr_ii, 2),
               mercury::util::format_fixed(mttr_i / mttr_ii, 2) + "x"},
              widths);

    for (const auto& failure : model.failure_classes) {
      if (failure.manifest == component) {
        expected_i += failure.rate * mttr_i;
        expected_ii += failure.rate * mttr_ii;
        total_rate += failure.rate;
      }
    }
  }
  print_rule(widths);
  print_row({"E[MTTR]", mercury::util::format_fixed(expected_i / total_rate, 2),
             mercury::util::format_fixed(expected_ii / total_rate, 2),
             mercury::util::format_fixed(expected_i / expected_ii, 2) + "x"},
            widths);

  std::printf(
      "\n(E[MTTR] weights each component by its Table-1 failure rate; the\n"
      "whole-system row of the paper's four-fold claim: \"we were able to\n"
      "improve recovery time of our ground station by a factor of four\".)\n");
  return trace_session.finish();
}
