// Ablation: the §7 learning oracle.
//
// "In future work we intend to extend the oracle with the ability to learn
// from its mistakes and this way generate estimates for f_ci values."
//
// We run a persistent LearningOracle through a stream of joint
// {fedr,pbcom} failures on tree IV. Early on it explores (leaf pbcom
// restarts that never cure); as its f_ci estimates sharpen it jumps
// straight to the joint cell, converging toward the perfect oracle's
// ~21.2 s — the same benefit tree V achieves structurally.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "core/oracle.h"
#include "station/experiment.h"

int main() {
  namespace names = mercury::core::component_names;
  using mercury::core::MercuryTree;
  using mercury::station::FailureMode;
  using mercury::station::OracleKind;
  using mercury::station::TrialSpec;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;

  print_header(
      "Ablation — learning oracle on tree IV, joint {fedr,pbcom} failures");

  // Cost hints = the Table-2 restart durations operators would know.
  std::map<std::string, double> costs = {
      {names::kMbus, 5.35}, {names::kSes, 4.10},  {names::kStr, 4.16},
      {names::kRtu, 4.94},  {names::kFedr, 5.11}, {names::kPbcom, 20.49},
  };
  mercury::util::Rng rng(777);
  mercury::core::LearningOracle learner(rng.fork("learner"), costs,
                                        /*explore_probability=*/0.15);

  const std::vector<int> widths = {12, 18, 14};
  print_row({"trials", "mean recovery (s)", "escalations"}, widths);
  print_rule(widths);

  constexpr int kBatch = 25;
  constexpr int kBatches = 8;
  std::uint64_t seed = 40'000;
  for (int batch = 0; batch < kBatches; ++batch) {
    mercury::util::SampleStats stats;
    int escalations = 0;
    for (int i = 0; i < kBatch; ++i) {
      TrialSpec spec;
      spec.tree = MercuryTree::kTreeIV;
      spec.mode = FailureMode::kJointFedrPbcom;
      spec.fail_component = names::kPbcom;
      spec.seed = ++seed;
      spec.oracle_override = &learner;
      const auto result = mercury::station::run_trial(spec);
      stats.add(result.recovery);
      escalations += result.escalations;
    }
    print_row({std::to_string((batch + 1) * kBatch),
               mercury::util::format_fixed(stats.mean(), 2),
               std::to_string(escalations)},
              widths);
  }

  std::printf(
      "\nlearned f estimate: P(cure | restart pbcom leaf) = %.2f, "
      "P(cure | restart joint cell) = %.2f\n",
      learner.cure_estimate(
          names::kPbcom,
          *mercury::core::make_mercury_tree(MercuryTree::kTreeIV)
               .lowest_cell_covering(names::kPbcom)),
      learner.cure_estimate(
          names::kPbcom,
          mercury::core::make_mercury_tree(MercuryTree::kTreeIV)
              .parent(*mercury::core::make_mercury_tree(MercuryTree::kTreeIV)
                           .lowest_cell_covering(names::kPbcom))));
  std::printf(
      "Reference: perfect oracle ~21.2 s; faulty(p=0.3) ~27-29 s (paper\n"
      "29.19); a converged learner should sit near the perfect line with a\n"
      "residual from its exploration rate.\n");
  return 0;
}
