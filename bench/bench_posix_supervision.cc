// Real-process supervision latency (POSIX backend).
//
// The simulator carries the paper's numbers; this bench carries the proof
// that the mechanism is real: the same restart-tree machinery supervising
// actual fork/exec children, with SIGKILL fault injection and wall-clock
// recovery times. Workers start in 40-120 ms, so the numbers here are
// milliseconds, but the anatomy is identical: detection (ping period 60 ms
// + timeout 50 ms) + respawn + READY.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "core/restart_tree.h"
#include "posix/supervisor.h"
#include "util/stats.h"

#ifndef MERCURY_WORKER_BIN
#error "MERCURY_WORKER_BIN must point at the mercury_worker binary"
#endif

int main() {
  mercury::bench::TraceSession trace_session("bench_posix_supervision");
  using namespace mercury;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using util::format_fixed;

  print_header(
      "POSIX backend — wall-clock recovery of real processes\n"
      "3 workers (startup 40/60/120 ms), ping 60 ms / timeout 50 ms,\n"
      "20 SIGKILL injections per scenario");

  const std::string worker = MERCURY_WORKER_BIN;
  core::RestartTree tree("R_real");
  const auto pair = tree.add_cell(tree.root(), "R_[est,trk]");
  tree.attach_component(pair, "est");
  tree.attach_component(pair, "trk");
  const auto proxy_cell = tree.add_cell(tree.root(), "R_proxy");
  tree.attach_component(proxy_cell, "proxy");

  std::vector<posix::WorkerSpec> workers = {
      {"est", {worker, "--name", "est", "--startup-ms", "40"}},
      {"trk", {worker, "--name", "trk", "--startup-ms", "60"}},
      {"proxy", {worker, "--name", "proxy", "--startup-ms", "120"}},
  };

  posix::SupervisorConfig config;
  config.ping_period = posix::Millis{60};
  config.ping_timeout = posix::Millis{50};
  // Injections are distinct incidents: keep the escalation window just
  // above the ~110 ms re-detection time so the spacing between rounds can
  // stay short without reading as failure persistence.
  config.escalation_window = posix::Millis{300};
  posix::PosixSupervisor supervisor(tree, workers, config);
  if (auto status = supervisor.start_all(); !status.ok()) {
    std::fprintf(stderr, "startup failed: %s\n", status.error().message().c_str());
    return 1;
  }

  const auto measure = [&](const std::string& victim, int rounds) {
    util::SampleStats downtime_ms;
    for (int i = 0; i < rounds; ++i) {
      const std::size_t before = supervisor.history().size();
      supervisor.kill_worker(victim);
      if (!supervisor.run_until(
              [&] {
                return supervisor.history().size() > before && supervisor.all_up();
              },
              posix::Millis{5000})) {
        std::fprintf(stderr, "recovery of %s timed out\n", victim.c_str());
        std::exit(1);
      }
      downtime_ms.add(
          static_cast<double>(supervisor.history().back().downtime.count()));
      supervisor.run_for(posix::Millis{400});  // clear the escalation window
    }
    return downtime_ms;
  };

  const std::vector<int> widths = {10, 18, 10, 10, 10, 16};
  print_row({"victim", "cell restarted", "mean ms", "p50 ms", "max ms",
             "detect+spawn"},
            widths);
  print_rule(widths);
  struct Scenario {
    const char* victim;
    const char* cell;
    int startup_ms;
  };
  for (const Scenario& scenario :
       {Scenario{"proxy", "R_proxy", 120}, Scenario{"trk", "R_[est,trk]", 60}}) {
    const auto stats = measure(scenario.victim, 20);
    print_row({scenario.victim, scenario.cell, format_fixed(stats.mean(), 1),
               format_fixed(stats.median(), 1), format_fixed(stats.max(), 1),
               "~" + std::to_string(scenario.startup_ms) + "ms + detect"},
              widths);
  }

  std::printf("\npings sent %llu, pongs received %llu, hard failures %zu\n",
              static_cast<unsigned long long>(supervisor.pings_sent()),
              static_cast<unsigned long long>(supervisor.pongs_received()),
              supervisor.hard_failures().size());

  // --- Checkpointed warm restarts over real processes (ISSUE 3) ------------
  // A fresh supervisor drives one slow worker (startup 400 ms standing in
  // for pbcom's serial negotiation) twice: cold (no checkpoint file) and
  // warm (state file survives the SIGKILL, warm delay 60 ms). Same
  // detection path, same tree semantics — the saving is the skipped state
  // reconstruction, and it must show the same direction as the simulator.
  print_header(
      "Checkpointed warm restarts, real processes\n"
      "slow worker: cold startup 400 ms vs warm reload 60 ms, 10 kills each");
  const std::string checkpoint_file =
      "/tmp/mercury_bench_ckpt_" + std::to_string(getpid());
  double means[2] = {0.0, 0.0};
  const std::vector<int> warm_widths = {10, 10, 10, 10};
  print_row({"mode", "mean ms", "p50 ms", "max ms"}, warm_widths);
  print_rule(warm_widths);
  for (const bool warm : {false, true}) {
    std::remove(checkpoint_file.c_str());
    core::RestartTree slow_tree("R_slow");
    const auto cell = slow_tree.add_cell(slow_tree.root(), "R_negotiator");
    slow_tree.attach_component(cell, "negotiator");
    posix::WorkerSpec slow;
    slow.name = "negotiator";
    slow.argv = {worker, "--name", "negotiator", "--startup-ms", "400"};
    if (warm) {
      slow.argv.insert(slow.argv.end(), {"--checkpoint-file", checkpoint_file,
                                         "--warm-startup-ms", "60"});
      slow.checkpoint_file = checkpoint_file;
    }
    slow.startup_timeout = posix::Millis{3000};
    posix::PosixSupervisor slow_supervisor(slow_tree, {slow}, config);
    if (auto status = slow_supervisor.start_all(); !status.ok()) {
      std::fprintf(stderr, "startup failed: %s\n",
                   status.error().message().c_str());
      return 1;
    }
    util::SampleStats downtime_ms;
    for (int i = 0; i < 10; ++i) {
      const std::size_t before = slow_supervisor.history().size();
      slow_supervisor.kill_worker("negotiator");
      if (!slow_supervisor.run_until(
              [&] {
                return slow_supervisor.history().size() > before &&
                       slow_supervisor.all_up();
              },
              posix::Millis{5000})) {
        std::fprintf(stderr, "recovery of negotiator timed out\n");
        return 1;
      }
      downtime_ms.add(static_cast<double>(
          slow_supervisor.history().back().downtime.count()));
      slow_supervisor.run_for(posix::Millis{400});
    }
    means[warm ? 1 : 0] = downtime_ms.mean();
    print_row({warm ? "warm" : "cold", format_fixed(downtime_ms.mean(), 1),
               format_fixed(downtime_ms.median(), 1),
               format_fixed(downtime_ms.max(), 1)},
              warm_widths);
    if (warm) {
      std::printf("\ncheckpoints validated %llu, deleted %llu\n",
                  static_cast<unsigned long long>(
                      slow_supervisor.checkpoints_validated()),
                  static_cast<unsigned long long>(
                      slow_supervisor.checkpoints_deleted()));
    }
  }
  std::remove(checkpoint_file.c_str());
  if (!(means[1] < means[0])) {
    std::fprintf(stderr, "FAIL: warm mean %.1f ms >= cold mean %.1f ms\n",
                 means[1], means[0]);
    return 1;
  }
  std::printf("warm saves %.1f ms per restart (%.0f%% of cold downtime)\n",
              means[0] - means[1], 100.0 * (means[0] - means[1]) / means[0]);
  std::printf(
      "\nNote the consolidated cell: killing trk restarts est too — the\n"
      "tree semantics are byte-identical to the simulated station's.\n"
      "(Downtime here is report->READY; add ~0-110 ms detection phase for\n"
      "the kill->report gap the simulator's MTTR includes.)\n");
  return 0;
}
