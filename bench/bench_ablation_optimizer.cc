// Ablation: does the §7 tree-search rediscover the paper's hand-derived
// trees?
//
// The optimizer enumerates every restart tree expressible with the paper's
// three transformations over {mbus, ses, str, rtu, fedr, pbcom} and ranks
// them by model-predicted system MTTR. With a perfect oracle the winner
// should be tree-IV-shaped (consolidated [ses,str], joint or better
// [fedr,pbcom]); with a faulty oracle the winner should kill the
// guess-too-low on pbcom the way tree V does.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/availability.h"
#include "core/mercury_trees.h"
#include "core/optimizer.h"

namespace {

void run(const char* title, const mercury::core::SystemModel& model) {
  namespace names = mercury::core::component_names;
  const std::vector<std::string> components = {names::kMbus, names::kSes,
                                               names::kStr,  names::kRtu,
                                               names::kFedr, names::kPbcom};
  const auto result = mercury::core::optimize_tree(components, model, 3);
  std::printf("\n--- %s (%llu candidates) ---\n", title,
              static_cast<unsigned long long>(result.candidates_evaluated));
  for (std::size_t i = 0; i < result.ranking.size(); ++i) {
    std::printf("#%zu  predicted system MTTR %.3f s\n%s", i + 1,
                result.ranking[i].predicted_mttr_s,
                result.ranking[i].tree.render().c_str());
  }
  // Reference points: the paper's trees under the same model.
  for (auto tree : {mercury::core::MercuryTree::kTreeIV,
                    mercury::core::MercuryTree::kTreeV}) {
    std::printf("reference tree %s: predicted MTTR %.3f s\n",
                mercury::core::to_string(tree).c_str(),
                mercury::core::predicted_system_mttr(
                    mercury::core::make_mercury_tree(tree), model));
  }
}

}  // namespace

int main() {
  using mercury::bench::print_header;
  print_header(
      "Ablation — §7 tree optimizer: exhaustive search over transformation-\n"
      "expressible trees, scored by the analytic recovery model");

  run("perfect oracle", mercury::core::mercury_system_model(true, 0.0));
  run("faulty oracle (p_low = 0.3)",
      mercury::core::mercury_system_model(true, 0.3));

  std::printf(
      "\nExpected: the perfect-oracle winner matches tree IV's groups (and\n"
      "ties anything that differs only where the oracle never errs); the\n"
      "faulty-oracle winner removes pbcom's guess-too-low exposure exactly\n"
      "as the hand-derived tree V does.\n");
  return 0;
}
