// Ablation: the §7 analytic rejuvenation model — optimal policy curves.
//
// The CTMC (fresh -> aged -> failed, with a rejuvenation knob on the aged
// state) generalizes what the health-monitor simulation measures: sweeping
// the rejuvenation rate trades unplanned repair time for planned
// rejuvenation time. With §5.2's weighting (unplanned seconds cost more),
// the optimum moves off zero exactly when aging raises the hazard — and
// the golden-section search finds it in microseconds, where the simulation
// needs days of virtual time.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/rejuvenation_model.h"

int main() {
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::core::RejuvenationModel;
  using mercury::core::solve_rejuvenation;
  using mercury::util::format_fixed;

  print_header(
      "Ablation — §7 analytic rejuvenation model (CTMC steady state)\n"
      "fedr-like component: degrades after ~5 min, aged hazard 1/8 min,\n"
      "fresh hazard 1/2 h; repair 6.5 s, planned rejuvenation 5.8 s");

  RejuvenationModel model;
  model.aging_rate = 1.0 / 300.0;
  model.fresh_failure_rate = 1.0 / 7200.0;
  model.aged_failure_rate = 1.0 / 480.0;
  model.rejuvenation_duration_s = 5.8;
  model.repair_duration_s = 6.5;
  constexpr double kWeight = 4.0;  // unplanned seconds cost 4x (§5.2)

  const std::vector<int> widths = {16, 14, 15, 15, 17, 17};
  print_row({"rejuv rate 1/s", "availability", "planned dt", "unplanned dt",
             "weighted dt", "failures/hour"},
            widths);
  print_rule(widths);

  for (double rate : {0.0, 1.0 / 1200.0, 1.0 / 600.0, 1.0 / 300.0, 1.0 / 120.0,
                      1.0 / 60.0, 1.0 / 20.0}) {
    model.rejuvenation_rate = rate;
    const auto steady = solve_rejuvenation(model);
    print_row({rate == 0.0 ? "0 (reactive)" : format_fixed(rate, 5),
               format_fixed(steady.availability() * 100.0, 4) + "%",
               format_fixed(steady.planned_downtime() * 1e4, 2) + "e-4",
               format_fixed(steady.unplanned_downtime() * 1e4, 2) + "e-4",
               format_fixed(steady.weighted_downtime(kWeight) * 1e4, 2) + "e-4",
               format_fixed(steady.unplanned_failure_rate(model) * 3600.0, 2)},
              widths);
  }

  std::printf("\noptimal policy vs the §5.2 cost ratio (unplanned : planned):\n");
  for (double weight : {1.0, 1.5, 2.0, 4.0, 10.0}) {
    const double best = mercury::core::optimal_rejuvenation_rate(model, weight);
    if (best == 0.0) {
      std::printf("  weight %5.1f: never rejuvenate (planned time costs as "
                  "much as it saves)\n",
                  weight);
    } else if (best >= 0.99) {
      std::printf("  weight %5.1f: rejuvenate immediately on aging "
                  "(boundary optimum)\n",
                  weight);
    } else {
      std::printf("  weight %5.1f: rejuvenate aged components every ~%.0f s\n",
                  weight, 1.0 / best);
    }
  }
  model.rejuvenation_rate = 1.0;
  const auto aggressive = solve_rejuvenation(model);
  model.rejuvenation_rate = 0.0;
  const auto reactive = solve_rejuvenation(model);
  std::printf("\nimmediate-rejuvenation limit: %.2f unplanned failures/hour "
              "(reactive: %.2f)\n",
              aggressive.unplanned_failure_rate(model) * 3600.0,
              reactive.unplanned_failure_rate(model) * 3600.0);

  std::printf(
      "\nCross-check: the memoryless case (aged hazard == fresh hazard)\n"
      "yields optimal rate 0 — rejuvenation only ever pays against an\n"
      "increasing hazard, the same condition the simulation ablation\n"
      "(bench_ablation_rejuvenation) demonstrated with its Weibull fedr.\n");
  return 0;
}
