// Table 4 reproduction: "Overall MTTRs (seconds). Rows show tree versions,
// columns represent component failures."
//
//   Paper:
//   Tree Oracle  mbus   ses    str    rtu    fedr  pbcom  fedrcom
//   I    perfect 24.75  24.75  24.75  24.75  --    --     24.75
//   II   perfect  5.73   9.50   9.76   5.59  --    --     20.93
//   III  perfect  5.73   9.50   9.76   5.59  5.76  21.24  --
//   IV   perfect  5.73   6.25   6.11   5.59  5.76  21.24  --
//   IV   faulty   5.73   6.25   6.11   5.59  5.76  29.19  --
//   V    faulty   5.73   6.25   6.11   5.59  5.76  21.63  --
//
// pbcom columns are the §4.4 joint failures (manifest in pbcom, cure
// {fedr,pbcom}); the faulty oracle guesses too low 30% of the time.
#include <cstdio>
#include <map>
#include <optional>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"

namespace {

using mercury::core::MercuryTree;
using mercury::station::FailureMode;
using mercury::station::OracleKind;
using mercury::station::TrialSpec;

constexpr int kTrials = 100;

TrialSpec cell_spec(MercuryTree tree, OracleKind oracle,
                    const std::string& component, FailureMode mode,
                    std::uint64_t seed) {
  TrialSpec spec;
  spec.tree = tree;
  spec.oracle = oracle;
  spec.faulty_p_low = 0.3;  // "guessed wrong 30% of the time" (§4.4)
  spec.fail_component = component;
  spec.mode = mode;
  spec.seed = seed;
  return spec;
}

struct RowSpec {
  const char* label;
  MercuryTree tree;
  OracleKind oracle;
  const char* oracle_label;
  // paper values: mbus ses str rtu fedr pbcom fedrcom (-1 = not applicable)
  double paper[7];
};

}  // namespace

int main() {
  mercury::bench::TraceSession trace_session("bench_table4");
  namespace names = mercury::core::component_names;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::bench::vs_paper;

  print_header(
      "Table 4 — overall MTTRs in seconds, measured (paper), 100 trials/cell\n"
      "pbcom column = joint {fedr,pbcom}-curable failures manifesting in pbcom\n"
      "faulty oracle guesses too low with p = 0.30");

  const RowSpec rows[] = {
      {"I", MercuryTree::kTreeI, OracleKind::kPerfect, "perfect",
       {24.75, 24.75, 24.75, 24.75, -1, -1, 24.75}},
      {"II", MercuryTree::kTreeII, OracleKind::kPerfect, "perfect",
       {5.73, 9.50, 9.76, 5.59, -1, -1, 20.93}},
      {"III", MercuryTree::kTreeIII, OracleKind::kPerfect, "perfect",
       {5.73, 9.50, 9.76, 5.59, 5.76, 21.24, -1}},
      {"IV", MercuryTree::kTreeIV, OracleKind::kPerfect, "perfect",
       {5.73, 6.25, 6.11, 5.59, 5.76, 21.24, -1}},
      {"IV", MercuryTree::kTreeIV, OracleKind::kFaultyPerfect, "faulty",
       {5.73, 6.25, 6.11, 5.59, 5.76, 29.19, -1}},
      {"V", MercuryTree::kTreeV, OracleKind::kFaultyPerfect, "faulty",
       {5.73, 6.25, 6.11, 5.59, 5.76, 21.63, -1}},
  };

  const std::vector<int> widths = {5, 8, 14, 14, 14, 14, 14, 15, 14};
  print_row({"Tree", "Oracle", "mbus", "ses", "str", "rtu", "fedr", "pbcom*",
             "fedrcom"},
            widths);
  print_rule(widths);

  const std::string components[7] = {names::kMbus, names::kSes, names::kStr,
                                     names::kRtu,  names::kFedr, names::kPbcom,
                                     names::kFedrcom};

  // Flatten every applicable (tree, oracle, component) cell into one grid so
  // the experiment runner parallelises the whole table, not one cell at a
  // time. Seeds advance per column exactly as the serial loop did.
  std::vector<TrialSpec> grid;
  std::uint64_t seed = 10'000;
  for (const RowSpec& row : rows) {
    for (int c = 0; c < 7; ++c) {
      seed += 100;
      if (row.paper[c] < 0) continue;
      const FailureMode mode = components[c] == names::kPbcom
                                   ? FailureMode::kJointFedrPbcom
                                   : FailureMode::kCrash;
      grid.push_back(cell_spec(row.tree, row.oracle, components[c], mode, seed));
    }
  }
  const std::vector<mercury::util::SampleStats> stats =
      mercury::station::run_trials_grid(grid, kTrials);

  std::size_t next_stat = 0;
  for (const RowSpec& row : rows) {
    std::vector<std::string> cells = {row.label, row.oracle_label};
    for (int c = 0; c < 7; ++c) {
      if (row.paper[c] < 0) {
        cells.push_back("--");
        continue;
      }
      cells.push_back(vs_paper(stats[next_stat++].mean(), row.paper[c]));
    }
    print_row(cells, widths);
  }

  std::printf(
      "\nShape checks (paper §4): tree II < tree I everywhere; consolidation\n"
      "(IV) cuts ses/str from ~9.6 to ~6.2; faulty oracle inflates joint\n"
      "pbcom failures on tree IV; promotion (V) restores them to ~21.\n");
  return trace_session.finish();
}
