// Figure 6 reproduction: node promotion of pbcom (tree IV -> tree V).
//
// §4.4: with a faulty oracle (wrong 30% of the time) on joint
// {fedr,pbcom}-curable failures manifesting in pbcom, "in tree IV, Mercury
// took 29.19 seconds to recover ... in tree V it only takes on average
// 21.63 seconds". With a perfect oracle, tree V cannot beat tree IV
// ("tree V can be better only when the oracle is faulty").
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "core/transformations.h"
#include "station/experiment.h"

int main() {
  mercury::bench::TraceSession trace_session("bench_fig6_promotion");
  namespace names = mercury::core::component_names;
  using namespace mercury::core;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::bench::vs_paper;
  using mercury::station::FailureMode;
  using mercury::station::OracleKind;
  using mercury::station::TrialSpec;

  print_header("Figure 6 — node promotion: pbcom (tree IV -> V), joint failures");

  auto tree_v = promote_component(make_tree_iv(), names::kPbcom);
  std::printf("\nTree IV:\n%s", make_tree_iv().render().c_str());
  std::printf("\nTree V (= promote_component(tree IV, pbcom)):\n%s",
              tree_v.value().render().c_str());

  const auto cell = [](MercuryTree tree, OracleKind oracle, std::uint64_t seed) {
    TrialSpec spec;
    spec.tree = tree;
    spec.oracle = oracle;
    spec.faulty_p_low = 0.3;
    spec.mode = FailureMode::kJointFedrPbcom;
    spec.fail_component = names::kPbcom;
    spec.seed = seed;
    return spec;
  };
  // All four cells run as one grid on the experiment runner (same cell order
  // and seeds as the old serial measure() calls).
  const std::vector<mercury::util::SampleStats> stats =
      mercury::station::run_trials_grid(
          {cell(MercuryTree::kTreeIV, OracleKind::kPerfect, 61),
           cell(MercuryTree::kTreeIV, OracleKind::kFaultyPerfect, 62),
           cell(MercuryTree::kTreeV, OracleKind::kPerfect, 63),
           cell(MercuryTree::kTreeV, OracleKind::kFaultyPerfect, 64)},
          200);

  const std::vector<int> widths = {8, 10, 20};
  print_row({"Tree", "Oracle", "recovery (paper)"}, widths);
  print_rule(widths);
  print_row({"IV", "perfect", vs_paper(stats[0].mean(), 21.24)}, widths);
  print_row({"IV", "faulty", vs_paper(stats[1].mean(), 29.19)}, widths);
  print_row({"V", "perfect", vs_paper(stats[2].mean(), 21.24)}, widths);
  print_row({"V", "faulty", vs_paper(stats[3].mean(), 21.63)}, widths);

  std::printf(
      "\nA guess-too-low on tree IV restarts pbcom alone (~21 s), fails, and\n"
      "repeats jointly (~42 s total). Tree V attaches pbcom to the joint\n"
      "cell, making the mistake inexpressible; the faulty row matches the\n"
      "perfect one. Perfect-oracle rows are equal across IV and V, as §4.4\n"
      "argues (\"there is nothing that a perfect oracle could do in tree V\n"
      "but not in tree IV\").\n");
  return trace_session.finish();
}
