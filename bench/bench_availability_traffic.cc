// Bench: continuous client traffic, availability-centric metrics, and
// traffic-driven on-demand recovery (ISSUE 9).
//
// The paper measures recovery time; what a client sees is goodput. This
// bench drives a continuous open-loop workload (workload::WorkloadDriver)
// through multi-fault trials and scores each recovery policy by what the
// clients experienced: requests served/lost/retried, latency percentiles,
// and the goodput dip (depth / width / time-to-close) against the
// pre-injection baseline.
//
// The tentpole claim: with a long pbcom/fedrcom restart pinning the serial
// recoverer, traffic-driven on-demand recovery restores the serving core
// first and lets client requests *touch* the remaining queued cells back to
// life — so the rtu/ses routes reopen in seconds instead of waiting out the
// ~20 s restart, the goodput dip closes strictly earlier, and strictly
// fewer requests are lost.
//
// Grid: trees {II, IV} x {flagship multi-fault, single-fault degeneracy}
//       x dispatch {serial, dag, ondemand(traffic-driven)} x load
//       {light, heavy}, seeds 8000+i via one run_trial_batch (byte-identical
//       for any MERCURY_JOBS).
//
// Asserted invariants (ISSUE 9 acceptance criteria):
//   * zero stalls and zero accounting violations: in every trial
//     issued == served + lost;
//   * on the flagship multi-fault scenario, for each tree and load,
//     ondemand loses strictly fewer requests than serial and closes its
//     goodput dip strictly earlier (smaller dip_end, smaller dip_width);
//   * ondemand multi-fault trials actually promote restarts by touch;
//     serial/dag trials never do;
//   * same-seed trials are byte-identical (trace compare), and golden
//     traces with per-request spans pass all seven checker invariants —
//     including phantom-goodput — in both serial and ondemand modes.
//
// Writes BENCH_traffic.json into $MERCURY_BENCH_DIR (default: cwd) so CI
// can diff goodput totals PR over PR and across MERCURY_JOBS values.
// MERCURY_TRAFFIC_QUICK=1 shrinks the grid for CI smoke.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "core/recoverer.h"
#include "obs/trace_check.h"
#include "station/experiment.h"
#include "util/stats.h"
#include "util/strings.h"

namespace {

using mercury::core::DispatchMode;
using mercury::core::MercuryTree;
using mercury::station::OracleKind;
using mercury::station::TrialResult;
using mercury::station::TrialSpec;
using mercury::util::Duration;

struct Scenario {
  std::string name;
  std::string primary;
  std::vector<TrialSpec::ExtraFault> extras;
  bool multi_fault() const { return !extras.empty(); }
};

const std::vector<Scenario>& scenarios() {
  // The flagship: a ~20 s pbcom/fedrcom restart plus two quick leaf faults
  // whose routes serial recovery needlessly holds closed. The single-fault
  // row is the degeneracy check — nothing to defer, nothing to touch.
  static const std::vector<Scenario> kScenarios = {
      {"pbcom+ses+rtu",
       "pbcom",
       {{"ses", Duration::millis(30.0)}, {"rtu", Duration::millis(60.0)}}},
      {"ses-single", "ses", {}},
  };
  return kScenarios;
}

struct Mode {
  std::string name;
  DispatchMode dispatch;
  bool traffic_driven;
};

const std::vector<Mode>& modes() {
  static const std::vector<Mode> kModes = {
      {"serial", DispatchMode::kSerial, false},
      {"dag", DispatchMode::kDag, false},
      {"ondemand", DispatchMode::kOnDemand, true},
  };
  return kModes;
}

struct Load {
  std::string name;
  int command_sessions;
  int telemetry_sessions;
  Duration mean_interarrival;
};

const std::vector<Load>& loads() {
  static const std::vector<Load> kLoads = {
      {"light", 8, 4, Duration::millis(200.0)},
      {"heavy", 16, 8, Duration::millis(100.0)},
  };
  return kLoads;
}

/// Tree II predates the fedr/pbcom split: the monolithic fedrcom stands in
/// for pbcom there (same dish-RF failure domain).
std::string resolve(MercuryTree tree, const std::string& name) {
  if (tree == MercuryTree::kTreeII && name == "pbcom") return "fedrcom";
  return name;
}

TrialSpec make_spec(MercuryTree tree, const Scenario& scenario,
                    const Mode& mode, const Load& load, std::uint64_t seed) {
  TrialSpec spec;
  spec.tree = tree;
  spec.oracle = OracleKind::kPerfect;
  spec.fail_component = resolve(tree, scenario.primary);
  spec.extra_faults = scenario.extras;
  for (auto& extra : spec.extra_faults) {
    extra.component = resolve(tree, extra.component);
  }
  spec.dispatch = mode.dispatch;
  spec.traffic_driven = mode.traffic_driven;
  spec.seed = seed;
  spec.timeout = Duration::seconds(300.0);
  spec.traffic.enabled = true;
  spec.traffic.command_sessions = load.command_sessions;
  spec.traffic.telemetry_sessions = load.telemetry_sessions;
  spec.traffic.mean_interarrival = load.mean_interarrival;
  return spec;
}

struct CellStats {
  std::uint64_t issued = 0;
  std::uint64_t served = 0;
  std::uint64_t lost = 0;
  std::uint64_t retried = 0;
  std::uint64_t restarting_rejections = 0;
  mercury::util::SampleStats dip_depth;
  mercury::util::SampleStats dip_width_s;
  mercury::util::SampleStats dip_end_s;
  mercury::util::SampleStats p50_ms;
  mercury::util::SampleStats p99_ms;
  int touch_promotions = 0;
  int lazy_drains = 0;
  int stalls = 0;
  int accounting_violations = 0;
};

std::string tree_name(MercuryTree tree) {
  return tree == MercuryTree::kTreeII ? "II" : "IV";
}

}  // namespace

int main() {
  mercury::bench::TraceSession session("bench_availability_traffic");
  const bool quick = [] {
    const char* flag = std::getenv("MERCURY_TRAFFIC_QUICK");
    return flag != nullptr && std::string(flag) == "1";
  }();
  const int seeds = quick ? 2 : 10;
  const std::vector<MercuryTree> trees = {MercuryTree::kTreeII,
                                          MercuryTree::kTreeIV};
  const std::vector<Load>& load_grid =
      quick ? std::vector<Load>{loads()[0]} : loads();

  mercury::bench::print_header(
      "Client traffic & availability: serial vs dag vs traffic-driven "
      "on-demand (ISSUE 9)\n"
      "grid: " + std::to_string(seeds) +
      " seeds x {tree II, IV} x {flagship multi-fault, single-fault} x "
      "{serial, dag, ondemand} x load" + (quick ? "  [quick]" : ""));

  const std::vector<int> widths = {5, 14, 9, 6, 7, 6, 6, 8, 8, 8, 6, 6};
  mercury::bench::print_row(
      {"tree", "scenario", "mode", "load", "issued", "lost", "retry",
       "dip_end", "dip_w", "p50ms", "touch", "lazy"},
      widths);
  mercury::bench::print_rule(widths);

  // One batch over the whole grid in serial order: byte-identical results
  // for any MERCURY_JOBS.
  std::vector<TrialSpec> batch;
  for (const MercuryTree tree : trees) {
    for (const Scenario& scenario : scenarios()) {
      for (const Mode& mode : modes()) {
        for (const Load& load : load_grid) {
          for (int i = 0; i < seeds; ++i) {
            batch.push_back(make_spec(tree, scenario, mode, load, 8000 + i));
          }
        }
      }
    }
  }
  const std::vector<TrialResult> batch_results =
      mercury::station::run_trial_batch(batch);

  int failures = 0;
  std::size_t next_result = 0;
  std::vector<std::pair<std::string, CellStats>> cells;
  std::map<std::string, const CellStats*> by_key;

  for (const MercuryTree tree : trees) {
    for (const Scenario& scenario : scenarios()) {
      for (const Mode& mode : modes()) {
        for (const Load& load : load_grid) {
          CellStats stats;
          for (int i = 0; i < seeds; ++i) {
            const TrialResult& result = batch_results[next_result++];
            if (result.timed_out || result.hard_failure) {
              ++stats.stalls;
              std::fprintf(stderr, "STALL: tree %s %s %s %s seed %d\n",
                           tree_name(tree).c_str(), scenario.name.c_str(),
                           mode.name.c_str(), load.name.c_str(), 8000 + i);
              continue;
            }
            const mercury::core::TrafficSummary& traffic = result.traffic;
            if (traffic.issued != traffic.served + traffic.lost) {
              ++stats.accounting_violations;
              std::fprintf(stderr,
                           "ACCOUNTING: tree %s %s %s %s seed %d: "
                           "%llu issued != %llu served + %llu lost\n",
                           tree_name(tree).c_str(), scenario.name.c_str(),
                           mode.name.c_str(), load.name.c_str(), 8000 + i,
                           static_cast<unsigned long long>(traffic.issued),
                           static_cast<unsigned long long>(traffic.served),
                           static_cast<unsigned long long>(traffic.lost));
            }
            stats.issued += traffic.issued;
            stats.served += traffic.served;
            stats.lost += traffic.lost;
            stats.retried += traffic.retried;
            stats.restarting_rejections += traffic.restarting_rejections;
            stats.dip_depth.add(traffic.dip_depth);
            stats.dip_width_s.add(traffic.dip_width_s);
            stats.dip_end_s.add(traffic.dip_end_s);
            stats.p50_ms.add(traffic.p50_ms);
            stats.p99_ms.add(traffic.p99_ms);
            stats.touch_promotions += result.touch_promotions;
            stats.lazy_drains += result.lazy_drains;
          }
          failures += stats.stalls + stats.accounting_violations;

          // Touch promotions exist exactly where traffic-driven recovery has
          // something to promote: ondemand multi-fault cells.
          if (!mode.traffic_driven && stats.touch_promotions > 0) {
            ++failures;
            std::fprintf(stderr, "SPURIOUS-TOUCH: tree %s %s %s %s\n",
                         tree_name(tree).c_str(), scenario.name.c_str(),
                         mode.name.c_str(), load.name.c_str());
          }
          if (mode.traffic_driven && scenario.multi_fault() &&
              stats.touch_promotions == 0) {
            ++failures;
            std::fprintf(stderr, "NO-TOUCH: tree %s %s %s %s never promoted\n",
                         tree_name(tree).c_str(), scenario.name.c_str(),
                         mode.name.c_str(), load.name.c_str());
          }

          mercury::bench::print_row(
              {tree_name(tree), scenario.name, mode.name, load.name,
               std::to_string(stats.issued), std::to_string(stats.lost),
               std::to_string(stats.retried),
               mercury::util::format_fixed(stats.dip_end_s.mean(), 2),
               mercury::util::format_fixed(stats.dip_width_s.mean(), 2),
               mercury::util::format_fixed(stats.p50_ms.mean(), 1),
               std::to_string(stats.touch_promotions),
               std::to_string(stats.lazy_drains)},
              widths);

          const std::string key = tree_name(tree) + "/" + scenario.name + "/" +
                                  mode.name + "/" + load.name;
          cells.emplace_back(key, stats);
        }
      }
    }
    mercury::bench::print_rule(widths);
  }
  for (const auto& [key, stats] : cells) by_key[key] = &stats;

  // The tentpole claim: on the flagship multi-fault scenario, for each tree
  // and load, traffic-driven on-demand loses strictly fewer requests than
  // serial and closes its goodput dip strictly earlier and narrower.
  for (const MercuryTree tree : trees) {
    for (const Load& load : load_grid) {
      const std::string base =
          tree_name(tree) + "/" + scenarios()[0].name + "/";
      const CellStats& serial = *by_key.at(base + "serial/" + load.name);
      const CellStats& ondemand = *by_key.at(base + "ondemand/" + load.name);
      const bool lost_win = ondemand.lost < serial.lost;
      const bool end_win = ondemand.dip_end_s.mean() < serial.dip_end_s.mean();
      const bool width_win =
          ondemand.dip_width_s.mean() < serial.dip_width_s.mean();
      if (!lost_win || !end_win || !width_win) {
        ++failures;
        std::fprintf(stderr,
                     "NO-WIN: tree %s %s: ondemand lost %llu dip_end %.2f "
                     "dip_w %.2f vs serial lost %llu dip_end %.2f dip_w %.2f\n",
                     tree_name(tree).c_str(), load.name.c_str(),
                     static_cast<unsigned long long>(ondemand.lost),
                     ondemand.dip_end_s.mean(), ondemand.dip_width_s.mean(),
                     static_cast<unsigned long long>(serial.lost),
                     serial.dip_end_s.mean(), serial.dip_width_s.mean());
      } else {
        std::printf(
            "  -> tree %s %s: ondemand reopens service %.2f s earlier "
            "(dip_end %.2f -> %.2f) and loses %llu fewer requests "
            "(%llu -> %llu)\n",
            tree_name(tree).c_str(), load.name.c_str(),
            serial.dip_end_s.mean() - ondemand.dip_end_s.mean(),
            serial.dip_end_s.mean(), ondemand.dip_end_s.mean(),
            static_cast<unsigned long long>(serial.lost - ondemand.lost),
            static_cast<unsigned long long>(serial.lost),
            static_cast<unsigned long long>(ondemand.lost));
      }
    }
  }

  // Determinism and golden traces: same-seed trials are byte-identical, and
  // traces with per-request spans pass every checker invariant — the serial
  // trace proves phantom-goodput holds in anger (requests really resolve
  // lost against closed routes), the ondemand trace exercises its exemption
  // (requests legally served inside the restarts they promoted).
  for (const MercuryTree tree : trees) {
    for (const Mode& mode : {modes()[0], modes()[2]}) {
      TrialSpec spec =
          make_spec(tree, scenarios()[0], mode, load_grid[0], 8000);
      spec.traffic.trace_requests = true;
      TrialResult first, second;
      const std::string trace_a =
          mercury::bench::traced_trial_jsonl(spec, &first);
      const std::string trace_b =
          mercury::bench::traced_trial_jsonl(spec, &second);
      if (trace_a != trace_b || trace_a.empty()) {
        ++failures;
        std::fprintf(stderr, "NONDETERMINISM: tree %s %s\n",
                     tree_name(tree).c_str(), mode.name.c_str());
      }
      const auto traced = mercury::station::run_trial_traced(spec);
      const auto issues = mercury::obs::check_trace(traced.events);
      if (!issues.empty()) {
        ++failures;
        std::fprintf(stderr, "TRACE-VIOLATIONS: tree %s %s:\n%s",
                     tree_name(tree).c_str(), mode.name.c_str(),
                     mercury::obs::describe(issues).c_str());
      }
    }
  }

  // BENCH_traffic.json: flat schema so CI can diff goodput totals with jq
  // (and compare MERCURY_JOBS=2 against =1 byte for byte).
  {
    const char* dir = std::getenv("MERCURY_BENCH_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
        "BENCH_traffic.json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"bench_availability_traffic\",\n"
        << "  \"seeds\": " << seeds << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellStats& s = cells[i].second;
      out << "    {\"cell\": \"" << cells[i].first << "\", "
          << "\"issued\": " << s.issued << ", \"served\": " << s.served
          << ", \"lost\": " << s.lost << ", \"retried\": " << s.retried
          << ", \"restarting_rejections\": " << s.restarting_rejections
          << ", \"dip_depth\": "
          << mercury::util::format_fixed(s.dip_depth.mean(), 4)
          << ", \"dip_width_s\": "
          << mercury::util::format_fixed(s.dip_width_s.mean(), 4)
          << ", \"dip_end_s\": "
          << mercury::util::format_fixed(s.dip_end_s.mean(), 4)
          << ", \"p50_ms\": " << mercury::util::format_fixed(s.p50_ms.mean(), 3)
          << ", \"p99_ms\": " << mercury::util::format_fixed(s.p99_ms.mean(), 3)
          << ", \"touch_promotions\": " << s.touch_promotions
          << ", \"lazy_drains\": " << s.lazy_drains
          << ", \"stalls\": " << s.stalls
          << ", \"accounting_violations\": " << s.accounting_violations << "}"
          << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.good()) {
      ++failures;
      std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    } else {
      std::printf("json: %s (%zu cells)\n", path.c_str(), cells.size());
    }
  }

  std::printf("\n");
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d violations\n", failures);
    return 1;
  }
  std::printf(
      "OK: zero stalls, zero accounting violations; ondemand reopens "
      "service strictly earlier than serial on the flagship scenario for "
      "every tree and load; golden traffic traces pass all seven "
      "invariants\n");
  return session.finish();
}
