// Table 1 reproduction: "Observed per-component MTTFs".
//
//   Paper: mbus 1 month, fedrcom 10 min, ses/str/rtu 5 hr.
//
// The background fault injector drives the (fused-fedrcom) station with the
// calibrated failure processes for two simulated years; we report the
// empirical mean inter-failure time per component against the paper's
// operator estimates. This validates the workload model every other bench
// rests on.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "sim/simulator.h"
#include "station/experiment.h"
#include "station/fault_injector.h"
#include "station/station.h"

int main() {
  namespace names = mercury::core::component_names;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::util::Duration;

  mercury::bench::TraceSession trace("bench_table1");

  print_header(
      "Table 1 — observed per-component MTTFs, empirical over 2 simulated\n"
      "years of the fused-fedrcom station (paper: operator estimates)");

  mercury::sim::Simulator sim(42);
  mercury::station::StationConfig config;
  config.split_fedrcom = false;
  config.enable_domain_behavior = false;
  mercury::station::Station station(sim, config);
  station.boot_instant();

  mercury::station::InjectorConfig injector_config;
  injector_config.suppress_double_faults = false;  // no repair loop running
  injector_config.fedr_weibull_shape = 1.0;        // plain Table-1 rates
  mercury::station::FaultInjector injector(station, injector_config);
  injector.start();

  sim.run_for(Duration::days(2 * 365.0));

  struct Row {
    const char* component;
    const char* paper;
    double paper_hours;
  };
  const Row rows[] = {
      {"mbus", "1 month", 30.0 * 24.0},
      {"fedrcom", "10 min", 10.0 / 60.0},
      {"ses", "5 hr", 5.0},
      {"str", "5 hr", 5.0},
      {"rtu", "5 hr", 5.0},
  };

  const std::vector<int> widths = {10, 12, 10, 16, 16};
  print_row({"Component", "paper MTTF", "failures", "measured MTTF", "ratio"},
            widths);
  print_rule(widths);
  for (const Row& row : rows) {
    const auto& stats = injector.inter_failure_times(row.component);
    const double measured_hours = stats.mean() / 3600.0;
    print_row({row.component, row.paper, std::to_string(injector.injected(row.component)),
               mercury::util::format_fixed(measured_hours, 3) + " hr",
               mercury::util::format_fixed(measured_hours / row.paper_hours, 3)},
              widths);
  }
  std::printf(
      "\nRatios near 1.0 confirm the injector realizes the paper's observed\n"
      "failure rates (exponential inter-arrivals at the Table-1 means).\n");

  // Recovery-path trace validation: one supervised crash trial per Table-1
  // component, so the emitted trace holds complete fault -> detect -> decide
  // -> restart chains. The phase decomposition reconstructed from the trace
  // (obs/phases.h) must tile the measured end-to-end recovery time.
  print_header(
      "Trace check — phase decomposition vs measured end-to-end recovery\n"
      "(detection + decision + execution from the trace, per crash trial)");
  const std::vector<int> phase_widths = {10, 12, 12, 12, 12, 12, 8};
  print_row({"Component", "measured s", "detect s", "decide s", "execute s",
             "phase sum", "|err| %"},
            phase_widths);
  print_rule(phase_widths);

  const std::vector<std::string> crash_components = {"ses", "str", "rtu",
                                                     "fedrcom", "mbus"};
  std::vector<mercury::station::TrialSpec> specs;
  for (const std::string& component : crash_components) {
    mercury::station::TrialSpec spec;
    spec.tree = mercury::core::MercuryTree::kTreeI;
    spec.oracle = mercury::station::OracleKind::kHeuristic;
    spec.fail_component = component;
    spec.seed = 7;
    specs.push_back(std::move(spec));
  }
  // The batch parallelises across components; the merged trace assigns trial
  // i the run index run_before + 1 + i, exactly as the serial loop did.
  const std::uint64_t run_before =
      trace.recorder() != nullptr ? trace.recorder()->run() : 0;
  const std::vector<mercury::station::TrialResult> results =
      mercury::station::run_trial_batch(specs);

  bool phases_ok = true;
  if (trace.recorder() != nullptr) {
    const auto rows = mercury::obs::recovery_phases(trace.recorder()->events());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      // Sum the phases of every recovery action this trial's run produced
      // (normally one; escalations would add rows that still tile the span).
      double detect = 0.0, decide = 0.0, execute = 0.0;
      for (const auto& row : rows) {
        if (row.run != run_before + 1 + i) continue;
        detect += row.detection();
        decide += row.decision();
        execute += row.execution();
      }
      const double measured = results[i].recovery.to_seconds();
      const double sum = detect + decide + execute;
      const double err_pct =
          measured > 0.0 ? 100.0 * std::abs(sum - measured) / measured : 0.0;
      if (err_pct > 1.0) phases_ok = false;
      print_row({crash_components[i],
                 mercury::util::format_fixed(measured, 3),
                 mercury::util::format_fixed(detect, 3),
                 mercury::util::format_fixed(decide, 3),
                 mercury::util::format_fixed(execute, 3),
                 mercury::util::format_fixed(sum, 3),
                 mercury::util::format_fixed(err_pct, 2)},
                phase_widths);
    }
    std::printf("\nphase decomposition %s: per-phase durations sum to the "
                "measured\nend-to-end recovery time (tolerance 1%%)\n",
                phases_ok ? "OK" : "MISMATCH");
  }
  return trace.finish() | (phases_ok ? 0 : 1);
}
