// Ablation: restart contention vs whole-system recovery (tree I).
//
// §4.1 observes that "a whole system restart causes contention for
// resources ... this contention slows all components down" — it is why
// tree I's 24.75 s exceeds fedrcom's standalone 20.93 s. The sweep varies
// the contention slope and shows how strongly tree I (5-way concurrent
// restart) degrades while tree II (single restarts) is untouched.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"

int main() {
  namespace names = mercury::core::component_names;
  using mercury::core::MercuryTree;
  using mercury::station::OracleKind;
  using mercury::station::TrialSpec;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;

  print_header(
      "Ablation — contention slope vs MTTR: tree I (full reboot) vs tree II");

  const std::vector<int> widths = {10, 16, 16, 10};
  print_row({"slope", "tree I rtu (s)", "tree II rtu (s)", "I/II"}, widths);
  print_rule(widths);

  std::uint64_t seed = 11'000;
  for (double slope : {0.0, 0.03, 0.0628, 0.12, 0.25}) {
    auto measure = [&](MercuryTree tree) {
      TrialSpec spec;
      spec.tree = tree;
      spec.oracle = OracleKind::kPerfect;
      spec.fail_component = names::kRtu;
      spec.cal.contention_slope = slope;
      spec.seed = seed += 23;
      return mercury::station::run_trials(spec, 80).mean();
    };
    const double tree_i = measure(MercuryTree::kTreeI);
    const double tree_ii = measure(MercuryTree::kTreeII);
    print_row({mercury::util::format_fixed(slope, 4),
               mercury::util::format_fixed(tree_i, 2),
               mercury::util::format_fixed(tree_ii, 2),
               mercury::util::format_fixed(tree_i / tree_ii, 2) + "x"},
              widths);
  }

  std::printf(
      "\nslope 0.0628 is the calibrated default (tree I = 24.75 s). Partial\n"
      "restarts dodge contention entirely: tree II's cell restarts run one\n"
      "process at a time, so its MTTR is slope-invariant.\n");
  return 0;
}
