// Micro-benchmarks (google-benchmark): the hot paths under the
// reproduction — XML codec, event kernel, tree queries, analytic scoring,
// and a full end-to-end recovery trial.
#include <benchmark/benchmark.h>

#include "core/availability.h"
#include "core/mercury_trees.h"
#include "core/optimizer.h"
#include "msg/message.h"
#include "orbit/pass_predictor.h"
#include "sim/simulator.h"
#include "station/experiment.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

void BM_XmlEncodeDecode(benchmark::State& state) {
  mercury::msg::Message message =
      mercury::msg::make_command("rtu", "fedr", 42, "tune");
  message.body.set_attr("freq_hz", 437.09e6);
  for (auto _ : state) {
    const std::string wire = mercury::msg::encode(message);
    auto decoded = mercury::msg::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_XmlEncodeDecode);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    mercury::sim::Simulator sim(1);
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(mercury::util::Duration::millis(i), "e", [] {});
    }
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMicrosecond);

void BM_TreeGroupQuery(benchmark::State& state) {
  const auto tree = mercury::core::make_tree_v();
  for (auto _ : state) {
    auto node = tree.lowest_cell_covering_all(
        {mercury::core::component_names::kFedr,
         mercury::core::component_names::kPbcom});
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_TreeGroupQuery);

void BM_AnalyticSystemMttr(benchmark::State& state) {
  const auto tree = mercury::core::make_tree_iv();
  const auto model = mercury::core::mercury_system_model(true, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mercury::core::predicted_system_mttr(tree, model));
  }
}
BENCHMARK(BM_AnalyticSystemMttr);

void BM_OptimizerFullSearch(benchmark::State& state) {
  namespace names = mercury::core::component_names;
  const auto model = mercury::core::mercury_system_model(true, 0.3);
  const std::vector<std::string> components = {names::kMbus, names::kSes,
                                               names::kStr,  names::kRtu,
                                               names::kFedr, names::kPbcom};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mercury::core::optimize_tree(components, model, 1));
  }
}
BENCHMARK(BM_OptimizerFullSearch)->Unit(benchmark::kMillisecond);

void BM_PassPrediction(benchmark::State& state) {
  const auto station = mercury::orbit::GroundStation::stanford();
  const mercury::orbit::Propagator satellite(
      mercury::orbit::KeplerianElements::circular_leo(800.0, 60.0));
  for (auto _ : state) {
    auto passes = mercury::orbit::predict_passes(
        station, satellite, mercury::util::TimePoint::origin(),
        mercury::util::TimePoint::from_seconds(86400.0));
    benchmark::DoNotOptimize(passes);
  }
}
BENCHMARK(BM_PassPrediction)->Unit(benchmark::kMillisecond);

void BM_EndToEndRecoveryTrial(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    mercury::station::TrialSpec spec;
    spec.tree = mercury::core::MercuryTree::kTreeIV;
    spec.oracle = mercury::station::OracleKind::kPerfect;
    spec.fail_component = mercury::core::component_names::kSes;
    spec.seed = seed++;
    benchmark::DoNotOptimize(mercury::station::run_trial(spec));
  }
}
BENCHMARK(BM_EndToEndRecoveryTrial)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
