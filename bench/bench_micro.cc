// Micro-benchmarks over the reproduction's hot paths: the event kernel,
// message-bus routing, the trace recorder, the XML codec, and a full
// end-to-end recovery trial.
//
// Hand-rolled instead of google-benchmark (ISSUE 10): each metric is a
// fixed, deterministic workload timed wall-clock, repeated several times,
// best rep reported — the standard recipe for throughput numbers that are
// stable enough to gate on. Prints a table and writes BENCH_micro.json
// (flat schema below) into $MERCURY_BENCH_DIR (default: the working
// directory); CI diffs it against bench/baselines/BENCH_micro.baseline.json
// with bench/check_bench_micro.py so a hot-path regression fails the build
// instead of landing silently.
//
//   {"bench": "bench_micro",
//    "metrics": [{"metric": "<name>", "value": <ops/s>, "unit": "<unit>"}]}
//
// MERCURY_MICRO_QUICK=1 shrinks the workloads ~10x (CI smoke / sanitizer
// jobs); the JSON is still written, so quick runs must only be compared
// against quick baselines.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "core/mercury_trees.h"
#include "msg/message.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "station/experiment.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/time.h"

namespace {

using mercury::util::Duration;

bool quick_mode() {
  const char* flag = std::getenv("MERCURY_MICRO_QUICK");
  return flag != nullptr && std::string(flag) == "1";
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Metric {
  std::string name;
  double value = 0.0;  // throughput, higher is better
  std::string unit;
};

/// Run `workload` `reps` times; it returns (ops, seconds). Report the best
/// rep's ops/s — the least-interrupted run is the closest estimate of what
/// the code can do, and is far more stable across machines than the mean.
template <typename Workload>
double best_ops_per_s(int reps, Workload workload) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto [ops, elapsed] = workload();
    if (elapsed > 0.0) best = std::max(best, static_cast<double>(ops) / elapsed);
  }
  return best;
}

// --- Event kernel ---------------------------------------------------------

/// Pure queue throughput: schedule a batch with scattered delays, drain it.
/// Each schedule and each execute counts as one op.
double bench_event_queue(std::size_t events, int reps) {
  return best_ops_per_s(reps, [events] {
    mercury::sim::Simulator sim(7);
    mercury::util::Rng rng(11);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_after(Duration::millis(rng.uniform(0.0, 50.0)), "e", [] {});
    }
    sim.run_all();
    return std::pair{2 * events, seconds_since(start)};
  });
}

/// Churn: schedule/cancel/reschedule under load — the failure detector's
/// timeout pattern (arm a timeout, cancel it when the pong arrives). Stresses
/// slot reuse, generation checks and lazy heap pruning. Every schedule,
/// cancel and step counts as one op.
double bench_event_queue_churn(std::size_t rounds, int reps) {
  return best_ops_per_s(reps, [rounds] {
    mercury::sim::Simulator sim(13);
    mercury::util::Rng rng(17);
    std::vector<mercury::sim::EventId> pending;
    pending.reserve(64);
    std::uint64_t ops = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < rounds; ++i) {
      pending.push_back(sim.schedule_after(
          Duration::millis(rng.uniform(0.0, 20.0)), "t", [] {}));
      ++ops;
      if (pending.size() >= 48) {
        // Cancel a prefix out of order (stale heap entries pile up)...
        for (std::size_t k = 0; k < 16; ++k) {
          sim.cancel(pending[k * 2]);
          ++ops;
        }
        pending.clear();
        // ...then drain a little so the heap prunes them lazily.
        for (int k = 0; k < 16 && sim.step(); ++k) ++ops;
      }
    }
    sim.run_all();
    return std::pair{ops, seconds_since(start)};
  });
}

// --- Message bus ----------------------------------------------------------

/// Routing throughput end to end: encode, size-check, decode, route (cache
/// hit on repeat sends), deliver. Zero latency/jitter so virtual time never
/// advances and the measurement is pure bus work.
double bench_mbus_routing(std::size_t messages, int reps) {
  return best_ops_per_s(reps, [messages] {
    mercury::sim::Simulator sim(3);
    mercury::bus::BusConfig config;
    config.latency = Duration::millis(0.0);
    config.latency_jitter = Duration::millis(0.0);
    mercury::bus::MessageBus bus(sim, config);

    const std::vector<std::string> names = {"mbus", "ses",  "str", "rtu",
                                            "fedr", "pbcom", "fd",  "rec"};
    std::uint64_t received = 0;
    for (const std::string& name : names) {
      bus.attach(name, [&received](const mercury::msg::Message&) { ++received; });
    }

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < messages; ++i) {
      // 1-in-16 broadcast, otherwise point-to-point round-robin — roughly
      // the live traffic mix (pings dominate, beacons broadcast).
      const std::string& to =
          (i % 16 == 15) ? "*" : names[(i + 1) % names.size()];
      mercury::msg::Message ping = mercury::msg::make_ping(
          names[i % names.size()], to, static_cast<std::uint64_t>(i));
      bus.send(ping);
      sim.run_all();
    }
    const double elapsed = seconds_since(start);
    if (bus.stats().sent != messages || received == 0) {
      std::fprintf(stderr, "FAIL: bus bench delivered nothing\n");
      std::exit(1);
    }
    return std::pair{messages, elapsed};
  });
}

// --- Trace recorder -------------------------------------------------------

/// Recording throughput: the instant/begin/end mix a recovery emits, with
/// typical small arg lists. Each recorded event is one op.
double bench_trace_record(std::size_t events, int reps) {
  return best_ops_per_s(reps, [events] {
    mercury::obs::TraceRecorder recorder;
    std::uint64_t recorded = 0;
    const auto start = std::chrono::steady_clock::now();
    while (recorded + 3 <= events) {
      const double t = 1e-6 * static_cast<double>(recorded);
      recorder.instant(t, "detect", "fd.report", "fd",
                       {{"component", "ses"}, {"misses", "1"}});
      const std::uint64_t span =
          recorder.begin(t, "restart", "restart:ses", "pm", {{"epoch", "1"}});
      recorder.end(t + 1e-6, span);
      recorded += 3;
    }
    const double elapsed = seconds_since(start);
    if (recorder.events().size() != recorded) {
      std::fprintf(stderr, "FAIL: trace bench dropped events\n");
      std::exit(1);
    }
    return std::pair{recorded, elapsed};
  });
}

/// Merge throughput: per-trial recorders spliced into an ambient recorder,
/// the parallel runner's join step. Only the merges are timed; filling the
/// per-trial recorders is setup.
double bench_trace_merge(std::size_t per_recorder, std::size_t recorders,
                         int reps) {
  return best_ops_per_s(reps, [per_recorder, recorders] {
    std::vector<std::unique_ptr<mercury::obs::TraceRecorder>> trials;
    trials.reserve(recorders);
    for (std::size_t r = 0; r < recorders; ++r) {
      auto recorder = std::make_unique<mercury::obs::TraceRecorder>();
      for (std::size_t i = 0; i + 2 <= per_recorder; i += 2) {
        const double t = 1e-6 * static_cast<double>(i);
        const std::uint64_t span =
            recorder->begin(t, "recover", "rec.restart", "rec",
                            {{"component", "ses"}, {"cell", "ses"}});
        recorder->end(t + 1e-6, span);
      }
      trials.push_back(std::move(recorder));
    }

    mercury::obs::TraceRecorder ambient;
    const auto start = std::chrono::steady_clock::now();
    for (auto& trial : trials) ambient.merge_from(std::move(*trial));
    const double elapsed = seconds_since(start);
    const std::uint64_t merged = ambient.events().size();
    return std::pair{merged, elapsed};
  });
}

// --- XML codec ------------------------------------------------------------

/// Full wire round trip: encode a command to bytes, parse the bytes back.
/// One round trip is one op.
double bench_xml_roundtrip(std::size_t roundtrips, int reps) {
  return best_ops_per_s(reps, [roundtrips] {
    mercury::msg::Message message =
        mercury::msg::make_command("rtu", "fedr", 42, "tune");
    message.body.set_attr("freq_hz", 437.09e6);
    std::uint64_t ok = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < roundtrips; ++i) {
      const std::string wire = mercury::msg::encode(message);
      auto decoded = mercury::msg::decode(wire);
      if (decoded.ok()) ++ok;
    }
    const double elapsed = seconds_since(start);
    if (ok != roundtrips) {
      std::fprintf(stderr, "FAIL: xml bench decode failed\n");
      std::exit(1);
    }
    return std::pair{roundtrips, elapsed};
  });
}

// --- End-to-end trials ----------------------------------------------------

/// Serial recovery-trial throughput on one core: the paper's tree IV,
/// perfect oracle, ses failure — the configuration every table bench leans
/// on. This is the headline number: everything above feeds it.
double bench_trials(std::size_t trials, int reps) {
  return best_ops_per_s(reps, [trials] {
    std::uint64_t seed = 1;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < trials; ++i) {
      mercury::station::TrialSpec spec;
      spec.tree = mercury::core::MercuryTree::kTreeIV;
      spec.oracle = mercury::station::OracleKind::kPerfect;
      spec.fail_component = mercury::core::component_names::kSes;
      spec.seed = seed++;
      const auto result = mercury::station::run_trial(spec);
      if (result.hard_failure || result.timed_out) {
        std::fprintf(stderr, "FAIL: trial did not recover\n");
        std::exit(1);
      }
    }
    return std::pair{trials, seconds_since(start)};
  });
}

}  // namespace

int main() {
  const bool quick = quick_mode();
  // Quick mode shrinks every workload ~10x: enough to exercise the paths
  // under sanitizers, far too noisy to gate on with full-run baselines.
  const std::size_t scale = quick ? 1 : 10;
  const int reps = quick ? 2 : 5;

  std::printf("bench_micro: hot-path throughput (%s mode, best of %d reps)\n",
              quick ? "quick" : "full", reps);

  std::vector<Metric> metrics;
  const auto add = [&metrics](std::string name, double value, std::string unit) {
    std::printf("  %-28s %14.0f %s\n", name.c_str(), value, unit.c_str());
    std::fflush(stdout);
    metrics.push_back({std::move(name), value, std::move(unit)});
  };

  // Warm up allocator and caches with a small untimed trial batch.
  bench_trials(4, 1);

  add("event_queue_ops_per_s", bench_event_queue(50'000 * scale, reps),
      "ops/s");
  add("event_queue_churn_ops_per_s",
      bench_event_queue_churn(40'000 * scale, reps), "ops/s");
  add("mbus_routing_msgs_per_s", bench_mbus_routing(4'000 * scale, reps),
      "msgs/s");
  add("trace_records_per_s", bench_trace_record(60'000 * scale, reps),
      "events/s");
  add("trace_merge_events_per_s",
      bench_trace_merge(20'000 * scale, 8, reps), "events/s");
  add("xml_roundtrips_per_s", bench_xml_roundtrip(20'000 * scale, reps),
      "roundtrips/s");
  add("trials_per_s_per_core", bench_trials(30 * scale, reps), "trials/s");

  // BENCH_micro.json: the perf-trajectory record CI diffs against
  // bench/baselines/BENCH_micro.baseline.json (see bench/check_bench_micro.py).
  const char* dir = std::getenv("MERCURY_BENCH_DIR");
  const std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
      "BENCH_micro.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"bench_micro\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"metrics\": [\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << "    {\"metric\": \"" << metrics[i].name << "\", \"value\": "
        << mercury::util::format_fixed(metrics[i].value, 1) << ", \"unit\": \""
        << metrics[i].unit << "\"}" << (i + 1 < metrics.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  if (!out.good()) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return 1;
  }
  std::printf("json: %s (%zu metrics)\n", path.c_str(), metrics.size());
  return 0;
}
