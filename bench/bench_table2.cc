// Table 2 reproduction: "Tree II recovery: time to detect failed component
// plus time to recover system (in seconds)" — tree I vs tree II, 100
// SIGKILL trials per failed component.
//
//   Paper:   Failed node  mbus   ses    str    rtu    fedrcom
//            MTTR^I       24.75  24.75  24.75  24.75  24.75
//            MTTR^II       5.73   9.50   9.76   5.59  20.93
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"

namespace {

using mercury::core::MercuryTree;
using mercury::station::OracleKind;
using mercury::station::TrialSpec;

constexpr int kTrials = 100;

TrialSpec cell(MercuryTree tree, const std::string& component, std::uint64_t seed) {
  TrialSpec spec;
  spec.tree = tree;
  spec.oracle = OracleKind::kPerfect;
  spec.fail_component = component;
  spec.seed = seed;
  return spec;
}

}  // namespace

int main() {
  mercury::bench::TraceSession trace_session("bench_table2");
  namespace names = mercury::core::component_names;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::bench::vs_paper;

  print_header(
      "Table 2 — recovery time in seconds, measured (paper), 100 trials each\n"
      "trees I and II, perfect oracle, fail-silent SIGKILL per component");

  const std::vector<std::string> components = {names::kMbus, names::kSes,
                                               names::kStr, names::kRtu,
                                               names::kFedrcom};
  const std::vector<double> paper_tree_i = {24.75, 24.75, 24.75, 24.75, 24.75};
  const std::vector<double> paper_tree_ii = {5.73, 9.50, 9.76, 5.59, 20.93};

  const std::vector<int> widths = {10, 15, 15, 15, 15, 15};
  print_row({"Failed", "mbus", "ses", "str", "rtu", "fedrcom"}, widths);
  print_rule(widths);

  // Both trees' cells go to the experiment runner as one grid, so the sweep
  // parallelises across all 10 cells, not just within one (MERCURY_JOBS).
  std::vector<TrialSpec> cells;
  for (std::size_t i = 0; i < components.size(); ++i) {
    cells.push_back(cell(MercuryTree::kTreeI, components[i], 1000 + i));
  }
  for (std::size_t i = 0; i < components.size(); ++i) {
    cells.push_back(cell(MercuryTree::kTreeII, components[i], 2000 + i));
  }
  const std::vector<mercury::util::SampleStats> stats =
      mercury::station::run_trials_grid(cells, kTrials);

  std::vector<std::string> row_i = {"MTTR^I"};
  std::vector<std::string> row_ii = {"MTTR^II"};
  for (std::size_t i = 0; i < components.size(); ++i) {
    row_i.push_back(vs_paper(stats[i].mean(), paper_tree_i[i]));
    row_ii.push_back(
        vs_paper(stats[components.size() + i].mean(), paper_tree_ii[i]));
  }
  print_row(row_i, widths);
  print_row(row_ii, widths);

  std::printf(
      "\nShape checks: tree II beats tree I everywhere; rtu/mbus ~4x faster;\n"
      "fedrcom remains the slow tail (its restart dominates its own MTTR).\n");
  return trace_session.finish();
}
