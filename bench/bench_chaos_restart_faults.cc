// Chaos campaign over the restart path (ISSUE 2).
//
// The paper's recovery machinery assumes the cure works: killing and
// restarting a cell eventually yields READY components. This campaign breaks
// exactly that assumption — startups hang, crash, or are flaky — and checks
// that the *hardened* recoverer (per-restart deadline, same-cell backoff,
// attempt budgets, hard-failure parking with permanent FD masks) still
// terminates every trial:
//
//   FULL      the station fully recovered (the normal §4 outcome);
//   DEGRADED  REC parked a chain as a hard failure and the rest of the
//             station settled back into operation without it;
//   PARKED    REC parked, but the station did not settle degraded within
//             the trial deadline (counted separately; still terminal);
//   STALL     none of the above before the deadline — a recovery bug.
//
// The invariant asserted over every (tree, mix, seed) cell: STALL == 0 and
// every trial's restart count respects the attempt budget. A same-seed
// trial pair must also produce byte-identical traces (determinism: fault
// draws ride the seeded rng streams).
//
// Grid: >= 20 seeds x >= 6 fault mixes x both Mercury tree shapes (the fused
// tree II and the split tree IV). MERCURY_CHAOS_QUICK=1 shrinks to 4 seeds
// for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/failure.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"
#include "util/stats.h"

namespace {

using mercury::core::MercuryTree;
using mercury::core::RestartFaultSpec;
using mercury::station::FailureMode;
using mercury::station::OracleKind;
using mercury::station::TrialResult;
using mercury::station::TrialSpec;

struct FaultMix {
  std::string name;
  /// Restart faults on the failed component itself.
  RestartFaultSpec on_failed;
  /// Restart faults on every *other* component (exercises faults surfacing
  /// only once escalation widens the restart group).
  RestartFaultSpec on_others;
};

std::vector<FaultMix> fault_mixes() {
  std::vector<FaultMix> mixes;
  // Control: clean restarts. Hardening must not change the outcome.
  mixes.push_back({"clean", {}, {}});
  // Deterministic single hang: first restart attempt of the failed
  // component hangs; the deadline must abort it and escalation recover.
  {
    FaultMix mix{"hang-once", {}, {}};
    mix.on_failed.hang_first_attempts = 1;
    mixes.push_back(mix);
  }
  // Two consecutive hangs: exercises repeated timeout -> escalate rounds.
  {
    FaultMix mix{"hang-twice", {}, {}};
    mix.on_failed.hang_first_attempts = 2;
    mixes.push_back(mix);
  }
  // Crash loop: the first two startups run their course and die.
  {
    FaultMix mix{"crash-twice", {}, {}};
    mix.on_failed.fail_first_attempts = 2;
    mixes.push_back(mix);
  }
  // Flaky everywhere: every component's startup hangs or crashes with
  // moderate probability — contention-era chaos.
  {
    FaultMix mix{"flaky-all", {}, {}};
    mix.on_failed.hang_prob = 0.2;
    mix.on_failed.crash_prob = 0.2;
    mix.on_others.hang_prob = 0.1;
    mix.on_others.crash_prob = 0.1;
    mixes.push_back(mix);
  }
  // Pathological: the failed component's startup almost never succeeds.
  // Most seeds must end parked (explicitly, with the budget honored).
  {
    FaultMix mix{"pathological", {}, {}};
    mix.on_failed.hang_prob = 0.45;
    mix.on_failed.crash_prob = 0.45;
    mix.on_failed.fail_first_attempts = 1;
    mixes.push_back(mix);
  }
  return mixes;
}

TrialSpec make_spec(MercuryTree tree, const FaultMix& mix, std::uint64_t seed) {
  TrialSpec spec;
  spec.tree = tree;
  spec.oracle = OracleKind::kHeuristic;  // no failure-model knowledge
  spec.fail_component = "rtu";
  spec.mode = FailureMode::kCrash;
  spec.seed = seed;
  spec.harden_restart_path = true;
  spec.max_attempts_per_chain = 5;
  // Generous: parking a pathological chain takes up to budget x (deadline +
  // backoff) of simulated time.
  spec.timeout = mercury::util::Duration::seconds(600.0);

  spec.restart_faults["rtu"] = mix.on_failed;
  if (mix.on_others.active()) {
    const auto components =
        mercury::core::make_mercury_tree(tree).all_components();
    for (const auto& name : components) {
      // mbus stays clean: a parked bus is total loss, and this campaign
      // measures the degraded-operation regime.
      if (name == "rtu" || name == "mbus") continue;
      spec.restart_faults[name] = mix.on_others;
    }
  }
  return spec;
}

}  // namespace

int main() {
  mercury::bench::TraceSession session("bench_chaos_restart_faults");
  const bool quick = [] {
    const char* flag = std::getenv("MERCURY_CHAOS_QUICK");
    return flag != nullptr && std::string(flag) == "1";
  }();
  const int seeds = quick ? 4 : 20;
  const std::vector<MercuryTree> trees = {MercuryTree::kTreeII,
                                          MercuryTree::kTreeIV};
  const std::vector<FaultMix> mixes = fault_mixes();

  mercury::bench::print_header(
      "Chaos campaign: restart-path faults vs hardened recovery (ISSUE 2)\n"
      "grid: " + std::to_string(seeds) + " seeds x " +
      std::to_string(mixes.size()) + " fault mixes x 2 trees" +
      (quick ? "  [quick]" : ""));

  const std::vector<int> widths = {8, 14, 6, 10, 8, 8, 9, 9, 10};
  mercury::bench::print_row({"tree", "mix", "full", "degraded", "parked",
                             "stall", "timeouts", "backoffs", "p95 rec(s)"},
                            widths);
  mercury::bench::print_rule(widths);

  // The whole (tree x mix x seed) grid goes to the experiment runner as one
  // batch — trial order (hence seeds and the merged session trace) matches
  // the old serial triple loop, for any MERCURY_JOBS.
  std::vector<TrialSpec> batch;
  for (const MercuryTree tree : trees) {
    for (const FaultMix& mix : mixes) {
      for (int i = 0; i < seeds; ++i) {
        batch.push_back(make_spec(tree, mix, 1000 + i));
      }
    }
  }
  const std::vector<TrialResult> batch_results =
      mercury::station::run_trial_batch(batch);

  int stalls = 0;
  int budget_violations = 0;
  int determinism_failures = 0;
  std::size_t next_result = 0;
  for (const MercuryTree tree : trees) {
    const std::string tree_name =
        tree == MercuryTree::kTreeII ? "II" : "IV";
    for (const FaultMix& mix : mixes) {
      int full = 0, degraded = 0, parked_only = 0, stalled = 0;
      int timeouts = 0, backoffs = 0;
      mercury::util::SampleStats recovery;
      for (int i = 0; i < seeds; ++i) {
        const TrialSpec& spec = batch[next_result];
        const TrialResult& result = batch_results[next_result];
        ++next_result;
        timeouts += result.restart_timeouts;
        backoffs += result.backoffs;
        if (result.timed_out) {
          ++stalled;
          std::fprintf(stderr,
                       "STALL: tree %s mix %s seed %d neither recovered nor "
                       "parked within %.0f s\n",
                       tree_name.c_str(), mix.name.c_str(), 1000 + i,
                       spec.timeout.to_seconds());
        } else if (result.hard_failure) {
          if (result.parked.empty()) {
            // hard_failure without parked components would mean the legacy
            // give-up path fired without the permanent mask — a bug.
            ++stalled;
            std::fprintf(stderr, "PARK-WITHOUT-MASK: tree %s mix %s seed %d\n",
                         tree_name.c_str(), mix.name.c_str(), 1000 + i);
          } else if (result.degraded_functional) {
            ++degraded;
          } else {
            ++parked_only;
          }
        } else {
          ++full;
          recovery.add(result.recovery);
        }
        // Attempt budget: each chain consumes at most max_attempts_per_chain
        // restarts; a trial is one injected failure, and timed-out planned
        // actions can open at most one extra chain.
        const int budget_cap = 2 * spec.max_attempts_per_chain;
        if (result.restarts > budget_cap) {
          ++budget_violations;
          std::fprintf(stderr,
                       "BUDGET: tree %s mix %s seed %d used %d restarts "
                       "(cap %d)\n",
                       tree_name.c_str(), mix.name.c_str(), 1000 + i,
                       result.restarts, budget_cap);
        }
      }
      stalls += stalled;

      mercury::bench::print_row(
          {tree_name, mix.name, std::to_string(full), std::to_string(degraded),
           std::to_string(parked_only), std::to_string(stalled),
           std::to_string(timeouts), std::to_string(backoffs),
           recovery.count() > 0
               ? mercury::util::format_fixed(recovery.percentile(95.0), 2)
               : "-"},
          widths);

      // Determinism: the same seed must yield a byte-identical trace —
      // restart-fault draws ride the seeded rng streams, never wall clock.
      const TrialSpec spec = make_spec(tree, mix, 1000);
      TrialResult first, second;
      const std::string trace_a = mercury::bench::traced_trial_jsonl(spec, &first);
      const std::string trace_b = mercury::bench::traced_trial_jsonl(spec, &second);
      if (trace_a != trace_b || trace_a.empty()) {
        ++determinism_failures;
        std::fprintf(stderr, "NONDETERMINISM: tree %s mix %s seed 1000\n",
                     tree_name.c_str(), mix.name.c_str());
      }
    }
  }

  std::printf("\n");
  if (stalls > 0 || budget_violations > 0 || determinism_failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d stalls, %d budget violations, %d nondeterministic "
                 "cells\n",
                 stalls, budget_violations, determinism_failures);
    return 1;
  }
  std::printf("OK: every trial ended in full recovery or explicit parking; "
              "attempt budgets held; same-seed traces identical\n");
  return session.finish();
}
