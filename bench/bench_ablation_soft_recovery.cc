// Ablation: §7 recursive recovery — when is a soft rung worth it?
//
// The recoverer can try a component's custom soft procedure (a ~0.25 s
// reconnect) before climbing the restart tree. If the failure was
// soft-curable, that beats a restart by one to twenty seconds; if not, it
// wastes a soft round plus a re-detection (~1 s). The sweep varies the
// fraction of soft-curable failures in the workload and reports the mean
// recovery time under both policies — the crossover shows how common
// soft-curable transients must be before the extra rung pays.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "station/experiment.h"
#include "util/rng.h"

namespace {

namespace names = mercury::core::component_names;
using mercury::station::FailureMode;
using mercury::station::OracleKind;
using mercury::station::TrialSpec;

/// Mean recovery over a workload with the given soft-curable share; the
/// failing component cycles over the station (rate-weighted toward fedr).
double measure(bool soft_policy, double soft_fraction, std::uint64_t seed) {
  // The workload rng draws all 120 specs up front (deterministic, on the
  // calling thread); the trials themselves run on the experiment runner.
  mercury::util::Rng workload(seed);
  const std::string victims[] = {names::kFedr, names::kFedr, names::kFedr,
                                 names::kSes,  names::kStr,  names::kRtu,
                                 names::kPbcom};
  std::vector<TrialSpec> specs;
  specs.reserve(120);
  for (int i = 0; i < 120; ++i) {
    TrialSpec spec;
    spec.tree = mercury::core::MercuryTree::kTreeIV;
    spec.oracle = OracleKind::kHeuristic;
    spec.enable_soft_recovery = soft_policy;
    spec.fail_component = victims[workload.uniform_int(0, 6)];
    spec.mode = workload.chance(soft_fraction) ? FailureMode::kStaleAttachment
                                               : FailureMode::kCrash;
    spec.seed = seed + static_cast<std::uint64_t>(i) * 13;
    specs.push_back(std::move(spec));
  }
  mercury::util::SampleStats stats;
  for (const auto& result : mercury::station::run_trial_batch(specs)) {
    stats.add(result.recovery);
  }
  return stats.mean();
}

}  // namespace

int main() {
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::util::format_fixed;

  print_header(
      "Ablation — §7 recursive recovery: mean MTTR vs share of soft-curable\n"
      "failures (tree IV, heuristic oracle, 120 mixed trials per cell)");

  const std::vector<int> widths = {14, 18, 18, 12};
  print_row({"soft share", "restart-only (s)", "soft-first (s)", "winner"},
            widths);
  print_rule(widths);

  std::uint64_t seed = 60'000;
  for (double fraction : {0.0, 0.1, 0.2, 0.3, 0.5, 0.8}) {
    seed += 1'000;
    const double restart_only = measure(false, fraction, seed);
    const double soft_first = measure(true, fraction, seed);
    print_row({format_fixed(fraction, 2), format_fixed(restart_only, 2),
               format_fixed(soft_first, 2),
               soft_first < restart_only ? "soft-first" : "restart-only"},
              widths);
  }

  std::printf(
      "\nExpected: restart-only wins at soft share 0 (the soft rung only\n"
      "wastes a round); soft-first takes over once 15-25%% of failures are\n"
      "soft-curable — each such failure saves an entire restart (5-21 s)\n"
      "against a ~1 s penalty on the rest. \"Restart is just one example of\n"
      "a recovery procedure.\" (§7)\n");
  return 0;
}
