// Figure 4 reproduction: subtree depth augmentation — splitting fedrcom
// into fedr + pbcom under a joint cell (tree II -> II' -> III).
//
// In-text §4.2 numbers: "while before it took the system 20.93 seconds to
// recover from a fedrcom failure, it now takes 5.76 seconds to recover from
// a fedr failure and 21.24 seconds to recover from the seldom occurring
// pbcom failure."
//
// Because MTTF_fedr << MTTF_pbcom, most post-split failures take the cheap
// fedr path; we report the rate-weighted expected recovery before and after
// the split.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/mercury_trees.h"
#include "core/transformations.h"
#include "station/experiment.h"

int main() {
  mercury::bench::TraceSession trace_session("bench_fig4_subtree_split");
  namespace names = mercury::core::component_names;
  using namespace mercury::core;
  using mercury::bench::print_header;
  using mercury::bench::print_row;
  using mercury::bench::print_rule;
  using mercury::bench::vs_paper;
  using mercury::station::OracleKind;
  using mercury::station::TrialSpec;

  print_header(
      "Figure 4 — subtree depth augmentation: fedrcom -> [fedr, pbcom]");

  auto tree_ii_prime =
      split_component(make_tree_ii(), names::kFedrcom, {names::kFedr, names::kPbcom});
  auto tree_iii = group_under_joint(tree_ii_prime.value(), names::kFedr,
                                    names::kPbcom, "R_[fedr,pbcom]");
  std::printf("\nTree II' (split, no joint cell):\n%s",
              tree_ii_prime.value().render().c_str());
  std::printf("\nTree III (joint cell for correlated failures):\n%s",
              tree_iii.value().render().c_str());

  const std::vector<int> widths = {22, 18};
  print_row({"Failure", "recovery (paper)"}, widths);
  print_rule(widths);

  // One grid over the figure's three cells (runner parallelism spans all of
  // them); cell order and seeds are the old serial sequence.
  std::vector<TrialSpec> grid(3);
  for (TrialSpec& spec : grid) spec.oracle = OracleKind::kPerfect;
  grid[0].tree = MercuryTree::kTreeII;
  grid[0].fail_component = names::kFedrcom;
  grid[0].seed = 71;
  grid[1].tree = MercuryTree::kTreeIII;
  grid[1].fail_component = names::kFedr;
  grid[1].seed = 72;
  grid[2].tree = MercuryTree::kTreeIII;
  grid[2].fail_component = names::kPbcom;
  grid[2].seed = 73;
  const std::vector<mercury::util::SampleStats> stats =
      mercury::station::run_trials_grid(grid, 100);
  const double fedrcom = stats[0].mean();
  const double fedr = stats[1].mean();
  const double pbcom = stats[2].mean();
  print_row({"fedrcom (tree II)", vs_paper(fedrcom, 20.93)}, widths);
  print_row({"fedr (tree III)", vs_paper(fedr, 5.76)}, widths);
  print_row({"pbcom (tree III)", vs_paper(pbcom, 21.24)}, widths);

  // Rate-weighted: fedr inherits the translator bugs (MTTF ~11 min), pbcom
  // fails roughly once per ~10 fedr incidents through aging.
  const double fedr_rate = 60.0 / 11.0;   // per hour
  const double pbcom_rate = 60.0 / 80.0;  // per hour
  const double expected_after =
      (fedr_rate * fedr + pbcom_rate * pbcom) / (fedr_rate + pbcom_rate);
  print_rule(widths);
  print_row({"E[recovery] before", mercury::util::format_fixed(fedrcom, 2)},
            widths);
  print_row({"E[recovery] after", mercury::util::format_fixed(expected_after, 2)},
            widths);
  print_row({"improvement",
             mercury::util::format_fixed(fedrcom / expected_after, 2) + "x"},
            widths);

  std::printf(
      "\n\"Most of the failures will be cured by quick fedr restarts and a\n"
      "few ... will result in slow pbcom restarts, whereas previously they\n"
      "would have all required slow fedrcom restarts.\" (§4.2)\n");
  return trace_session.finish();
}
