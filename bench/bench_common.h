// Shared table-printing helpers for the reproduction benches.
//
// Each bench regenerates one table or figure from the paper, printing the
// paper's reported value next to our measured value so the comparison is
// auditable straight from the bench output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/phases.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "station/experiment.h"
#include "util/strings.h"

namespace mercury::bench {

/// Per-bench recovery tracing (docs/TRACING.md). Construct one at the top of
/// main(); while it lives, every recovery the bench drives is recorded (the
/// parallel experiment runner merges worker-thread trials back into this
/// recorder in trial order, so the files below are byte-identical for any
/// MERCURY_JOBS). finish() — called by the destructor if the bench does not —
/// validates the recovery-trace invariants (obs/trace_check.h), writes
/// <name>.trace.jsonl (line-per-event schema) and <name>.trace.json (Chrome
/// trace-event format, for chrome://tracing or ui.perfetto.dev) into
/// $MERCURY_TRACE_DIR (default: the working directory) and prints the
/// per-phase recovery breakdown plus aggregate counters. Benches return
/// `trace.finish() | failures` so an illegal recovery schedule fails the
/// bench even when the aggregate numbers look fine.
///
/// Set MERCURY_TRACE=0 to disable tracing entirely.
class TraceSession {
 public:
  explicit TraceSession(std::string name) : name_(std::move(name)) {
    const char* flag = std::getenv("MERCURY_TRACE");
    if (flag != nullptr && std::string(flag) == "0") return;
    recorder_ = std::make_unique<obs::TraceRecorder>();
    obs::set_recorder(recorder_.get());
  }

  ~TraceSession() { finish(); }

  /// Loosen or tighten the invariant checks (e.g. require_resolution=false
  /// for benches that deliberately drive trials into timeouts).
  void set_check_options(const obs::CheckOptions& options) {
    check_options_ = options;
  }
  /// Skip invariant checking entirely (trace is still written).
  void disable_check() { check_enabled_ = false; }

  /// Check invariants, write the trace files and print the breakdown.
  /// Returns 0 when the trace satisfies every invariant (or tracing /
  /// checking is off), 1 otherwise. Idempotent: the first call does the
  /// work, later calls (including the destructor's) return the same code.
  int finish() {
    if (finished_) return exit_code_;
    finished_ = true;
    if (recorder_ == nullptr) return 0;
    obs::set_recorder(nullptr);

    if (check_enabled_) {
      const std::vector<obs::TraceIssue> issues =
          obs::check_trace(recorder_->events(), check_options_);
      if (!issues.empty()) {
        exit_code_ = 1;
        std::fprintf(stderr,
                     "\n--- TRACE INVARIANT VIOLATIONS (%zu) ------------------\n%s",
                     issues.size(), obs::describe(issues).c_str());
      }
    }

    const char* dir = std::getenv("MERCURY_TRACE_DIR");
    std::string prefix = name_;
    if (dir != nullptr && *dir != '\0') {
      // Create the trace directory if it does not exist yet, and say
      // exactly what went wrong if we cannot — a silently unwritable
      // MERCURY_TRACE_DIR used to drop traces with only a vague warning.
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr,
                     "error: cannot create MERCURY_TRACE_DIR '%s': %s; "
                     "traces will not be written\n",
                     dir, ec.message().c_str());
      }
      prefix = std::string(dir) + "/" + name_;
    }
    const std::string jsonl_path = prefix + ".trace.jsonl";
    const std::string chrome_path = prefix + ".trace.json";
    bool wrote = true;
    {
      std::ofstream out(jsonl_path);
      recorder_->write_jsonl(out);
      wrote = wrote && out.good();
    }
    {
      std::ofstream out(chrome_path);
      recorder_->write_chrome_trace(out);
      wrote = wrote && out.good();
    }

    std::printf("\n--- Recovery phase breakdown (from trace) -----------------\n");
    std::printf("%s", obs::phase_table(
                          obs::recovery_phases(recorder_->events())).c_str());
    std::printf("%s", recorder_->metrics_summary().c_str());
    if (recorder_->dropped() > 0) {
      std::printf("note: %llu events dropped at the recorder cap\n",
                  static_cast<unsigned long long>(recorder_->dropped()));
    }
    if (check_enabled_ && exit_code_ == 0) {
      std::printf("trace invariants: OK (%zu events checked)\n",
                  recorder_->events().size());
    }
    if (wrote) {
      std::printf("trace: %s (JSONL), %s (chrome://tracing / Perfetto)\n",
                  jsonl_path.c_str(), chrome_path.c_str());
    } else {
      std::fprintf(stderr,
                   "warning: could not write trace files under '%s' "
                   "(does MERCURY_TRACE_DIR exist?)\n",
                   prefix.c_str());
    }
    return exit_code_;
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The live recorder, or nullptr when disabled via MERCURY_TRACE=0.
  obs::TraceRecorder* recorder() { return recorder_.get(); }

 private:
  std::string name_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
  obs::CheckOptions check_options_;
  bool check_enabled_ = true;
  bool finished_ = false;
  int exit_code_ = 0;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    line += util::pad_left(cells[i], static_cast<std::size_t>(width));
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

inline void print_rule(const std::vector<int>& widths) {
  std::string line;
  for (int width : widths) {
    line += std::string(static_cast<std::size_t>(width), '-');
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

/// "measured (paper X)" cell.
inline std::string vs_paper(double measured, double paper) {
  return util::format_fixed(measured, 2) + " (" + util::format_fixed(paper, 2) + ")";
}

/// One trial under a fresh recorder (fresh run/span counters), serialized to
/// JSONL — two same-seed calls must return byte-identical strings, the
/// determinism oracle of the chaos and warm-restart campaigns.
inline std::string traced_trial_jsonl(const station::TrialSpec& spec,
                                      station::TrialResult* result) {
  station::TracedTrial traced = station::run_trial_traced(spec);
  *result = traced.result;
  std::ostringstream out;
  obs::write_jsonl(traced.events, out);
  return out.str();
}

}  // namespace mercury::bench
