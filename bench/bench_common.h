// Shared table-printing helpers for the reproduction benches.
//
// Each bench regenerates one table or figure from the paper, printing the
// paper's reported value next to our measured value so the comparison is
// auditable straight from the bench output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/strings.h"

namespace mercury::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    line += util::pad_left(cells[i], static_cast<std::size_t>(width));
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

inline void print_rule(const std::vector<int>& widths) {
  std::string line;
  for (int width : widths) {
    line += std::string(static_cast<std::size_t>(width), '-');
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

/// "measured (paper X)" cell.
inline std::string vs_paper(double measured, double paper) {
  return util::format_fixed(measured, 2) + " (" + util::format_fixed(paper, 2) + ")";
}

}  // namespace mercury::bench
