// Shared table-printing helpers for the reproduction benches.
//
// Each bench regenerates one table or figure from the paper, printing the
// paper's reported value next to our measured value so the comparison is
// auditable straight from the bench output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/phases.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace mercury::bench {

/// Per-bench recovery tracing (docs/TRACING.md). Construct one at the top of
/// main(); while it lives, every recovery the bench drives is recorded. On
/// destruction it writes <name>.trace.jsonl (line-per-event schema) and
/// <name>.trace.json (Chrome trace-event format, for chrome://tracing or
/// ui.perfetto.dev) into $MERCURY_TRACE_DIR (default: the working directory)
/// and prints the per-phase recovery breakdown plus aggregate counters.
///
/// Set MERCURY_TRACE=0 to disable tracing entirely.
class TraceSession {
 public:
  explicit TraceSession(std::string name) : name_(std::move(name)) {
    const char* flag = std::getenv("MERCURY_TRACE");
    if (flag != nullptr && std::string(flag) == "0") return;
    recorder_ = std::make_unique<obs::TraceRecorder>();
    obs::set_recorder(recorder_.get());
  }

  ~TraceSession() {
    if (recorder_ == nullptr) return;
    obs::set_recorder(nullptr);

    const char* dir = std::getenv("MERCURY_TRACE_DIR");
    std::string prefix = name_;
    if (dir != nullptr && *dir != '\0') {
      // Create the trace directory if it does not exist yet, and say
      // exactly what went wrong if we cannot — a silently unwritable
      // MERCURY_TRACE_DIR used to drop traces with only a vague warning.
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr,
                     "error: cannot create MERCURY_TRACE_DIR '%s': %s; "
                     "traces will not be written\n",
                     dir, ec.message().c_str());
      }
      prefix = std::string(dir) + "/" + name_;
    }
    const std::string jsonl_path = prefix + ".trace.jsonl";
    const std::string chrome_path = prefix + ".trace.json";
    bool wrote = true;
    {
      std::ofstream out(jsonl_path);
      recorder_->write_jsonl(out);
      wrote = wrote && out.good();
    }
    {
      std::ofstream out(chrome_path);
      recorder_->write_chrome_trace(out);
      wrote = wrote && out.good();
    }

    std::printf("\n--- Recovery phase breakdown (from trace) -----------------\n");
    std::printf("%s", obs::phase_table(
                          obs::recovery_phases(recorder_->events())).c_str());
    std::printf("%s", recorder_->metrics_summary().c_str());
    if (recorder_->dropped() > 0) {
      std::printf("note: %llu events dropped at the recorder cap\n",
                  static_cast<unsigned long long>(recorder_->dropped()));
    }
    if (wrote) {
      std::printf("trace: %s (JSONL), %s (chrome://tracing / Perfetto)\n",
                  jsonl_path.c_str(), chrome_path.c_str());
    } else {
      std::fprintf(stderr,
                   "warning: could not write trace files under '%s' "
                   "(does MERCURY_TRACE_DIR exist?)\n",
                   prefix.c_str());
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The live recorder, or nullptr when disabled via MERCURY_TRACE=0.
  obs::TraceRecorder* recorder() { return recorder_.get(); }

 private:
  std::string name_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    line += util::pad_left(cells[i], static_cast<std::size_t>(width));
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

inline void print_rule(const std::vector<int>& widths) {
  std::string line;
  for (int width : widths) {
    line += std::string(static_cast<std::size_t>(width), '-');
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

/// "measured (paper X)" cell.
inline std::string vs_paper(double measured, double paper) {
  return util::format_fixed(measured, 2) + " (" + util::format_fixed(paper, 2) + ")";
}

}  // namespace mercury::bench
