# Empty compiler generated dependencies file for test_transformations.
# This may be replaced when dependencies are built.
