file(REMOVE_RECURSE
  "CMakeFiles/test_transformations.dir/test_transformations.cc.o"
  "CMakeFiles/test_transformations.dir/test_transformations.cc.o.d"
  "test_transformations"
  "test_transformations.pdb"
  "test_transformations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transformations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
