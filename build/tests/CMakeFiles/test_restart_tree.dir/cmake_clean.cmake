file(REMOVE_RECURSE
  "CMakeFiles/test_restart_tree.dir/test_restart_tree.cc.o"
  "CMakeFiles/test_restart_tree.dir/test_restart_tree.cc.o.d"
  "test_restart_tree"
  "test_restart_tree.pdb"
  "test_restart_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restart_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
