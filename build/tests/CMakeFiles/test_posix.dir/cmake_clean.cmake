file(REMOVE_RECURSE
  "CMakeFiles/test_posix.dir/test_posix.cc.o"
  "CMakeFiles/test_posix.dir/test_posix.cc.o.d"
  "test_posix"
  "test_posix.pdb"
  "test_posix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
