file(REMOVE_RECURSE
  "CMakeFiles/test_recoverer.dir/test_recoverer.cc.o"
  "CMakeFiles/test_recoverer.dir/test_recoverer.cc.o.d"
  "test_recoverer"
  "test_recoverer.pdb"
  "test_recoverer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recoverer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
