# Empty compiler generated dependencies file for test_recoverer.
# This may be replaced when dependencies are built.
