file(REMOVE_RECURSE
  "CMakeFiles/test_failure_board.dir/test_failure_board.cc.o"
  "CMakeFiles/test_failure_board.dir/test_failure_board.cc.o.d"
  "test_failure_board"
  "test_failure_board.pdb"
  "test_failure_board[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
