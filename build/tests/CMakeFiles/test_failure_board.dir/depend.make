# Empty dependencies file for test_failure_board.
# This may be replaced when dependencies are built.
