file(REMOVE_RECURSE
  "CMakeFiles/test_fd_rec.dir/test_fd_rec.cc.o"
  "CMakeFiles/test_fd_rec.dir/test_fd_rec.cc.o.d"
  "test_fd_rec"
  "test_fd_rec.pdb"
  "test_fd_rec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fd_rec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
