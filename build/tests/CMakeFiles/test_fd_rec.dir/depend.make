# Empty dependencies file for test_fd_rec.
# This may be replaced when dependencies are built.
