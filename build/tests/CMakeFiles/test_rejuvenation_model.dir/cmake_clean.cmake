file(REMOVE_RECURSE
  "CMakeFiles/test_rejuvenation_model.dir/test_rejuvenation_model.cc.o"
  "CMakeFiles/test_rejuvenation_model.dir/test_rejuvenation_model.cc.o.d"
  "test_rejuvenation_model"
  "test_rejuvenation_model.pdb"
  "test_rejuvenation_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rejuvenation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
