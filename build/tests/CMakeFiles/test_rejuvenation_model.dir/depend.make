# Empty dependencies file for test_rejuvenation_model.
# This may be replaced when dependencies are built.
