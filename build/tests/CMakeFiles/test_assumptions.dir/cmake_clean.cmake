file(REMOVE_RECURSE
  "CMakeFiles/test_assumptions.dir/test_assumptions.cc.o"
  "CMakeFiles/test_assumptions.dir/test_assumptions.cc.o.d"
  "test_assumptions"
  "test_assumptions.pdb"
  "test_assumptions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
