# Empty dependencies file for test_station.
# This may be replaced when dependencies are built.
