file(REMOVE_RECURSE
  "CMakeFiles/test_pass_economics.dir/test_pass_economics.cc.o"
  "CMakeFiles/test_pass_economics.dir/test_pass_economics.cc.o.d"
  "test_pass_economics"
  "test_pass_economics.pdb"
  "test_pass_economics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pass_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
