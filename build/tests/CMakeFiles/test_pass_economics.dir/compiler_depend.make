# Empty compiler generated dependencies file for test_pass_economics.
# This may be replaced when dependencies are built.
