file(REMOVE_RECURSE
  "CMakeFiles/test_recursive_recovery.dir/test_recursive_recovery.cc.o"
  "CMakeFiles/test_recursive_recovery.dir/test_recursive_recovery.cc.o.d"
  "test_recursive_recovery"
  "test_recursive_recovery.pdb"
  "test_recursive_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recursive_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
