# Empty compiler generated dependencies file for test_recursive_recovery.
# This may be replaced when dependencies are built.
