# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_msg[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_orbit[1]_include.cmake")
include("/root/repo/build/tests/test_restart_tree[1]_include.cmake")
include("/root/repo/build/tests/test_transformations[1]_include.cmake")
include("/root/repo/build/tests/test_failure_board[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_availability[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_assumptions[1]_include.cmake")
include("/root/repo/build/tests/test_station[1]_include.cmake")
include("/root/repo/build/tests/test_fd_rec[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_posix[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_health[1]_include.cmake")
include("/root/repo/build/tests/test_recursive_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_tle[1]_include.cmake")
include("/root/repo/build/tests/test_rejuvenation_model[1]_include.cmake")
include("/root/repo/build/tests/test_failure_detector[1]_include.cmake")
include("/root/repo/build/tests/test_recoverer[1]_include.cmake")
include("/root/repo/build/tests/test_timeline[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_pass_economics[1]_include.cmake")
