file(REMOVE_RECURSE
  "CMakeFiles/tree_designer.dir/tree_designer.cpp.o"
  "CMakeFiles/tree_designer.dir/tree_designer.cpp.o.d"
  "tree_designer"
  "tree_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
