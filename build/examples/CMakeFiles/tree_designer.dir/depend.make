# Empty dependencies file for tree_designer.
# This may be replaced when dependencies are built.
