# Empty dependencies file for mercury_pass.
# This may be replaced when dependencies are built.
