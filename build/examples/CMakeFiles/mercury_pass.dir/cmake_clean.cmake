file(REMOVE_RECURSE
  "CMakeFiles/mercury_pass.dir/mercury_pass.cpp.o"
  "CMakeFiles/mercury_pass.dir/mercury_pass.cpp.o.d"
  "mercury_pass"
  "mercury_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
