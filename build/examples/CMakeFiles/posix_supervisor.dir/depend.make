# Empty dependencies file for posix_supervisor.
# This may be replaced when dependencies are built.
