file(REMOVE_RECURSE
  "CMakeFiles/posix_supervisor.dir/posix_supervisor.cpp.o"
  "CMakeFiles/posix_supervisor.dir/posix_supervisor.cpp.o.d"
  "posix_supervisor"
  "posix_supervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_supervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
