file(REMOVE_RECURSE
  "CMakeFiles/mercury_ctl.dir/mercury_ctl.cpp.o"
  "CMakeFiles/mercury_ctl.dir/mercury_ctl.cpp.o.d"
  "mercury_ctl"
  "mercury_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
