# Empty dependencies file for mercury_ctl.
# This may be replaced when dependencies are built.
