# Empty dependencies file for cluster_service.
# This may be replaced when dependencies are built.
