file(REMOVE_RECURSE
  "CMakeFiles/cluster_service.dir/cluster_service.cpp.o"
  "CMakeFiles/cluster_service.dir/cluster_service.cpp.o.d"
  "cluster_service"
  "cluster_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
