file(REMOVE_RECURSE
  "CMakeFiles/ops_day.dir/ops_day.cpp.o"
  "CMakeFiles/ops_day.dir/ops_day.cpp.o.d"
  "ops_day"
  "ops_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
