# Empty dependencies file for ops_day.
# This may be replaced when dependencies are built.
