file(REMOVE_RECURSE
  "../bench/bench_ablation_rejuvenation"
  "../bench/bench_ablation_rejuvenation.pdb"
  "CMakeFiles/bench_ablation_rejuvenation.dir/bench_ablation_rejuvenation.cc.o"
  "CMakeFiles/bench_ablation_rejuvenation.dir/bench_ablation_rejuvenation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
