# Empty dependencies file for bench_ablation_rejuvenation.
# This may be replaced when dependencies are built.
