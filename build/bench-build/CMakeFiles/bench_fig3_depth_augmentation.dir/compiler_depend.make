# Empty compiler generated dependencies file for bench_fig3_depth_augmentation.
# This may be replaced when dependencies are built.
