file(REMOVE_RECURSE
  "../bench/bench_fig3_depth_augmentation"
  "../bench/bench_fig3_depth_augmentation.pdb"
  "CMakeFiles/bench_fig3_depth_augmentation.dir/bench_fig3_depth_augmentation.cc.o"
  "CMakeFiles/bench_fig3_depth_augmentation.dir/bench_fig3_depth_augmentation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_depth_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
