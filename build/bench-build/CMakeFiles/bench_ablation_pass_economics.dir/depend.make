# Empty dependencies file for bench_ablation_pass_economics.
# This may be replaced when dependencies are built.
