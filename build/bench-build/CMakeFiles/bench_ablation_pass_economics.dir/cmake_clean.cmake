file(REMOVE_RECURSE
  "../bench/bench_ablation_pass_economics"
  "../bench/bench_ablation_pass_economics.pdb"
  "CMakeFiles/bench_ablation_pass_economics.dir/bench_ablation_pass_economics.cc.o"
  "CMakeFiles/bench_ablation_pass_economics.dir/bench_ablation_pass_economics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pass_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
