file(REMOVE_RECURSE
  "../bench/bench_ablation_availability"
  "../bench/bench_ablation_availability.pdb"
  "CMakeFiles/bench_ablation_availability.dir/bench_ablation_availability.cc.o"
  "CMakeFiles/bench_ablation_availability.dir/bench_ablation_availability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
