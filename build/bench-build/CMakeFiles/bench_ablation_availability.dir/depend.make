# Empty dependencies file for bench_ablation_availability.
# This may be replaced when dependencies are built.
