file(REMOVE_RECURSE
  "../bench/bench_ablation_detection_robustness"
  "../bench/bench_ablation_detection_robustness.pdb"
  "CMakeFiles/bench_ablation_detection_robustness.dir/bench_ablation_detection_robustness.cc.o"
  "CMakeFiles/bench_ablation_detection_robustness.dir/bench_ablation_detection_robustness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detection_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
