file(REMOVE_RECURSE
  "../bench/bench_fig5_consolidation"
  "../bench/bench_fig5_consolidation.pdb"
  "CMakeFiles/bench_fig5_consolidation.dir/bench_fig5_consolidation.cc.o"
  "CMakeFiles/bench_fig5_consolidation.dir/bench_fig5_consolidation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
