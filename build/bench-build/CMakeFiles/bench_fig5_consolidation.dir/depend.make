# Empty dependencies file for bench_fig5_consolidation.
# This may be replaced when dependencies are built.
