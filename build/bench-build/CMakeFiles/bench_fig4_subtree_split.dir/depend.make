# Empty dependencies file for bench_fig4_subtree_split.
# This may be replaced when dependencies are built.
