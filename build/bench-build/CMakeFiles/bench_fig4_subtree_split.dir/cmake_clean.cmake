file(REMOVE_RECURSE
  "../bench/bench_fig4_subtree_split"
  "../bench/bench_fig4_subtree_split.pdb"
  "CMakeFiles/bench_fig4_subtree_split.dir/bench_fig4_subtree_split.cc.o"
  "CMakeFiles/bench_fig4_subtree_split.dir/bench_fig4_subtree_split.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_subtree_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
