file(REMOVE_RECURSE
  "../bench/bench_ablation_contention"
  "../bench/bench_ablation_contention.pdb"
  "CMakeFiles/bench_ablation_contention.dir/bench_ablation_contention.cc.o"
  "CMakeFiles/bench_ablation_contention.dir/bench_ablation_contention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
