file(REMOVE_RECURSE
  "../bench/bench_ablation_rejuvenation_model"
  "../bench/bench_ablation_rejuvenation_model.pdb"
  "CMakeFiles/bench_ablation_rejuvenation_model.dir/bench_ablation_rejuvenation_model.cc.o"
  "CMakeFiles/bench_ablation_rejuvenation_model.dir/bench_ablation_rejuvenation_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rejuvenation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
