# Empty dependencies file for bench_ablation_rejuvenation_model.
# This may be replaced when dependencies are built.
