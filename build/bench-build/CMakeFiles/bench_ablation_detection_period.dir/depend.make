# Empty dependencies file for bench_ablation_detection_period.
# This may be replaced when dependencies are built.
