file(REMOVE_RECURSE
  "../bench/bench_ablation_detection_period"
  "../bench/bench_ablation_detection_period.pdb"
  "CMakeFiles/bench_ablation_detection_period.dir/bench_ablation_detection_period.cc.o"
  "CMakeFiles/bench_ablation_detection_period.dir/bench_ablation_detection_period.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detection_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
