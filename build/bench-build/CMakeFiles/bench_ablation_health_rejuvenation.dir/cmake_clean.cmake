file(REMOVE_RECURSE
  "../bench/bench_ablation_health_rejuvenation"
  "../bench/bench_ablation_health_rejuvenation.pdb"
  "CMakeFiles/bench_ablation_health_rejuvenation.dir/bench_ablation_health_rejuvenation.cc.o"
  "CMakeFiles/bench_ablation_health_rejuvenation.dir/bench_ablation_health_rejuvenation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_health_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
