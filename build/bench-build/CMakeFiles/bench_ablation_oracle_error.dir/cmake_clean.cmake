file(REMOVE_RECURSE
  "../bench/bench_ablation_oracle_error"
  "../bench/bench_ablation_oracle_error.pdb"
  "CMakeFiles/bench_ablation_oracle_error.dir/bench_ablation_oracle_error.cc.o"
  "CMakeFiles/bench_ablation_oracle_error.dir/bench_ablation_oracle_error.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_oracle_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
