# Empty dependencies file for bench_ablation_oracle_error.
# This may be replaced when dependencies are built.
