
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_promotion.cc" "bench-build/CMakeFiles/bench_fig6_promotion.dir/bench_fig6_promotion.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig6_promotion.dir/bench_fig6_promotion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/station/CMakeFiles/mercury_station.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mercury_core.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/mercury_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mercury_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercury_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/mercury_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mercury_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
