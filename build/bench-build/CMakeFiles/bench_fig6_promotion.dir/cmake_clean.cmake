file(REMOVE_RECURSE
  "../bench/bench_fig6_promotion"
  "../bench/bench_fig6_promotion.pdb"
  "CMakeFiles/bench_fig6_promotion.dir/bench_fig6_promotion.cc.o"
  "CMakeFiles/bench_fig6_promotion.dir/bench_fig6_promotion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
