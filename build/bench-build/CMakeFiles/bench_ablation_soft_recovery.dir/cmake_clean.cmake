file(REMOVE_RECURSE
  "../bench/bench_ablation_soft_recovery"
  "../bench/bench_ablation_soft_recovery.pdb"
  "CMakeFiles/bench_ablation_soft_recovery.dir/bench_ablation_soft_recovery.cc.o"
  "CMakeFiles/bench_ablation_soft_recovery.dir/bench_ablation_soft_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_soft_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
