# Empty compiler generated dependencies file for bench_posix_supervision.
# This may be replaced when dependencies are built.
