file(REMOVE_RECURSE
  "../bench/bench_posix_supervision"
  "../bench/bench_posix_supervision.pdb"
  "CMakeFiles/bench_posix_supervision.dir/bench_posix_supervision.cc.o"
  "CMakeFiles/bench_posix_supervision.dir/bench_posix_supervision.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_posix_supervision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
