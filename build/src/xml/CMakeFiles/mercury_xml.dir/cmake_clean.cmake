file(REMOVE_RECURSE
  "CMakeFiles/mercury_xml.dir/element.cc.o"
  "CMakeFiles/mercury_xml.dir/element.cc.o.d"
  "CMakeFiles/mercury_xml.dir/parser.cc.o"
  "CMakeFiles/mercury_xml.dir/parser.cc.o.d"
  "CMakeFiles/mercury_xml.dir/writer.cc.o"
  "CMakeFiles/mercury_xml.dir/writer.cc.o.d"
  "libmercury_xml.a"
  "libmercury_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
