file(REMOVE_RECURSE
  "libmercury_xml.a"
)
