# Empty dependencies file for mercury_xml.
# This may be replaced when dependencies are built.
