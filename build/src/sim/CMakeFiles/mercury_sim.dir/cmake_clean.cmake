file(REMOVE_RECURSE
  "CMakeFiles/mercury_sim.dir/simulator.cc.o"
  "CMakeFiles/mercury_sim.dir/simulator.cc.o.d"
  "libmercury_sim.a"
  "libmercury_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
