file(REMOVE_RECURSE
  "CMakeFiles/mercury_station.dir/antenna.cc.o"
  "CMakeFiles/mercury_station.dir/antenna.cc.o.d"
  "CMakeFiles/mercury_station.dir/calibration.cc.o"
  "CMakeFiles/mercury_station.dir/calibration.cc.o.d"
  "CMakeFiles/mercury_station.dir/component.cc.o"
  "CMakeFiles/mercury_station.dir/component.cc.o.d"
  "CMakeFiles/mercury_station.dir/components.cc.o"
  "CMakeFiles/mercury_station.dir/components.cc.o.d"
  "CMakeFiles/mercury_station.dir/downlink.cc.o"
  "CMakeFiles/mercury_station.dir/downlink.cc.o.d"
  "CMakeFiles/mercury_station.dir/experiment.cc.o"
  "CMakeFiles/mercury_station.dir/experiment.cc.o.d"
  "CMakeFiles/mercury_station.dir/fault_injector.cc.o"
  "CMakeFiles/mercury_station.dir/fault_injector.cc.o.d"
  "CMakeFiles/mercury_station.dir/fedr_pbcom_link.cc.o"
  "CMakeFiles/mercury_station.dir/fedr_pbcom_link.cc.o.d"
  "CMakeFiles/mercury_station.dir/health_reporter.cc.o"
  "CMakeFiles/mercury_station.dir/health_reporter.cc.o.d"
  "CMakeFiles/mercury_station.dir/pass_schedule.cc.o"
  "CMakeFiles/mercury_station.dir/pass_schedule.cc.o.d"
  "CMakeFiles/mercury_station.dir/process_manager.cc.o"
  "CMakeFiles/mercury_station.dir/process_manager.cc.o.d"
  "CMakeFiles/mercury_station.dir/radio.cc.o"
  "CMakeFiles/mercury_station.dir/radio.cc.o.d"
  "CMakeFiles/mercury_station.dir/station.cc.o"
  "CMakeFiles/mercury_station.dir/station.cc.o.d"
  "CMakeFiles/mercury_station.dir/sync_coordinator.cc.o"
  "CMakeFiles/mercury_station.dir/sync_coordinator.cc.o.d"
  "libmercury_station.a"
  "libmercury_station.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
