# Empty compiler generated dependencies file for mercury_station.
# This may be replaced when dependencies are built.
