file(REMOVE_RECURSE
  "libmercury_station.a"
)
