
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/station/antenna.cc" "src/station/CMakeFiles/mercury_station.dir/antenna.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/antenna.cc.o.d"
  "/root/repo/src/station/calibration.cc" "src/station/CMakeFiles/mercury_station.dir/calibration.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/calibration.cc.o.d"
  "/root/repo/src/station/component.cc" "src/station/CMakeFiles/mercury_station.dir/component.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/component.cc.o.d"
  "/root/repo/src/station/components.cc" "src/station/CMakeFiles/mercury_station.dir/components.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/components.cc.o.d"
  "/root/repo/src/station/downlink.cc" "src/station/CMakeFiles/mercury_station.dir/downlink.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/downlink.cc.o.d"
  "/root/repo/src/station/experiment.cc" "src/station/CMakeFiles/mercury_station.dir/experiment.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/experiment.cc.o.d"
  "/root/repo/src/station/fault_injector.cc" "src/station/CMakeFiles/mercury_station.dir/fault_injector.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/fault_injector.cc.o.d"
  "/root/repo/src/station/fedr_pbcom_link.cc" "src/station/CMakeFiles/mercury_station.dir/fedr_pbcom_link.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/fedr_pbcom_link.cc.o.d"
  "/root/repo/src/station/health_reporter.cc" "src/station/CMakeFiles/mercury_station.dir/health_reporter.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/health_reporter.cc.o.d"
  "/root/repo/src/station/pass_schedule.cc" "src/station/CMakeFiles/mercury_station.dir/pass_schedule.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/pass_schedule.cc.o.d"
  "/root/repo/src/station/process_manager.cc" "src/station/CMakeFiles/mercury_station.dir/process_manager.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/process_manager.cc.o.d"
  "/root/repo/src/station/radio.cc" "src/station/CMakeFiles/mercury_station.dir/radio.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/radio.cc.o.d"
  "/root/repo/src/station/station.cc" "src/station/CMakeFiles/mercury_station.dir/station.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/station.cc.o.d"
  "/root/repo/src/station/sync_coordinator.cc" "src/station/CMakeFiles/mercury_station.dir/sync_coordinator.cc.o" "gcc" "src/station/CMakeFiles/mercury_station.dir/sync_coordinator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mercury_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mercury_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/mercury_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercury_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/mercury_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mercury_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
