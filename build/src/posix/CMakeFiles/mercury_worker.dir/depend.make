# Empty dependencies file for mercury_worker.
# This may be replaced when dependencies are built.
