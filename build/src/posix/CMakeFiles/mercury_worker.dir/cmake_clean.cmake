file(REMOVE_RECURSE
  "CMakeFiles/mercury_worker.dir/worker_main.cc.o"
  "CMakeFiles/mercury_worker.dir/worker_main.cc.o.d"
  "mercury_worker"
  "mercury_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
