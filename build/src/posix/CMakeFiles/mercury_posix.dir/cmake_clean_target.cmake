file(REMOVE_RECURSE
  "libmercury_posix.a"
)
