# Empty compiler generated dependencies file for mercury_posix.
# This may be replaced when dependencies are built.
