file(REMOVE_RECURSE
  "CMakeFiles/mercury_posix.dir/child_process.cc.o"
  "CMakeFiles/mercury_posix.dir/child_process.cc.o.d"
  "CMakeFiles/mercury_posix.dir/supervisor.cc.o"
  "CMakeFiles/mercury_posix.dir/supervisor.cc.o.d"
  "libmercury_posix.a"
  "libmercury_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
