# Empty compiler generated dependencies file for mercury_util.
# This may be replaced when dependencies are built.
