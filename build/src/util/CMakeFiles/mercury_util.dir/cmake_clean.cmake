file(REMOVE_RECURSE
  "CMakeFiles/mercury_util.dir/log.cc.o"
  "CMakeFiles/mercury_util.dir/log.cc.o.d"
  "CMakeFiles/mercury_util.dir/rng.cc.o"
  "CMakeFiles/mercury_util.dir/rng.cc.o.d"
  "CMakeFiles/mercury_util.dir/stats.cc.o"
  "CMakeFiles/mercury_util.dir/stats.cc.o.d"
  "CMakeFiles/mercury_util.dir/strings.cc.o"
  "CMakeFiles/mercury_util.dir/strings.cc.o.d"
  "CMakeFiles/mercury_util.dir/time.cc.o"
  "CMakeFiles/mercury_util.dir/time.cc.o.d"
  "libmercury_util.a"
  "libmercury_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
