file(REMOVE_RECURSE
  "libmercury_msg.a"
)
