# Empty dependencies file for mercury_msg.
# This may be replaced when dependencies are built.
