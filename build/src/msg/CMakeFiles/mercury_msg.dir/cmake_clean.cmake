file(REMOVE_RECURSE
  "CMakeFiles/mercury_msg.dir/message.cc.o"
  "CMakeFiles/mercury_msg.dir/message.cc.o.d"
  "libmercury_msg.a"
  "libmercury_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
