file(REMOVE_RECURSE
  "CMakeFiles/mercury_core.dir/assumptions.cc.o"
  "CMakeFiles/mercury_core.dir/assumptions.cc.o.d"
  "CMakeFiles/mercury_core.dir/availability.cc.o"
  "CMakeFiles/mercury_core.dir/availability.cc.o.d"
  "CMakeFiles/mercury_core.dir/failure_board.cc.o"
  "CMakeFiles/mercury_core.dir/failure_board.cc.o.d"
  "CMakeFiles/mercury_core.dir/failure_detector.cc.o"
  "CMakeFiles/mercury_core.dir/failure_detector.cc.o.d"
  "CMakeFiles/mercury_core.dir/health.cc.o"
  "CMakeFiles/mercury_core.dir/health.cc.o.d"
  "CMakeFiles/mercury_core.dir/health_monitor.cc.o"
  "CMakeFiles/mercury_core.dir/health_monitor.cc.o.d"
  "CMakeFiles/mercury_core.dir/mercury_trees.cc.o"
  "CMakeFiles/mercury_core.dir/mercury_trees.cc.o.d"
  "CMakeFiles/mercury_core.dir/optimizer.cc.o"
  "CMakeFiles/mercury_core.dir/optimizer.cc.o.d"
  "CMakeFiles/mercury_core.dir/oracle.cc.o"
  "CMakeFiles/mercury_core.dir/oracle.cc.o.d"
  "CMakeFiles/mercury_core.dir/recoverer.cc.o"
  "CMakeFiles/mercury_core.dir/recoverer.cc.o.d"
  "CMakeFiles/mercury_core.dir/rejuvenation_model.cc.o"
  "CMakeFiles/mercury_core.dir/rejuvenation_model.cc.o.d"
  "CMakeFiles/mercury_core.dir/restart_tree.cc.o"
  "CMakeFiles/mercury_core.dir/restart_tree.cc.o.d"
  "CMakeFiles/mercury_core.dir/timeline.cc.o"
  "CMakeFiles/mercury_core.dir/timeline.cc.o.d"
  "CMakeFiles/mercury_core.dir/transformations.cc.o"
  "CMakeFiles/mercury_core.dir/transformations.cc.o.d"
  "CMakeFiles/mercury_core.dir/tree_io.cc.o"
  "CMakeFiles/mercury_core.dir/tree_io.cc.o.d"
  "libmercury_core.a"
  "libmercury_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
