file(REMOVE_RECURSE
  "libmercury_core.a"
)
