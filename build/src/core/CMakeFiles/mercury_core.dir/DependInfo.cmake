
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assumptions.cc" "src/core/CMakeFiles/mercury_core.dir/assumptions.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/assumptions.cc.o.d"
  "/root/repo/src/core/availability.cc" "src/core/CMakeFiles/mercury_core.dir/availability.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/availability.cc.o.d"
  "/root/repo/src/core/failure_board.cc" "src/core/CMakeFiles/mercury_core.dir/failure_board.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/failure_board.cc.o.d"
  "/root/repo/src/core/failure_detector.cc" "src/core/CMakeFiles/mercury_core.dir/failure_detector.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/failure_detector.cc.o.d"
  "/root/repo/src/core/health.cc" "src/core/CMakeFiles/mercury_core.dir/health.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/health.cc.o.d"
  "/root/repo/src/core/health_monitor.cc" "src/core/CMakeFiles/mercury_core.dir/health_monitor.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/health_monitor.cc.o.d"
  "/root/repo/src/core/mercury_trees.cc" "src/core/CMakeFiles/mercury_core.dir/mercury_trees.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/mercury_trees.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/mercury_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/mercury_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/recoverer.cc" "src/core/CMakeFiles/mercury_core.dir/recoverer.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/recoverer.cc.o.d"
  "/root/repo/src/core/rejuvenation_model.cc" "src/core/CMakeFiles/mercury_core.dir/rejuvenation_model.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/rejuvenation_model.cc.o.d"
  "/root/repo/src/core/restart_tree.cc" "src/core/CMakeFiles/mercury_core.dir/restart_tree.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/restart_tree.cc.o.d"
  "/root/repo/src/core/timeline.cc" "src/core/CMakeFiles/mercury_core.dir/timeline.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/timeline.cc.o.d"
  "/root/repo/src/core/transformations.cc" "src/core/CMakeFiles/mercury_core.dir/transformations.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/transformations.cc.o.d"
  "/root/repo/src/core/tree_io.cc" "src/core/CMakeFiles/mercury_core.dir/tree_io.cc.o" "gcc" "src/core/CMakeFiles/mercury_core.dir/tree_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bus/CMakeFiles/mercury_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercury_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/mercury_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mercury_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
