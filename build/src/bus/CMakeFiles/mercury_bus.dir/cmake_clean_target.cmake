file(REMOVE_RECURSE
  "libmercury_bus.a"
)
