# Empty compiler generated dependencies file for mercury_bus.
# This may be replaced when dependencies are built.
