file(REMOVE_RECURSE
  "CMakeFiles/mercury_bus.dir/dedicated_link.cc.o"
  "CMakeFiles/mercury_bus.dir/dedicated_link.cc.o.d"
  "CMakeFiles/mercury_bus.dir/message_bus.cc.o"
  "CMakeFiles/mercury_bus.dir/message_bus.cc.o.d"
  "libmercury_bus.a"
  "libmercury_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
