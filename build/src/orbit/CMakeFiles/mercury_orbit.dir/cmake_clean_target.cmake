file(REMOVE_RECURSE
  "libmercury_orbit.a"
)
