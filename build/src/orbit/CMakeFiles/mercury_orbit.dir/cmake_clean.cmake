file(REMOVE_RECURSE
  "CMakeFiles/mercury_orbit.dir/doppler.cc.o"
  "CMakeFiles/mercury_orbit.dir/doppler.cc.o.d"
  "CMakeFiles/mercury_orbit.dir/frames.cc.o"
  "CMakeFiles/mercury_orbit.dir/frames.cc.o.d"
  "CMakeFiles/mercury_orbit.dir/ground_station.cc.o"
  "CMakeFiles/mercury_orbit.dir/ground_station.cc.o.d"
  "CMakeFiles/mercury_orbit.dir/pass_predictor.cc.o"
  "CMakeFiles/mercury_orbit.dir/pass_predictor.cc.o.d"
  "CMakeFiles/mercury_orbit.dir/propagator.cc.o"
  "CMakeFiles/mercury_orbit.dir/propagator.cc.o.d"
  "CMakeFiles/mercury_orbit.dir/tle.cc.o"
  "CMakeFiles/mercury_orbit.dir/tle.cc.o.d"
  "libmercury_orbit.a"
  "libmercury_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
