# Empty compiler generated dependencies file for mercury_orbit.
# This may be replaced when dependencies are built.
