
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/doppler.cc" "src/orbit/CMakeFiles/mercury_orbit.dir/doppler.cc.o" "gcc" "src/orbit/CMakeFiles/mercury_orbit.dir/doppler.cc.o.d"
  "/root/repo/src/orbit/frames.cc" "src/orbit/CMakeFiles/mercury_orbit.dir/frames.cc.o" "gcc" "src/orbit/CMakeFiles/mercury_orbit.dir/frames.cc.o.d"
  "/root/repo/src/orbit/ground_station.cc" "src/orbit/CMakeFiles/mercury_orbit.dir/ground_station.cc.o" "gcc" "src/orbit/CMakeFiles/mercury_orbit.dir/ground_station.cc.o.d"
  "/root/repo/src/orbit/pass_predictor.cc" "src/orbit/CMakeFiles/mercury_orbit.dir/pass_predictor.cc.o" "gcc" "src/orbit/CMakeFiles/mercury_orbit.dir/pass_predictor.cc.o.d"
  "/root/repo/src/orbit/propagator.cc" "src/orbit/CMakeFiles/mercury_orbit.dir/propagator.cc.o" "gcc" "src/orbit/CMakeFiles/mercury_orbit.dir/propagator.cc.o.d"
  "/root/repo/src/orbit/tle.cc" "src/orbit/CMakeFiles/mercury_orbit.dir/tle.cc.o" "gcc" "src/orbit/CMakeFiles/mercury_orbit.dir/tle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
