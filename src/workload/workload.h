// Deterministic client workload (ISSUE 9).
//
// The paper measures availability as station MTTR; what a ground-station
// user experiences is *goodput*: commands and telemetry polls served, lost,
// and retried through failures and recoveries. This driver attaches a fleet
// of client sessions ("cli.<i>") to mbus and issues open-loop requests —
// arrivals follow a Poisson process clocked from the trial's SplitMix64 seed
// stream, so load never adapts to server slowness and the goodput dip is
// visible rather than absorbed by backpressure.
//
// Each request is an application-level ping at a fixed target route (command
// sessions poll the radio chain, telemetry sessions the data chain) with a
// per-request retry/timeout state machine:
//
//   * a pong resolves the request as served;
//   * a typed "restarting" nack (bus::BusConfig::typed_restart_errors) is a
//     fast failure: the session touches the route (traffic-driven recovery)
//     and retries after retry_backoff;
//   * a timeout (crashed-but-attached components are fail-silent) touches
//     the route and retries likewise;
//   * a parked route answers immediately with a clean local rejection;
//   * max_attempts exhausted resolves the request as lost.
//
// Every issued request resolves exactly once — benches and tests assert
// issued == served + lost. Resolutions append to a core::TrafficAccount
// (latency percentiles, goodput dip, per-route reopen latency) and to a
// deterministic text outcome log used by the byte-identity tests: the same
// seed must produce the same log at any MERCURY_JOBS.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "core/availability.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace mercury::workload {

struct WorkloadConfig {
  /// Session counts; session i draws its Rng from
  /// exp::SeedStream(seed).trial_seed(i), so adding sessions never perturbs
  /// existing ones.
  int command_sessions = 8;
  int telemetry_sessions = 4;
  /// Open-loop Poisson arrivals per session.
  util::Duration mean_interarrival = util::Duration::millis(200.0);
  /// Per-attempt response deadline (crashed components are fail-silent).
  util::Duration request_timeout = util::Duration::millis(400.0);
  /// Delay before a retry (after a timeout or a "restarting" nack).
  util::Duration retry_backoff = util::Duration::millis(100.0);
  /// Send attempts per request before it resolves as lost.
  int max_attempts = 4;
  std::uint64_t seed = 1;
  /// Emit one "traffic.request" span per request (category "traffic").
  /// Heavy: off by default, enabled for the checker-gated trace trials.
  bool trace_requests = false;
  /// Dispatch-mode annotation carried on request spans; the phantom-goodput
  /// trace invariant exempts mode "ondemand" (requests legally race lazy
  /// restarts there).
  std::string mode_label = "serial";
};

/// Aggregate counters, derived from the account (convenience for tests).
struct WorkloadStats {
  std::uint64_t issued = 0;
  std::uint64_t served = 0;
  std::uint64_t lost = 0;
  std::uint64_t retried = 0;
  std::uint64_t restarting_nacks = 0;
  std::uint64_t parked_rejections = 0;
  std::uint64_t timeouts = 0;
};

class WorkloadDriver {
 public:
  /// Sessions are split round-robin over the target lists: command session i
  /// polls command_targets[i % size], telemetry likewise.
  WorkloadDriver(sim::Simulator& sim, bus::MessageBus& bus,
                 std::vector<std::string> command_targets,
                 std::vector<std::string> telemetry_targets,
                 WorkloadConfig config);
  ~WorkloadDriver();

  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  /// Attach the sessions and begin issuing.
  void start();
  /// Stop issuing new requests; in-flight ones keep resolving (bounded by
  /// max_attempts * (request_timeout + retry_backoff)).
  void quiesce();
  /// Quiesce instant in seconds (0 while still running) — the `end_t` for
  /// core::TrafficAccount::summarize, so the draining tail after the
  /// measurement window never reads as a goodput dip.
  double quiesce_time() const { return quiesce_t_; }

  /// Traffic-driven recovery hook: fired with the route name when a request
  /// times out or is nacked "restarting" (i.e. client evidence the route is
  /// down). The rig forwards it to Recoverer::touch.
  using TouchCallback = std::function<void(const std::string& target)>;
  void set_touch_callback(TouchCallback callback);
  /// Parked-route probe: a request to a parked route resolves immediately as
  /// a clean local rejection instead of burning its retry budget.
  using ParkedQuery = std::function<bool(const std::string& target)>;
  void set_parked_query(ParkedQuery query);

  const core::TrafficAccount& account() const { return account_; }
  WorkloadStats stats() const;
  /// One line per resolved request, in resolution order. Deterministic in
  /// the seed: the byte-identity contract for MERCURY_JOBS sweeps.
  const std::vector<std::string>& outcome_log() const { return outcome_log_; }
  std::string outcome_text() const;

 private:
  struct Session {
    std::string name;    // bus endpoint, "cli.<i>"
    std::string target;  // fixed route this session polls
    util::Rng rng;
    sim::EventId next_arrival;
  };
  /// One in-flight request (keyed by the seq of its *current* attempt; a
  /// retry re-keys it, so a straggler pong from a superseded attempt cannot
  /// resolve the request twice).
  struct Request {
    std::size_t session = 0;
    util::TimePoint first_sent;
    int attempts = 0;
    int restarting_nacks = 0;
    bool timed_out_once = false;
    std::uint64_t trace_span = 0;
    sim::EventId timeout_event;
  };

  void schedule_arrival(std::size_t session_index);
  void issue(std::size_t session_index);
  /// Send one attempt of `request` (assigns a fresh seq and arms the
  /// timeout), or resolve it immediately when the route is parked.
  void send_attempt(Request request);
  void on_receive(std::size_t session_index, const msg::Message& message);
  void on_timeout(std::uint64_t seq);
  /// Retry after backoff, or resolve as lost when the budget is gone.
  void retry_or_lose(Request request, const std::string& lost_detail);
  void resolve(Request request, bool served, const std::string& detail);

  sim::Simulator& sim_;
  bus::MessageBus& bus_;
  std::vector<std::string> command_targets_;
  std::vector<std::string> telemetry_targets_;
  WorkloadConfig config_;
  TouchCallback touch_;
  ParkedQuery parked_;
  std::vector<Session> sessions_;
  std::map<std::uint64_t, Request> in_flight_;  // by current-attempt seq
  core::TrafficAccount account_;
  std::vector<std::string> outcome_log_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t restarting_nacks_ = 0;
  bool started_ = false;
  bool quiesced_ = false;
  double quiesce_t_ = 0.0;
};

}  // namespace mercury::workload
