#include "workload/workload.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "exp/seed_stream.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace mercury::workload {

using util::Duration;

WorkloadDriver::WorkloadDriver(sim::Simulator& sim, bus::MessageBus& bus,
                               std::vector<std::string> command_targets,
                               std::vector<std::string> telemetry_targets,
                               WorkloadConfig config)
    : sim_(sim),
      bus_(bus),
      command_targets_(std::move(command_targets)),
      telemetry_targets_(std::move(telemetry_targets)),
      config_(std::move(config)) {
  assert(!command_targets_.empty() || config_.command_sessions == 0);
  assert(!telemetry_targets_.empty() || config_.telemetry_sessions == 0);
  const exp::SeedStream seeds(config_.seed);
  const int total = config_.command_sessions + config_.telemetry_sessions;
  sessions_.reserve(static_cast<std::size_t>(std::max(0, total)));
  for (int i = 0; i < total; ++i) {
    const bool command = i < config_.command_sessions;
    const auto& targets = command ? command_targets_ : telemetry_targets_;
    const int lane = command ? i : i - config_.command_sessions;
    sessions_.push_back(Session{
        "cli." + std::to_string(i),
        targets[static_cast<std::size_t>(lane) % targets.size()],
        util::Rng(seeds.trial_seed(static_cast<std::uint64_t>(i))),
        sim::EventId{}});
  }
}

WorkloadDriver::~WorkloadDriver() = default;

void WorkloadDriver::set_touch_callback(TouchCallback callback) {
  touch_ = std::move(callback);
}

void WorkloadDriver::set_parked_query(ParkedQuery query) {
  parked_ = std::move(query);
}

void WorkloadDriver::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    bus_.attach(sessions_[i].name, [this, i](const msg::Message& message) {
      on_receive(i, message);
    });
    schedule_arrival(i);
  }
}

void WorkloadDriver::quiesce() {
  if (!started_ || quiesced_) return;
  quiesced_ = true;
  quiesce_t_ = sim_.now().to_seconds();
  for (Session& session : sessions_) {
    if (session.next_arrival.valid()) {
      sim_.cancel(session.next_arrival);
      session.next_arrival = sim::EventId{};
    }
  }
}

void WorkloadDriver::schedule_arrival(std::size_t session_index) {
  if (quiesced_) return;
  Session& session = sessions_[session_index];
  const Duration gap = session.rng.exponential(config_.mean_interarrival);
  session.next_arrival =
      sim_.schedule_after(gap, session.name + ".arrival", [this, session_index] {
        sessions_[session_index].next_arrival = sim::EventId{};
        issue(session_index);
        schedule_arrival(session_index);
      });
}

void WorkloadDriver::issue(std::size_t session_index) {
  const Session& session = sessions_[session_index];
  ++issued_;
  Request request;
  request.session = session_index;
  request.first_sent = sim_.now();
  if (config_.trace_requests) {
    request.trace_span =
        obs::begin_span(sim_.now(), "traffic", "traffic.request", session.name,
                        {{"target", session.target},
                         {"session", session.name},
                         {"mode", config_.mode_label}});
  }
  send_attempt(std::move(request));
}

void WorkloadDriver::send_attempt(Request request) {
  const Session& session = sessions_[request.session];
  // Parked route: the operator-facing hard-failure state. Reject locally and
  // immediately — burning the retry budget against a route that will not
  // come back only inflates latency tails.
  if (parked_ && parked_(session.target)) {
    resolve(std::move(request), /*served=*/false, "rejected-parked");
    return;
  }
  const std::uint64_t seq = next_seq_++;
  ++request.attempts;
  request.timeout_event = sim_.schedule_after(
      config_.request_timeout, session.name + ".timeout",
      [this, seq] { on_timeout(seq); });
  bus_.send(msg::make_ping(session.name, session.target, seq));
  in_flight_.emplace(seq, std::move(request));
}

void WorkloadDriver::on_receive(std::size_t session_index,
                                const msg::Message& message) {
  if (message.kind != msg::Kind::kPong && message.kind != msg::Kind::kNack) {
    return;  // broadcasts and strays
  }
  const auto it = in_flight_.find(message.seq);
  if (it == in_flight_.end() || it->second.session != session_index) return;
  auto node = in_flight_.extract(it);
  Request request = std::move(node.mapped());
  if (request.timeout_event.valid()) {
    sim_.cancel(request.timeout_event);
    request.timeout_event = sim::EventId{};
  }
  if (message.kind == msg::Kind::kPong) {
    resolve(std::move(request), /*served=*/true, "");
    return;
  }
  // Typed mid-restart rejection from the bus: fast, actionable failure — the
  // route is down *because it is restarting*. Touch it (traffic-driven
  // promotion) and retry without waiting out the timeout.
  ++restarting_nacks_;
  ++request.restarting_nacks;
  if (touch_) touch_(sessions_[session_index].target);
  retry_or_lose(std::move(request), "rejected-restarting");
}

void WorkloadDriver::on_timeout(std::uint64_t seq) {
  const auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;
  auto node = in_flight_.extract(it);
  Request request = std::move(node.mapped());
  request.timeout_event = sim::EventId{};
  request.timed_out_once = true;
  ++timeouts_;
  obs::incr("traffic.timeouts");
  // Crashed-but-attached components are fail-silent: the timeout is the
  // client's only evidence the route is down. Touch it anyway — touch is a
  // no-op unless a restart is actually queued for the route.
  if (touch_) touch_(sessions_[request.session].target);
  retry_or_lose(std::move(request), "timeout");
}

void WorkloadDriver::retry_or_lose(Request request,
                                   const std::string& lost_detail) {
  if (request.attempts >= config_.max_attempts) {
    resolve(std::move(request), /*served=*/false, lost_detail);
    return;
  }
  const std::string label = sessions_[request.session].name + ".retry";
  sim_.schedule_after(config_.retry_backoff, label,
                      [this, request = std::move(request)]() mutable {
                        send_attempt(std::move(request));
                      });
}

void WorkloadDriver::resolve(Request request, bool served,
                             const std::string& detail) {
  const Session& session = sessions_[request.session];
  const double done_t = sim_.now().to_seconds();

  core::RequestRecord record;
  record.sent_t = request.first_sent.to_seconds();
  record.done_t = done_t;
  record.attempts = std::max(1, request.attempts);
  record.served = served;
  record.target = session.target;
  record.restarting_nacks = request.restarting_nacks;
  record.detail = served ? "" : detail;
  account_.record(record);

  obs::incr(served ? "traffic.served" : "traffic.lost");
  if (record.attempts > 1) obs::incr("traffic.retried");
  if (request.trace_span != 0) {
    obs::end_span(sim_.now(), request.trace_span,
                  {{"outcome", served ? "served" : "lost"},
                   {"attempts", std::to_string(record.attempts)},
                   {"detail", record.detail}});
  }

  std::string line = util::format_fixed(done_t, 6) + " " + session.name + " " +
                     session.target + (served ? " served" : " lost") +
                     " attempts=" + std::to_string(record.attempts) +
                     " nacks=" + std::to_string(record.restarting_nacks);
  if (!record.detail.empty()) line += " detail=" + record.detail;
  outcome_log_.push_back(std::move(line));
}

WorkloadStats WorkloadDriver::stats() const {
  WorkloadStats stats;
  stats.issued = issued_;
  stats.restarting_nacks = restarting_nacks_;
  stats.timeouts = timeouts_;
  for (const core::RequestRecord& record : account_.records()) {
    if (record.served) {
      ++stats.served;
    } else {
      ++stats.lost;
    }
    if (record.attempts > 1) ++stats.retried;
    if (record.detail == "rejected-parked") ++stats.parked_rejections;
  }
  return stats;
}

std::string WorkloadDriver::outcome_text() const {
  std::string text;
  for (const std::string& line : outcome_log_) {
    text += line;
    text += '\n';
  }
  return text;
}

}  // namespace mercury::workload
