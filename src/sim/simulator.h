// Deterministic discrete-event simulator.
//
// The paper's experiments run on a physical ground station; ours run on this
// kernel. It is single-threaded and fully deterministic: events at equal
// timestamps execute in scheduling order, and all randomness flows from one
// seeded root Rng (forked per subsystem). Re-running with the same seed
// reproduces every event, which the tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace mercury::sim {

using util::Duration;
using util::Rng;
using util::TimePoint;

/// Opaque handle for a scheduled event; valid until the event fires or is
/// cancelled.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `fn` at absolute time `t` (>= now; earlier times are clamped
  /// to now). The label appears in debug traces.
  EventId schedule_at(TimePoint t, std::string label, std::function<void()> fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(Duration delay, std::string label, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled.
  bool cancel(EventId id);

  bool has_pending() const;
  TimePoint next_event_time() const;

  /// Execute the next event. Returns false if the queue is empty.
  bool step();

  /// Run events until virtual time would exceed `t`; leaves now() == t.
  void run_until(TimePoint t);

  /// Run for a span of virtual time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Run until the queue drains or `max_events` fire (runaway guard).
  void run_all(std::uint64_t max_events = 100'000'000);

  std::uint64_t events_executed() const { return events_executed_; }
  std::uint64_t events_scheduled() const { return events_scheduled_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::string label;
    std::function<void()> fn;
    bool cancelled = false;
  };

  struct Later {
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  /// Pops cancelled events off the top; returns the next live event or null.
  std::shared_ptr<Event> peek_live() const;

  TimePoint now_ = TimePoint::origin();
  Rng rng_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_scheduled_ = 0;
  // mutable: peek_live prunes cancelled events from const accessors.
  mutable std::priority_queue<std::shared_ptr<Event>,
                              std::vector<std::shared_ptr<Event>>, Later>
      queue_;
  // Pending (not yet fired, not cancelled) events by seq, for O(1) cancel.
  std::unordered_map<std::uint64_t, std::weak_ptr<Event>> pending_index_;
};

/// Self-rescheduling periodic task (e.g. the failure detector's ping loop).
/// Stops rescheduling once stopped or destroyed.
class PeriodicTask {
 public:
  /// `fn` runs every `period`, first at now+period (or now+phase if given).
  PeriodicTask(Simulator& sim, std::string label, Duration period,
               std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void start_with_phase(Duration phase);
  void stop();
  bool running() const { return running_; }
  Duration period() const { return period_; }
  void set_period(Duration period);

 private:
  void fire();

  Simulator& sim_;
  std::string label_;
  Duration period_;
  std::function<void()> fn_;
  EventId pending_;
  bool running_ = false;
  // Shared liveness flag: outstanding events check it so a destroyed task
  // never has its callback invoked.
  std::shared_ptr<bool> alive_;
};

}  // namespace mercury::sim
