// Deterministic discrete-event simulator.
//
// The paper's experiments run on a physical ground station; ours run on this
// kernel. It is single-threaded and fully deterministic: events at equal
// timestamps execute in scheduling order, and all randomness flows from one
// seeded root Rng (forked per subsystem). Re-running with the same seed
// reproduces every event, which the tests rely on.
//
// Storage (hot-path pass, ISSUE 10): events live in a slab of reusable
// slots — no per-event heap allocation once the slab has warmed up — and the
// ready queue is a 4-ary min-heap of (at, seq, slot) keys ordered exactly
// like the old priority_queue, so pop order (and therefore every trace) is
// unchanged. EventId is a generation-checked handle: cancel is O(1) — it
// frees the slot and lets the stale heap entry fall out at pop time — and a
// handle from a previous occupancy of a reused slot can never cancel the
// current one, because the globally unique seq doubles as the generation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace mercury::sim {

using util::Duration;
using util::Rng;
using util::TimePoint;

/// Opaque handle for a scheduled event; valid until the event fires or is
/// cancelled. Internally a (slot, generation) pair into the simulator's
/// event slab; a stale handle (slot since freed or reused) is recognized by
/// its generation and cancel() on it is a safe no-op.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  EventId(std::uint32_t slot, std::uint64_t seq) : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;  // the scheduling seq, doubling as the generation
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `fn` at absolute time `t` (>= now; earlier times are clamped
  /// to now). The label appears in debug traces.
  EventId schedule_at(TimePoint t, std::string label, std::function<void()> fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(Duration delay, std::string label, std::function<void()> fn);

  /// Cancel a pending event in O(1). Returns false if it already fired or
  /// was cancelled (including handles from a previous use of a reused slot).
  bool cancel(EventId id);

  bool has_pending() const;
  TimePoint next_event_time() const;

  /// Execute the next event. Returns false if the queue is empty.
  bool step();

  /// Run events until virtual time would exceed `t`; leaves now() == t.
  void run_until(TimePoint t);

  /// Run for a span of virtual time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Run until the queue drains or `max_events` fire (runaway guard).
  void run_all(std::uint64_t max_events = 100'000'000);

  std::uint64_t events_executed() const { return events_executed_; }
  std::uint64_t events_scheduled() const { return events_scheduled_; }

 private:
  /// One slab slot. seq == 0 means the slot is free; otherwise it holds the
  /// pending event scheduled with that seq. Freed slots keep their string
  /// capacity for reuse.
  struct Event {
    TimePoint at;
    std::uint64_t seq = 0;
    std::string label;
    std::function<void()> fn;
  };

  /// Heap key: comparisons never touch the slab. (at, seq) ascending — the
  /// exact ordering the old priority_queue used, so traces stay identical.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  // 4-ary heap primitives over heap_ (children of i at 4i+1..4i+4).
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  void pop_top() const;
  /// Drops stale heap entries (cancelled events) off the top; afterwards the
  /// top entry, if any, is live.
  void prune_stale() const;

  TimePoint now_ = TimePoint::origin();
  Rng rng_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_scheduled_ = 0;
  std::vector<Event> slots_;
  std::vector<std::uint32_t> free_slots_;
  // mutable: const accessors (has_pending, next_event_time) prune cancelled
  // entries from the heap top, exactly like the old peek_live().
  mutable std::vector<HeapEntry> heap_;
};

/// Self-rescheduling periodic task (e.g. the failure detector's ping loop).
/// Stops rescheduling once stopped or destroyed.
class PeriodicTask {
 public:
  /// `fn` runs every `period`, first at now+period (or now+phase if given).
  PeriodicTask(Simulator& sim, std::string label, Duration period,
               std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void start_with_phase(Duration phase);
  void stop();
  bool running() const { return running_; }
  Duration period() const { return period_; }
  void set_period(Duration period);

 private:
  void fire();

  Simulator& sim_;
  std::string label_;
  Duration period_;
  std::function<void()> fn_;
  EventId pending_;
  bool running_ = false;
  // Shared liveness flag: outstanding events check it so a destroyed task
  // never has its callback invoked.
  std::shared_ptr<bool> alive_;
};

}  // namespace mercury::sim
