#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "util/log.h"

namespace mercury::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventId Simulator::schedule_at(TimePoint t, std::string label,
                               std::function<void()> fn) {
  assert(fn);
  auto event = std::make_shared<Event>();
  event->at = std::max(t, now_);
  event->seq = next_seq_++;
  event->label = std::move(label);
  event->fn = std::move(fn);
  queue_.push(event);
  pending_index_.emplace(event->seq, event);
  ++events_scheduled_;
  return EventId{event->seq};
}

EventId Simulator::schedule_after(Duration delay, std::string label,
                                  std::function<void()> fn) {
  assert(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(label), std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto it = pending_index_.find(id.seq_);
  if (it == pending_index_.end()) return false;  // already fired or cancelled
  if (auto event = it->second.lock()) event->cancelled = true;
  pending_index_.erase(it);
  return true;
}

std::shared_ptr<Simulator::Event> Simulator::peek_live() const {
  while (!queue_.empty()) {
    auto top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      continue;
    }
    return top;
  }
  return nullptr;
}

bool Simulator::has_pending() const { return peek_live() != nullptr; }

TimePoint Simulator::next_event_time() const {
  const auto event = peek_live();
  return event ? event->at : TimePoint::infinity();
}

bool Simulator::step() {
  auto event = peek_live();
  if (!event) return false;
  queue_.pop();
  pending_index_.erase(event->seq);
  assert(event->at >= now_);
  now_ = event->at;
  ++events_executed_;
  // Per-event kernel tracing is opt-in (TraceRecorder::set_sim_events): a
  // long run fires millions of events, which would bury the recovery signal.
  if (obs::TraceRecorder* rec = obs::recorder();
      rec != nullptr && rec->sim_events()) {
    rec->instant(now_.to_seconds(), "sim", event->label, "sim");
  }
  if (util::Logger::instance().enabled(util::LogLevel::kDebug)) {
    util::LogLine(util::LogLevel::kDebug, now_, "sim") << "fire " << event->label;
  }
  event->fn();
  return true;
}

void Simulator::run_until(TimePoint t) {
  while (true) {
    const auto event = peek_live();
    if (!event || event->at > t) break;
    step();
  }
  now_ = std::max(now_, t);
}

void Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n >= max_events) {
      obs::instant(now_, "sim", "sim.runaway-guard", "sim",
                   {{"events", std::to_string(n)}});
      util::LogLine(util::LogLevel::kWarn, now_, "sim")
          << "run_all stopped after " << n << " events (runaway guard)";
      return;
    }
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, std::string label, Duration period,
                           std::function<void()> fn)
    : sim_(sim),
      label_(std::move(label)),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true)) {
  assert(period_ > Duration::zero());
  assert(fn_);
}

PeriodicTask::~PeriodicTask() {
  *alive_ = false;
  stop();
}

void PeriodicTask::start() { start_with_phase(period_); }

void PeriodicTask::start_with_phase(Duration phase) {
  stop();
  running_ = true;
  std::shared_ptr<bool> alive = alive_;
  pending_ = sim_.schedule_after(phase, label_, [this, alive] {
    if (*alive) fire();
  });
}

void PeriodicTask::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventId{};
  }
  running_ = false;
}

void PeriodicTask::set_period(Duration period) {
  assert(period > Duration::zero());
  period_ = period;
  if (running_) start();  // re-arm with the new period
}

void PeriodicTask::fire() {
  if (!running_) return;
  std::shared_ptr<bool> alive = alive_;
  pending_ = sim_.schedule_after(period_, label_, [this, alive] {
    if (*alive) fire();
  });
  fn_();
}

}  // namespace mercury::sim
