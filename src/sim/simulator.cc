#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.h"
#include "util/log.h"

namespace mercury::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  const auto index = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return index;
}

void Simulator::release_slot(std::uint32_t index) {
  Event& slot = slots_[index];
  slot.seq = 0;
  slot.fn = nullptr;      // release the closure now, not at slot reuse
  slot.label.clear();     // keeps capacity for the next occupant
  free_slots_.push_back(index);
}

void Simulator::sift_up(std::size_t i) const {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (before(heap_[child], heap_[best])) best = child;
    }
    if (!before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void Simulator::pop_top() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulator::prune_stale() const {
  // A heap entry is live iff its slot still holds the same seq: cancel()
  // frees the slot (seq -> 0) and a reused slot carries a newer seq, so one
  // integer compare distinguishes live, cancelled, and reused.
  while (!heap_.empty() && slots_[heap_.front().slot].seq != heap_.front().seq) {
    pop_top();
  }
}

EventId Simulator::schedule_at(TimePoint t, std::string label,
                               std::function<void()> fn) {
  assert(fn);
  const std::uint32_t index = acquire_slot();
  Event& slot = slots_[index];
  slot.at = std::max(t, now_);
  slot.seq = next_seq_++;
  slot.label = std::move(label);
  slot.fn = std::move(fn);
  heap_.push_back(HeapEntry{slot.at, slot.seq, index});
  sift_up(heap_.size() - 1);
  ++events_scheduled_;
  return EventId{index, slot.seq};
}

EventId Simulator::schedule_after(Duration delay, std::string label,
                                  std::function<void()> fn) {
  assert(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(label), std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  if (id.slot_ >= slots_.size()) return false;
  if (slots_[id.slot_].seq != id.seq_) return false;  // fired, cancelled, or reused
  release_slot(id.slot_);
  return true;
}

bool Simulator::has_pending() const {
  prune_stale();
  return !heap_.empty();
}

TimePoint Simulator::next_event_time() const {
  prune_stale();
  return heap_.empty() ? TimePoint::infinity() : heap_.front().at;
}

bool Simulator::step() {
  prune_stale();
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  pop_top();
  Event& slot = slots_[top.slot];
  // Move the payload out and free the slot before firing: the event is no
  // longer cancellable once it runs (its own callback sees cancel == false,
  // as before), and the slot is immediately reusable by whatever it
  // schedules.
  std::string label = std::move(slot.label);
  std::function<void()> fn = std::move(slot.fn);
  release_slot(top.slot);
  assert(top.at >= now_);
  now_ = top.at;
  ++events_executed_;
  // Per-event kernel tracing is opt-in (TraceRecorder::set_sim_events): a
  // long run fires millions of events, which would bury the recovery signal.
  if (obs::TraceRecorder* rec = obs::recorder();
      rec != nullptr && rec->sim_events()) {
    rec->instant(now_.to_seconds(), "sim", label, "sim");
  }
  if (util::Logger::instance().enabled(util::LogLevel::kDebug)) {
    util::LogLine(util::LogLevel::kDebug, now_, "sim") << "fire " << label;
  }
  fn();
  return true;
}

void Simulator::run_until(TimePoint t) {
  while (true) {
    prune_stale();
    if (heap_.empty() || heap_.front().at > t) break;
    step();
  }
  now_ = std::max(now_, t);
}

void Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n >= max_events) {
      obs::instant(now_, "sim", "sim.runaway-guard", "sim",
                   {{"events", std::to_string(n)}});
      util::LogLine(util::LogLevel::kWarn, now_, "sim")
          << "run_all stopped after " << n << " events (runaway guard)";
      return;
    }
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, std::string label, Duration period,
                           std::function<void()> fn)
    : sim_(sim),
      label_(std::move(label)),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true)) {
  assert(period_ > Duration::zero());
  assert(fn_);
}

PeriodicTask::~PeriodicTask() {
  *alive_ = false;
  stop();
}

void PeriodicTask::start() { start_with_phase(period_); }

void PeriodicTask::start_with_phase(Duration phase) {
  stop();
  running_ = true;
  std::shared_ptr<bool> alive = alive_;
  pending_ = sim_.schedule_after(phase, label_, [this, alive] {
    if (*alive) fire();
  });
}

void PeriodicTask::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventId{};
  }
  running_ = false;
}

void PeriodicTask::set_period(Duration period) {
  assert(period > Duration::zero());
  period_ = period;
  if (running_) start();  // re-arm with the new period
}

void PeriodicTask::fire() {
  if (!running_) return;
  std::shared_ptr<bool> alive = alive_;
  pending_ = sim_.schedule_after(period_, label_, [this, alive] {
    if (*alive) fire();
  });
  fn_();
}

}  // namespace mercury::sim
