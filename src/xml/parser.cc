#include "xml/parser.h"

#include <cctype>
#include <string>

#include "util/strings.h"

namespace mercury::xml {
namespace {

using util::Error;
using util::Result;

// Character-class lookup tables (the codec is on the per-message hot path;
// <cctype> calls go through the locale). Classes match the C locale exactly:
// isalpha == [A-Za-z], isspace == [ \t\n\v\f\r].
struct CharTables {
  bool name_start[256] = {};
  bool name_char[256] = {};
  bool space[256] = {};
  constexpr CharTables() {
    for (int c = 0; c < 256; ++c) {
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
      const bool digit = c >= '0' && c <= '9';
      name_start[c] = alpha || c == '_' || c == ':';
      name_char[c] =
          alpha || digit || c == '_' || c == ':' || c == '-' || c == '.';
      space[c] = c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
                 c == '\r';
    }
  }
};
constexpr CharTables kTables;

bool is_name_start(char c) {
  return kTables.name_start[static_cast<unsigned char>(c)];
}

bool is_name_char(char c) {
  return kTables.name_char[static_cast<unsigned char>(c)];
}

bool is_space(char c) { return kTables.space[static_cast<unsigned char>(c)]; }

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Element> parse_document() {
    skip_prolog();
    skip_misc();
    if (at_end()) return error("expected a root element");
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_misc();
    if (!at_end()) return error("trailing content after root element");
    return root;
  }

 private:
  bool at_end() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }
  char peek_at(std::size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }
  bool match(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void advance_by(std::size_t n) {
    for (std::size_t i = 0; i < n && !at_end(); ++i) advance();
  }

  void skip_whitespace() {
    while (!at_end() && is_space(peek())) advance();
  }

  /// Length of the run starting at pos_ containing no newline and no
  /// character from `stop`. Runs can be consumed in bulk: pos_/col_ advance
  /// by the run length with no per-character line bookkeeping.
  std::size_t plain_run(std::string_view stop) const {
    std::size_t end = pos_;
    while (end < input_.size()) {
      const char c = input_[end];
      if (c == '\n' || stop.find(c) != std::string_view::npos) break;
      ++end;
    }
    return end - pos_;
  }

  void advance_plain(std::size_t n) {  // precondition: no '\n' in the run
    pos_ += n;
    col_ += static_cast<int>(n);
  }

  Error error(std::string_view message) const {
    return Error("xml parse error at " + std::to_string(line_) + ":" +
                 std::to_string(col_) + ": " + std::string{message});
  }

  void skip_prolog() {
    skip_whitespace();
    if (match("<?xml")) {
      while (!at_end() && !match("?>")) advance();
      advance_by(2);
    }
  }

  // Skips whitespace and comments between markup.
  void skip_misc() {
    while (true) {
      skip_whitespace();
      if (match("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    advance_by(4);  // "<!--"
    while (!at_end() && !match("-->")) advance();
    advance_by(3);
  }

  Result<std::string> parse_name() {
    if (at_end() || !is_name_start(peek())) return error("expected a name");
    std::size_t end = pos_;
    while (end < input_.size() && is_name_char(input_[end])) ++end;
    std::string name{input_.substr(pos_, end - pos_)};
    advance_plain(end - pos_);  // name chars never include '\n'
    return name;
  }

  // Decodes an entity starting at '&'; appends the decoded text to out.
  util::Status decode_entity(std::string& out) {
    advance();  // '&'
    std::string entity;
    while (!at_end() && peek() != ';') {
      entity += peek();
      advance();
      if (entity.size() > 10) return error("unterminated entity");
    }
    if (at_end()) return error("unterminated entity");
    advance();  // ';'
    if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "amp") out += '&';
    else if (entity == "apos") out += '\'';
    else if (entity == "quot") out += '"';
    else if (!entity.empty() && entity[0] == '#') {
      const bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      const std::string digits = entity.substr(hex ? 2 : 1);
      if (digits.empty()) return error("empty character reference");
      unsigned long code = 0;
      for (char c : digits) {
        int digit;
        if (std::isdigit(static_cast<unsigned char>(c))) digit = c - '0';
        else if (hex && std::isxdigit(static_cast<unsigned char>(c)))
          digit = 10 + (std::tolower(static_cast<unsigned char>(c)) - 'a');
        else return error("bad character reference '" + entity + "'");
        code = code * (hex ? 16 : 10) + static_cast<unsigned long>(digit);
        if (code > 0x10FFFF) return error("character reference out of range");
      }
      append_utf8(out, static_cast<char32_t>(code));
    } else {
      return error("unknown entity '&" + entity + ";'");
    }
    return util::Status::ok_status();
  }

  static void append_utf8(std::string& out, char32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<std::string> parse_attr_value() {
    if (at_end() || (peek() != '"' && peek() != '\'')) {
      return error("expected a quoted attribute value");
    }
    const char quote = peek();
    advance();
    const char stop[3] = {quote, '<', '&'};
    std::string value;
    while (!at_end() && peek() != quote) {
      if (peek() == '<') return error("'<' not allowed in attribute value");
      if (peek() == '&') {
        if (auto s = decode_entity(value); !s.ok()) return s.error();
      } else if (peek() == '\n') {
        value += '\n';
        advance();
      } else {
        const std::size_t run = plain_run(std::string_view{stop, 3});
        value.append(input_.substr(pos_, run));
        advance_plain(run);
      }
    }
    if (at_end()) return error("unterminated attribute value");
    advance();  // closing quote
    return value;
  }

  Result<Element> parse_element() {
    if (at_end() || peek() != '<') return error("expected '<'");
    advance();
    auto name = parse_name();
    if (!name.ok()) return name.error();
    Element element(std::move(name).value());

    // Attributes.
    while (true) {
      skip_whitespace();
      if (at_end()) return error("unterminated start tag");
      if (peek() == '>' || match("/>")) break;
      auto key = parse_name();
      if (!key.ok()) return Error(key.error().message() + " (in attribute list)");
      skip_whitespace();
      if (at_end() || peek() != '=') return error("expected '=' after attribute name");
      advance();
      skip_whitespace();
      auto value = parse_attr_value();
      if (!value.ok()) return value.error();
      if (!element.add_attr(key.value(), std::move(value).value())) {
        return error("duplicate attribute '" + key.value() + "'");
      }
    }

    if (match("/>")) {
      advance_by(2);
      return element;
    }
    advance();  // '>'

    // Content.
    std::string text;
    while (true) {
      if (at_end()) return error("unterminated element <" + element.name() + ">");
      if (match("<!--")) {
        skip_comment();
      } else if (match("<![CDATA[")) {
        advance_by(9);
        while (!at_end() && !match("]]>")) {
          text += peek();
          advance();
        }
        if (at_end()) return error("unterminated CDATA section");
        advance_by(3);
      } else if (match("</")) {
        advance_by(2);
        auto close = parse_name();
        if (!close.ok()) return close.error();
        if (close.value() != element.name()) {
          return error("mismatched close tag </" + close.value() + "> for <" +
                       element.name() + ">");
        }
        skip_whitespace();
        if (at_end() || peek() != '>') return error("expected '>' in close tag");
        advance();
        element.set_text(std::string{util::trim(text)});
        return element;
      } else if (peek() == '<') {
        auto child = parse_element();
        if (!child.ok()) return child;
        element.add_child(std::move(child).value());
      } else if (peek() == '&') {
        if (auto s = decode_entity(text); !s.ok()) return s.error();
      } else if (peek() == '\n') {
        text += '\n';
        advance();
      } else {
        const std::size_t run = plain_run("<&");
        text.append(input_.substr(pos_, run));
        advance_plain(run);
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// Fast path for the common shape: the compact documents our own writer
// emits (every bus frame is one — encode() output is re-parsed at send
// time). Handles elements, attributes, and plain character data only; the
// moment it sees anything else — a prolog, a comment, CDATA, an entity, a
// duplicate attribute, or any malformed input — it bails and the caller
// falls back to the full parser, which either handles the construct or
// produces the proper line:column diagnostic. On success the resulting
// tree is identical to the full parser's (same grammar subset, same text
// trimming), which the differential fuzz test in tests/test_xml.cc pins.
class FastParser {
 public:
  explicit FastParser(std::string_view input) : input_(input) {}

  /// True on success with `out` holding the root; false means "fall back".
  bool parse_document(Element& out) {
    skip_space();
    if (!parse_element(out)) return false;
    skip_space();
    return pos_ == input_.size();
  }

 private:
  bool at_end() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }

  void skip_space() {
    while (!at_end() && is_space(peek())) ++pos_;
  }

  bool parse_name(std::string& out) {
    if (at_end() || !is_name_start(peek())) return false;
    std::size_t end = pos_;
    while (end < input_.size() && is_name_char(input_[end])) ++end;
    out.assign(input_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  bool parse_element(Element& out) {
    if (at_end() || peek() != '<') return false;
    ++pos_;
    std::string name;
    if (!parse_name(name)) return false;  // also rejects <!-- / <?xml / <![
    out.set_name(std::move(name));

    while (true) {
      skip_space();
      if (at_end()) return false;
      if (peek() == '>' || peek() == '/') break;
      std::string key;
      if (!parse_name(key)) return false;
      skip_space();
      if (at_end() || peek() != '=') return false;
      ++pos_;
      skip_space();
      if (at_end() || (peek() != '"' && peek() != '\'')) return false;
      const char quote = peek();
      ++pos_;
      std::size_t end = pos_;
      while (end < input_.size() && input_[end] != quote) {
        // '&' needs entity decoding, '<' is an error: both are slow-path.
        if (input_[end] == '&' || input_[end] == '<') return false;
        ++end;
      }
      if (end == input_.size()) return false;
      if (!out.add_attr(key, std::string{input_.substr(pos_, end - pos_)})) {
        return false;  // duplicate attribute: slow path diagnoses it
      }
      pos_ = end + 1;
    }

    if (peek() == '/') {
      ++pos_;
      if (at_end() || peek() != '>') return false;
      ++pos_;
      return true;
    }
    ++pos_;  // '>'

    // Content: children interleaved with character data (accumulated across
    // child boundaries and trimmed at the end, exactly like the full parser).
    std::string text;
    while (true) {
      if (at_end()) return false;
      const char c = peek();
      if (c == '<') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
          pos_ += 2;
          std::string close;
          if (!parse_name(close)) return false;
          if (close != out.name()) return false;
          skip_space();
          if (at_end() || peek() != '>') return false;
          ++pos_;
          out.set_text(std::string{util::trim(text)});
          return true;
        }
        Element child;
        if (!parse_element(child)) return false;  // comments/CDATA fall back
        out.add_child(std::move(child));
      } else if (c == '&') {
        return false;  // entity: slow path decodes it
      } else {
        std::size_t end = pos_;
        while (end < input_.size() && input_[end] != '<' && input_[end] != '&') {
          ++end;
        }
        text.append(input_.substr(pos_, end - pos_));
        pos_ = end;
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<Element> parse(std::string_view input) {
  Element fast;
  if (FastParser(input).parse_document(fast)) return fast;
  return Parser(input).parse_document();
}

}  // namespace mercury::xml
