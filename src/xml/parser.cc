#include "xml/parser.h"

#include <cctype>
#include <string>

#include "util/strings.h"

namespace mercury::xml {
namespace {

using util::Error;
using util::Result;

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Element> parse_document() {
    skip_prolog();
    skip_misc();
    if (at_end()) return error("expected a root element");
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_misc();
    if (!at_end()) return error("trailing content after root element");
    return root;
  }

 private:
  bool at_end() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }
  char peek_at(std::size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }
  bool match(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void advance_by(std::size_t n) {
    for (std::size_t i = 0; i < n && !at_end(); ++i) advance();
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  Error error(std::string_view message) const {
    return Error("xml parse error at " + std::to_string(line_) + ":" +
                 std::to_string(col_) + ": " + std::string{message});
  }

  void skip_prolog() {
    skip_whitespace();
    if (match("<?xml")) {
      while (!at_end() && !match("?>")) advance();
      advance_by(2);
    }
  }

  // Skips whitespace and comments between markup.
  void skip_misc() {
    while (true) {
      skip_whitespace();
      if (match("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    advance_by(4);  // "<!--"
    while (!at_end() && !match("-->")) advance();
    advance_by(3);
  }

  Result<std::string> parse_name() {
    if (at_end() || !is_name_start(peek())) return error("expected a name");
    std::string name;
    while (!at_end() && is_name_char(peek())) {
      name += peek();
      advance();
    }
    return name;
  }

  // Decodes an entity starting at '&'; appends the decoded text to out.
  util::Status decode_entity(std::string& out) {
    advance();  // '&'
    std::string entity;
    while (!at_end() && peek() != ';') {
      entity += peek();
      advance();
      if (entity.size() > 10) return error("unterminated entity");
    }
    if (at_end()) return error("unterminated entity");
    advance();  // ';'
    if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "amp") out += '&';
    else if (entity == "apos") out += '\'';
    else if (entity == "quot") out += '"';
    else if (!entity.empty() && entity[0] == '#') {
      const bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      const std::string digits = entity.substr(hex ? 2 : 1);
      if (digits.empty()) return error("empty character reference");
      unsigned long code = 0;
      for (char c : digits) {
        int digit;
        if (std::isdigit(static_cast<unsigned char>(c))) digit = c - '0';
        else if (hex && std::isxdigit(static_cast<unsigned char>(c)))
          digit = 10 + (std::tolower(static_cast<unsigned char>(c)) - 'a');
        else return error("bad character reference '" + entity + "'");
        code = code * (hex ? 16 : 10) + static_cast<unsigned long>(digit);
        if (code > 0x10FFFF) return error("character reference out of range");
      }
      append_utf8(out, static_cast<char32_t>(code));
    } else {
      return error("unknown entity '&" + entity + ";'");
    }
    return util::Status::ok_status();
  }

  static void append_utf8(std::string& out, char32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<std::string> parse_attr_value() {
    if (at_end() || (peek() != '"' && peek() != '\'')) {
      return error("expected a quoted attribute value");
    }
    const char quote = peek();
    advance();
    std::string value;
    while (!at_end() && peek() != quote) {
      if (peek() == '<') return error("'<' not allowed in attribute value");
      if (peek() == '&') {
        if (auto s = decode_entity(value); !s.ok()) return s.error();
      } else {
        value += peek();
        advance();
      }
    }
    if (at_end()) return error("unterminated attribute value");
    advance();  // closing quote
    return value;
  }

  Result<Element> parse_element() {
    if (at_end() || peek() != '<') return error("expected '<'");
    advance();
    auto name = parse_name();
    if (!name.ok()) return name.error();
    Element element(std::move(name).value());

    // Attributes.
    while (true) {
      skip_whitespace();
      if (at_end()) return error("unterminated start tag");
      if (peek() == '>' || match("/>")) break;
      auto key = parse_name();
      if (!key.ok()) return Error(key.error().message() + " (in attribute list)");
      skip_whitespace();
      if (at_end() || peek() != '=') return error("expected '=' after attribute name");
      advance();
      skip_whitespace();
      auto value = parse_attr_value();
      if (!value.ok()) return value.error();
      if (element.has_attr(key.value())) {
        return error("duplicate attribute '" + key.value() + "'");
      }
      element.set_attr(std::move(key).value(), std::move(value).value());
    }

    if (match("/>")) {
      advance_by(2);
      return element;
    }
    advance();  // '>'

    // Content.
    std::string text;
    while (true) {
      if (at_end()) return error("unterminated element <" + element.name() + ">");
      if (match("<!--")) {
        skip_comment();
      } else if (match("<![CDATA[")) {
        advance_by(9);
        while (!at_end() && !match("]]>")) {
          text += peek();
          advance();
        }
        if (at_end()) return error("unterminated CDATA section");
        advance_by(3);
      } else if (match("</")) {
        advance_by(2);
        auto close = parse_name();
        if (!close.ok()) return close.error();
        if (close.value() != element.name()) {
          return error("mismatched close tag </" + close.value() + "> for <" +
                       element.name() + ">");
        }
        skip_whitespace();
        if (at_end() || peek() != '>') return error("expected '>' in close tag");
        advance();
        element.set_text(std::string{util::trim(text)});
        return element;
      } else if (peek() == '<') {
        auto child = parse_element();
        if (!child.ok()) return child;
        element.add_child(std::move(child).value());
      } else if (peek() == '&') {
        if (auto s = decode_entity(text); !s.ok()) return s.error();
      } else {
        text += peek();
        advance();
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

util::Result<Element> parse(std::string_view input) {
  return Parser(input).parse_document();
}

}  // namespace mercury::xml
