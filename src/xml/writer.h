// Serialization of the XML document model.
//
// Output is deterministic (attributes are stored sorted), so serialized
// messages can be compared byte-for-byte in tests and hashed for dedup.
#pragma once

#include <string>

#include "xml/element.h"

namespace mercury::xml {

struct WriteOptions {
  /// Pretty-print with two-space indentation; compact single-line otherwise.
  bool pretty = false;
  /// Emit the <?xml version="1.0"?> declaration.
  bool declaration = false;
};

/// Escape character data (&, <, >).
std::string escape_text(std::string_view text);

/// Escape an attribute value (&, <, >, ").
std::string escape_attr(std::string_view value);

/// Append-style variants for hot paths (the message codec): no temporary
/// strings, compact form only.
void escape_attr_to(std::string& out, std::string_view value);
void write_to(std::string& out, const Element& element);

std::string write(const Element& element, const WriteOptions& options = {});

}  // namespace mercury::xml
