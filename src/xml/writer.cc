#include "xml/writer.h"

#include <sstream>

namespace mercury::xml {
namespace {

void append_escaped(std::string& out, std::string_view s, bool attr) {
  // Append unescaped runs in bulk; most strings contain no specials at all.
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char* replacement = nullptr;
    switch (s[i]) {
      case '&': replacement = "&amp;"; break;
      case '<': replacement = "&lt;"; break;
      case '>': replacement = "&gt;"; break;
      case '"':
        if (attr) replacement = "&quot;";
        break;
      default: break;
    }
    if (replacement != nullptr) {
      out.append(s.substr(start, i - start));
      out += replacement;
      start = i + 1;
    }
  }
  out.append(s.substr(start));
}

void append_indent(std::string& out, const WriteOptions& options, int depth) {
  if (options.pretty) out.append(2 * static_cast<std::size_t>(depth), ' ');
}

void append_newline(std::string& out, const WriteOptions& options) {
  if (options.pretty) out += '\n';
}

void write_element(std::string& out, const Element& e, const WriteOptions& options,
                   int depth) {
  append_indent(out, options, depth);
  out += '<';
  out += e.name();
  for (const auto& [key, value] : e.attributes()) {
    out += ' ';
    out += key;
    out += "=\"";
    append_escaped(out, value, /*attr=*/true);
    out += '"';
  }

  if (e.text().empty() && e.children().empty()) {
    out += "/>";
    append_newline(out, options);
    return;
  }

  out += '>';
  if (!e.children().empty()) {
    append_newline(out, options);
    for (const auto& child : e.children()) {
      write_element(out, *child, options, depth + 1);
    }
    if (!e.text().empty()) {
      append_indent(out, options, depth);
      append_escaped(out, e.text(), /*attr=*/false);
      append_newline(out, options);
    }
    append_indent(out, options, depth);
  } else {
    append_escaped(out, e.text(), /*attr=*/false);
  }
  out += "</";
  out += e.name();
  out += '>';
  append_newline(out, options);
}

}  // namespace

std::string escape_text(std::string_view text) {
  std::string out;
  append_escaped(out, text, /*attr=*/false);
  return out;
}

std::string escape_attr(std::string_view value) {
  std::string out;
  append_escaped(out, value, /*attr=*/true);
  return out;
}

void escape_attr_to(std::string& out, std::string_view value) {
  append_escaped(out, value, /*attr=*/true);
}

void write_to(std::string& out, const Element& element) {
  write_element(out, element, WriteOptions{}, 0);
}

std::string write(const Element& element, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    out += options.pretty ? "\n" : "";
  }
  write_element(out, element, options, 0);
  if (!options.pretty) return out;
  // Trim the trailing newline for symmetric parse/write round-trips.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

}  // namespace mercury::xml
