#include "xml/writer.h"

#include <sstream>

namespace mercury::xml {
namespace {

void append_escaped(std::string& out, std::string_view s, bool attr) {
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"':
        if (attr) out += "&quot;";
        else out += c;
        break;
      default: out += c;
    }
  }
}

void write_element(std::string& out, const Element& e, const WriteOptions& options,
                   int depth) {
  const std::string indent = options.pretty ? std::string(2 * static_cast<std::size_t>(depth), ' ') : "";
  const std::string newline = options.pretty ? "\n" : "";

  out += indent;
  out += '<';
  out += e.name();
  for (const auto& [key, value] : e.attributes()) {
    out += ' ';
    out += key;
    out += "=\"";
    append_escaped(out, value, /*attr=*/true);
    out += '"';
  }

  if (e.text().empty() && e.children().empty()) {
    out += "/>";
    out += newline;
    return;
  }

  out += '>';
  if (!e.children().empty()) {
    out += newline;
    for (const auto& child : e.children()) {
      write_element(out, *child, options, depth + 1);
    }
    if (!e.text().empty()) {
      out += indent;
      append_escaped(out, e.text(), /*attr=*/false);
      out += newline;
    }
    out += indent;
  } else {
    append_escaped(out, e.text(), /*attr=*/false);
  }
  out += "</";
  out += e.name();
  out += '>';
  out += newline;
}

}  // namespace

std::string escape_text(std::string_view text) {
  std::string out;
  append_escaped(out, text, /*attr=*/false);
  return out;
}

std::string escape_attr(std::string_view value) {
  std::string out;
  append_escaped(out, value, /*attr=*/true);
  return out;
}

std::string write(const Element& element, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    out += options.pretty ? "\n" : "";
  }
  write_element(out, element, options, 0);
  if (!options.pretty) return out;
  // Trim the trailing newline for symmetric parse/write round-trips.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

}  // namespace mercury::xml
