#include "xml/element.h"

#include <charconv>
#include <sstream>

namespace mercury::xml {

Element::Element(const Element& other)
    : name_(other.name_), attributes_(other.attributes_), text_(other.text_) {
  children_.reserve(other.children_.size());
  for (const auto& child : other.children_) {
    children_.push_back(std::make_unique<Element>(*child));
  }
}

Element& Element::operator=(const Element& other) {
  if (this == &other) return *this;
  Element copy(other);
  *this = std::move(copy);
  return *this;
}

std::optional<std::string> Element::attr(std::string_view key) const {
  const auto it = attributes_.find(key);  // heterogeneous: no temp string
  if (it == attributes_.end()) return std::nullopt;
  return it->second;
}

std::string Element::attr_or(std::string_view key, std::string_view fallback) const {
  // Hot path (the message codec reads every field this way): one binary
  // search and one string construction, no optional in between.
  const auto it = attributes_.find(key);
  return it != attributes_.end() ? it->second : std::string{fallback};
}

std::optional<double> Element::attr_double(std::string_view key) const {
  const auto it = attributes_.find(key);
  if (it == attributes_.end()) return std::nullopt;
  const std::string& v = it->second;
  // std::from_chars for double is not universally available; use strtod.
  const char* begin = v.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (end == begin || end != begin + v.size()) return std::nullopt;
  return parsed;
}

std::optional<long long> Element::attr_int(std::string_view key) const {
  const auto it = attributes_.find(key);
  if (it == attributes_.end()) return std::nullopt;
  const std::string& v = it->second;
  long long parsed = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), parsed);
  if (ec != std::errc{} || ptr != v.data() + v.size()) return std::nullopt;
  return parsed;
}

Element& Element::set_attr(std::string key, std::string value) {
  attributes_.insert_or_assign(std::move(key), std::move(value));
  return *this;
}

bool Element::add_attr(const std::string& key, std::string value) {
  // A <msg> header carries up to 6 attributes; reserving once avoids the
  // doubling steps for the common message shapes.
  if (attributes_.empty()) attributes_.reserve(6);
  return attributes_.try_emplace(key, std::move(value)).second;
}

Element& Element::set_attr(std::string key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return set_attr(std::move(key), os.str());
}

Element& Element::set_attr(std::string key, long long value) {
  return set_attr(std::move(key), std::to_string(value));
}

bool Element::has_attr(std::string_view key) const {
  return attributes_.contains(key);
}

Element& Element::set_text(std::string text) {
  text_ = std::move(text);
  return *this;
}

Element& Element::add_child(Element child) {
  children_.push_back(std::make_unique<Element>(std::move(child)));
  return *children_.back();
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Element* Element::child(std::string_view name) {
  return const_cast<Element*>(static_cast<const Element*>(this)->child(name));
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

bool Element::operator==(const Element& other) const {
  if (name_ != other.name_ || attributes_ != other.attributes_ ||
      text_ != other.text_ || children_.size() != other.children_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!(*children_[i] == *other.children_[i])) return false;
  }
  return true;
}

}  // namespace mercury::xml
