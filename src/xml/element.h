// XML document model for the Mercury command language.
//
// Mercury components interoperate by "passing of messages composed in our
// XML command language" (paper §2.1). This is a deliberately small XML
// subset — elements, attributes, character data, comments, the five
// predefined entities — sufficient for command messages; no namespaces,
// DTDs, or processing instructions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/flat_map.h"

namespace mercury::xml {

/// A single XML element. Owns its children; value semantics via deep copy.
class Element {
 public:
  Element() = default;
  explicit Element(std::string name) : name_(std::move(name)) {}

  Element(const Element& other);
  Element& operator=(const Element& other);
  Element(Element&&) noexcept = default;
  Element& operator=(Element&&) noexcept = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Attributes (sorted by key for deterministic serialization; stored
  // as a flat map — every bus message round-trips through the codec, so
  // attribute lookups are squarely on the hot path) ---
  using AttributeMap = util::FlatMap<std::string, std::string>;
  const AttributeMap& attributes() const { return attributes_; }
  std::optional<std::string> attr(std::string_view key) const;
  /// Attribute value or `fallback` when absent.
  std::string attr_or(std::string_view key, std::string_view fallback) const;
  /// Numeric attribute; nullopt when absent or unparsable.
  std::optional<double> attr_double(std::string_view key) const;
  std::optional<long long> attr_int(std::string_view key) const;
  Element& set_attr(std::string key, std::string value);
  /// Insert-if-absent variant for the parser (which must reject duplicate
  /// attributes): returns false and leaves the element unchanged when `key`
  /// is already present. One map probe instead of has_attr + set_attr.
  bool add_attr(const std::string& key, std::string value);
  Element& set_attr(std::string key, double value);
  Element& set_attr(std::string key, long long value);
  bool has_attr(std::string_view key) const;

  // --- Character data (concatenated text content of this element) ---
  const std::string& text() const { return text_; }
  Element& set_text(std::string text);

  // --- Children ---
  const std::vector<std::unique_ptr<Element>>& children() const { return children_; }
  /// Appends a child and returns a reference to the stored copy.
  Element& add_child(Element child);
  /// First child with the given name, or nullptr.
  const Element* child(std::string_view name) const;
  Element* child(std::string_view name);
  /// All children with the given name.
  std::vector<const Element*> children_named(std::string_view name) const;
  std::size_t child_count() const { return children_.size(); }

  /// Deep structural equality (name, attributes, text, children in order).
  bool operator==(const Element& other) const;

 private:
  std::string name_;
  AttributeMap attributes_;
  std::string text_;
  std::vector<std::unique_ptr<Element>> children_;
};

}  // namespace mercury::xml
