// Recursive-descent parser for the XML subset used by the command language.
//
// Supported: elements, attributes (single- or double-quoted), character
// data, self-closing tags, comments, an optional <?xml ...?> declaration,
// and the five predefined entities (&lt; &gt; &amp; &apos; &quot;) plus
// numeric character references. Unsupported (rejected with an error):
// DTDs, CDATA is supported, processing instructions other than the
// declaration, and namespace processing (colons are treated as ordinary
// name characters).
#pragma once

#include <string_view>

#include "util/result.h"
#include "xml/element.h"

namespace mercury::xml {

/// Parse a complete document; exactly one root element is required.
/// Errors carry a line:column position.
util::Result<Element> parse(std::string_view input);

}  // namespace mercury::xml
