#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace mercury::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// FNV-1a over the tag, used to make fork(tag) depend on the tag text.
std::uint64_t hash_tag(std::string_view tag) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : tag) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Run the seed through SplitMix64 per the xoshiro authors' recommendation;
  // guards against correlated states for small consecutive seeds.
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  // -log(1-u) with u in [0,1) avoids log(0).
  return -mean * std::log1p(-next_double());
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 == 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::normal_at_least(double mean, double stddev, double lo) {
  for (int i = 0; i < 1024; ++i) {
    const double v = normal(mean, stddev);
    if (v >= lo) return v;
  }
  return lo;  // pathological parameters; clamp rather than spin forever
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  // Floating-point rounding can overshoot; return the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

Duration Rng::exponential(Duration mean) {
  return Duration::seconds(exponential(mean.to_seconds()));
}

Rng Rng::fork(std::string_view tag) {
  const std::uint64_t mix =
      next_u64() ^ hash_tag(tag) ^ (0x9e3779b97f4a7c15ull * ++fork_counter_);
  return Rng{mix};
}

}  // namespace mercury::util
