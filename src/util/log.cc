#include "util/log.h"

#include <cstdio>

namespace mercury::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() { set_sink(nullptr); }

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
    return;
  }
  sink_ = [](LogLevel level, TimePoint t, std::string_view component,
             std::string_view message) {
    std::fprintf(stderr, "[%10.3f] %-5s %-10.*s %.*s\n", t.to_seconds(),
                 std::string(to_string(level)).c_str(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  };
}

void Logger::log(LogLevel level, TimePoint t, std::string_view component,
                 std::string_view message) {
  if (!enabled(level)) return;
  sink_(level, t, component, message);
}

LogLine::~LogLine() {
  if (Logger::instance().enabled(level_)) {
    Logger::instance().log(level_, t_, component_, os_.str());
  }
}

}  // namespace mercury::util
