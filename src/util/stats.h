// Descriptive statistics for experiment results.
//
// Experiments collect per-trial recovery times; benches report mean, spread,
// percentiles and confidence intervals. SampleStats stores the samples (the
// experiments here are small: hundreds to tens of thousands of trials);
// RunningStats is a constant-space Welford accumulator for long simulations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/time.h"

namespace mercury::util {

/// Constant-space mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with order statistics and a normal-approximation CI.
class SampleStats {
 public:
  void add(double x);
  void add(Duration d) { add(d.to_seconds()); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Coefficient of variation (stddev/mean); 0 when mean is 0.
  double cv() const;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;

  const std::vector<double>& samples() const { return samples_; }

  /// "mean ± ci (n=N)" for bench output.
  std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used by benches to show recovery-time distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// ASCII rendering, one row per non-empty bin.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mercury::util
