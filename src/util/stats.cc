#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace mercury::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleStats::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleStats::variance() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return s / static_cast<double>(samples_.size() - 1);
}

double SampleStats::stddev() const { return std::sqrt(variance()); }

double SampleStats::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleStats::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double SampleStats::percentile(double p) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SampleStats::cv() const {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

double SampleStats::ci95_halfwidth() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

std::string SampleStats::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << mean() << " ± " << ci95_halfwidth() << " (n=" << count() << ")";
  return os.str();
}

void SampleStats::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) * static_cast<double>(width));
    os << "[" << bin_low(i) << ", " << bin_high(i) << ") "
       << std::string(std::max<std::size_t>(bar, 1), '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace mercury::util
