// Result<T>: value-or-error return type (pre-std::expected).
//
// Used at API boundaries where failure is an expected outcome — XML parsing,
// message decoding, process spawning — per the Core Guidelines advice to
// reserve exceptions for genuinely exceptional conditions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mercury::util {

/// Error carrying a human-readable message and optional context chain.
class Error {
 public:
  explicit Error(std::string message) : message_(std::move(message)) {}

  const std::string& message() const { return message_; }

  /// Prepend context: Error("bad attr").wrap("parsing <ping>") =>
  /// "parsing <ping>: bad attr".
  Error wrap(std::string_view context) const {
    return Error(std::string{context} + ": " + message_);
  }

 private:
  std::string message_;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}        // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> v_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                                   // success
  Status(Error error) : error_(std::move(error)) {}     // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace mercury::util
