// Strongly-typed simulation time.
//
// The simulator works in seconds of virtual time. Using distinct types for
// instants and durations catches unit mistakes (adding two instants, passing
// a duration where a point is expected) at compile time.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace mercury::util {

/// A span of virtual time, in seconds. May be negative in intermediate
/// arithmetic but most APIs require non-negative spans.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration seconds(double s) { return Duration{s}; }
  constexpr static Duration millis(double ms) { return Duration{ms / 1e3}; }
  constexpr static Duration minutes(double m) { return Duration{m * 60.0}; }
  constexpr static Duration hours(double h) { return Duration{h * 3600.0}; }
  constexpr static Duration days(double d) { return Duration{d * 86400.0}; }
  constexpr static Duration zero() { return Duration{0.0}; }
  constexpr static Duration infinity() {
    return Duration{std::numeric_limits<double>::infinity()};
  }

  constexpr double to_seconds() const { return secs_; }
  constexpr double to_millis() const { return secs_ * 1e3; }
  constexpr double to_hours() const { return secs_ / 3600.0; }

  constexpr bool is_finite() const { return std::isfinite(secs_); }
  constexpr bool is_zero() const { return secs_ == 0.0; }
  constexpr bool is_negative() const { return secs_ < 0.0; }

  constexpr Duration operator+(Duration o) const { return Duration{secs_ + o.secs_}; }
  constexpr Duration operator-(Duration o) const { return Duration{secs_ - o.secs_}; }
  constexpr Duration operator*(double k) const { return Duration{secs_ * k}; }
  constexpr Duration operator/(double k) const { return Duration{secs_ / k}; }
  constexpr double operator/(Duration o) const { return secs_ / o.secs_; }
  constexpr Duration& operator+=(Duration o) { secs_ += o.secs_; return *this; }
  constexpr Duration& operator-=(Duration o) { secs_ -= o.secs_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string str() const;

 private:
  constexpr explicit Duration(double s) : secs_(s) {}
  double secs_ = 0.0;
};

constexpr Duration operator*(double k, Duration d) { return d * k; }

/// An instant on the virtual timeline, measured from simulation start.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr static TimePoint from_seconds(double s) { return TimePoint{s}; }
  constexpr static TimePoint origin() { return TimePoint{0.0}; }
  constexpr static TimePoint infinity() {
    return TimePoint{std::numeric_limits<double>::infinity()};
  }

  constexpr double to_seconds() const { return secs_; }
  constexpr bool is_finite() const { return std::isfinite(secs_); }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{secs_ + d.to_seconds()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{secs_ - d.to_seconds()};
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::seconds(secs_ - o.secs_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    secs_ += d.to_seconds();
    return *this;
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string str() const;

 private:
  constexpr explicit TimePoint(double s) : secs_(s) {}
  double secs_ = 0.0;
};

}  // namespace mercury::util
