// Deterministic random number generation.
//
// Experiments must be reproducible: the same seed always yields the same
// event sequence, independent of platform or standard-library version.
// We therefore implement the generator (xoshiro256**) and the distributions
// ourselves instead of relying on std::*_distribution, whose output is
// implementation-defined.
//
// Rng::fork(tag) derives an independent child stream, so each component /
// subsystem can own a private stream and adding draws in one subsystem does
// not perturb another ("stream splitting").
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace mercury::util {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponential with the given mean (not rate). Requires mean > 0.
  double exponential(double mean);

  /// Normal via Box-Muller (cached second variate).
  double normal(double mean, double stddev);

  /// Normal truncated below at `lo` (resampled; lo must be < mean + ~8 sd).
  double normal_at_least(double mean, double stddev, double lo);

  /// Draw an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Exponential inter-arrival duration with the given mean duration.
  Duration exponential(Duration mean);

  /// Derive an independent child stream. Deterministic in (parent seed, tag,
  /// fork order).
  Rng fork(std::string_view tag);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t fork_counter_ = 0;
};

}  // namespace mercury::util
