// Small string helpers used by the XML layer and bench table printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mercury::util {

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Fixed-width column padding for table output (left- or right-aligned).
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

/// Format a double with fixed precision.
std::string format_fixed(double v, int precision = 2);

/// True if every character is an ASCII digit and the string is non-empty.
bool is_all_digits(std::string_view s);

/// Checked decimal parse of an unsigned 64-bit value: the whole string must
/// be digits and fit in the type (note is_all_digits passes 20+ digit runs
/// that overflow). nullopt on any failure — never throws, for parsing
/// protocol lines from untrusted child processes.
std::optional<std::uint64_t> parse_u64(std::string_view s);

}  // namespace mercury::util
