#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <sstream>

namespace mercury::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string{s};
  return std::string(width - s.size(), ' ') + std::string{s};
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string{s};
  return std::string{s} + std::string(width - s.size(), ' ');
}

std::string format_fixed(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

bool is_all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t value = 0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace mercury::util
