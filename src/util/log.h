// Minimal leveled logger.
//
// Components log against virtual (simulation) time, so the sink takes an
// explicit timestamp instead of reading a wall clock. Global level filtering
// keeps benches quiet and lets examples run verbose.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "util/time.h"

namespace mercury::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

std::string_view to_string(LogLevel level);

/// Process-wide log configuration. Not thread-safe by design: the simulator
/// is single-threaded, and the POSIX supervisor configures logging before
/// spawning children.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, TimePoint, std::string_view component,
                                  std::string_view message)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  /// Replace the sink (default writes to stderr). Pass nullptr to restore
  /// the default sink.
  void set_sink(Sink sink);

  void log(LogLevel level, TimePoint t, std::string_view component,
           std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

/// Stream-style helper: LogLine(kInfo, now, "ses") << "locked on pass";
class LogLine {
 public:
  LogLine(LogLevel level, TimePoint t, std::string_view component)
      : level_(level), t_(t), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Logger::instance().enabled(level_)) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  TimePoint t_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace mercury::util
