// Sorted flat map: (key, value) pairs in one contiguous vector, ordered by
// key. Same iteration order as std::map (so anything serialized from it —
// wire encodings, endpoint listings, traces — stays byte-identical when a
// std::map is replaced), but lookups are a cache-friendly binary search with
// heterogeneous keys (no temporary std::string per string_view probe) and
// there are no per-node allocations. Iterators and indices are invalidated
// by any mutation, exactly like a vector's.
//
// Used by the hot-path pass (ISSUE 10): mbus endpoint/restarting routing and
// xml::Element attributes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace mercury::util {

template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return items_.begin(); }
  iterator end() { return items_.end(); }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  /// First item with key >= `key` (heterogeneous: any K comparable to Key).
  template <typename K>
  const_iterator lower_bound(const K& key) const {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& item, const K& probe) { return item.first < probe; });
  }
  template <typename K>
  iterator lower_bound(const K& key) {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& item, const K& probe) { return item.first < probe; });
  }

  template <typename K>
  const_iterator find(const K& key) const {
    const auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }
  template <typename K>
  iterator find(const K& key) {
    const auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }

  template <typename K>
  bool contains(const K& key) const {
    return find(key) != items_.end();
  }

  /// Insert or overwrite; returns the stored value. Last write wins, like
  /// std::map::operator[] assignment.
  template <typename K>
  Value& insert_or_assign(K&& key, Value value) {
    auto it = lower_bound(key);
    if (it != items_.end() && it->first == key) {
      it->second = std::move(value);
      return it->second;
    }
    it = items_.insert(it, value_type(Key(std::forward<K>(key)), std::move(value)));
    return it->second;
  }

  /// Insert if absent; returns {stored value, inserted}. The key is only
  /// copied/moved when an insert actually happens — one binary search either
  /// way (insert_or_assign + a separate contains() probe would take two).
  template <typename K>
  std::pair<Value*, bool> try_emplace(K&& key, Value value) {
    auto it = lower_bound(key);
    if (it != items_.end() && it->first == key) return {&it->second, false};
    it = items_.insert(it, value_type(Key(std::forward<K>(key)), std::move(value)));
    return {&it->second, true};
  }

  /// Erase by key; returns the number of items removed (0 or 1).
  template <typename K>
  std::size_t erase(const K& key) {
    const auto it = find(key);
    if (it == items_.end()) return 0;
    items_.erase(it);
    return 1;
  }

  /// Positional access, for index-based caches layered on top (the route
  /// cache in bus/message_bus.cc). Indices die with the next mutation.
  const value_type& at_index(std::size_t i) const { return items_[i]; }
  value_type& at_index(std::size_t i) { return items_[i]; }
  std::size_t index_of(const_iterator it) const {
    return static_cast<std::size_t>(it - items_.begin());
  }

  bool operator==(const FlatMap& other) const { return items_ == other.items_; }

 private:
  std::vector<value_type> items_;
};

}  // namespace mercury::util
