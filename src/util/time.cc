#include "util/time.h"

#include <sstream>

namespace mercury::util {

std::string Duration::str() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  if (!is_finite()) return secs_ > 0 ? "+inf" : "-inf";
  if (secs_ >= 86400.0) {
    os << secs_ / 86400.0 << "d";
  } else if (secs_ >= 3600.0) {
    os << secs_ / 3600.0 << "h";
  } else if (secs_ >= 60.0) {
    os << secs_ / 60.0 << "m";
  } else {
    os << secs_ << "s";
  }
  return os.str();
}

std::string TimePoint::str() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "t=" << secs_ << "s";
  return os.str();
}

}  // namespace mercury::util
