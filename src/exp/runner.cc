#include "exp/runner.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>

namespace mercury::exp {

int env_jobs() {
  const char* flag = std::getenv("MERCURY_JOBS");
  if (flag == nullptr || *flag == '\0') return 0;
  int jobs = 0;
  const char* end = flag;
  while (*end != '\0') ++end;
  const auto [ptr, ec] = std::from_chars(flag, end, jobs);
  if (ec != std::errc{} || ptr != end || jobs <= 0) return 0;
  return jobs;
}

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ExperimentRunner::ExperimentRunner(RunnerConfig config) : config_(config) {
  if (config_.jobs > 0) {
    jobs_ = config_.jobs;
  } else {
    const int from_env = env_jobs();
    jobs_ = from_env > 0 ? from_env : hardware_jobs();
  }
}

void ExperimentRunner::run(std::size_t trials,
                           const std::function<void(TrialContext&)>& body) {
  if (trials == 0) return;

  // Capture only when the launching thread has a recorder to merge into;
  // with tracing globally off (MERCURY_TRACE=0) trials skip the per-trial
  // recorders entirely and emit sites stay single-pointer-compare cheap.
  obs::TraceRecorder* ambient = obs::recorder();
  const bool capture = config_.capture_traces && ambient != nullptr;

  const SeedStream seeds(config_.master_seed);
  std::vector<std::unique_ptr<obs::TraceRecorder>> captures(
      capture ? trials : 0);
  std::vector<std::exception_ptr> errors(trials);

  const auto run_one = [&](std::size_t index) {
    TrialContext ctx;
    ctx.index = index;
    ctx.seed = config_.master_seed != 0 ? seeds.trial_seed(index)
                                        : static_cast<std::uint64_t>(index);
    try {
      if (capture) {
        auto recorder =
            std::make_unique<obs::TraceRecorder>(config_.max_events_per_trial);
        obs::ScopedRecorder scope(*recorder);
        ctx.recorder = recorder.get();
        body(ctx);
        captures[index] = std::move(recorder);
      } else {
        body(ctx);
      }
    } catch (...) {
      errors[index] = std::current_exception();
    }
  };

  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), trials);
  if (workers <= 1) {
    for (std::size_t i = 0; i < trials; ++i) run_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        while (true) {
          const std::size_t index = next.fetch_add(1);
          if (index >= trials) return;
          run_one(index);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }

  // Merge in trial-index order, on the launching thread, after the pool has
  // drained: the one place per-trial buffers touch shared state. This is
  // also what keeps MERCURY_TRACE_DIR safe under parallelism — nothing ever
  // writes a trace file from a worker.
  if (capture) {
    for (std::size_t i = 0; i < trials; ++i) {
      if (captures[i] != nullptr) ambient->merge_from(std::move(*captures[i]));
    }
  }

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace mercury::exp
