#include "exp/seed_stream.h"

namespace mercury::exp {

namespace {
/// 2^64 / phi, forced odd — the SplitMix64 "golden gamma". Odd means
/// index -> master + (index+1)*gamma is injective mod 2^64.
constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ull;
}  // namespace

std::uint64_t splitmix64_mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t SeedStream::trial_seed(std::uint64_t index) const {
  // (index+1) rather than index keeps trial 0's seed distinct from the raw
  // master, which callers tend to also use directly.
  return splitmix64_mix(master_ + (index + 1) * kGoldenGamma);
}

}  // namespace mercury::exp
