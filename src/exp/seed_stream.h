// Per-trial seed derivation for parallel experiments.
//
// A sweep is a grid of independent trials; each trial owns a private
// Simulator whose root Rng is seeded from one number. When trials run
// concurrently the seeds must be (a) derivable from (master seed, trial
// index) alone — never from execution order, or results would depend on the
// thread schedule — and (b) statistically independent, or co-scheduled
// trials would sample correlated failure processes.
//
// SeedStream gives both: trial_seed(i) pushes `master + (i+1)*gamma`
// (gamma = the odd SplitMix64 golden-gamma constant, so the pre-mix values
// are pairwise distinct for any index range) through the SplitMix64
// finalizer, a bijective avalanche mix. Distinctness is therefore exact,
// not probabilistic, and tests/test_seed_stream.cc checks the independence
// half empirically (cross-correlation of derived Rng streams).
//
// The legacy benches keep their published `base + i` seed grids (the
// numbers in EXPERIMENTS.md are pinned to them); util::Rng already applies
// SplitMix64 when seeding xoshiro, so those remain well-distributed.
// SeedStream is the scheme for new sweeps and for the ExperimentRunner's
// derived-seed mode.
#pragma once

#include <cstdint>

namespace mercury::exp {

/// SplitMix64 finalizer: bijective 64-bit avalanche mix.
std::uint64_t splitmix64_mix(std::uint64_t x);

/// Index-addressable stream of per-trial seeds derived from one master
/// seed. Stateless per call: trial_seed(i) depends only on (master, i).
class SeedStream {
 public:
  explicit SeedStream(std::uint64_t master) : master_(master) {}

  /// Seed for trial `index`. Pairwise distinct across indices (exact, by
  /// construction) and independent in the avalanche-mix sense.
  std::uint64_t trial_seed(std::uint64_t index) const;

  std::uint64_t master() const { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace mercury::exp
