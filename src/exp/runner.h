// ExperimentRunner: parallel, deterministic execution of independent trials.
//
// The benches' evidence is statistical — hundreds of kill trials per
// (seed, mode, tree) cell — and every trial already owns a private
// Simulator/Station/Rng, so trials are embarrassingly parallel. What makes
// naive parallelism wrong is the observability layer: the process-wide
// TraceRecorder would interleave events from concurrent trials in thread
// order, and the merged .trace.jsonl would change with the thread count.
//
// The runner restores determinism by construction:
//
//   * the recorder installation point (obs::set_recorder) is thread-local;
//     each trial runs under its own private TraceRecorder on whichever
//     worker thread picks it up;
//   * results are written into a slot indexed by trial number, never
//     appended in completion order;
//   * after the pool drains, the per-trial recorders are merged into the
//     caller's ambient recorder in trial-index order, rebasing run and span
//     ids past everything already recorded (TraceRecorder::merge_from).
//
// Consequence: aggregated results and the merged trace are byte-identical
// for any MERCURY_JOBS value, and — because the merge reproduces exactly
// the run/span numbering a serial loop would have produced — identical to
// the pre-runner serial output as well. jobs=1 runs inline on the calling
// thread with no pool at all (today's behaviour).
//
// Job count resolution: config.jobs if positive, else $MERCURY_JOBS if set
// to a positive integer, else std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exp/seed_stream.h"
#include "obs/trace.h"

namespace mercury::exp {

/// Everything a trial body may depend on. Trials must not read any other
/// process-wide mutable state, or determinism under parallelism is lost.
struct TrialContext {
  /// Trial number in submission order; results are aggregated by it.
  std::size_t index = 0;
  /// SeedStream-derived seed for this trial (see RunnerConfig::master_seed);
  /// equals `index` when no master seed is configured and the caller's
  /// per-trial inputs carry their own seeds.
  std::uint64_t seed = 0;
  /// This trial's private recorder, or nullptr when capture is off (no
  /// ambient recorder installed on the launching thread, or capture
  /// disabled). Safe to inspect inside the body: events of this trial only.
  obs::TraceRecorder* recorder = nullptr;
};

struct RunnerConfig {
  /// Worker threads; 0 = $MERCURY_JOBS, else hardware concurrency.
  int jobs = 0;
  /// Derive ctx.seed = SeedStream(master_seed).trial_seed(index) when
  /// nonzero; otherwise ctx.seed = index.
  std::uint64_t master_seed = 0;
  /// Capture per-trial traces and merge them (index order) into the
  /// recorder installed on the launching thread. With capture off, trials
  /// under jobs>1 record nothing (worker threads have no recorder).
  bool capture_traces = true;
  /// Event cap per trial recorder.
  std::size_t max_events_per_trial = obs::TraceRecorder::kDefaultMaxEvents;
};

/// Positive value of $MERCURY_JOBS, or 0 when unset/invalid.
int env_jobs();
/// hardware_concurrency(), at least 1.
int hardware_jobs();

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerConfig config = {});

  /// Resolved worker count (before clamping to the trial count).
  int jobs() const { return jobs_; }

  /// Execute `body` for trial indices [0, trials). Bodies run concurrently;
  /// each sees its own TrialContext. Trace merge happens after the last
  /// trial finishes. A throwing body does not tear down the pool: the
  /// first exception (by trial index) is rethrown after all trials finish.
  void run(std::size_t trials, const std::function<void(TrialContext&)>& body);

  /// run() collecting one result per trial, returned in index order.
  template <typename F>
  auto map(std::size_t trials, F&& body)
      -> std::vector<std::decay_t<std::invoke_result_t<F&, TrialContext&>>> {
    using T = std::decay_t<std::invoke_result_t<F&, TrialContext&>>;
    std::vector<T> results(trials);
    run(trials,
        [&](TrialContext& ctx) { results[ctx.index] = body(ctx); });
    return results;
  }

 private:
  RunnerConfig config_;
  int jobs_ = 1;
};

}  // namespace mercury::exp
