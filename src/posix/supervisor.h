// PosixSupervisor: the restart tree driving real OS processes.
//
// The simulator proves the paper's numbers; this backend proves the
// mechanism is not a simulation artifact. It is FD and REC fused into one
// real-time supervision loop (single-threaded, poll()-based):
//
//   * each worker is a real child process (fork/exec), pinged over its
//     stdin/stdout pipes with "PING n"/"PONG n" lines;
//   * a missed pong raises a failure; the restart tree + oracle pick the
//     cell to restart, exactly as in core::Recoverer — guess-too-low
//     recommendations escalate to the parent cell when the failure
//     persists (§3.3);
//   * restarting a cell SIGKILLs every component in its group and respawns
//     them, masking them from detection until they report READY;
//   * a worker that keeps failing after max_root_restarts full restarts is
//     parked as a hard failure.
//
// Timings here are real milliseconds, so tests keep startup delays small.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/restart_tree.h"
#include "posix/child_process.h"
#include "util/result.h"

namespace mercury::posix {

using Clock = std::chrono::steady_clock;
using Millis = std::chrono::milliseconds;

struct WorkerSpec {
  std::string name;
  /// argv[0] = binary path. The supervisor appends nothing; encode worker
  /// options (--name, --startup-ms, ...) here.
  std::vector<std::string> argv;
  /// READY must arrive within this after spawn, or the start is itself a
  /// failure (escalates like any other).
  Millis startup_timeout{2000};
  /// Checkpoint state file (ISSUE 3), empty = no checkpointing. Must match
  /// the worker's --checkpoint-file. The supervisor validates the file's
  /// checksum before every spawn and deletes it when invalid, so the worker
  /// never warm-starts from garbage.
  std::string checkpoint_file;
};

struct SupervisorConfig {
  Millis ping_period{100};
  Millis ping_timeout{80};
  /// Re-failure within this window of a restart's completion escalates.
  Millis escalation_window{1500};
  int max_root_restarts = 2;
  /// Window over which uncured root restarts accumulate per worker.
  Millis root_retry_window{30'000};
  /// §7 health beacons over the pipes: when a worker's reported memory
  /// ("HEALTH <name> mem=<MB>" lines) exceeds this, it is proactively
  /// restarted. 0 disables the policy.
  double memory_limit_mb = 0.0;
  /// Minimum spacing between proactive restarts of the same worker.
  Millis rejuvenation_spacing{2'000};

  // --- Restart-path hardening (ISSUE 2), mirroring core::RecConfig --------
  /// Exponential backoff between successive restarts of the same cell:
  /// attempt n of a streak is delayed backoff_base * backoff_factor^(n-1),
  /// capped at backoff_cap. Zero base disables. While a delayed restart is
  /// pending, its group stays masked and the spawn waits.
  Millis backoff_base{0};
  double backoff_factor = 2.0;
  Millis backoff_cap{5'000};
  /// A cell with no restarts for this long forgets its streak.
  Millis backoff_decay{10'000};
  /// Restart attempts tolerated per failure chain (reactive actions only)
  /// before the chain's reported worker is parked as a hard failure. Zero
  /// disables (only max_root_restarts parks).
  int max_attempts_per_chain = 0;

  // --- Partner checkpoint replicas (ISSUE 7) ------------------------------
  /// Mirror of the simulator's L1 tier: the supervisor keeps an in-memory
  /// copy of each worker's last *validated* checkpoint payload. When the
  /// on-disk state file is missing or fails validation at spawn time, the
  /// file is rewritten from the copy before the exec, so the worker still
  /// warm-starts instead of falling off the redundancy cliff. Off by
  /// default: legacy supervisors keep the single-file behaviour.
  bool keep_partner_copies = false;

  // --- Parallel recovery (ISSUE 8) ----------------------------------------
  /// Allow multiple restart actions in flight at once, as long as their
  /// restart groups are disjoint (sibling cells). A report whose chosen cell
  /// strictly covers an in-flight action ABSORBS it: the stale action's span
  /// ends (outcome=absorbed) and the covering restart re-kills its members.
  /// Off by default: the legacy supervisor runs at most one action and lets
  /// the failure detector re-detect anything it dropped while busy.
  bool parallel_recovery = false;

  // --- Traffic-driven on-demand recovery (ISSUE 9) ------------------------
  /// Mirror of core::RecConfig::traffic_driven; requires parallel_recovery.
  /// While any action is in flight, further failures are deferred instead of
  /// restarted eagerly: touch_worker(name) — called when a client request
  /// needs the worker — promotes its deferred restart; untouched workers
  /// drain in the background, one per lazy_drain.
  bool traffic_driven = false;
  Millis lazy_drain{300};
};

struct PosixRecoveryRecord {
  std::string reported_worker;
  core::NodeId node = core::kInvalidNode;
  std::vector<std::string> restarted;
  int escalation_level = 0;
  Millis downtime{0};  ///< failure report -> group READY
};

class PosixSupervisor {
 public:
  /// The tree's components must exactly match the worker names.
  PosixSupervisor(core::RestartTree tree, std::vector<WorkerSpec> workers,
                  SupervisorConfig config);
  ~PosixSupervisor();

  PosixSupervisor(const PosixSupervisor&) = delete;
  PosixSupervisor& operator=(const PosixSupervisor&) = delete;

  /// Spawn every worker and wait for all READYs (or startup timeouts).
  util::Status start_all();

  /// Run the supervision loop for a wall-clock duration.
  void run_for(Millis duration);

  /// Run until `predicate()` is true or `timeout` elapses; returns whether
  /// the predicate was met. The loop keeps supervising while waiting.
  bool run_until(const std::function<bool()>& predicate, Millis timeout);

  // --- Introspection / fault injection for tests --------------------------
  bool worker_up(const std::string& name) const;
  bool all_up() const;
  /// SIGKILL a worker out-of-band (external fault injection). Returns false
  /// (and logs) for a name the supervisor does not manage.
  bool kill_worker(const std::string& name);
  /// Make a worker fail-silent without killing its process. Returns false
  /// (and logs) for a name the supervisor does not manage.
  bool wedge_worker(const std::string& name);

  const std::vector<PosixRecoveryRecord>& history() const { return history_; }
  const std::vector<std::string>& hard_failures() const { return hard_failures_; }
  const core::RestartTree& tree() const { return tree_; }
  std::uint64_t pings_sent() const { return pings_sent_; }
  std::uint64_t pongs_received() const { return pongs_received_; }
  /// Restart attempts delayed by same-cell backoff (hardened configs).
  std::uint64_t backoffs_applied() const { return backoffs_applied_; }
  /// Worker startups abandoned by the startup deadline (hung/slow spawns).
  std::uint64_t restart_timeouts() const { return restart_timeouts_; }
  /// Restart actions currently in flight (>1 only under parallel_recovery).
  std::size_t restarts_in_flight() const { return actions_.size(); }
  /// In-flight actions superseded by a covering (ancestor-cell) restart.
  std::uint64_t absorbed_restarts() const { return absorbed_restarts_; }
  /// Latest memory figure a worker's HEALTH beacon reported, if any.
  std::optional<double> latest_memory_mb(const std::string& name) const;
  std::uint64_t rejuvenations() const { return rejuvenations_; }
  /// Checkpoint files found valid at spawn (the worker will warm-start).
  std::uint64_t checkpoints_validated() const { return checkpoints_validated_; }
  /// Invalid checkpoint files deleted before a spawn (cold start enforced).
  std::uint64_t checkpoints_deleted() const { return checkpoints_deleted_; }
  /// Checkpoint files rewritten from the supervisor's partner copy after
  /// the on-disk tier was lost (keep_partner_copies configs only).
  std::uint64_t partner_restores() const { return partner_restores_; }

  // --- Traffic-driven on-demand recovery (ISSUE 9) ------------------------
  /// What touch_worker found for the touched worker.
  enum class TouchResult {
    kIdle,        ///< nothing deferred or in flight for this worker
    kRestarting,  ///< an in-flight action already covers it
    kPromoted,    ///< a deferred failure was promoted (now or at next drain)
    kParked,      ///< hard-failed: no restart, callers should reject
  };
  /// Client-request touch (traffic_driven configs): promote `name`'s
  /// deferred restart. No-op (kIdle) otherwise.
  TouchResult touch_worker(const std::string& name);
  std::uint64_t touch_promotions() const { return touch_promotions_; }
  std::uint64_t lazy_drains() const { return lazy_drains_; }
  /// Failures currently deferred by traffic-driven lazy recovery.
  std::size_t deferred_count() const { return deferred_.size(); }

 private:
  enum class WorkerState { kDown, kStarting, kUp };

  struct Worker {
    WorkerSpec spec;
    std::optional<ChildProcess> process;
    WorkerState state = WorkerState::kDown;
    Clock::time_point next_ping;
    std::uint64_t outstanding_seq = 0;
    Clock::time_point ping_deadline;
    Clock::time_point ready_deadline;
    std::optional<double> memory_mb;  // latest HEALTH beacon figure
    Clock::time_point last_rejuvenation{};
    std::uint64_t restart_span = 0;  // open obs span: spawn -> READY
    /// Partner replica (ISSUE 7): the last checkpoint payload that passed
    /// the spawn-time gate, held supervisor-side on the worker's behalf.
    std::optional<std::string> replica_payload;
  };

  struct PendingRestart {
    std::string reported_worker;
    core::NodeId node;
    std::vector<std::string> group;
    int escalation_level = 0;
    bool rejuvenation = false;  // proactive; exempt from the attempt budget
    Clock::time_point reported_at;
    /// Backoff pacing: the group is spawned only once this time arrives;
    /// until then the action is in flight (group masked) but not started.
    Clock::time_point spawn_at{};
    bool spawned = false;
    std::uint64_t trace_span = 0;  // open obs span for the whole action
  };
  struct LastRestart {
    core::NodeId node;
    std::vector<std::string> group;
    int escalation_level = 0;
    Clock::time_point complete_at;
  };
  /// Uncured root restarts per reported worker (see core::Recoverer: an
  /// unrelated failure right after a full restart must not park an innocent
  /// worker).
  struct RootHistory {
    int count = 0;
    Clock::time_point last{};
  };
  /// Same-cell restart pacing (mirrors core::Recoverer::CellBackoff).
  struct CellBackoff {
    int streak = 0;
    Clock::time_point last{};
  };

  /// A failure deferred by traffic-driven lazy recovery, waiting for a
  /// client touch or the background drain.
  struct DeferredFailure {
    std::string name;
    bool touched = false;
  };

  void pump(Millis max_wait);
  void drain_worker(Worker& worker);
  void send_pings();
  void check_deadlines();
  void check_health_policy();
  void on_failure(const std::string& name);
  /// The decision tail of on_failure (escalation, budget, oracle choose,
  /// begin_restart); promotion paths call it directly so a promoted failure
  /// cannot be re-deferred.
  void act_on_failure(const std::string& name);
  /// Dispatch deferred failures: touched ones as soon as no in-flight
  /// conflict remains, untouched ones one per lazy_drain interval.
  void maybe_drain_deferred();
  /// Restarting `name`'s cell would overlap an in-flight action's cell.
  bool defer_conflicts(const std::string& name) const;
  void begin_restart(PendingRestart restart);
  /// Whether `name` belongs to any in-flight action's group.
  bool masked(const std::string& name) const;
  /// End (outcome=absorbed) every in-flight action whose cell is a strict
  /// descendant of `node` — the covering restart takes over its members.
  void absorb_conflicting(core::NodeId node);
  /// Spawn any in-flight action's group once its backoff delay has elapsed.
  void maybe_spawn_pending();
  void maybe_finish_restarts();
  void spawn_worker(Worker& worker);
  void park(const std::string& name, const std::string& reason);

  core::RestartTree tree_;
  core::HeuristicOracle oracle_;
  SupervisorConfig config_;
  std::map<std::string, Worker> workers_;
  /// In-flight restart actions by id. At most one entry unless
  /// parallel_recovery; groups of coexisting actions are always disjoint.
  std::map<std::uint64_t, PendingRestart> actions_;
  std::uint64_t next_action_ = 1;
  std::optional<LastRestart> last_;
  std::map<std::string, RootHistory> root_history_;
  std::map<core::NodeId, CellBackoff> backoff_;
  std::vector<PosixRecoveryRecord> history_;
  std::vector<std::string> hard_failures_;
  /// Reactive restart attempts in the chain currently being worked.
  int chain_attempts_ = 0;
  std::uint64_t seq_ = 1;
  std::uint64_t pings_sent_ = 0;
  std::uint64_t pongs_received_ = 0;
  std::uint64_t rejuvenations_ = 0;
  std::uint64_t backoffs_applied_ = 0;
  std::uint64_t restart_timeouts_ = 0;
  std::uint64_t absorbed_restarts_ = 0;
  std::uint64_t checkpoints_validated_ = 0;
  std::uint64_t checkpoints_deleted_ = 0;
  std::uint64_t partner_restores_ = 0;
  std::deque<DeferredFailure> deferred_;
  Clock::time_point next_lazy_{};
  std::uint64_t touch_promotions_ = 0;
  std::uint64_t lazy_drains_ = 0;
};

}  // namespace mercury::posix
