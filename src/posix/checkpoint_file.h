// On-disk checkpoint files for the POSIX backend (ISSUE 3).
//
// The simulator's checkpoint store holds snapshots in memory; on real
// processes the state must survive the process, so it lives in a small
// state file the worker writes after becoming READY and reloads at the next
// spawn to skip its simulated slow start (a warm restart). The supervisor
// validates the same file *before* spawning and deletes it when invalid, so
// a worker never warm-starts from garbage.
//
// Format v2 (single line, single space separators; payload is one token):
//
//   MERCURY-CKPT <version> <name> <len> <payload> <fnv1a-checksum-hex>
//
// <len> is the payload's byte length, validated BEFORE the checksum: a
// truncated file (power loss mid-write, full disk) is rejected by the cheap
// length check without ever trusting the checksum arithmetic on a payload
// that is not the payload that was written. The checksum covers
// "<version> <name> <len> <payload>". Anything else — missing magic, wrong
// version, name mismatch, length mismatch, malformed or wrong checksum,
// extra tokens — is invalid. v1 files (no <len>) are invalid under v2 and
// get deleted: one cold start per format migration, never a wrong warm one.
//
// Header-only and libc++-only on purpose: mercury_worker links no project
// libraries, and supervisor and worker must agree on the format byte for
// byte.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace mercury::posix::ckpt {

inline constexpr int kFileVersion = 2;
inline constexpr std::string_view kMagic = "MERCURY-CKPT";

inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

struct CheckpointFile {
  int version = kFileVersion;
  std::string name;
  std::string payload;
};

enum class FileState { kMissing, kInvalid, kValid };

inline std::string checksum_body(int version, const std::string& name,
                                 const std::string& payload) {
  return std::to_string(version) + " " + name + " " +
         std::to_string(payload.size()) + " " + payload;
}

/// Read and validate `path` for worker `expect_name`. kValid fills `out`.
inline FileState read_checkpoint_file(const std::string& path,
                                      const std::string& expect_name,
                                      CheckpointFile* out) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return FileState::kMissing;
  char buffer[1024];
  const bool got_line = std::fgets(buffer, sizeof(buffer), file) != nullptr;
  std::fclose(file);
  if (!got_line) return FileState::kInvalid;

  std::string line(buffer);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }

  // Tokenize on single spaces; exactly 6 tokens.
  constexpr int kTokens = 6;
  std::string tokens[kTokens];
  std::size_t start = 0;
  for (int i = 0; i < kTokens; ++i) {
    const std::size_t space = line.find(' ', start);
    if (i < kTokens - 1) {
      if (space == std::string::npos) return FileState::kInvalid;
      tokens[i] = line.substr(start, space - start);
      start = space + 1;
    } else {
      if (space != std::string::npos) return FileState::kInvalid;  // extras
      tokens[i] = line.substr(start);
    }
  }
  if (tokens[0] != kMagic) return FileState::kInvalid;

  // Checked numeric parses — this file is exactly the kind of input that
  // shows up half-written or bit-flipped.
  char* end = nullptr;
  const long version = std::strtol(tokens[1].c_str(), &end, 10);
  if (end == tokens[1].c_str() || *end != '\0') return FileState::kInvalid;
  if (version != kFileVersion) return FileState::kInvalid;
  if (tokens[2] != expect_name || tokens[2].empty()) return FileState::kInvalid;

  // Length before checksum: a payload whose recorded length disagrees with
  // the bytes actually present is a truncated (or padded) file — reject it
  // without doing checksum arithmetic over the wrong bytes.
  const unsigned long long length = std::strtoull(tokens[3].c_str(), &end, 10);
  if (tokens[3].empty() || end == tokens[3].c_str() || *end != '\0') {
    return FileState::kInvalid;
  }
  if (tokens[4].empty() || length != tokens[4].size()) {
    return FileState::kInvalid;
  }

  const std::uint64_t checksum = std::strtoull(tokens[5].c_str(), &end, 16);
  if (tokens[5].empty() || end == tokens[5].c_str() || *end != '\0') {
    return FileState::kInvalid;
  }
  if (checksum != fnv1a(checksum_body(static_cast<int>(version), tokens[2],
                                      tokens[4]))) {
    return FileState::kInvalid;
  }
  if (out != nullptr) {
    out->version = static_cast<int>(version);
    out->name = tokens[2];
    out->payload = tokens[4];
  }
  return FileState::kValid;
}

/// Write `name`'s checkpoint to `path`; returns success.
inline bool write_checkpoint_file(const std::string& path,
                                  const std::string& name,
                                  const std::string& payload) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::uint64_t checksum =
      fnv1a(checksum_body(kFileVersion, name, payload));
  const int rc = std::fprintf(
      file, "%s %d %s %zu %s %llx\n", std::string(kMagic).c_str(),
      kFileVersion, name.c_str(), payload.size(), payload.c_str(),
      static_cast<unsigned long long>(checksum));
  return std::fclose(file) == 0 && rc > 0;
}

}  // namespace mercury::posix::ckpt
