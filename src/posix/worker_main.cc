// mercury_worker — the POSIX backend's test component.
//
// A deliberately boring process that behaves like a Mercury component:
// it takes a while to start (serial negotiation, JVM warmup...), then
// answers liveness pings on stdin until told to misbehave.
//
//   mercury_worker --name ses --startup-ms 200 [--wedge-after N]
//
// Protocol (one line per message):
//   stdout:  READY <name>            after the startup delay
//            PONG <seq>              reply to a ping
//   stdin:   PING <seq>
//            WEDGE                   become fail-silent (stop answering)
//            CRASH                   abort() immediately
//            EXIT                    clean exit
//
// --wedge-after N: stop answering after the N-th pong — a self-inflicted
// fail-silent failure, for supervision tests without external kills.
//
// --leak-mb-per-min R: report a memory figure growing at R MB/min in a
// "HEALTH <name> mem=<MB>" line alongside every pong — the §7 beacon
// digest, over real pipes. A restart resets the figure (rejuvenation).
//
// Restart-time faults (ISSUE 2: the restart path is itself a fault domain):
//
// --fail-start-prob P: with probability P (seeded from pid ^ time, so each
// incarnation draws independently), exit(1) after the startup delay instead
// of reporting READY — a crash-during-startup the supervisor only sees as a
// missing READY.
//
// --hang-start-once FILE: if FILE does not exist, create it and hang forever
// before READY (the deterministic first-attempt hang); if it exists, start
// normally. Lets a test observe exactly one startup timeout, then recovery.
//
// Checkpointed warm restarts (ISSUE 3):
//
// --checkpoint-file FILE [--warm-startup-ms N]: if FILE holds a valid
// checkpoint for this worker (format: posix/checkpoint_file.h), sleep only
// the warm delay (default startup_ms / 4) instead of the full startup —
// the slow part of starting was rebuilding exactly the state the file
// preserves. After READY the worker (re)writes the file. The supervisor
// validates the same checksum before spawning and deletes invalid files.
//
// --garble-pongs N: answer the first N pings of this incarnation with
// corrupted protocol lines (an oversized PONG sequence, a malformed HEALTH
// figure) before resuming normal service — regression fodder for the
// supervisor's checked line parsing (a 20+ digit PONG used to throw
// std::out_of_range inside the recovery brain).
#include <sys/time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "posix/checkpoint_file.h"

namespace {

struct Options {
  std::string name = "worker";
  long startup_ms = 100;
  long wedge_after = -1;  // pongs answered before self-wedging; -1 = never
  double leak_mb_per_min = 0.0;
  double fail_start_prob = 0.0;  // crash (exit 1) before READY with this prob
  std::string hang_start_once;   // sentinel path; hang before READY if absent
  std::string checkpoint_file;   // state file enabling warm restarts
  long warm_startup_ms = -1;     // warm delay; -1 = startup_ms / 4
  long garble_pongs = 0;         // pings answered with corrupted lines first
};

double now_seconds() {
  timeval tv{};
  gettimeofday(&tv, nullptr);
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) / 1e6;
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--name" && has_value) {
      options.name = argv[++i];
    } else if (arg == "--startup-ms" && has_value) {
      options.startup_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--wedge-after" && has_value) {
      options.wedge_after = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--leak-mb-per-min" && has_value) {
      options.leak_mb_per_min = std::strtod(argv[++i], nullptr);
    } else if (arg == "--fail-start-prob" && has_value) {
      options.fail_start_prob = std::strtod(argv[++i], nullptr);
    } else if (arg == "--hang-start-once" && has_value) {
      options.hang_start_once = argv[++i];
    } else if (arg == "--checkpoint-file" && has_value) {
      options.checkpoint_file = argv[++i];
    } else if (arg == "--warm-startup-ms" && has_value) {
      options.warm_startup_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--garble-pongs" && has_value) {
      options.garble_pongs = std::strtol(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "worker: unknown or incomplete argument '%s'\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // line-buffered replies

  // Deterministic first-attempt hang: claim the sentinel, then stall before
  // READY. The supervisor's startup timeout is the only way out.
  if (!options.hang_start_once.empty()) {
    std::FILE* sentinel = std::fopen(options.hang_start_once.c_str(), "r");
    if (sentinel != nullptr) {
      std::fclose(sentinel);  // already claimed: this incarnation starts clean
    } else {
      sentinel = std::fopen(options.hang_start_once.c_str(), "w");
      if (sentinel != nullptr) std::fclose(sentinel);
      std::fprintf(stderr, "worker %s: hanging during startup (sentinel %s)\n",
                   options.name.c_str(), options.hang_start_once.c_str());
      for (;;) pause();  // hang until SIGKILLed
    }
  }

  // Warm restart (ISSUE 3): a valid checkpoint file means the state whose
  // reconstruction dominates the cold startup is already on disk — sleep
  // only the warm delay. Any invalid file yields the full cold start (and
  // the supervisor normally deleted it before this spawn anyway).
  long startup_ms = options.startup_ms;
  bool warm = false;
  if (!options.checkpoint_file.empty()) {
    mercury::posix::ckpt::CheckpointFile checkpoint;
    if (mercury::posix::ckpt::read_checkpoint_file(
            options.checkpoint_file, options.name, &checkpoint) ==
        mercury::posix::ckpt::FileState::kValid) {
      warm = true;
      startup_ms = options.warm_startup_ms >= 0 ? options.warm_startup_ms
                                                : options.startup_ms / 4;
    }
  }
  usleep(static_cast<useconds_t>(startup_ms) * 1000);

  // Probabilistic startup crash: die after the startup work, before READY.
  if (options.fail_start_prob > 0.0) {
    std::srand(static_cast<unsigned>(getpid()) ^
               static_cast<unsigned>(now_seconds() * 1e6));
    if (static_cast<double>(std::rand()) / RAND_MAX < options.fail_start_prob) {
      std::fprintf(stderr, "worker %s: crashing during startup (injected)\n",
                   options.name.c_str());
      return 1;
    }
  }

  const double started = now_seconds();
  std::printf("READY %s\n", options.name.c_str());
  if (!options.checkpoint_file.empty()) {
    // The state is (re)built; persist it for the next incarnation.
    const std::string payload =
        std::string(warm ? "reloaded" : "rebuilt") + "-state";
    mercury::posix::ckpt::write_checkpoint_file(options.checkpoint_file,
                                                options.name, payload);
    std::fprintf(stderr, "worker %s: %s start, checkpoint written to %s\n",
                 options.name.c_str(), warm ? "warm" : "cold",
                 options.checkpoint_file.c_str());
  }

  bool wedged = false;
  long pongs = 0;
  long garbled = 0;
  char line[512];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    // Strip the newline.
    line[std::strcspn(line, "\n")] = '\0';
    if (std::strncmp(line, "PING ", 5) == 0) {
      if (wedged) continue;  // fail-silent: consume, never answer
      if (garbled < options.garble_pongs) {
        // Corrupted replies: an overflowing all-digit sequence (passes
        // is_all_digits, overflows 64 bits), a non-numeric one, and a
        // HEALTH beacon with a garbage figure. A correct supervisor skips
        // them all and times the ping out.
        ++garbled;
        std::printf("PONG 99999999999999999999999\n");
        std::printf("PONG not-a-sequence-number\n");
        std::printf("HEALTH %s mem=not-a-number\n", options.name.c_str());
        continue;
      }
      std::printf("PONG %s\n", line + 5);
      if (options.leak_mb_per_min > 0.0) {
        const double uptime_min = (now_seconds() - started) / 60.0;
        std::printf("HEALTH %s mem=%.3f\n", options.name.c_str(),
                    48.0 + options.leak_mb_per_min * uptime_min);
      }
      ++pongs;
      if (options.wedge_after >= 0 && pongs >= options.wedge_after) {
        wedged = true;
      }
    } else if (std::strcmp(line, "WEDGE") == 0) {
      wedged = true;
    } else if (std::strcmp(line, "CRASH") == 0) {
      std::abort();
    } else if (std::strcmp(line, "EXIT") == 0) {
      return 0;
    }
    // Unknown commands are ignored (COTS components shrug).
  }
  return 0;  // stdin closed: supervisor went away
}
