#include "posix/child_process.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mercury::posix {

using util::Error;
using util::Result;

Result<ChildProcess> ChildProcess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) return Error("spawn: empty argv");

  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  if (pipe(to_child) != 0) return Error(std::string("pipe: ") + strerror(errno));
  if (pipe(from_child) != 0) {
    close(to_child[0]);
    close(to_child[1]);
    return Error(std::string("pipe: ") + strerror(errno));
  }

  const pid_t pid = fork();
  if (pid < 0) {
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      close(fd);
    }
    return Error(std::string("fork: ") + strerror(errno));
  }

  if (pid == 0) {
    // Child: wire the pipes to stdio and exec.
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      close(fd);
    }
    std::vector<char*> c_argv;
    c_argv.reserve(argv.size() + 1);
    for (const auto& arg : argv) c_argv.push_back(const_cast<char*>(arg.c_str()));
    c_argv.push_back(nullptr);
    execv(c_argv[0], c_argv.data());
    _exit(127);  // exec failed
  }

  // Parent.
  close(to_child[0]);
  close(from_child[1]);
  // Non-blocking reads; writes stay blocking (lines are tiny) but we ignore
  // SIGPIPE by checking write() results.
  fcntl(from_child[0], F_SETFL, O_NONBLOCK);
  signal(SIGPIPE, SIG_IGN);
  return ChildProcess(pid, to_child[1], from_child[0]);
}

ChildProcess::ChildProcess(pid_t pid, int stdin_fd, int stdout_fd)
    : pid_(pid), stdin_fd_(stdin_fd), stdout_fd_(stdout_fd) {}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      stdin_fd_(std::exchange(other.stdin_fd_, -1)),
      stdout_fd_(std::exchange(other.stdout_fd_, -1)),
      reaped_(std::exchange(other.reaped_, true)),
      buffer_(std::move(other.buffer_)) {}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    kill_hard();
    close_fds();
    pid_ = std::exchange(other.pid_, -1);
    stdin_fd_ = std::exchange(other.stdin_fd_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    reaped_ = std::exchange(other.reaped_, true);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

ChildProcess::~ChildProcess() {
  kill_hard();
  close_fds();
}

void ChildProcess::close_fds() {
  if (stdin_fd_ >= 0) close(stdin_fd_);
  if (stdout_fd_ >= 0) close(stdout_fd_);
  stdin_fd_ = stdout_fd_ = -1;
}

bool ChildProcess::running() {
  if (pid_ < 0 || reaped_) return false;
  int status = 0;
  const pid_t r = waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    reaped_ = true;
    return false;
  }
  return r == 0;
}

void ChildProcess::kill_hard() {
  if (pid_ < 0 || reaped_) return;
  ::kill(pid_, SIGKILL);
  int status = 0;
  waitpid(pid_, &status, 0);
  reaped_ = true;
}

bool ChildProcess::write_line(const std::string& line) {
  if (stdin_fd_ < 0) return false;
  std::string framed = line;
  framed += '\n';
  const ssize_t written = write(stdin_fd_, framed.data(), framed.size());
  return written == static_cast<ssize_t>(framed.size());
}

std::vector<std::string> ChildProcess::read_lines() {
  std::vector<std::string> lines;
  if (stdout_fd_ < 0) return lines;
  char chunk[4096];
  while (true) {
    const ssize_t n = read(stdout_fd_, chunk, sizeof(chunk));
    if (n <= 0) break;  // EAGAIN, EOF, or error — all end the drain
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t newline = buffer_.find('\n', start);
    if (newline == std::string::npos) break;
    lines.push_back(buffer_.substr(start, newline - start));
    start = newline + 1;
  }
  buffer_.erase(0, start);
  return lines;
}

}  // namespace mercury::posix
