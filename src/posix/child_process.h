// ChildProcess: RAII wrapper over fork/exec with pipe-connected stdio.
//
// The POSIX backend runs real worker processes and supervises them the way
// Mercury's REC supervised JVMs: SIGKILL to kill, exec to restart,
// line-oriented pings over pipes for liveness. This class owns exactly one
// child: the pipes, the pid, and the obligation to reap it.
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace mercury::posix {

class ChildProcess {
 public:
  /// Fork/exec `argv` (argv[0] is the binary path) with stdin/stdout piped
  /// to the parent. The child's stderr passes through.
  static util::Result<ChildProcess> spawn(const std::vector<std::string>& argv);

  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  /// Kills (SIGKILL) and reaps if still running.
  ~ChildProcess();

  pid_t pid() const { return pid_; }

  /// True while the child has not been reaped. Reaps on discovery of exit.
  bool running();

  /// SIGKILL + blocking reap. Idempotent.
  void kill_hard();

  /// Write `line` (newline appended) to the child's stdin. Returns false on
  /// a dead/full pipe — fail-silent, like Mercury's bus writes.
  bool write_line(const std::string& line);

  /// Readable end of the child's stdout, for poll().
  int stdout_fd() const { return stdout_fd_; }

  /// Drain available stdout and return complete lines (non-blocking).
  std::vector<std::string> read_lines();

 private:
  ChildProcess(pid_t pid, int stdin_fd, int stdout_fd);
  void close_fds();

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  std::string buffer_;
};

}  // namespace mercury::posix
