#include "posix/supervisor.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"
#include "posix/checkpoint_file.h"
#include "util/log.h"
#include "util/strings.h"

namespace mercury::posix {

using util::Error;
using util::Status;

namespace {

util::TimePoint log_now(Clock::time_point start) {
  return util::TimePoint::from_seconds(
      std::chrono::duration<double>(Clock::now() - start).count());
}

const Clock::time_point kProcessStart = Clock::now();

void log_info(const std::string& who, const std::string& what) {
  util::LogLine(util::LogLevel::kInfo, log_now(kProcessStart), who) << what;
}

/// Trace timestamps on this backend are wall-clock seconds since process
/// start — the same origin log_now uses, so logs and traces line up.
util::TimePoint trace_now() { return log_now(kProcessStart); }

}  // namespace

PosixSupervisor::PosixSupervisor(core::RestartTree tree,
                                 std::vector<WorkerSpec> workers,
                                 SupervisorConfig config)
    : tree_(std::move(tree)), config_(config) {
  assert(tree_.validate().ok());
  for (auto& spec : workers) {
    Worker worker;
    worker.spec = std::move(spec);
    workers_.emplace(worker.spec.name, std::move(worker));
  }
  // Tree components and workers must agree, or recovery actions would
  // reference processes we do not manage.
  const auto tree_components = tree_.all_components();
  assert(tree_components.size() == workers_.size());
  for (const auto& component : tree_components) {
    assert(workers_.contains(component) && "tree component without a worker");
    (void)component;
  }
}

PosixSupervisor::~PosixSupervisor() = default;

Status PosixSupervisor::start_all() {
  for (auto& [name, worker] : workers_) spawn_worker(worker);
  const bool ready = run_until([this] { return all_up(); }, Millis{10'000});
  if (!ready) return Error("workers failed to become READY within 10 s");
  return Status::ok_status();
}

void PosixSupervisor::spawn_worker(Worker& worker) {
  worker.process.reset();  // kills and reaps any previous incarnation

  // Checkpoint gate (ISSUE 3): validate the state file before the spawn so
  // the child never warm-starts from a corrupt or foreign snapshot. Invalid
  // files are deleted — then, with partner copies on (ISSUE 7's L1 mirror),
  // the file is rewritten from the supervisor's replica of the last
  // validated payload, so losing the on-disk tier does not force a cold
  // start. Without a replica the worker finds nothing and rebuilds cold.
  if (!worker.spec.checkpoint_file.empty()) {
    const auto restore_from_replica = [&]() {
      if (!config_.keep_partner_copies || !worker.replica_payload.has_value()) {
        return;
      }
      if (ckpt::write_checkpoint_file(worker.spec.checkpoint_file,
                                      worker.spec.name,
                                      *worker.replica_payload)) {
        ++partner_restores_;
        obs::incr("posix.partner_restores");
        log_info(worker.spec.name,
                 "checkpoint file restored from partner copy (warm start kept)");
      }
    };
    ckpt::CheckpointFile file;
    switch (ckpt::read_checkpoint_file(worker.spec.checkpoint_file,
                                       worker.spec.name, &file)) {
      case ckpt::FileState::kMissing:
        restore_from_replica();
        break;
      case ckpt::FileState::kInvalid:
        ::unlink(worker.spec.checkpoint_file.c_str());
        ++checkpoints_deleted_;
        obs::incr("posix.checkpoints_deleted");
        log_info(worker.spec.name,
                 "invalid checkpoint file deleted (cold start enforced)");
        restore_from_replica();
        break;
      case ckpt::FileState::kValid:
        ++checkpoints_validated_;
        obs::incr("posix.checkpoints_validated");
        if (config_.keep_partner_copies) {
          worker.replica_payload = file.payload;
        }
        break;
    }
  }

  auto spawned = ChildProcess::spawn(worker.spec.argv);
  if (!spawned.ok()) {
    // Spawn failures surface as a worker that never becomes READY; the
    // normal escalation path handles it.
    log_info(worker.spec.name, "spawn failed: " + spawned.error().message());
    worker.state = WorkerState::kDown;
    worker.ready_deadline = Clock::now() + worker.spec.startup_timeout;
    return;
  }
  worker.process.emplace(std::move(spawned).value());
  worker.state = WorkerState::kStarting;
  worker.ready_deadline = Clock::now() + worker.spec.startup_timeout;
  worker.outstanding_seq = 0;
  // Close any span left open by a killed incarnation before opening the new
  // spawn->READY span.
  if (worker.restart_span != 0) {
    obs::end_span(trace_now(), worker.restart_span, {{"outcome", "superseded"}});
  }
  worker.restart_span =
      obs::begin_span(trace_now(), "restart", "restart:" + worker.spec.name,
                      "posix", {{"component", worker.spec.name}});
  obs::incr("posix.spawns");
}

void PosixSupervisor::run_for(Millis duration) {
  run_until([] { return false; }, duration);
}

bool PosixSupervisor::run_until(const std::function<bool()>& predicate,
                                Millis timeout) {
  const Clock::time_point end = Clock::now() + timeout;
  while (Clock::now() < end) {
    if (predicate()) return true;
    pump(Millis{10});
  }
  return predicate();
}

void PosixSupervisor::pump(Millis max_wait) {
  // Wait for child output or the next deadline, whichever is sooner.
  std::vector<pollfd> fds;
  std::vector<Worker*> fd_owners;
  for (auto& [name, worker] : workers_) {
    if (worker.process.has_value()) {
      fds.push_back(pollfd{worker.process->stdout_fd(), POLLIN, 0});
      fd_owners.push_back(&worker);
    }
  }
  const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                        static_cast<nfds_t>(fds.size()),
                        static_cast<int>(max_wait.count()));
  if (rc < 0 && errno != EINTR) {
    // A real poll failure (EBADF from a raced-away fd, ENOMEM, ...) must not
    // kill the supervision loop — the drains below are non-blocking and the
    // deadline checks still have to run. EINTR is routine (signals).
    log_info("supervisor", std::string("poll failed: ") + std::strerror(errno));
  }

  for (Worker* worker : fd_owners) drain_worker(*worker);
  send_pings();
  check_deadlines();
  check_health_policy();
  maybe_spawn_pending();
  maybe_drain_deferred();
  maybe_finish_restarts();
}

bool PosixSupervisor::masked(const std::string& name) const {
  for (const auto& [id, action] : actions_) {
    if (std::find(action.group.begin(), action.group.end(), name) !=
        action.group.end()) {
      return true;
    }
  }
  return false;
}

void PosixSupervisor::drain_worker(Worker& worker) {
  if (!worker.process.has_value()) return;
  for (const auto& line : worker.process->read_lines()) {
    if (line == "READY " + worker.spec.name) {
      worker.state = WorkerState::kUp;
      worker.next_ping = Clock::now() + config_.ping_period;
      log_info(worker.spec.name, "READY");
      if (worker.restart_span != 0) {
        obs::end_span(trace_now(), worker.restart_span, {{"outcome", "ready"}});
        worker.restart_span = 0;
      }
    } else if (util::starts_with(line, "PONG ")) {
      // Checked parse: a corrupted PONG can carry 20+ digits (passes
      // is_all_digits, overflows stoull) or garbage. The supervisor is the
      // recovery brain — it ignores bad lines, it never throws.
      const std::optional<std::uint64_t> seq = util::parse_u64(line.substr(5));
      if (seq.has_value() && *seq == worker.outstanding_seq &&
          worker.outstanding_seq != 0) {
        worker.outstanding_seq = 0;
        ++pongs_received_;
      }
    } else if (util::starts_with(line, "HEALTH " + worker.spec.name + " mem=")) {
      // §7 beacon digest over the pipe: "HEALTH <name> mem=<MB>".
      const std::string value = line.substr(line.find("mem=") + 4);
      char* end = nullptr;
      const double mb = std::strtod(value.c_str(), &end);
      if (end != value.c_str()) worker.memory_mb = mb;
    }
  }
}

std::optional<double> PosixSupervisor::latest_memory_mb(
    const std::string& name) const {
  const auto it = workers_.find(name);
  return it != workers_.end() ? it->second.memory_mb : std::nullopt;
}

void PosixSupervisor::check_health_policy() {
  if (config_.memory_limit_mb <= 0.0) return;
  if (!actions_.empty()) return;  // reactive work first
  const auto now = Clock::now();
  for (auto& [name, worker] : workers_) {
    if (worker.state != WorkerState::kUp) continue;
    if (!worker.memory_mb || *worker.memory_mb <= config_.memory_limit_mb) continue;
    if (now - worker.last_rejuvenation < config_.rejuvenation_spacing) continue;
    log_info(name, "memory " + util::format_fixed(*worker.memory_mb, 1) +
                       " MB over limit; proactive rejuvenation (§7)");
    obs::instant(trace_now(), "recover", "rec.rejuvenate", "posix",
                 {{"component", name},
                  {"mem_mb", util::format_fixed(*worker.memory_mb, 1)}});
    obs::incr("posix.rejuvenations");
    worker.last_rejuvenation = now;
    worker.memory_mb.reset();  // a fresh figure arrives after the restart
    ++rejuvenations_;
    PendingRestart restart;
    restart.reported_worker = name;
    restart.reported_at = now;
    const auto cell = tree_.lowest_cell_covering(name);
    restart.node = cell ? *cell : tree_.root();
    begin_restart(std::move(restart));
    return;  // one proactive action per pump
  }
}

void PosixSupervisor::send_pings() {
  const auto now = Clock::now();
  for (auto& [name, worker] : workers_) {
    if (worker.state != WorkerState::kUp) continue;
    if (masked(name)) continue;
    if (worker.outstanding_seq != 0) continue;
    if (now < worker.next_ping) continue;
    const std::uint64_t seq = seq_++;
    worker.outstanding_seq = seq;
    worker.ping_deadline = now + config_.ping_timeout;
    worker.next_ping = now + config_.ping_period;
    if (worker.process.has_value()) {
      worker.process->write_line("PING " + std::to_string(seq));
      ++pings_sent_;
    }
  }
}

void PosixSupervisor::check_deadlines() {
  const auto now = Clock::now();
  for (auto& [name, worker] : workers_) {
    // The startup deadline applies even to masked (in-flight group) workers:
    // the restart path is itself a fault domain, and a hung member startup
    // must surface (maybe_finish_restart's any_dead escalation) rather than
    // leave the whole action in flight forever.
    if (worker.state == WorkerState::kStarting && now >= worker.ready_deadline) {
      worker.state = WorkerState::kDown;
      log_info(name, "startup timed out; reporting failure");
      obs::instant(trace_now(), "detect", "fd.report", "posix",
                   {{"component", name}, {"cause", "startup-timeout"}});
      obs::incr("fd.reports");
      obs::instant(trace_now(), "restart", "restart.timeout", "posix",
                   {{"component", name}});
      obs::incr("posix.restart_timeouts");
      ++restart_timeouts_;
      if (!masked(name)) on_failure(name);
      continue;
    }
    if (masked(name)) continue;
    if (worker.state == WorkerState::kUp && worker.outstanding_seq != 0 &&
        now >= worker.ping_deadline) {
      worker.outstanding_seq = 0;
      log_info(name, "missed ping; reporting failure");
      obs::instant(trace_now(), "detect", "fd.report", "posix",
                   {{"component", name}, {"cause", "missed-ping"}});
      obs::incr("fd.reports");
      on_failure(name);
    }
  }
}

void PosixSupervisor::park(const std::string& name, const std::string& reason) {
  log_info(name, "hard failure (" + reason + "); parking");
  obs::instant(trace_now(), "recover", "rec.parked", "posix",
               {{"component", name}, {"reason", reason}});
  obs::incr("rec.parked");
  hard_failures_.push_back(name);
}

void PosixSupervisor::on_failure(const std::string& name) {
  if (std::find(hard_failures_.begin(), hard_failures_.end(), name) !=
      hard_failures_.end()) {
    return;
  }
  // A member of an in-flight group is already being restarted; the action's
  // own deadline/escalation machinery handles it going wrong.
  if (masked(name)) return;
  // Legacy single-action mode: busy means busy; FD re-detects afterwards.
  if (!config_.parallel_recovery && !actions_.empty()) return;

  // Traffic-driven lazy recovery (ISSUE 9): while any action is in flight,
  // further failures wait — a client touch promotes them, the background
  // drain sweeps the rest. Mirrors core::Recoverer's traffic_active path.
  if (config_.traffic_driven && config_.parallel_recovery &&
      !actions_.empty()) {
    for (const DeferredFailure& entry : deferred_) {
      if (entry.name == name) return;
    }
    obs::instant(trace_now(), "recover", "rec.defer", "posix",
                 {{"component", name}});
    obs::incr("rec.deferred");
    log_info(name, "failure deferred (traffic-driven lazy recovery)");
    // The background drain waits a full interval from the first deferral
    // (mirrors the sim recoverer's schedule_lazy_drain); a touch can still
    // promote at any time.
    if (deferred_.empty()) next_lazy_ = Clock::now() + config_.lazy_drain;
    deferred_.push_back(DeferredFailure{name, false});
    return;
  }

  act_on_failure(name);
}

void PosixSupervisor::act_on_failure(const std::string& name) {
  PendingRestart restart;
  restart.reported_worker = name;
  restart.reported_at = Clock::now();

  const bool escalating =
      last_.has_value() &&
      std::find(last_->group.begin(), last_->group.end(), name) !=
          last_->group.end() &&
      (Clock::now() - last_->complete_at) < config_.escalation_window;

  core::OracleQuery query;
  query.tree = &tree_;
  query.failed_component = name;
  query.trace_now = trace_now().to_seconds();
  if (escalating) {
    query.escalation_level = last_->escalation_level + 1;
    query.previous_node = last_->node;
    restart.escalation_level = query.escalation_level;
    obs::instant(trace_now(), "recover", "rec.escalate", "posix",
                 {{"component", name},
                  {"level", std::to_string(query.escalation_level)}});
    obs::incr("rec.escalations");
    if (last_->node == tree_.root()) {
      RootHistory& history = root_history_[name];
      const auto now = Clock::now();
      if (history.count > 0 && now - history.last < config_.root_retry_window) {
        ++history.count;
      } else {
        history.count = 1;
      }
      history.last = now;
      if (history.count >= config_.max_root_restarts) {
        obs::instant(trace_now(), "recover", "rec.hard-failure", "posix",
                     {{"component", name},
                      {"root_restarts", std::to_string(history.count)}});
        obs::incr("rec.hard_failures");
        park(name, "persists after " + std::to_string(history.count) +
                       " full restarts");
        return;
      }
    }
  } else {
    // Fresh failure: a new chain; the attempt budget starts over.
    chain_attempts_ = 0;
  }
  // Attempt budget (ISSUE 2): a chain that keeps consuming restarts —
  // persisting failure or crash-looping startups — is parked, not retried
  // forever.
  if (config_.max_attempts_per_chain > 0 &&
      chain_attempts_ >= config_.max_attempts_per_chain) {
    obs::instant(trace_now(), "recover", "rec.hard-failure", "posix",
                 {{"component", name},
                  {"attempts", std::to_string(chain_attempts_)}});
    obs::incr("rec.hard_failures");
    park(name, "attempt budget of " +
                   std::to_string(config_.max_attempts_per_chain) +
                   " restarts exhausted");
    return;
  }
  ++chain_attempts_;
  restart.node = oracle_.choose(query);
  begin_restart(std::move(restart));
}

void PosixSupervisor::begin_restart(PendingRestart restart) {
  restart.group = tree_.group_components(restart.node);
  log_info("supervisor", "restarting cell " + tree_.cell(restart.node).label +
                             " (" + util::join(restart.group, ",") + ") for " +
                             restart.reported_worker);
  restart.trace_span = obs::begin_span(
      trace_now(), "recover", "rec.restart", "posix",
      {{"component", restart.reported_worker},
       {"cell", tree_.cell(restart.node).label},
       {"group", util::join(restart.group, ",")},
       {"escalation", std::to_string(restart.escalation_level)}});

  // Covering supersede (ISSUE 8): an escalated action whose cell strictly
  // covers in-flight actions absorbs them — their members get re-killed by
  // this spawn anyway, and two conflicting actions must never coexist.
  if (config_.parallel_recovery) absorb_conflicting(restart.node);

  // Same-cell backoff (ISSUE 2): a crash-looping cell is paced, not hammered.
  // The group stays masked while waiting; the spawn happens in
  // maybe_spawn_pending once spawn_at arrives.
  restart.spawn_at = Clock::now();
  if (config_.backoff_base.count() > 0) {
    CellBackoff& backoff = backoff_[restart.node];
    const auto now = Clock::now();
    // Gradual decay (ISSUE 8): each full idle decay interval forgets one
    // step of the streak, not the whole thing — a cell that keeps failing
    // slightly slower than the decay window no longer resets to zero.
    if (backoff.streak > 0 && config_.backoff_decay.count() > 0) {
      const auto steps =
          static_cast<int>((now - backoff.last) / config_.backoff_decay);
      backoff.streak = std::max(0, backoff.streak - steps);
    }
    if (backoff.streak > 0) {
      const double base = static_cast<double>(config_.backoff_base.count());
      // Clamped below at base (ISSUE 8): a sub-unity factor or decay step
      // must never pace a restart *faster* than the configured floor.
      const double wait_ms = std::max(
          base, std::min(static_cast<double>(config_.backoff_cap.count()),
                         base * std::pow(config_.backoff_factor,
                                         backoff.streak - 1)));
      const auto allowed = backoff.last + Millis{static_cast<long>(wait_ms)};
      if (allowed > now) {
        restart.spawn_at = allowed;
        ++backoffs_applied_;
        obs::instant(trace_now(), "recover", "rec.backoff", "posix",
                     {{"component", restart.reported_worker},
                      {"cell", tree_.cell(restart.node).label}});
        obs::incr("rec.backoffs");
        log_info("supervisor",
                 "backing off before restarting cell " +
                     tree_.cell(restart.node).label);
      }
    }
    ++backoff.streak;
    backoff.last = restart.spawn_at;
  }

  actions_.emplace(next_action_++, std::move(restart));
  maybe_spawn_pending();
}

void PosixSupervisor::absorb_conflicting(core::NodeId node) {
  for (auto it = actions_.begin(); it != actions_.end();) {
    PendingRestart& action = it->second;
    if (action.node != node && tree_.is_ancestor(node, action.node)) {
      log_info("supervisor", "absorbing in-flight restart of cell " +
                                 tree_.cell(action.node).label + " into " +
                                 tree_.cell(node).label);
      obs::instant(trace_now(), "recover", "rec.absorb", "posix",
                   {{"component", action.reported_worker},
                    {"cell", tree_.cell(action.node).label},
                    {"into", tree_.cell(node).label}});
      obs::incr("rec.absorbed");
      obs::end_span(trace_now(), action.trace_span, {{"outcome", "absorbed"}});
      ++absorbed_restarts_;
      it = actions_.erase(it);
    } else {
      ++it;
    }
  }
}

bool PosixSupervisor::defer_conflicts(const std::string& name) const {
  const auto cell = tree_.lowest_cell_covering(name);
  if (!cell.has_value()) return true;  // unknown worker: never dispatch
  for (const auto& [id, action] : actions_) {
    if (tree_.conflicts(*cell, action.node)) return true;
  }
  return false;
}

PosixSupervisor::TouchResult PosixSupervisor::touch_worker(
    const std::string& name) {
  if (!config_.traffic_driven) return TouchResult::kIdle;
  if (std::find(hard_failures_.begin(), hard_failures_.end(), name) !=
      hard_failures_.end()) {
    return TouchResult::kParked;
  }
  if (masked(name)) return TouchResult::kRestarting;
  const auto it = std::find_if(
      deferred_.begin(), deferred_.end(),
      [&](const DeferredFailure& entry) { return entry.name == name; });
  if (it == deferred_.end()) return TouchResult::kIdle;
  DeferredFailure entry = *it;
  deferred_.erase(it);
  entry.touched = true;
  ++touch_promotions_;
  obs::instant(trace_now(), "recover", "rec.touch", "posix",
               {{"component", name}});
  obs::incr("rec.touch_promotions");
  log_info(name, "client request touched deferred failure; promoting");
  if (defer_conflicts(name)) {
    // An in-flight ancestor/descendant still conflicts: promoted to the
    // front, dispatched by the drain once the conflict clears.
    deferred_.push_front(entry);
    return TouchResult::kPromoted;
  }
  act_on_failure(entry.name);
  return TouchResult::kPromoted;
}

void PosixSupervisor::maybe_drain_deferred() {
  if (deferred_.empty()) return;
  const auto now = Clock::now();
  std::deque<DeferredFailure> keep;
  bool lazy_fired = false;
  while (!deferred_.empty()) {
    DeferredFailure entry = deferred_.front();
    deferred_.pop_front();
    if (std::find(hard_failures_.begin(), hard_failures_.end(), entry.name) !=
        hard_failures_.end()) {
      continue;  // parked meanwhile
    }
    if (masked(entry.name)) continue;  // an in-flight action covers it now
    if (entry.touched) {
      if (defer_conflicts(entry.name)) {
        keep.push_back(entry);
        continue;
      }
      act_on_failure(entry.name);
      continue;
    }
    // Untouched: background pace, one dispatch per lazy_drain interval.
    if (lazy_fired || now < next_lazy_ || defer_conflicts(entry.name)) {
      keep.push_back(entry);
      continue;
    }
    lazy_fired = true;
    next_lazy_ = now + config_.lazy_drain;
    ++lazy_drains_;
    obs::incr("rec.lazy_drains");
    act_on_failure(entry.name);
  }
  deferred_ = std::move(keep);
}

void PosixSupervisor::maybe_spawn_pending() {
  const auto now = Clock::now();
  for (auto& [id, action] : actions_) {
    if (action.spawned || now < action.spawn_at) continue;
    for (const auto& member : action.group) {
      auto& worker = workers_.at(member);
      spawn_worker(worker);  // kills the old incarnation, starts fresh
    }
    action.spawned = true;
  }
}

void PosixSupervisor::maybe_finish_restarts() {
  // One action resolves per scan; resolving can mutate actions_ (an
  // escalated retry may absorb siblings), so rescan from the top after each.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = actions_.begin(); it != actions_.end(); ++it) {
      PendingRestart& action = it->second;
      if (!action.spawned) continue;
      const bool all_ready = std::all_of(
          action.group.begin(), action.group.end(), [this](const auto& name) {
            return workers_.at(name).state == WorkerState::kUp;
          });
      const bool any_dead = std::any_of(
          action.group.begin(), action.group.end(), [this](const auto& name) {
            return workers_.at(name).state == WorkerState::kDown;
          });
      if (any_dead) {
        // A member's startup timed out mid-restart: treat the whole action
        // as failed and let the escalation path rerun it one level up.
        const PendingRestart failed = action;
        obs::end_span(trace_now(), failed.trace_span,
                      {{"outcome", "member-startup-failed"}});
        LastRestart last;
        last.node = failed.node;
        last.group = failed.group;
        last.escalation_level = failed.escalation_level;
        last.complete_at = Clock::now();
        last_ = last;
        actions_.erase(it);
        on_failure(failed.reported_worker);
        progressed = true;
        break;
      }
      if (!all_ready) continue;

      PosixRecoveryRecord record;
      record.reported_worker = action.reported_worker;
      record.node = action.node;
      record.restarted = action.group;
      record.escalation_level = action.escalation_level;
      record.downtime = std::chrono::duration_cast<Millis>(Clock::now() -
                                                           action.reported_at);
      history_.push_back(record);
      obs::end_span(trace_now(), action.trace_span, {{"outcome", "cured"}});
      obs::incr("rec.restarts");
      obs::observe("recovery.action_seconds",
                   std::chrono::duration<double>(record.downtime).count());

      LastRestart last;
      last.node = action.node;
      last.group = action.group;
      last.escalation_level = action.escalation_level;
      last.complete_at = Clock::now();
      last_ = last;
      actions_.erase(it);
      progressed = true;
      break;
    }
  }
}

bool PosixSupervisor::worker_up(const std::string& name) const {
  const auto it = workers_.find(name);
  return it != workers_.end() && it->second.state == WorkerState::kUp;
}

bool PosixSupervisor::all_up() const {
  return std::all_of(workers_.begin(), workers_.end(), [](const auto& entry) {
    return entry.second.state == WorkerState::kUp;
  });
}

bool PosixSupervisor::kill_worker(const std::string& name) {
  const auto it = workers_.find(name);
  if (it == workers_.end()) {
    log_info("supervisor", "kill_worker: no such worker '" + name + "'");
    return false;
  }
  Worker& worker = it->second;
  if (worker.process.has_value()) worker.process->kill_hard();
  obs::instant(trace_now(), "fault", "fault.manifest", "posix",
               {{"manifest", name}, {"kind", "sigkill"}});
  obs::incr("faults.injected");
  // State stays kUp: the supervisor has not *detected* anything yet — that
  // is the failure detector's job (fail-silent semantics).
  return true;
}

bool PosixSupervisor::wedge_worker(const std::string& name) {
  const auto it = workers_.find(name);
  if (it == workers_.end()) {
    log_info("supervisor", "wedge_worker: no such worker '" + name + "'");
    return false;
  }
  Worker& worker = it->second;
  if (worker.process.has_value()) worker.process->write_line("WEDGE");
  obs::instant(trace_now(), "fault", "fault.manifest", "posix",
               {{"manifest", name}, {"kind", "wedge"}});
  obs::incr("faults.injected");
  return true;
}

}  // namespace mercury::posix
