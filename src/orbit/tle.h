// Two-line element (TLE) parsing.
//
// Ground stations get their ephemerides as NORAD two-line element sets; ses
// would load one per tracked satellite. We parse the standard 69-column
// format (with mod-10 checksum validation) into Keplerian elements for the
// two-body propagator. The drag/SGP4-specific fields (B*, ndot) are parsed
// and reported but not used by the propagation model — over the
// single-pass horizons Mercury cares about they are negligible
// (documented substitution; see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "orbit/elements.h"
#include "util/result.h"
#include "util/time.h"

namespace mercury::orbit {

struct Tle {
  std::string name;  ///< optional line 0 (satellite name), trimmed
  int catalog_number = 0;
  /// Epoch: two-digit year (57-99 => 19xx, 00-56 => 20xx) + fractional
  /// day-of-year.
  int epoch_year = 0;
  double epoch_day = 0.0;
  double inclination_deg = 0.0;
  double raan_deg = 0.0;
  double eccentricity = 0.0;
  double arg_perigee_deg = 0.0;
  double mean_anomaly_deg = 0.0;
  /// Mean motion, revolutions per day.
  double mean_motion_rev_day = 0.0;
  /// First derivative of mean motion /2, rev/day^2 (parsed, unused).
  double mean_motion_dot = 0.0;
  /// B* drag term, 1/earth radii (parsed, unused).
  double bstar = 0.0;
  std::uint32_t revolution_number = 0;

  /// Semi-major axis implied by the mean motion, km.
  double semi_major_axis_km() const;

  /// Keplerian elements with the given simulation-time epoch (the caller
  /// decides where the TLE epoch falls on the virtual timeline).
  KeplerianElements to_elements(util::TimePoint epoch) const;
};

/// Parse a TLE from two lines, or three when a name line precedes them.
/// Validates line numbers, column structure, and both checksums.
util::Result<Tle> parse_tle(std::string_view text);

/// The standard TLE line checksum: digits sum as themselves, '-' as 1, all
/// else 0; returns the mod-10 value of the first 68 columns.
int tle_checksum(std::string_view line);

}  // namespace mercury::orbit
