#include "orbit/frames.h"

#include <cmath>

#include "orbit/elements.h"

namespace mercury::orbit {

Geodetic Geodetic::from_degrees(double lat_deg, double lon_deg, double alt_km) {
  return Geodetic{deg_to_rad(lat_deg), deg_to_rad(lon_deg), alt_km};
}

double earth_rotation_angle(util::TimePoint t) {
  return wrap_two_pi(constants::kEarthRotationRadPerSec * t.to_seconds());
}

Vec3 eci_to_ecef(const Vec3& eci, util::TimePoint t) {
  const double theta = earth_rotation_angle(t);
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  // Rotation about +Z by -theta (frame rotates with the Earth).
  return Vec3{c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z};
}

Vec3 ecef_to_eci(const Vec3& ecef, util::TimePoint t) {
  const double theta = earth_rotation_angle(t);
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  return Vec3{c * ecef.x - s * ecef.y, s * ecef.x + c * ecef.y, ecef.z};
}

Vec3 geodetic_to_ecef(const Geodetic& g) {
  const double a = constants::kEarthRadiusKm;
  const double f = constants::kEarthFlattening;
  const double e2 = f * (2.0 - f);  // first eccentricity squared
  const double slat = std::sin(g.latitude_rad);
  const double clat = std::cos(g.latitude_rad);
  const double n = a / std::sqrt(1.0 - e2 * slat * slat);  // prime vertical radius
  return Vec3{(n + g.altitude_km) * clat * std::cos(g.longitude_rad),
              (n + g.altitude_km) * clat * std::sin(g.longitude_rad),
              (n * (1.0 - e2) + g.altitude_km) * slat};
}

LookAngles look_angles(const Geodetic& observer, const Vec3& target_eci_km,
                       const Vec3& target_velocity_eci_km_s, util::TimePoint t) {
  const Vec3 site_ecef = geodetic_to_ecef(observer);
  const Vec3 target_ecef = eci_to_ecef(target_eci_km, t);

  // Relative velocity in the rotating frame: v_ecef = R*(v_eci - omega x r).
  const Vec3 omega{0.0, 0.0, constants::kEarthRotationRadPerSec};
  const Vec3 v_rel_eci = target_velocity_eci_km_s - omega.cross(target_eci_km);
  const Vec3 v_ecef = eci_to_ecef(v_rel_eci, t);

  const Vec3 rho_ecef = target_ecef - site_ecef;

  // ECEF -> local ENU (east, north, up) at the observer.
  const double slat = std::sin(observer.latitude_rad);
  const double clat = std::cos(observer.latitude_rad);
  const double slon = std::sin(observer.longitude_rad);
  const double clon = std::cos(observer.longitude_rad);

  const auto to_enu = [&](const Vec3& v) {
    return Vec3{
        -slon * v.x + clon * v.y,
        -slat * clon * v.x - slat * slon * v.y + clat * v.z,
        clat * clon * v.x + clat * slon * v.y + slat * v.z,
    };
  };

  const Vec3 rho_enu = to_enu(rho_ecef);
  const Vec3 v_enu = to_enu(v_ecef);

  LookAngles look;
  look.range_km = rho_enu.norm();
  look.elevation_rad = std::asin(rho_enu.z / look.range_km);
  look.azimuth_rad = wrap_two_pi(std::atan2(rho_enu.x, rho_enu.y));
  look.range_rate_km_s = rho_enu.dot(v_enu) / look.range_km;
  return look;
}

}  // namespace mercury::orbit
