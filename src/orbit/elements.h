// Classical (Keplerian) orbital elements and physical constants.
//
// The ses component "calculates satellite position, radio frequencies, and
// antenna pointing angles" (paper §2.1). This module is the physics it runs
// on. Two-body propagation is accurate enough for a ground-station
// simulation over single passes (minutes); we deliberately omit J2/ drag
// perturbations, which matter over days, not over the ~15-minute passes the
// station tracks.
#pragma once

#include <numbers>

#include "util/time.h"

namespace mercury::orbit {

namespace constants {
/// Earth gravitational parameter, km^3/s^2 (WGS-84).
inline constexpr double kMuEarth = 398600.4418;
/// Earth equatorial radius, km (WGS-84).
inline constexpr double kEarthRadiusKm = 6378.137;
/// WGS-84 flattening.
inline constexpr double kEarthFlattening = 1.0 / 298.257223563;
/// Earth rotation rate, rad/s (sidereal).
inline constexpr double kEarthRotationRadPerSec = 7.2921158553e-5;
/// Second zonal harmonic (oblateness), dimensionless.
inline constexpr double kJ2 = 1.08262668e-3;
/// Speed of light, km/s.
inline constexpr double kSpeedOfLightKmPerSec = 299792.458;
}  // namespace constants

inline constexpr double deg_to_rad(double deg) {
  return deg * std::numbers::pi / 180.0;
}
inline constexpr double rad_to_deg(double rad) {
  return rad * 180.0 / std::numbers::pi;
}

/// Wrap an angle to [0, 2*pi).
double wrap_two_pi(double rad);
/// Wrap an angle to (-pi, pi].
double wrap_pi(double rad);

/// Classical orbital elements at a reference epoch.
struct KeplerianElements {
  double semi_major_axis_km = 0.0;
  double eccentricity = 0.0;       ///< [0, 1) — elliptical orbits only
  double inclination_rad = 0.0;
  double raan_rad = 0.0;           ///< right ascension of ascending node
  double arg_perigee_rad = 0.0;
  double mean_anomaly_rad = 0.0;   ///< at epoch
  util::TimePoint epoch;           ///< simulation time of the elements

  /// Mean motion, rad/s.
  double mean_motion_rad_per_sec() const;
  /// Orbital period.
  util::Duration period() const;
  /// Perigee/apogee altitude above the equatorial radius, km.
  double perigee_altitude_km() const;
  double apogee_altitude_km() const;

  /// Elements for a circular low-earth orbit at the given altitude and
  /// inclination — the regime of Opal/Sapphire, the satellites Mercury
  /// tracked.
  static KeplerianElements circular_leo(double altitude_km, double inclination_deg,
                                        double raan_deg = 0.0,
                                        double mean_anomaly_deg = 0.0);
};

}  // namespace mercury::orbit
