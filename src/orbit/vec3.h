// Minimal 3-vector for orbital mechanics.
#pragma once

#include <cmath>

namespace mercury::orbit {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double k) const { return {x * k, y * k, z * k}; }
  constexpr Vec3 operator/(double k) const { return {x / k, y / k, z / k}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }
};

constexpr Vec3 operator*(double k, const Vec3& v) { return v * k; }

}  // namespace mercury::orbit
