#include "orbit/doppler.h"

#include "orbit/elements.h"

namespace mercury::orbit {

double doppler_shifted_hz(double nominal_hz, double range_rate_km_s) {
  // First-order Doppler: f_rx = f_tx * (1 - v/c). v << c for LEO (~7 km/s).
  return nominal_hz * (1.0 - range_rate_km_s / constants::kSpeedOfLightKmPerSec);
}

double doppler_offset_hz(double nominal_hz, double range_rate_km_s) {
  return doppler_shifted_hz(nominal_hz, range_rate_km_s) - nominal_hz;
}

double uplink_precompensated_hz(double nominal_hz, double range_rate_km_s) {
  return nominal_hz / (1.0 - range_rate_km_s / constants::kSpeedOfLightKmPerSec);
}

}  // namespace mercury::orbit
