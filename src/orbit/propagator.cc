#include "orbit/propagator.h"

#include <cassert>
#include <cmath>

namespace mercury::orbit {

double wrap_two_pi(double rad) {
  const double two_pi = 2.0 * std::numbers::pi;
  double w = std::fmod(rad, two_pi);
  if (w < 0.0) w += two_pi;
  return w;
}

double wrap_pi(double rad) {
  double w = wrap_two_pi(rad);
  if (w > std::numbers::pi) w -= 2.0 * std::numbers::pi;
  return w;
}

double KeplerianElements::mean_motion_rad_per_sec() const {
  const double a = semi_major_axis_km;
  return std::sqrt(constants::kMuEarth / (a * a * a));
}

util::Duration KeplerianElements::period() const {
  return util::Duration::seconds(2.0 * std::numbers::pi / mean_motion_rad_per_sec());
}

double KeplerianElements::perigee_altitude_km() const {
  return semi_major_axis_km * (1.0 - eccentricity) - constants::kEarthRadiusKm;
}

double KeplerianElements::apogee_altitude_km() const {
  return semi_major_axis_km * (1.0 + eccentricity) - constants::kEarthRadiusKm;
}

KeplerianElements KeplerianElements::circular_leo(double altitude_km,
                                                  double inclination_deg,
                                                  double raan_deg,
                                                  double mean_anomaly_deg) {
  KeplerianElements e;
  e.semi_major_axis_km = constants::kEarthRadiusKm + altitude_km;
  e.eccentricity = 0.0;
  e.inclination_rad = deg_to_rad(inclination_deg);
  e.raan_rad = deg_to_rad(raan_deg);
  e.arg_perigee_rad = 0.0;
  e.mean_anomaly_rad = deg_to_rad(mean_anomaly_deg);
  e.epoch = util::TimePoint::origin();
  return e;
}

double solve_kepler(double mean_anomaly_rad, double eccentricity, double tolerance,
                    int max_iterations) {
  assert(eccentricity >= 0.0 && eccentricity < 1.0);
  const double m = wrap_two_pi(mean_anomaly_rad);
  // Standard starting guess: E0 = M for small e, E0 = pi for e near 1.
  double e_anom = eccentricity < 0.8 ? m : std::numbers::pi;
  for (int i = 0; i < max_iterations; ++i) {
    const double f = e_anom - eccentricity * std::sin(e_anom) - m;
    const double fp = 1.0 - eccentricity * std::cos(e_anom);
    const double step = f / fp;
    e_anom -= step;
    if (std::abs(step) < tolerance) break;
  }
  return e_anom;
}

double true_anomaly_from_eccentric(double eccentric_anomaly_rad,
                                   double eccentricity) {
  const double half = eccentric_anomaly_rad / 2.0;
  return 2.0 * std::atan2(std::sqrt(1.0 + eccentricity) * std::sin(half),
                          std::sqrt(1.0 - eccentricity) * std::cos(half));
}

Propagator::Propagator(KeplerianElements elements, PerturbationModel model)
    : elements_(elements), model_(model) {
  assert(elements_.semi_major_axis_km > constants::kEarthRadiusKm);
  assert(elements_.eccentricity >= 0.0 && elements_.eccentricity < 1.0);

  if (model_ == PerturbationModel::kJ2Secular) {
    // Standard first-order J2 secular rates (e.g. Vallado eq. 9-38):
    //   dRAAN/dt = -3/2 n J2 (Re/p)^2 cos i
    //   dargp/dt =  3/4 n J2 (Re/p)^2 (5 cos^2 i - 1)
    //   dM/dt    +=  3/4 n J2 (Re/p)^2 sqrt(1-e^2) (3 cos^2 i - 1)
    const double n = elements_.mean_motion_rad_per_sec();
    const double p = elements_.semi_major_axis_km *
                     (1.0 - elements_.eccentricity * elements_.eccentricity);
    const double re_over_p2 =
        (constants::kEarthRadiusKm / p) * (constants::kEarthRadiusKm / p);
    const double cos_i = std::cos(elements_.inclination_rad);
    const double base = n * constants::kJ2 * re_over_p2;
    raan_rate_ = -1.5 * base * cos_i;
    argp_rate_ = 0.75 * base * (5.0 * cos_i * cos_i - 1.0);
    mean_rate_correction_ =
        0.75 * base *
        std::sqrt(1.0 - elements_.eccentricity * elements_.eccentricity) *
        (3.0 * cos_i * cos_i - 1.0);
  }
}

StateVector Propagator::state_at(util::TimePoint t) const {
  const KeplerianElements& el = elements_;
  const double dt = (t - el.epoch).to_seconds();
  const double mean_anomaly =
      el.mean_anomaly_rad + (el.mean_motion_rad_per_sec() + mean_rate_correction_) * dt;
  const double ecc_anomaly = solve_kepler(mean_anomaly, el.eccentricity);
  const double true_anomaly = true_anomaly_from_eccentric(ecc_anomaly, el.eccentricity);

  const double a = el.semi_major_axis_km;
  const double e = el.eccentricity;
  const double p = a * (1.0 - e * e);  // semi-latus rectum
  const double r = p / (1.0 + e * std::cos(true_anomaly));

  // Perifocal (PQW) frame: P toward perigee, Q 90 deg ahead in-plane.
  const Vec3 r_pqw{r * std::cos(true_anomaly), r * std::sin(true_anomaly), 0.0};
  const double vf = std::sqrt(constants::kMuEarth / p);
  const Vec3 v_pqw{-vf * std::sin(true_anomaly), vf * (e + std::cos(true_anomaly)),
                   0.0};

  // Rotate PQW -> ECI with the 3-1-3 sequence (RAAN, inclination, arg
  // perigee), with the J2 secular drifts applied to the node and perigee.
  const double raan = el.raan_rad + raan_rate_ * dt;
  const double argp = el.arg_perigee_rad + argp_rate_ * dt;
  const double co = std::cos(raan);
  const double so = std::sin(raan);
  const double ci = std::cos(el.inclination_rad);
  const double si = std::sin(el.inclination_rad);
  const double cw = std::cos(argp);
  const double sw = std::sin(argp);

  const double m00 = co * cw - so * sw * ci;
  const double m01 = -co * sw - so * cw * ci;
  const double m02 = so * si;
  const double m10 = so * cw + co * sw * ci;
  const double m11 = -so * sw + co * cw * ci;
  const double m12 = -co * si;
  const double m20 = sw * si;
  const double m21 = cw * si;
  const double m22 = ci;

  const auto rotate = [&](const Vec3& v) {
    return Vec3{m00 * v.x + m01 * v.y + m02 * v.z,
                m10 * v.x + m11 * v.y + m12 * v.z,
                m20 * v.x + m21 * v.y + m22 * v.z};
  };

  return StateVector{rotate(r_pqw), rotate(v_pqw)};
}

double Propagator::radius_at(util::TimePoint t) const {
  return state_at(t).position_km.norm();
}

}  // namespace mercury::orbit
