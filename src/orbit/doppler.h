// Doppler shift for radio tuning.
//
// rtu "tunes the radios during a satellite pass" (paper §2.1): as the
// satellite approaches and recedes, the apparent frequency sweeps across
// several kHz at UHF; the tuner must follow it to keep the 38.4 kbps link.
#pragma once

#include "orbit/frames.h"

namespace mercury::orbit {

/// Doppler-shifted receive frequency for a carrier at `nominal_hz` given the
/// range rate (positive = receding => shifted down).
double doppler_shifted_hz(double nominal_hz, double range_rate_km_s);

/// Shift relative to nominal, Hz (negative when receding).
double doppler_offset_hz(double nominal_hz, double range_rate_km_s);

/// Uplink pre-compensation: the frequency to transmit so the satellite
/// receives `nominal_hz`.
double uplink_precompensated_hz(double nominal_hz, double range_rate_km_s);

}  // namespace mercury::orbit
