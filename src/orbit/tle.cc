#include "orbit/tle.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "util/strings.h"

namespace mercury::orbit {

using util::Error;
using util::Result;

namespace {

/// Field slice by 1-based inclusive TLE column convention.
std::string_view columns(std::string_view line, int first, int last) {
  return line.substr(static_cast<std::size_t>(first - 1),
                     static_cast<std::size_t>(last - first + 1));
}

Result<double> parse_double_field(std::string_view field, std::string_view what) {
  const std::string trimmed{util::trim(field)};
  if (trimmed.empty()) return Error("empty " + std::string{what} + " field");
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Error("bad " + std::string{what} + " field '" + trimmed + "'");
  }
  return value;
}

Result<long> parse_int_field(std::string_view field, std::string_view what) {
  auto value = parse_double_field(field, what);
  if (!value.ok()) return value.error();
  return static_cast<long>(value.value());
}

/// TLE "implied decimal point" exponent notation: " 12345-4" => 0.12345e-4,
/// leading sign allowed.
Result<double> parse_implied_exponent(std::string_view field,
                                      std::string_view what) {
  const std::string trimmed{util::trim(field)};
  if (trimmed.empty() || trimmed == "00000-0" || trimmed == "00000+0") return 0.0;
  std::size_t pos = 0;
  double sign = 1.0;
  if (trimmed[pos] == '-') {
    sign = -1.0;
    ++pos;
  } else if (trimmed[pos] == '+') {
    ++pos;
  }
  // Mantissa digits until the exponent sign.
  std::string mantissa_digits;
  while (pos < trimmed.size() && std::isdigit(static_cast<unsigned char>(trimmed[pos]))) {
    mantissa_digits += trimmed[pos++];
  }
  if (mantissa_digits.empty() || pos >= trimmed.size()) {
    return Error("bad " + std::string{what} + " field '" + trimmed + "'");
  }
  const char exp_sign = trimmed[pos++];
  if (exp_sign != '-' && exp_sign != '+') {
    return Error("bad exponent in " + std::string{what});
  }
  if (pos >= trimmed.size() ||
      !std::isdigit(static_cast<unsigned char>(trimmed[pos]))) {
    return Error("bad exponent digits in " + std::string{what});
  }
  const int exponent = trimmed[pos] - '0';
  // The exponent is exactly one digit; anything after it ("12345-3x") means
  // a corrupted or misaligned field, not a valid value.
  if (++pos != trimmed.size()) {
    return Error("trailing characters in " + std::string{what} + " field '" +
                 trimmed + "'");
  }
  const double mantissa =
      std::stod("0." + mantissa_digits);
  return sign * mantissa * std::pow(10.0, exp_sign == '-' ? -exponent : exponent);
}

}  // namespace

int tle_checksum(std::string_view line) {
  int sum = 0;
  const std::size_t limit = std::min<std::size_t>(line.size(), 68);
  for (std::size_t i = 0; i < limit; ++i) {
    const char c = line[i];
    if (std::isdigit(static_cast<unsigned char>(c))) sum += c - '0';
    if (c == '-') sum += 1;
  }
  return sum % 10;
}

Result<Tle> parse_tle(std::string_view text) {
  std::vector<std::string> lines;
  for (const auto& raw : util::split(text, '\n')) {
    if (!util::trim(raw).empty()) lines.emplace_back(raw);
  }
  Tle tle;
  std::size_t first = 0;
  if (lines.size() == 3) {
    tle.name = std::string{util::trim(lines[0])};
    first = 1;
  } else if (lines.size() != 2) {
    return Error("TLE needs 2 lines (or 3 with a name line), got " +
                 std::to_string(lines.size()));
  }
  const std::string& line1 = lines[first];
  const std::string& line2 = lines[first + 1];
  if (line1.size() < 69 || line2.size() < 69) {
    return Error("TLE lines must be 69 columns");
  }
  if (line1[0] != '1') return Error("line 1 must start with '1'");
  if (line2[0] != '2') return Error("line 2 must start with '2'");

  for (const auto* line : {&line1, &line2}) {
    const int expected = (*line)[68] - '0';
    const int actual = tle_checksum(*line);
    if (expected != actual) {
      return Error("checksum mismatch on line " + std::string(1, (*line)[0]) +
                   ": expected " + std::to_string(expected) + ", computed " +
                   std::to_string(actual));
    }
  }

  // --- Line 1 -------------------------------------------------------------
  {
    auto catalog = parse_int_field(columns(line1, 3, 7), "catalog number");
    if (!catalog.ok()) return catalog.error();
    tle.catalog_number = static_cast<int>(catalog.value());

    auto year = parse_int_field(columns(line1, 19, 20), "epoch year");
    if (!year.ok()) return year.error();
    tle.epoch_year =
        static_cast<int>(year.value() >= 57 ? 1900 + year.value() : 2000 + year.value());

    auto day = parse_double_field(columns(line1, 21, 32), "epoch day");
    if (!day.ok()) return day.error();
    tle.epoch_day = day.value();

    auto ndot = parse_double_field(columns(line1, 34, 43), "mean motion dot");
    if (!ndot.ok()) return ndot.error();
    tle.mean_motion_dot = ndot.value();

    auto bstar = parse_implied_exponent(columns(line1, 54, 61), "bstar");
    if (!bstar.ok()) return bstar.error();
    tle.bstar = bstar.value();
  }

  // --- Line 2 -------------------------------------------------------------
  {
    auto catalog = parse_int_field(columns(line2, 3, 7), "catalog number");
    if (!catalog.ok()) return catalog.error();
    if (static_cast<int>(catalog.value()) != tle.catalog_number) {
      return Error("catalog numbers differ between lines");
    }

    auto inclination = parse_double_field(columns(line2, 9, 16), "inclination");
    if (!inclination.ok()) return inclination.error();
    tle.inclination_deg = inclination.value();
    if (tle.inclination_deg < 0.0 || tle.inclination_deg > 180.0) {
      return Error("inclination out of range");
    }

    auto raan = parse_double_field(columns(line2, 18, 25), "RAAN");
    if (!raan.ok()) return raan.error();
    tle.raan_deg = raan.value();

    auto ecc = parse_double_field(columns(line2, 27, 33), "eccentricity");
    if (!ecc.ok()) return ecc.error();
    tle.eccentricity = ecc.value() / 1e7;  // implied leading decimal point
    if (tle.eccentricity < 0.0 || tle.eccentricity >= 1.0) {
      return Error("eccentricity out of range");
    }

    auto argp = parse_double_field(columns(line2, 35, 42), "argument of perigee");
    if (!argp.ok()) return argp.error();
    tle.arg_perigee_deg = argp.value();

    auto mean_anomaly = parse_double_field(columns(line2, 44, 51), "mean anomaly");
    if (!mean_anomaly.ok()) return mean_anomaly.error();
    tle.mean_anomaly_deg = mean_anomaly.value();

    auto mean_motion = parse_double_field(columns(line2, 53, 63), "mean motion");
    if (!mean_motion.ok()) return mean_motion.error();
    tle.mean_motion_rev_day = mean_motion.value();
    if (tle.mean_motion_rev_day <= 0.0) return Error("mean motion must be positive");

    auto rev = parse_int_field(columns(line2, 64, 68), "revolution number");
    if (!rev.ok()) return rev.error();
    tle.revolution_number = static_cast<std::uint32_t>(rev.value());
  }
  return tle;
}

double Tle::semi_major_axis_km() const {
  const double n_rad_s =
      mean_motion_rev_day * 2.0 * std::numbers::pi / 86400.0;
  return std::cbrt(constants::kMuEarth / (n_rad_s * n_rad_s));
}

KeplerianElements Tle::to_elements(util::TimePoint epoch) const {
  KeplerianElements elements;
  elements.semi_major_axis_km = semi_major_axis_km();
  elements.eccentricity = eccentricity;
  elements.inclination_rad = deg_to_rad(inclination_deg);
  elements.raan_rad = deg_to_rad(raan_deg);
  elements.arg_perigee_rad = deg_to_rad(arg_perigee_deg);
  elements.mean_anomaly_rad = deg_to_rad(mean_anomaly_deg);
  elements.epoch = epoch;
  return elements;
}

}  // namespace mercury::orbit
