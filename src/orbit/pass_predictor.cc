#include "orbit/pass_predictor.h"

#include <cassert>

namespace mercury::orbit {
namespace {

using util::Duration;
using util::TimePoint;

/// Bisect for the visibility transition in (lo, hi]; `rising` selects which
/// crossing. Precondition: visible(lo) != visible(hi).
TimePoint refine_crossing(const GroundStation& station, const Propagator& satellite,
                          TimePoint lo, TimePoint hi, Duration tolerance) {
  const bool lo_visible = station.visible(satellite, lo);
  while (hi - lo > tolerance) {
    const TimePoint mid = lo + (hi - lo) / 2.0;
    if (station.visible(satellite, mid) == lo_visible) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// Golden-section search for peak elevation in [lo, hi].
void find_max_elevation(const GroundStation& station, const Propagator& satellite,
                        TimePoint lo, TimePoint hi, Pass& pass) {
  constexpr double kInvPhi = 0.6180339887498949;
  TimePoint a = lo;
  TimePoint b = hi;
  TimePoint x1 = b - (b - a) * kInvPhi;
  TimePoint x2 = a + (b - a) * kInvPhi;
  double f1 = station.look_at(satellite, x1).elevation_rad;
  double f2 = station.look_at(satellite, x2).elevation_rad;
  while (b - a > Duration::millis(100.0)) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + (b - a) * kInvPhi;
      f2 = station.look_at(satellite, x2).elevation_rad;
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - (b - a) * kInvPhi;
      f1 = station.look_at(satellite, x1).elevation_rad;
    }
  }
  pass.max_elevation_time = a + (b - a) / 2.0;
  pass.max_elevation_rad =
      station.look_at(satellite, pass.max_elevation_time).elevation_rad;
}

}  // namespace

std::vector<Pass> predict_passes(const GroundStation& station,
                                 const Propagator& satellite, TimePoint start,
                                 TimePoint end, const PassPredictionConfig& config) {
  assert(end > start);
  std::vector<Pass> passes;

  bool was_visible = station.visible(satellite, start);
  TimePoint prev = start;
  TimePoint aos = start;  // valid only while inside a pass
  bool in_pass = was_visible;

  for (TimePoint t = start + config.coarse_step;; t += config.coarse_step) {
    if (t > end) t = end;
    const bool now_visible = station.visible(satellite, t);
    if (now_visible != was_visible) {
      const TimePoint crossing = refine_crossing(station, satellite, prev, t,
                                                 config.refine_tolerance);
      if (now_visible) {
        aos = crossing;
        in_pass = true;
      } else if (in_pass) {
        Pass pass;
        pass.aos = aos;
        pass.los = crossing;
        find_max_elevation(station, satellite, pass.aos, pass.los, pass);
        passes.push_back(pass);
        in_pass = false;
      }
      was_visible = now_visible;
    }
    prev = t;
    if (t == end) break;
  }

  // A pass still open at the horizon of the scan is truncated at `end`.
  if (in_pass && !was_visible) in_pass = false;
  if (in_pass) {
    Pass pass;
    pass.aos = aos;
    pass.los = end;
    find_max_elevation(station, satellite, pass.aos, pass.los, pass);
    passes.push_back(pass);
  }
  return passes;
}

}  // namespace mercury::orbit
