// Ground-station geometry: where the antennas are and what they can see.
#pragma once

#include <string>

#include "orbit/frames.h"
#include "orbit/propagator.h"
#include "util/time.h"

namespace mercury::orbit {

/// A fixed ground installation with tracking antennas.
class GroundStation {
 public:
  GroundStation(std::string name, Geodetic location,
                double min_elevation_deg = 10.0);

  const std::string& name() const { return name_; }
  const Geodetic& location() const { return location_; }
  double min_elevation_rad() const { return min_elevation_rad_; }

  /// Look angles from this station to the satellite at time `t`.
  LookAngles look_at(const Propagator& satellite, util::TimePoint t) const;

  /// True when the satellite is above the station's elevation mask.
  bool visible(const Propagator& satellite, util::TimePoint t) const;

  /// Stanford's station (paper's Mercury installation, approximate).
  static GroundStation stanford();

 private:
  std::string name_;
  Geodetic location_;
  double min_elevation_rad_;
};

}  // namespace mercury::orbit
