// Satellite pass prediction.
//
// A "pass" is the window when the satellite is above the station's elevation
// mask — when Mercury collects telemetry (paper §1: "When a satellite
// appears in the patch of sky whose angle is subtended by the antenna...").
// Prediction scans the elevation profile with a coarse step and refines the
// AOS/LOS crossings by bisection.
#pragma once

#include <vector>

#include "orbit/ground_station.h"
#include "orbit/propagator.h"
#include "util/time.h"

namespace mercury::orbit {

struct Pass {
  util::TimePoint aos;           ///< acquisition of signal (rise above mask)
  util::TimePoint los;           ///< loss of signal (set below mask)
  util::TimePoint max_elevation_time;
  double max_elevation_rad = 0.0;

  util::Duration duration() const { return los - aos; }
};

struct PassPredictionConfig {
  /// Coarse scan step; must be well below the pass duration (~minutes).
  util::Duration coarse_step = util::Duration::seconds(30.0);
  /// Bisection refinement tolerance on AOS/LOS times.
  util::Duration refine_tolerance = util::Duration::millis(50.0);
};

/// All passes of `satellite` over `station` in [start, end).
std::vector<Pass> predict_passes(const GroundStation& station,
                                 const Propagator& satellite,
                                 util::TimePoint start, util::TimePoint end,
                                 const PassPredictionConfig& config = {});

}  // namespace mercury::orbit
