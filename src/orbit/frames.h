// Reference-frame transforms: ECI <-> ECEF, geodetic <-> ECEF, topocentric.
//
// Simulation time t=0 is defined to coincide with GMST = 0 (prime meridian
// aligned with the vernal equinox), so the Earth rotation angle is simply
// omega_earth * t. This is a simulation convention, not an astronomical
// ephemeris — the station tracks relative geometry, which is unaffected.
#pragma once

#include "orbit/vec3.h"
#include "util/time.h"

namespace mercury::orbit {

/// Geodetic coordinates on the WGS-84 ellipsoid.
struct Geodetic {
  double latitude_rad = 0.0;
  double longitude_rad = 0.0;
  double altitude_km = 0.0;

  static Geodetic from_degrees(double lat_deg, double lon_deg, double alt_km);
};

/// Earth rotation angle at simulation time `t`, radians in [0, 2*pi).
double earth_rotation_angle(util::TimePoint t);

/// Rotate an inertial (ECI) vector into the Earth-fixed (ECEF) frame.
Vec3 eci_to_ecef(const Vec3& eci, util::TimePoint t);
/// Inverse rotation.
Vec3 ecef_to_eci(const Vec3& ecef, util::TimePoint t);

/// Geodetic position -> ECEF, km (WGS-84 ellipsoid).
Vec3 geodetic_to_ecef(const Geodetic& g);

/// Topocentric look angles from an observer to a target.
struct LookAngles {
  double azimuth_rad = 0.0;    ///< clockwise from north, [0, 2*pi)
  double elevation_rad = 0.0;  ///< above the local horizon, [-pi/2, pi/2]
  double range_km = 0.0;
  double range_rate_km_s = 0.0;  ///< positive = receding
};

/// Look angles from a geodetic observer to an ECI target state at time `t`.
LookAngles look_angles(const Geodetic& observer, const Vec3& target_eci_km,
                       const Vec3& target_velocity_eci_km_s, util::TimePoint t);

}  // namespace mercury::orbit
