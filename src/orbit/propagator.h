// Two-body Keplerian propagation.
#pragma once

#include "orbit/elements.h"
#include "orbit/vec3.h"
#include "util/time.h"

namespace mercury::orbit {

/// Position (km) and velocity (km/s) in the Earth-centered inertial frame.
struct StateVector {
  Vec3 position_km;
  Vec3 velocity_km_s;
};

/// Solve Kepler's equation M = E - e*sin(E) for the eccentric anomaly E by
/// Newton iteration. `mean_anomaly` in radians; converges for e in [0, 1).
double solve_kepler(double mean_anomaly_rad, double eccentricity,
                    double tolerance = 1e-12, int max_iterations = 64);

/// True anomaly from eccentric anomaly.
double true_anomaly_from_eccentric(double eccentric_anomaly_rad, double eccentricity);

/// Propagation fidelity. Two-body suffices for single passes (minutes);
/// the J2 secular model adds the dominant oblateness drift — RAAN
/// regression, apsidal rotation, mean-motion correction — which matters
/// when predicting passes days ahead.
enum class PerturbationModel { kTwoBody, kJ2Secular };

class Propagator {
 public:
  explicit Propagator(KeplerianElements elements,
                      PerturbationModel model = PerturbationModel::kTwoBody);

  const KeplerianElements& elements() const { return elements_; }
  PerturbationModel model() const { return model_; }

  /// Inertial state at simulation time `t`.
  StateVector state_at(util::TimePoint t) const;

  /// Geocentric distance at time `t`, km.
  double radius_at(util::TimePoint t) const;

  /// J2 secular rates for these elements, rad/s (zero under two-body).
  double raan_rate_rad_s() const { return raan_rate_; }
  double arg_perigee_rate_rad_s() const { return argp_rate_; }
  double mean_anomaly_rate_correction_rad_s() const { return mean_rate_correction_; }

 private:
  KeplerianElements elements_;
  PerturbationModel model_;
  double raan_rate_ = 0.0;
  double argp_rate_ = 0.0;
  double mean_rate_correction_ = 0.0;
};

}  // namespace mercury::orbit
