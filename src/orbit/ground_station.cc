#include "orbit/ground_station.h"

namespace mercury::orbit {

GroundStation::GroundStation(std::string name, Geodetic location,
                             double min_elevation_deg)
    : name_(std::move(name)),
      location_(location),
      min_elevation_rad_(deg_to_rad(min_elevation_deg)) {}

LookAngles GroundStation::look_at(const Propagator& satellite,
                                  util::TimePoint t) const {
  const StateVector state = satellite.state_at(t);
  return look_angles(location_, state.position_km, state.velocity_km_s, t);
}

bool GroundStation::visible(const Propagator& satellite, util::TimePoint t) const {
  return look_at(satellite, t).elevation_rad >= min_elevation_rad_;
}

GroundStation GroundStation::stanford() {
  return GroundStation("stanford", Geodetic::from_degrees(37.4275, -122.1697, 0.03),
                       /*min_elevation_deg=*/10.0);
}

}  // namespace mercury::orbit
