#include "core/assumptions.h"

#include <algorithm>

namespace mercury::core {

AssumptionReport check_a_cure(const RestartTree& tree, const SystemModel& model) {
  AssumptionReport report;
  const auto all = tree.all_components();
  for (const auto& failure : model.failure_classes) {
    for (const auto& member : failure.cure_set) {
      if (!std::binary_search(all.begin(), all.end(), member)) {
        report.holds = false;
        report.violations.push_back("failure at " + failure.manifest +
                                    " needs restart of '" + member +
                                    "', which the tree cannot restart");
      }
    }
  }
  return report;
}

AssumptionReport check_a_independent(const RestartTree& tree,
                                     const SystemModel& model) {
  AssumptionReport report;
  for (const auto& pair : model.coupled_pairs) {
    const auto cell_a = tree.find_component(pair.a);
    const auto cell_b = tree.find_component(pair.b);
    if (!cell_a || !cell_b) continue;  // a side is absent (e.g. fused)
    if (*cell_a == *cell_b) continue;  // consolidated: restart together
    report.holds = false;
    report.violations.push_back(
        "restarting " + pair.a + "'s cell alone wedges " + pair.b +
        " (startup resynchronization); cells " + tree.cell(*cell_a).label +
        " and " + tree.cell(*cell_b).label + " are separate");
  }
  return report;
}

AssumptionReport check_a_oracle(double oracle_p_low, double oracle_p_high) {
  AssumptionReport report;
  if (oracle_p_low > 0.0 || oracle_p_high > 0.0) {
    report.holds = false;
    report.violations.push_back(
        "oracle guesses wrong with probability " +
        std::to_string(oracle_p_low + oracle_p_high) +
        "; the minimal restart policy is not guaranteed");
  }
  return report;
}

AssumptionReport check_a_entire(bool has_functional_redundancy) {
  AssumptionReport report;
  if (has_functional_redundancy) {
    report.holds = false;
    report.violations.push_back(
        "functional redundancy present: a component failure need not take "
        "the whole system down");
  }
  return report;
}

}  // namespace mercury::core
