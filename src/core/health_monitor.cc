#include "core/health_monitor.h"

#include <algorithm>

#include "util/log.h"
#include "util/strings.h"

namespace mercury::core {

using util::LogLevel;
using util::LogLine;

HealthMonitor::HealthMonitor(sim::Simulator& sim, bus::MessageBus& bus,
                             std::string endpoint, HealthPolicy policy)
    : sim_(sim), bus_(bus), endpoint_(std::move(endpoint)), policy_(policy) {}

HealthMonitor::~HealthMonitor() = default;

void HealthMonitor::start() {
  reattach();
  retry_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, "hm.retry", policy_.retry_period, [this] { drain_pending(); });
  retry_task_->start();
}

void HealthMonitor::reattach() {
  bus_.attach(endpoint_,
              [this](const msg::Message& message) { on_message(message); });
}

void HealthMonitor::set_rejuvenator(
    std::function<bool(const std::string&)> rejuvenator) {
  rejuvenator_ = std::move(rejuvenator);
}

void HealthMonitor::set_maintenance_window(std::function<bool()> window_open) {
  window_open_ = std::move(window_open);
}

void HealthMonitor::set_hard_failure_handler(
    std::function<void(const std::string&)> handler) {
  hard_handler_ = std::move(handler);
}

std::optional<HealthBeacon> HealthMonitor::latest(
    const std::string& component) const {
  const auto it = components_.find(component);
  if (it == components_.end()) return std::nullopt;
  return it->second.latest;
}

void HealthMonitor::on_message(const msg::Message& message) {
  auto beacon = decode_beacon(message);
  if (!beacon.ok()) return;  // not a beacon (or malformed): ignore
  ++beacons_received_;

  ComponentState& state = components_[beacon.value().component];
  if (beacon.value().warnings.empty()) {
    state.consecutive_warning_beacons = 0;
  } else {
    ++state.consecutive_warning_beacons;
  }
  state.latest = std::move(beacon).value();
  evaluate(state.latest->component, state);
}

void HealthMonitor::evaluate(const std::string& component, ComponentState& state) {
  const HealthBeacon& beacon = *state.latest;

  if (beacon.hard_failure_suspected) {
    // Restarting cannot recover from a hard failure in hardware (§7):
    // surface it to the operator path instead of rejuvenating.
    if (std::find(hard_reports_.begin(), hard_reports_.end(), component) ==
        hard_reports_.end()) {
      hard_reports_.push_back(component);
      LogLine(LogLevel::kError, sim_.now(), "hm")
          << component << " reports a suspected hard failure";
      if (hard_handler_) hard_handler_(component);
    }
    return;
  }

  bool degraded = false;
  std::string reason;
  if (beacon.memory_mb > policy_.memory_limit_mb) {
    degraded = true;
    reason = "memory " + util::format_fixed(beacon.memory_mb, 1) + " MB";
  } else if (beacon.queue_depth > policy_.queue_limit) {
    degraded = true;
    reason = "queue depth " + util::format_fixed(beacon.queue_depth, 0);
  } else if (policy_.act_on_failed_self_check &&
             (!beacon.connectivity_ok || !beacon.consistency_ok)) {
    degraded = true;
    reason = !beacon.connectivity_ok ? "connectivity check failed"
                                     : "consistency check failed";
  } else if (state.consecutive_warning_beacons >=
             policy_.warning_beacons_before_action) {
    degraded = true;
    reason = std::to_string(state.consecutive_warning_beacons) +
             " consecutive warning beacons";
  }
  if (!degraded) return;

  if (sim_.now() - state.last_rejuvenation < policy_.min_spacing) return;
  LogLine(LogLevel::kInfo, sim_.now(), "hm")
      << component << " degraded (" << reason << "); requesting rejuvenation";
  request(component, state);
}

void HealthMonitor::request(const std::string& component, ComponentState& state) {
  if (!window_open_()) {
    if (!state.pending) {
      state.pending = true;
      ++deferred_;
      LogLine(LogLevel::kInfo, sim_.now(), "hm")
          << "maintenance window closed; deferring " << component
          << " rejuvenation (§5.2: planned downtime waits for cheap time)";
    }
    return;
  }
  if (rejuvenator_ && !rejuvenator_(component)) {
    // Recoverer busy with reactive work; retry shortly.
    state.pending = true;
    return;
  }
  state.pending = false;
  state.last_rejuvenation = sim_.now();
  ++rejuvenations_;
}

void HealthMonitor::drain_pending() {
  if (!window_open_()) return;
  for (auto& [component, state] : components_) {
    if (state.pending && sim_.now() - state.last_rejuvenation >= policy_.min_spacing) {
      request(component, state);
    }
  }
}

}  // namespace mercury::core
