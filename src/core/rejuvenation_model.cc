#include "core/rejuvenation_model.h"

#include <array>
#include <cassert>
#include <cmath>

namespace mercury::core {
namespace {

constexpr int kFresh = 0;
constexpr int kAged = 1;
constexpr int kRejuvenating = 2;
constexpr int kRepairing = 3;
constexpr int kStates = 4;

/// Solve the dense linear system A x = b by Gaussian elimination with
/// partial pivoting. Small fixed size; no library dependency.
std::array<double, kStates> solve_linear(
    std::array<std::array<double, kStates>, kStates> a,
    std::array<double, kStates> b) {
  for (int col = 0; col < kStates; ++col) {
    int pivot = col;
    for (int row = col + 1; row < kStates; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    assert(std::abs(a[col][col]) > 1e-300 && "singular generator matrix");
    for (int row = col + 1; row < kStates; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (int k = col; k < kStates; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::array<double, kStates> x{};
  for (int row = kStates - 1; row >= 0; --row) {
    double sum = b[row];
    for (int k = row + 1; k < kStates; ++k) sum -= a[row][k] * x[k];
    x[row] = sum / a[row][row];
  }
  return x;
}

}  // namespace

RejuvenationSteadyState solve_rejuvenation(const RejuvenationModel& model) {
  assert(model.rejuvenation_duration_s > 0.0);
  assert(model.repair_duration_s > 0.0);
  const double sigma = 1.0 / model.rejuvenation_duration_s;
  const double mu = 1.0 / model.repair_duration_s;

  // Generator Q: Q[i][j] = rate i -> j, diagonal = -row sum.
  std::array<std::array<double, kStates>, kStates> q{};
  q[kFresh][kAged] = model.aging_rate;
  q[kFresh][kRepairing] = model.fresh_failure_rate;
  q[kAged][kRepairing] = model.aged_failure_rate;
  q[kAged][kRejuvenating] = model.rejuvenation_rate;
  q[kRejuvenating][kFresh] = sigma;
  q[kRepairing][kFresh] = mu;
  for (int i = 0; i < kStates; ++i) {
    double out = 0.0;
    for (int j = 0; j < kStates; ++j) {
      if (j != i) out += q[i][j];
    }
    q[i][i] = -out;
  }

  // pi Q = 0 with sum(pi) = 1: build A = Q^T, replace the last equation by
  // the normalization row.
  std::array<std::array<double, kStates>, kStates> a{};
  std::array<double, kStates> b{};
  for (int i = 0; i < kStates; ++i) {
    for (int j = 0; j < kStates; ++j) a[i][j] = q[j][i];
  }
  for (int j = 0; j < kStates; ++j) a[kStates - 1][j] = 1.0;
  b[kStates - 1] = 1.0;

  const auto pi = solve_linear(a, b);
  RejuvenationSteadyState steady;
  steady.p_fresh = pi[kFresh];
  steady.p_aged = pi[kAged];
  steady.p_rejuvenating = pi[kRejuvenating];
  steady.p_repairing = pi[kRepairing];
  return steady;
}

double optimal_rejuvenation_rate(RejuvenationModel model, double unplanned_weight,
                                 double max_rate) {
  const auto objective = [&](double rate) {
    model.rejuvenation_rate = rate;
    return solve_rejuvenation(model).weighted_downtime(unplanned_weight);
  };

  // Golden-section search; the objective is unimodal in the rate (more
  // rejuvenation monotonically trades repair time for rejuvenation time).
  constexpr double kInvPhi = 0.6180339887498949;
  double lo = 0.0;
  double hi = max_rate;
  double x1 = hi - (hi - lo) * kInvPhi;
  double x2 = lo + (hi - lo) * kInvPhi;
  double f1 = objective(x1);
  double f2 = objective(x2);
  for (int i = 0; i < 200 && hi - lo > 1e-9 * max_rate; ++i) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - (hi - lo) * kInvPhi;
      f1 = objective(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + (hi - lo) * kInvPhi;
      f2 = objective(x2);
    }
  }
  const double best = (lo + hi) / 2.0;
  // Snap to "never rejuvenate" when the boundary is at least as good.
  return objective(0.0) <= objective(best) + 1e-15 ? 0.0 : best;
}

}  // namespace mercury::core
