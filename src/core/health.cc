#include "core/health.h"

namespace mercury::core {

using util::Error;
using util::Result;

msg::Message encode_beacon(const HealthBeacon& beacon, const std::string& to) {
  msg::Message message;
  message.kind = msg::Kind::kTelemetry;
  message.from = beacon.component;
  message.to = to;
  message.seq = beacon.seq;
  message.verb = "health";
  message.body.set_attr("uptime_s", beacon.uptime_s);
  message.body.set_attr("memory_mb", beacon.memory_mb);
  message.body.set_attr("queue_depth", beacon.queue_depth);
  message.body.set_attr("latency_ms", beacon.internal_latency_ms);
  message.body.set_attr("connectivity", std::string{beacon.connectivity_ok ? "ok" : "bad"});
  message.body.set_attr("consistency", std::string{beacon.consistency_ok ? "ok" : "bad"});
  message.body.set_attr("hard_failure",
                        std::string{beacon.hard_failure_suspected ? "1" : "0"});
  for (const auto& warning : beacon.warnings) {
    message.body.add_child(xml::Element("warning")).set_text(warning);
  }
  return message;
}

Result<HealthBeacon> decode_beacon(const msg::Message& message) {
  if (message.kind != msg::Kind::kTelemetry || message.verb != "health") {
    return Error("not a health beacon");
  }
  HealthBeacon beacon;
  beacon.component = message.from;
  beacon.seq = message.seq;

  const auto uptime = message.body.attr_double("uptime_s");
  const auto memory = message.body.attr_double("memory_mb");
  if (!uptime || !memory) return Error("beacon missing uptime_s/memory_mb");
  beacon.uptime_s = *uptime;
  beacon.memory_mb = *memory;
  beacon.queue_depth = message.body.attr_double("queue_depth").value_or(0.0);
  beacon.internal_latency_ms = message.body.attr_double("latency_ms").value_or(0.0);
  beacon.connectivity_ok = message.body.attr_or("connectivity", "ok") == "ok";
  beacon.consistency_ok = message.body.attr_or("consistency", "ok") == "ok";
  beacon.hard_failure_suspected = message.body.attr_or("hard_failure", "0") == "1";
  for (const auto* child : message.body.children_named("warning")) {
    beacon.warnings.push_back(child->text());
  }
  return beacon;
}

}  // namespace mercury::core
