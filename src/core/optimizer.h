// Restart-tree optimizer (paper §7: "We also plan to identify specific
// algorithms for transforming restart trees").
//
// Enumerates the restart trees expressible with the paper's three
// transformations — depth-2/3 trees whose top-level blocks are a set
// partition of the components, each block shaped as
//
//   * a consolidated leaf   (group consolidation),
//   * a joint cell with one leaf per member   (depth augmentation), or
//   * a promoted cell: one member rides the internal cell, the rest get
//     leaves below it   (node promotion),
//
// and scores each candidate with the analytic model. For Mercury's failure
// model with a faulty oracle, the search rediscovers tree V's shape (the
// ablation bench demonstrates this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/availability.h"
#include "core/restart_tree.h"

namespace mercury::core {

struct CandidateTree {
  RestartTree tree;
  double predicted_mttr_s = 0.0;
};

struct OptimizeResult {
  /// Best-first ranking (up to top_k entries).
  std::vector<CandidateTree> ranking;
  std::uint64_t candidates_evaluated = 0;
};

/// Exhaustive search over the transformation-expressible trees for the
/// given components, minimizing the model-predicted system MTTR.
OptimizeResult optimize_tree(const std::vector<std::string>& components,
                             const SystemModel& model, std::size_t top_k = 5);

/// Enumerate the candidate trees without scoring (for tests and tooling).
std::vector<RestartTree> enumerate_candidate_trees(
    const std::vector<std::string>& components);

}  // namespace mercury::core
