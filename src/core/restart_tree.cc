#include "core/restart_tree.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace mercury::core {

using util::Error;
using util::Status;

RestartTree::RestartTree() : RestartTree("root") {}

RestartTree::RestartTree(std::string root_label) {
  Cell root;
  root.label = std::move(root_label);
  cells_.push_back(std::move(root));
}

const RestartTree::Cell& RestartTree::cell(NodeId id) const {
  assert(id < cells_.size());
  return cells_[id];
}

NodeId RestartTree::add_cell(NodeId parent, std::string label) {
  assert(parent < cells_.size());
  const NodeId id = static_cast<NodeId>(cells_.size());
  Cell cell;
  cell.label = std::move(label);
  cell.parent = parent;
  cells_.push_back(std::move(cell));
  cells_[parent].children.push_back(id);
  return id;
}

void RestartTree::attach_component(NodeId id, std::string component) {
  assert(id < cells_.size());
  auto& components = cells_[id].components;
  const auto it = std::lower_bound(components.begin(), components.end(), component);
  if (it != components.end() && *it == component) return;
  components.insert(it, std::move(component));
}

void RestartTree::detach_component(const std::string& component) {
  for (auto& cell : cells_) {
    const auto it = std::find(cell.components.begin(), cell.components.end(), component);
    if (it != cell.components.end()) {
      cell.components.erase(it);
      return;
    }
  }
}

void RestartTree::set_label(NodeId id, std::string label) {
  assert(id < cells_.size());
  cells_[id].label = std::move(label);
}

Status RestartTree::remove_empty_cell(NodeId id) {
  if (id >= cells_.size()) return Error("no such cell");
  if (id == root()) return Error("cannot remove the root cell");
  if (!cells_[id].children.empty()) return Error("cell has children");
  if (!cells_[id].components.empty()) return Error("cell has components");

  const NodeId parent = cells_[id].parent;
  auto& siblings = cells_[parent].children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), id));
  cells_.erase(cells_.begin() + id);

  // Compact: every index greater than `id` shifts down by one.
  const auto remap = [id](NodeId& n) {
    if (n != kInvalidNode && n > id) --n;
  };
  for (auto& cell : cells_) {
    remap(cell.parent);
    for (NodeId& child : cell.children) remap(child);
  }
  return Status::ok_status();
}

void RestartTree::collect_components(NodeId id, std::vector<std::string>& out) const {
  const Cell& c = cells_[id];
  out.insert(out.end(), c.components.begin(), c.components.end());
  for (NodeId child : c.children) collect_components(child, out);
}

std::vector<std::string> RestartTree::group_components(NodeId id) const {
  assert(id < cells_.size());
  std::vector<std::string> out;
  collect_components(id, out);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<NodeId> RestartTree::find_component(const std::string& component) const {
  for (NodeId id = 0; id < cells_.size(); ++id) {
    const auto& components = cells_[id].components;
    if (std::binary_search(components.begin(), components.end(), component)) {
      return id;
    }
  }
  return std::nullopt;
}

std::optional<NodeId> RestartTree::lowest_cell_covering(
    const std::string& component) const {
  return find_component(component);
}

std::optional<NodeId> RestartTree::lowest_cell_covering_all(
    const std::vector<std::string>& components) const {
  if (components.empty()) return root();
  // Lowest common covering cell = deepest common ancestor of the attachment
  // cells. Walk the first component's root path and pick the deepest cell
  // whose group covers everything.
  const auto first = find_component(components.front());
  if (!first) return std::nullopt;
  for (NodeId id : path_to_root(*first)) {
    const auto group = group_components(id);
    const bool covers = std::all_of(
        components.begin(), components.end(), [&](const std::string& c) {
          return std::binary_search(group.begin(), group.end(), c);
        });
    if (covers) return id;
  }
  return std::nullopt;
}

NodeId RestartTree::parent(NodeId id) const {
  assert(id < cells_.size());
  return cells_[id].parent;
}

bool RestartTree::is_leaf(NodeId id) const {
  assert(id < cells_.size());
  return cells_[id].children.empty();
}

bool RestartTree::is_ancestor(NodeId ancestor, NodeId descendant) const {
  NodeId cur = descendant;
  while (cur != kInvalidNode) {
    if (cur == ancestor) return true;
    cur = cells_[cur].parent;
  }
  return false;
}

bool RestartTree::conflicts(NodeId a, NodeId b) const {
  return is_ancestor(a, b) || is_ancestor(b, a);
}

std::size_t RestartTree::depth(NodeId id) const {
  std::size_t d = 0;
  while (cells_[id].parent != kInvalidNode) {
    id = cells_[id].parent;
    ++d;
  }
  return d;
}

std::vector<NodeId> RestartTree::path_to_root(NodeId id) const {
  std::vector<NodeId> path;
  NodeId cur = id;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    cur = cells_[cur].parent;
  }
  return path;
}

std::vector<NodeId> RestartTree::preorder() const {
  std::vector<NodeId> order;
  order.reserve(cells_.size());
  std::function<void(NodeId)> visit = [&](NodeId id) {
    order.push_back(id);
    for (NodeId child : cells_[id].children) visit(child);
  };
  visit(root());
  return order;
}

std::vector<std::string> RestartTree::all_components() const {
  return group_components(root());
}

Status RestartTree::validate() const {
  if (cells_.empty()) return Error("tree has no root");
  if (cells_[0].parent != kInvalidNode) return Error("root has a parent");

  // Parent/child links consistent, all cells reachable from the root.
  std::set<NodeId> reachable;
  std::function<Status(NodeId)> visit = [&](NodeId id) -> Status {
    if (id >= cells_.size()) return Error("child id out of range");
    if (!reachable.insert(id).second) {
      return Error("cell " + cells_[id].label + " reachable twice (cycle?)");
    }
    for (NodeId child : cells_[id].children) {
      if (child >= cells_.size()) return Error("child id out of range");
      if (cells_[child].parent != id) {
        return Error("cell " + cells_[child].label + " has inconsistent parent link");
      }
      if (auto s = visit(child); !s.ok()) return s;
    }
    return Status::ok_status();
  };
  if (auto s = visit(root()); !s.ok()) return s;
  if (reachable.size() != cells_.size()) {
    return Error("tree contains unreachable cells");
  }

  // Components attached at most once.
  std::set<std::string> seen;
  for (const auto& cell : cells_) {
    for (const auto& component : cell.components) {
      if (!seen.insert(component).second) {
        return Error("component '" + component + "' attached more than once");
      }
    }
  }

  // No useless cells: every cell's subtree must restart something.
  for (NodeId id = 0; id < cells_.size(); ++id) {
    if (group_components(id).empty()) {
      return Error("cell " + cells_[id].label + " has an empty restart group");
    }
  }
  return Status::ok_status();
}

std::string RestartTree::render() const {
  std::ostringstream os;
  std::function<void(NodeId, std::string, bool)> visit = [&](NodeId id,
                                                             const std::string& prefix,
                                                             bool last) {
    const Cell& c = cells_[id];
    if (id == root()) {
      os << c.label;
    } else {
      os << prefix << (last ? "`-- " : "|-- ") << c.label;
    }
    if (!c.components.empty()) {
      os << "  {";
      for (std::size_t i = 0; i < c.components.size(); ++i) {
        if (i > 0) os << ", ";
        os << c.components[i];
      }
      os << "}";
    }
    os << "\n";
    const std::string child_prefix =
        id == root() ? "" : prefix + (last ? "    " : "|   ");
    for (std::size_t i = 0; i < c.children.size(); ++i) {
      visit(c.children[i], child_prefix, i + 1 == c.children.size());
    }
  };
  visit(root(), "", true);
  return os.str();
}

std::vector<std::vector<std::string>> group_signature(const RestartTree& tree) {
  std::vector<std::vector<std::string>> groups;
  groups.reserve(tree.size());
  for (NodeId id : tree.preorder()) {
    groups.push_back(tree.group_components(id));
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

bool equivalent(const RestartTree& a, const RestartTree& b) {
  return group_signature(a) == group_signature(b);
}

bool RestartTree::operator==(const RestartTree& other) const {
  if (cells_.size() != other.cells_.size()) return false;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& a = cells_[i];
    const Cell& b = other.cells_[i];
    if (a.label != b.label || a.components != b.components ||
        a.parent != b.parent || a.children != b.children) {
      return false;
    }
  }
  return true;
}

}  // namespace mercury::core
