#include "core/oracle.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace mercury::core {

NodeId Oracle::traced(const OracleQuery& query, NodeId chosen) const {
  if (query.trace_now.has_value() && obs::enabled()) {
    obs::recorder()->instant(
        *query.trace_now, "oracle", "oracle.choice", "oracle",
        {{"component", query.failed_component},
         {"cell", query.tree->cell(chosen).label},
         {"oracle", name()},
         {"escalation", std::to_string(query.escalation_level)}});
    obs::recorder()->incr("oracle.choices");
  }
  return chosen;
}

NodeId Oracle::escalate(const OracleQuery& query) {
  assert(query.previous_node.has_value());
  const RestartTree& tree = *query.tree;
  const NodeId previous = *query.previous_node;
  if (previous == tree.root()) return tree.root();
  return tree.parent(previous);
}

NodeId Oracle::attachment_cell(const OracleQuery& query) {
  const auto cell = query.tree->lowest_cell_covering(query.failed_component);
  return cell ? *cell : query.tree->root();
}

NodeId HeuristicOracle::choose(const OracleQuery& query) {
  if (query.escalation_level > 0 && query.previous_node) {
    return traced(query, escalate(query));
  }
  return traced(query, attachment_cell(query));
}

NodeId PerfectOracle::choose(const OracleQuery& query) {
  if (query.escalation_level > 0 && query.previous_node) {
    return traced(query, escalate(query));
  }

  // Union the cure sets of every failure manifesting at the component (in
  // the common case there is exactly one).
  std::vector<std::string> cure;
  for (const auto& failure : board_->active_at(query.failed_component)) {
    for (const auto& member : failure.spec.cure_set) {
      if (std::find(cure.begin(), cure.end(), member) == cure.end()) {
        cure.push_back(member);
      }
    }
  }
  if (cure.empty()) {
    // No ground-truth failure (e.g. a detection blip): minimal restart of
    // the component itself.
    return traced(query, attachment_cell(query));
  }
  const auto node = query.tree->lowest_cell_covering_all(cure);
  return traced(query, node ? *node : query.tree->root());
}

FaultyOracle::FaultyOracle(Oracle& inner, util::Rng rng, double p_low, double p_high)
    : inner_(&inner), rng_(rng), p_low_(p_low), p_high_(p_high) {
  assert(p_low_ >= 0.0 && p_high_ >= 0.0 && p_low_ + p_high_ <= 1.0);
}

std::string FaultyOracle::name() const { return "faulty(" + inner_->name() + ")"; }

NodeId FaultyOracle::choose(const OracleQuery& query) {
  // The wrapper owns the traced decision; silence the inner oracle so each
  // query produces exactly one oracle.choice event.
  OracleQuery inner_query = query;
  inner_query.trace_now.reset();
  const NodeId honest = inner_->choose(inner_query);
  // Escalations are answered correctly: the §4.4 faulty oracle "realizes the
  // failure is persisting, and moves up the tree".
  if (query.escalation_level > 0) return traced(query, honest);

  const RestartTree& tree = *query.tree;
  const double roll = rng_.next_double();
  if (roll < p_low_) {
    // Guess-too-low: step from the honest cell toward the failed
    // component's attachment cell, if there is anywhere lower to go.
    const NodeId attachment = attachment_cell(query);
    if (attachment != honest && tree.is_ancestor(honest, attachment)) {
      // The next node below `honest` on the attachment's root path.
      const auto path = tree.path_to_root(attachment);
      for (std::size_t i = 0; i < path.size(); ++i) {
        if (path[i] == honest) {
          assert(i > 0);
          ++mistakes_;
          return traced(query, path[i - 1]);
        }
      }
    }
    return traced(query, honest);  // nothing lower exists (tree V's point:
                                   // promotion removes the too-low option)
  }
  if (roll < p_low_ + p_high_) {
    if (honest != tree.root()) {
      ++mistakes_;
      return traced(query, tree.parent(honest));
    }
  }
  return traced(query, honest);
}

LearningOracle::LearningOracle(util::Rng rng,
                               std::map<std::string, double> restart_cost_hint,
                               double explore_probability)
    : rng_(rng),
      cost_hint_(std::move(restart_cost_hint)),
      explore_probability_(explore_probability) {}

double LearningOracle::cure_estimate(const std::string& component,
                                     NodeId node) const {
  const auto it = arms_.find({component, node});
  if (it == arms_.end()) return 0.5;  // Laplace prior
  return (it->second.cures + 1.0) / (it->second.attempts + 2.0);
}

double LearningOracle::group_cost(const RestartTree& tree, NodeId node) const {
  // Members restart concurrently; the group's cost is its slowest member,
  // inflated by restart contention for large groups (operators observe this
  // too — it is why full reboots overshoot the slowest component, §4.1).
  constexpr double kContentionSlope = 0.0628;
  const auto group = tree.group_components(node);
  double cost = 0.0;
  for (const auto& member : group) {
    const auto it = cost_hint_.find(member);
    cost = std::max(cost, it != cost_hint_.end() ? it->second : 5.0);
  }
  const double factor =
      1.0 + kContentionSlope *
                std::max<std::ptrdiff_t>(
                    0, static_cast<std::ptrdiff_t>(group.size()) - 2);
  return cost * factor;
}

double LearningOracle::expected_recovery(const OracleQuery& query,
                                         NodeId node) const {
  // E[t | start at node] = cost(node) + (1 - p_cure) * E[t | escalate],
  // evaluated up the root path (the recoverer escalates on recurrence).
  const RestartTree& tree = *query.tree;
  const auto path = tree.path_to_root(node);
  double expected = 0.0;
  double reach_probability = 1.0;
  constexpr double kRedetectCost = 0.7;  // ping period/2 + timeout
  for (std::size_t i = 0; i < path.size(); ++i) {
    const double p_cure =
        i + 1 == path.size()
            ? 1.0  // the root restart always cures (A_cure)
            : cure_estimate(query.failed_component, path[i]);
    expected += reach_probability * group_cost(tree, path[i]);
    reach_probability *= (1.0 - p_cure);
    expected += reach_probability * kRedetectCost;
    if (reach_probability < 1e-6) break;
  }
  return expected;
}

NodeId LearningOracle::choose(const OracleQuery& query) {
  if (query.escalation_level > 0 && query.previous_node) {
    return traced(query, escalate(query));
  }
  const RestartTree& tree = *query.tree;
  const NodeId attachment = attachment_cell(query);
  const auto path = tree.path_to_root(attachment);

  if (rng_.chance(explore_probability_)) {
    // Explore: try a uniformly random cell on the path, so f_ci estimates
    // keep improving for cells the greedy policy would skip.
    const auto index = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(path.size()) - 1));
    return traced(query, path[index]);
  }

  NodeId best = attachment;
  double best_expected = expected_recovery(query, attachment);
  for (NodeId node : path) {
    const double expected = expected_recovery(query, node);
    if (expected < best_expected) {
      best_expected = expected;
      best = node;
    }
  }
  return traced(query, best);
}

void LearningOracle::feedback(const std::string& component, NodeId node,
                              bool cured) {
  Arm& arm = arms_[{component, node}];
  ++arm.attempts;
  if (cured) ++arm.cures;
}

}  // namespace mercury::core
