// The oracle: Mercury's restart policy (paper §3.3).
//
// "A recoverer does not make any decisions as to which component needs to
// be restarted — that is captured in the oracle, which represents the
// restart policy. Based on information about which component has failed,
// the oracle tells the recoverer which node in the tree to restart."
//
// Four oracles:
//
//   HeuristicOracle — the realistic one: restart the failed component's own
//     cell first; on recurrence the recoverer escalates to the parent. Under
//     A_independent this *is* the minimal restart policy for crash failures.
//
//   PerfectOracle — the paper's idealization behind A_oracle: it knows each
//     failure's cure set (it reads the FailureBoard — ground truth only a
//     simulator can expose) and recommends the lowest cell covering it.
//
//   FaultyOracle — the §4.4 experiment: wraps another oracle and, with
//     probability p_low / p_high, replaces a fresh recommendation with a
//     guess-too-low (a descendant toward the failed component) or a
//     guess-too-high (the parent). Escalations are answered correctly —
//     the §4.4 faulty oracle "restarts pbcom, then realizes the failure is
//     persisting, and moves up the tree."
//
//   LearningOracle — the §7 future-work extension: estimates f_ci online
//     from cure/no-cure feedback and picks the cell minimizing expected
//     recovery time under those estimates.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/failure_board.h"
#include "core/restart_tree.h"
#include "util/rng.h"

namespace mercury::core {

struct OracleQuery {
  const RestartTree* tree = nullptr;
  std::string failed_component;
  /// 0 for a fresh failure; >0 when the recoverer is escalating after the
  /// failure survived the previous restart.
  int escalation_level = 0;
  /// The node restarted at the previous level (set when escalating).
  std::optional<NodeId> previous_node;
  /// Timestamp (seconds) for the oracle.choice trace event. Callers with a
  /// clock (recoverer: virtual time; POSIX supervisor: wall time) set it;
  /// unset queries are not traced (the optimizer's exhaustive search calls
  /// choose() thousands of times and would flood the trace).
  std::optional<double> trace_now;
};

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Recommend the cell to restart. Must return a valid cell of query.tree
  /// whose group contains the failed component.
  virtual NodeId choose(const OracleQuery& query) = 0;

  /// Outcome feedback: the chain that began at `component` restarted `node`;
  /// `cured` reports whether the failure stayed away. Default: ignored.
  virtual void feedback(const std::string& component, NodeId node, bool cured) {
    (void)component;
    (void)node;
    (void)cured;
  }

  virtual std::string name() const = 0;

 protected:
  /// §3.3 escalation: "the oracle moves up the tree and requests the restart
  /// of the node's parent", saturating at the root.
  static NodeId escalate(const OracleQuery& query);
  /// The failed component's own cell (fallback root if unattached).
  static NodeId attachment_cell(const OracleQuery& query);
  /// Emit an oracle.choice trace event (when query.trace_now is set and a
  /// recorder is installed) and pass `chosen` through. Every concrete
  /// choose() funnels its return value here.
  NodeId traced(const OracleQuery& query, NodeId chosen) const;
};

/// Leaf-first policy with no failure-model knowledge.
class HeuristicOracle : public Oracle {
 public:
  NodeId choose(const OracleQuery& query) override;
  std::string name() const override { return "heuristic"; }
};

/// Minimal restart policy (A_oracle): lowest cell covering the failure's
/// cure set, read from the ground-truth board.
class PerfectOracle : public Oracle {
 public:
  explicit PerfectOracle(const FailureBoard& board) : board_(&board) {}
  NodeId choose(const OracleQuery& query) override;
  std::string name() const override { return "perfect"; }

 private:
  const FailureBoard* board_;
};

/// Wraps an oracle and injects guess-too-low / guess-too-high mistakes.
class FaultyOracle : public Oracle {
 public:
  FaultyOracle(Oracle& inner, util::Rng rng, double p_low, double p_high = 0.0);
  NodeId choose(const OracleQuery& query) override;
  std::string name() const override;

  std::uint64_t mistakes_made() const { return mistakes_; }

 private:
  Oracle* inner_;
  util::Rng rng_;
  double p_low_;
  double p_high_;
  std::uint64_t mistakes_ = 0;
};

/// Online f_ci estimation (§7): epsilon-greedy over the failed component's
/// root path, scoring each cell by expected recovery time under the learned
/// cure probabilities and supplied restart-cost hints.
class LearningOracle : public Oracle {
 public:
  /// `restart_cost_hint`: component -> typical restart seconds (operators
  /// know these; the paper measures them in Table 2).
  LearningOracle(util::Rng rng, std::map<std::string, double> restart_cost_hint,
                 double explore_probability = 0.1);

  NodeId choose(const OracleQuery& query) override;
  void feedback(const std::string& component, NodeId node, bool cured) override;
  std::string name() const override { return "learning"; }

  /// Learned cure probability (Laplace-smoothed) for failures manifesting
  /// at `component` cured by restarting `node`.
  double cure_estimate(const std::string& component, NodeId node) const;

  /// Adjust exploration (e.g. anneal to 0 once estimates converge).
  void set_explore_probability(double p) { explore_probability_ = p; }
  double explore_probability() const { return explore_probability_; }

 private:
  struct Arm {
    int attempts = 0;
    int cures = 0;
  };

  double group_cost(const RestartTree& tree, NodeId node) const;
  double expected_recovery(const OracleQuery& query, NodeId node) const;

  util::Rng rng_;
  std::map<std::string, double> cost_hint_;
  double explore_probability_;
  /// (failed component, node) -> outcomes. NodeIds are stable because the
  /// tree is fixed for the lifetime of a run.
  std::map<std::pair<std::string, NodeId>, Arm> arms_;
};

}  // namespace mercury::core
