// Restart-tree transformations (paper §4, Table 3).
//
// Three techniques evolve a restart tree to reduce system MTTR:
//
//   * depth augmentation (§4.1)         — add cells so components (or
//     sub-components) can restart independently; use when f_A + f_B > 0 or
//     f_{A,B} > 0.
//   * group consolidation (§4.3)        — merge cells whose components
//     always fail together; use when f_A + f_B << f_{A,B}.
//   * node promotion (§4.4)             — lift a high-MTTR component onto
//     its parent cell so a faulty oracle cannot guess-too-low on it.
//
// All transformations are pure: they take a tree by value and return a new
// tree (or an error when preconditions fail), leaving the input untouched.
// This keeps the §4 algebra testable: e.g. consolidation after augmentation
// commutes with the corresponding direct construction.
#pragma once

#include <string>
#include <vector>

#include "core/restart_tree.h"
#include "util/result.h"

namespace mercury::core {

/// Simple depth augmentation (§4.1, Fig. 3): give every component that is
/// attached to `cell` its own child leaf, so each can restart independently.
/// Precondition: `cell` has at least two attached components.
util::Result<RestartTree> depth_augment(RestartTree tree, NodeId cell);

/// Subtree depth augmentation via component split (§4.2, Fig. 4): replace
/// `component` with `parts` under a new joint cell at the component's old
/// attachment point. The joint cell cures correlated failures of the parts
/// (f_{A,B} > 0) without a full-tree restart; each part also gets its own
/// leaf (f_A + f_B > 0).
/// Precondition: `component` exists; `parts` has at least two distinct new
/// names not already in the tree.
util::Result<RestartTree> split_component(RestartTree tree,
                                          const std::string& component,
                                          const std::vector<std::string>& parts);

/// Group consolidation (§4.3, Fig. 5): merge the cells of `a` and `b` into a
/// single leaf, so a failure in either restarts both in parallel.
/// Precondition: `a` and `b` are attached to distinct sibling leaf cells.
util::Result<RestartTree> consolidate_group(RestartTree tree, const std::string& a,
                                            const std::string& b);

/// Node promotion (§4.4, Fig. 6): move `component` from its leaf onto the
/// leaf's parent cell and delete the leaf. After promotion, every restart
/// that touches `component` also restarts its former siblings' subtrees —
/// the guess-too-low mistake on `component` becomes inexpressible.
/// Precondition: `component` is attached to a leaf whose parent is not the
/// attachment point of the same component and has other descendants.
util::Result<RestartTree> promote_component(RestartTree tree,
                                            const std::string& component);

/// The paper's full evolution: tree I --depth_augment--> II
/// --split fedrcom--> II' --join fedr,pbcom--> III --consolidate ses,str-->
/// IV --promote pbcom--> V. Returns all six stages; stage[i] validated.
/// (Exercised by tests to prove the published trees are reachable through
/// the transformation algebra rather than hand-built.)
util::Result<std::vector<RestartTree>> evolve_mercury_trees();

/// Regroup two sibling top-level leaves under a new joint cell (the step
/// from tree II' to tree III: insert the [fedr,pbcom] cell).
util::Result<RestartTree> group_under_joint(RestartTree tree, const std::string& a,
                                            const std::string& b,
                                            const std::string& joint_label);

}  // namespace mercury::core
