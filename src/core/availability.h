// Availability algebra (paper §3.2, §4.1) and an analytic MTTR model.
//
// "Availability is generally thought of as the ratio MTTF/(MTTF + MTTR)."
// For a restart group G with components c_i:
//
//     MTTF_G <= min(MTTF_ci)          (any member failing fails the group)
//     MTTR_G >= max(MTTR_ci)          (the group recovers when its slowest
//                                      member has)
//     MTTR_G^II <= sum f_ci MTTR_ci   (§4.1: with per-component cells and a
//                                      perfect oracle, recovery costs only
//                                      the failed member's MTTR, weighted by
//                                      the probability the failure is
//                                      minimally c_i-curable)
//
// The analytic model mirrors the simulator's recovery path (detection +
// contended restart + coupling epilogues + oracle-mistake rounds) closely
// enough to rank trees; the tree optimizer (optimizer.h) searches with it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/restart_tree.h"

namespace mercury::core {

// --- §3.2 bounds -----------------------------------------------------------

/// min over components; empty input -> +infinity.
double group_mttf_upper_bound(const std::vector<double>& component_mttfs);

/// max over components; empty input -> 0.
double group_mttr_lower_bound(const std::vector<double>& component_mttrs);

/// §4.1: expected group MTTR under per-component cells and a perfect
/// oracle: sum_i f_i * mttr_i. Requires f to sum to ~1 (A_cure).
double expected_group_mttr(const std::vector<double>& f,
                           const std::vector<double>& mttr);

/// MTTF / (MTTF + MTTR).
double availability(double mttf, double mttr);

/// Downtime fraction over a horizon given a failure rate (1/MTTF) and MTTR.
double downtime_fraction(double mttf, double mttr);

// --- Analytic recovery model -------------------------------------------------

/// One class of failures the system experiences.
struct FailureClassModel {
  std::string manifest;
  std::vector<std::string> cure_set;
  /// Relative rate (occurrences per unit time; only ratios matter for the
  /// system MTTR, absolute values matter for availability).
  double rate = 1.0;
};

/// Symmetric startup coupling between two components (ses/str): restarting
/// one forces a detect+restart round for the other unless both restart in
/// the same group.
struct CoupledPairModel {
  std::string a;
  std::string b;
  /// Extra handshake when both restart together (collide negotiation).
  double together_epilogue_s = 0.0;
  /// Extra handshake when the second restarts into a waiting first.
  double sequential_epilogue_s = 0.0;
};

struct SystemModel {
  /// Typical restart duration per component, seconds.
  std::map<std::string, double> restart_duration_s;
  /// Mean failure-detection latency, seconds.
  double detection_latency_s = 0.66;
  /// Contention: durations scale by 1 + slope * max(0, group size - 2).
  double contention_slope = 0.0628;
  std::vector<FailureClassModel> failure_classes;
  std::vector<CoupledPairModel> coupled_pairs;
  /// Probability the oracle guesses too low on a fresh failure.
  double oracle_p_low = 0.0;
  /// Extra readiness epilogue per component (e.g. fedr reconnect when pbcom
  /// restarts under it), seconds.
  std::map<std::string, double> dependent_reconnect_s;
};

/// Contended duration of restarting `group` concurrently: the slowest
/// member's duration times the contention factor.
double group_restart_duration(const SystemModel& model,
                              const std::vector<std::string>& group);

/// Predicted mean recovery time for one failure class under `tree`.
/// Follows the minimal policy, oracle mistakes, escalation, and coupling.
double predicted_recovery_time(const RestartTree& tree, const SystemModel& model,
                               const FailureClassModel& failure);

/// Rate-weighted mean recovery time across all failure classes.
double predicted_system_mttr(const RestartTree& tree, const SystemModel& model);

/// Predicted steady-state availability given absolute class rates
/// (failures per second).
double predicted_availability(const RestartTree& tree, const SystemModel& model);

/// The Mercury system model with the paper's calibrated numbers (Table 1
/// rates, Table 2 restart durations, §4 couplings), for the split-fedrcom
/// configuration. `joint_fraction` is the share of pbcom-manifesting
/// failures that need a joint {fedr,pbcom} cure (§4.4).
SystemModel mercury_system_model(bool split_fedrcom, double oracle_p_low = 0.0,
                                 double joint_fraction = 0.25);

}  // namespace mercury::core
