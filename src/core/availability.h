// Availability algebra (paper §3.2, §4.1) and an analytic MTTR model.
//
// "Availability is generally thought of as the ratio MTTF/(MTTF + MTTR)."
// For a restart group G with components c_i:
//
//     MTTF_G <= min(MTTF_ci)          (any member failing fails the group)
//     MTTR_G >= max(MTTR_ci)          (the group recovers when its slowest
//                                      member has)
//     MTTR_G^II <= sum f_ci MTTR_ci   (§4.1: with per-component cells and a
//                                      perfect oracle, recovery costs only
//                                      the failed member's MTTR, weighted by
//                                      the probability the failure is
//                                      minimally c_i-curable)
//
// The analytic model mirrors the simulator's recovery path (detection +
// contended restart + coupling epilogues + oracle-mistake rounds) closely
// enough to rank trees; the tree optimizer (optimizer.h) searches with it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/restart_tree.h"

namespace mercury::core {

// --- §3.2 bounds -----------------------------------------------------------

/// min over components; empty input -> +infinity.
double group_mttf_upper_bound(const std::vector<double>& component_mttfs);

/// max over components; empty input -> 0.
double group_mttr_lower_bound(const std::vector<double>& component_mttrs);

/// §4.1: expected group MTTR under per-component cells and a perfect
/// oracle: sum_i f_i * mttr_i. Requires f to sum to ~1 (A_cure).
double expected_group_mttr(const std::vector<double>& f,
                           const std::vector<double>& mttr);

/// MTTF / (MTTF + MTTR).
double availability(double mttf, double mttr);

/// Downtime fraction over a horizon given a failure rate (1/MTTF) and MTTR.
double downtime_fraction(double mttf, double mttr);

// --- Analytic recovery model -------------------------------------------------

/// One class of failures the system experiences.
struct FailureClassModel {
  std::string manifest;
  std::vector<std::string> cure_set;
  /// Relative rate (occurrences per unit time; only ratios matter for the
  /// system MTTR, absolute values matter for availability).
  double rate = 1.0;
};

/// Symmetric startup coupling between two components (ses/str): restarting
/// one forces a detect+restart round for the other unless both restart in
/// the same group.
struct CoupledPairModel {
  std::string a;
  std::string b;
  /// Extra handshake when both restart together (collide negotiation).
  double together_epilogue_s = 0.0;
  /// Extra handshake when the second restarts into a waiting first.
  double sequential_epilogue_s = 0.0;
};

struct SystemModel {
  /// Typical restart duration per component, seconds.
  std::map<std::string, double> restart_duration_s;
  /// Mean failure-detection latency, seconds.
  double detection_latency_s = 0.66;
  /// Contention: durations scale by 1 + slope * max(0, group size - 2).
  double contention_slope = 0.0628;
  std::vector<FailureClassModel> failure_classes;
  std::vector<CoupledPairModel> coupled_pairs;
  /// Probability the oracle guesses too low on a fresh failure.
  double oracle_p_low = 0.0;
  /// Extra readiness epilogue per component (e.g. fedr reconnect when pbcom
  /// restarts under it), seconds.
  std::map<std::string, double> dependent_reconnect_s;
};

/// Contended duration of restarting `group` concurrently: the slowest
/// member's duration times the contention factor.
double group_restart_duration(const SystemModel& model,
                              const std::vector<std::string>& group);

/// Predicted mean recovery time for one failure class under `tree`.
/// Follows the minimal policy, oracle mistakes, escalation, and coupling.
double predicted_recovery_time(const RestartTree& tree, const SystemModel& model,
                               const FailureClassModel& failure);

/// Rate-weighted mean recovery time across all failure classes.
double predicted_system_mttr(const RestartTree& tree, const SystemModel& model);

/// Predicted steady-state availability given absolute class rates
/// (failures per second).
double predicted_availability(const RestartTree& tree, const SystemModel& model);

/// The Mercury system model with the paper's calibrated numbers (Table 1
/// rates, Table 2 restart durations, §4 couplings), for the split-fedrcom
/// configuration. `joint_fraction` is the share of pbcom-manifesting
/// failures that need a joint {fedr,pbcom} cure (§4.4).
SystemModel mercury_system_model(bool split_fedrcom, double oracle_p_low = 0.0,
                                 double joint_fraction = 0.25);

// --- Client-traffic availability accounting (ISSUE 9) ----------------------
//
// The paper's availability is station MTTR; what a user sees is goodput:
// requests served, lost, and retried *through* failures and recoveries.
// TrafficAccount collects one RequestRecord per resolved client request and
// summarizes them against the trial's injection instant — latency
// percentiles over served requests, a binned goodput timeline, and the
// goodput dip (depth / width / end) relative to the pre-injection baseline.

/// One client request, resolved. Every issued request resolves exactly once
/// (served, or lost after its retry budget) — the workload driver enforces
/// this, and benches assert issued == served + lost.
struct RequestRecord {
  double sent_t = 0.0;  ///< first-attempt issue time, seconds
  double done_t = 0.0;  ///< resolution time, seconds
  int attempts = 1;     ///< send attempts consumed (> 1 means retried)
  bool served = false;
  std::string target;  ///< route: the component the session addresses
  /// Typed "restarting" rejections this request saw (fast-retry signal).
  int restarting_nacks = 0;
  /// Final loss reason: "" (served) | "timeout" | "rejected-restarting" |
  /// "rejected-parked".
  std::string detail;
};

/// Aggregate availability figures for one trial's traffic.
struct TrafficSummary {
  std::uint64_t issued = 0;
  std::uint64_t served = 0;
  std::uint64_t lost = 0;
  std::uint64_t retried = 0;  ///< requests that needed more than one attempt
  std::uint64_t restarting_rejections = 0;  ///< typed mid-restart nacks seen
  std::uint64_t parked_rejections = 0;      ///< clean rejections at parked routes
  /// Served-request latency percentiles, milliseconds.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  /// Served requests per second before the injection instant.
  double baseline_rps = 0.0;
  /// Goodput dip vs baseline over full bins in (inject, end): depth is
  /// 1 - min_bin_rate/baseline (clamped to [0,1]); width is total time below
  /// the 95%-of-baseline threshold; end is the time from injection until the
  /// last below-threshold bin closes (0 = goodput never dipped).
  double dip_depth = 0.0;
  double dip_width_s = 0.0;
  double dip_end_s = 0.0;
  /// Slowest impacted route's service-reopen latency: over routes that lost
  /// at least one post-injection request, the max time from injection to the
  /// route's first served request (window end if it never served again).
  double worst_route_reopen_s = 0.0;

  bool operator==(const TrafficSummary&) const = default;
};

class TrafficAccount {
 public:
  void record(RequestRecord record);

  const std::vector<RequestRecord>& records() const { return records_; }
  std::uint64_t issued() const { return records_.size(); }

  /// Summarize against the trial's injection instant. Goodput bins of
  /// `bin_s` seconds are evaluated only where complete inside
  /// [inject_t, end_t) — `end_t` should be the workload quiesce time, so a
  /// draining tail is never mistaken for a dip. inject_t <= 0 disables the
  /// dip/baseline figures (counts and percentiles still fill in).
  TrafficSummary summarize(double inject_t, double end_t,
                           double bin_s = 0.5) const;

 private:
  std::vector<RequestRecord> records_;
};

}  // namespace mercury::core
