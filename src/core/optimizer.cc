#include "core/optimizer.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace mercury::core {
namespace {

using Block = std::vector<std::string>;
using Partition = std::vector<Block>;

/// Enumerate set partitions (restricted growth strings).
void enumerate_partitions(const std::vector<std::string>& items,
                          const std::function<void(const Partition&)>& visit) {
  Partition partition;
  std::function<void(std::size_t)> recurse = [&](std::size_t index) {
    if (index == items.size()) {
      visit(partition);
      return;
    }
    // Index-based: recursion temporarily appends blocks, which would
    // invalidate range-for iterators. Size is restored on return, so the
    // bound re-evaluates correctly each iteration.
    const std::size_t blocks_here = partition.size();
    for (std::size_t b = 0; b < blocks_here; ++b) {
      partition[b].push_back(items[index]);
      recurse(index + 1);
      partition[b].pop_back();
    }
    partition.push_back({items[index]});
    recurse(index + 1);
    partition.pop_back();
  };
  recurse(0);
}

std::string block_label(const Block& block) {
  std::string label = "R_[";
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (i > 0) label += ",";
    label += block[i];
  }
  return label + "]";
}

/// All shapes for one block, appended under `parent` of a copy of `base`.
std::vector<RestartTree> expand_block(const RestartTree& base, NodeId parent,
                                      const Block& block) {
  std::vector<RestartTree> shapes;

  if (block.size() == 1) {
    RestartTree tree = base;
    const NodeId leaf = tree.add_cell(parent, "R_" + block[0]);
    tree.attach_component(leaf, block[0]);
    shapes.push_back(std::move(tree));
    return shapes;
  }

  // Consolidated leaf.
  {
    RestartTree tree = base;
    const NodeId leaf = tree.add_cell(parent, block_label(block));
    for (const auto& component : block) tree.attach_component(leaf, component);
    shapes.push_back(std::move(tree));
  }
  // Joint cell with per-member leaves.
  {
    RestartTree tree = base;
    const NodeId joint = tree.add_cell(parent, block_label(block));
    for (const auto& component : block) {
      const NodeId leaf = tree.add_cell(joint, "R_" + component);
      tree.attach_component(leaf, component);
    }
    shapes.push_back(std::move(tree));
  }
  // Promoted: each member in turn rides the internal cell.
  for (const auto& promoted : block) {
    RestartTree tree = base;
    const NodeId cell = tree.add_cell(parent, "R_" + promoted + "+");
    tree.attach_component(cell, promoted);
    for (const auto& component : block) {
      if (component == promoted) continue;
      const NodeId leaf = tree.add_cell(cell, "R_" + component);
      tree.attach_component(leaf, component);
    }
    shapes.push_back(std::move(tree));
  }
  return shapes;
}

}  // namespace

std::vector<RestartTree> enumerate_candidate_trees(
    const std::vector<std::string>& components) {
  std::vector<RestartTree> candidates;
  enumerate_partitions(components, [&](const Partition& partition) {
    // Expand block by block, taking the cross product of shapes.
    std::vector<RestartTree> partial{RestartTree("R_system")};
    for (const auto& block : partition) {
      std::vector<RestartTree> next;
      for (const auto& tree : partial) {
        auto shapes = expand_block(tree, tree.root(), block);
        for (auto& shape : shapes) next.push_back(std::move(shape));
      }
      partial = std::move(next);
    }
    for (auto& tree : partial) {
      assert(tree.validate().ok());
      candidates.push_back(std::move(tree));
    }
  });
  return candidates;
}

OptimizeResult optimize_tree(const std::vector<std::string>& components,
                             const SystemModel& model, std::size_t top_k) {
  OptimizeResult result;
  std::vector<CandidateTree> scored;
  for (auto& tree : enumerate_candidate_trees(components)) {
    const double mttr = predicted_system_mttr(tree, model);
    scored.push_back(CandidateTree{std::move(tree), mttr});
    ++result.candidates_evaluated;
  }
  // Primary: predicted MTTR. Tie-break: prefer trees whose restarts touch
  // fewer components overall (sum of group sizes), then fewer cells — the
  // "cleanest" tree among equals, so degenerate promotions that happen to
  // cost nothing under the model don't outrank the canonical shapes.
  const auto restart_weight = [](const RestartTree& tree) {
    std::size_t weight = 0;
    for (NodeId id : tree.preorder()) weight += tree.group_components(id).size();
    return weight;
  };
  std::sort(scored.begin(), scored.end(),
            [&](const CandidateTree& a, const CandidateTree& b) {
              if (a.predicted_mttr_s != b.predicted_mttr_s) {
                return a.predicted_mttr_s < b.predicted_mttr_s;
              }
              const std::size_t wa = restart_weight(a.tree);
              const std::size_t wb = restart_weight(b.tree);
              if (wa != wb) return wa < wb;
              return a.tree.size() < b.tree.size();
            });
  if (scored.size() > top_k) scored.resize(top_k);
  result.ranking = std::move(scored);
  return result;
}

}  // namespace mercury::core
