// CheckpointStore: versioned soft-state snapshots for warm restarts.
//
// The paper's recovery times are dominated by state reconstruction, not
// process respawn: pbcom's serial negotiation ("takes over 21 seconds") and
// the ses/str resynchronization are what make Tables 1/2 slow. Microreboot
// and ReStore showed that separating recoverable state from process
// lifetime makes restarts drastically cheaper: if the soft state a
// component would otherwise rebuild (negotiated serial parameters, sync
// session offsets, the last ephemeris) survives the process in a
// checkpoint, the restarted process can reload it and skip the slow part —
// a *warm* restart.
//
// Checkpoints are exactly the kind of state a restart is meant to shed, so
// validity is strict and the default is cold:
//
//   * every snapshot carries a schema version and an FNV-1a checksum over
//     its payload; a mismatch of either is kCorrupt/kVersionMismatch and
//     the snapshot is discarded (never retried);
//   * a snapshot older than the policy TTL is kStale — the world may have
//     moved on (the serial peer renegotiated, the sync session expired);
//   * a component whose previous startup attempt in the current failure
//     chain already failed is *fault-suspected*: its checkpoint is
//     discarded without inspection, because corrupted-but-checksum-valid
//     state is indistinguishable from a restart-path fault (ISSUE 2's
//     deadline/backoff machinery notices the failed warm attempt and the
//     retry runs cold).
//
// The store also exposes the fault injector's side of the contract:
// corrupt() (detectable: payload flipped, checksum kept), poison()
// (undetectable: checksum recomputed over the flipped payload — the warm
// attempt proceeds and crashes mid-startup), and stale_date() (backdated
// saved_at).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.h"

namespace mercury::core {

/// Current snapshot schema; bump when payload layout changes. Snapshots
/// from other versions never warm-start a component.
inline constexpr int kCheckpointSchemaVersion = 1;

/// One saved soft-state snapshot for a component.
struct Checkpoint {
  std::string component;
  int version = kCheckpointSchemaVersion;
  util::TimePoint saved_at;
  /// Ordered key/value soft state (sync offsets, serial params, ...).
  std::vector<std::pair<std::string, std::string>> payload;
  /// FNV-1a over component | version | payload (see checkpoint_checksum).
  std::uint64_t checksum = 0;
  /// Ground truth for the fault injector: the payload was corrupted and the
  /// checksum recomputed, so validation cannot tell. A warm start consuming
  /// a poisoned snapshot crashes during startup (a restart-path fault).
  bool poisoned = false;
};

enum class CheckpointVerdict {
  kValid,
  kMissing,
  kStale,
  kVersionMismatch,
  kCorrupt,
};

std::string_view to_string(CheckpointVerdict verdict);

/// Warm-restart policy knobs, carried in the station configuration. Off by
/// default so legacy configurations reproduce the seed's numbers
/// bit-for-bit.
struct CheckpointPolicy {
  bool enabled = false;
  /// Snapshots older than this at restart time are stale (cold fallback).
  util::Duration ttl = util::Duration::minutes(10.0);
};

std::uint64_t checkpoint_checksum(const Checkpoint& checkpoint);

class CheckpointStore {
 public:
  /// Save (or overwrite) `component`'s snapshot; computes the checksum.
  void save(const std::string& component,
            std::vector<std::pair<std::string, std::string>> payload,
            util::TimePoint now);

  /// Insert a caller-built snapshot verbatim, checksum included. Test and
  /// injection hook; save() is the component-facing API.
  void put(Checkpoint checkpoint);

  /// nullptr when no snapshot is stored for `component`.
  const Checkpoint* find(const std::string& component) const;

  /// Validity of `component`'s snapshot for a warm restart at `now`.
  CheckpointVerdict validate(const std::string& component, util::TimePoint now,
                             util::Duration ttl) const;

  /// Drop `component`'s snapshot; returns whether one was present.
  bool discard(const std::string& component);
  void clear();
  std::size_t size() const { return checkpoints_.size(); }

  // --- Fault-injection hooks ----------------------------------------------
  /// Flip the payload without updating the checksum: detectably corrupt.
  /// Returns false when no snapshot exists.
  bool corrupt(const std::string& component);
  /// Flip the payload AND recompute the checksum: validation passes, the
  /// warm start consuming it crashes (undetectable corruption).
  bool poison(const std::string& component);
  /// Backdate the snapshot to `saved_at` (typically beyond the TTL).
  bool stale_date(const std::string& component, util::TimePoint saved_at);

  std::uint64_t saves() const { return saves_; }
  std::uint64_t discards() const { return discards_; }

 private:
  std::map<std::string, Checkpoint> checkpoints_;
  std::uint64_t saves_ = 0;
  std::uint64_t discards_ = 0;
};

}  // namespace mercury::core
