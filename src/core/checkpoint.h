// Checkpoint storage for warm restarts: a single-tier store (PR 3) grown
// into a multi-tier, replicated subsystem (ISSUE 7).
//
// The paper's recovery times are dominated by state reconstruction, not
// process respawn: pbcom's serial negotiation ("takes over 21 seconds") and
// the ses/str resynchronization are what make Tables 1/2 slow. Microreboot
// and ReStore showed that separating recoverable state from process
// lifetime makes restarts drastically cheaper: if the soft state a
// component would otherwise rebuild survives the process in a checkpoint,
// the restarted process can reload it and skip the slow part — a *warm*
// restart.
//
// A single local store leaves a cliff, though: lose or corrupt that one
// snapshot and the component falls all the way back to cold. So checkpoints
// are tiered, SCR/ReStore-style:
//
//   L0 local    — the component's own snapshot (PR 3's store). Fastest
//                 reload; first casualty of the fault that killed the
//                 component, and shed outright on fault suspicion.
//   L1 partner  — an in-memory replica held by a buddy component chosen
//                 from the restart tree (choose_partners). Survives the
//                 victim's own crash; dies with its *host* — a whole-group
//                 restart or a correlated failure that takes the partner
//                 down loses the replica too.
//   L2 stable   — file-backed stable storage. Slowest reload; survives
//                 process deaths, lost only to explicit (injected) damage.
//
// save() writes through every enabled tier at snapshot commit; lookup()
// walks the tiers newest-first and the first valid copy warm-starts the
// restart; rebuild() re-replicates the serving copy into tiers lost to the
// fault, so the *next* failure of the same cell still warm-hits.
//
// Validity stays strict and the default stays cold:
//
//   * every snapshot carries a schema version and an FNV-1a checksum over
//     its payload; a mismatch of either is kCorrupt/kVersionMismatch and
//     that tier's copy is discarded (never retried) — the walk continues;
//   * a snapshot older than the policy TTL is kStale — the world may have
//     moved on (the serial peer renegotiated, the sync session expired);
//   * a component whose previous startup attempt in the current failure
//     chain already failed is *fault-suspected*: its L0 copy is discarded
//     without inspection (suspect_discard), because corrupted-but-
//     checksum-valid state is indistinguishable from a restart-path fault.
//     The partner and stable tiers are NOT suspected — they did not feed
//     the failed attempt — so the retry still tries them before going cold.
//
// Damage-injection hooks are per-tier (corrupt / poison / stale_date /
// discard_tier / kill_tier), so chaos benches can kill one tier at a time
// and measure warm-hit rate per redundancy scheme.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.h"

namespace mercury::core {

class RestartTree;

/// Current snapshot schema; bump when payload layout changes. Snapshots
/// from other versions never warm-start a component.
inline constexpr int kCheckpointSchemaVersion = 1;

/// One saved soft-state snapshot for a component.
struct Checkpoint {
  std::string component;
  int version = kCheckpointSchemaVersion;
  util::TimePoint saved_at;
  /// Ordered key/value soft state (sync offsets, serial params, ...).
  std::vector<std::pair<std::string, std::string>> payload;
  /// FNV-1a over component | version | payload (see checkpoint_checksum).
  std::uint64_t checksum = 0;
  /// Ground truth for the fault injector: the payload was corrupted and the
  /// checksum recomputed, so validation cannot tell. A warm start consuming
  /// a poisoned snapshot crashes during startup (a restart-path fault).
  bool poisoned = false;
};

enum class CheckpointVerdict {
  kValid,
  kMissing,
  kStale,
  kVersionMismatch,
  kCorrupt,
};

std::string_view to_string(CheckpointVerdict verdict);

/// The redundancy tiers, in lookup (newest-first) order.
enum class CheckpointTier : int {
  kL0Local = 0,
  kL1Partner = 1,
  kL2Stable = 2,
};
inline constexpr std::size_t kCheckpointTierCount = 3;

std::string_view to_string(CheckpointTier tier);

/// Warm-restart policy knobs, carried in the station configuration. Off by
/// default so legacy configurations reproduce the seed's numbers
/// bit-for-bit; with only `enabled` set, the subsystem is exactly PR 3's
/// single local store (L0).
struct CheckpointPolicy {
  bool enabled = false;
  /// Snapshots older than this at restart time are stale (cold fallback).
  util::Duration ttl = util::Duration::minutes(10.0);
  /// Replicate snapshots to a partner-hosted in-memory tier (needs a
  /// partner map, see TieredCheckpointStore::set_partners).
  bool l1_partner = false;
  /// Replicate snapshots to stable file-backed storage.
  bool l2_stable = false;
  /// Warm reload slowdown per tier, relative to the local copy: fetching
  /// the replica from the partner / re-reading stable storage costs a
  /// little more than a local reload, but both remain far below cold.
  double l1_reload_factor = 1.1;
  double l2_reload_factor = 1.25;

  bool tier_enabled(CheckpointTier tier) const {
    switch (tier) {
      case CheckpointTier::kL0Local: return enabled;
      case CheckpointTier::kL1Partner: return enabled && l1_partner;
      case CheckpointTier::kL2Stable: return enabled && l2_stable;
    }
    return false;
  }
  double reload_factor(CheckpointTier tier) const {
    switch (tier) {
      case CheckpointTier::kL0Local: return 1.0;
      case CheckpointTier::kL1Partner: return l1_reload_factor;
      case CheckpointTier::kL2Stable: return l2_reload_factor;
    }
    return 1.0;
  }
};

std::uint64_t checkpoint_checksum(const Checkpoint& checkpoint);

/// One tier's worth of snapshot storage (PR 3's store, unchanged). The
/// tiered store owns one per tier; it also remains directly usable where a
/// single flat store is all that is needed.
class CheckpointStore {
 public:
  /// Save (or overwrite) `component`'s snapshot; computes the checksum.
  void save(const std::string& component,
            std::vector<std::pair<std::string, std::string>> payload,
            util::TimePoint now);

  /// Insert a caller-built snapshot verbatim, checksum included. Test and
  /// injection hook; save() is the component-facing API.
  void put(Checkpoint checkpoint);

  /// nullptr when no snapshot is stored for `component`.
  const Checkpoint* find(const std::string& component) const;

  /// Validity of `component`'s snapshot for a warm restart at `now`.
  CheckpointVerdict validate(const std::string& component, util::TimePoint now,
                             util::Duration ttl) const;

  /// Drop `component`'s snapshot; returns whether one was present.
  bool discard(const std::string& component);
  void clear();
  std::size_t size() const { return checkpoints_.size(); }

  // --- Fault-injection hooks ----------------------------------------------
  /// Flip the payload without updating the checksum: detectably corrupt.
  /// Returns false when no snapshot exists.
  bool corrupt(const std::string& component);
  /// Flip the payload AND recompute the checksum: validation passes, the
  /// warm start consuming it crashes (undetectable corruption).
  bool poison(const std::string& component);
  /// Backdate the snapshot to `saved_at` (typically beyond the TTL).
  bool stale_date(const std::string& component, util::TimePoint saved_at);

  std::uint64_t saves() const { return saves_; }
  std::uint64_t discards() const { return discards_; }

 private:
  std::map<std::string, Checkpoint> checkpoints_;
  std::uint64_t saves_ = 0;
  std::uint64_t discards_ = 0;
};

/// Deterministic L1 partner assignment from the restart tree: each
/// component's replica is hosted by the next component in the sorted ring
/// that is attached to a *different* cell (so the minimal restart of the
/// component's own cell cannot take the replica host down with it). When
/// every other component shares the cell, the ring neighbour is used
/// regardless — a replica in a doomed host still beats no replica.
std::map<std::string, std::string> choose_partners(const RestartTree& tree);

/// Outcome of probing one tier during a lookup walk.
struct TierProbe {
  CheckpointTier tier = CheckpointTier::kL0Local;
  CheckpointVerdict verdict = CheckpointVerdict::kMissing;
  /// The probe found a detectably-invalid copy and deleted it.
  bool discarded = false;
};

/// Result of the newest-valid-tier walk.
struct TierLookup {
  bool hit = false;
  CheckpointTier tier = CheckpointTier::kL0Local;
  /// The serving snapshot; valid until the store is next mutated.
  const Checkpoint* checkpoint = nullptr;
  /// Every tier probed, in walk order, with its verdict.
  std::vector<TierProbe> probes;

  /// Why the walk came up empty (first probe's verdict — for the flat
  /// L0-only scheme this is exactly the legacy cold reason).
  std::string miss_reason() const;
};

/// The multi-tier store: write-through saves, newest-valid-tier lookup,
/// rebuild of lost tiers, per-tier damage hooks.
class TieredCheckpointStore {
 public:
  /// Install the policy (which tiers exist, TTL). Call once at wiring time.
  void configure(const CheckpointPolicy& policy) { policy_ = policy; }
  const CheckpointPolicy& policy() const { return policy_; }

  /// Install the L1 partner map (component -> replica host). Without it the
  /// partner tier never populates. Typically choose_partners(tree).
  void set_partners(std::map<std::string, std::string> partner_of);
  /// Replica host for `component`; empty when unassigned.
  const std::string& partner_of(const std::string& component) const;

  /// Write-through save: the snapshot lands in every enabled tier (L1 only
  /// when `component` has a partner assigned).
  void save(const std::string& component,
            std::vector<std::pair<std::string, std::string>> payload,
            util::TimePoint now);

  /// Walk the enabled tiers newest-first; the first valid copy wins.
  /// Detectably-invalid copies (corrupt / version skew) are deleted as the
  /// walk passes them, and every probe is reported for logs and counters.
  TierLookup lookup(const std::string& component, util::TimePoint now);

  /// Re-replicate `component`'s newest valid copy into every enabled tier
  /// that lost its own (the post-recovery tier rebuild). Returns the number
  /// of tiers repopulated.
  std::size_t rebuild(const std::string& component, util::TimePoint now);

  /// Fault-suspicion shed: drop the L0 copy only. The partner and stable
  /// tiers did not feed the failed attempt and are kept — the retry walks
  /// them before going cold. Returns whether an L0 copy was present.
  bool suspect_discard(const std::string& component);

  /// Drop `component`'s copies from every tier (full discard).
  bool discard(const std::string& component);
  /// Drop one tier's copy of `component`.
  bool discard_tier(const std::string& component, CheckpointTier tier);
  /// Drop an entire tier (every component's copy) — tier loss injection.
  /// Returns the number of copies dropped.
  std::size_t kill_tier(CheckpointTier tier);
  /// An L1 replica lives in its host's memory: when `host` dies (kill or
  /// crash), every replica it held dies with it. Returns the number of
  /// replicas dropped.
  std::size_t on_host_down(const std::string& host);
  /// A *parked* (hard-failed) host never restarts: the replicas it held are
  /// dropped (idempotent with on_host_down) and every component it hosted is
  /// re-partnered — the sorted component ring is walked past parked hosts
  /// (and the component itself) to the next live host, and the orphaned
  /// replica is rebuilt there from the surviving tiers, so the component's
  /// *next* failure still warm-hits L1. Returns the number of components
  /// re-partnered.
  std::size_t on_host_parked(const std::string& host, util::TimePoint now);
  /// Hosts declared parked so far (never chosen as replica hosts again).
  const std::set<std::string>& parked_hosts() const { return parked_hosts_; }

  void clear();

  // --- Per-tier damage-injection hooks ------------------------------------
  bool corrupt(const std::string& component, CheckpointTier tier);
  bool poison(const std::string& component, CheckpointTier tier);
  bool stale_date(const std::string& component, CheckpointTier tier,
                  util::TimePoint saved_at);

  // --- Introspection -------------------------------------------------------
  const Checkpoint* find(const std::string& component,
                         CheckpointTier tier) const;
  bool has(const std::string& component, CheckpointTier tier) const;
  std::size_t tier_size(CheckpointTier tier) const;

  std::uint64_t saves() const { return saves_; }
  std::uint64_t tier_hits(CheckpointTier tier) const {
    return tier_hits_[static_cast<std::size_t>(tier)];
  }
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t suspect_discards() const { return suspect_discards_; }
  std::uint64_t host_loss_drops() const { return host_loss_drops_; }
  std::uint64_t parked_reassigns() const { return parked_reassigns_; }

 private:
  CheckpointStore& tier(CheckpointTier t) {
    return tiers_[static_cast<std::size_t>(t)];
  }
  const CheckpointStore& tier(CheckpointTier t) const {
    return tiers_[static_cast<std::size_t>(t)];
  }
  /// L1 is populated only for components with an assigned partner.
  bool l1_available_for(const std::string& component) const;

  CheckpointPolicy policy_;
  std::array<CheckpointStore, kCheckpointTierCount> tiers_;
  std::map<std::string, std::string> partner_of_;
  /// host -> components whose L1 replica it holds (inverse of partner_of_).
  std::map<std::string, std::vector<std::string>> hosted_by_;
  std::set<std::string> parked_hosts_;
  std::uint64_t saves_ = 0;
  std::array<std::uint64_t, kCheckpointTierCount> tier_hits_{};
  std::uint64_t rebuilds_ = 0;
  std::uint64_t suspect_discards_ = 0;
  std::uint64_t host_loss_drops_ = 0;
  std::uint64_t parked_reassigns_ = 0;
};

}  // namespace mercury::core
