#include "core/tree_io.h"

#include "xml/element.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace mercury::core {

using util::Error;
using util::Result;

namespace {

void write_cell(const RestartTree& tree, NodeId id, xml::Element& parent) {
  xml::Element cell("cell");
  cell.set_attr("label", tree.cell(id).label);
  for (const auto& component : tree.cell(id).components) {
    cell.add_child(xml::Element("component")).set_attr("name", component);
  }
  xml::Element& stored = parent.add_child(std::move(cell));
  for (NodeId child : tree.cell(id).children) {
    write_cell(tree, child, stored);
  }
}

util::Status read_cell(const xml::Element& element, RestartTree& tree,
                       NodeId parent, bool is_root) {
  if (element.name() != "cell") {
    return Error("expected <cell>, got <" + element.name() + ">");
  }
  const auto label = element.attr("label");
  if (!label || label->empty()) return Error("<cell> missing 'label'");

  NodeId id;
  if (is_root) {
    id = tree.root();
    tree.set_label(id, *label);
  } else {
    id = tree.add_cell(parent, *label);
  }

  for (const auto& child : element.children()) {
    if (child->name() == "component") {
      const auto name = child->attr("name");
      if (!name || name->empty()) return Error("<component> missing 'name'");
      if (tree.find_component(*name).has_value()) {
        return Error("component '" + *name + "' attached twice");
      }
      tree.attach_component(id, *name);
    } else if (child->name() == "cell") {
      if (auto status = read_cell(*child, tree, id, /*is_root=*/false);
          !status.ok()) {
        return status;
      }
    } else {
      return Error("unexpected <" + child->name() + "> inside <cell>");
    }
  }
  return util::Status::ok_status();
}

}  // namespace

std::string tree_to_xml(const RestartTree& tree) {
  xml::Element root("restart-tree");
  write_cell(tree, tree.root(), root);
  xml::WriteOptions options;
  options.pretty = true;
  options.declaration = true;
  return xml::write(root, options);
}

Result<RestartTree> tree_from_xml(std::string_view xml_text) {
  auto document = xml::parse(xml_text);
  if (!document.ok()) return document.error().wrap("loading restart tree");
  const xml::Element& root = document.value();
  if (root.name() != "restart-tree") {
    return Error("expected <restart-tree> root, got <" + root.name() + ">");
  }
  if (root.child_count() != 1 || root.children()[0]->name() != "cell") {
    return Error("<restart-tree> must contain exactly one root <cell>");
  }

  RestartTree tree;
  if (auto status = read_cell(*root.children()[0], tree, tree.root(),
                              /*is_root=*/true);
      !status.ok()) {
    return status.error().wrap("loading restart tree");
  }
  if (auto status = tree.validate(); !status.ok()) {
    return status.error().wrap("loaded restart tree invalid");
  }
  return tree;
}

}  // namespace mercury::core
