#include "core/checkpoint.h"

namespace mercury::core {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv1a_mix(std::uint64_t& hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  // Field separator, so {"ab","c"} and {"a","bc"} hash differently.
  hash ^= 0xFFu;
  hash *= kFnvPrime;
}

}  // namespace

std::string_view to_string(CheckpointVerdict verdict) {
  switch (verdict) {
    case CheckpointVerdict::kValid: return "valid";
    case CheckpointVerdict::kMissing: return "missing";
    case CheckpointVerdict::kStale: return "stale";
    case CheckpointVerdict::kVersionMismatch: return "version-mismatch";
    case CheckpointVerdict::kCorrupt: return "corrupt";
  }
  return "?";
}

std::uint64_t checkpoint_checksum(const Checkpoint& checkpoint) {
  std::uint64_t hash = kFnvOffset;
  fnv1a_mix(hash, checkpoint.component);
  fnv1a_mix(hash, std::to_string(checkpoint.version));
  for (const auto& [key, value] : checkpoint.payload) {
    fnv1a_mix(hash, key);
    fnv1a_mix(hash, value);
  }
  return hash;
}

void CheckpointStore::save(
    const std::string& component,
    std::vector<std::pair<std::string, std::string>> payload,
    util::TimePoint now) {
  Checkpoint checkpoint;
  checkpoint.component = component;
  checkpoint.saved_at = now;
  checkpoint.payload = std::move(payload);
  checkpoint.checksum = checkpoint_checksum(checkpoint);
  checkpoints_[component] = std::move(checkpoint);
  ++saves_;
}

void CheckpointStore::put(Checkpoint checkpoint) {
  const std::string component = checkpoint.component;
  checkpoints_[component] = std::move(checkpoint);
  ++saves_;
}

const Checkpoint* CheckpointStore::find(const std::string& component) const {
  const auto it = checkpoints_.find(component);
  return it == checkpoints_.end() ? nullptr : &it->second;
}

CheckpointVerdict CheckpointStore::validate(const std::string& component,
                                            util::TimePoint now,
                                            util::Duration ttl) const {
  const Checkpoint* checkpoint = find(component);
  if (checkpoint == nullptr) return CheckpointVerdict::kMissing;
  if (checkpoint->checksum != checkpoint_checksum(*checkpoint)) {
    return CheckpointVerdict::kCorrupt;
  }
  if (checkpoint->version != kCheckpointSchemaVersion) {
    return CheckpointVerdict::kVersionMismatch;
  }
  if (now - checkpoint->saved_at > ttl) return CheckpointVerdict::kStale;
  return CheckpointVerdict::kValid;
}

bool CheckpointStore::discard(const std::string& component) {
  if (checkpoints_.erase(component) == 0) return false;
  ++discards_;
  return true;
}

void CheckpointStore::clear() { checkpoints_.clear(); }

bool CheckpointStore::corrupt(const std::string& component) {
  const auto it = checkpoints_.find(component);
  if (it == checkpoints_.end()) return false;
  it->second.payload.emplace_back("bitrot", "1");
  return true;
}

bool CheckpointStore::poison(const std::string& component) {
  if (!corrupt(component)) return false;
  Checkpoint& checkpoint = checkpoints_[component];
  checkpoint.checksum = checkpoint_checksum(checkpoint);
  checkpoint.poisoned = true;
  return true;
}

bool CheckpointStore::stale_date(const std::string& component,
                                 util::TimePoint saved_at) {
  const auto it = checkpoints_.find(component);
  if (it == checkpoints_.end()) return false;
  it->second.saved_at = saved_at;
  return true;
}

}  // namespace mercury::core
