#include "core/checkpoint.h"

#include <algorithm>

#include "core/restart_tree.h"

namespace mercury::core {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv1a_mix(std::uint64_t& hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  // Field separator, so {"ab","c"} and {"a","bc"} hash differently.
  hash ^= 0xFFu;
  hash *= kFnvPrime;
}

}  // namespace

std::string_view to_string(CheckpointVerdict verdict) {
  switch (verdict) {
    case CheckpointVerdict::kValid: return "valid";
    case CheckpointVerdict::kMissing: return "missing";
    case CheckpointVerdict::kStale: return "stale";
    case CheckpointVerdict::kVersionMismatch: return "version-mismatch";
    case CheckpointVerdict::kCorrupt: return "corrupt";
  }
  return "?";
}

std::uint64_t checkpoint_checksum(const Checkpoint& checkpoint) {
  std::uint64_t hash = kFnvOffset;
  fnv1a_mix(hash, checkpoint.component);
  fnv1a_mix(hash, std::to_string(checkpoint.version));
  for (const auto& [key, value] : checkpoint.payload) {
    fnv1a_mix(hash, key);
    fnv1a_mix(hash, value);
  }
  return hash;
}

void CheckpointStore::save(
    const std::string& component,
    std::vector<std::pair<std::string, std::string>> payload,
    util::TimePoint now) {
  Checkpoint checkpoint;
  checkpoint.component = component;
  checkpoint.saved_at = now;
  checkpoint.payload = std::move(payload);
  checkpoint.checksum = checkpoint_checksum(checkpoint);
  checkpoints_[component] = std::move(checkpoint);
  ++saves_;
}

void CheckpointStore::put(Checkpoint checkpoint) {
  const std::string component = checkpoint.component;
  checkpoints_[component] = std::move(checkpoint);
  ++saves_;
}

const Checkpoint* CheckpointStore::find(const std::string& component) const {
  const auto it = checkpoints_.find(component);
  return it == checkpoints_.end() ? nullptr : &it->second;
}

CheckpointVerdict CheckpointStore::validate(const std::string& component,
                                            util::TimePoint now,
                                            util::Duration ttl) const {
  const Checkpoint* checkpoint = find(component);
  if (checkpoint == nullptr) return CheckpointVerdict::kMissing;
  if (checkpoint->checksum != checkpoint_checksum(*checkpoint)) {
    return CheckpointVerdict::kCorrupt;
  }
  if (checkpoint->version != kCheckpointSchemaVersion) {
    return CheckpointVerdict::kVersionMismatch;
  }
  if (now - checkpoint->saved_at > ttl) return CheckpointVerdict::kStale;
  return CheckpointVerdict::kValid;
}

bool CheckpointStore::discard(const std::string& component) {
  if (checkpoints_.erase(component) == 0) return false;
  ++discards_;
  return true;
}

void CheckpointStore::clear() { checkpoints_.clear(); }

bool CheckpointStore::corrupt(const std::string& component) {
  const auto it = checkpoints_.find(component);
  if (it == checkpoints_.end()) return false;
  it->second.payload.emplace_back("bitrot", "1");
  return true;
}

bool CheckpointStore::poison(const std::string& component) {
  if (!corrupt(component)) return false;
  Checkpoint& checkpoint = checkpoints_[component];
  checkpoint.checksum = checkpoint_checksum(checkpoint);
  checkpoint.poisoned = true;
  return true;
}

bool CheckpointStore::stale_date(const std::string& component,
                                 util::TimePoint saved_at) {
  const auto it = checkpoints_.find(component);
  if (it == checkpoints_.end()) return false;
  it->second.saved_at = saved_at;
  return true;
}

std::string_view to_string(CheckpointTier tier) {
  switch (tier) {
    case CheckpointTier::kL0Local: return "l0-local";
    case CheckpointTier::kL1Partner: return "l1-partner";
    case CheckpointTier::kL2Stable: return "l2-stable";
  }
  return "?";
}

std::map<std::string, std::string> choose_partners(const RestartTree& tree) {
  const std::vector<std::string> components = tree.all_components();
  std::map<std::string, std::string> partner_of;
  if (components.size() < 2) return partner_of;
  for (std::size_t i = 0; i < components.size(); ++i) {
    const std::string& component = components[i];
    const std::optional<NodeId> own_cell = tree.find_component(component);
    // Prefer the first ring successor attached to a different cell: the
    // minimal restart of this component's cell then cannot take the replica
    // host down with it. Fall back to the plain ring neighbour.
    std::string chosen = components[(i + 1) % components.size()];
    for (std::size_t step = 1; step < components.size(); ++step) {
      const std::string& candidate = components[(i + step) % components.size()];
      if (tree.find_component(candidate) != own_cell) {
        chosen = candidate;
        break;
      }
    }
    partner_of[component] = std::move(chosen);
  }
  return partner_of;
}

std::string TierLookup::miss_reason() const {
  if (hit || probes.empty()) return std::string(to_string(CheckpointVerdict::kMissing));
  return std::string(to_string(probes.front().verdict));
}

void TieredCheckpointStore::set_partners(
    std::map<std::string, std::string> partner_of) {
  partner_of_ = std::move(partner_of);
  hosted_by_.clear();
  for (const auto& [component, host] : partner_of_) {
    hosted_by_[host].push_back(component);
  }
}

const std::string& TieredCheckpointStore::partner_of(
    const std::string& component) const {
  static const std::string kNone;
  const auto it = partner_of_.find(component);
  return it == partner_of_.end() ? kNone : it->second;
}

bool TieredCheckpointStore::l1_available_for(
    const std::string& component) const {
  return policy_.tier_enabled(CheckpointTier::kL1Partner) &&
         partner_of_.count(component) != 0;
}

void TieredCheckpointStore::save(
    const std::string& component,
    std::vector<std::pair<std::string, std::string>> payload,
    util::TimePoint now) {
  if (!policy_.enabled) return;
  ++saves_;
  if (l1_available_for(component)) {
    tier(CheckpointTier::kL1Partner).save(component, payload, now);
  }
  if (policy_.tier_enabled(CheckpointTier::kL2Stable)) {
    tier(CheckpointTier::kL2Stable).save(component, payload, now);
  }
  tier(CheckpointTier::kL0Local).save(component, std::move(payload), now);
}

TierLookup TieredCheckpointStore::lookup(const std::string& component,
                                         util::TimePoint now) {
  TierLookup result;
  for (std::size_t i = 0; i < kCheckpointTierCount; ++i) {
    const CheckpointTier t = static_cast<CheckpointTier>(i);
    if (!policy_.tier_enabled(t)) continue;
    TierProbe probe;
    probe.tier = t;
    probe.verdict = tier(t).validate(component, now, policy_.ttl);
    if (probe.verdict == CheckpointVerdict::kValid) {
      result.probes.push_back(probe);
      result.hit = true;
      result.tier = t;
      result.checkpoint = tier(t).find(component);
      ++tier_hits_[i];
      return result;
    }
    // Detectably-bad copies are deleted as the walk passes them: a corrupt
    // or version-skewed snapshot can never serve, and keeping it would just
    // re-fail the next lookup. Stale copies are kept — a later rebuild from
    // a fresher tier overwrites them, and TTL judgments depend on `now`.
    if (probe.verdict == CheckpointVerdict::kCorrupt ||
        probe.verdict == CheckpointVerdict::kVersionMismatch) {
      probe.discarded = tier(t).discard(component);
    }
    result.probes.push_back(probe);
  }
  return result;
}

std::size_t TieredCheckpointStore::rebuild(const std::string& component,
                                           util::TimePoint now) {
  // Find the newest valid copy across tiers (ties go to the lower tier).
  const Checkpoint* source = nullptr;
  for (std::size_t i = 0; i < kCheckpointTierCount; ++i) {
    const CheckpointTier t = static_cast<CheckpointTier>(i);
    if (!policy_.tier_enabled(t)) continue;
    if (tier(t).validate(component, now, policy_.ttl) !=
        CheckpointVerdict::kValid) {
      continue;
    }
    const Checkpoint* candidate = tier(t).find(component);
    if (source == nullptr || candidate->saved_at > source->saved_at) {
      source = candidate;
    }
  }
  if (source == nullptr) return 0;

  // Re-replicate it into every enabled tier lacking a valid copy. The copy
  // keeps the source's saved_at: replication does not refresh state.
  const Checkpoint snapshot = *source;  // source may be in a tier we touch
  std::size_t repopulated = 0;
  for (std::size_t i = 0; i < kCheckpointTierCount; ++i) {
    const CheckpointTier t = static_cast<CheckpointTier>(i);
    if (!policy_.tier_enabled(t)) continue;
    if (t == CheckpointTier::kL1Partner && !l1_available_for(component)) {
      continue;
    }
    if (tier(t).validate(component, now, policy_.ttl) ==
        CheckpointVerdict::kValid) {
      continue;
    }
    tier(t).put(snapshot);
    ++repopulated;
  }
  rebuilds_ += repopulated;
  return repopulated;
}

bool TieredCheckpointStore::suspect_discard(const std::string& component) {
  const bool had = tier(CheckpointTier::kL0Local).discard(component);
  if (had) ++suspect_discards_;
  return had;
}

bool TieredCheckpointStore::discard(const std::string& component) {
  bool any = false;
  for (auto& store : tiers_) any = store.discard(component) || any;
  return any;
}

bool TieredCheckpointStore::discard_tier(const std::string& component,
                                         CheckpointTier t) {
  return tier(t).discard(component);
}

std::size_t TieredCheckpointStore::kill_tier(CheckpointTier t) {
  const std::size_t dropped = tier(t).size();
  tier(t).clear();
  return dropped;
}

std::size_t TieredCheckpointStore::on_host_down(const std::string& host) {
  const auto it = hosted_by_.find(host);
  if (it == hosted_by_.end()) return 0;
  std::size_t dropped = 0;
  for (const std::string& component : it->second) {
    if (tier(CheckpointTier::kL1Partner).discard(component)) ++dropped;
  }
  host_loss_drops_ += dropped;
  return dropped;
}

std::size_t TieredCheckpointStore::on_host_parked(const std::string& host,
                                                  util::TimePoint now) {
  if (!parked_hosts_.insert(host).second) return 0;
  // The parked host's in-memory replicas are as gone as a crashed host's
  // (usually already dropped by on_host_down during the failed restarts).
  on_host_down(host);
  if (!policy_.tier_enabled(CheckpointTier::kL1Partner)) return 0;

  // Reassign every component whose replica host is now parked. The sorted
  // component ring is walked past parked hosts and the component itself to
  // the next live host; cell affinity is not re-derived here (the tree is
  // long gone) — a live host in the same cell still beats a dead one.
  std::vector<std::string> ring;
  ring.reserve(partner_of_.size());
  for (const auto& [component, partner] : partner_of_) ring.push_back(component);
  std::size_t reassigned = 0;
  for (auto& [component, partner] : partner_of_) {
    if (!parked_hosts_.contains(partner)) continue;
    if (parked_hosts_.contains(component)) continue;  // orphan is parked too
    const auto it = std::lower_bound(ring.begin(), ring.end(), component);
    const std::size_t base = static_cast<std::size_t>(it - ring.begin());
    std::string chosen;
    for (std::size_t step = 1; step < ring.size(); ++step) {
      const std::string& candidate = ring[(base + step) % ring.size()];
      if (candidate == component || parked_hosts_.contains(candidate)) continue;
      chosen = candidate;
      break;
    }
    if (chosen.empty()) continue;  // no live host left; L1 stays lost
    partner = std::move(chosen);
    ++reassigned;
    // Rebuild the orphaned replica at the new host from surviving tiers, so
    // the component's next failure still warm-hits L1.
    rebuild(component, now);
  }
  if (reassigned > 0) {
    hosted_by_.clear();
    for (const auto& [component, partner] : partner_of_) {
      hosted_by_[partner].push_back(component);
    }
  }
  parked_reassigns_ += reassigned;
  return reassigned;
}

void TieredCheckpointStore::clear() {
  for (auto& store : tiers_) store.clear();
}

bool TieredCheckpointStore::corrupt(const std::string& component,
                                    CheckpointTier t) {
  return tier(t).corrupt(component);
}

bool TieredCheckpointStore::poison(const std::string& component,
                                   CheckpointTier t) {
  return tier(t).poison(component);
}

bool TieredCheckpointStore::stale_date(const std::string& component,
                                       CheckpointTier t,
                                       util::TimePoint saved_at) {
  return tier(t).stale_date(component, saved_at);
}

const Checkpoint* TieredCheckpointStore::find(const std::string& component,
                                              CheckpointTier t) const {
  return tier(t).find(component);
}

bool TieredCheckpointStore::has(const std::string& component,
                                CheckpointTier t) const {
  return tier(t).find(component) != nullptr;
}

std::size_t TieredCheckpointStore::tier_size(CheckpointTier t) const {
  return tier(t).size();
}

}  // namespace mercury::core
