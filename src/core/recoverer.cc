#include "core/recoverer.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace mercury::core {

using util::LogLevel;
using util::LogLine;

Recoverer::Recoverer(sim::Simulator& sim, bus::DedicatedLink& link,
                     RestartTree tree, Oracle& oracle,
                     ProcessControl& process_control, RecConfig config)
    : sim_(sim),
      link_(link),
      tree_(std::move(tree)),
      oracle_(oracle),
      process_control_(process_control),
      config_(std::move(config)) {
  assert(tree_.validate().ok());
}

Recoverer::~Recoverer() = default;

void Recoverer::start() {
  link_.bind(config_.rec_name,
             [this](const msg::Message& message) { on_link_message(message); });
}

void Recoverer::crash() {
  alive_ = false;
  obs::instant(sim_.now(), "proc", "rec.crash", "rec");
  LogLine(LogLevel::kInfo, sim_.now(), "rec") << "crashed (fail-silent)";
}

void Recoverer::restart_complete() {
  alive_ = true;
  // The generalized procedural knowledge survives in the restart tree file;
  // in-memory chain state is process state and is lost.
  queue_.clear();
  last_.reset();
  obs::instant(sim_.now(), "proc", "rec.restarted", "rec");
  LogLine(LogLevel::kInfo, sim_.now(), "rec") << "restarted";
}

void Recoverer::on_link_message(const msg::Message& message) {
  if (message.kind == msg::Kind::kPing) {
    if (alive_) link_.send(msg::make_pong(message, config_.rec_name));
    return;
  }
  if (message.kind == msg::Kind::kPong) {
    if (alive_ && message.from == config_.fd_name &&
        message.seq == fd_outstanding_seq_) {
      fd_outstanding_seq_ = 0;
      if (fd_timeout_.valid()) {
        sim_.cancel(fd_timeout_);
        fd_timeout_ = sim::EventId{};
      }
    }
    return;
  }
  if (!alive_) return;
  if (message.kind == msg::Kind::kCommand && message.verb == "report-failure") {
    const std::string component = message.body.attr_or("component", "");
    if (!component.empty()) handle_report(component);
  }
}

void Recoverer::handle_report(const std::string& component) {
  obs::instant(sim_.now(), "recover", "rec.report-received", "rec",
               {{"component", component}});
  // A hard failure is parked for the operator; restarting it forever is
  // exactly what the paper's policy must prevent.
  if (std::find(hard_failures_.begin(), hard_failures_.end(), component) !=
      hard_failures_.end()) {
    return;
  }

  if (current_.has_value()) {
    const auto& in_flight = current_->components;
    if (std::find(in_flight.begin(), in_flight.end(), component) !=
        in_flight.end()) {
      return;  // already being restarted
    }
    if (std::find(queue_.begin(), queue_.end(), component) == queue_.end()) {
      queue_.push_back(component);
    }
    return;
  }

  CurrentRestart restart;
  restart.reported_component = component;
  restart.report_time = sim_.now();

  // Escalation (§3.3): the failure survived a restart that covered this
  // component and has resurfaced promptly.
  const bool escalating =
      last_.has_value() &&
      std::find(last_->components.begin(), last_->components.end(), component) !=
          last_->components.end() &&
      (sim_.now() - last_->complete_time) < config_.escalation_window;

  if (escalating && last_->soft) {
    // The soft procedure (§7's cheapest rung) did not cure it: climb to the
    // restart ladder. The oracle has not guessed yet, so this is a fresh
    // choose, not a tree escalation.
    restart.escalation_level = 1;
    ++escalations_;
    obs::instant(sim_.now(), "recover", "rec.escalate", "rec",
                 {{"component", component}, {"level", "1"}, {"from", "soft"}});
    obs::incr("rec.escalations");
    OracleQuery query;
    query.tree = &tree_;
    query.failed_component = component;
    query.trace_now = sim_.now().to_seconds();
    restart.node = oracle_.choose(query);
    execute(std::move(restart));
    return;
  }

  if (escalating) {
    restart.escalation_level = last_->escalation_level + 1;
    ++escalations_;
    obs::instant(sim_.now(), "recover", "rec.escalate", "rec",
                 {{"component", component},
                  {"level", std::to_string(restart.escalation_level)}});
    obs::incr("rec.escalations");
    if (!last_->feedback_sent) {
      obs::instant(sim_.now(), "oracle", "oracle.feedback", "rec",
                   {{"component", last_->chain_component},
                    {"cell", tree_.cell(last_->node).label},
                    {"cured", "0"}});
      oracle_.feedback(last_->chain_component, last_->node, /*cured=*/false);
      last_->feedback_sent = true;
    }
    if (last_->node == tree_.root()) {
      // The whole system was already restarted and this component promptly
      // failed again. Count uncured root restarts *per component*: a fresh,
      // unrelated crash landing just after a reboot must not get an
      // innocent component parked (it merely rides the escalation).
      RootRestartHistory& history = root_history_[component];
      if (sim_.now() - history.last < config_.root_retry_window) {
        ++history.count;
      } else {
        history.count = 1;
      }
      history.last = sim_.now();
      if (history.count >= config_.max_root_restarts) {
        LogLine(LogLevel::kError, sim_.now(), "rec")
            << "hard failure: " << component << " persists after "
            << history.count << " full restarts; giving up";
        obs::instant(sim_.now(), "recover", "rec.hard-failure", "rec",
                     {{"component", component},
                      {"root_restarts", std::to_string(history.count)}});
        obs::incr("rec.hard_failures");
        hard_failures_.push_back(component);
        return;
      }
    }
    OracleQuery query;
    query.tree = &tree_;
    query.failed_component = component;
    query.escalation_level = restart.escalation_level;
    query.previous_node = last_->node;
    query.trace_now = sim_.now().to_seconds();
    restart.node = oracle_.choose(query);
  } else {
    // Fresh failure. With recursive recovery enabled, the first rung is the
    // component's own soft procedure; the restart tree is the ladder above.
    if (config_.enable_soft_recovery &&
        process_control_.supports_soft_recovery()) {
      execute_soft(std::move(restart));
      return;
    }
    OracleQuery query;
    query.tree = &tree_;
    query.failed_component = component;
    query.trace_now = sim_.now().to_seconds();
    restart.node = oracle_.choose(query);
  }

  execute(std::move(restart));
}

void Recoverer::execute_soft(CurrentRestart restart) {
  restart.soft = true;
  restart.components = {restart.reported_component};
  const auto cell = tree_.lowest_cell_covering(restart.reported_component);
  restart.node = cell ? *cell : tree_.root();
  ++soft_recoveries_;
  restart.trace_span = obs::begin_span(
      sim_.now(), "recover", "rec.soft", "rec",
      {{"component", restart.reported_component},
       {"cell", tree_.cell(restart.node).label}});
  obs::incr("rec.soft_recoveries");
  LogLine(LogLevel::kInfo, sim_.now(), "rec")
      << "soft recovery of " << restart.reported_component
      << " (recursive-recovery rung 0)";
  send_mask(restart.components, true);
  const std::string component = restart.reported_component;
  current_ = restart;
  process_control_.soft_recover(component, [this] { on_restart_complete(); });
}

bool Recoverer::planned_restart(const std::string& component) {
  if (!alive_) return false;
  if (current_.has_value()) return false;  // reactive work has priority
  const auto cell = tree_.lowest_cell_covering(component);
  if (!cell) return false;
  CurrentRestart restart;
  restart.reported_component = component;
  restart.node = *cell;
  restart.planned = true;
  restart.report_time = sim_.now();
  ++planned_restarts_;
  execute(std::move(restart));
  return true;
}

void Recoverer::execute(CurrentRestart restart) {
  restart.components = tree_.group_components(restart.node);
  assert(!restart.components.empty());
  LogLine(LogLevel::kInfo, sim_.now(), "rec")
      << "restarting cell " << tree_.cell(restart.node).label << " ("
      << util::join(restart.components, ",") << ") for failure of "
      << restart.reported_component
      << (restart.escalation_level > 0
              ? " [escalation level " + std::to_string(restart.escalation_level) + "]"
              : "");

  restart.trace_span = obs::begin_span(
      sim_.now(), "recover", "rec.restart", "rec",
      {{"component", restart.reported_component},
       {"cell", tree_.cell(restart.node).label},
       {"group", util::join(restart.components, ",")},
       {"escalation", std::to_string(restart.escalation_level)},
       {"planned", restart.planned ? "1" : "0"}});
  send_mask(restart.components, true);
  current_ = restart;
  process_control_.restart_group(restart.components,
                                 [this] { on_restart_complete(); });
}

void Recoverer::on_restart_complete() {
  assert(current_.has_value());
  const CurrentRestart finished = *current_;
  current_.reset();

  obs::end_span(sim_.now(), finished.trace_span);
  obs::incr(finished.soft ? "rec.soft_completed" : "rec.restarts");
  obs::incr("restarts.cell." + tree_.cell(finished.node).label);
  obs::observe("recovery.action_seconds",
               (sim_.now() - finished.report_time).to_seconds());

  send_mask(finished.components, false);

  RecoveryRecord record;
  record.reported_component = finished.reported_component;
  record.node = finished.node;
  record.restarted = finished.components;
  record.escalation_level = finished.escalation_level;
  record.planned = finished.planned;
  record.soft = finished.soft;
  record.report_time = finished.report_time;
  record.complete_time = sim_.now();
  history_.push_back(record);

  LastRestart last;
  last.node = finished.node;
  last.components = finished.components;
  last.escalation_level = finished.escalation_level;
  last.soft = finished.soft;
  last.complete_time = sim_.now();
  last.chain_component = finished.escalation_level > 0 && last_.has_value()
                             ? last_->chain_component
                             : finished.reported_component;
  // Soft actions carry no oracle recommendation; never feed the oracle
  // about a node it did not choose.
  last.feedback_sent = finished.soft;
  last_ = last;

  // Positive feedback once the escalation window passes without recurrence.
  const util::TimePoint completed_at = sim_.now();
  sim_.schedule_after(config_.escalation_window, "rec.feedback",
                      [this, completed_at] {
                        if (last_.has_value() &&
                            last_->complete_time == completed_at &&
                            !last_->feedback_sent) {
                          obs::instant(sim_.now(), "oracle", "oracle.feedback",
                                       "rec",
                                       {{"component", last_->chain_component},
                                        {"cell", tree_.cell(last_->node).label},
                                        {"cured", "1"}});
                          oracle_.feedback(last_->chain_component, last_->node,
                                           /*cured=*/true);
                          last_->feedback_sent = true;
                        }
                      });

  drain_queue();
}

void Recoverer::drain_queue() {
  while (!queue_.empty() && !current_.has_value()) {
    const std::string component = queue_.front();
    queue_.pop_front();
    // Reports about components the finishing restart covered are stale: the
    // restart either cured them, or FD will re-detect and escalate.
    if (last_.has_value() &&
        std::find(last_->components.begin(), last_->components.end(), component) !=
            last_->components.end()) {
      continue;
    }
    handle_report(component);
  }
}

void Recoverer::send_mask(const std::vector<std::string>& components, bool mask) {
  obs::instant(sim_.now(), "recover", mask ? "rec.mask" : "rec.unmask", "rec",
               {{"components", util::join(components, ",")}});
  msg::Message command = msg::make_command(config_.rec_name, config_.fd_name,
                                           seq_++, mask ? "mask" : "unmask");
  command.body.set_attr("components", util::join(components, ","));
  link_.send(command);
}

void Recoverer::set_fd_restarter(std::function<void()> restarter) {
  fd_restarter_ = std::move(restarter);
}

void Recoverer::monitor_fd() {
  fd_loop_ = std::make_unique<sim::PeriodicTask>(
      sim_, "rec.ping-fd", config_.fd_ping_period, [this] { ping_fd(); });
  fd_loop_->start();
}

void Recoverer::ping_fd() {
  if (!alive_) return;
  if (fd_restart_in_flight_) return;
  if (fd_outstanding_seq_ != 0) return;
  const std::uint64_t seq = seq_++;
  fd_outstanding_seq_ = seq;
  link_.send(msg::make_ping(config_.rec_name, config_.fd_name, seq));
  fd_timeout_ = sim_.schedule_after(config_.fd_ping_timeout, "rec.fd-timeout",
                                    [this, seq] {
                                      if (fd_outstanding_seq_ == seq) {
                                        fd_outstanding_seq_ = 0;
                                        on_fd_timeout();
                                      }
                                    });
}

void Recoverer::on_fd_timeout() {
  if (!alive_ || !fd_restarter_) return;
  obs::instant(sim_.now(), "detect", "rec.fd-unresponsive", "rec");
  obs::incr("rec.fd_restarts");
  LogLine(LogLevel::kWarn, sim_.now(), "rec")
      << "fd unresponsive; initiating fd recovery";
  fd_restart_in_flight_ = true;
  fd_restarter_();
  sim_.schedule_after(config_.fd_ping_period * 5.0, "rec.fd-grace",
                      [this] { fd_restart_in_flight_ = false; });
}

}  // namespace mercury::core
